// Command smappic-run boots a prototype and executes a bare-metal RISC-V
// program on it, printing the console UART output — the simulated
// equivalent of loading a test over the UART tunnel and watching the
// virtual serial device.
//
// Usage:
//
//	smappic-run -shape 1x1x2 [-prog program.s] [-max-cycles N]
//	            [-parallel N] [-adaptive N] [-shard-granularity fpga|node]
//	            [-shard-affinity]
//	            [-metrics-json out.json] [-trace-out trace.json]
//	            [-sample-every N] [-sample-out samples.csv]
//	            [-faults SPEC] [-fault-seed N] [-watchdog N]
//	            [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz]
//
// Without -prog a built-in hello-world runs. Programs are RV64IMA assembly
// (see internal/rvasm); execution starts at the reset PC on every hart.
//
// -metrics-json dumps every counter, gauge and histogram as JSON;
// -trace-out writes a Chrome trace-event file loadable in Perfetto;
// -sample-every N snapshots the default counter set every N cycles
// (written into the metrics JSON, or as CSV with -sample-out).
//
// -faults enables deterministic fault injection. A spec is a semicolon-
// separated list of rules, each "site-pattern.kind:opts":
//
//	pcie.*.drop:p=0.01,seed=7;node0.dram.flip:n=3
//
// The site pattern matches dot-separated site names (pcie.ep<N>.link,
// node<N>.bridge, node<N>.dram) with "*" wildcards; a trailing "*" matches
// any remainder. Kinds: drop (lose a transfer), corrupt (deliver garbage;
// retransmitted like a drop), delay (add cycles=N latency), stall (pause a
// site for cycles=N), hang (site goes permanently dead), flip (single-bit
// upset, ECC-correctable), flip2 (double-bit upset, uncorrectable).
// Options: p=F (per-transfer probability), n=N (fire at most N times),
// after=N (skip the first N transfers), cycles=N (delay/stall length),
// seed=N (per-rule RNG seed; -fault-seed sets the default).
//
// -watchdog N arms the forward-progress watchdog: if no event executes for
// N cycles while transactions are in flight, the run prints a stall
// diagnosis (outstanding gauges plus fault-site status) instead of
// draining silently.
//
// -cpuprofile and -memprofile write Go pprof profiles of the simulator
// itself (inspect with `go tool pprof`). The CPU profile covers the whole
// run; the heap profile is snapshotted after the run, post-GC, so it shows
// the simulator's steady-state live set.
//
// -parallel N (N > 1) shards the simulation one-engine-per-FPGA under the
// conservative lookahead synchronizer; results are bit-identical to the
// default serial engine. Windows widen adaptively while cross-shard traffic
// is absent (geometric doubling, collapsing back to the minimum crossing
// when traffic returns); -adaptive N caps the widening at N minimum
// crossings (0 = default cap, 1 = fixed pre-adaptive windows), and
// -shard-affinity pins each shard worker to an OS thread during windows.
// -shard-granularity picks the shard unit: "fpga" (default, one engine per
// FPGA) or "node" (one engine per simulated node, nested under the per-FPGA
// windows at the intra-FPGA interconnect lookahead — on multi-node FPGAs
// this exposes NodesPerFPGA times more host parallelism). All these knobs
// are execution policy: they change wall-clock, never results.
// The sharded engine does not support the event-trace or sampler extras;
// -watchdog works in both modes (sharded runs check forward progress at
// window barriers and name the wedged shard — with a watchdog armed the
// adaptive cap is additionally clamped so a quiet wide window cannot
// outlast the stall deadline).
//
// -checkpoint FILE -checkpoint-at N writes a replay snapshot of the run at
// cycle N and then continues to completion. -restore FILE rebuilds the same
// configuration and deterministically replays to the snapshot's cursor
// before continuing — the completed run is byte-identical to an
// uninterrupted one, serial or sharded. Snapshots are integrity-checked
// (format version plus SHA-256 footer); a corrupt, truncated or
// wrong-configuration file is refused with a diagnostic, never a crash.
//
// -serve ADDR starts the live observability dashboard (internal/obs) on
// ADDR for the duration of the run: open http://ADDR/ in a browser, or poll
// /api/metrics and /api/events directly. Observation is read-only and
// non-perturbing — a served run's outputs are byte-identical to an unserved
// one. -publish-every N sets the serial snapshot cadence in cycles (sharded
// runs publish at window barriers); -serve-hold D keeps the server (and the
// process) up for D after the run finishes so the final state can be
// inspected — all output files are written before the hold begins.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"smappic"
	"smappic/internal/ckpt"
	"smappic/internal/core"
	"smappic/internal/obs"
	"smappic/internal/rvasm"
)

const helloProgram = `
	# Built-in demo: hart 0 prints over the console UART; other harts halt.
	csrr t0, mhartid
	bnez t0, halt
	la   s0, msg
	li   s1, 0xF000001000
putc:	lbu  t1, 0(s0)
	beqz t1, halt
	sd   t1, 0(s1)
wait:	ld   t2, 40(s1)
	andi t2, t2, 0x20
	beqz t2, wait
	addi s0, s0, 1
	j    putc
halt:	li a0, 0
	ebreak
msg:	.asciz "Hello from SMAPPIC!\n"
`

func main() {
	shape := flag.String("shape", "1x1x2", "prototype shape (AxBxC)")
	progPath := flag.String("prog", "", "RV64 assembly source to run (default: built-in hello)")
	maxCycles := flag.Uint64("max-cycles", 50_000_000, "abort after this many cycles")
	stats := flag.Bool("stats", false, "dump hardware counters after the run")
	disasm := flag.Bool("disasm", false, "print a disassembly listing before running")
	metricsJSON := flag.String("metrics-json", "", "write all counters/gauges/histograms as JSON to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON (Perfetto) to this file")
	traceCap := flag.Int("trace-cap", 1<<20, "event trace ring-buffer capacity (with -trace-out)")
	sampleEvery := flag.Uint64("sample-every", 0, "snapshot the default counter set every N cycles (0 = off)")
	sampleOut := flag.String("sample-out", "", "write the sampled time series as CSV to this file")
	faults := flag.String("faults", "", `fault-injection spec, e.g. "pcie.*.drop:p=0.01;node0.dram.flip:n=3" (see doc comment)`)
	faultSeed := flag.Uint64("fault-seed", 1, "default RNG seed for fault rules without an explicit seed=")
	watchdog := flag.Uint64("watchdog", 0, "stall-detection window in cycles (0 = off)")
	parallel := flag.Int("parallel", 0, "shard the simulation across goroutines, one per FPGA (>1 = on; results are identical to serial)")
	adaptive := flag.Int("adaptive", 0, "adaptive lookahead cap in minimum-crossing multiples for -parallel runs (0 = default cap, 1 = fixed windows)")
	granularity := flag.String("shard-granularity", "", `shard unit for -parallel runs: "fpga" (default) or "node" (one engine per node under nested windows)`)
	affinity := flag.Bool("shard-affinity", false, "pin each shard worker to an OS thread during windows (-parallel runs; execution policy only)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
	serve := flag.String("serve", "", "serve the live dashboard on this address (e.g. 127.0.0.1:8080) for the duration of the run")
	publishEvery := flag.Uint64("publish-every", 100_000, "serial dashboard snapshot cadence in cycles (sharded runs publish at window barriers)")
	serveHold := flag.Duration("serve-hold", 0, "keep the dashboard up this long after the run ends (outputs are written first)")
	syncMetrics := flag.Bool("sync-metrics", false, "record per-shard synchronizer telemetry (fpga<i>.sync.*, or node<i>.sync.* at node granularity) in the metrics report; sharded runs only, makes the report differ from a serial run's")
	checkpoint := flag.String("checkpoint", "", "write a replay snapshot to this file at -checkpoint-at cycles, then continue")
	checkpointAt := flag.Uint64("checkpoint-at", 0, "simulated cycle at which to take the -checkpoint snapshot")
	restore := flag.String("restore", "", "restore a replay snapshot from this file (same -shape/-faults/etc as the original run), then continue")
	flag.Parse()

	a, b, c, err := smappic.ParseShape(*shape)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *parallel > 1 && (*traceOut != "" || *sampleEvery > 0 || *sampleOut != "") {
		fmt.Fprintln(os.Stderr, "smappic-run: -trace-out/-sample-every/-sample-out need the serial engine; drop -parallel")
		os.Exit(1)
	}
	cfg := smappic.DefaultConfig(a, b, c)
	cfg.Parallel = *parallel
	cfg.AdaptiveLookahead = *adaptive
	cfg.ShardGranularity = *granularity
	cfg.ShardAffinity = *affinity
	cfg.SyncMetrics = *syncMetrics
	cfg.Faults, err = smappic.ParseFaults(*faults, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg.WatchdogInterval = smappic.Time(*watchdog)
	if *checkpoint != "" && *checkpointAt == 0 {
		fmt.Fprintln(os.Stderr, "smappic-run: -checkpoint needs -checkpoint-at N")
		os.Exit(1)
	}

	var proto *smappic.Prototype
	var restored *ckpt.Snapshot
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		proto, restored, err = core.RestorePrototype(f, cfg)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "smappic-run: cannot restore %s: %v\n", *restore, err)
			os.Exit(1)
		}
	} else {
		proto, err = smappic.Build(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	source := helloProgram
	if *progPath != "" {
		data, err := os.ReadFile(*progPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		source = string(data)
	}
	prog, err := rvasm.Assemble(smappic.ResetPC, source)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *disasm {
		fmt.Println("--- disassembly ---")
		fmt.Print(rvasm.DisassembleAll(prog))
	}

	if *traceOut != "" {
		proto.EnableTrace(*traceCap)
	}
	if *sampleEvery > 0 || *sampleOut != "" {
		proto.EnableSampler(smappic.Time(*sampleEvery))
	}

	host := proto.Host()
	for n := 0; n < proto.Cfg.TotalNodes(); n++ {
		host.LoadProgram(n, prog)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	var srv *obs.Server
	if *serve != "" {
		srv = obs.New()
		srv.ObservePrototype(proto)
		addr, err := srv.Start(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dashboard: http://%s/\n", addr)
	}
	proto.Start()
	if restored != nil {
		// Deterministic re-execution to the snapshot cursor: the program is
		// loaded and the engine replays exactly the recorded event count.
		if err := proto.Replay(restored); err != nil {
			fmt.Fprintf(os.Stderr, "smappic-run: replay of %s failed: %v\n", *restore, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "restored %s at cycle %d\n", *restore, proto.Now())
	}
	if *checkpoint != "" {
		proto.RunUntilHalted(smappic.Time(*checkpointAt))
		f, err := os.Create(*checkpoint)
		if err == nil {
			err = proto.Checkpoint(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "checkpoint %s written at cycle %d\n", *checkpoint, proto.Now())
	}
	if srv != nil {
		proto.RunUntilHaltedObserved(smappic.Time(*maxCycles), smappic.Time(*publishEvery), srv.Publish)
		srv.Flush()
	} else {
		proto.RunUntilHalted(smappic.Time(*maxCycles))
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC() // flush dead objects so the profile shows live state
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	fmt.Printf("ran %d cycles (%.3f ms at %d MHz)\n",
		proto.Now(), proto.Seconds(proto.Now())*1e3, proto.Cfg.ClockMHz)
	if !proto.AllHalted() {
		fmt.Println("warning: not all harts halted before the cycle limit")
	}
	if proto.StallDiagnosis != "" {
		fmt.Print(proto.StallDiagnosis)
	} else if proto.Injector != nil && !*stats {
		fmt.Println("--- fault injection ---")
		fmt.Print(proto.Injector.String())
	}
	for n := 0; n < proto.Cfg.TotalNodes(); n++ {
		if out := host.Console(n); out != "" {
			fmt.Printf("--- node %d console ---\n%s", n, out)
		}
	}
	if *stats {
		fmt.Println("--- hardware counters ---")
		fmt.Print(proto.Report())
	}
	if *metricsJSON != "" {
		out, err := proto.MetricsJSON()
		if err == nil {
			err = os.WriteFile(*metricsJSON, out, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = proto.WriteTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *sampleOut != "" && proto.Sampler != nil {
		if err := os.WriteFile(*sampleOut, []byte(proto.Sampler.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if srv != nil && *serveHold > 0 {
		fmt.Fprintf(os.Stderr, "holding dashboard for %v\n", *serveHold)
		time.Sleep(*serveHold)
	}
	if srv != nil {
		srv.Close()
	}
}
