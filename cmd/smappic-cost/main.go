// Command smappic-cost reproduces the cost-efficiency analysis of paper
// §4.5: the instance catalog, per-tool host selection, the Fig. 13 modeling
// cost comparison and the Fig. 14 cloud-versus-on-premises curves.
//
// Usage:
//
//	smappic-cost [-what catalog|hosts|fig13|fig14|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"smappic/internal/experiments"
)

func main() {
	what := flag.String("what", "all", "which analysis to print: catalog, hosts, fig13, fig14 or all")
	flag.Parse()

	sections := map[string]func() string{
		"catalog": experiments.Table1,
		"hosts":   experiments.Table3,
		"fig13":   func() string { return experiments.Fig13().String() },
		"fig14":   func() string { return experiments.Fig14().String() },
	}
	order := []string{"catalog", "hosts", "fig13", "fig14"}

	if *what != "all" {
		fn, ok := sections[*what]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown analysis %q\n", *what)
			os.Exit(1)
		}
		fmt.Print(fn())
		return
	}
	for _, name := range order {
		fmt.Print(sections[name]())
		fmt.Println()
	}
}
