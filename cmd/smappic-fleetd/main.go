// Command smappic-fleetd is the resident fleet campaign server: it accepts
// campaign specs from many tenants over HTTP/JSON, expands them onto a
// persistent tenant-aware queue, and schedules the jobs across
// smappic-worker processes with a lease/heartbeat protocol. Workers that die
// mid-job lose their lease; the job re-queues and — when workers share the
// cache directory — warm-resumes the dead worker's last checkpoint.
//
// Usage:
//
//	smappic-fleetd -addr :9090 -cache /shared/cache [-state /var/lib/fleetd]
//	               [-lease-ttl 30] [-default-quota 0] [-quota tenant=N]...
//
// Submit with `smappic-fleet -server http://host:9090 -spec sweep.json`,
// execute with `smappic-worker -server http://host:9090`. The aggregate
// report a campaign yields is byte-identical to running the same spec
// in-process with smappic-fleet alone — worker count, scheduling, failures
// and cache mix never leak into results.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"smappic/internal/campaign"
	"smappic/internal/fleetsrv"
)

// quotaFlags collects repeated -quota tenant=N flags.
type quotaFlags map[string]int

func (q quotaFlags) String() string { return fmt.Sprint(map[string]int(q)) }

func (q quotaFlags) Set(v string) error {
	name, num, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want tenant=N, got %q", v)
	}
	n, err := strconv.Atoi(num)
	if err != nil {
		return fmt.Errorf("bad quota %q: %w", num, err)
	}
	q[name] = n
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address")
	cacheDir := flag.String("cache", ".smappic-cache", "shared content-addressed result cache directory")
	stateDir := flag.String("state", "", "persist campaigns here so a restarted server resumes them (empty: in-memory only)")
	leaseTTL := flag.Float64("lease-ttl", fleetsrv.DefaultLeaseTTL.Seconds(), "seconds a worker may go without a heartbeat before its jobs re-queue")
	defQuota := flag.Int("default-quota", 0, "default per-tenant concurrent-lease quota (0 = unlimited)")
	quotas := quotaFlags{}
	flag.Var(quotas, "quota", "per-tenant quota override as tenant=N (repeatable; 0 = unlimited)")
	verbose := flag.Bool("v", false, "log protocol events to stderr")
	flag.Parse()

	cache, err := campaign.OpenCache(*cacheDir)
	if err != nil {
		fatal(err)
	}
	srv := fleetsrv.New(cache)
	srv.StateDir = *stateDir
	srv.LeaseTTL = time.Duration(*leaseTTL * float64(time.Second))
	srv.DefaultQuota = *defQuota
	if *verbose {
		srv.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "fleetd: "+format+"\n", args...)
		}
	}
	for tenant, n := range quotas {
		srv.SetQuota(tenant, n)
	}
	if err := srv.Load(); err != nil {
		fatal(err)
	}

	bound, err := srv.Start(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fleetd: serving on http://%s/ (cache %s)\n", bound, *cacheDir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smappic-fleetd:", err)
	os.Exit(1)
}
