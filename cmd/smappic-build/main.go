// Command smappic-build validates a prototype configuration against the F1
// physical constraints and reports the FPGA resource and build-flow
// estimates — the front end of the paper's "specify AxBxC, get an image"
// workflow.
//
// Usage:
//
//	smappic-build -shape 4x1x12 [-no-unified]
package main

import (
	"flag"
	"fmt"
	"os"

	"smappic"
	"smappic/internal/fpga"
)

func main() {
	shape := flag.String("shape", "1x1x12", "prototype shape in AxBxC notation (FPGAs x nodes/FPGA x tiles/node)")
	noUnified := flag.Bool("no-unified", false, "build independent nodes instead of one shared-memory system")
	flag.Parse()

	a, b, c, err := smappic.ParseShape(*shape)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := smappic.DefaultConfig(a, b, c)
	cfg.UnifiedMemory = !*noUnified
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "configuration rejected: %v\n", err)
		os.Exit(1)
	}

	rep := fpga.Estimate(b, c)
	fmt.Printf("SMAPPIC configuration %s\n", cfg.Shape())
	fmt.Printf("  nodes: %d (%d per FPGA), tiles: %d total\n", cfg.TotalNodes(), b, cfg.TotalTiles())
	w, h := cfg.MeshDims()
	fmt.Printf("  node mesh: %dx%d, unified memory: %v\n", w, h, cfg.UnifiedMemory)
	fmt.Printf("  per-FPGA LUTs: %d (%.0f%% of VU9P)\n", rep.LUTs, rep.Utilization*100)
	if !rep.Fits {
		fmt.Println("  DOES NOT FIT: reduce nodes or tiles per FPGA")
		os.Exit(1)
	}
	fmt.Printf("  achievable frequency: %d MHz\n", rep.FrequencyMHz)

	flow := fpga.EstimateBuild(rep)
	fmt.Printf("build flow estimate:\n")
	fmt.Printf("  synthesis:        %.1f h (needs %d GB RAM)\n", flow.SynthesisTime.Hours(), flow.SynthesisMemGB)
	fmt.Printf("  AWS postprocess:  %.1f h\n", flow.AWSPostprocess.Hours())
	fmt.Printf("  bitstream load:   %.0f s\n", flow.BitstreamLoad.Seconds())
	fmt.Printf("  total:            %.1f h\n", flow.Total().Hours())

	// Dry-build the simulated prototype to prove the configuration wires.
	if _, err := smappic.Build(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "prototype build failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("prototype builds OK")
}
