// Command smappic-fleet runs experiment campaigns: declarative parameter
// sweeps expanded into independent simulation jobs, executed on a bounded
// worker pool with a content-addressed result cache, and aggregated into one
// deterministic report with a cloud cost estimate.
//
// Usage:
//
//	smappic-fleet -spec sweep.json [-workers N] [-cache dir] [-out prefix]
//	smappic-fleet -spec smoke            # builtin sweeps by name
//	smappic-fleet -list                  # show the builtin sweeps
//
// The spec is a JSON document (see EXPERIMENTS.md) or the name of a builtin
// sweep. Completed jobs land in the cache keyed by a hash of their resolved
// parameters, so re-running a campaign — after an interrupt, a crash, or
// just to regenerate reports — re-executes nothing. The aggregate report is
// byte-identical for any worker count and any mix of fresh and cached jobs.
//
// -resume makes in-flight IS jobs periodically checkpoint their full
// simulation state into the cache directory ( -checkpoint-every sets the
// cadence) and lets a re-run pick interrupted jobs up mid-flight instead of
// from cycle 0 — preemption-proof fleets: SIGKILL the campaign, run it
// again, and the aggregate is byte-identical to an uninterrupted one.
// -warm-start forks every IS sweep point from a shared boot+keygen prefix
// snapshot, built once per prefix identity (faults/credits/latency
// stripped; one per shape × seed × size) and cached, so each point
// simulates only its own divergent suffix. Warm-started results carry their
// own cache identity (warm_start is part of the job key).
//
// -v streams structured job lifecycle events (started, cache_hit,
// stall_retry, panic_retry, resumed, done, failed, skipped) to stderr as
// they happen. -serve ADDR additionally starts the live dashboard
// (internal/obs): the fleet job queue at http://ADDR/, the same events over
// SSE at /api/events.
//
// -server URL submits the campaign to a resident smappic-fleetd instead of
// running it in-process: the spec is posted with the tenant identity
// (-tenant) and priority (-priority), progress streams back over SSE, and
// the reports fetched on completion are byte-identical to what the
// in-process run of the same spec would have written.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"

	"smappic/internal/campaign"
	"smappic/internal/experiments"
	"smappic/internal/fleetsrv"
	"smappic/internal/obs"
)

func main() {
	specArg := flag.String("spec", "", "campaign spec: a JSON file path or a builtin sweep name")
	list := flag.Bool("list", false, "list builtin sweeps and exit")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent jobs (output is identical for any value)")
	cacheDir := flag.String("cache", ".smappic-cache", "result cache directory; empty disables caching")
	out := flag.String("out", "", "write <prefix>.json and <prefix>.csv aggregate reports")
	report := flag.Bool("report", false, "print the merged campaign-wide counter report")
	quick := flag.Bool("quick", false, "reduced problem sizes for builtin sweeps")
	timeout := flag.Float64("timeout", 0, "per-job wall-clock timeout in seconds (overrides the spec)")
	retries := flag.Int("retries", -1, "extra attempts after a watchdog stall (overrides the spec)")
	verbose := flag.Bool("v", false, "stream job lifecycle events to stderr")
	serve := flag.String("serve", "", "serve the live campaign dashboard on this address (e.g. 127.0.0.1:8080)")
	resume := flag.Bool("resume", false, "checkpoint in-flight IS jobs into the cache and resume interrupted ones mid-run (needs -cache)")
	ckptEvery := flag.Uint64("checkpoint-every", 250_000, "checkpoint cadence in simulated cycles (with -resume; spec checkpoint_every wins if set)")
	warmStart := flag.Bool("warm-start", false, "fork IS sweep points from a shared boot+keygen prefix snapshot (changes job cache identity)")
	server := flag.String("server", "", "submit to a resident smappic-fleetd at this base URL instead of running in-process")
	tenant := flag.String("tenant", "", "tenant identity for -server submissions (default: the fleet's default tenant)")
	priority := flag.Int("priority", 0, "priority within the tenant's own backlog for -server submissions (higher first)")
	flag.Parse()

	if *list {
		fmt.Println("builtin sweeps:")
		for _, s := range experiments.BuiltinSpecs(*quick) {
			jobs, err := s.Jobs()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %-14s %d points (%s on %v)\n", s.Name, len(jobs), s.Workloads[0], s.Shapes)
		}
		return
	}
	if *specArg == "" {
		fmt.Fprintln(os.Stderr, "smappic-fleet: -spec is required (or -list)")
		flag.Usage()
		os.Exit(2)
	}

	spec, ok := experiments.BuiltinSpec(*specArg, *quick)
	if !ok {
		data, err := os.ReadFile(*specArg)
		if err != nil {
			fatal(fmt.Errorf("spec %q is neither a builtin sweep nor a readable file: %w", *specArg, err))
		}
		spec, err = campaign.ParseSpec(data)
		if err != nil {
			fatal(err)
		}
	}
	if *timeout > 0 {
		spec.TimeoutSec = *timeout
	}
	if *retries >= 0 {
		spec.Retries = *retries
	}
	if *resume && spec.CheckpointEvery == 0 {
		spec.CheckpointEvery = *ckptEvery
	}
	if *resume && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "smappic-fleet: -resume needs a cache directory (-cache)")
		os.Exit(2)
	}
	if *warmStart {
		spec.WarmStart = true
	}

	if *server != "" {
		runRemote(*server, *tenant, *priority, spec, *out, *verbose)
		return
	}

	runner := &campaign.Runner{
		Workers: *workers,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if *cacheDir != "" {
		cache, err := campaign.OpenCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		runner.Cache = cache
	}

	var srv *obs.Server
	if *serve != "" {
		srv = obs.New()
		addr, err := srv.Start(*serve)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dashboard: http://%s/\n", addr)
	}
	if *verbose || srv != nil {
		var mu sync.Mutex // events arrive concurrently from workers
		verbosef := *verbose
		runner.OnEvent = func(ev campaign.Event) {
			if verbosef {
				mu.Lock()
				switch ev.Type {
				case campaign.EventStallRetry, campaign.EventPanicRetry:
					fmt.Fprintf(os.Stderr, "[%s] job %d/%d %s (attempt %d: %s)\n",
						ev.Type, ev.Index, ev.Total, ev.Label, ev.Attempt, ev.Err)
				case campaign.EventDone:
					fmt.Fprintf(os.Stderr, "[%s] job %d/%d %s (%d cycles)\n",
						ev.Type, ev.Index, ev.Total, ev.Label, ev.Cycles)
				case campaign.EventFailed, campaign.EventSkipped:
					fmt.Fprintf(os.Stderr, "[%s] job %d/%d %s: %s\n",
						ev.Type, ev.Index, ev.Total, ev.Label, ev.Err)
				default:
					fmt.Fprintf(os.Stderr, "[%s] job %d/%d %s\n", ev.Type, ev.Index, ev.Total, ev.Label)
				}
				mu.Unlock()
			}
			if srv != nil {
				srv.CampaignEvent(ev)
			}
		}
	}

	// Ctrl-C cancels gracefully: in-flight jobs abort at their next event
	// batch, completed jobs stay cached, and the run exits with a partial
	// summary a re-run will resume from.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := runner.Run(ctx, spec)
	if err != nil {
		fatal(err)
	}
	if srv != nil {
		srv.Flush()
	}
	fmt.Print(res.Summary())
	fmt.Printf("  wall clock: %s with %d workers\n", res.Elapsed.Round(1_000_000), *workers)

	agg := res.Aggregate()
	if *out != "" {
		doc, err := agg.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out+".json", doc, 0o644); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out+".csv", []byte(agg.CSV()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  reports: %s.json, %s.csv\n", *out, *out)
	}
	if *report {
		fmt.Println()
		fmt.Print(agg.MergedReport())
	}
	if res.Failed > 0 || res.Skipped > 0 {
		os.Exit(1)
	}
}

// runRemote submits the campaign to a resident fleetd, streams progress,
// and writes the served reports — byte-identical to the in-process run's.
func runRemote(server, tenant string, priority int, spec campaign.Spec, out string, verbose bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cl := &fleetsrv.Client{Server: server}
	sub, err := cl.Submit(ctx, tenant, priority, spec)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "submitted %s: campaign %s, %d jobs (%d cached)\n",
		spec.Name, sub.CampaignID, sub.Jobs, sub.Cached)

	if verbose {
		go cl.Events(ctx, sub.CampaignID, func(event string, data []byte) {
			fmt.Fprintf(os.Stderr, "[%s] %s\n", event, data)
		})
	}
	st, err := cl.Wait(ctx, sub.CampaignID, 0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("campaign %q on %s: %d points, %d done, %d failed\n",
		spec.Name, sub.CampaignID, st.Total, st.Done, st.Failed)

	if out != "" {
		doc, err := cl.Report(ctx, sub.CampaignID)
		if err != nil {
			fatal(err)
		}
		csv, err := cl.ReportCSV(ctx, sub.CampaignID)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(out+".json", doc, 0o644); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(out+".csv", csv, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  reports: %s.json, %s.csv\n", out, out)
	}
	if st.Failed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smappic-fleet:", err)
	os.Exit(1)
}
