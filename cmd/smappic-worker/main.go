// Command smappic-worker is the fleet's remote executor: it registers with a
// smappic-fleetd server, leases jobs one at a time, runs each through the
// same execution engine the in-process campaign runner uses (per-attempt
// timeouts, stall/panic retries, periodic checkpointing), heartbeats while
// working, and posts results back.
//
// Usage:
//
//	smappic-worker -server http://host:9090 [-cache /shared/cache] [-name NAME]
//
// Point -cache at the same directory the server uses (a shared filesystem)
// and a job re-leased from a dead worker resumes that worker's last periodic
// checkpoint instead of restarting from cycle 0. Kill a worker any way you
// like — the server re-queues its jobs when the heartbeat lapses, and the
// campaign's aggregate report is unchanged.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"smappic/internal/fleetsrv"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:9090", "fleet server base URL")
	cacheDir := flag.String("cache", "", "shared checkpoint/cache directory (same filesystem as the server's -cache for warm resume)")
	name := flag.String("name", hostname(), "worker label shown in fleet status")
	poll := flag.Float64("poll", 0.2, "idle re-poll interval in seconds")
	verbose := flag.Bool("v", false, "log lease lifecycle to stderr")
	flag.Parse()

	w := &fleetsrv.Worker{
		Server:   *server,
		Name:     *name,
		CacheDir: *cacheDir,
		Poll:     time.Duration(*poll * float64(time.Second)),
	}
	if *verbose {
		w.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "worker: "+format+"\n", args...)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "smappic-worker:", err)
		os.Exit(1)
	}
}

func hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return "worker"
	}
	return h
}
