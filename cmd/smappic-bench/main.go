// Command smappic-bench regenerates the paper's evaluation artifacts: every
// table and figure, from the 48-core NUMA studies to the cost models. It is
// the CLI face of the same harness bench_test.go drives.
//
// Usage:
//
//	smappic-bench [-exp table1,...,fig14|all] [-quick] [-counters-out dir]
//
// Besides the paper's tables and figures, the ablation studies and the
// "sharding" comparison (serial vs per-FPGA vs per-node engine granularity
// on the 48-core NUMA shape, the CLI face of scripts/bench.sh
// --parallel-json) are selectable by name.
//
// With -counters-out, every experiment sub-run writes its full counter
// state (the same JSON smappic-run's -metrics-json produces) into the given
// directory, one file per sub-run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"smappic/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: table1-table4, fig7-fig14, or all")
	quick := flag.Bool("quick", false, "reduced problem sizes (same shapes)")
	countersOut := flag.String("counters-out", "", "directory for per-sub-run counter snapshots (JSON)")
	flag.Parse()

	if *countersOut != "" {
		if err := os.MkdirAll(*countersOut, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dir := *countersOut
		experiments.SnapshotHook = func(label string, metrics []byte) {
			name := strings.NewReplacer("/", "_", "=", "-").Replace(label) + ".json"
			if err := os.WriteFile(filepath.Join(dir, name), metrics, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "counter snapshot %s: %v\n", label, err)
			}
		}
	}

	runs := map[string]func(bool) string{
		"table1": func(bool) string { return experiments.Table1() },
		"table2": func(bool) string { return experiments.Table2() },
		"table3": func(bool) string { return experiments.Table3() },
		"table4": func(bool) string { return experiments.Table4() },
		"fig7": func(q bool) string {
			r := experiments.Fig7(q)
			return r.String() + "\n\nHeatmap (cycles):\n" + r.Heatmap
		},
		"fig8":                  func(q bool) string { return experiments.Fig8(q).String() },
		"fig9":                  func(q bool) string { return experiments.Fig9(q).String() },
		"fig10":                 func(q bool) string { return experiments.Fig10(q).String() },
		"fig11":                 func(q bool) string { return experiments.Fig11(q).String() },
		"fig12":                 func(bool) string { return experiments.Fig12().String() },
		"fig13":                 func(bool) string { return experiments.Fig13().String() },
		"fig14":                 func(bool) string { return experiments.Fig14().String() },
		"ablation-homing":       func(bool) string { return experiments.AblationHoming().String() },
		"ablation-credits":      func(bool) string { return experiments.AblationCredits().String() },
		"ablation-interconnect": func(bool) string { return experiments.AblationInterconnect().String() },
		"ablation-core":         func(bool) string { return experiments.AblationCore().String() },
		"sharding":              func(q bool) string { return experiments.Sharding(q).String() },
	}
	order := []string{
		"table1", "table2", "table3", "table4",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"ablation-homing", "ablation-credits", "ablation-interconnect", "ablation-core",
		"sharding",
	}

	selected := order
	if *exp != "all" {
		selected = strings.Split(*exp, ",")
	}
	for _, name := range selected {
		name = strings.TrimSpace(strings.ToLower(name))
		fn, ok := runs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %s)\n", name, strings.Join(order, ", "))
			os.Exit(1)
		}
		start := time.Now()
		out := fn(*quick)
		fmt.Printf("===== %s (generated in %v) =====\n%s\n", name, time.Since(start).Round(time.Millisecond), out)
	}
}
