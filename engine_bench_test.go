// Engine throughput benchmarks: end-to-end simulations whose wall-clock is
// dominated by the event core (internal/sim) and the hot subsystems feeding
// it. They are the fixtures BENCH_ENGINE.json records and the ones
// scripts/bench.sh compares, so changes to the scheduler, the event pool or
// a hot call site show up here first. Run with:
//
//	go test -bench 'BenchmarkEngine_' -benchmem
//
// The exported cycles_per_sec metric is simulated cycles divided by
// wall-clock seconds — the throughput figure ISSUE/BENCH_ENGINE track —
// and sim_cycles pins the simulated work so a "speedup" from simulating
// less is visible as such.
package smappic_test

import (
	"testing"

	"smappic"
	"smappic/internal/rvasm"
)

// reportThroughput attaches cycles_per_sec and sim_cycles to b.
func reportThroughput(b *testing.B, cycles smappic.Time) {
	b.Helper()
	secPerOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(cycles)/secPerOp, "cycles_per_sec")
	b.ReportMetric(float64(cycles), "sim_cycles")
}

// BenchmarkEngine_Quickstart is the full-system path: boot the quickstart
// shape (1x1x2 Ariane tiles) from reset and run a bare-metal program that
// prints over the tunneled UART. Interpreter cores, caches, NoC, devices —
// every event flows through the serial engine.
func BenchmarkEngine_Quickstart(b *testing.B) {
	prog := rvasm.MustAssemble(smappic.ResetPC, `
		csrr t0, mhartid
		bnez t0, halt
		la   s0, msg
		li   s1, 0xF000001000
	putc:	lbu  t1, 0(s0)
		beqz t1, halt
		sd   t1, 0(s1)
	wait:	ld   t2, 40(s1)
		andi t2, t2, 0x20
		beqz t2, wait
		addi s0, s0, 1
		j    putc
	halt:	li a0, 0
		ebreak
	msg:	.asciz "engine benchmark\n"
	`)
	var cycles smappic.Time
	for i := 0; i < b.N; i++ {
		proto, err := smappic.Build(smappic.DefaultConfig(1, 1, 2))
		if err != nil {
			b.Fatal(err)
		}
		host := proto.Host()
		host.LoadProgram(0, prog)
		proto.Start()
		proto.Run()
		cycles = proto.Eng.Now()
		if host.Console(0) == "" {
			b.Fatal("program produced no console output")
		}
	}
	reportThroughput(b, cycles)
}

// BenchmarkEngine_NUMA48 is the execution-driven path at the paper's 48-core
// scale: NPB-IS on the numa48 shape (4x1x12), serial engine. Cross-FPGA
// traffic exercises the bridge, PCIe fabric and shell conversion layers.
func BenchmarkEngine_NUMA48(b *testing.B) {
	var cycles smappic.Time
	for i := 0; i < b.N; i++ {
		cycles = benchIS(b, 4, 1, 12, 0, 0, "")
	}
	reportThroughput(b, cycles)
}

// BenchmarkEngine_NPBIS8 is the 8-node (4x2x2) NPB-IS serial run — the same
// configuration as BenchmarkParallel_vs_Serial/8node/serial and the fixture
// the >=1.5x engine-throughput acceptance gate is measured on.
func BenchmarkEngine_NPBIS8(b *testing.B) {
	var cycles smappic.Time
	for i := 0; i < b.N; i++ {
		cycles = benchIS(b, 4, 2, 2, 0, 0, "")
	}
	reportThroughput(b, cycles)
}
