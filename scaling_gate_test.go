// Multi-core scaling gate: the wall-clock proof that -parallel wins. The
// local differential harnesses prove the sharded engine is byte-identical to
// serial; this test proves it is *faster* — on a real multi-core host the
// 8-node (4x2x2) NPB-IS run under the adaptive sharded engine must beat the
// serial reference by at least 1.5x.
//
// The gate only means something on a multi-core machine, so it is opt-in:
// it runs when SMAPPIC_SCALING_GATE=1 is set (the parallel-scaling CI job
// sets it on a >=4-vCPU runner) and refuses to pass vacuously on small
// hosts. Everything it measures goes through the same benchIS helper as
// BenchmarkParallel_vs_Serial, so the gated number and the recorded
// benchmark number are the same run.
package smappic_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// gateMinSpeedup is the acceptance floor from ISSUE/ROADMAP: 8-node NPB-IS,
// adaptive sharded vs serial, on a >=4-core host.
const gateMinSpeedup = 1.5

// gateRuns is how many times each mode is measured; the best (minimum)
// wall-clock per mode is used, which is the standard way to cut scheduler
// noise on shared CI runners.
const gateRuns = 3

// gateMeasure times one mode of an NPB-IS fixture, best of gateRuns.
func gateMeasure(t *testing.T, fpgas, nodes, tiles, parallel, adaptive int, granularity string) (best time.Duration, cycles int64) {
	t.Helper()
	for r := 0; r < gateRuns; r++ {
		start := time.Now()
		c := benchIS(t, fpgas, nodes, tiles, parallel, adaptive, granularity)
		d := time.Since(start)
		if r == 0 || d < best {
			best = d
		}
		cycles = int64(c)
	}
	return best, cycles
}

// TestParallelScalingGate fails the build if the adaptive sharded engine
// does not deliver >=1.5x over serial on the 8-node NPB-IS configuration.
// It logs a BENCH_PARALLEL.json-shaped fragment so CI logs double as the
// trajectory record.
func TestParallelScalingGate(t *testing.T) {
	if os.Getenv("SMAPPIC_SCALING_GATE") != "1" {
		t.Skip("set SMAPPIC_SCALING_GATE=1 to run the multi-core scaling gate")
	}
	if ncpu := runtime.NumCPU(); ncpu < 4 {
		t.Fatalf("scaling gate requires >=4 CPUs, host has %d; "+
			"run it on a multi-core host (the parallel-scaling CI job does)", ncpu)
	}

	serial, serialCycles := gateMeasure(t, 4, 2, 2, 0, 0, "")
	adaptive, parCycles := gateMeasure(t, 4, 2, 2, 4, 0, "")
	fixed, _ := gateMeasure(t, 4, 2, 2, 4, 1, "")

	if parCycles != serialCycles {
		t.Fatalf("sharded run simulated %d cycles, serial %d: the modes are not comparable",
			parCycles, serialCycles)
	}

	speedup := serial.Seconds() / adaptive.Seconds()
	fixedSpeedup := serial.Seconds() / fixed.Seconds()

	// BENCH_PARALLEL.json trajectory fragment (scripts/bench.sh emits the
	// same shape from the benchmark output).
	t.Logf("BENCH_PARALLEL fragment: %s", fmt.Sprintf(
		`{"fixture": "npb-is-8node", "gomaxprocs": %d, "serial_ms": %.1f, "parallel_ms": %.1f, "parallel_fixed_ms": %.1f, "speedup": %.2f, "fixed_speedup": %.2f, "sim_cycles": %d}`,
		runtime.GOMAXPROCS(0), float64(serial.Microseconds())/1000,
		float64(adaptive.Microseconds())/1000, float64(fixed.Microseconds())/1000,
		speedup, fixedSpeedup, serialCycles))

	if speedup < gateMinSpeedup {
		t.Errorf("8-node NPB-IS adaptive sharded speedup %.2fx < %.1fx gate "+
			"(serial %v, parallel %v on %d CPUs)",
			speedup, gateMinSpeedup, serial, adaptive, runtime.NumCPU())
	}
}

// TestNodeShardingGate is the sub-FPGA counterpart: on the 48-core NUMA
// shape (2x2x12) only two FPGAs exist, so per-FPGA sharding leaves half of
// a 4-vCPU runner idle — per-node sharding exposes all four node engines
// and must beat per-FPGA wall-clock outright. Like the scaling gate it is
// opt-in (SMAPPIC_SCALING_GATE=1 on a >=4-vCPU host), best-of-3 per mode,
// and it cross-checks that both granularities simulated the identical
// cycle count before comparing clocks.
func TestNodeShardingGate(t *testing.T) {
	if os.Getenv("SMAPPIC_SCALING_GATE") != "1" {
		t.Skip("set SMAPPIC_SCALING_GATE=1 to run the multi-core node-sharding gate")
	}
	if ncpu := runtime.NumCPU(); ncpu < 4 {
		t.Fatalf("node-sharding gate requires >=4 CPUs, host has %d; "+
			"run it on a multi-core host (the parallel-scaling CI job does)", ncpu)
	}

	perFPGA, fpgaCycles := gateMeasure(t, 2, 2, 12, 2, 0, "fpga")
	perNode, nodeCycles := gateMeasure(t, 2, 2, 12, 2, 0, "node")

	if nodeCycles != fpgaCycles {
		t.Fatalf("per-node run simulated %d cycles, per-FPGA %d: the granularities are not comparable",
			nodeCycles, fpgaCycles)
	}

	speedup := perFPGA.Seconds() / perNode.Seconds()
	t.Logf("BENCH_PARALLEL fragment: %s", fmt.Sprintf(
		`{"fixture": "npb-is-48core-2x2x12", "gomaxprocs": %d, "parallel_fpga_ms": %.1f, "parallel_node_ms": %.1f, "node_vs_fpga": %.2f, "sim_cycles": %d}`,
		runtime.GOMAXPROCS(0), float64(perFPGA.Microseconds())/1000,
		float64(perNode.Microseconds())/1000, speedup, fpgaCycles))

	if speedup < 1.0 {
		t.Errorf("48-core NPB-IS per-node sharding is slower than per-FPGA: %.2fx "+
			"(per-FPGA %v, per-node %v on %d CPUs)",
			speedup, perFPGA, perNode, runtime.NumCPU())
	}
}
