// gng reproduces the accelerator case study of paper §4.2: a 1x1x2
// prototype with an Ariane slot in tile 0 and the OpenCores Gaussian Noise
// Generator in tile 1, comparing software generation against 1/2/4-sample
// hardware fetches (Fig. 10).
package main

import (
	"fmt"
	"log"
	"math"

	"smappic"
	"smappic/internal/accel"
	"smappic/internal/workload"
)

func main() {
	base := func() *smappic.Kernel {
		cfg := smappic.DefaultConfig(1, 1, 2)
		cfg.Core = smappic.CoreNone
		proto, err := smappic.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Integrate the accelerator: tile 1's compute slot becomes the GNG
		// (the paper's 1.5-hour TRI integration, one line here).
		proto.Nodes[0].Tiles[1].Accel = accel.NewGNG(1, proto.StatsForNode(0), "gng")
		return smappic.BootKernel(proto, smappic.DefaultKernelConfig())
	}

	p := workload.DefaultNoiseParams()
	fmt.Printf("benchmark A (generate %d samples) and B (apply noise to %d bytes):\n\n",
		p.Samples, p.ApplyLen)
	fmt.Printf("%-6s %16s %16s %10s %10s\n", "mode", "gen cycles", "apply cycles", "gen x", "apply x")

	var genSW, appSW float64
	for _, mode := range workload.NoiseModes {
		g := workload.RunNoiseGenerator(base(), mode, p)
		a := workload.RunNoiseApplier(base(), mode, p)
		if mode == workload.NoiseSW {
			genSW, appSW = float64(g.Cycles), float64(a.Cycles)
		}
		fmt.Printf("%-6s %16d %16d %10.1f %10.1f\n", mode, g.Cycles, a.Cycles,
			genSW/float64(g.Cycles), appSW/float64(a.Cycles))
	}

	// Verify the noise is actually Gaussian — the accelerator is
	// functional, not a stub.
	g := accel.NewGNG(99, nil, "check")
	const n = 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := float64(g.Sample()) / 2048
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	fmt.Printf("\nsample statistics over %d values: mean %.4f, stddev %.4f (want ~0, ~1)\n", n, mean, std)
	fmt.Println("(paper Fig. 10: A speeds up 12/21/32x for 1/2/4 fetches; B 7.4/10/13x)")
}
