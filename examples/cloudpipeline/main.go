// cloudpipeline reproduces the in-situ study of paper §4.4 / Fig. 12: a
// SMAPPIC prototype as a first-class citizen inside an AWS pipeline. An
// HTTP request enters a Lambda gateway, is proxied to the Nginx web server
// running on the prototype, whose PHP backend fetches a dataset from S3,
// attaches the current time and responds back through the chain.
package main

import (
	"fmt"

	"smappic/internal/experiments"
)

func main() {
	fmt.Println("request: GET /index.php -> Lambda -> Nginx(SMAPPIC 1x1x4) -> S3")
	r := experiments.Fig12()
	fmt.Println()
	fmt.Print(r.Trace.String())
	fmt.Printf("\nresponse body: %s\n", r.Trace.Response)
	fmt.Printf("prototype's share of end-to-end latency: %.1f%%\n", r.PrototypeShare*100)
	fmt.Println("\nthe prototype runs at 100 MHz, fast enough to serve real cloud traffic in situ;")
	fmt.Println("this is the workflow that lets researchers test custom architectures against live AWS services.")
}
