// Quickstart: build the smallest useful prototype (1x1x2), load a
// bare-metal RISC-V program over the host DMA path, boot the cores and
// watch the console UART — the whole SMAPPIC loop in one file.
package main

import (
	"fmt"
	"log"

	"smappic"
	"smappic/internal/rvasm"
)

func main() {
	// One FPGA, one node, two Ariane tiles (the paper's GNG-demo shape).
	cfg := smappic.DefaultConfig(1, 1, 2)
	proto, err := smappic.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A bare-metal program: hart 0 computes 10! and prints it in decimal
	// over the UART; hart 1 just parks.
	prog := rvasm.MustAssemble(smappic.ResetPC, `
		csrr t0, mhartid
		bnez t0, halt

		# factorial(10)
		li   a0, 1
		li   t1, 10
	fact:	mul  a0, a0, t1
		addi t1, t1, -1
		bnez t1, fact

		# print "10! = " then the number
		la   s0, label
		call puts
		mv   t3, a0
		la   s2, digend
		sb   zero, 0(s2)
	conv:	addi s2, s2, -1
		li   t4, 10
		remu t5, t3, t4
		addi t5, t5, 48      # '0'
		sb   t5, 0(s2)
		divu t3, t3, t4
		bnez t3, conv
		mv   s0, s2
		call puts
		la   s0, nl
		call puts
	halt:	li a0, 0
		ebreak

	# puts: print NUL-terminated string at s0
	puts:	li   s1, 0xF000001000
	ploop:	lbu  t1, 0(s0)
		beqz t1, pdone
		sd   t1, 0(s1)
	pwait:	ld   t2, 40(s1)
		andi t2, t2, 0x20
		beqz t2, pwait
		addi s0, s0, 1
		j    ploop
	pdone:	ret

	label:	.asciz "10! = "
	nl:	.asciz "\n"
	digits:	.space 20
	digend:	.space 4
	`)

	host := proto.Host()
	host.LoadProgram(0, prog)
	proto.Start()
	proto.Run()

	fmt.Printf("console: %s", host.Console(0))
	fmt.Printf("simulated %d cycles = %.3f ms at %d MHz\n",
		proto.Eng.Now(), proto.Seconds(proto.Eng.Now())*1e3, proto.Cfg.ClockMHz)
	fmt.Printf("memory traffic: %d DRAM reads, %d DRAM writes\n",
		proto.Stats.Get("node0.dram.reads"), proto.Stats.Get("node0.dram.writes"))
}
