// maple reproduces the hardware/software co-development case study of paper
// §4.3: the MAPLE decoupled-access engine on a 1x1x6 prototype (Ariane
// slots in tiles 0/1, MAPLE in tile 2), compared against single-thread and
// two-thread execution on four irregular kernels (Fig. 11).
package main

import (
	"fmt"
	"log"

	"smappic"
	"smappic/internal/workload"
)

func main() {
	newKernel := func() *smappic.Kernel {
		cfg := smappic.DefaultConfig(1, 1, 6)
		cfg.Core = smappic.CoreNone
		proto, err := smappic.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return smappic.BootKernel(proto, smappic.DefaultKernelConfig())
	}

	p := workload.DefaultIrregularParams()
	fmt.Printf("irregular kernels: %d rows, %d nnz/row (dense operand exceeds the private caches)\n\n",
		p.Rows, p.NNZPerRow)
	fmt.Printf("%-6s %12s %12s %12s %10s %10s\n",
		"kernel", "1T cycles", "MAPLE cycles", "2T cycles", "MAPLE x", "2T x")

	for _, kind := range workload.Kernels {
		var cycles [3]float64
		for i, mode := range []workload.IrregularMode{workload.OneThread, workload.WithMAPLE, workload.TwoThreads} {
			r := workload.RunIrregular(newKernel(), kind, mode, p)
			cycles[i] = float64(r.Cycles)
		}
		fmt.Printf("%-6s %12.0f %12.0f %12.0f %10.2f %10.2f\n",
			kind, cycles[0], cycles[1], cycles[2], cycles[0]/cycles[1], cycles[0]/cycles[2])
	}
	fmt.Println("\n(paper Fig. 11: MAPLE 2.4/1.0/1.9/2.2 vs 2-thread 1.6/1.4/1.2/1.8 on SPMV/SPMM/SDHP/BFS)")
	fmt.Println("MAPLE wins on latency-bound kernels; the second thread wins on compute-bound SPMM.")
}
