// numa48 reproduces the paper's flagship case study (§4.1) at example
// scale: a 48-core, 4-node, cache-coherent RISC-V system (4x1x12), the
// inter-core latency heatmap with its four visible NUMA domains, and the
// NUMA-on/off integer-sort comparison.
package main

import (
	"fmt"
	"log"

	"smappic"
	"smappic/internal/core"
	"smappic/internal/workload"
)

func main() {
	// 4 FPGAs x 1 node x 12 tiles = the paper's 48-core NUMA system.
	// CoreNone boots the mini-kernel for execution-driven workloads.
	cfg := smappic.DefaultConfig(4, 1, 12)
	cfg.Core = smappic.CoreNone
	proto, err := smappic.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Latency structure (Fig. 7): measure a few representative pairs.
	fmt.Println("inter-core round-trip latencies (cycles):")
	pairs := []struct {
		i, j smappic.GID
		what string
	}{
		{smappic.GID{Node: 0, Tile: 0}, smappic.GID{Node: 0, Tile: 1}, "same node, neighbors"},
		{smappic.GID{Node: 0, Tile: 0}, smappic.GID{Node: 0, Tile: 11}, "same node, far corner"},
		{smappic.GID{Node: 0, Tile: 0}, smappic.GID{Node: 1, Tile: 0}, "adjacent node"},
		{smappic.GID{Node: 0, Tile: 0}, smappic.GID{Node: 3, Tile: 11}, "far node, far tile"},
	}
	for n, pr := range pairs {
		lat := proto.MeasureLatency(pr.i, pr.j, n+1)
		fmt.Printf("  core %2d -> core %2d  %4d cycles   (%s)\n",
			pr.i.Node*12+pr.i.Tile, pr.j.Node*12+pr.j.Tile, lat, pr.what)
	}

	// NUMA on vs off (Fig. 8's mechanism) with the NPB integer sort.
	fmt.Println("\nparallel integer sort, 24 threads, 32Ki keys:")
	for _, numa := range []bool{true, false} {
		p, err := smappic.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		kc := smappic.DefaultKernelConfig()
		kc.NUMA = numa
		k := smappic.BootKernel(p, kc)
		ip := workload.DefaultISParams(24)
		res := workload.RunIS(k, ip)
		mode := "on "
		if !numa {
			mode = "off"
		}
		fmt.Printf("  NUMA %s: %8d cycles (%.2f ms) sorted=%v\n",
			mode, res.Cycles, res.Seconds*1e3, res.Sorted)
	}

	// The device tree the kernel would hand to Linux.
	fmt.Printf("\nNUMA topology: %d nodes x %d cores, DRAM per node at:\n",
		cfg.TotalNodes(), cfg.TilesPerNode)
	for n := 0; n < cfg.TotalNodes(); n++ {
		fmt.Printf("  node %d: %#x\n", n, core.DRAMBase+uint64(n)*core.NodeDRAMSize)
	}
}
