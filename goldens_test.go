// Golden-metrics regression fixtures: the serial engine's full MetricsJSON
// for the two example configurations is pinned under testdata/. Any change
// to event ordering, cache policy, interconnect timing or stats accounting
// shows up as a byte diff against the fixture — run with -update after an
// intentional model change to regenerate:
//
//	go test -run TestGolden -update .
package smappic_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"smappic"
	"smappic/internal/core"
	"smappic/internal/kernel"
	"smappic/internal/rvasm"
	"smappic/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden fixtures under testdata/")

// checkGolden compares got against testdata/<name>, or rewrites the fixture
// with -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGolden -update .` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("metrics drifted from %s (%d vs %d bytes):\n%s\nrun `go test -run TestGolden -update .` if the change is intentional",
			path, len(got), len(want), firstDiff(want, got))
	}
}

// TestGoldenQuickstart pins the examples/quickstart run: the factorial
// program on a 1x1x2 prototype, full serial MetricsJSON plus the console
// transcript.
func TestGoldenQuickstart(t *testing.T) {
	cfg := smappic.DefaultConfig(1, 1, 2)
	p, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := rvasm.MustAssemble(smappic.ResetPC, quickstartProgram)
	host := p.Host()
	host.LoadProgram(0, prog)
	p.Start()
	p.Run()

	if got, want := host.Console(0), "10! = 3628800\n"; got != want {
		t.Fatalf("console = %q, want %q", got, want)
	}
	m, err := p.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "quickstart_metrics.json", m)
}

// TestGoldenNUMA48 pins the examples/numa48 flagship configuration: the
// 48-core 4-node system (4x1x12) running the NPB integer sort on the
// mini-kernel with NUMA-aware placement. The key count is scaled down from
// the example to keep the fixture cheap to regenerate.
func TestGoldenNUMA48(t *testing.T) {
	cfg := smappic.DefaultConfig(4, 1, 12)
	cfg.Core = core.CoreNone
	p, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(p, kernel.DefaultConfig())
	ip := workload.DefaultISParams(24)
	ip.Keys = 1 << 13
	r := workload.RunIS(k, ip)
	if !r.Sorted {
		t.Fatal("integer sort output not sorted")
	}
	m, err := p.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "numa48_metrics.json", m)
}

// quickstartProgram is the examples/quickstart payload: hart 0 computes 10!
// and prints it in decimal over the UART; hart 1 parks.
const quickstartProgram = `
	csrr t0, mhartid
	bnez t0, halt

	# factorial(10)
	li   a0, 1
	li   t1, 10
fact:	mul  a0, a0, t1
	addi t1, t1, -1
	bnez t1, fact

	# print "10! = " then the number
	la   s0, label
	call puts
	mv   t3, a0
	la   s2, digend
	sb   zero, 0(s2)
conv:	addi s2, s2, -1
	li   t4, 10
	remu t5, t3, t4
	addi t5, t5, 48      # '0'
	sb   t5, 0(s2)
	divu t3, t3, t4
	bnez t3, conv
	mv   s0, s2
	call puts
	la   s0, nl
	call puts
halt:	li a0, 0
	ebreak

# puts: print NUL-terminated string at s0
puts:	li   s1, 0xF000001000
ploop:	lbu  t1, 0(s0)
	beqz t1, pdone
	sd   t1, 0(s1)
pwait:	ld   t2, 40(s1)
	andi t2, t2, 0x20
	beqz t2, pwait
	addi s0, s0, 1
	j    ploop
pdone:	ret

label:	.asciz "10! = "
nl:	.asciz "\n"
digits:	.space 20
digend:	.space 4
`
