package interrupt

import (
	"testing"

	"smappic/internal/sim"
)

// wiring connects a packetizer straight to per-hart depacketizers,
// emulating the NoC path with zero latency.
type wiring struct {
	depacks []*Depacketizer
	packets int
}

func newWiring(harts int) (*wiring, *Packetizer) {
	w := &wiring{}
	for i := 0; i < harts; i++ {
		w.depacks = append(w.depacks, NewDepacketizer(func(Kind, bool) {}))
	}
	p := NewPacketizer(func(hart int, c *Change) {
		w.packets++
		w.depacks[hart].Handle(c)
	})
	return w, p
}

func TestPacketizerOnlySendsTransitions(t *testing.T) {
	w, p := newWiring(2)
	p.Set(0, Software, true)
	p.Set(0, Software, true) // duplicate level: no packet
	p.Set(0, Software, false)
	p.Set(1, Timer, true)
	if w.packets != 3 {
		t.Fatalf("sent %d packets, want 3 (transitions only)", w.packets)
	}
	if w.depacks[0].Level(Software) {
		t.Error("hart0 msip should be low")
	}
	if !w.depacks[1].Level(Timer) {
		t.Error("hart1 mtip should be high")
	}
}

func TestDepacketizerDrivesWires(t *testing.T) {
	var got []string
	d := NewDepacketizer(func(k Kind, l bool) {
		s := k.String()
		if l {
			s += "+"
		} else {
			s += "-"
		}
		got = append(got, s)
	})
	d.Handle(&Change{Kind: External, Level: true})
	d.Handle(&Change{Kind: External, Level: false})
	if len(got) != 2 || got[0] != "meip+" || got[1] != "meip-" {
		t.Fatalf("wire sequence = %v", got)
	}
}

func TestClintSoftwareInterrupt(t *testing.T) {
	eng := sim.NewEngine()
	w, p := newWiring(4)
	c := NewCLINT(eng, 4, p)
	c.Write(ClintMSIPBase+4*2, 4, 1) // raise MSIP for hart 2
	if !w.depacks[2].Level(Software) {
		t.Fatal("hart2 msip not raised")
	}
	if c.Read(ClintMSIPBase+4*2, 4) != 1 {
		t.Fatal("msip readback != 1")
	}
	c.Write(ClintMSIPBase+4*2, 4, 0)
	if w.depacks[2].Level(Software) {
		t.Fatal("hart2 msip not cleared")
	}
}

func TestClintTimerFiresAtCompare(t *testing.T) {
	eng := sim.NewEngine()
	w, p := newWiring(1)
	c := NewCLINT(eng, 1, p)
	c.Write(ClintMTimeCmpBase, 8, 100)
	if w.depacks[0].Level(Timer) {
		t.Fatal("mtip raised before compare time")
	}
	eng.RunUntil(99)
	if w.depacks[0].Level(Timer) {
		t.Fatal("mtip raised one cycle early")
	}
	eng.RunUntil(101)
	eng.Run()
	if !w.depacks[0].Level(Timer) {
		t.Fatal("mtip not raised at compare time")
	}
	// Writing a new future compare clears it.
	c.Write(ClintMTimeCmpBase, 8, 10000)
	if w.depacks[0].Level(Timer) {
		t.Fatal("mtip not cleared by future mtimecmp")
	}
}

func TestClintMTimeTracksClock(t *testing.T) {
	eng := sim.NewEngine()
	_, p := newWiring(1)
	c := NewCLINT(eng, 1, p)
	eng.RunUntil(1234)
	if got := c.Read(ClintMTime, 8); got != 1234 {
		t.Fatalf("mtime = %d, want 1234", got)
	}
}

func TestPlicClaimComplete(t *testing.T) {
	w, p := newWiring(2)
	plic := NewPLIC(2, 4, p)
	plic.Write(PlicEnableBase, 4, 1<<2) // hart0 enables source 2
	plic.SetLevel(2, true)
	if !w.depacks[0].Level(External) {
		t.Fatal("meip not raised for enabled hart")
	}
	if w.depacks[1].Level(External) {
		t.Fatal("meip raised for hart with source disabled")
	}
	// Claim.
	if s := plic.Read(PlicClaimBase, 4); s != 2 {
		t.Fatalf("claim = %d, want 2", s)
	}
	if w.depacks[0].Level(External) {
		t.Fatal("meip should drop while source in service")
	}
	// Complete with level still high: re-raises.
	plic.Write(PlicClaimBase, 4, 2)
	if !w.depacks[0].Level(External) {
		t.Fatal("meip should re-raise after complete with level high")
	}
	// Device drops the level; complete cycle ends quietly.
	if s := plic.Read(PlicClaimBase, 4); s != 2 {
		t.Fatalf("second claim = %d, want 2", s)
	}
	plic.SetLevel(2, false)
	plic.Write(PlicClaimBase, 4, 2)
	if w.depacks[0].Level(External) {
		t.Fatal("meip high with no pending sources")
	}
}

func TestPlicPriorityLowestSourceWins(t *testing.T) {
	_, p := newWiring(1)
	plic := NewPLIC(1, 4, p)
	plic.Write(PlicEnableBase, 4, 1<<1|1<<3)
	plic.SetLevel(3, true)
	plic.SetLevel(1, true)
	if s := plic.Read(PlicClaimBase, 4); s != 1 {
		t.Fatalf("claim = %d, want 1 (lowest pending)", s)
	}
	if s := plic.Read(PlicClaimBase, 4); s != 3 {
		t.Fatalf("next claim = %d, want 3", s)
	}
}

func TestPlicClaimWithNothingPendingReturnsZero(t *testing.T) {
	_, p := newWiring(1)
	plic := NewPLIC(1, 2, p)
	if s := plic.Read(PlicClaimBase, 4); s != 0 {
		t.Fatalf("claim = %d, want 0", s)
	}
}

func TestPlicEnableReadback(t *testing.T) {
	_, p := newWiring(1)
	plic := NewPLIC(1, 4, p)
	plic.Write(PlicEnableBase, 4, 0b10110)
	if got := plic.Read(PlicEnableBase, 4); got != 0b10110 {
		t.Fatalf("enable readback = %#b", got)
	}
}
