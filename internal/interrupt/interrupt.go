// Package interrupt provides SMAPPIC's RISC-V interrupt machinery: a CLINT
// (software + timer interrupts), a PLIC-lite (external interrupts), and the
// interrupt packetizer/depacketizer pair of paper §3.3 / Fig. 6.
//
// The RISC-V specification notifies cores of pending interrupts with
// dedicated wires from the controller into each core. That does not scale to
// manycore nodes (long cross-node routes) and cannot cross node boundaries
// at all. SMAPPIC replaces the wires with NoC packets: the packetizer scans
// the controller outputs and sends a packet when a level changes; the
// depacketizer beside each core sniffs the traffic and drives the local
// wires accordingly.
package interrupt

import "smappic/internal/sim"

// Kind is a RISC-V interrupt line into a hart.
type Kind int

const (
	Software Kind = iota // MSIP
	Timer                // MTIP
	External             // MEIP
)

// String names the wire.
func (k Kind) String() string {
	switch k {
	case Software:
		return "msip"
	case Timer:
		return "mtip"
	case External:
		return "meip"
	}
	return "irq?"
}

// Change is the payload of an interrupt packet: a level transition on one
// hart's wire.
type Change struct {
	Hart  int
	Kind  Kind
	Level bool
}

// Flits is the NoC size of an interrupt packet (single control flit plus
// header, OpenPiton-style 3-flit message).
const Flits = 3

// Packetizer watches the interrupt controllers' output wires and emits a
// packet per level transition. The platform supplies send, which routes a
// Change to the destination hart's tile (possibly across nodes).
type Packetizer struct {
	send func(hart int, c *Change)
	last map[int]map[Kind]bool
}

// NewPacketizer creates a packetizer delivering through send.
func NewPacketizer(send func(hart int, c *Change)) *Packetizer {
	return &Packetizer{send: send, last: make(map[int]map[Kind]bool)}
}

// Set drives one controller output. Only transitions generate packets.
func (p *Packetizer) Set(hart int, kind Kind, level bool) {
	m, ok := p.last[hart]
	if !ok {
		m = make(map[Kind]bool)
		p.last[hart] = m
	}
	if m[kind] == level {
		return
	}
	m[kind] = level
	p.send(hart, &Change{Hart: hart, Kind: kind, Level: level})
}

// Depacketizer sits beside a core, receives interrupt packets and drives
// the core's wires through the assert callback.
type Depacketizer struct {
	assert func(kind Kind, level bool)
	level  map[Kind]bool
}

// NewDepacketizer creates a depacketizer driving assert.
func NewDepacketizer(assert func(kind Kind, level bool)) *Depacketizer {
	return &Depacketizer{assert: assert, level: make(map[Kind]bool)}
}

// Handle applies an interrupt packet to the local wires.
func (d *Depacketizer) Handle(c *Change) {
	d.level[c.Kind] = c.Level
	d.assert(c.Kind, c.Level)
}

// Level reports the current state of a wire (for tests).
func (d *Depacketizer) Level(k Kind) bool { return d.level[k] }

// CLINT register map (offsets within the CLINT MMIO window), following the
// SiFive convention used by Ariane/OpenPiton platforms.
const (
	ClintMSIPBase     = 0x0000 // 4 bytes per hart
	ClintMTimeCmpBase = 0x4000 // 8 bytes per hart
	ClintMTime        = 0xBFF8
)

// CLINT is the core-local interruptor: software interrupts via MSIP
// registers and timer interrupts via MTIMECMP against the free-running
// MTIME counter (which ticks with the prototype clock).
type CLINT struct {
	eng   *sim.Engine
	pack  *Packetizer
	harts int

	msip     []bool
	mtimecmp []uint64
	armed    []bool // a wakeup event is scheduled for this hart
}

// NewCLINT builds a CLINT for the given number of harts, signalling through
// the packetizer.
func NewCLINT(eng *sim.Engine, harts int, pack *Packetizer) *CLINT {
	return &CLINT{
		eng: eng, pack: pack, harts: harts,
		msip:     make([]bool, harts),
		mtimecmp: make([]uint64, harts),
		armed:    make([]bool, harts),
	}
}

// Name identifies the device in the chipset address map.
func (c *CLINT) Name() string { return "clint" }

// MTime returns the current timer value.
func (c *CLINT) MTime() uint64 { return uint64(c.eng.Now()) }

// Read implements the MMIO read for the CLINT window.
func (c *CLINT) Read(off uint64, size int) uint64 {
	switch {
	case off >= ClintMSIPBase && off < ClintMSIPBase+uint64(4*c.harts):
		h := int((off - ClintMSIPBase) / 4)
		if c.msip[h] {
			return 1
		}
		return 0
	case off >= ClintMTimeCmpBase && off < ClintMTimeCmpBase+uint64(8*c.harts):
		return c.mtimecmp[(off-ClintMTimeCmpBase)/8]
	case off == ClintMTime:
		return c.MTime()
	}
	return 0
}

// Write implements the MMIO write for the CLINT window.
func (c *CLINT) Write(off uint64, size int, v uint64) {
	switch {
	case off >= ClintMSIPBase && off < ClintMSIPBase+uint64(4*c.harts):
		h := int((off - ClintMSIPBase) / 4)
		c.msip[h] = v&1 != 0
		c.pack.Set(h, Software, c.msip[h])
	case off >= ClintMTimeCmpBase && off < ClintMTimeCmpBase+uint64(8*c.harts):
		h := int((off - ClintMTimeCmpBase) / 8)
		c.mtimecmp[h] = v
		c.evaluateTimer(h)
	}
}

// evaluateTimer updates MTIP for hart h and arms a wakeup if the compare
// value is in the future.
func (c *CLINT) evaluateTimer(h int) {
	now := c.MTime()
	if now >= c.mtimecmp[h] {
		c.pack.Set(h, Timer, true)
		return
	}
	c.pack.Set(h, Timer, false)
	if !c.armed[h] {
		c.armed[h] = true
		c.eng.At(sim.Time(c.mtimecmp[h]), func() {
			c.armed[h] = false
			c.evaluateTimer(h)
		})
	}
}

// PLIC is a simplified platform-level interrupt controller: level-sensitive
// sources, per-hart enable masks, claim/complete. Priorities are fixed
// (lowest source number wins), which matches how the platform uses it.
type PLIC struct {
	pack    *Packetizer
	harts   int
	sources int

	level   []bool   // device-driven levels, by source (1-based)
	claimed []bool   // source claimed and in service
	enable  [][]bool // [hart][source]
}

// PLIC register map (offsets within the PLIC MMIO window).
const (
	PlicEnableBase = 0x2000 // one 32-bit enable word per hart
	PlicClaimBase  = 0x200004
	PlicClaimStep  = 0x1000
)

// NewPLIC builds a PLIC with the given hart and source counts.
func NewPLIC(harts, sources int, pack *Packetizer) *PLIC {
	p := &PLIC{
		pack: pack, harts: harts, sources: sources,
		level:   make([]bool, sources+1),
		claimed: make([]bool, sources+1),
		enable:  make([][]bool, harts),
	}
	for h := range p.enable {
		p.enable[h] = make([]bool, sources+1)
	}
	return p
}

// Name identifies the device in the chipset address map.
func (p *PLIC) Name() string { return "plic" }

// SetLevel drives a source's interrupt level (called by devices).
func (p *PLIC) SetLevel(source int, level bool) {
	p.level[source] = level
	p.update()
}

// pendingFor returns the lowest pending enabled unclaimed source for hart h.
func (p *PLIC) pendingFor(h int) int {
	for s := 1; s <= p.sources; s++ {
		if p.level[s] && !p.claimed[s] && p.enable[h][s] {
			return s
		}
	}
	return 0
}

func (p *PLIC) update() {
	for h := 0; h < p.harts; h++ {
		p.pack.Set(h, External, p.pendingFor(h) != 0)
	}
}

// Read implements MMIO reads; reading the claim register claims the highest
// priority pending source.
func (p *PLIC) Read(off uint64, size int) uint64 {
	if off >= PlicClaimBase && (off-PlicClaimBase)%PlicClaimStep == 0 {
		h := int((off - PlicClaimBase) / PlicClaimStep)
		if h < p.harts {
			s := p.pendingFor(h)
			if s != 0 {
				p.claimed[s] = true
				p.update()
			}
			return uint64(s)
		}
	}
	if off >= PlicEnableBase && off < PlicEnableBase+uint64(4*p.harts) {
		h := int((off - PlicEnableBase) / 4)
		var v uint64
		for s := 1; s <= p.sources && s < 32; s++ {
			if p.enable[h][s] {
				v |= 1 << s
			}
		}
		return v
	}
	return 0
}

// Write implements MMIO writes; writing a source number to the claim
// register completes it.
func (p *PLIC) Write(off uint64, size int, v uint64) {
	if off >= PlicClaimBase && (off-PlicClaimBase)%PlicClaimStep == 0 {
		s := int(v)
		if s >= 1 && s <= p.sources {
			p.claimed[s] = false
			p.update()
		}
		return
	}
	if off >= PlicEnableBase && off < PlicEnableBase+uint64(4*p.harts) {
		h := int((off - PlicEnableBase) / 4)
		for s := 1; s <= p.sources && s < 32; s++ {
			p.enable[h][s] = v&(1<<s) != 0
		}
		p.update()
	}
}
