package noc

import (
	"testing"
	"testing/quick"

	"smappic/internal/sim"
)

func newTestMesh(t *testing.T, w, h int) (*sim.Engine, *Mesh) {
	t.Helper()
	eng := sim.NewEngine()
	m := New(eng, "mesh", DefaultParams(w, h), nil)
	return eng, m
}

func TestHopCountManhattan(t *testing.T) {
	_, m := newTestMesh(t, 4, 3)
	cases := []struct {
		src, dst int
		want     int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 3},  // same row, 3 east
		{0, 11, 5}, // 3 east + 2 south
		{11, 0, 5},
		{5, 6, 1},
	}
	for _, c := range cases {
		got := m.HopCount(Dest{PortTile, c.src}, Dest{PortTile, c.dst})
		if got != c.want {
			t.Errorf("HopCount(%d->%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestHopCountExitPorts(t *testing.T) {
	_, m := newTestMesh(t, 4, 3)
	// Tile 5 -> bridge: 5 is at (1,1); to tile 0 is 2 hops, plus exit link.
	if got := m.HopCount(Dest{PortTile, 5}, Dest{Port: PortBridge}); got != 3 {
		t.Errorf("tile5->bridge hops = %d, want 3", got)
	}
	if got := m.HopCount(Dest{Port: PortBridge}, Dest{PortTile, 5}); got != 3 {
		t.Errorf("bridge->tile5 hops = %d, want 3", got)
	}
	if got := m.HopCount(Dest{Port: PortChipset}, Dest{Port: PortBridge}); got != 2 {
		t.Errorf("chipset->bridge hops = %d, want 2", got)
	}
}

func TestDeliveryLatencyMatchesHops(t *testing.T) {
	eng, m := newTestMesh(t, 4, 3)
	var at sim.Time
	m.AttachTile(11, func(p *Packet) { at = eng.Now() })
	m.Send(&Packet{Class: NoC1, Src: Dest{PortTile, 0}, Dst: Dest{PortTile, 11}, Flits: 1})
	eng.Run()
	// 5 hops x (2 router + 1 link) = 15 cycles.
	if at != 15 {
		t.Fatalf("delivery at %d, want 15", at)
	}
}

func TestSamePortDeliveryTakesRouterDelay(t *testing.T) {
	eng, m := newTestMesh(t, 2, 1)
	var at sim.Time
	m.AttachTile(0, func(p *Packet) { at = eng.Now() })
	m.Send(&Packet{Class: NoC2, Src: Dest{PortTile, 0}, Dst: Dest{PortTile, 0}, Flits: 1})
	eng.Run()
	if at != 2 {
		t.Fatalf("self delivery at %d, want 2", at)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	eng, m := newTestMesh(t, 2, 1)
	var times []sim.Time
	m.AttachTile(1, func(p *Packet) { times = append(times, eng.Now()) })
	// Two 8-flit packets over the same single link, injected the same cycle.
	for i := 0; i < 2; i++ {
		m.Send(&Packet{Class: NoC1, Src: Dest{PortTile, 0}, Dst: Dest{PortTile, 1}, Flits: 8})
	}
	eng.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(times))
	}
	// First: 3 cycles hop latency. Second: queued behind 8 flits.
	if times[0] != 3 {
		t.Errorf("first delivery at %d, want 3", times[0])
	}
	if times[1] != 11 {
		t.Errorf("second delivery at %d, want 11 (3 + 8 flit serialization)", times[1])
	}
}

func TestClassesAreIndependentNetworks(t *testing.T) {
	eng, m := newTestMesh(t, 2, 1)
	var times []sim.Time
	m.AttachTile(1, func(p *Packet) { times = append(times, eng.Now()) })
	m.Send(&Packet{Class: NoC1, Src: Dest{PortTile, 0}, Dst: Dest{PortTile, 1}, Flits: 8})
	m.Send(&Packet{Class: NoC2, Src: Dest{PortTile, 0}, Dst: Dest{PortTile, 1}, Flits: 8})
	eng.Run()
	if len(times) != 2 || times[0] != 3 || times[1] != 3 {
		t.Fatalf("cross-class interference: deliveries at %v, want [3 3]", times)
	}
}

func TestDeliveryOrderPreservedOnSamePath(t *testing.T) {
	eng, m := newTestMesh(t, 4, 1)
	var order []int
	m.AttachTile(3, func(p *Packet) { order = append(order, p.Payload.(int)) })
	for i := 0; i < 5; i++ {
		m.Send(&Packet{Class: NoC1, Src: Dest{PortTile, 0}, Dst: Dest{PortTile, 3}, Flits: 2, Payload: i})
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("packets reordered on same path: %v", order)
		}
	}
}

func TestStatsRecorded(t *testing.T) {
	eng := sim.NewEngine()
	var st sim.Stats
	m := New(eng, "n0", DefaultParams(2, 2), &st)
	m.AttachTile(3, func(p *Packet) {})
	m.Send(&Packet{Class: NoC1, Src: Dest{PortTile, 0}, Dst: Dest{PortTile, 3}, Flits: 3})
	eng.Run()
	if st.Get("n0.noc1.packets") != 1 {
		t.Error("packet counter not incremented")
	}
	if st.Get("n0.noc1.flits") != 3 {
		t.Error("flit counter wrong")
	}
	if st.Get("n0.noc1.hop_cycles") == 0 {
		t.Error("hop_cycles not recorded")
	}
}

func TestMissingHandlerPanics(t *testing.T) {
	eng, m := newTestMesh(t, 2, 1)
	m.Send(&Packet{Class: NoC1, Src: Dest{PortTile, 0}, Dst: Dest{PortTile, 1}, Flits: 1})
	defer func() {
		if recover() == nil {
			t.Error("delivery without handler did not panic")
		}
	}()
	eng.Run()
}

func TestZeroFlitPacketPanics(t *testing.T) {
	_, m := newTestMesh(t, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("zero-flit send did not panic")
		}
	}()
	m.Send(&Packet{Class: NoC1, Src: Dest{PortTile, 0}, Dst: Dest{PortTile, 1}})
}

// Property: hop count is symmetric and satisfies the triangle inequality on
// a mesh with XY routing (XY paths are shortest paths, so both hold).
func TestHopCountProperties(t *testing.T) {
	_, m := newTestMesh(t, 4, 3)
	n := m.Tiles()
	f := func(a, b, c uint8) bool {
		ta, tb, tc := int(a)%n, int(b)%n, int(c)%n
		da, db, dc := Dest{PortTile, ta}, Dest{PortTile, tb}, Dest{PortTile, tc}
		ab := m.HopCount(da, db)
		ba := m.HopCount(db, da)
		ac := m.HopCount(da, dc)
		cb := m.HopCount(dc, db)
		return ab == ba && ab <= ac+cb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every packet injected is delivered exactly once.
func TestAllPacketsDelivered(t *testing.T) {
	f := func(seed uint64) bool {
		eng := sim.NewEngine()
		m := New(eng, "m", DefaultParams(4, 3), nil)
		rng := sim.NewRNG(seed)
		got := 0
		for i := 0; i < m.Tiles(); i++ {
			m.AttachTile(i, func(p *Packet) { got++ })
		}
		sent := 50
		for i := 0; i < sent; i++ {
			m.Send(&Packet{
				Class: Class(rng.Intn(3)),
				Src:   Dest{PortTile, rng.Intn(m.Tiles())},
				Dst:   Dest{PortTile, rng.Intn(m.Tiles())},
				Flits: 1 + rng.Intn(9),
			})
		}
		eng.Run()
		return got == sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// A multi-hop NoC traversal must not allocate beyond the packet the caller
// owns: the XY walk visits links without building a route slice, delivery
// rides the mesh's one bound callback through the engine's pooled events,
// and per-link totals accumulate in flat arrays. The test reuses one packet
// so any allocation it sees comes from the mesh or the engine.
func TestSendHopZeroAlloc(t *testing.T) {
	eng, m := newTestMesh(t, 4, 3)
	delivered := 0
	for i := 0; i < m.Tiles(); i++ {
		m.AttachTile(i, func(p *Packet) { delivered++ })
	}
	pkt := &Packet{Class: NoC1, Src: Dest{PortTile, 0}, Dst: Dest{PortTile, 11}, Flits: 3}
	m.Send(pkt)
	eng.Run()
	if avg := testing.AllocsPerRun(500, func() {
		m.Send(pkt)
		eng.Run()
	}); avg != 0 {
		t.Fatalf("NoC hop allocates %.2f/op at steady state, want 0", avg)
	}
	if delivered == 0 {
		t.Fatal("packets never delivered")
	}
}
