// Package noc models the BYOC/OpenPiton on-chip interconnect: three parallel
// 2D-mesh networks (NoC1 requests, NoC2 responses, NoC3 writebacks/memory)
// with dimension-ordered XY routing and per-link serialization.
//
// Following OpenPiton's physical design, each node's mesh has two off-mesh
// exit points attached at tile 0: the chipset port (memory controller and
// peripherals) and, in SMAPPIC, the inter-node bridge port on the northbound
// edge. Packets destined off-node are routed to tile 0 and ejected there.
//
// Timing model: packets are cut-through routed. Each hop charges a router
// pipeline delay plus a link traversal delay; each link additionally
// serializes packets (a packet of F flits occupies a link for F cycles), and
// overlapping packets queue on the link's reservation. This yields one
// simulation event per delivery while still modeling contention, which keeps
// 48-core runs fast.
package noc

import (
	"fmt"

	"smappic/internal/ckpt"
	"smappic/internal/sim"
)

// Class selects one of the three physical networks. Requests, responses and
// writebacks travel on disjoint networks so the coherence protocol cannot
// deadlock on shared buffers.
type Class int

const (
	NoC1 Class = iota // requests (BPC -> LLC home)
	NoC2              // responses (LLC home -> BPC)
	NoC3              // writebacks, memory traffic (LLC -> memctrl, evictions)
	numClasses
)

// String returns the OpenPiton-style network name.
func (c Class) String() string {
	switch c {
	case NoC1:
		return "noc1"
	case NoC2:
		return "noc2"
	case NoC3:
		return "noc3"
	}
	return fmt.Sprintf("noc?%d", int(c))
}

// Port identifies an attachment point on the mesh.
type Port int

const (
	PortTile    Port = iota // a tile's NoC interface
	PortChipset             // chipset (memory controller, peripherals), west of tile 0
	PortBridge              // SMAPPIC inter-node bridge, north of tile 0
)

// Dest addresses a packet within a single node's mesh.
type Dest struct {
	Port Port
	Tile int // meaningful when Port == PortTile
}

// Packet is one NoC transfer. Payload carries the protocol-level message and
// is not interpreted by the mesh. Flits determines serialization time: a
// header flit plus one flit per 8 payload bytes, as in OpenPiton.
type Packet struct {
	Class   Class
	Src     Dest
	Dst     Dest
	Flits   int
	Payload any
}

// Handler receives packets delivered to an attachment point.
type Handler func(*Packet)

// Params are the mesh timing parameters.
type Params struct {
	RouterDelay sim.Time // per-hop router pipeline latency, cycles
	LinkDelay   sim.Time // per-hop wire latency, cycles
	Width       int      // mesh width (tiles per row)
	Height      int      // mesh height (rows)
}

// DefaultParams returns OpenPiton-like mesh timing for a w x h mesh.
func DefaultParams(w, h int) Params {
	return Params{RouterDelay: 2, LinkDelay: 1, Width: w, Height: h}
}

// chanStats is the pre-resolved telemetry of one NoC class. All pointers
// are nil when the mesh was built without a Stats registry; the instrument
// methods are nil-safe, so the send path stays branch-cheap either way.
type chanStats struct {
	packets    *sim.Counter
	flits      *sim.Counter
	hopCycles  *sim.Counter
	waitCycles *sim.Counter // cycles spent queued on busy links
	inflight   *sim.Gauge   // packets in flight on this class
	latency    *sim.Histogram
}

// Mesh is one node's three-network mesh interconnect.
type Mesh struct {
	eng   *sim.Engine
	name  string
	p     Params
	stats *sim.Stats
	tiles []Handler
	exit  [2]Handler // chipset, bridge
	// nextFree[class][link] is the earliest time the link can accept the
	// next packet. Links are indexed per directed edge; see linkIndex.
	nextFree [][]sim.Time
	cs       [numClasses]chanStats
	// Per-link traffic accounting, kept in flat arrays on the hot path and
	// published to the Stats registry by FlushLinkStats.
	linkFlits [numClasses][]uint64
	linkBusy  [numClasses][]sim.Time
	deliverFn func(any) // bound once; arg is the *Packet to deliver
}

// New creates a mesh with nTiles = p.Width*p.Height tile ports.
func New(eng *sim.Engine, name string, p Params, stats *sim.Stats) *Mesh {
	if p.Width <= 0 || p.Height <= 0 {
		panic("noc: mesh dimensions must be positive")
	}
	n := p.Width * p.Height
	m := &Mesh{
		eng:   eng,
		name:  name,
		p:     p,
		stats: stats,
		tiles: make([]Handler, n),
	}
	m.deliverFn = func(pkt any) { m.deliver(pkt.(*Packet)) }
	// Directed links: 4 per tile (N/E/S/W) plus 2 exit links at tile 0.
	links := n*4 + 4
	m.nextFree = make([][]sim.Time, numClasses)
	for c := range m.nextFree {
		m.nextFree[c] = make([]sim.Time, links)
		m.linkFlits[c] = make([]uint64, links)
		m.linkBusy[c] = make([]sim.Time, links)
	}
	if stats != nil {
		for c := Class(0); c < numClasses; c++ {
			base := name + "." + c.String()
			m.cs[c] = chanStats{
				packets:    stats.Counter(base + ".packets"),
				flits:      stats.Counter(base + ".flits"),
				hopCycles:  stats.Counter(base + ".hop_cycles"),
				waitCycles: stats.Counter(base + ".wait_cycles"),
				inflight:   stats.Gauge(base + ".inflight"),
				latency:    stats.Histogram(base + ".latency"),
			}
		}
	}
	return m
}

// Tiles returns the number of tile ports.
func (m *Mesh) Tiles() int { return len(m.tiles) }

// AttachTile registers the delivery handler for a tile port.
func (m *Mesh) AttachTile(tile int, h Handler) {
	m.tiles[tile] = h
}

// AttachChipset registers the chipset port handler.
func (m *Mesh) AttachChipset(h Handler) { m.exit[0] = h }

// AttachBridge registers the inter-node bridge port handler.
func (m *Mesh) AttachBridge(h Handler) { m.exit[1] = h }

// coord returns the (x, y) mesh position of a tile index (row-major).
func (m *Mesh) coord(tile int) (x, y int) {
	return tile % m.p.Width, tile / m.p.Width
}

const (
	dirN = iota
	dirE
	dirS
	dirW
)

// linkIndex returns the reservation slot for the directed link leaving tile
// t in direction dir. Exit links use the tail slots.
func (m *Mesh) linkIndex(t, dir int) int { return t*4 + dir }

func (m *Mesh) exitLink(which int) int { return len(m.tiles)*4 + which*2 }

// forEachLink walks the sequence of directed links from src to dst using XY
// (dimension-ordered) routing: X first, then Y. Off-mesh destinations route
// to tile 0 and then take the exit link. The visitor form (instead of
// returning a slice) keeps routing allocation-free: callers' closures stay
// on the stack because visit never escapes.
func (m *Mesh) forEachLink(src, dst Dest, visit func(link int)) {
	from := 0
	if src.Port == PortTile {
		from = src.Tile
	}
	to := 0
	if dst.Port == PortTile {
		to = dst.Tile
	}
	// Entering from an exit port first crosses the exit link inbound. We
	// reuse the same reservation slot for both directions; inter-node and
	// chipset traffic is low-rate enough that this is a fair serialization
	// point, matching the single physical channel at tile 0.
	if src.Port == PortChipset {
		visit(m.exitLink(0))
	}
	if src.Port == PortBridge {
		visit(m.exitLink(1))
	}
	x, y := m.coord(from)
	dx, dy := m.coord(to)
	cur := from
	for x != dx {
		if x < dx {
			visit(m.linkIndex(cur, dirE))
			x++
		} else {
			visit(m.linkIndex(cur, dirW))
			x--
		}
		cur = y*m.p.Width + x
	}
	for y != dy {
		if y < dy {
			visit(m.linkIndex(cur, dirS))
			y++
		} else {
			visit(m.linkIndex(cur, dirN))
			y--
		}
		cur = y*m.p.Width + x
	}
	if dst.Port == PortChipset {
		visit(m.exitLink(0))
	}
	if dst.Port == PortBridge {
		visit(m.exitLink(1))
	}
}

// HopCount returns the number of links a packet from src to dst crosses.
// It is exported for latency analysis and tests.
func (m *Mesh) HopCount(src, dst Dest) int {
	n := 0
	m.forEachLink(src, dst, func(int) { n++ })
	return n
}

// Send injects a packet. Delivery is scheduled after routing and
// serialization delays; the destination handler runs as a simulation event.
func (m *Mesh) Send(pkt *Packet) {
	if pkt.Flits <= 0 {
		panic("noc: packet must have at least one flit")
	}
	now := m.eng.Now()
	t := now
	var wait sim.Time
	serial := sim.Time(pkt.Flits)
	free := m.nextFree[pkt.Class]
	flits := uint64(pkt.Flits)
	lf := m.linkFlits[pkt.Class]
	lb := m.linkBusy[pkt.Class]
	hops := 0
	m.forEachLink(pkt.Src, pkt.Dst, func(l int) {
		hops++
		// Router pipeline + wire for this hop.
		t += m.p.RouterDelay + m.p.LinkDelay
		// Link serialization: wait if a previous packet still occupies it.
		if free[l] > t {
			wait += free[l] - t
			t = free[l]
		}
		free[l] = t + serial
		lf[l] += flits
		lb[l] += serial
	})
	if hops == 0 {
		// Same-port delivery still pays one router traversal.
		t += m.p.RouterDelay
	}
	cs := &m.cs[pkt.Class]
	cs.packets.Inc()
	cs.flits.Add(flits)
	cs.hopCycles.Add(uint64(t - now))
	cs.waitCycles.Add(uint64(wait))
	cs.inflight.Inc()
	cs.latency.Observe(uint64(t - now))
	m.eng.AtArg(t, m.deliverFn, pkt)
}

// Dims returns the mesh's width and height in tiles.
func (m *Mesh) Dims() (w, h int) { return m.p.Width, m.p.Height }

// LinkStat is one directed link's cumulative traffic.
type LinkStat struct {
	Flits uint64 `json:"flits"`
	Busy  uint64 `json:"busy"` // cycles the link was serializing flits
}

// LinkStatsSnapshot copies the per-link traffic accounting of every NoC
// class into plain values: result[class][link], with links indexed as the
// mesh reserves them (tile*4 + direction N/E/S/W, then the chipset and
// bridge exit links at the tail — see linkIndex/exitLink). Unlike
// FlushLinkStats it mutates nothing, so the observability layer can call it
// at quiescent boundaries without perturbing the stats registry.
func (m *Mesh) LinkStatsSnapshot() [][]LinkStat {
	out := make([][]LinkStat, numClasses)
	for c := Class(0); c < numClasses; c++ {
		links := make([]LinkStat, len(m.linkFlits[c]))
		for l := range links {
			links[l] = LinkStat{Flits: m.linkFlits[c][l], Busy: uint64(m.linkBusy[c][l])}
		}
		out[c] = links
	}
	return out
}

// FlushLinkStats publishes the per-link flit and busy-cycle totals into the
// Stats registry under "<mesh>.<class>.linkNNN.{flits,busy_cycles}". It
// assigns (rather than accumulates) counter values, so calling it repeatedly
// is idempotent. Links that never carried traffic are skipped.
func (m *Mesh) FlushLinkStats() {
	if m.stats == nil {
		return
	}
	for c := Class(0); c < numClasses; c++ {
		for l := range m.linkFlits[c] {
			f, busy := m.linkFlits[c][l], m.linkBusy[c][l]
			if f == 0 && busy == 0 {
				continue
			}
			prefix := fmt.Sprintf("%s.%s.link%03d", m.name, c, l)
			m.stats.Counter(prefix + ".flits").Value = f
			m.stats.Counter(prefix + ".busy_cycles").Value = uint64(busy)
		}
	}
}

// CaptureState records the mesh's timing state: per-link reservation clocks
// and cumulative per-link traffic. No packet is in flight at a quiescent
// safepoint, so the reservation arrays fully determine future link behavior.
func (m *Mesh) CaptureState() ckpt.NoCState {
	st := ckpt.NoCState{
		NextFree:  make([][]uint64, numClasses),
		LinkFlits: make([][]uint64, numClasses),
		LinkBusy:  make([][]uint64, numClasses),
	}
	for c := 0; c < int(numClasses); c++ {
		st.NextFree[c] = make([]uint64, len(m.nextFree[c]))
		for l, t := range m.nextFree[c] {
			st.NextFree[c][l] = uint64(t)
		}
		st.LinkFlits[c] = append([]uint64(nil), m.linkFlits[c]...)
		st.LinkBusy[c] = make([]uint64, len(m.linkBusy[c]))
		for l, t := range m.linkBusy[c] {
			st.LinkBusy[c][l] = uint64(t)
		}
	}
	return st
}

// RestoreState overlays a captured timing state onto a freshly built mesh.
func (m *Mesh) RestoreState(st ckpt.NoCState) error {
	if len(st.NextFree) != int(numClasses) || len(st.LinkFlits) != int(numClasses) || len(st.LinkBusy) != int(numClasses) {
		return &ckpt.CorruptError{Reason: fmt.Sprintf("%s: snapshot has %d NoC classes, mesh has %d", m.name, len(st.NextFree), numClasses)}
	}
	for c := 0; c < int(numClasses); c++ {
		if len(st.NextFree[c]) != len(m.nextFree[c]) {
			return &ckpt.MismatchError{Field: m.name + " link count",
				Got: fmt.Sprint(len(st.NextFree[c])), Want: fmt.Sprint(len(m.nextFree[c]))}
		}
		for l, t := range st.NextFree[c] {
			m.nextFree[c][l] = sim.Time(t)
		}
		copy(m.linkFlits[c], st.LinkFlits[c])
		for l, t := range st.LinkBusy[c] {
			m.linkBusy[c][l] = sim.Time(t)
		}
	}
	return nil
}

func (m *Mesh) deliver(pkt *Packet) {
	m.cs[pkt.Class].inflight.Dec()
	var h Handler
	switch pkt.Dst.Port {
	case PortTile:
		h = m.tiles[pkt.Dst.Tile]
	case PortChipset:
		h = m.exit[0]
	case PortBridge:
		h = m.exit[1]
	}
	if h == nil {
		panic(fmt.Sprintf("noc: %s: no handler attached at %+v", m.name, pkt.Dst))
	}
	h(pkt)
}
