package axi

import (
	"testing"
	"testing/quick"

	"smappic/internal/sim"
)

func TestAlign(t *testing.T) {
	cases := []struct {
		addr    Addr
		aligned Addr
		off     int
	}{
		{0, 0, 0},
		{63, 0, 63},
		{64, 64, 0},
		{130, 128, 2},
	}
	for _, c := range cases {
		a, o := Align(c.addr)
		if a != c.aligned || o != c.off {
			t.Errorf("Align(%d) = (%d,%d), want (%d,%d)", c.addr, a, o, c.aligned, c.off)
		}
	}
	if !Aligned(128) || Aligned(129) {
		t.Error("Aligned misreports")
	}
}

// Property: Align returns an aligned base and an offset < BeatBytes that
// reconstruct the address.
func TestAlignProperty(t *testing.T) {
	f := func(addr Addr) bool {
		a, o := Align(addr)
		return Aligned(a) && o >= 0 && o < BeatBytes && a+Addr(o) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// memTarget is a trivial in-memory AXI target for crossbar tests.
type memTarget struct {
	eng     *sim.Engine
	latency sim.Time
	data    map[Addr]byte
	writes  int
	reads   int
}

func newMemTarget(eng *sim.Engine, latency sim.Time) *memTarget {
	return &memTarget{eng: eng, latency: latency, data: make(map[Addr]byte)}
}

func (m *memTarget) Write(req *WriteReq, done func(*WriteResp)) {
	m.writes++
	for i, b := range req.Data {
		m.data[req.Addr+Addr(i)] = b
	}
	m.eng.Schedule(m.latency, func() { done(&WriteResp{ID: req.ID, OK: true}) })
}

func (m *memTarget) Read(req *ReadReq, done func(*ReadResp)) {
	m.reads++
	out := make([]byte, req.Len)
	for i := range out {
		out[i] = m.data[req.Addr+Addr(i)]
	}
	m.eng.Schedule(m.latency, func() { done(&ReadResp{ID: req.ID, Data: out, OK: true}) })
}

func TestCrossbarRoutesByAddress(t *testing.T) {
	eng := sim.NewEngine()
	x := NewCrossbar(eng, "xbar", 2, nil)
	a := newMemTarget(eng, 1)
	b := newMemTarget(eng, 1)
	x.Map(Region{Base: 0x0000, Size: 0x1000, Target: a, Name: "a"})
	x.Map(Region{Base: 0x1000, Size: 0x1000, Target: b, Name: "b"})

	var resp *WriteResp
	x.Write(&WriteReq{Addr: 0x1800, Data: []byte{0xAB}}, func(r *WriteResp) { resp = r })
	eng.Run()
	if resp == nil || !resp.OK {
		t.Fatal("write did not complete OK")
	}
	if a.writes != 0 || b.writes != 1 {
		t.Fatalf("routed to wrong target: a=%d b=%d", a.writes, b.writes)
	}
	if b.data[0x1800] != 0xAB {
		t.Error("data not written")
	}
}

func TestCrossbarDecodeErrorFailsResponse(t *testing.T) {
	eng := sim.NewEngine()
	x := NewCrossbar(eng, "xbar", 2, nil)
	var wr *WriteResp
	var rr *ReadResp
	x.Write(&WriteReq{Addr: 0x9999}, func(r *WriteResp) { wr = r })
	x.Read(&ReadReq{Addr: 0x9999, Len: 4}, func(r *ReadResp) { rr = r })
	eng.Run()
	if wr == nil || wr.OK {
		t.Error("unmapped write should fail")
	}
	if rr == nil || rr.OK {
		t.Error("unmapped read should fail")
	}
}

func TestCrossbarOverlapPanics(t *testing.T) {
	eng := sim.NewEngine()
	x := NewCrossbar(eng, "xbar", 1, nil)
	x.Map(Region{Base: 0, Size: 0x1000, Name: "a"})
	defer func() {
		if recover() == nil {
			t.Error("overlapping Map did not panic")
		}
	}()
	x.Map(Region{Base: 0x800, Size: 0x1000, Name: "b"})
}

func TestCrossbarLatencyAndSerialization(t *testing.T) {
	eng := sim.NewEngine()
	x := NewCrossbar(eng, "xbar", 3, nil)
	m := newMemTarget(eng, 0)
	x.Map(Region{Base: 0, Size: 0x10000, Target: m, Name: "m"})

	var done []sim.Time
	// Two 128-byte (2-beat) writes issued at t=0 to the same target port.
	for i := 0; i < 2; i++ {
		x.Write(&WriteReq{Addr: 0, Data: make([]byte, 128)}, func(r *WriteResp) {
			done = append(done, eng.Now())
		})
	}
	eng.Run()
	if len(done) != 2 {
		t.Fatalf("completed %d writes, want 2", len(done))
	}
	// First arrives at target at 3 (latency). Second serializes behind 2
	// beats: arrives at 5.
	if done[0] != 3 {
		t.Errorf("first write done at %d, want 3", done[0])
	}
	if done[1] != 5 {
		t.Errorf("second write done at %d, want 5", done[1])
	}
}

func TestCrossbarReadRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	x := NewCrossbar(eng, "xbar", 1, nil)
	m := newMemTarget(eng, 2)
	x.Map(Region{Base: 0x4000, Size: 0x1000, Target: m, Name: "m"})
	m.data[0x4010] = 0x5A

	var got []byte
	x.Read(&ReadReq{Addr: 0x4010, Len: 1}, func(r *ReadResp) { got = r.Data })
	eng.Run()
	if len(got) != 1 || got[0] != 0x5A {
		t.Fatalf("read returned %v, want [0x5A]", got)
	}
}

func TestCrossbarStats(t *testing.T) {
	eng := sim.NewEngine()
	var st sim.Stats
	x := NewCrossbar(eng, "x0", 1, &st)
	m := newMemTarget(eng, 0)
	x.Map(Region{Base: 0, Size: 64, Target: m, Name: "m"})
	x.Write(&WriteReq{Addr: 0, Data: []byte{1}}, func(*WriteResp) {})
	x.Read(&ReadReq{Addr: 0, Len: 1}, func(*ReadResp) {})
	eng.Run()
	if st.Get("x0.writes") != 1 || st.Get("x0.reads") != 1 {
		t.Errorf("stats: writes=%d reads=%d, want 1/1", st.Get("x0.writes"), st.Get("x0.reads"))
	}
}

// Property: decode is a function of address only and respects region bounds.
func TestCrossbarDecodeProperty(t *testing.T) {
	eng := sim.NewEngine()
	x := NewCrossbar(eng, "xbar", 1, nil)
	a := newMemTarget(eng, 0)
	b := newMemTarget(eng, 0)
	x.Map(Region{Base: 0x1000, Size: 0x1000, Target: a, Name: "a"})
	x.Map(Region{Base: 0x4000, Size: 0x2000, Target: b, Name: "b"})
	f := func(addr uint16) bool {
		got := x.Decode(Addr(addr))
		switch {
		case addr >= 0x1000 && addr < 0x2000:
			return got == Target(a)
		case addr >= 0x4000 && addr < 0x6000:
			return got == Target(b)
		default:
			return got == nil
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
