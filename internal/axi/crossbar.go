package axi

import (
	"fmt"
	"sort"

	"smappic/internal/sim"
)

// Region maps an address window onto a target. Windows must not overlap.
type Region struct {
	Base   Addr
	Size   uint64
	Target Target
	Name   string
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr Addr) bool {
	return addr >= r.Base && addr-r.Base < r.Size
}

// Crossbar is an N-master x M-slave AXI4 interconnect with address decoding.
// SMAPPIC uses one inside each FPGA to connect node bridges to each other and
// to the shell's PCIe port. Timing: a fixed traversal latency plus per-target
// serialization (one beat per cycle on the target port).
type Crossbar struct {
	eng     *sim.Engine
	name    string
	latency sim.Time
	regions []Region
	busy    map[Target]sim.Time
	stats   *sim.Stats
	pool    *Forwarder
	cWrites sim.LazyCounter
	cReads  sim.LazyCounter
}

// NewCrossbar builds a crossbar with the given traversal latency.
func NewCrossbar(eng *sim.Engine, name string, latency sim.Time, stats *sim.Stats) *Crossbar {
	return &Crossbar{
		eng:     eng,
		name:    name,
		latency: latency,
		busy:    make(map[Target]sim.Time),
		stats:   stats,
		pool:    NewForwarder(eng),
		cWrites: stats.LazyCounter(name + ".writes"),
		cReads:  stats.LazyCounter(name + ".reads"),
	}
}

// Map adds an address window. It panics on overlap with an existing window:
// overlapping decode is always a configuration bug.
func (x *Crossbar) Map(r Region) {
	for _, e := range x.regions {
		if r.Base < e.Base+Addr(e.Size) && e.Base < r.Base+Addr(r.Size) {
			panic(fmt.Sprintf("axi: region %q overlaps %q", r.Name, e.Name))
		}
	}
	x.regions = append(x.regions, r)
	sort.Slice(x.regions, func(i, j int) bool { return x.regions[i].Base < x.regions[j].Base })
}

// Regions returns the configured windows in address order.
func (x *Crossbar) Regions() []Region { return x.regions }

// Decode returns the target for addr, or nil if unmapped.
func (x *Crossbar) Decode(addr Addr) Target {
	// Few regions per crossbar (<=8); linear scan over the sorted slice.
	for _, r := range x.regions {
		if r.Contains(addr) {
			return r.Target
		}
	}
	return nil
}

// delay computes the scheduling delay for a transfer of n bytes to t,
// reserving the target port for the transfer's beats.
func (x *Crossbar) delay(t Target, n int) sim.Time {
	beats := sim.Time((n + BeatBytes - 1) / BeatBytes)
	if beats == 0 {
		beats = 1
	}
	start := x.eng.Now() + x.latency
	if b := x.busy[t]; b > start {
		start = b
	}
	x.busy[t] = start + beats
	return start - x.eng.Now()
}

// Write routes an AXI4 write through the crossbar.
func (x *Crossbar) Write(req *WriteReq, done func(*WriteResp)) {
	t := x.Decode(req.Addr)
	if t == nil {
		done(&WriteResp{ID: req.ID, OK: false})
		return
	}
	x.cWrites.Inc()
	x.pool.Write(x.delay(t, len(req.Data)), t, req, done)
}

// Read routes an AXI4 read through the crossbar.
func (x *Crossbar) Read(req *ReadReq, done func(*ReadResp)) {
	t := x.Decode(req.Addr)
	if t == nil {
		done(&ReadResp{ID: req.ID, OK: false})
		return
	}
	x.cReads.Inc()
	x.pool.Read(x.delay(t, req.Len), t, req, done)
}

var _ Target = (*Crossbar)(nil)
