package axi

import "smappic/internal/sim"

// fwd is a pooled deferred AXI transfer: the routed target plus the original
// request and completion, so interconnect models (crossbar, shaper, shell)
// can schedule the forwarding hop through sim.ScheduleArg instead of
// allocating a capture closure per transaction.
type fwd struct {
	t     Target
	wreq  *WriteReq
	wdone func(*WriteResp)
	rreq  *ReadReq
	rdone func(*ReadResp)
}

// Forwarder schedules delayed dispatch of AXI transfers onto targets with a
// per-instance free list of transfer records. Per-instance (not global) so
// shard engines never share mutable state.
type Forwarder struct {
	eng  *sim.Engine
	free []*fwd
	fn   func(any) // dispatches and recycles; arg is the *fwd
}

// NewForwarder builds a forwarder scheduling on eng.
func NewForwarder(eng *sim.Engine) *Forwarder {
	p := &Forwarder{eng: eng}
	p.fn = func(v any) {
		f := v.(*fwd)
		t, wreq, wdone, rreq, rdone := f.t, f.wreq, f.wdone, f.rreq, f.rdone
		// Recycle before dispatching: the target may synchronously issue
		// further transfers through this same forwarder.
		*f = fwd{}
		p.free = append(p.free, f)
		if wreq != nil {
			t.Write(wreq, wdone)
		} else {
			t.Read(rreq, rdone)
		}
	}
	return p
}

func (p *Forwarder) get() *fwd {
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		return f
	}
	return &fwd{}
}

// Write dispatches t.Write(req, done) after delay cycles.
func (p *Forwarder) Write(delay sim.Time, t Target, req *WriteReq, done func(*WriteResp)) {
	f := p.get()
	f.t, f.wreq, f.wdone = t, req, done
	p.eng.ScheduleArg(delay, p.fn, f)
}

// Read dispatches t.Read(req, done) after delay cycles.
func (p *Forwarder) Read(delay sim.Time, t Target, req *ReadReq, done func(*ReadResp)) {
	f := p.get()
	f.t, f.rreq, f.rdone = t, req, done
	p.eng.ScheduleArg(delay, p.fn, f)
}
