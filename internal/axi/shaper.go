package axi

import "smappic/internal/sim"

// Shaper wraps a Target with a configurable-latency, configurable-bandwidth
// performance model. SMAPPIC includes one in the inter-node bridge and the
// memory controller (paper §3.5): off-node interactions cannot be mapped
// into FPGA gates, so their performance is modeled by shaping the functional
// traffic.
type Shaper struct {
	eng *sim.Engine
	t   Target
	// ExtraLatency is added to every request before it reaches the target.
	ExtraLatency sim.Time
	// BytesPerCycle throttles throughput; zero means unlimited.
	BytesPerCycle int

	busy sim.Time
	pool *Forwarder

	cThrottle *sim.Counter // cycles requests waited on the busy link
	cBytes    *sim.Counter // bytes pushed through the shaper
}

// NewShaper wraps t. With zero latency and bandwidth it is a transparent
// pass-through.
func NewShaper(eng *sim.Engine, t Target, extraLatency sim.Time, bytesPerCycle int) *Shaper {
	return &Shaper{eng: eng, t: t, ExtraLatency: extraLatency, BytesPerCycle: bytesPerCycle, pool: NewForwarder(eng)}
}

// SetStats registers throttle telemetry under name ("<name>.throttle_cycles",
// "<name>.shaped_bytes"). A nil stats leaves the shaper un-instrumented.
func (s *Shaper) SetStats(stats *sim.Stats, name string) {
	if stats == nil {
		return
	}
	s.cThrottle = stats.Counter(name + ".throttle_cycles")
	s.cBytes = stats.Counter(name + ".shaped_bytes")
}

// Busy returns the bandwidth-reservation clock, the shaper's only mutable
// state (for checkpoint capture).
func (s *Shaper) Busy() sim.Time { return s.busy }

// SetBusy restores the bandwidth-reservation clock from a checkpoint.
func (s *Shaper) SetBusy(t sim.Time) { s.busy = t }

func (s *Shaper) delay(n int) sim.Time {
	d := s.ExtraLatency
	s.cBytes.Add(uint64(n))
	if s.BytesPerCycle > 0 {
		beats := sim.Time((n + s.BytesPerCycle - 1) / s.BytesPerCycle)
		if beats == 0 {
			beats = 1
		}
		start := s.eng.Now() + d
		if s.busy > start {
			s.cThrottle.Add(uint64(s.busy - start))
			start = s.busy
		}
		s.busy = start + beats
		return start + beats - s.eng.Now()
	}
	return d
}

// Write forwards the request after shaping.
func (s *Shaper) Write(req *WriteReq, done func(*WriteResp)) {
	s.pool.Write(s.delay(len(req.Data)), s.t, req, done)
}

// Read forwards the request after shaping.
func (s *Shaper) Read(req *ReadReq, done func(*ReadResp)) {
	s.pool.Read(s.delay(req.Len), s.t, req, done)
}

var _ Target = (*Shaper)(nil)
