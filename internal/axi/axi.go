// Package axi models the AXI4 and AXI-Lite interfaces that the AWS F1 Hard
// Shell exposes to Custom Logic. Only the aspects the platform observes are
// modeled: addresses, IDs, 64-byte alignment rules, per-target serialization
// and request/response pairing. Signal-level handshakes (five channels,
// bursts) are abstracted into one request/response exchange per transfer,
// with the channel roles documented where SMAPPIC's bridge packs NoC traffic
// into them.
package axi

import "fmt"

// Addr is a 64-bit AXI address.
type Addr = uint64

// ID tags an outstanding AXI4 transaction. The F1 shell supports 16 IDs per
// direction; models allocate from their own ID spaces.
type ID uint16

// BeatBytes is the AXI4 data-bus width on F1 (512-bit).
const BeatBytes = 64

// Align rounds addr down to a 64-byte boundary, as required by the F1 AXI4
// interfaces. The second return is the offset of addr within the beat.
func Align(addr Addr) (aligned Addr, offset int) {
	return addr &^ (BeatBytes - 1), int(addr & (BeatBytes - 1))
}

// Aligned reports whether addr sits on a 64-byte boundary.
func Aligned(addr Addr) bool { return addr&(BeatBytes-1) == 0 }

// WriteReq is one AXI4 write: the aw channel carries Addr and ID, the w
// channel carries Data. Data longer than BeatBytes models a burst.
type WriteReq struct {
	Addr Addr
	ID   ID
	Data []byte
	// User carries model-level payload riding on the write (e.g. the NoC
	// flits the SMAPPIC bridge encodes into the w channel). The physical
	// system would serialize it into Data; carrying it structured avoids
	// a useless encode/decode round trip in simulation while Data keeps
	// the size for timing.
	User any
}

// WriteResp is the b channel: completion acknowledgement for a write.
type WriteResp struct {
	ID ID
	OK bool
}

// ReadReq is the ar channel: a read of Len bytes at Addr.
type ReadReq struct {
	Addr Addr
	ID   ID
	Len  int
}

// ReadResp is the r channel: data returned for a read.
type ReadResp struct {
	ID   ID
	Data []byte
	OK   bool
	User any
}

// Target is anything that accepts AXI4 transactions. Completion callbacks
// fire as simulation events; they may fire synchronously.
type Target interface {
	Write(req *WriteReq, done func(*WriteResp))
	Read(req *ReadReq, done func(*ReadResp))
}

// LiteTarget is an AXI-Lite register file: single 32-bit accesses, no IDs,
// no bursts. The F1 shell provides three AXI-Lite taps for management.
type LiteTarget interface {
	ReadReg(addr Addr) uint32
	WriteReg(addr Addr, v uint32)
}

// ErrDecode is returned (as a failed response) when no region matches an
// address in a crossbar.
var ErrDecode = fmt.Errorf("axi: address decode error")
