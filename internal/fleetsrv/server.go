package fleetsrv

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"smappic/internal/campaign"
	"smappic/internal/obs"
)

// DefaultLeaseTTL is the lease deadline when the operator sets none: long
// enough to ride out GC pauses and load spikes on a healthy worker, short
// enough that a dead worker's jobs re-queue promptly.
const DefaultLeaseTTL = 30 * time.Second

// Server is the resident fleet campaign server. Construct with New, then
// mount Handler (or Start). All mutable state sits behind one mutex — the
// protocol is low-rate control traffic (leases, heartbeats, results), never
// simulation data, so a single lock is simplicity, not a bottleneck.
type Server struct {
	// Cache is the shared content-addressed result store; required. It
	// answers jobs before any lease is granted and absorbs every completed
	// result, so identical sweep points across tenants simulate once.
	Cache *campaign.Cache
	// StateDir, when non-empty, persists campaigns and their outcomes so a
	// restarted server resumes where it stopped (completed jobs stay
	// completed, incomplete ones re-queue). Empty keeps everything
	// in-memory.
	StateDir string
	// LeaseTTL is the heartbeat deadline for granted leases; 0 means
	// DefaultLeaseTTL.
	LeaseTTL time.Duration
	// DefaultQuota bounds each tenant's concurrent leases unless overridden
	// by SetQuota; <= 0 means unlimited.
	DefaultQuota int
	// Log, when non-nil, receives one line per protocol event of note.
	Log func(format string, args ...any)

	// now is the injectable clock; tests freeze and step it to drive lease
	// expiry deterministically.
	now func() time.Time

	mu        sync.Mutex
	queue     *campaign.Queue
	campaigns map[string]*campaignRun
	order     []string // campaign admission order, for status output
	workers   map[string]*workerState
	leases    map[string]*lease
	nextSeq   uint64
	nextCamp  int
	nextLease int
	nextWkr   int

	httpSrv *http.Server
}

// campaignRun is one submitted campaign's server-side state.
type campaignRun struct {
	id       string
	tenant   string
	priority int
	spec     campaign.Spec
	jobs     []campaign.Job
	outcomes []campaign.JobOutcome
	filled   []bool
	// remaining counts unfilled slots; pending counts jobs sitting on the
	// queue (remaining minus in-flight leases).
	remaining int
	pending   int
	inflight  int
	failed    int
	done      int
	hub       *obs.Hub // per-campaign progress stream (SSE)
	finished  chan struct{}
}

// workerState tracks one registered worker.
type workerState struct {
	id       string
	name     string
	lastSeen time.Time
	leases   map[string]struct{}
}

// lease is one granted job with its heartbeat deadline.
type lease struct {
	id         string
	workerID   string
	campaignID string
	tj         *campaign.TenantJob
	deadline   time.Time
}

// New returns a server over a result cache. Call Load afterwards when
// StateDir is set, then Handler/Start.
func New(cache *campaign.Cache) *Server {
	return &Server{
		Cache:     cache,
		now:       time.Now,
		queue:     campaign.NewQueue(0),
		campaigns: map[string]*campaignRun{},
		workers:   map[string]*workerState{},
		leases:    map[string]*lease{},
	}
}

// SetQuota overrides one tenant's concurrency quota (<= 0 = unlimited).
func (s *Server) SetQuota(tenant string, quota int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue.SetQuota(tenant, quota)
}

func (s *Server) logf(format string, args ...any) {
	if s.Log != nil {
		s.Log(format, args...)
	}
}

func (s *Server) leaseTTL() time.Duration {
	if s.LeaseTTL > 0 {
		return s.LeaseTTL
	}
	return DefaultLeaseTTL
}

// ---- submission ----------------------------------------------------------

// submit expands a spec and enqueues its uncached jobs. It is the
// server-side twin of Runner.Run's setup phase: cache hits resolve up front,
// everything else goes to the scheduler.
func (s *Server) submit(req SubmitRequest) (*SubmitResponse, error) {
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	jobs, err := req.Spec.Jobs()
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	if s.DefaultQuota > 0 && s.queue.Quota(tenant) == 0 {
		// First sight of this tenant: apply the server default unless the
		// operator pinned an explicit quota.
		s.queue.SetQuota(tenant, s.DefaultQuota)
	}
	s.nextCamp++
	run := &campaignRun{
		id:       fmt.Sprintf("c%04d", s.nextCamp),
		tenant:   tenant,
		priority: req.Priority,
		spec:     req.Spec,
		jobs:     jobs,
		outcomes: make([]campaign.JobOutcome, len(jobs)),
		filled:   make([]bool, len(jobs)),
		hub:      obs.NewHub(),
		finished: make(chan struct{}),
	}
	run.remaining = len(jobs)
	s.campaigns[run.id] = run
	s.order = append(s.order, run.id)
	s.persistCampaign(run)

	cached := 0
	for _, job := range jobs {
		if res, ok := s.Cache.Get(job.Params.Key()); ok {
			s.fillLocked(run, campaign.JobOutcome{Job: job, Status: campaign.StatusCached, Result: res},
				campaign.Event{Type: campaign.EventCacheHit, Index: job.Index,
					Label: job.Params.Label(), Total: len(jobs), Cycles: res.Cycles})
			cached++
			continue
		}
		s.nextSeq++
		s.queue.Push(&campaign.TenantJob{
			Tenant: tenant, CampaignID: run.id, Priority: req.Priority,
			Seq: s.nextSeq, Job: job,
		})
		run.pending++
	}
	s.logf("campaign %s (%s): %d jobs, %d cached, tenant %s", run.id, req.Spec.Name, len(jobs), cached, tenant)
	return &SubmitResponse{CampaignID: run.id, Jobs: len(jobs), Cached: cached}, nil
}

// fillLocked records a terminal outcome for one job slot and streams its
// event. Caller holds s.mu.
func (s *Server) fillLocked(run *campaignRun, out campaign.JobOutcome, ev campaign.Event) {
	if run.filled[out.Job.Index] {
		return
	}
	run.filled[out.Job.Index] = true
	run.outcomes[out.Job.Index] = out
	run.remaining--
	switch out.Status {
	case campaign.StatusRun, campaign.StatusCached:
		run.done++
	case campaign.StatusFailed:
		run.failed++
	}
	s.persistOutcome(run, out)
	run.hub.Broadcast("job", ev)
	if run.remaining == 0 {
		run.hub.Broadcast("complete", s.statusLocked(run))
		close(run.finished)
		s.logf("campaign %s complete: %d done, %d failed", run.id, run.done, run.failed)
	}
}

// ---- lease lifecycle -----------------------------------------------------

// expireLocked re-queues every lease whose heartbeat deadline has passed —
// the lazy half of expiry; Start also runs a janitor tick so expiry does not
// depend on traffic. Caller holds s.mu.
func (s *Server) expireLocked() {
	now := s.now()
	for id, l := range s.leases {
		if !l.deadline.Before(now) {
			continue
		}
		delete(s.leases, id)
		if w, ok := s.workers[l.workerID]; ok {
			delete(w.leases, id)
		}
		run := s.campaigns[l.campaignID]
		s.queue.Requeue(l.tj)
		if run != nil {
			run.inflight--
			run.pending++
			run.hub.Broadcast("job", campaign.Event{
				Type: campaign.EventRequeued, Index: l.tj.Job.Index,
				Label: l.tj.Job.Params.Label(), Total: len(run.jobs),
				Err: "lease expired: worker " + l.workerID + " lost",
			})
		}
		s.logf("lease %s (job %d of %s) expired on worker %s: re-queued", id, l.tj.Job.Index, l.campaignID, l.workerID)
	}
}

// register admits a worker and assigns its identity.
func (s *Server) register(req RegisterRequest) *RegisterResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextWkr++
	w := &workerState{
		id:       fmt.Sprintf("w%03d", s.nextWkr),
		name:     req.Name,
		lastSeen: s.now(),
		leases:   map[string]struct{}{},
	}
	s.workers[w.id] = w
	s.logf("worker %s (%q) registered", w.id, w.name)
	return &RegisterResponse{WorkerID: w.id, LeaseTTLSec: s.leaseTTL().Seconds()}
}

// leaseNext grants the scheduler's next job to a worker. Jobs that became
// cache hits while queued (another tenant's identical point completed) are
// answered from disk without a lease — the "ask the server before
// executing" half of the cache protocol.
func (s *Server) leaseNext(req LeaseRequest) (*LeaseResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	w, ok := s.workers[req.WorkerID]
	if !ok {
		return nil, errUnknownWorker
	}
	w.lastSeen = s.now()
	for {
		tj := s.queue.Next()
		if tj == nil {
			return &LeaseResponse{}, nil
		}
		run := s.campaigns[tj.CampaignID]
		if run == nil || run.filled[tj.Job.Index] {
			// The campaign vanished (bad persistence edit) or the slot was
			// filled by an idempotent duplicate; drop the queue entry.
			s.queue.Release(tj.Tenant)
			continue
		}
		if res, ok := s.Cache.Get(tj.Job.Params.Key()); ok {
			s.queue.Release(tj.Tenant)
			run.pending--
			s.fillLocked(run, campaign.JobOutcome{Job: tj.Job, Status: campaign.StatusCached, Result: res},
				campaign.Event{Type: campaign.EventCacheHit, Index: tj.Job.Index,
					Label: tj.Job.Params.Label(), Total: len(run.jobs), Cycles: res.Cycles})
			continue
		}
		s.nextLease++
		l := &lease{
			id:         fmt.Sprintf("l%06d", s.nextLease),
			workerID:   w.id,
			campaignID: tj.CampaignID,
			tj:         tj,
			deadline:   s.now().Add(s.leaseTTL()),
		}
		s.leases[l.id] = l
		w.leases[l.id] = struct{}{}
		run.pending--
		run.inflight++
		run.hub.Broadcast("job", campaign.Event{
			Type: campaign.EventStarted, Index: tj.Job.Index,
			Label: tj.Job.Params.Label(), Total: len(run.jobs), Attempt: 1,
		})
		return &LeaseResponse{Job: &LeasedJob{
			LeaseID:    l.id,
			CampaignID: tj.CampaignID,
			Tenant:     tj.Tenant,
			Index:      tj.Job.Index,
			Total:      len(run.jobs),
			Params:     tj.Job.Params,
			Policy:     run.spec.Policy(),
		}}, nil
	}
}

// heartbeat extends a live lease. A stale lease (expired, or re-queued to
// another worker) answers errStaleLease, telling the worker to abandon the
// job — the server has already re-queued it.
func (s *Server) heartbeat(req HeartbeatRequest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	if w, ok := s.workers[req.WorkerID]; ok {
		w.lastSeen = s.now()
	}
	l, ok := s.leases[req.LeaseID]
	if !ok || l.workerID != req.WorkerID {
		return errStaleLease
	}
	l.deadline = s.now().Add(s.leaseTTL())
	return nil
}

// result lands a finished job. Three paths:
//
//   - live lease: record the outcome, publish to the cache, free the slot;
//   - stale lease but the slot already completed with the same content key:
//     an idempotent duplicate (the job's first worker was slow, a second
//     re-ran it — deterministic jobs produce byte-identical results), so
//     absorb it with a fresh idempotent cache put;
//   - stale lease, slot incomplete: reject — the job is back on the queue
//     and this worker's state is untrusted.
func (s *Server) result(req ResultRequest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	if w, ok := s.workers[req.WorkerID]; ok {
		w.lastSeen = s.now()
	}
	l, ok := s.leases[req.LeaseID]
	if !ok || l.workerID != req.WorkerID {
		run := s.campaigns[req.CampaignID]
		if run != nil && req.Index >= 0 && req.Index < len(run.filled) && run.filled[req.Index] {
			prev := run.outcomes[req.Index]
			if req.Status == campaign.StatusRun && req.Result != nil && prev.Result != nil &&
				prev.Result.Key == req.Result.Key {
				// Duplicate delivery of a completed job: cache.Put is
				// idempotent for byte-identical results, so absorbing the
				// replay is free and keeps the worker's exit path simple.
				if err := s.Cache.Put(req.Result); err != nil {
					s.logf("duplicate result for %s job %d: cache put: %v", req.CampaignID, req.Index, err)
				}
				return nil
			}
		}
		return errStaleLease
	}
	delete(s.leases, l.id)
	if w, ok := s.workers[l.workerID]; ok {
		delete(w.leases, l.id)
	}
	run := s.campaigns[l.campaignID]
	if run == nil {
		s.queue.Release(l.tj.Tenant)
		return errUnknownCampaign
	}
	run.inflight--
	switch req.Status {
	case campaign.StatusRun:
		if req.Result == nil {
			s.queue.Release(l.tj.Tenant)
			return fmt.Errorf("fleetsrv: run status without a result")
		}
		s.queue.Release(l.tj.Tenant)
		if err := s.Cache.Put(req.Result); err != nil {
			s.logf("campaign %s job %d: cache put: %v", run.id, req.Index, err)
		}
		s.fillLocked(run, campaign.JobOutcome{Job: l.tj.Job, Status: campaign.StatusRun, Result: req.Result},
			campaign.Event{Type: campaign.EventDone, Index: l.tj.Job.Index,
				Label: l.tj.Job.Params.Label(), Total: len(run.jobs),
				Attempt: req.Result.Attempts, Cycles: req.Result.Cycles})
	case campaign.StatusFailed:
		s.queue.Release(l.tj.Tenant)
		s.fillLocked(run, campaign.JobOutcome{Job: l.tj.Job, Status: campaign.StatusFailed, Err: req.Err},
			campaign.Event{Type: campaign.EventFailed, Index: l.tj.Job.Index,
				Label: l.tj.Job.Params.Label(), Total: len(run.jobs), Err: req.Err})
	default:
		// The worker gave the job back (shutdown mid-lease): re-queue it.
		s.queue.Requeue(l.tj)
		run.pending++
		run.hub.Broadcast("job", campaign.Event{
			Type: campaign.EventRequeued, Index: l.tj.Job.Index,
			Label: l.tj.Job.Params.Label(), Total: len(run.jobs),
			Err: "returned by worker " + req.WorkerID,
		})
	}
	return nil
}

// ---- status and reports --------------------------------------------------

// statusLocked builds one campaign's status row. Caller holds s.mu.
func (s *Server) statusLocked(run *campaignRun) CampaignStatus {
	return CampaignStatus{
		CampaignID: run.id,
		Tenant:     run.tenant,
		Name:       run.spec.Name,
		Total:      len(run.jobs),
		Done:       run.done,
		Failed:     run.failed,
		Pending:    run.pending,
		InFlight:   run.inflight,
		Complete:   run.remaining == 0,
	}
}

// campaignStatus returns one campaign's progress.
func (s *Server) campaignStatus(id string) (CampaignStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	run, ok := s.campaigns[id]
	if !ok {
		return CampaignStatus{}, errUnknownCampaign
	}
	return s.statusLocked(run), nil
}

// campaignResult assembles the completed campaign's CampaignResult — the
// exact structure the in-process Runner produces, so Aggregate() renders a
// byte-identical report.
func (s *Server) campaignResult(id string) (*campaign.CampaignResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	run, ok := s.campaigns[id]
	if !ok {
		return nil, errUnknownCampaign
	}
	if run.remaining != 0 {
		return nil, errIncomplete
	}
	cr := &campaign.CampaignResult{Spec: run.spec, Jobs: append([]campaign.JobOutcome(nil), run.outcomes...)}
	for _, out := range cr.Jobs {
		switch out.Status {
		case campaign.StatusRun:
			cr.Executed++
		case campaign.StatusCached:
			cr.Cached++
		case campaign.StatusFailed:
			cr.Failed++
		default:
			cr.Skipped++
		}
	}
	return cr, nil
}

// fleetStatus builds the whole-fleet view.
func (s *Server) fleetStatus() *StatusView {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	now := s.now()
	view := &StatusView{Queue: s.queue.Tenants()}
	ids := make([]string, 0, len(s.workers))
	for id := range s.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := s.workers[id]
		view.Workers = append(view.Workers, WorkerView{
			WorkerID: w.id, Name: w.name, Leases: len(w.leases),
			IdleSec: now.Sub(w.lastSeen).Seconds(),
		})
	}
	for _, id := range s.order {
		view.Campaigns = append(view.Campaigns, s.statusLocked(s.campaigns[id]))
	}
	return view
}

// waitCh returns a channel closed when the campaign completes.
func (s *Server) waitCh(id string) (<-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	run, ok := s.campaigns[id]
	if !ok {
		return nil, errUnknownCampaign
	}
	return run.finished, nil
}

// ---- persistence ---------------------------------------------------------

// persistedCampaign is the on-disk submission record.
type persistedCampaign struct {
	ID       string        `json:"id"`
	Tenant   string        `json:"tenant"`
	Priority int           `json:"priority,omitempty"`
	Spec     campaign.Spec `json:"spec"`
}

// persistedOutcome is one line of a campaign's outcome journal. Results are
// not inlined: the durable cache already holds them content-addressed, so
// the journal stores only the key.
type persistedOutcome struct {
	Index  int             `json:"index"`
	Status campaign.Status `json:"status"`
	Key    string          `json:"key,omitempty"`
	Err    string          `json:"err,omitempty"`
}

func (s *Server) persistCampaign(run *campaignRun) {
	if s.StateDir == "" {
		return
	}
	data, err := json.MarshalIndent(persistedCampaign{
		ID: run.id, Tenant: run.tenant, Priority: run.priority, Spec: run.spec,
	}, "", "  ")
	if err == nil {
		err = os.WriteFile(filepath.Join(s.StateDir, run.id+".campaign.json"), append(data, '\n'), 0o644)
	}
	if err != nil {
		s.logf("persist campaign %s: %v", run.id, err)
	}
}

func (s *Server) persistOutcome(run *campaignRun, out campaign.JobOutcome) {
	if s.StateDir == "" {
		return
	}
	rec := persistedOutcome{Index: out.Job.Index, Status: out.Status, Err: out.Err}
	if out.Result != nil {
		rec.Key = out.Result.Key
	}
	line, err := json.Marshal(rec)
	if err == nil {
		f, ferr := os.OpenFile(filepath.Join(s.StateDir, run.id+".outcomes.jsonl"),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			err = ferr
		} else {
			_, err = f.Write(append(line, '\n'))
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
	}
	if err != nil {
		s.logf("persist outcome %s/%d: %v", run.id, out.Job.Index, err)
	}
}

// Load restores persisted campaigns from StateDir: completed jobs are
// replayed from their journal (results re-read from the content-addressed
// cache), incomplete ones go back on the queue. Call once, before serving.
func (s *Server) Load() error {
	if s.StateDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.StateDir, 0o755); err != nil {
		return fmt.Errorf("fleetsrv: state dir: %w", err)
	}
	files, err := filepath.Glob(filepath.Join(s.StateDir, "*.campaign.json"))
	if err != nil {
		return err
	}
	sort.Strings(files) // admission order: IDs are zero-padded counters
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("fleetsrv: %s: %w", path, err)
		}
		var pc persistedCampaign
		if err := json.Unmarshal(data, &pc); err != nil {
			return fmt.Errorf("fleetsrv: %s: %w", path, err)
		}
		jobs, err := pc.Spec.Jobs()
		if err != nil {
			return fmt.Errorf("fleetsrv: %s: %w", path, err)
		}
		run := &campaignRun{
			id: pc.ID, tenant: pc.Tenant, priority: pc.Priority, spec: pc.Spec,
			jobs:     jobs,
			outcomes: make([]campaign.JobOutcome, len(jobs)),
			filled:   make([]bool, len(jobs)),
			hub:      obs.NewHub(),
			finished: make(chan struct{}),
		}
		run.remaining = len(jobs)
		s.campaigns[run.id] = run
		s.order = append(s.order, run.id)
		if n := campNum(pc.ID); n > s.nextCamp {
			s.nextCamp = n
		}

		journal, err := os.ReadFile(filepath.Join(s.StateDir, pc.ID+".outcomes.jsonl"))
		if err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("fleetsrv: %s journal: %w", pc.ID, err)
		}
		for _, line := range strings.Split(string(journal), "\n") {
			if strings.TrimSpace(line) == "" {
				continue
			}
			var rec persistedOutcome
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				// A torn trailing line from a crash mid-append: the job
				// simply re-runs.
				s.logf("campaign %s: skipping torn journal line: %v", pc.ID, err)
				continue
			}
			if rec.Index < 0 || rec.Index >= len(jobs) || run.filled[rec.Index] {
				continue
			}
			out := campaign.JobOutcome{Job: jobs[rec.Index], Status: rec.Status, Err: rec.Err}
			if rec.Status == campaign.StatusRun || rec.Status == campaign.StatusCached {
				res, ok := s.Cache.Get(rec.Key)
				if !ok {
					// The journal promises a result the cache lost: re-run.
					s.logf("campaign %s job %d: cached result %s missing, re-queueing", pc.ID, rec.Index, rec.Key)
					continue
				}
				out.Result = res
			}
			run.filled[rec.Index] = true
			run.outcomes[rec.Index] = out
			run.remaining--
			switch out.Status {
			case campaign.StatusRun, campaign.StatusCached:
				run.done++
			case campaign.StatusFailed:
				run.failed++
			}
		}
		if run.remaining == 0 {
			close(run.finished)
		}
		for _, job := range jobs {
			if run.filled[job.Index] {
				continue
			}
			s.nextSeq++
			s.queue.Push(&campaign.TenantJob{
				Tenant: run.tenant, CampaignID: run.id, Priority: run.priority,
				Seq: s.nextSeq, Job: job,
			})
			run.pending++
		}
		s.logf("restored campaign %s: %d/%d complete, %d re-queued", run.id, run.done+run.failed, len(jobs), run.pending)
	}
	return nil
}

// campNum parses the counter out of a cNNNN campaign ID (0 if malformed).
func campNum(id string) int {
	n := 0
	if _, err := fmt.Sscanf(id, "c%d", &n); err != nil {
		return 0
	}
	return n
}
