package fleetsrv

import (
	"context"
	"time"

	"smappic/internal/campaign"
)

// Worker is the remote executor process: it registers with a fleet server,
// leases jobs, heartbeats while running them through the same
// campaign.Executor the in-process Runner uses, and posts results back.
// Determinism rides on the Executor — the worker adds only transport.
type Worker struct {
	// Server is the fleet server base URL (http://host:port).
	Server string
	// Name is the human-readable label sent at registration.
	Name string
	// CacheDir, when non-empty, is the shared checkpoint/warm-prefix
	// directory (normally the same filesystem as the server's cache). With
	// it, a job re-leased from a dead worker warm-resumes that worker's
	// last periodic checkpoint; without it, re-leased jobs restart cold —
	// correct either way, the checkpoint only buys time back.
	CacheDir string
	// Poll is the idle re-poll interval when the server has no work;
	// 0 means 200ms.
	Poll time.Duration
	// Exec substitutes the simulator (tests); nil runs the real one.
	Exec func(ctx context.Context, p campaign.Params) (*campaign.Result, error)
	// Log, when non-nil, receives one line per lease lifecycle step.
	Log func(format string, args ...any)

	client   *Client
	workerID string
	ttl      time.Duration
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		w.Log(format, args...)
	}
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 200 * time.Millisecond
}

// Run registers and serves leases until ctx is cancelled. A worker shut
// down mid-job gives the job back (the server re-queues it); a worker
// killed outright simply stops heartbeating and the lease expires.
func (w *Worker) Run(ctx context.Context) error {
	w.client = &Client{Server: w.Server}
	reg, err := w.client.register(ctx, RegisterRequest{Name: w.Name})
	if err != nil {
		return err
	}
	w.workerID = reg.WorkerID
	w.ttl = time.Duration(reg.LeaseTTLSec * float64(time.Second))
	w.logf("registered as %s (lease TTL %s)", w.workerID, w.ttl)
	for ctx.Err() == nil {
		resp, err := w.client.lease(ctx, LeaseRequest{WorkerID: w.workerID})
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			w.logf("lease: %v", err)
			resp = &LeaseResponse{}
		}
		if resp.Job == nil {
			select {
			case <-time.After(w.poll()):
			case <-ctx.Done():
			}
			continue
		}
		w.runLease(ctx, resp.Job)
	}
	return ctx.Err()
}

// runLease executes one leased job under heartbeat protection.
func (w *Worker) runLease(ctx context.Context, lj *LeasedJob) {
	w.logf("lease %s: job %d of %s (%s)", lj.LeaseID, lj.Index, lj.CampaignID, lj.Params.Label())
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Heartbeat at a third of the TTL. A stale answer means the server
	// already re-queued the job — abandon it; finishing would only produce
	// a result the server rejects.
	hbDone := make(chan struct{})
	stale := false
	go func() {
		defer close(hbDone)
		interval := w.ttl / 3
		if interval <= 0 {
			interval = time.Second
		}
		for {
			select {
			case <-jctx.Done():
				return
			case <-time.After(interval):
			}
			err := w.client.heartbeat(jctx, HeartbeatRequest{WorkerID: w.workerID, LeaseID: lj.LeaseID})
			if isStale(err) {
				w.logf("lease %s: gone stale, abandoning job", lj.LeaseID)
				stale = true
				cancel()
				return
			}
			if err != nil && jctx.Err() == nil {
				w.logf("lease %s: heartbeat: %v", lj.LeaseID, err)
			}
		}
	}()

	ex := &campaign.Executor{Dir: w.CacheDir, Exec: w.Exec, Log: w.Log}
	out := ex.RunJob(jctx, campaign.Job{Index: lj.Index, Params: lj.Params}, lj.Policy, lj.Total)
	cancel()
	<-hbDone
	if stale {
		return // the job is someone else's now
	}

	req := ResultRequest{
		WorkerID:   w.workerID,
		LeaseID:    lj.LeaseID,
		CampaignID: lj.CampaignID,
		Index:      lj.Index,
		Status:     out.Status,
		Result:     out.Result,
		Err:        out.Err,
	}
	// Use a fresh context: the worker may be shutting down (ctx cancelled),
	// and giving the job back cleanly beats leaving the lease to expire.
	pctx, pcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer pcancel()
	if err := w.client.result(pctx, req); err != nil {
		if isStale(err) {
			// Late delivery after expiry: the server holds the truth.
			w.logf("lease %s: result rejected as stale", lj.LeaseID)
			return
		}
		w.logf("lease %s: result delivery: %v", lj.LeaseID, err)
	}
}
