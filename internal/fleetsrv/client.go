package fleetsrv

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"smappic/internal/campaign"
)

// Client talks to a fleet server. The zero value with just Server set works.
type Client struct {
	// Server is the base URL (http://host:port).
	Server string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

// staleError marks a 409 answer: the lease (or report request) lost a race
// the protocol anticipates, and the caller should stand down, not retry.
type staleError struct{ msg string }

func (e *staleError) Error() string { return e.msg }

// isStale reports whether err is a 409 protocol answer.
func isStale(err error) bool {
	_, ok := err.(*staleError)
	return ok
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do runs one JSON round trip. A nil out discards the response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Server+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &staleError{msg: strings.TrimSpace(string(msg))}
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fleetsrv: %s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// ---- worker-side calls ----

func (c *Client) register(ctx context.Context, req RegisterRequest) (*RegisterResponse, error) {
	var resp RegisterResponse
	if err := c.do(ctx, http.MethodPost, "/api/workers/register", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *Client) lease(ctx context.Context, req LeaseRequest) (*LeaseResponse, error) {
	var resp LeaseResponse
	if err := c.do(ctx, http.MethodPost, "/api/workers/lease", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *Client) heartbeat(ctx context.Context, req HeartbeatRequest) error {
	return c.do(ctx, http.MethodPost, "/api/workers/heartbeat", req, nil)
}

func (c *Client) result(ctx context.Context, req ResultRequest) error {
	return c.do(ctx, http.MethodPost, "/api/workers/result", req, nil)
}

// ---- tenant-side calls ----

// Submit sends a campaign spec for fleet execution.
func (c *Client) Submit(ctx context.Context, tenant string, priority int, spec campaign.Spec) (*SubmitResponse, error) {
	var resp SubmitResponse
	err := c.do(ctx, http.MethodPost, "/api/campaigns",
		SubmitRequest{Tenant: tenant, Priority: priority, Spec: spec}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Campaign fetches one campaign's progress.
func (c *Client) Campaign(ctx context.Context, id string) (*CampaignStatus, error) {
	var st CampaignStatus
	if err := c.do(ctx, http.MethodGet, "/api/campaigns/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls until the campaign completes (or ctx ends), returning the
// final status.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*CampaignStatus, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		st, err := c.Campaign(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.Complete {
			return st, nil
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Report fetches the completed campaign's canonical JSON aggregate —
// byte-identical to the in-process Runner's report for the same spec.
func (c *Client) Report(ctx context.Context, id string) ([]byte, error) {
	return c.raw(ctx, "/api/campaigns/"+id+"/report")
}

// ReportCSV fetches the CSV aggregate.
func (c *Client) ReportCSV(ctx context.Context, id string) ([]byte, error) {
	return c.raw(ctx, "/api/campaigns/"+id+"/report.csv")
}

// FleetStatus fetches the whole-fleet status view.
func (c *Client) FleetStatus(ctx context.Context) (*StatusView, error) {
	var st StatusView
	if err := c.do(ctx, http.MethodGet, "/api/status", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// raw fetches a non-JSON-decoded document.
func (c *Client) raw(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Server+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusConflict {
		return nil, &staleError{msg: strings.TrimSpace(string(data))}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleetsrv: GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(data)))
	}
	return data, nil
}

// Events streams a campaign's SSE events, invoking fn with each (event,
// data) pair until the stream ends or ctx is cancelled.
func (c *Client) Events(ctx context.Context, id string, fn func(event string, data []byte)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Server+"/api/campaigns/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fleetsrv: events: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			fn(event, []byte(strings.TrimPrefix(line, "data: ")))
		}
	}
	if ctx.Err() != nil {
		return nil // cancelled: a clean end of watching
	}
	return sc.Err()
}
