package fleetsrv

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"time"

	"smappic/internal/obs"
)

// Protocol errors, mapped to HTTP statuses by the handlers.
var (
	errUnknownWorker   = errors.New("fleetsrv: unknown worker")
	errUnknownCampaign = errors.New("fleetsrv: unknown campaign")
	errStaleLease      = errors.New("fleetsrv: stale lease")
	errIncomplete      = errors.New("fleetsrv: campaign incomplete")
)

// httpStatus maps a protocol error to its wire status. Stale leases are 409
// (the worker must abandon the job), incomplete reports too (retry later),
// unknown IDs are 404.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, errStaleLease), errors.Is(err, errIncomplete):
		return http.StatusConflict
	case errors.Is(err, errUnknownWorker), errors.Is(err, errUnknownCampaign):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

// writeJSON writes one JSON response document.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// readJSON decodes a request body, rejecting unknown fields.
func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// Handler returns the fleet API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/campaigns/{id}", s.handleCampaign)
	mux.HandleFunc("GET /api/campaigns/{id}/report", s.handleReport)
	mux.HandleFunc("GET /api/campaigns/{id}/report.csv", s.handleReportCSV)
	mux.HandleFunc("GET /api/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /api/workers/register", s.handleRegister)
	mux.HandleFunc("POST /api/workers/lease", s.handleLease)
	mux.HandleFunc("POST /api/workers/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /api/workers/result", s.handleResult)
	mux.HandleFunc("GET /api/status", s.handleStatus)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := readJSON(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := s.submit(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	st, err := s.campaignStatus(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), httpStatus(err))
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	cr, err := s.campaignResult(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), httpStatus(err))
		return
	}
	out, err := cr.Aggregate().JSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

func (s *Server) handleReportCSV(w http.ResponseWriter, r *http.Request) {
	cr, err := s.campaignResult(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), httpStatus(err))
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Write([]byte(cr.Aggregate().CSV()))
}

// handleEvents streams a campaign's job lifecycle over SSE, reusing the obs
// hub discipline: non-blocking broadcasts, slow clients drop frames, and a
// greeting with the current status so late joiners have a starting point.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	run, ok := s.campaigns[id]
	var hello CampaignStatus
	if ok {
		hello = s.statusLocked(run)
	}
	s.mu.Unlock()
	if !ok {
		http.Error(w, errUnknownCampaign.Error(), http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Connection", "keep-alive")

	ch := run.hub.Subscribe()
	defer run.hub.Unsubscribe(ch)
	w.Write(obs.FormatSSE("hello", hello))
	fl.Flush()
	for {
		select {
		case frame := <-ch:
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := readJSON(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, s.register(req))
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := readJSON(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := s.leaseNext(req)
	if err != nil {
		http.Error(w, err.Error(), httpStatus(err))
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := readJSON(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.heartbeat(req); err != nil {
		http.Error(w, err.Error(), httpStatus(err))
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if err := readJSON(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.result(req); err != nil {
		http.Error(w, err.Error(), httpStatus(err))
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.fleetStatus())
}

// Start listens on addr and serves in a background goroutine, with a janitor
// tick expiring leases even when no traffic arrives. It returns the bound
// address, so ":0" works in tests and scripts.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go s.httpSrv.Serve(ln)
	go s.janitor()
	return ln.Addr().String(), nil
}

// janitor expires leases on a timer until the server closes.
func (s *Server) janitor() {
	tick := time.NewTicker(s.leaseTTL() / 2)
	defer tick.Stop()
	for range tick.C {
		s.mu.Lock()
		closed := s.httpSrv == nil
		if !closed {
			s.expireLocked()
		}
		s.mu.Unlock()
		if closed {
			return
		}
	}
}

// Close shuts the listener down; in-flight SSE streams are cut.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.httpSrv
	s.httpSrv = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
