// Package fleetsrv is the fleet-as-a-service layer: a resident campaign
// server (smappic-fleetd) that accepts campaign specs from many tenants,
// expands them onto a persistent tenant-aware queue, and schedules the jobs
// across remote worker processes (smappic-worker) over a lease/heartbeat
// protocol — the network recomposition of the campaign engine's three layers
// (queue, scheduler, executor).
//
// Protocol invariants:
//
//   - Jobs are deterministic, so a campaign's aggregate report is
//     byte-identical whether it ran in-process, on one worker, or on many
//     with some killed mid-job — scheduling is pure wall-clock policy.
//   - The content-addressed result cache answers before any lease is
//     granted: identical sweep points across tenants simulate once
//     fleet-wide.
//   - A lease not heartbeated within its TTL expires; the job is re-queued
//     (keeping its admission seq) and the late worker's eventual result is
//     rejected as stale — unless the job has meanwhile completed with the
//     same content key, in which case the duplicate is absorbed
//     idempotently.
//   - Per-tenant concurrency quotas bound in-flight leases; deficit
//     round-robin keeps starved tenants fair (see campaign.Queue).
package fleetsrv

import "smappic/internal/campaign"

// SubmitRequest asks the server to run a campaign on behalf of a tenant.
type SubmitRequest struct {
	// Tenant is the submitting principal; empty means "default". Quotas and
	// fair scheduling apply per tenant, while the result cache is
	// deliberately shared across all of them.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders this campaign's jobs within the tenant's own backlog
	// (higher first); it never overrides cross-tenant fairness.
	Priority int           `json:"priority,omitempty"`
	Spec     campaign.Spec `json:"spec"`
}

// SubmitResponse acknowledges an accepted campaign.
type SubmitResponse struct {
	CampaignID string `json:"campaign_id"`
	// Jobs is the expanded point count; Cached of those were answered from
	// the result cache at submit time and never touched the queue.
	Jobs   int `json:"jobs"`
	Cached int `json:"cached"`
}

// RegisterRequest announces a worker process to the server.
type RegisterRequest struct {
	// Name is a human-readable worker label for status output (hostname,
	// container name); it need not be unique.
	Name string `json:"name,omitempty"`
}

// RegisterResponse assigns the worker its identity and the lease TTL it
// must heartbeat within.
type RegisterResponse struct {
	WorkerID    string  `json:"worker_id"`
	LeaseTTLSec float64 `json:"lease_ttl_sec"`
}

// LeaseRequest asks for one job to execute.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// LeaseResponse carries the granted job, or nothing when the queue has no
// eligible work (everything pending belongs to tenants at quota, or the
// queue is empty) — the worker polls again after its poll interval.
type LeaseResponse struct {
	Job *LeasedJob `json:"job,omitempty"`
}

// LeasedJob is one granted lease: the job's full identity plus the
// execution policy of its campaign.
type LeasedJob struct {
	LeaseID    string              `json:"lease_id"`
	CampaignID string              `json:"campaign_id"`
	Tenant     string              `json:"tenant"`
	Index      int                 `json:"index"`
	Total      int                 `json:"total"`
	Params     campaign.Params     `json:"params"`
	Policy     campaign.ExecPolicy `json:"policy"`
}

// HeartbeatRequest extends a lease's deadline. A worker that misses the TTL
// loses the lease; its next heartbeat (and its eventual result) is rejected
// with 409, telling it to abandon the job.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	LeaseID  string `json:"lease_id"`
}

// ResultRequest delivers a finished job. Status is StatusRun or
// StatusFailed; Result is set for StatusRun.
type ResultRequest struct {
	WorkerID   string           `json:"worker_id"`
	LeaseID    string           `json:"lease_id"`
	CampaignID string           `json:"campaign_id"`
	Index      int              `json:"index"`
	Status     campaign.Status  `json:"status"`
	Result     *campaign.Result `json:"result,omitempty"`
	Err        string           `json:"err,omitempty"`
}

// CampaignStatus is one campaign's progress.
type CampaignStatus struct {
	CampaignID string `json:"campaign_id"`
	Tenant     string `json:"tenant"`
	Name       string `json:"name"`
	Total      int    `json:"total"`
	// Done counts completed jobs (executed or cache-served); Failed counts
	// terminal failures. Complete means Done+Failed == Total.
	Done     int  `json:"done"`
	Failed   int  `json:"failed"`
	Pending  int  `json:"pending"`
	InFlight int  `json:"in_flight"`
	Complete bool `json:"complete"`
}

// WorkerView is one worker's liveness row for status output.
type WorkerView struct {
	WorkerID string `json:"worker_id"`
	Name     string `json:"name,omitempty"`
	Leases   int    `json:"leases"`
	// IdleSec is how long since the worker last called in.
	IdleSec float64 `json:"idle_sec"`
}

// StatusView is the whole-fleet status document: the tenant queue view
// (backlog, in-flight, quota, DRR deficit per tenant), registered workers,
// and every campaign in admission order.
type StatusView struct {
	Queue     []campaign.TenantView `json:"queue"`
	Workers   []WorkerView          `json:"workers"`
	Campaigns []CampaignStatus      `json:"campaigns"`
}
