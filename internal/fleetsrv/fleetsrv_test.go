package fleetsrv

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smappic/internal/campaign"
)

// fakeExec is the deterministic executor stub shared by every protocol
// test and by the in-process reference runs — identical inputs, identical
// Result, wherever it executes.
func fakeExec(_ context.Context, p campaign.Params) (*campaign.Result, error) {
	return &campaign.Result{
		Label:  p.Label(),
		Key:    p.Key(),
		Params: p,
		Cycles: 1000 + p.Seed,
		Stats:  map[string]uint64{"fake.cycles": 1000 + p.Seed},
	}, nil
}

func testSpec(name string, seeds ...uint64) campaign.Spec {
	if len(seeds) == 0 {
		seeds = []uint64{1, 2, 3, 4}
	}
	return campaign.Spec{
		Name:      name,
		Shapes:    []string{"1x1x2"},
		Workloads: []string{campaign.WorkloadIS},
		Seeds:     seeds,
		Keys:      1 << 8,
	}
}

// referenceReport runs the spec through the in-process Runner (own cache
// dir, same fakeExec) and returns the canonical aggregate JSON and CSV —
// the bytes every fleet execution must reproduce exactly.
func referenceReport(t *testing.T, spec campaign.Spec) ([]byte, string) {
	t.Helper()
	cache, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := &campaign.Runner{Workers: 2, Cache: cache, Exec: fakeExec}
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	agg := res.Aggregate()
	doc, err := agg.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return doc, agg.CSV()
}

// testServer builds a server over a fresh cache with a stepped fake clock.
func testServer(t *testing.T) (*Server, *time.Time) {
	t.Helper()
	cache, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(cache)
	s.LeaseTTL = 10 * time.Second
	clock := time.Unix(1_700_000_000, 0)
	s.now = func() time.Time { return clock }
	return s, &clock
}

// completeAll drains the queue through the protocol as the given worker,
// executing with fakeExec, until no work remains.
func completeAll(t *testing.T, s *Server, workerID string) {
	t.Helper()
	for {
		resp, err := s.leaseNext(LeaseRequest{WorkerID: workerID})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Job == nil {
			return
		}
		lj := resp.Job
		res, _ := fakeExec(context.Background(), lj.Params)
		res.Attempts = 1
		if err := s.result(ResultRequest{
			WorkerID: workerID, LeaseID: lj.LeaseID, CampaignID: lj.CampaignID,
			Index: lj.Index, Status: campaign.StatusRun, Result: res,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// reportOf fetches a completed campaign's aggregate JSON straight from the
// server's assembly path (the same code the HTTP handler runs).
func reportOf(t *testing.T, s *Server, id string) []byte {
	t.Helper()
	cr, err := s.campaignResult(id)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := cr.Aggregate().JSON()
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestWorkerKilledMidLease: a worker leases a job and dies (never
// heartbeats). After the TTL the lease expires, the job re-queues keeping
// its place, a second worker completes the campaign, and the aggregate is
// byte-identical to the in-process run.
func TestWorkerKilledMidLease(t *testing.T) {
	spec := testSpec("killed")
	want, _ := referenceReport(t, spec)

	s, clock := testServer(t)
	sub, err := s.submit(SubmitRequest{Tenant: "alice", Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	w1 := s.register(RegisterRequest{Name: "doomed"})
	resp, err := s.leaseNext(LeaseRequest{WorkerID: w1.WorkerID})
	if err != nil || resp.Job == nil {
		t.Fatalf("lease: %v %+v", err, resp)
	}
	victim := resp.Job

	// The worker is SIGKILLed: no heartbeat, no result. Time passes.
	*clock = clock.Add(s.LeaseTTL + time.Second)

	w2 := s.register(RegisterRequest{Name: "survivor"})
	seen := map[int]bool{}
	for {
		r2, err := s.leaseNext(LeaseRequest{WorkerID: w2.WorkerID})
		if err != nil {
			t.Fatal(err)
		}
		if r2.Job == nil {
			break
		}
		seen[r2.Job.Index] = true
		res, _ := fakeExec(context.Background(), r2.Job.Params)
		res.Attempts = 1
		if err := s.result(ResultRequest{
			WorkerID: w2.WorkerID, LeaseID: r2.Job.LeaseID, CampaignID: r2.Job.CampaignID,
			Index: r2.Job.Index, Status: campaign.StatusRun, Result: res,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !seen[victim.Index] {
		t.Fatalf("the dead worker's job %d was never re-leased", victim.Index)
	}
	st, err := s.campaignStatus(sub.CampaignID)
	if err != nil || !st.Complete {
		t.Fatalf("campaign not complete: %+v (%v)", st, err)
	}
	if got := reportOf(t, s, sub.CampaignID); !bytes.Equal(got, want) {
		t.Fatalf("fleet report differs from in-process run\nfleet:\n%s\nin-process:\n%s", got, want)
	}
}

// TestHeartbeatLostStaleLeaseRejected: a worker loses connectivity, its
// lease expires, and when it comes back both its heartbeat and its result
// for the still-incomplete job are rejected as stale.
func TestHeartbeatLostStaleLeaseRejected(t *testing.T) {
	spec := testSpec("stale", 1)
	s, clock := testServer(t)
	if _, err := s.submit(SubmitRequest{Spec: spec}); err != nil {
		t.Fatal(err)
	}
	w1 := s.register(RegisterRequest{})
	resp, err := s.leaseNext(LeaseRequest{WorkerID: w1.WorkerID})
	if err != nil || resp.Job == nil {
		t.Fatalf("lease: %v %+v", err, resp)
	}
	lj := resp.Job

	// Heartbeats extend the deadline while they flow...
	*clock = clock.Add(s.LeaseTTL / 2)
	if err := s.heartbeat(HeartbeatRequest{WorkerID: w1.WorkerID, LeaseID: lj.LeaseID}); err != nil {
		t.Fatalf("live heartbeat rejected: %v", err)
	}
	// ...then the network partitions and the TTL lapses.
	*clock = clock.Add(s.LeaseTTL + time.Second)
	if err := s.heartbeat(HeartbeatRequest{WorkerID: w1.WorkerID, LeaseID: lj.LeaseID}); err != errStaleLease {
		t.Fatalf("stale heartbeat: got %v, want errStaleLease", err)
	}
	res, _ := fakeExec(context.Background(), lj.Params)
	res.Attempts = 1
	err = s.result(ResultRequest{
		WorkerID: w1.WorkerID, LeaseID: lj.LeaseID, CampaignID: lj.CampaignID,
		Index: lj.Index, Status: campaign.StatusRun, Result: res,
	})
	if err != errStaleLease {
		t.Fatalf("stale result for incomplete job: got %v, want errStaleLease", err)
	}
}

// TestDuplicateResultIdempotent: the slow first worker's result arrives
// after a second worker already completed the job. The duplicate carries
// the same content key (deterministic jobs), so it is absorbed with an
// idempotent cache put rather than rejected — and the report is unaffected.
func TestDuplicateResultIdempotent(t *testing.T) {
	spec := testSpec("dup", 1)
	want, _ := referenceReport(t, spec)

	s, clock := testServer(t)
	sub, err := s.submit(SubmitRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	w1 := s.register(RegisterRequest{Name: "slow"})
	resp, err := s.leaseNext(LeaseRequest{WorkerID: w1.WorkerID})
	if err != nil || resp.Job == nil {
		t.Fatalf("lease: %v %+v", err, resp)
	}
	lj := resp.Job
	*clock = clock.Add(s.LeaseTTL + time.Second)

	w2 := s.register(RegisterRequest{Name: "fast"})
	completeAll(t, s, w2.WorkerID)

	// The slow worker finally finishes and delivers. Same job, same bytes.
	res, _ := fakeExec(context.Background(), lj.Params)
	res.Attempts = 1
	if err := s.result(ResultRequest{
		WorkerID: w1.WorkerID, LeaseID: lj.LeaseID, CampaignID: lj.CampaignID,
		Index: lj.Index, Status: campaign.StatusRun, Result: res,
	}); err != nil {
		t.Fatalf("duplicate delivery of a completed job: got %v, want idempotent accept", err)
	}
	if got := reportOf(t, s, sub.CampaignID); !bytes.Equal(got, want) {
		t.Fatalf("report changed after duplicate delivery\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestTenantQuotasFairness: two tenants saturate the fleet; quotas cap each
// tenant's concurrent leases, DRR keeps grants fair, and both campaigns'
// reports are byte-identical to their in-process runs.
func TestTenantQuotasFairness(t *testing.T) {
	specA := testSpec("tenant-a", 1, 2, 3, 4)
	specB := testSpec("tenant-b", 5, 6, 7, 8)
	wantA, _ := referenceReport(t, specA)
	wantB, _ := referenceReport(t, specB)

	s, _ := testServer(t)
	s.SetQuota("alice", 2)
	s.SetQuota("bob", 2)
	subA, err := s.submit(SubmitRequest{Tenant: "alice", Spec: specA})
	if err != nil {
		t.Fatal(err)
	}
	subB, err := s.submit(SubmitRequest{Tenant: "bob", Spec: specB})
	if err != nil {
		t.Fatal(err)
	}

	w := s.register(RegisterRequest{Name: "pool"})
	type granted struct {
		lj *LeasedJob
	}
	var held []granted
	inflight := map[string]int{}
	grants := map[string]int{}
	// Greedy lease-everything: the quota must stop each tenant at 2.
	for {
		resp, err := s.leaseNext(LeaseRequest{WorkerID: w.WorkerID})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Job == nil {
			break
		}
		held = append(held, granted{resp.Job})
		inflight[resp.Job.Tenant]++
		grants[resp.Job.Tenant]++
		if inflight[resp.Job.Tenant] > 2 {
			t.Fatalf("tenant %s exceeded its quota: %d in flight", resp.Job.Tenant, inflight[resp.Job.Tenant])
		}
	}
	if inflight["alice"] != 2 || inflight["bob"] != 2 {
		t.Fatalf("saturated fleet in-flight %v, want 2 per tenant", inflight)
	}
	// Complete held leases, re-leasing greedily after each, until done.
	for len(held) > 0 {
		g := held[0]
		held = held[1:]
		inflight[g.lj.Tenant]--
		res, _ := fakeExec(context.Background(), g.lj.Params)
		res.Attempts = 1
		if err := s.result(ResultRequest{
			WorkerID: w.WorkerID, LeaseID: g.lj.LeaseID, CampaignID: g.lj.CampaignID,
			Index: g.lj.Index, Status: campaign.StatusRun, Result: res,
		}); err != nil {
			t.Fatal(err)
		}
		for {
			resp, err := s.leaseNext(LeaseRequest{WorkerID: w.WorkerID})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Job == nil {
				break
			}
			held = append(held, granted{resp.Job})
			inflight[resp.Job.Tenant]++
			grants[resp.Job.Tenant]++
			if inflight[resp.Job.Tenant] > 2 {
				t.Fatalf("tenant %s exceeded its quota mid-drain: %d", resp.Job.Tenant, inflight[resp.Job.Tenant])
			}
		}
	}
	if grants["alice"] != 4 || grants["bob"] != 4 {
		t.Fatalf("grants %v, want 4 per tenant", grants)
	}
	for id, want := range map[string][]byte{subA.CampaignID: wantA, subB.CampaignID: wantB} {
		if got := reportOf(t, s, id); !bytes.Equal(got, want) {
			t.Fatalf("campaign %s report differs from in-process run", id)
		}
	}
}

// TestCrossTenantCacheSharing: tenant B submits the same sweep tenant A
// already completed; every point answers from the shared cache at submit
// time and B's report is byte-identical to A's.
func TestCrossTenantCacheSharing(t *testing.T) {
	spec := testSpec("shared")
	s, _ := testServer(t)
	subA, err := s.submit(SubmitRequest{Tenant: "alice", Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	w := s.register(RegisterRequest{})
	completeAll(t, s, w.WorkerID)

	subB, err := s.submit(SubmitRequest{Tenant: "bob", Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if subB.Cached != subB.Jobs {
		t.Fatalf("tenant B: %d of %d cached, want all", subB.Cached, subB.Jobs)
	}
	a, b := reportOf(t, s, subA.CampaignID), reportOf(t, s, subB.CampaignID)
	if !bytes.Equal(a, b) {
		t.Fatal("cache-served campaign report differs from the executed one")
	}
}

// TestServerRestartPersistence: the server dies mid-campaign; a new one
// over the same StateDir and cache resumes — completed jobs stay completed,
// the rest re-queue — and the final report matches the in-process run.
func TestServerRestartPersistence(t *testing.T) {
	spec := testSpec("restart")
	want, _ := referenceReport(t, spec)

	cacheDir, stateDir := t.TempDir(), t.TempDir()
	cache, err := campaign.OpenCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(cache)
	s1.StateDir = stateDir
	if err := s1.Load(); err != nil {
		t.Fatal(err)
	}
	sub, err := s1.submit(SubmitRequest{Tenant: "alice", Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	// Complete two jobs, leave one leased (in flight at crash time), one queued.
	w := s1.register(RegisterRequest{})
	for i := 0; i < 2; i++ {
		resp, err := s1.leaseNext(LeaseRequest{WorkerID: w.WorkerID})
		if err != nil || resp.Job == nil {
			t.Fatalf("lease %d: %v", i, err)
		}
		res, _ := fakeExec(context.Background(), resp.Job.Params)
		res.Attempts = 1
		if err := s1.result(ResultRequest{
			WorkerID: w.WorkerID, LeaseID: resp.Job.LeaseID, CampaignID: resp.Job.CampaignID,
			Index: resp.Job.Index, Status: campaign.StatusRun, Result: res,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s1.leaseNext(LeaseRequest{WorkerID: w.WorkerID}); err != nil {
		t.Fatal(err)
	}
	// Server crashes here: s1 is abandoned, leases and queue state lost.

	cache2, err := campaign.OpenCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(cache2)
	s2.StateDir = stateDir
	if err := s2.Load(); err != nil {
		t.Fatal(err)
	}
	st, err := s2.campaignStatus(sub.CampaignID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 2 || st.Pending != 2 || st.Complete {
		t.Fatalf("restored status %+v, want 2 done, 2 re-queued", st)
	}
	w2 := s2.register(RegisterRequest{})
	completeAll(t, s2, w2.WorkerID)
	if got := reportOf(t, s2, sub.CampaignID); !bytes.Equal(got, want) {
		t.Fatalf("post-restart report differs from in-process run\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestEndToEndWorkersOverHTTP is the full transport path: a real HTTP
// server, two real Worker loops, one killed mid-job (context cancel, no
// goodbye), short TTL so its lease expires and the survivor picks the job
// up — final report byte-identical to the in-process run.
func TestEndToEndWorkersOverHTTP(t *testing.T) {
	spec := testSpec("e2e")
	want, wantCSV := referenceReport(t, spec)

	cache, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(cache)
	s.LeaseTTL = 500 * time.Millisecond
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cl := &Client{Server: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sub, err := cl.Submit(ctx, "alice", 0, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Worker 1 hangs on its first job until killed: its exec blocks, its
	// heartbeats keep the lease alive, then the kill (context cancel)
	// silences it and the lease expires.
	w1ctx, killW1 := context.WithCancel(ctx)
	var wg sync.WaitGroup
	var w1got atomic.Bool
	w1 := &Worker{
		Server: ts.URL,
		Name:   "doomed",
		Poll:   20 * time.Millisecond,
		Exec: func(jctx context.Context, p campaign.Params) (*campaign.Result, error) {
			w1got.Store(true)
			<-jctx.Done() // hang until killed
			return nil, jctx.Err()
		},
	}
	wg.Add(1)
	go func() { defer wg.Done(); w1.Run(w1ctx) }()
	// Wait until worker 1 holds a job, then kill it mid-lease.
	for !w1got.Load() && ctx.Err() == nil {
		time.Sleep(5 * time.Millisecond)
	}
	killW1()

	w2 := &Worker{Server: ts.URL, Name: "survivor", Poll: 20 * time.Millisecond, Exec: fakeExec}
	wg.Add(1)
	go func() { defer wg.Done(); w2.Run(ctx) }()

	st, err := cl.Wait(ctx, sub.CampaignID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Complete || st.Failed != 0 {
		t.Fatalf("final status %+v", st)
	}
	got, err := cl.Report(ctx, sub.CampaignID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet report differs from in-process run\nfleet:\n%s\nin-process:\n%s", got, want)
	}
	gotCSV, err := cl.ReportCSV(ctx, sub.CampaignID)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotCSV) != wantCSV {
		t.Fatal("fleet CSV differs from in-process run")
	}
	cancel()
	wg.Wait()
}
