// Package obs is the live observability server: an HTTP endpoint that
// attaches read-only to a running Prototype and/or a fleet campaign and
// serves
//
//   - GET /            an embedded, dependency-free dashboard (NoC link
//     heatmap, per-shard window occupancy, fleet job queue),
//   - GET /api/metrics the latest published Snapshot as JSON,
//   - GET /api/events  a server-sent-event stream of publish ticks, sampler
//     rows, watchdog transitions and campaign job lifecycle events.
//
// Non-perturbation contract: the server NEVER touches live simulator state
// from an HTTP handler. All state crosses from the simulation to the HTTP
// side through an explicit snapshot mailbox (an atomic pointer to an
// immutable Snapshot) that is written only by Publish, and Publish runs only
// at quiescent boundaries — a sampler tick, a window barrier (Group
// .OnBarrier), or between events on the serial driving goroutine
// (Prototype.RunObserved). Publishing schedules no events, mutates no
// registries, and allocates only host-side memory, so a run with the server
// attached is byte-identical to one without — enforced by the golden and
// differential tests.
package obs

import (
	_ "embed"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"smappic/internal/campaign"
	"smappic/internal/core"
	"smappic/internal/sim"
)

//go:embed dashboard.html
var dashboardHTML []byte

// Server is the observability HTTP server. Construct with New, attach a
// source with ObservePrototype and/or feed campaign events to CampaignEvent,
// then Start it (or mount Handler in a test server).
type Server struct {
	// MinPublishInterval rate-limits snapshot building against the wall
	// clock: Publish calls closer together than this are dropped (Flush is
	// never dropped). Window barriers can be microseconds apart; building a
	// full snapshot at each would slow the run down (it would still be
	// deterministic — throttling only affects what HTTP clients see, never
	// the simulation). Zero publishes every boundary.
	MinPublishInterval time.Duration

	proto *core.Prototype

	seq     atomic.Uint64
	snap    atomic.Pointer[Snapshot]
	lastPub atomic.Int64 // wall-clock nanos of the last accepted Publish
	hub     *Hub

	campMu sync.Mutex
	camp   *campaignState

	wdFired atomic.Bool // last observed watchdog state, for edge detection

	httpSrv *http.Server
}

// campaignState is the mutable job table behind CampaignView.
type campaignState struct {
	total  int
	jobs   map[int]*JobView
	counts map[string]int
}

// New returns a server with an empty mailbox and the default publish
// throttle (100ms).
func New() *Server {
	return &Server{
		MinPublishInterval: 100 * time.Millisecond,
		hub:                NewHub(),
	}
}

// ObservePrototype attaches the server read-only to a prototype and
// publishes an initial snapshot. Call before the run starts. It wires the
// non-perturbing publish hooks that exist on the prototype itself: the
// window barrier of a sharded build, and the sampler's row hook when a
// sampler is installed (rows are additionally forwarded on the SSE stream).
// Serial runs without a sampler publish from the driving goroutine instead —
// drive them with Prototype.RunObserved / RunUntilHaltedObserved, passing
// s.Publish.
func (s *Server) ObservePrototype(p *core.Prototype) {
	s.proto = p
	if p.Group != nil {
		prev := p.Group.OnBarrier
		p.Group.OnBarrier = func() {
			if prev != nil {
				prev()
			}
			s.Publish()
		}
	}
	if p.Sampler != nil {
		prev := p.Sampler.OnRow
		p.Sampler.OnRow = func(row sim.SampleRow) {
			if prev != nil {
				prev(row)
			}
			s.hub.Broadcast("sample", row)
			s.Publish()
		}
	}
	// The simulation has not started: building the first snapshot here is
	// trivially safe, and guarantees /api/metrics never 404s.
	s.Flush()
}

// Publish builds a fresh snapshot, stores it in the mailbox and notifies the
// SSE stream. It must be called only while the observed simulation is
// quiescent (see the package contract); calls arriving faster than
// MinPublishInterval are dropped.
func (s *Server) Publish() {
	if min := s.MinPublishInterval; min > 0 {
		now := time.Now().UnixNano()
		last := s.lastPub.Load()
		if now-last < int64(min) || !s.lastPub.CompareAndSwap(last, now) {
			return
		}
	}
	s.publish()
}

// Flush publishes unconditionally — the final state of a run, or the first
// snapshot at attach time.
func (s *Server) Flush() {
	s.lastPub.Store(time.Now().UnixNano())
	s.publish()
}

func (s *Server) publish() {
	sn := &Snapshot{Seq: s.seq.Add(1), WallMs: time.Now().UnixMilli()}
	if s.proto != nil {
		buildPrototypeView(sn, s.proto)
	}
	sn.Campaign = s.campaignView()
	s.snap.Store(sn)

	// Edge-detect a watchdog stall so the stream carries the diagnosis once.
	if wd := sn.Watchdog; wd != nil && wd.Fired && !s.wdFired.Swap(true) {
		s.hub.Broadcast("watchdog", wd)
	}
	s.hub.Broadcast("tick", tickEvent(sn))
}

// tickEvent is the light SSE notification sent on every publish: enough for
// the dashboard to render progress and decide when to refetch /api/metrics.
func tickEvent(sn *Snapshot) map[string]any {
	ev := map[string]any{"seq": sn.Seq, "wall_ms": sn.WallMs}
	if sn.Meta != nil {
		ev["cycles"] = sn.Meta.Cycles
		ev["halted"] = sn.Meta.Halted
	}
	if sn.Sync != nil {
		ev["windows"] = sn.Sync.Windows
		ev["horizon"] = sn.Sync.Horizon
		ev["width"] = sn.Sync.Width
		ev["shards"] = sn.Sync.Shards
	}
	if sn.Campaign != nil {
		ev["campaign"] = sn.Campaign.Counts
	}
	return ev
}

// CampaignEvent feeds one runner lifecycle event into the job table, streams
// it, and refreshes the snapshot. Safe for concurrent use — hang it directly
// on campaign.Runner.OnEvent.
func (s *Server) CampaignEvent(ev campaign.Event) {
	s.campMu.Lock()
	if s.camp == nil {
		s.camp = &campaignState{jobs: make(map[int]*JobView), counts: make(map[string]int)}
	}
	c := s.camp
	c.total = ev.Total
	jv, ok := c.jobs[ev.Index]
	if !ok {
		jv = &JobView{Index: ev.Index}
		c.jobs[ev.Index] = jv
	}
	jv.Label = ev.Label
	switch ev.Type {
	case campaign.EventStarted:
		jv.Status = "running"
		jv.Attempt = ev.Attempt
	case campaign.EventCacheHit:
		jv.Status = "cached"
		jv.Cycles = ev.Cycles
	case campaign.EventStallRetry:
		jv.Status = "retrying"
		jv.Attempt = ev.Attempt + 1
		jv.Err = ev.Err
	case campaign.EventDone:
		jv.Status = "done"
		jv.Attempt = ev.Attempt
		jv.Cycles = ev.Cycles
		jv.Err = ""
	case campaign.EventFailed:
		jv.Status = "failed"
		jv.Err = ev.Err
	case campaign.EventSkipped:
		jv.Status = "skipped"
		jv.Err = ev.Err
	}
	c.counts = make(map[string]int)
	for _, j := range c.jobs {
		c.counts[j.Status]++
	}
	s.campMu.Unlock()

	s.hub.Broadcast("job", ev)
	s.Publish()
}

// campaignView deep-copies the job table for a snapshot.
func (s *Server) campaignView() *CampaignView {
	s.campMu.Lock()
	defer s.campMu.Unlock()
	if s.camp == nil {
		return nil
	}
	c := s.camp
	view := &CampaignView{
		Total:  c.total,
		Counts: make(map[string]int, len(c.counts)),
		Jobs:   make([]JobView, 0, len(c.jobs)),
	}
	for k, v := range c.counts {
		view.Counts[k] = v
	}
	for _, j := range c.jobs {
		view.Jobs = append(view.Jobs, *j)
	}
	// Index order, so the dashboard's table is stable.
	for i := 1; i < len(view.Jobs); i++ {
		for j := i; j > 0 && view.Jobs[j].Index < view.Jobs[j-1].Index; j-- {
			view.Jobs[j], view.Jobs[j-1] = view.Jobs[j-1], view.Jobs[j]
		}
	}
	return view
}

// Handler returns the server's HTTP mux: the dashboard at /, the snapshot
// mailbox at /api/metrics, and the SSE stream at /api/events.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("GET /api/metrics", s.handleMetrics)
	mux.HandleFunc("GET /api/events", s.handleEvents)
	return mux
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashboardHTML)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	sn := s.snap.Load()
	if sn == nil {
		sn = &Snapshot{} // attached to nothing yet: an empty, valid document
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	enc.Encode(sn)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Connection", "keep-alive")

	ch := s.hub.Subscribe()
	defer s.hub.Unsubscribe(ch)

	// Greet immediately with the latest snapshot's tick, so a subscriber
	// always receives a first event without waiting for the next publish
	// (the CI smoke test and reconnecting dashboards rely on this).
	var hello any = map[string]any{"seq": 0}
	if sn := s.snap.Load(); sn != nil {
		hello = tickEvent(sn)
	}
	w.Write(FormatSSE("hello", hello))
	fl.Flush()

	for {
		select {
		case frame := <-ch:
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// Start listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves in a
// background goroutine. It returns the bound address, so ":0" works in
// tests and scripts.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go s.httpSrv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close shuts the listener down. In-flight SSE streams are cut.
func (s *Server) Close() error {
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Close()
}
