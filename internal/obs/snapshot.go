package obs

import (
	"smappic/internal/core"
	"smappic/internal/noc"
	"smappic/internal/sim"
)

// Snapshot is one consistent, immutable view of everything the dashboard
// shows. It is built only at quiescent simulation boundaries (sample ticks,
// window barriers, between events on the driving goroutine) and then
// published into the server's mailbox; HTTP handlers marshal it concurrently
// with the running simulation precisely because nothing in it aliases live
// simulator state.
type Snapshot struct {
	Seq    uint64 `json:"seq"`     // publish sequence number
	WallMs int64  `json:"wall_ms"` // wall-clock publish time (Unix ms; never enters sim results)

	// Meta and the sections below are present when a prototype is observed.
	Meta     *MetaView          `json:"meta,omitempty"`
	Stats    *sim.StatsSnapshot `json:"stats,omitempty"` // merged across shards
	Sync     *SyncView          `json:"sync,omitempty"`  // sharded runs only
	NoC      []MeshView         `json:"noc,omitempty"`
	Watchdog *WatchdogView      `json:"watchdog,omitempty"`
	Sampler  *SamplerView       `json:"sampler,omitempty"`

	// Campaign is present when a fleet campaign is observed.
	Campaign *CampaignView `json:"campaign,omitempty"`
}

// MetaView mirrors the run header of MetricsJSON.
type MetaView struct {
	Shape        string `json:"shape"`
	FPGAs        int    `json:"fpgas"`
	NodesPerFPGA int    `json:"nodes_per_fpga"`
	TilesPerNode int    `json:"tiles_per_node"`
	Cycles       uint64 `json:"cycles"`
	ClockMHz     int    `json:"clock_mhz"`
	Seed         uint64 `json:"seed"`
	Parallel     bool   `json:"parallel"`
	Halted       bool   `json:"halted"` // every started core has halted
}

// SyncView is the window synchronizer's state at the last barrier,
// including the adaptive-lookahead machinery (window width, cap, and the
// widen/collapse history).
type SyncView struct {
	sim.GroupSync
	// ShardStats carries each shard's own registry snapshot, so per-shard
	// behavior is visible before the report-time merge.
	ShardStats []*sim.StatsSnapshot `json:"shard_stats,omitempty"`
}

// MeshView is one node's NoC traffic: cumulative per-link flit and busy
// totals for each of the three classes. Links are indexed tile*4+direction
// (N=0,E=1,S=2,W=3) with the chipset and bridge exit links at the tail —
// the dashboard reconstructs the mesh geometry from W and H.
type MeshView struct {
	Node    int              `json:"node"`
	Name    string           `json:"name"`
	W       int              `json:"w"`
	H       int              `json:"h"`
	Classes [][]noc.LinkStat `json:"classes"`
}

// WatchdogView reports the forward-progress watchdog.
type WatchdogView struct {
	Armed     bool   `json:"armed"`
	Fired     bool   `json:"fired"`
	Diagnosis string `json:"diagnosis,omitempty"`
}

// SamplerView summarizes the interval sampler: its columns and the latest
// row (the full series stays in MetricsJSON; the SSE stream carries rows as
// they are taken).
type SamplerView struct {
	Every sim.Time       `json:"every"`
	Names []string       `json:"names"`
	Rows  int            `json:"rows"`
	Last  *sim.SampleRow `json:"last,omitempty"`
}

// CampaignView is the fleet job table, rebuilt from runner events.
type CampaignView struct {
	Total  int            `json:"total"`
	Counts map[string]int `json:"counts"` // jobs by current status
	Jobs   []JobView      `json:"jobs"`   // index-ordered; only jobs seen so far
}

// JobView is one campaign job's latest known state.
type JobView struct {
	Index   int    `json:"index"`
	Label   string `json:"label"`
	Status  string `json:"status"` // running | retrying | done | cached | failed | skipped
	Attempt int    `json:"attempt,omitempty"`
	Cycles  uint64 `json:"cycles,omitempty"`
	Err     string `json:"err,omitempty"`
}

// buildPrototypeView fills the prototype-derived sections of a snapshot.
// It must run only while the simulation is quiescent: the caller is either
// the serial driving goroutine between events, a sampler tick, or the shard
// coordinator at a window barrier.
func buildPrototypeView(sn *Snapshot, p *core.Prototype) {
	cfg := p.Cfg
	sn.Meta = &MetaView{
		Shape:        cfg.Shape(),
		FPGAs:        cfg.FPGAs,
		NodesPerFPGA: cfg.NodesPerFPGA,
		TilesPerNode: cfg.TilesPerNode,
		Cycles:       uint64(p.Now()),
		ClockMHz:     cfg.ClockMHz,
		Seed:         cfg.Seed,
		Parallel:     p.Group != nil,
		Halted:       p.AllHalted(),
	}

	if p.Group != nil {
		// Merge the shard registries into a scratch registry (CopyFrom only
		// reads its sources) and snapshot per-shard views alongside. The
		// registries come in shard order, whatever the granularity — one
		// per FPGA, or one per node under per-node sharding.
		regs := p.ShardRegistries()
		var merged sim.Stats
		merged.CopyFrom(regs...)
		sn.Stats = merged.Snapshot()

		sv := &SyncView{
			GroupSync:  p.Group.SyncSnapshot(),
			ShardStats: make([]*sim.StatsSnapshot, len(regs)),
		}
		for i, reg := range regs {
			sv.ShardStats[i] = reg.Snapshot()
		}
		sn.Sync = sv
	} else {
		sn.Stats = p.Stats.Snapshot()
	}

	sn.NoC = make([]MeshView, 0, len(p.Nodes))
	for _, n := range p.Nodes {
		w, h := n.Mesh.Dims()
		sn.NoC = append(sn.NoC, MeshView{
			Node:    n.ID,
			Name:    n.Name(),
			W:       w,
			H:       h,
			Classes: n.Mesh.LinkStatsSnapshot(),
		})
	}

	sn.Watchdog = &WatchdogView{
		Armed:     p.Watchdog != nil,
		Fired:     p.Watchdog != nil && p.Watchdog.Fired(),
		Diagnosis: p.StallDiagnosis,
	}

	if p.Sampler != nil {
		rows := p.Sampler.Rows()
		sv := &SamplerView{
			Every: p.Sampler.Every(),
			Names: p.Sampler.Names(),
			Rows:  len(rows),
		}
		if len(rows) > 0 {
			last := rows[len(rows)-1]
			sv.Last = &last
		}
		sn.Sampler = sv
	}
}
