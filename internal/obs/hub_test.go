package obs

import (
	"sync"
	"testing"
	"time"
)

// TestHubBroadcastStormVsChurn hammers Broadcast from several publishers
// while subscribers churn on and off — the contention shape where marshaling
// under the hub lock used to stall every connecting client. Run under -race
// in CI; the assertion here is "no deadlock, no race, frames still flow".
func TestHubBroadcastStormVsChurn(t *testing.T) {
	h := NewHub()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Publishers: a broadcast storm with a non-trivial payload, so the
	// marshal takes long enough to matter.
	payload := map[string]any{
		"seq": 1, "labels": []string{"a", "b", "c", "d"},
		"nested": map[string]int{"x": 1, "y": 2, "z": 3},
	}
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Broadcast("tick", payload)
				}
			}
		}()
	}

	// Churners: subscribe, drain a little, unsubscribe, repeat.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ch := h.Subscribe()
				for i := 0; i < 8; i++ {
					select {
					case <-ch:
					case <-stop:
						h.Unsubscribe(ch)
						return
					}
				}
				h.Unsubscribe(ch)
			}
		}()
	}

	// A steady subscriber proving frames actually flow during the churn.
	got := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		ch := h.Subscribe()
		defer h.Unsubscribe(ch)
		n := 0
		for n < 100 {
			select {
			case <-ch:
				n++
			case <-stop:
				return
			}
		}
		close(got)
	}()

	select {
	case <-got:
	case <-time.After(10 * time.Second):
		t.Error("steady subscriber starved: no 100 frames within 10s")
	}
	close(stop)
	wg.Wait()
	if h.Subscribers() != 0 {
		t.Fatalf("subscribers = %d after churn, want 0", h.Subscribers())
	}
}
