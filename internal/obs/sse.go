package obs

import (
	"encoding/json"
	"fmt"
	"sync"
)

// hub fans events out to SSE subscribers. Broadcasting never blocks: a
// subscriber whose buffer is full simply misses events (the dashboard
// re-syncs from /api/metrics on the next tick), so a slow or stuck HTTP
// client can never stall the goroutine publishing from the simulation side.
type hub struct {
	mu   sync.Mutex
	subs map[chan []byte]struct{}
}

// subBuffer is each subscriber's channel depth. Deep enough to ride out a
// TCP hiccup, small enough that an abandoned connection holds trivial memory.
const subBuffer = 256

func newHub() *hub {
	return &hub{subs: make(map[chan []byte]struct{})}
}

// subscribe registers a new subscriber and returns its event channel.
func (h *hub) subscribe() chan []byte {
	ch := make(chan []byte, subBuffer)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch
}

// unsubscribe removes a subscriber. Its channel is not closed — the reader
// owns the receive loop and exits on its request context instead.
func (h *hub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

// subscribers returns the current subscriber count.
func (h *hub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// broadcast marshals data and sends one SSE frame to every subscriber,
// dropping frames for subscribers that cannot keep up.
func (h *hub) broadcast(event string, data any) {
	h.mu.Lock()
	if len(h.subs) == 0 {
		h.mu.Unlock()
		return
	}
	frame := formatSSE(event, data)
	for ch := range h.subs {
		select {
		case ch <- frame:
		default: // slow subscriber: drop, never block the publisher
		}
	}
	h.mu.Unlock()
}

// formatSSE renders one server-sent event frame: an event name line, the
// JSON payload on a data line, and the blank separator line.
func formatSSE(event string, data any) []byte {
	payload, err := json.Marshal(data)
	if err != nil {
		payload = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return []byte("event: " + event + "\ndata: " + string(payload) + "\n\n")
}
