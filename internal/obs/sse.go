package obs

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Hub fans events out to SSE subscribers. Broadcasting never blocks: a
// subscriber whose buffer is full simply misses events (the dashboard
// re-syncs from /api/metrics on the next tick), so a slow or stuck HTTP
// client can never stall the goroutine publishing from the simulation side.
//
// Exported so other servers can reuse the same streaming discipline — the
// fleet server (internal/fleetsrv) runs one Hub per campaign for its
// progress streams.
type Hub struct {
	mu   sync.Mutex
	subs map[chan []byte]struct{}
}

// subBuffer is each subscriber's channel depth. Deep enough to ride out a
// TCP hiccup, small enough that an abandoned connection holds trivial memory.
const subBuffer = 256

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[chan []byte]struct{})}
}

// Subscribe registers a new subscriber and returns its event channel.
func (h *Hub) Subscribe() chan []byte {
	ch := make(chan []byte, subBuffer)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch
}

// Unsubscribe removes a subscriber. Its channel is not closed — the reader
// owns the receive loop and exits on its request context instead.
func (h *Hub) Unsubscribe(ch chan []byte) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

// Subscribers returns the current subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Broadcast marshals data and sends one SSE frame to every subscriber,
// dropping frames for subscribers that cannot keep up. The JSON marshal
// happens outside the lock: marshaling an arbitrary payload under h.mu
// stalled every concurrent Subscribe/Unsubscribe (i.e. every connecting or
// disconnecting HTTP client) for the duration of the encode.
func (h *Hub) Broadcast(event string, data any) {
	h.mu.Lock()
	empty := len(h.subs) == 0
	h.mu.Unlock()
	if empty {
		// No audience: skip the encode entirely. A subscriber arriving
		// between this check and a frame it therefore misses is identical to
		// one arriving just after the broadcast — it catches up from the
		// snapshot mailbox like any late joiner.
		return
	}
	frame := FormatSSE(event, data)
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- frame:
		default: // slow subscriber: drop, never block the publisher
		}
	}
	h.mu.Unlock()
}

// FormatSSE renders one server-sent event frame: an event name line, the
// JSON payload on a data line, and the blank separator line.
func FormatSSE(event string, data any) []byte {
	payload, err := json.Marshal(data)
	if err != nil {
		payload = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return []byte("event: " + event + "\ndata: " + string(payload) + "\n\n")
}
