package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"smappic/internal/campaign"
	"smappic/internal/core"
	"smappic/internal/kernel"
	"smappic/internal/workload"
)

// buildSmall builds a cheap CoreNone prototype for endpoint tests.
func buildSmall(t *testing.T, parallel int) *core.Prototype {
	t.Helper()
	cfg := core.DefaultConfig(2, 1, 2)
	cfg.Core = core.CoreNone
	cfg.Parallel = parallel
	p, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEndpointsServeDashboardMetricsAndSSE(t *testing.T) {
	srv := New()
	srv.ObservePrototype(buildSmall(t, 0))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Dashboard.
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != 200 || !strings.Contains(body, "SMAPPIC") {
		t.Fatalf("dashboard: status %d, body %q...", resp.StatusCode, body[:min(len(body), 80)])
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("dashboard content type %q", ct)
	}

	// Metrics: a valid snapshot with the prototype's shape, present before
	// the run even starts (ObservePrototype publishes an initial snapshot).
	resp, err = http.Get(ts.URL + "/api/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sn Snapshot
	if err := json.Unmarshal([]byte(readAll(t, resp)), &sn); err != nil {
		t.Fatalf("metrics is not valid JSON: %v", err)
	}
	if sn.Seq == 0 || sn.Meta == nil || sn.Meta.Shape != "2x1x2" {
		t.Fatalf("unexpected snapshot: %+v", sn)
	}
	if sn.Meta.Parallel || sn.Sync != nil {
		t.Fatalf("serial build reported as sharded: %+v", sn.Meta)
	}
	if len(sn.NoC) != 2 {
		t.Fatalf("got %d mesh views, want 2", len(sn.NoC))
	}

	// SSE: a subscriber gets a hello event immediately, without waiting for
	// a publish.
	resp, err = http.Get(ts.URL + "/api/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if line != "event: hello\n" {
		t.Fatalf("first SSE line %q, want hello event", line)
	}
	data, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(data, "data: {") {
		t.Fatalf("hello payload line %q", data)
	}
}

func TestParallelSnapshotCarriesSyncView(t *testing.T) {
	srv := New()
	p := buildSmall(t, 2)
	srv.ObservePrototype(p)
	sn := srv.snap.Load()
	if sn == nil || sn.Sync == nil {
		t.Fatal("sharded build published no sync view")
	}
	if len(sn.Sync.Shards) != 2 || len(sn.Sync.ShardStats) != 2 {
		t.Fatalf("sync view: %+v", sn.Sync)
	}
	if sn.Sync.Lookahead != p.Lookahead() {
		t.Fatalf("lookahead %d, want %d", sn.Sync.Lookahead, p.Lookahead())
	}
}

func TestCampaignEventsUpdateTableAndStream(t *testing.T) {
	srv := New()
	srv.MinPublishInterval = 0
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Subscribe before the events fire.
	resp, err := http.Get(ts.URL + "/api/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sse := bufio.NewReader(resp.Body)
	if line, _ := sse.ReadString('\n'); line != "event: hello\n" {
		t.Fatalf("expected hello, got %q", line)
	}

	srv.CampaignEvent(campaign.Event{Type: campaign.EventStarted, Index: 1, Label: "b", Total: 3, Attempt: 1})
	srv.CampaignEvent(campaign.Event{Type: campaign.EventCacheHit, Index: 0, Label: "a", Total: 3, Cycles: 123})
	srv.CampaignEvent(campaign.Event{Type: campaign.EventStallRetry, Index: 1, Label: "b", Total: 3, Attempt: 1, Err: "stall"})
	srv.CampaignEvent(campaign.Event{Type: campaign.EventDone, Index: 1, Label: "b", Total: 3, Attempt: 2, Cycles: 456})
	srv.CampaignEvent(campaign.Event{Type: campaign.EventFailed, Index: 2, Label: "c", Total: 3, Err: "boom"})

	view := srv.campaignView()
	if view.Total != 3 || len(view.Jobs) != 3 {
		t.Fatalf("campaign view: %+v", view)
	}
	// Jobs come back index-ordered regardless of event arrival order.
	for i, j := range view.Jobs {
		if j.Index != i {
			t.Fatalf("job table not index-ordered: %+v", view.Jobs)
		}
	}
	if view.Jobs[0].Status != "cached" || view.Jobs[0].Cycles != 123 {
		t.Fatalf("job 0: %+v", view.Jobs[0])
	}
	if view.Jobs[1].Status != "done" || view.Jobs[1].Attempt != 2 || view.Jobs[1].Err != "" {
		t.Fatalf("job 1 (retried then done): %+v", view.Jobs[1])
	}
	if view.Jobs[2].Status != "failed" || view.Jobs[2].Err != "boom" {
		t.Fatalf("job 2: %+v", view.Jobs[2])
	}
	if view.Counts["done"] != 1 || view.Counts["cached"] != 1 || view.Counts["failed"] != 1 {
		t.Fatalf("counts: %v", view.Counts)
	}

	// The stream carried the job events (interleaved with ticks).
	sawJob := false
	for i := 0; i < 64 && !sawJob; i++ {
		line, err := sse.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended early: %v", err)
		}
		sawJob = line == "event: job\n"
	}
	if !sawJob {
		t.Fatal("no job event on the SSE stream")
	}

	// The snapshot endpoint reflects the same table.
	mresp, err := http.Get(ts.URL + "/api/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sn Snapshot
	if err := json.Unmarshal([]byte(readAll(t, mresp)), &sn); err != nil {
		t.Fatal(err)
	}
	if sn.Campaign == nil || sn.Campaign.Counts["done"] != 1 {
		t.Fatalf("snapshot campaign section: %+v", sn.Campaign)
	}
}

// TestServedParallelRunIsNonPerturbing is the package's core guarantee under
// the race detector: a sharded workload run with the dashboard attached —
// publishing at every window barrier, with HTTP clients hammering the
// metrics endpoint and the SSE stream throughout — produces MetricsJSON
// byte-identical to the same run without a server.
func TestServedParallelRunIsNonPerturbing(t *testing.T) {
	runIS := func(p *core.Prototype) []byte {
		kc := kernel.DefaultConfig()
		kc.Seed = 42
		k := kernel.New(p, kc)
		ip := workload.DefaultISParams(p.Cfg.TotalTiles())
		ip.Keys = 1 << 10
		if r := workload.RunIS(k, ip); !r.Sorted {
			t.Fatal("IS output not sorted")
		}
		m, err := p.MetricsJSON()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Reference: no server anywhere near the run.
	want := runIS(buildSmall(t, 2))

	// Observed: server attached, publishing from every window barrier
	// (throttle off = worst case), clients hammering both endpoints.
	p := buildSmall(t, 2)
	srv := New()
	srv.MinPublishInterval = 0
	srv.ObservePrototype(p)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/api/metrics")
				if err != nil {
					return // server shutting down
				}
				var sn Snapshot
				if err := json.Unmarshal([]byte(readAll(t, resp)), &sn); err != nil {
					t.Errorf("mid-run metrics not valid JSON: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/api/events")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		r := bufio.NewReader(resp.Body)
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := r.ReadString('\n'); err != nil {
				return
			}
		}
	}()

	got := runIS(p)
	srv.Flush()
	close(done)
	ts.CloseClientConnections()
	wg.Wait()

	if !bytes.Equal(got, want) {
		t.Errorf("MetricsJSON perturbed by the attached server (%d vs %d bytes)", len(got), len(want))
	}
	if sn := srv.snap.Load(); sn == nil || sn.Seq < 2 {
		t.Fatal("server never published during the run")
	} else if sn.Sync == nil || sn.Sync.Windows == 0 {
		t.Fatalf("final snapshot has no synchronizer progress: %+v", sn.Sync)
	}
}

// TestHubDropsSlowSubscribers pins the non-blocking broadcast: a subscriber
// that never reads cannot stall the publisher.
func TestHubDropsSlowSubscribers(t *testing.T) {
	h := NewHub()
	ch := h.Subscribe()
	if h.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1", h.Subscribers())
	}
	for i := 0; i < subBuffer*3; i++ { // must not block
		h.Broadcast("tick", map[string]int{"i": i})
	}
	if len(ch) != subBuffer {
		t.Fatalf("buffered %d frames, want full buffer %d", len(ch), subBuffer)
	}
	h.Unsubscribe(ch)
	if h.Subscribers() != 0 {
		t.Fatalf("subscribers = %d after unsubscribe", h.Subscribers())
	}
	h.Broadcast("tick", nil) // no subscribers: no-op
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, b.String())
	}
	return b.String()
}
