package riscv

import (
	"testing"

	"smappic/internal/mem"
	"smappic/internal/rvasm"
	"smappic/internal/sim"
)

// flatMem is a timing-free Mem over a backing store, with one MMIO word to
// test device access ordering.
type flatMem struct {
	b        *mem.Backing
	loadLat  sim.Time
	mmioAddr uint64
	mmioLog  []uint64
}

func (m *flatMem) Fetch(p *sim.Process, addr uint64) uint32 {
	return m.b.ReadU32(addr)
}

func (m *flatMem) Load(p *sim.Process, addr uint64, size int) uint64 {
	if m.loadLat > 0 {
		p.Wait(m.loadLat)
	}
	switch size {
	case 1:
		return uint64(m.b.ReadU8(addr))
	case 2:
		return uint64(m.b.ReadU16(addr))
	case 4:
		return uint64(m.b.ReadU32(addr))
	default:
		return m.b.ReadU64(addr)
	}
}

func (m *flatMem) Store(p *sim.Process, addr uint64, size int, v uint64) {
	if addr == m.mmioAddr && m.mmioAddr != 0 {
		m.mmioLog = append(m.mmioLog, v)
		return
	}
	switch size {
	case 1:
		m.b.WriteU8(addr, uint8(v))
	case 2:
		m.b.WriteU16(addr, uint16(v))
	case 4:
		m.b.WriteU32(addr, uint32(v))
	default:
		m.b.WriteU64(addr, v)
	}
}

func (m *flatMem) Amo(p *sim.Process, addr uint64, size int, f func(uint64) uint64) uint64 {
	old := m.Load(p, addr, size)
	m.Store(p, addr, size, f(old))
	return old
}

// run assembles source at 0x1000, executes until halt, and returns the core.
func run(t *testing.T, source string) (*Core, *flatMem) {
	t.Helper()
	return runWith(t, source, nil)
}

func runWith(t *testing.T, source string, tweak func(*flatMem)) (*Core, *flatMem) {
	t.Helper()
	prog, err := rvasm.Assemble(0x1000, source)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	fm := &flatMem{b: mem.NewBacking()}
	if tweak != nil {
		tweak(fm)
	}
	fm.b.WriteBytes(prog.Base, prog.Bytes)
	core := New(fm, 0, prog.Base, nil, "core0")
	eng := sim.NewEngine()
	sim.Go(eng, "hart0", func(p *sim.Process) { core.Run(p, 2_000_000) })
	eng.Run()
	if !core.Halted() {
		t.Fatalf("program did not halt; %s", core)
	}
	return core, fm
}

// expectA0 runs a program and checks the a0 halt code.
func expectA0(t *testing.T, want uint64, source string) *Core {
	t.Helper()
	core, _ := run(t, source)
	if core.HaltCode() != want {
		t.Fatalf("a0 = %d (%#x), want %d; %s", core.HaltCode(), core.HaltCode(), want, core)
	}
	return core
}

func TestArithmetic(t *testing.T) {
	expectA0(t, 42, `
		li   a0, 40
		addi a0, a0, 2
		ebreak
	`)
}

func TestSubAndNeg(t *testing.T) {
	expectA0(t, 5, `
		li a1, 12
		li a2, 7
		sub a0, a1, a2
		ebreak
	`)
}

func TestLargeImmediates(t *testing.T) {
	expectA0(t, 0xDEADBEEF, `
		li a0, 0xDEADBEEF
		ebreak
	`)
	expectA0(t, 0x123456789ABCDEF0, `
		li a0, 0x123456789ABCDEF0
		ebreak
	`)
}

func TestNegativeImmediate(t *testing.T) {
	core, _ := run(t, `
		li a0, -5
		ebreak
	`)
	if int64(core.HaltCode()) != -5 {
		t.Fatalf("a0 = %d, want -5", int64(core.HaltCode()))
	}
}

func TestLoadsStores(t *testing.T) {
	expectA0(t, 0x1122334455667788, `
		la   t0, buf
		li   t1, 0x1122334455667788
		sd   t1, 0(t0)
		ld   a0, 0(t0)
		ebreak
	.align 3
	buf:	.dword 0
	`)
	// Sub-word widths and sign extension.
	expectA0(t, 0xFFFFFFFFFFFFFF80, `
		la t0, buf
		li t1, 0x80
		sb t1, 0(t0)
		lb a0, 0(t0)
		ebreak
	.align 3
	buf:	.dword 0
	`)
	expectA0(t, 0x80, `
		la t0, buf
		li t1, 0x80
		sb t1, 0(t0)
		lbu a0, 0(t0)
		ebreak
	.align 3
	buf:	.dword 0
	`)
}

func TestBranchesAndLoops(t *testing.T) {
	// Sum 1..10 = 55.
	expectA0(t, 55, `
		li a0, 0
		li t0, 1
		li t1, 10
	loop:	add a0, a0, t0
		addi t0, t0, 1
		ble t0, t1, loop
		ebreak
	`)
}

func TestFunctionCall(t *testing.T) {
	expectA0(t, 21, `
		li   a0, 7
		call triple
		ebreak
	triple:	li t0, 3
		mul a0, a0, t0
		ret
	`)
}

func TestMulDiv(t *testing.T) {
	expectA0(t, 6, `
		li a1, 42
		li a2, 7
		divu a0, a1, a2
		ebreak
	`)
	expectA0(t, 3, `
		li a1, 31
		li a2, 7
		remu a0, a1, a2
		ebreak
	`)
	// Division by zero returns all-ones per spec.
	core, _ := run(t, `
		li a1, 5
		li a2, 0
		div a0, a1, a2
		ebreak
	`)
	if core.HaltCode() != ^uint64(0) {
		t.Fatalf("div by zero = %#x, want all ones", core.HaltCode())
	}
}

func TestMulh(t *testing.T) {
	// (2^63) * 2 >> 64 == 1 for unsigned.
	expectA0(t, 1, `
		li a1, 0x8000000000000000
		li a2, 2
		mulhu a0, a1, a2
		ebreak
	`)
	// -1 * -1 high half is 0 signed.
	expectA0(t, 0, `
		li a1, -1
		li a2, -1
		mulh a0, a1, a2
		ebreak
	`)
}

func TestWordOps(t *testing.T) {
	// addw wraps at 32 bits and sign-extends.
	core, _ := run(t, `
		li a1, 0x7FFFFFFF
		li a2, 1
		addw a0, a1, a2
		ebreak
	`)
	if int64(core.HaltCode()) != -0x80000000 {
		t.Fatalf("addw overflow = %#x", core.HaltCode())
	}
}

func TestShifts(t *testing.T) {
	expectA0(t, 0x10, `
		li a0, 1
		slli a0, a0, 4
		ebreak
	`)
	core, _ := run(t, `
		li a0, -16
		srai a0, a0, 2
		ebreak
	`)
	if int64(core.HaltCode()) != -4 {
		t.Fatalf("srai = %d, want -4", int64(core.HaltCode()))
	}
}

func TestAmoAddAndSwap(t *testing.T) {
	expectA0(t, 15, `
		la t0, counter
		li t1, 5
		amoadd.d t2, t1, (t0)   # returns 10, memory = 15
		ld a0, 0(t0)
		ebreak
	.align 3
	counter: .dword 10
	`)
	expectA0(t, 10, `
		la t0, counter
		li t1, 5
		amoswap.d a0, t1, (t0)  # returns old value 10
		ebreak
	.align 3
	counter: .dword 10
	`)
}

func TestLrScSuccess(t *testing.T) {
	expectA0(t, 0, `
		la t0, cell
		lr.d t1, (t0)
		addi t1, t1, 1
		sc.d a0, t1, (t0)   # 0 = success
		ebreak
	.align 3
	cell: .dword 7
	`)
}

func TestLrScFailsWithoutReservation(t *testing.T) {
	expectA0(t, 1, `
		la t0, cell
		li t1, 9
		sc.d a0, t1, (t0)   # no reservation: must fail
		ebreak
	.align 3
	cell: .dword 7
	`)
}

func TestCSRAccess(t *testing.T) {
	expectA0(t, 0x123, `
		li t0, 0x123
		csrw mscratch, t0
		csrr a0, mscratch
		ebreak
	`)
}

func TestHartID(t *testing.T) {
	prog := rvasm.MustAssemble(0x1000, `
		csrr a0, mhartid
		ebreak
	`)
	fm := &flatMem{b: mem.NewBacking()}
	fm.b.WriteBytes(prog.Base, prog.Bytes)
	core := New(fm, 3, prog.Base, nil, "core3")
	eng := sim.NewEngine()
	sim.Go(eng, "hart3", func(p *sim.Process) { core.Run(p, 1000) })
	eng.Run()
	if core.HaltCode() != 3 {
		t.Fatalf("mhartid = %d, want 3", core.HaltCode())
	}
}

func TestEcallTrapAndMret(t *testing.T) {
	expectA0(t, 77, `
		la t0, handler
		csrw mtvec, t0
		li a0, 0
		ecall
		ebreak          # reached after mret with a0 = 77
	handler:
		li a0, 77
		csrr t1, mepc
		addi t1, t1, 4
		csrw mepc, t1
		mret
	`)
}

func TestIllegalInstructionTraps(t *testing.T) {
	core, _ := run(t, `
		la t0, handler
		csrw mtvec, t0
		.word 0xFFFFFFFF   # illegal
		ebreak
	handler:
		csrr a0, mcause
		ebreak
	`)
	if core.HaltCode() != 2 {
		t.Fatalf("mcause = %d, want 2 (illegal instruction)", core.HaltCode())
	}
}

func TestTrapWithoutHandlerHalts(t *testing.T) {
	core, _ := run(t, `
		.word 0xFFFFFFFF
	`)
	if core.HaltCode()&0xFFFF0000 != 0xdead0000 {
		t.Fatalf("halt code = %#x, want 0xdeadXXXX", core.HaltCode())
	}
}

func TestSoftwareInterrupt(t *testing.T) {
	// Raise MSIP from outside while the core spins; handler sets a flag.
	prog := rvasm.MustAssemble(0x1000, `
		la t0, handler
		csrw mtvec, t0
		li t0, 8        # MSIP enable
		csrw mie, t0
		li t0, 8        # mstatus.MIE
		csrs mstatus, t0
	spin:	j spin
	handler:
		li a0, 99
		ebreak
	`)
	fm := &flatMem{b: mem.NewBacking()}
	fm.b.WriteBytes(prog.Base, prog.Bytes)
	core := New(fm, 0, prog.Base, nil, "core0")
	eng := sim.NewEngine()
	sim.Go(eng, "hart0", func(p *sim.Process) { core.Run(p, 100_000) })
	eng.Schedule(200, func() { core.SetIRQ(0, true) })
	eng.Run()
	if !core.Halted() || core.HaltCode() != 99 {
		t.Fatalf("interrupt not taken: %s", core)
	}
}

func TestWFIBlocksUntilInterrupt(t *testing.T) {
	prog := rvasm.MustAssemble(0x1000, `
		li t0, 8
		csrw mie, t0    # enable MSIP but keep mstatus.MIE=0: WFI wakes,
		wfi             # no trap is taken
		li a0, 55
		ebreak
	`)
	fm := &flatMem{b: mem.NewBacking()}
	fm.b.WriteBytes(prog.Base, prog.Bytes)
	core := New(fm, 0, prog.Base, nil, "core0")
	eng := sim.NewEngine()
	var haltAt sim.Time
	sim.Go(eng, "hart0", func(p *sim.Process) {
		core.Run(p, 100_000)
		haltAt = p.Now()
	})
	eng.Schedule(500, func() { core.SetIRQ(0, true) })
	eng.Run()
	if !core.Halted() || core.HaltCode() != 55 {
		t.Fatalf("WFI path wrong: %s", core)
	}
	if haltAt < 500 {
		t.Fatalf("core halted at %d, before the interrupt at 500", haltAt)
	}
}

func TestMMIOStoreOrder(t *testing.T) {
	_, fm := runWith(t, `
		li t0, 0x40000000
		li t1, 72
		sd t1, 0(t0)
		li t1, 105
		sd t1, 0(t0)
		ebreak
	`, func(m *flatMem) { m.mmioAddr = 0x40000000 })
	if len(fm.mmioLog) != 2 || fm.mmioLog[0] != 72 || fm.mmioLog[1] != 105 {
		t.Fatalf("mmio log = %v", fm.mmioLog)
	}
}

func TestTimingChargesCycles(t *testing.T) {
	prog := rvasm.MustAssemble(0x1000, `
		li t0, 100
	loop:	addi t0, t0, -1
		bnez t0, loop
		ebreak
	`)
	fm := &flatMem{b: mem.NewBacking()}
	fm.b.WriteBytes(prog.Base, prog.Bytes)
	core := New(fm, 0, prog.Base, nil, "core0")
	eng := sim.NewEngine()
	sim.Go(eng, "hart0", func(p *sim.Process) { core.Run(p, 10_000) })
	end := eng.Run()
	// ~200 instructions, each 1 cycle, plus 2-cycle penalty per taken
	// branch (~100): at least 300 cycles, below 1000.
	if end < 300 || end > 1000 {
		t.Fatalf("loop took %d cycles for %d instructions", end, core.InstRet())
	}
}

func TestStringsAndData(t *testing.T) {
	_, fm := run(t, `
		j start
	msg:	.asciz "Hi"
		.align 2
	start:	la t0, msg
		lbu a0, 0(t0)
		ebreak
	`)
	_ = fm
}

func TestAssemblerErrors(t *testing.T) {
	cases := []string{
		"bogus a0, a1",
		"addi a0, a0",       // missing operand
		"lw a0, nope",       // bad memory operand
		"addi a0, a0, 5000", // immediate out of range
		"dup: nop\ndup: nop",
	}
	for _, src := range cases {
		if _, err := rvasm.Assemble(0x1000, src); err == nil {
			t.Errorf("assembling %q succeeded, want error", src)
		}
	}
}

func TestAssemblerForwardReferences(t *testing.T) {
	expectA0(t, 5, `
		la t0, data
		ld a0, 0(t0)
		ebreak
	.align 3
	data:	.dword 5
	`)
}
