// Package riscv implements a functional RV64IMA+Zicsr machine-mode core:
// the stand-in for the Ariane cores SMAPPIC instantiates in its tiles. The
// interpreter is exact at the architectural level (registers, CSRs, traps,
// atomics); timing comes from a simple in-order single-issue model matching
// Ariane's 6-stage pipeline (base CPI 1, multi-cycle mul/div, pipeline
// flush on taken control flow) plus whatever the memory system charges.
package riscv

import (
	"fmt"

	"smappic/internal/sim"
)

// Mem is the core's port into the memory system. Implementations charge
// simulated time on the calling process (the TRI + BPC path for cacheable
// addresses, the chipset MMIO path for device addresses) and move
// functional data.
type Mem interface {
	Fetch(p *sim.Process, addr uint64) uint32
	Load(p *sim.Process, addr uint64, size int) uint64
	Store(p *sim.Process, addr uint64, size int, v uint64)
	// Amo atomically applies f to the value at addr and returns the old
	// value. The callee guarantees exclusivity.
	Amo(p *sim.Process, addr uint64, size int, f func(old uint64) uint64) uint64
}

// Machine-mode CSR numbers (the subset a bare-metal OS needs).
const (
	csrMStatus  = 0x300
	csrMISA     = 0x301
	csrMIE      = 0x304
	csrMTVec    = 0x305
	csrMScratch = 0x340
	csrMEPC     = 0x341
	csrMCause   = 0x342
	csrMTVal    = 0x343
	csrMIP      = 0x344
	csrMCycle   = 0xB00
	csrMInstRet = 0xB02
	csrMHartID  = 0xF14
	csrTime     = 0xC01
)

// mip/mie bit positions.
const (
	bitMSI = 3
	bitMTI = 7
	bitMEI = 11
)

// mstatus bits.
const (
	mstatusMIE  = 1 << 3
	mstatusMPIE = 1 << 7
)

// Trap causes.
const (
	causeMisalignedFetch = 0
	causeIllegalInst     = 2
	causeBreakpoint      = 3
	causeECallM          = 11
	causeIntSoftware     = uint64(1)<<63 | 3
	causeIntTimer        = uint64(1)<<63 | 7
	causeIntExternal     = uint64(1)<<63 | 11
)

// Profile is a core timing model: the functional ISA is shared, the
// pipeline costs differ per integrated core (BYOC's core diversity).
type Profile struct {
	Name          string
	BaseCPI       sim.Time // cycles per simple instruction
	BranchPenalty sim.Time // extra cycles on taken control flow
	MulCycles     sim.Time // extra cycles per multiply
	DivCycles     sim.Time // extra cycles per divide
}

// Ariane is the 6-stage in-order application core (the default tile).
var Ariane = Profile{Name: "ariane", BaseCPI: 1, BranchPenalty: 2, MulCycles: 1, DivCycles: 10}

// PicoRV32 is the small multi-cycle microcontroller core BYOC also
// integrates: ~4 cycles per instruction, no speculation to flush, slow
// serial multiply/divide.
var PicoRV32 = Profile{Name: "picorv32", BaseCPI: 4, BranchPenalty: 0, MulCycles: 32, DivCycles: 32}

// Core is one hart.
type Core struct {
	mem     Mem
	hartID  int
	profile Profile

	X  [32]uint64
	PC uint64

	mstatus  uint64
	mie      uint64
	mip      uint64
	mtvec    uint64
	mepc     uint64
	mcause   uint64
	mtval    uint64
	mscratch uint64
	instret  uint64

	// LR/SC reservation.
	resValid bool
	resAddr  uint64

	halted   bool
	haltCode uint64
	wfi      bool
	wakeWFI  func()

	// Timing model.
	pendingCycles sim.Time
	stats         *sim.Stats
	name          string

	// nextPtr points at the in-flight instruction's fallthrough PC while
	// exec runs, so traps raised mid-instruction can redirect it.
	nextPtr *uint64
}

// New creates an Ariane-profile core with reset PC.
func New(mem Mem, hartID int, resetPC uint64, stats *sim.Stats, name string) *Core {
	return NewWithProfile(mem, hartID, resetPC, Ariane, stats, name)
}

// NewWithProfile creates a core with an explicit timing profile.
func NewWithProfile(mem Mem, hartID int, resetPC uint64, prof Profile, stats *sim.Stats, name string) *Core {
	return &Core{mem: mem, hartID: hartID, PC: resetPC, profile: prof, stats: stats, name: name}
}

// Profile returns the core's timing profile.
func (c *Core) Profile() Profile { return c.profile }

// HartID returns the hart index.
func (c *Core) HartID() int { return c.hartID }

// Halted reports whether the core stopped (EBREAK or double fault).
func (c *Core) Halted() bool { return c.halted }

// HaltCode returns the value of register a0 at the halting EBREAK, the
// convention our bare-metal programs use for exit status.
func (c *Core) HaltCode() uint64 { return c.haltCode }

// InstRet returns the number of retired instructions.
func (c *Core) InstRet() uint64 { return c.instret }

// SetIRQ drives one of the core's interrupt wires (from the interrupt
// depacketizer). kind: 0 software, 1 timer, 2 external.
func (c *Core) SetIRQ(kind int, level bool) {
	var bit uint
	switch kind {
	case 0:
		bit = bitMSI
	case 1:
		bit = bitMTI
	default:
		bit = bitMEI
	}
	if level {
		c.mip |= 1 << bit
	} else {
		c.mip &^= 1 << bit
	}
	if level && c.wfi && c.wakeWFI != nil {
		w := c.wakeWFI
		c.wakeWFI = nil
		c.wfi = false
		w()
	}
}

// Run executes instructions on the calling simulation process until the
// core halts or maxInstructions retire (0 = unlimited).
func (c *Core) Run(p *sim.Process, maxInstructions uint64) {
	for !c.halted {
		if maxInstructions > 0 && c.instret >= maxInstructions {
			return
		}
		c.Step(p)
	}
}

// flushTime charges accumulated pipeline cycles to the process. Timing is
// batched between memory operations to keep the event count low.
func (c *Core) flushTime(p *sim.Process) {
	if c.pendingCycles > 0 {
		p.Wait(c.pendingCycles)
		c.pendingCycles = 0
	}
}

// charge adds pipeline cycles, flushing in batches.
func (c *Core) charge(p *sim.Process, n sim.Time) {
	c.pendingCycles += n
	if c.pendingCycles >= 32 {
		c.flushTime(p)
	}
}

// pendingInterrupt returns the cause of the highest-priority enabled
// pending interrupt, or 0.
func (c *Core) pendingInterrupt() uint64 {
	if c.mstatus&mstatusMIE == 0 {
		return 0
	}
	pend := c.mip & c.mie
	switch {
	case pend&(1<<bitMEI) != 0:
		return causeIntExternal
	case pend&(1<<bitMSI) != 0:
		return causeIntSoftware
	case pend&(1<<bitMTI) != 0:
		return causeIntTimer
	}
	return 0
}

// trap enters machine trap handling.
func (c *Core) trap(cause, tval uint64) {
	if c.mtvec == 0 {
		// No handler installed: halt (keeps bare-metal tests honest).
		c.halted = true
		c.haltCode = 0xdead0000 | cause&0xFFFF
		return
	}
	c.mepc = c.PC
	c.mcause = cause
	c.mtval = tval
	// mstatus: MPIE <- MIE, MIE <- 0.
	if c.mstatus&mstatusMIE != 0 {
		c.mstatus |= mstatusMPIE
	} else {
		c.mstatus &^= mstatusMPIE
	}
	c.mstatus &^= mstatusMIE
	c.PC = c.mtvec &^ 3
	if c.nextPtr != nil {
		*c.nextPtr = c.PC
	}
}

// Step retires one instruction (or takes one trap).
func (c *Core) Step(p *sim.Process) {
	if c.halted {
		return
	}
	if cause := c.pendingInterrupt(); cause != 0 {
		c.flushTime(p)
		c.trap(cause, 0)
		return
	}
	if c.PC&1 != 0 {
		c.trap(causeMisalignedFetch, c.PC)
		return
	}
	c.flushTime(p)
	inst := c.mem.Fetch(p, c.PC)
	next := c.PC + 4
	c.nextPtr = &next
	c.exec(p, inst, &next)
	c.nextPtr = nil
	c.PC = next
	c.instret++
	c.charge(p, c.profile.BaseCPI)
}

func signExt(v uint64, bits uint) uint64 {
	shift := 64 - bits
	return uint64(int64(v<<shift) >> shift)
}

// exec decodes and executes one instruction. next holds the fallthrough PC
// and may be redirected by control flow.
func (c *Core) exec(p *sim.Process, inst uint32, next *uint64) {
	op := inst & 0x7F
	rd := int(inst >> 7 & 0x1F)
	rs1 := int(inst >> 15 & 0x1F)
	rs2 := int(inst >> 20 & 0x1F)
	f3 := inst >> 12 & 7
	f7 := inst >> 25

	setRD := func(v uint64) {
		if rd != 0 {
			c.X[rd] = v
		}
	}
	immI := signExt(uint64(inst>>20), 12)
	a := c.X[rs1]
	b := c.X[rs2]

	switch op {
	case 0x37: // LUI
		setRD(signExt(uint64(inst&0xFFFFF000), 32))
	case 0x17: // AUIPC
		setRD(c.PC + signExt(uint64(inst&0xFFFFF000), 32))
	case 0x6F: // JAL
		imm := signExt(uint64(inst>>31<<20|inst>>21&0x3FF<<1|inst>>20&1<<11|inst>>12&0xFF<<12), 21)
		setRD(c.PC + 4)
		*next = c.PC + imm
		c.pendingCycles += c.profile.BranchPenalty // pipeline flush
	case 0x67: // JALR
		t := (a + immI) &^ 1
		setRD(c.PC + 4)
		*next = t
		c.pendingCycles += c.profile.BranchPenalty
	case 0x63: // branches
		imm := signExt(uint64(inst>>31<<12|inst>>25&0x3F<<5|inst>>8&0xF<<1|inst>>7&1<<11), 13)
		var take bool
		switch f3 {
		case 0:
			take = a == b
		case 1:
			take = a != b
		case 4:
			take = int64(a) < int64(b)
		case 5:
			take = int64(a) >= int64(b)
		case 6:
			take = a < b
		case 7:
			take = a >= b
		default:
			c.trap(causeIllegalInst, uint64(inst))
			return
		}
		if take {
			*next = c.PC + imm
			c.pendingCycles += c.profile.BranchPenalty // mispredict/flush
		}
	case 0x03: // loads
		addr := a + immI
		c.flushTime(p)
		switch f3 {
		case 0:
			setRD(signExt(c.mem.Load(p, addr, 1), 8))
		case 1:
			setRD(signExt(c.mem.Load(p, addr, 2), 16))
		case 2:
			setRD(signExt(c.mem.Load(p, addr, 4), 32))
		case 3:
			setRD(c.mem.Load(p, addr, 8))
		case 4:
			setRD(c.mem.Load(p, addr, 1))
		case 5:
			setRD(c.mem.Load(p, addr, 2))
		case 6:
			setRD(c.mem.Load(p, addr, 4))
		default:
			c.trap(causeIllegalInst, uint64(inst))
		}
	case 0x23: // stores
		imm := signExt(uint64(inst>>25<<5|inst>>7&0x1F), 12)
		addr := a + imm
		c.flushTime(p)
		switch f3 {
		case 0:
			c.mem.Store(p, addr, 1, b)
		case 1:
			c.mem.Store(p, addr, 2, b)
		case 2:
			c.mem.Store(p, addr, 4, b)
		case 3:
			c.mem.Store(p, addr, 8, b)
		default:
			c.trap(causeIllegalInst, uint64(inst))
		}
		// A store conditional's reservation is cleared by any store.
		c.resValid = false
	case 0x13: // op-imm
		switch f3 {
		case 0:
			setRD(a + immI)
		case 2:
			if int64(a) < int64(immI) {
				setRD(1)
			} else {
				setRD(0)
			}
		case 3:
			if a < immI {
				setRD(1)
			} else {
				setRD(0)
			}
		case 4:
			setRD(a ^ immI)
		case 6:
			setRD(a | immI)
		case 7:
			setRD(a & immI)
		case 1:
			setRD(a << (inst >> 20 & 0x3F))
		case 5:
			sh := inst >> 20 & 0x3F
			if inst>>30&1 != 0 {
				setRD(uint64(int64(a) >> sh))
			} else {
				setRD(a >> sh)
			}
		}
	case 0x1B: // op-imm-32
		switch f3 {
		case 0:
			setRD(signExt(a+immI, 32))
		case 1:
			setRD(signExt(a<<(inst>>20&0x1F), 32))
		case 5:
			sh := inst >> 20 & 0x1F
			if inst>>30&1 != 0 {
				setRD(signExt(uint64(int32(a)>>sh), 32))
			} else {
				setRD(signExt(uint64(uint32(a)>>sh), 32))
			}
		default:
			c.trap(causeIllegalInst, uint64(inst))
		}
	case 0x33: // op
		if f7 == 1 {
			c.execM(p, f3, a, b, setRD, false)
			return
		}
		switch {
		case f3 == 0 && f7 == 0:
			setRD(a + b)
		case f3 == 0 && f7 == 0x20:
			setRD(a - b)
		case f3 == 1:
			setRD(a << (b & 0x3F))
		case f3 == 2:
			if int64(a) < int64(b) {
				setRD(1)
			} else {
				setRD(0)
			}
		case f3 == 3:
			if a < b {
				setRD(1)
			} else {
				setRD(0)
			}
		case f3 == 4:
			setRD(a ^ b)
		case f3 == 5 && f7 == 0:
			setRD(a >> (b & 0x3F))
		case f3 == 5 && f7 == 0x20:
			setRD(uint64(int64(a) >> (b & 0x3F)))
		case f3 == 6:
			setRD(a | b)
		case f3 == 7:
			setRD(a & b)
		default:
			c.trap(causeIllegalInst, uint64(inst))
		}
	case 0x3B: // op-32
		if f7 == 1 {
			c.execM(p, f3, a, b, setRD, true)
			return
		}
		switch {
		case f3 == 0 && f7 == 0:
			setRD(signExt(a+b, 32))
		case f3 == 0 && f7 == 0x20:
			setRD(signExt(a-b, 32))
		case f3 == 1:
			setRD(signExt(a<<(b&0x1F), 32))
		case f3 == 5 && f7 == 0:
			setRD(signExt(uint64(uint32(a)>>(b&0x1F)), 32))
		case f3 == 5 && f7 == 0x20:
			setRD(signExt(uint64(int32(a)>>(b&0x1F)), 32))
		default:
			c.trap(causeIllegalInst, uint64(inst))
		}
	case 0x0F: // FENCE / FENCE.I: ordering is implicit in the model
	case 0x2F: // AMO
		c.execA(p, inst, f3, a, b, setRD)
	case 0x73: // SYSTEM
		c.execSystem(p, inst, f3, rs1, a, setRD, next)
	default:
		c.trap(causeIllegalInst, uint64(inst))
	}
}

// execM handles the M extension. Division takes extra cycles, as on Ariane.
func (c *Core) execM(p *sim.Process, f3 uint32, a, b uint64, setRD func(uint64), w bool) {
	if w {
		a32, b32 := int32(a), int32(b)
		switch f3 {
		case 0:
			setRD(signExt(uint64(a32*b32), 32))
			c.pendingCycles += c.profile.MulCycles
		case 4:
			c.pendingCycles += c.profile.DivCycles
			if b32 == 0 {
				setRD(^uint64(0))
			} else if a32 == -1<<31 && b32 == -1 {
				setRD(signExt(uint64(uint32(a32)), 32))
			} else {
				setRD(signExt(uint64(uint32(a32/b32)), 32))
			}
		case 5:
			c.pendingCycles += c.profile.DivCycles
			if uint32(b) == 0 {
				setRD(^uint64(0))
			} else {
				setRD(signExt(uint64(uint32(a)/uint32(b)), 32))
			}
		case 6:
			c.pendingCycles += c.profile.DivCycles
			if b32 == 0 {
				setRD(signExt(uint64(uint32(a32)), 32))
			} else if a32 == -1<<31 && b32 == -1 {
				setRD(0)
			} else {
				setRD(signExt(uint64(uint32(a32%b32)), 32))
			}
		case 7:
			c.pendingCycles += c.profile.DivCycles
			if uint32(b) == 0 {
				setRD(signExt(uint64(uint32(a)), 32))
			} else {
				setRD(signExt(uint64(uint32(a)%uint32(b)), 32))
			}
		default:
			c.trap(causeIllegalInst, 0)
		}
		return
	}
	switch f3 {
	case 0:
		setRD(a * b)
		c.pendingCycles += c.profile.MulCycles
	case 1: // MULH
		setRD(mulh(int64(a), int64(b)))
		c.pendingCycles += c.profile.MulCycles
	case 2: // MULHSU
		setRD(mulhsu(int64(a), b))
		c.pendingCycles += c.profile.MulCycles
	case 3: // MULHU
		setRD(mulhu(a, b))
		c.pendingCycles += c.profile.MulCycles
	case 4:
		c.pendingCycles += c.profile.DivCycles
		if b == 0 {
			setRD(^uint64(0))
		} else if int64(a) == -1<<63 && int64(b) == -1 {
			setRD(a)
		} else {
			setRD(uint64(int64(a) / int64(b)))
		}
	case 5:
		c.pendingCycles += c.profile.DivCycles
		if b == 0 {
			setRD(^uint64(0))
		} else {
			setRD(a / b)
		}
	case 6:
		c.pendingCycles += c.profile.DivCycles
		if b == 0 {
			setRD(a)
		} else if int64(a) == -1<<63 && int64(b) == -1 {
			setRD(0)
		} else {
			setRD(uint64(int64(a) % int64(b)))
		}
	case 7:
		c.pendingCycles += c.profile.DivCycles
		if b == 0 {
			setRD(a)
		} else {
			setRD(a % b)
		}
	}
}

func mulhu(a, b uint64) uint64 {
	aLo, aHi := a&0xFFFFFFFF, a>>32
	bLo, bHi := b&0xFFFFFFFF, b>>32
	t := aLo*bLo>>32 + aHi*bLo
	lo, hi := t&0xFFFFFFFF, t>>32
	lo += aLo * bHi
	return aHi*bHi + hi + lo>>32
}

func mulh(a, b int64) uint64 {
	neg := (a < 0) != (b < 0)
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua = uint64(-a)
	}
	if b < 0 {
		ub = uint64(-b)
	}
	hi, lo := mulhu(ua, ub), ua*ub
	if neg {
		hi = ^hi
		if lo == 0 {
			hi++
		}
	}
	return hi
}

func mulhsu(a int64, b uint64) uint64 {
	if a >= 0 {
		return mulhu(uint64(a), b)
	}
	hi, lo := mulhu(uint64(-a), b), uint64(-a)*b
	hi = ^hi
	if lo == 0 {
		hi++
	}
	return hi
}

// execA handles the A extension (LR/SC and AMOs).
func (c *Core) execA(p *sim.Process, inst, f3 uint32, a, b uint64, setRD func(uint64)) {
	size := 4
	if f3 == 3 {
		size = 8
	} else if f3 != 2 {
		c.trap(causeIllegalInst, uint64(inst))
		return
	}
	sext := func(v uint64) uint64 {
		if size == 4 {
			return signExt(v, 32)
		}
		return v
	}
	c.flushTime(p)
	switch inst >> 27 {
	case 0x02: // LR
		v := c.mem.Load(p, a, size)
		c.resValid = true
		c.resAddr = a
		setRD(sext(v))
	case 0x03: // SC
		if c.resValid && c.resAddr == a {
			c.mem.Store(p, a, size, b)
			setRD(0)
		} else {
			setRD(1)
		}
		c.resValid = false
	case 0x01: // AMOSWAP
		setRD(sext(c.mem.Amo(p, a, size, func(uint64) uint64 { return b })))
	case 0x00: // AMOADD
		setRD(sext(c.mem.Amo(p, a, size, func(o uint64) uint64 { return o + b })))
	case 0x04: // AMOXOR
		setRD(sext(c.mem.Amo(p, a, size, func(o uint64) uint64 { return o ^ b })))
	case 0x0C: // AMOAND
		setRD(sext(c.mem.Amo(p, a, size, func(o uint64) uint64 { return o & b })))
	case 0x08: // AMOOR
		setRD(sext(c.mem.Amo(p, a, size, func(o uint64) uint64 { return o | b })))
	case 0x10: // AMOMIN
		setRD(sext(c.mem.Amo(p, a, size, func(o uint64) uint64 {
			if cmpSigned(o, b, size) <= 0 {
				return o
			}
			return b
		})))
	case 0x14: // AMOMAX
		setRD(sext(c.mem.Amo(p, a, size, func(o uint64) uint64 {
			if cmpSigned(o, b, size) >= 0 {
				return o
			}
			return b
		})))
	case 0x18: // AMOMINU
		setRD(sext(c.mem.Amo(p, a, size, func(o uint64) uint64 {
			if trunc(o, size) <= trunc(b, size) {
				return o
			}
			return b
		})))
	case 0x1C: // AMOMAXU
		setRD(sext(c.mem.Amo(p, a, size, func(o uint64) uint64 {
			if trunc(o, size) >= trunc(b, size) {
				return o
			}
			return b
		})))
	default:
		c.trap(causeIllegalInst, uint64(inst))
	}
}

func trunc(v uint64, size int) uint64 {
	if size == 4 {
		return v & 0xFFFFFFFF
	}
	return v
}

func cmpSigned(a, b uint64, size int) int {
	var x, y int64
	if size == 4 {
		x, y = int64(int32(a)), int64(int32(b))
	} else {
		x, y = int64(a), int64(b)
	}
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}

// execSystem handles ECALL/EBREAK/MRET/WFI and Zicsr.
func (c *Core) execSystem(p *sim.Process, inst uint32, f3 uint32, rs1 int, a uint64, setRD func(uint64), next *uint64) {
	if f3 == 0 {
		switch inst >> 20 {
		case 0: // ECALL: mepc records the ecall itself (c.PC is unchanged
			// while exec runs), and trap redirects next via nextPtr.
			c.trap(causeECallM, 0)
		case 1: // EBREAK: halt convention for bare-metal programs
			c.halted = true
			c.haltCode = c.X[10]
		case 0x302: // MRET
			*next = c.mepc
			if c.mstatus&mstatusMPIE != 0 {
				c.mstatus |= mstatusMIE
			} else {
				c.mstatus &^= mstatusMIE
			}
			c.mstatus |= mstatusMPIE
		case 0x105: // WFI: block until an interrupt wire rises
			if c.mip&c.mie == 0 {
				c.flushTime(p)
				c.wfi = true
				c.wakeWFI = p.Suspend()
				p.Park()
			}
		default:
			c.trap(causeIllegalInst, uint64(inst))
		}
		return
	}
	csr := inst >> 20
	var uimm uint64 = uint64(rs1)
	src := a
	if f3 >= 5 {
		src = uimm
	}
	old := c.readCSR(csr)
	switch f3 & 3 {
	case 1: // CSRRW
		c.writeCSR(csr, src)
	case 2: // CSRRS
		if rs1 != 0 {
			c.writeCSR(csr, old|src)
		}
	case 3: // CSRRC
		if rs1 != 0 {
			c.writeCSR(csr, old&^src)
		}
	}
	setRD(old)
}

func (c *Core) readCSR(csr uint32) uint64 {
	switch csr {
	case csrMStatus:
		return c.mstatus
	case csrMISA:
		return 2<<62 | 1<<8 | 1<<12 | 1<<0 // RV64IMA
	case csrMIE:
		return c.mie
	case csrMTVec:
		return c.mtvec
	case csrMScratch:
		return c.mscratch
	case csrMEPC:
		return c.mepc
	case csrMCause:
		return c.mcause
	case csrMTVal:
		return c.mtval
	case csrMIP:
		return c.mip
	case csrMCycle, csrTime:
		return c.instret // approximation: cycle counters read via CLINT mtime for real time
	case csrMInstRet:
		return c.instret
	case csrMHartID:
		return uint64(c.hartID)
	}
	return 0
}

func (c *Core) writeCSR(csr uint32, v uint64) {
	switch csr {
	case csrMStatus:
		c.mstatus = v & (mstatusMIE | mstatusMPIE)
	case csrMIE:
		c.mie = v
	case csrMTVec:
		c.mtvec = v
	case csrMScratch:
		c.mscratch = v
	case csrMEPC:
		c.mepc = v &^ 1
	case csrMCause:
		c.mcause = v
	case csrMTVal:
		c.mtval = v
	}
}

// String summarizes architectural state (debugging aid).
func (c *Core) String() string {
	return fmt.Sprintf("hart%d pc=%#x ra=%#x sp=%#x a0=%#x halted=%v",
		c.hartID, c.PC, c.X[1], c.X[2], c.X[10], c.halted)
}
