package riscv

import (
	"fmt"
	"testing"
	"testing/quick"

	"smappic/internal/mem"
	"smappic/internal/rvasm"
	"smappic/internal/sim"
)

// runProgram executes source and returns (haltCode, halted).
func runProgram(t *testing.T, source string) (uint64, bool) {
	t.Helper()
	prog, err := rvasm.Assemble(0x1000, source)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	fm := &flatMem{b: mem.NewBacking()}
	fm.b.WriteBytes(prog.Base, prog.Bytes)
	core := New(fm, 0, prog.Base, nil, "prop")
	eng := sim.NewEngine()
	sim.Go(eng, "hart", func(p *sim.Process) { core.Run(p, 500_000) })
	eng.Run()
	return core.HaltCode(), core.Halted()
}

// Property: (a + b) - b == a for arbitrary 64-bit values, through the
// interpreter's add/sub datapath.
func TestAddSubIdentity(t *testing.T) {
	f := func(a, b uint64) bool {
		src := fmt.Sprintf(`
			li t0, %d
			li t1, %d
			add t2, t0, t1
			sub a0, t2, t1
			ebreak
		`, int64(a), int64(b))
		got, halted := runProgram(t, src)
		return halted && got == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: divu*b + remu == a for b != 0 (the RISC-V division identity).
func TestDivRemIdentity(t *testing.T) {
	f := func(a, b uint64) bool {
		if b == 0 {
			b = 1
		}
		src := fmt.Sprintf(`
			li t0, %d
			li t1, %d
			divu t2, t0, t1
			remu t3, t0, t1
			mul  t4, t2, t1
			add  a0, t4, t3
			ebreak
		`, int64(a), int64(b))
		got, halted := runProgram(t, src)
		return halted && got == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: xor is its own inverse through the register file.
func TestXorInvolution(t *testing.T) {
	f := func(a, b uint64) bool {
		src := fmt.Sprintf(`
			li t0, %d
			li t1, %d
			xor t2, t0, t1
			xor a0, t2, t1
			ebreak
		`, int64(a), int64(b))
		got, halted := runProgram(t, src)
		return halted && got == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: a store followed by a load of every width returns the stored
// bytes (little-endian), for arbitrary values and in-page offsets.
func TestStoreLoadWidths(t *testing.T) {
	f := func(v uint64, off uint8) bool {
		o := uint64(off) &^ 7 // keep 8-byte alignment inside the buffer
		src := fmt.Sprintf(`
			la t0, buf
			li t1, %d
			sd t1, %d(t0)
			lbu t2, %d(t0)
			lhu t3, %d(t0)
			lwu t4, %d(t0)
			ld  t5, %d(t0)
			# checksum: bytes must embed in halves/words consistently
			andi t6, t3, 0xFF
			bne  t6, t2, fail
			sub  a0, t5, t1
			ebreak
		fail:	li a0, 1
			ebreak
			.align 3
		buf:	.space 264
		`, int64(v), o, o, o, o, o)
		got, halted := runProgram(t, src)
		return halted && got == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the interpreter never panics on arbitrary instruction words —
// they either execute or trap to the installed handler, which skips them.
func TestDecodeTotality(t *testing.T) {
	f := func(w1, w2, w3 uint32) bool {
		src := fmt.Sprintf(`
			la t0, handler
			csrw mtvec, t0
			j body
		handler:
			csrr t1, mepc
			addi t1, t1, 4
			csrw mepc, t1
			mret
		body:
			.word %d
			.word %d
			.word %d
			li a0, 123
			ebreak
		`, w1, w2, w3)
		prog, err := rvasm.Assemble(0x1000, src)
		if err != nil {
			return false
		}
		fm := &flatMem{b: mem.NewBacking()}
		fm.b.WriteBytes(prog.Base, prog.Bytes)
		core := New(fm, 0, prog.Base, nil, "fuzz")
		eng := sim.NewEngine()
		sim.Go(eng, "hart", func(p *sim.Process) {
			defer func() {
				// Random words may jump into the weeds; any panic other
				// than from the engine contract is a bug, but wild stores
				// over the program are legal chaos — tolerate only
				// alignment panics from the backing store.
				recover()
			}()
			core.Run(p, 10_000)
		})
		eng.Run()
		return true // reaching here without a test-crashing panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: mulhu agrees with 128-bit multiplication via math/bits
// semantics (checked against Go's compiler on the host).
func TestMulhuMatchesWideMultiply(t *testing.T) {
	f := func(a, b uint64) bool {
		want := mulhu(a, b)
		// Independent wide multiply: split into 32-bit halves.
		aH, aL := a>>32, a&0xFFFFFFFF
		bH, bL := b>>32, b&0xFFFFFFFF
		mid1 := aL*bH + (aL*bL)>>32
		mid2 := aH * bL
		carry := ((mid1 & 0xFFFFFFFF) + (mid2 & 0xFFFFFFFF)) >> 32
		ref := aH*bH + mid1>>32 + mid2>>32 + carry
		return want == ref
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: signed mulh relates to mulhu by the standard correction.
func TestMulhSignCorrection(t *testing.T) {
	f := func(a, b int64) bool {
		got := mulh(a, b)
		corr := mulhu(uint64(a), uint64(b))
		if a < 0 {
			corr -= uint64(b)
		}
		if b < 0 {
			corr -= uint64(a)
		}
		return got == corr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
