// Package shell models the AWS F1 Hard Shell (HS): the fixed partition of
// each F1 FPGA that converts the host/peer PCIe connection into the AXI4 and
// AXI-Lite interfaces Custom Logic (CL) sees (paper Fig. 2).
//
// The shell owns one PCIe endpoint. Traffic arriving over PCIe is converted
// to AXI4 and forwarded to the CL's inbound port, except for the AXI-Lite
// aperture, which the shell decodes itself onto up to three register taps
// (used in SMAPPIC for the UART tunnel and management). Outbound AXI4 from
// the CL is converted to PCIe transfers routed by address.
package shell

import (
	"fmt"

	"smappic/internal/axi"
	"smappic/internal/pcie"
	"smappic/internal/sim"
)

// NumLiteTaps is the number of AXI-Lite interfaces the F1 shell provides.
const NumLiteTaps = 3

// LiteTapBase is the offset of the AXI-Lite aperture inside an FPGA's PCIe
// window; tap i occupies [LiteTapBase + i*LiteTapSize, +LiteTapSize).
const (
	LiteTapBase axi.Addr = 1 << 39
	LiteTapSize uint64   = 1 << 24
)

// ConversionDelay is the PCIe<->AXI4 conversion latency inside the shell,
// in cycles. One conversion on each side of each crossing brings the
// measured fabric RTT to the paper's ~125 cycles.
const ConversionDelay sim.Time = 1

// Shell is one FPGA's hard shell.
type Shell struct {
	eng    *sim.Engine
	id     int
	fabric *pcie.Fabric
	cl     axi.Target
	lite   [NumLiteTaps]axi.LiteTarget
	stats  *sim.Stats

	cErrors *sim.Counter // outbound responses with OK:false crossing the CL

	outb   outbound       // the one outbound master, handed out by Outbound
	outOps []*outOp       // free list of outbound conversion records
	inFwd  *axi.Forwarder // inbound PCIe->AXI4 conversion toward the CL
}

// New creates the shell for FPGA id and attaches it to the fabric.
func New(eng *sim.Engine, fabric *pcie.Fabric, id int, stats *sim.Stats) *Shell {
	s := &Shell{eng: eng, id: id, fabric: fabric, stats: stats}
	if stats != nil {
		s.cErrors = stats.Counter(fmt.Sprintf("fpga%d.shell.axi_errors", id))
	}
	s.outb.s = s
	s.inFwd = axi.NewForwarder(eng)
	fabric.Attach(id, (*inbound)(s))
	return s
}

// ID returns the FPGA index of this shell.
func (s *Shell) ID() int { return s.id }

// SetCustomLogic registers the CL's inbound AXI4 port.
func (s *Shell) SetCustomLogic(t axi.Target) { s.cl = t }

// RegisterLite installs a register file behind AXI-Lite tap i.
func (s *Shell) RegisterLite(i int, t axi.LiteTarget) {
	if i < 0 || i >= NumLiteTaps {
		panic(fmt.Sprintf("shell: lite tap %d out of range", i))
	}
	s.lite[i] = t
}

// LiteAddr returns the global PCIe address of register reg behind tap i of
// this FPGA, as a host program would compute it from the BAR mapping.
func (s *Shell) LiteAddr(tap int, reg axi.Addr) axi.Addr {
	base, _ := s.fabric.Window(s.id)
	return base + LiteTapBase + axi.Addr(uint64(tap)*LiteTapSize) + reg
}

// WindowAddr returns the global PCIe address corresponding to local offset
// off inside this FPGA's window.
func (s *Shell) WindowAddr(off axi.Addr) axi.Addr {
	base, _ := s.fabric.Window(s.id)
	return base + off
}

// Outbound returns the CL's outbound AXI4 master: requests are converted to
// PCIe and routed by address (to peer FPGAs or the host).
func (s *Shell) Outbound() axi.Target { return &s.outb }

type outbound struct{ s *Shell }

// outOp is one pooled outbound conversion: AXI4 in from the CL, PCIe issue
// after the conversion delay, and the response converted back. Its stage
// callbacks are built once when the record is created, so a steady-state
// transaction allocates nothing in the shell.
type outOp struct {
	s     *Shell
	wreq  *axi.WriteReq
	wdone func(*axi.WriteResp)
	wresp *axi.WriteResp
	rreq  *axi.ReadReq
	rdone func(*axi.ReadResp)
	rresp *axi.ReadResp

	issueFn  func() // stage 1: issue on the PCIe master
	finishFn func() // stage 2: deliver the converted response
	wRespFn  func(*axi.WriteResp)
	rRespFn  func(*axi.ReadResp)
}

func newOutOp(s *Shell) *outOp {
	o := &outOp{s: s}
	o.issueFn = func() {
		if o.wreq != nil {
			s.fabric.Master(s.id).Write(o.wreq, o.wRespFn)
		} else {
			s.fabric.Master(s.id).Read(o.rreq, o.rRespFn)
		}
	}
	o.wRespFn = func(r *axi.WriteResp) {
		if !r.OK {
			s.cErrors.Inc()
		}
		o.wresp = r
		s.eng.Schedule(ConversionDelay, o.finishFn)
	}
	o.rRespFn = func(r *axi.ReadResp) {
		if !r.OK {
			s.cErrors.Inc()
		}
		o.rresp = r
		s.eng.Schedule(ConversionDelay, o.finishFn)
	}
	o.finishFn = func() {
		wdone, wresp, rdone, rresp := o.wdone, o.wresp, o.rdone, o.rresp
		// Recycle before delivering: the completion may issue the next
		// outbound transfer synchronously.
		o.wreq, o.wdone, o.wresp = nil, nil, nil
		o.rreq, o.rdone, o.rresp = nil, nil, nil
		s.outOps = append(s.outOps, o)
		if wdone != nil {
			wdone(wresp)
		} else {
			rdone(rresp)
		}
	}
	return o
}

func (s *Shell) getOutOp() *outOp {
	if n := len(s.outOps); n > 0 {
		o := s.outOps[n-1]
		s.outOps = s.outOps[:n-1]
		return o
	}
	return newOutOp(s)
}

func (o *outbound) Write(req *axi.WriteReq, done func(*axi.WriteResp)) {
	op := o.s.getOutOp()
	op.wreq, op.wdone = req, done
	o.s.eng.Schedule(ConversionDelay, op.issueFn)
}

func (o *outbound) Read(req *axi.ReadReq, done func(*axi.ReadResp)) {
	op := o.s.getOutOp()
	op.rreq, op.rdone = req, done
	o.s.eng.Schedule(ConversionDelay, op.issueFn)
}

// inbound is the shell's PCIe-facing target (what the fabric delivers to).
type inbound Shell

func (in *inbound) isLite(addr axi.Addr) (tap int, reg axi.Addr, ok bool) {
	if addr < LiteTapBase {
		return 0, 0, false
	}
	off := uint64(addr - LiteTapBase)
	tap = int(off / LiteTapSize)
	if tap >= NumLiteTaps {
		return 0, 0, false
	}
	return tap, axi.Addr(off % LiteTapSize), true
}

func (in *inbound) Write(req *axi.WriteReq, done func(*axi.WriteResp)) {
	s := (*Shell)(in)
	if tap, reg, ok := in.isLite(req.Addr); ok {
		s.eng.Schedule(ConversionDelay, func() {
			t := s.lite[tap]
			if t == nil || len(req.Data) < 4 {
				done(&axi.WriteResp{ID: req.ID, OK: false})
				return
			}
			v := uint32(req.Data[0]) | uint32(req.Data[1])<<8 | uint32(req.Data[2])<<16 | uint32(req.Data[3])<<24
			t.WriteReg(reg, v)
			done(&axi.WriteResp{ID: req.ID, OK: true})
		})
		return
	}
	if s.cl == nil {
		done(&axi.WriteResp{ID: req.ID, OK: false})
		return
	}
	s.inFwd.Write(ConversionDelay, s.cl, req, done)
}

func (in *inbound) Read(req *axi.ReadReq, done func(*axi.ReadResp)) {
	s := (*Shell)(in)
	if tap, reg, ok := in.isLite(req.Addr); ok {
		s.eng.Schedule(ConversionDelay, func() {
			t := s.lite[tap]
			if t == nil {
				done(&axi.ReadResp{ID: req.ID, OK: false})
				return
			}
			v := t.ReadReg(reg)
			done(&axi.ReadResp{
				ID:   req.ID,
				Data: []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)},
				OK:   true,
			})
		})
		return
	}
	if s.cl == nil {
		done(&axi.ReadResp{ID: req.ID, OK: false})
		return
	}
	s.inFwd.Read(ConversionDelay, s.cl, req, done)
}
