package shell

import (
	"testing"

	"smappic/internal/axi"
	"smappic/internal/pcie"
	"smappic/internal/sim"
)

type clStub struct {
	writes []axi.WriteReq
	reads  []axi.ReadReq
}

func (c *clStub) Write(req *axi.WriteReq, done func(*axi.WriteResp)) {
	c.writes = append(c.writes, *req)
	done(&axi.WriteResp{ID: req.ID, OK: true})
}

func (c *clStub) Read(req *axi.ReadReq, done func(*axi.ReadResp)) {
	c.reads = append(c.reads, *req)
	done(&axi.ReadResp{ID: req.ID, Data: make([]byte, req.Len), OK: true})
}

type liteRegs struct{ regs map[axi.Addr]uint32 }

func (l *liteRegs) ReadReg(a axi.Addr) uint32     { return l.regs[a] }
func (l *liteRegs) WriteReg(a axi.Addr, v uint32) { l.regs[a] = v }

func setup() (*sim.Engine, *pcie.Fabric, *Shell, *Shell) {
	eng := sim.NewEngine()
	fab := pcie.New(eng, pcie.DefaultParams(), nil)
	s0 := New(eng, fab, 0, nil)
	s1 := New(eng, fab, 1, nil)
	return eng, fab, s0, s1
}

func TestOutboundRoutesToPeerCL(t *testing.T) {
	eng, _, s0, s1 := setup()
	cl1 := &clStub{}
	s1.SetCustomLogic(cl1)

	var resp *axi.WriteResp
	s0.Outbound().Write(&axi.WriteReq{Addr: s1.WindowAddr(0x123), Data: []byte{1}},
		func(r *axi.WriteResp) { resp = r })
	eng.Run()
	if resp == nil || !resp.OK {
		t.Fatal("outbound write failed")
	}
	if len(cl1.writes) != 1 || cl1.writes[0].Addr != 0x123 {
		t.Fatalf("peer CL saw %+v", cl1.writes)
	}
}

func TestInterFPGAAXIReadRTTMatchesPaper(t *testing.T) {
	eng, _, s0, s1 := setup()
	s1.SetCustomLogic(&clStub{})

	var done sim.Time
	s0.Outbound().Read(&axi.ReadReq{Addr: s1.WindowAddr(0), Len: 24},
		func(r *axi.ReadResp) { done = eng.Now() })
	eng.Run()
	// Paper: inter-FPGA round trip over PCIe ~1250ns = ~125 cycles @100MHz.
	if done < 120 || done > 130 {
		t.Fatalf("inter-FPGA AXI RTT = %d cycles, want ~125", done)
	}
}

func TestLiteTapDecodedByShell(t *testing.T) {
	eng, fab, s0, _ := setup()
	regs := &liteRegs{regs: map[axi.Addr]uint32{}}
	s0.RegisterLite(1, regs)
	cl := &clStub{}
	s0.SetCustomLogic(cl)

	host := fab.Master(pcie.HostID)
	var wr *axi.WriteResp
	host.Write(&axi.WriteReq{Addr: s0.LiteAddr(1, 0x10), Data: []byte{0xEF, 0xBE, 0xAD, 0xDE}},
		func(r *axi.WriteResp) { wr = r })
	eng.Run()
	if wr == nil || !wr.OK {
		t.Fatal("lite write failed")
	}
	if regs.regs[0x10] != 0xDEADBEEF {
		t.Fatalf("reg = %#x, want 0xDEADBEEF", regs.regs[0x10])
	}
	if len(cl.writes) != 0 {
		t.Error("lite write leaked into CL")
	}

	var rr *axi.ReadResp
	host.Read(&axi.ReadReq{Addr: s0.LiteAddr(1, 0x10), Len: 4}, func(r *axi.ReadResp) { rr = r })
	eng.Run()
	if rr == nil || !rr.OK || len(rr.Data) != 4 {
		t.Fatal("lite read failed")
	}
	got := uint32(rr.Data[0]) | uint32(rr.Data[1])<<8 | uint32(rr.Data[2])<<16 | uint32(rr.Data[3])<<24
	if got != 0xDEADBEEF {
		t.Fatalf("lite read = %#x", got)
	}
}

func TestUnregisteredLiteTapFails(t *testing.T) {
	eng, fab, s0, _ := setup()
	var rr *axi.ReadResp
	fab.Master(pcie.HostID).Read(&axi.ReadReq{Addr: s0.LiteAddr(2, 0), Len: 4},
		func(r *axi.ReadResp) { rr = r })
	eng.Run()
	if rr == nil || rr.OK {
		t.Fatal("read from unregistered tap should fail")
	}
}

func TestNoCustomLogicFails(t *testing.T) {
	eng, _, s0, s1 := setup()
	var wr *axi.WriteResp
	s0.Outbound().Write(&axi.WriteReq{Addr: s1.WindowAddr(0), Data: []byte{1}},
		func(r *axi.WriteResp) { wr = r })
	eng.Run()
	if wr == nil || wr.OK {
		t.Fatal("write to FPGA without CL should fail")
	}
}

func TestLiteTapRangePanics(t *testing.T) {
	_, _, s0, _ := setup()
	defer func() {
		if recover() == nil {
			t.Error("RegisterLite(3) did not panic")
		}
	}()
	s0.RegisterLite(3, &liteRegs{})
}

func TestHostReachesCLDMAWindow(t *testing.T) {
	eng, fab, s0, _ := setup()
	cl := &clStub{}
	s0.SetCustomLogic(cl)
	var wr *axi.WriteResp
	fab.Master(pcie.HostID).Write(&axi.WriteReq{Addr: s0.WindowAddr(0x8000), Data: make([]byte, 64)},
		func(r *axi.WriteResp) { wr = r })
	eng.Run()
	if wr == nil || !wr.OK {
		t.Fatal("host DMA write failed")
	}
	if len(cl.writes) != 1 || cl.writes[0].Addr != 0x8000 {
		t.Fatalf("CL saw %+v", cl.writes)
	}
}
