// Package ckpt defines the snapshot format for deterministic
// checkpoint/restore of SMAPPIC prototypes.
//
// A snapshot file is a small binary envelope around one JSON payload:
//
//	magic "SMCK" | version uint32 LE | kind byte | payload len uint64 LE |
//	payload (JSON) | SHA-256 over everything prior
//
// The trailing digest makes truncation and corruption detectable before any
// field is interpreted; the version gate refuses payloads this build cannot
// decode. All map-shaped state is serialized as sorted arrays so equal
// simulation states produce byte-identical snapshots.
//
// Two snapshot kinds exist (see DESIGN.md "Snapshot format"):
//
//   - KindReplay records a cursor (events executed when serial, windows
//     stepped when sharded) plus the engine clock. Restore rebuilds the same
//     run and re-executes deterministically to the cursor — byte-identical
//     by construction in every mode, including under fault plans, at the
//     cost of re-simulating the prefix.
//   - KindState records the full device state at a quiescent workload
//     safepoint (event queue drained, every thread parked or exited at a
//     barrier cut). Restore rebuilds the prototype, overlays the state and
//     resumes the workload threads at their recorded times — the simulated
//     prefix is genuinely skipped, which is what campaign crash-resume and
//     warm-start forking need.
//
// The package owns only the format: the capture and restore logic lives
// with the subsystems (cache, noc, pcie, bridge, mem, fault, kernel,
// workload) and is assembled by core.Prototype.Checkpoint/RestorePrototype.
package ckpt

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// Version is the snapshot format version this build reads and writes.
const Version = 1

// magic identifies a SMAPPIC snapshot file.
var magic = [4]byte{'S', 'M', 'C', 'K'}

// Kind selects the restore strategy a snapshot encodes.
type Kind uint8

const (
	// KindReplay is a replay cursor: restore re-executes to the cursor.
	KindReplay Kind = 1
	// KindState is a full quiescent-state capture: restore overlays state.
	KindState Kind = 2
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case KindReplay:
		return "replay"
	case KindState:
		return "state"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// CorruptError reports a snapshot whose envelope or digest is damaged.
type CorruptError struct{ Reason string }

func (e *CorruptError) Error() string { return "ckpt: corrupt snapshot: " + e.Reason }

// TruncatedError reports a snapshot shorter than its envelope promises.
type TruncatedError struct{ Want, Got int64 }

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("ckpt: truncated snapshot: want %d bytes, got %d", e.Want, e.Got)
}

// VersionError reports a snapshot written by an incompatible format version.
type VersionError struct{ Got, Want uint32 }

func (e *VersionError) Error() string {
	return fmt.Sprintf("ckpt: snapshot format version %d; this build reads version %d", e.Got, e.Want)
}

// MismatchError reports a snapshot that is well-formed but does not belong
// to the configuration (or program, or workload) it is being restored into.
type MismatchError struct{ Field, Got, Want string }

func (e *MismatchError) Error() string {
	return fmt.Sprintf("ckpt: snapshot %s mismatch: snapshot has %q, restore target has %q", e.Field, e.Got, e.Want)
}

// IsSnapshotError reports whether err is (or wraps) any of this package's
// typed snapshot errors — the "this snapshot is unusable" class a caller
// handles by discarding the snapshot and starting cold.
func IsSnapshotError(err error) bool {
	var ce *CorruptError
	var te *TruncatedError
	var ve *VersionError
	var me *MismatchError
	return errors.As(err, &ce) || errors.As(err, &te) || errors.As(err, &ve) || errors.As(err, &me)
}

// Snapshot is the decoded payload of a snapshot file.
type Snapshot struct {
	Kind Kind `json:"kind"`

	// ConfigHash fingerprints the full core.Config the snapshot was taken
	// under; restore refuses a different configuration. PrefixHash, set on
	// warm-start prefix snapshots, fingerprints only the boot-relevant
	// parameter subset, letting sweep points that differ in fork-time
	// parameters (faults, credits, latencies) share one prefix.
	ConfigHash string `json:"config_hash"`
	PrefixHash string `json:"prefix_hash,omitempty"`

	// Workload tags what was running (a program hash for bare-metal runs, a
	// workload label for kernel runs); restore refuses a different tag.
	Workload string `json:"workload,omitempty"`

	// Now is the engine clock at capture (the drain time for state
	// snapshots); informational for state snapshots, verified on replay.
	Now uint64 `json:"now"`

	Replay *Replay `json:"replay,omitempty"`
	State  *State  `json:"state,omitempty"`
}

// Replay is the cursor of a KindReplay snapshot.
type Replay struct {
	// Executed is the serial engine's executed-event count at capture.
	Executed uint64 `json:"executed,omitempty"`
	// Windows is the sharded group's completed-window count at capture
	// (used instead of Executed when Parallel > 1).
	Windows uint64 `json:"windows,omitempty"`
	// Parallel records the shard count the cursor was taken under.
	Parallel int `json:"parallel,omitempty"`
	// Adaptive records the effective adaptive-lookahead cap of a sharded
	// run: window counts are only comparable between runs widening their
	// windows under the same cap, so restore rejects a different one.
	// Zero in serial cursors and in snapshots predating the field.
	Adaptive int `json:"adaptive,omitempty"`
	// WindowDigest fingerprints the sharded run's window sequence (each
	// window's start time and realized width, FNV-1a folded; hierarchical
	// runs fold every cluster's inner-window sequence in too). Replay
	// verifies it after reaching the cursor, proving the restore re-ran the
	// identical windows rather than merely the same number of them. Never
	// zero when written (the digest starts at the FNV offset basis); zero
	// means a serial cursor or an older snapshot, and is not checked.
	WindowDigest uint64 `json:"window_digest,omitempty"`
	// Granularity records the shard granularity ("fpga" or "node") of a
	// sharded cursor: window counts and digests are granularity-specific,
	// so restore refuses a cursor taken at the other granularity. Empty in
	// serial cursors and in snapshots predating the field (which are all
	// per-FPGA).
	Granularity string `json:"granularity,omitempty"`
}

// State is the full quiescent-state section of a KindState snapshot. Every
// subsystem contributes one entry; core assembles and applies them in a
// fixed order. Transient structures (MSHRs, directory queues, bridge send
// queues, PCIe exchange pools, in-flight memory ops) are provably empty at
// a quiescent safepoint and are deliberately absent — see DESIGN.md.
type State struct {
	Mem      MemState       `json:"mem"`
	Nodes    []NodeState    `json:"nodes"`
	PCIe     PCIeState      `json:"pcie"`
	Fault    *FaultState    `json:"fault,omitempty"`
	Stats    []StatsState   `json:"stats"` // one per shard registry
	Kernel   *KernelState   `json:"kernel,omitempty"`
	Workload *WorkloadState `json:"workload,omitempty"`
}

// MemState is the backing store: every materialized page, sorted by number.
type MemState struct {
	PageBytes int       `json:"page_bytes"`
	Pages     []MemPage `json:"pages"`
}

// MemPage is one backing page. Data is raw page contents (base64 in JSON).
type MemPage struct {
	Page uint64 `json:"page"`
	Data []byte `json:"data"`
}

// NodeState is one node's device state.
type NodeState struct {
	Node   int         `json:"node"`
	DRAM   DRAMState   `json:"dram"`
	MemCtl MemCtlState `json:"memctl"`
	NoC    NoCState    `json:"noc"`
	Bridge BridgeState `json:"bridge"`
	Tiles  []TileState `json:"tiles"`
}

// DRAMState is a DRAM channel's timing state.
type DRAMState struct {
	Busy uint64 `json:"busy"`
}

// MemCtlState is a memory controller's monotonic state.
type MemCtlState struct {
	NextID uint64 `json:"next_id"`
}

// NoCState is a mesh's link/router timing state.
type NoCState struct {
	NextFree  [][]uint64 `json:"next_free"`
	LinkFlits [][]uint64 `json:"link_flits"`
	LinkBusy  [][]uint64 `json:"link_busy"`
}

// BridgeState is an inter-node bridge's credit bookkeeping, keyed by
// destination node (sorted), plus the outbound shaper's bandwidth clock
// when the link is shaped.
type BridgeState struct {
	Dsts       []BridgeDstState `json:"dsts"`
	ShaperBusy uint64           `json:"shaper_busy,omitempty"`
}

// BridgeDstState is the per-destination credit state of one bridge.
type BridgeDstState struct {
	Dst        int    `json:"dst"`
	Credits    int    `json:"credits"`
	Returned   uint64 `json:"returned"`
	Freed      uint64 `json:"freed"`
	FreedTotal uint64 `json:"freed_total"`
	CrFails    int    `json:"cr_fails"`
	Wedged     bool   `json:"wedged,omitempty"`
}

// TileState is one tile's cache state.
type TileState struct {
	Tile int           `json:"tile"`
	L1I  SetAssocState `json:"l1i"`
	L1D  SetAssocState `json:"l1d"`
	BPC  SetAssocState `json:"bpc"`
	LLC  SetAssocState `json:"llc"`
	Dir  []DirEntry    `json:"dir"`
	// NextTag is the LLC slice's monotonic transaction-tag counter.
	NextTag uint64 `json:"next_tag"`
}

// SetAssocState is a set-associative array: all ways of all sets plus the
// LRU tick.
type SetAssocState struct {
	Tick uint64       `json:"tick"`
	Sets [][]WayState `json:"sets"`
}

// WayState is one cache way.
type WayState struct {
	Line  uint64 `json:"line"`
	State uint8  `json:"state"`
	Dirty bool   `json:"dirty,omitempty"`
	LRU   uint64 `json:"lru"`
}

// DirEntry is one LLC directory entry, with sharers in sorted GID order.
type DirEntry struct {
	Line    uint64     `json:"line"`
	State   uint8      `json:"state"`
	Owner   GIDState   `json:"owner"`
	Sharers []GIDState `json:"sharers,omitempty"`
}

// GIDState is a cache.GID in serializable form.
type GIDState struct {
	Node int `json:"node"`
	Tile int `json:"tile"`
}

// PCIeState is the fabric's reliable-transport state: per-endpoint egress
// clocks and the per-(src,dst) send sequence numbers. The replay cache's
// dedup entries are reception history — at quiescence every sequence below
// NextSeq has been delivered and acknowledged, so NextSeq alone is the
// protocol state.
type PCIeState struct {
	Endpoints []PCIeEndpointState `json:"endpoints"`
	Seqs      []PCIeSeqState      `json:"seqs"`
}

// PCIeEndpointState is one endpoint's egress serialization clock.
type PCIeEndpointState struct {
	ID     int    `json:"id"`
	Egress uint64 `json:"egress"`
}

// PCIeSeqState is one ordered (src,dst) reliable-channel sequence counter.
// Src/Dst use the fabric's internal indexing (0 = host, 1+fpga = endpoint).
type PCIeSeqState struct {
	Src     int    `json:"src"`
	Dst     int    `json:"dst"`
	NextSeq uint64 `json:"next_seq"`
}

// FaultState is the injector's deterministic progress: per-site RNG streams
// and per-rule fire counts, sorted by site name.
type FaultState struct {
	Sites []FaultSiteState `json:"sites"`
}

// FaultSiteState is one site's state.
type FaultSiteState struct {
	Name       string           `json:"name"`
	RNG        uint64           `json:"rng"`
	Hung       bool             `json:"hung,omitempty"`
	StallUntil uint64           `json:"stall_until,omitempty"`
	Rules      []FaultRuleState `json:"rules"`
}

// FaultRuleState is one rule's counters on one site.
type FaultRuleState struct {
	Seen  uint64 `json:"seen"`
	Fired uint64 `json:"fired"`
}

// StatsState is a full-fidelity dump of one stats registry (unlike
// sim.Stats.Snapshot it preserves histogram bins and gauge high-water
// marks, so a restored registry renders byte-identical reports).
type StatsState struct {
	Counters []CounterState `json:"counters"`
	Gauges   []GaugeState   `json:"gauges"`
	Hists    []HistState    `json:"hists"`
}

// CounterState is one counter.
type CounterState struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeState is one gauge with its high-water mark.
type GaugeState struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	High  int64  `json:"high"`
}

// HistState is one histogram including its bins.
type HistState struct {
	Name    string   `json:"name"`
	Samples uint64   `json:"samples"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Bins    []uint64 `json:"bins"`
}

// KernelState is the mini-OS state: page tables and per-thread context.
type KernelState struct {
	NextVA  uint64            `json:"next_va"`
	Pages   []KernelPageState `json:"pages"`
	Threads []ThreadState     `json:"threads"`
	// BarrierReleased is the futex barrier's released-round watermark.
	BarrierReleased uint64 `json:"barrier_released"`
}

// KernelPageState is one installed page-table entry.
type KernelPageState struct {
	VPage uint64 `json:"vpage"`
	Phys  uint64 `json:"phys"`
	Node  int    `json:"node"`
}

// ThreadState is one kernel thread's context, captured at a barrier cut.
type ThreadState struct {
	ID         int               `json:"id"`
	Hart       int               `json:"hart"`
	RNG        uint64            `json:"rng"`
	NextMigr   uint64            `json:"next_migr"`
	Migrations int               `json:"migrations"`
	BarEpoch   uint64            `json:"bar_epoch"`
	TLB        []KernelPageState `json:"tlb"`
}

// WorkloadState is the workload's resume cursor. Resume order is the order
// threads exited the cut barrier (the canonical wake order); restoring
// wakes them in exactly this order at their recorded times, which
// reproduces the uninterrupted run's event interleaving bit for bit.
type WorkloadState struct {
	Name   string        `json:"name"`
	Phase  int           `json:"phase"` // barriers completed; resume at phase Phase+1
	Start  uint64        `json:"start"` // workload start time (cycle measurement base)
	Resume []ResumePoint `json:"resume"`
}

// ResumePoint is one thread's resume record, in barrier exit order.
type ResumePoint struct {
	Thread   int    `json:"thread"`
	ResumeAt uint64 `json:"resume_at"`
}

// Write encodes the snapshot into the envelope format.
func (s *Snapshot) Write(w io.Writer) error {
	payload, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("ckpt: encoding snapshot: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(magic[:])
	var hdr [13]byte
	binary.LittleEndian.PutUint32(hdr[0:4], Version)
	hdr[4] = byte(s.Kind)
	binary.LittleEndian.PutUint64(hdr[5:13], uint64(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	_, err = w.Write(buf.Bytes())
	return err
}

// WriteFile writes the snapshot atomically (temp file + rename), so a crash
// mid-write can never leave a half-written snapshot under the final name.
func (s *Snapshot) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = s.Write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Read decodes and verifies a snapshot: magic, version, length, digest.
// Every failure mode returns a typed error (CorruptError, TruncatedError,
// VersionError); Read never panics on hostile input.
func Read(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading snapshot: %w", err)
	}
	if len(data) < len(magic)+13+sha256.Size {
		return nil, &TruncatedError{Want: int64(len(magic) + 13 + sha256.Size), Got: int64(len(data))}
	}
	if !bytes.Equal(data[:4], magic[:]) {
		return nil, &CorruptError{Reason: "bad magic (not a SMAPPIC snapshot)"}
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	if version != Version {
		return nil, &VersionError{Got: version, Want: Version}
	}
	kind := Kind(data[8])
	plen := binary.LittleEndian.Uint64(data[9:17])
	want := int64(17) + int64(plen) + sha256.Size
	if plen > uint64(len(data)) || int64(len(data)) < want {
		return nil, &TruncatedError{Want: want, Got: int64(len(data))}
	}
	if int64(len(data)) > want {
		return nil, &CorruptError{Reason: fmt.Sprintf("%d trailing bytes after digest", int64(len(data))-want)}
	}
	body := data[:17+plen]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], data[17+plen:]) {
		return nil, &CorruptError{Reason: "SHA-256 digest mismatch"}
	}
	var s Snapshot
	if err := json.Unmarshal(data[17:17+plen], &s); err != nil {
		return nil, &CorruptError{Reason: "payload is not valid JSON: " + err.Error()}
	}
	if s.Kind != kind {
		return nil, &CorruptError{Reason: "payload kind disagrees with envelope kind"}
	}
	switch s.Kind {
	case KindReplay:
		if s.Replay == nil {
			return nil, &CorruptError{Reason: "replay snapshot without replay section"}
		}
	case KindState:
		if s.State == nil {
			return nil, &CorruptError{Reason: "state snapshot without state section"}
		}
	default:
		return nil, &CorruptError{Reason: "unknown snapshot kind " + s.Kind.String()}
	}
	return &s, nil
}

// ReadFile reads and verifies a snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
