// Package cloud models the AWS side of SMAPPIC: the EC2 instance catalog
// and pricing (paper Tables 1 and 3), cheapest-instance selection, the
// cloud-versus-on-premises cost comparison of Fig. 14, and the in-situ
// service pipeline of Fig. 12 (Lambda -> Nginx on the prototype -> S3).
package cloud

import (
	"fmt"
	"sort"
)

// Instance is one EC2 offering.
type Instance struct {
	Name       string
	VCPUs      int
	MemoryGB   int
	StorageGB  int
	FPGAs      int
	FPGAMemGB  int
	PricePerHr float64 // on-demand, us-east-1, as quoted in the paper
	// HardwarePrice estimates buying equivalent hardware (Table 1's
	// bottom row: server + FPGA + FPGA memory).
	HardwarePrice float64
}

// Catalog lists the instances the evaluation uses.
var Catalog = []Instance{
	{Name: "t3.m", VCPUs: 2, MemoryGB: 8, PricePerHr: 0.04},
	{Name: "r5.2xl", VCPUs: 8, MemoryGB: 64, PricePerHr: 0.45},
	{Name: "r5.12xl", VCPUs: 48, MemoryGB: 384, PricePerHr: 3.02},
	{Name: "f1.2xl", VCPUs: 8, MemoryGB: 122, StorageGB: 470, FPGAs: 1, FPGAMemGB: 64, PricePerHr: 1.65, HardwarePrice: 8000},
	{Name: "f1.4xl", VCPUs: 16, MemoryGB: 244, StorageGB: 940, FPGAs: 2, FPGAMemGB: 128, PricePerHr: 3.30, HardwarePrice: 16000},
	{Name: "f1.16xl", VCPUs: 64, MemoryGB: 976, StorageGB: 3760, FPGAs: 8, FPGAMemGB: 512, PricePerHr: 13.20, HardwarePrice: 64000},
}

// F1Instances returns Table 1: the available F1 offerings.
func F1Instances() []Instance {
	var out []Instance
	for _, i := range Catalog {
		if i.FPGAs > 0 {
			out = append(out, i)
		}
	}
	return out
}

// Requirements describe what a modeling tool needs from its host.
type Requirements struct {
	VCPUs    int
	MemoryGB int
	FPGAs    int
}

// CheapestFor returns the cheapest catalog instance satisfying req.
func CheapestFor(req Requirements) (Instance, error) {
	var fits []Instance
	for _, i := range Catalog {
		if i.VCPUs >= req.VCPUs && i.MemoryGB >= req.MemoryGB && i.FPGAs >= req.FPGAs {
			fits = append(fits, i)
		}
	}
	if len(fits) == 0 {
		return Instance{}, fmt.Errorf("cloud: no instance satisfies %+v", req)
	}
	sort.Slice(fits, func(a, b int) bool { return fits[a].PricePerHr < fits[b].PricePerHr })
	return fits[0], nil
}

// FPGAHourPrice is the cost of one FPGA-hour on F1 ($1.65, any size).
const FPGAHourPrice = 1.65

// InstanceByName looks an instance up in the catalog.
func InstanceByName(name string) (Instance, error) {
	for _, i := range Catalog {
		if i.Name == name {
			return i, nil
		}
	}
	return Instance{}, fmt.Errorf("cloud: no instance %q in the catalog", name)
}

// CloudCost returns the cost of renting inst continuously for the given
// number of days (Fig. 14's "Cloud" line; no upfront cost).
func CloudCost(days float64, inst Instance) float64 { return days * 24 * inst.PricePerHr }

// OnPremCost returns the cost of the equivalent on-premises setup: the
// upfront purchase of inst's hardware (Table 1's bottom row — $8000 for
// f1.2xl, $64000 for f1.16xl). Usage is then free in this model, so the
// value is flat in time.
func OnPremCost(inst Instance) float64 { return inst.HardwarePrice }

// CrossoverDays returns the continuous-modeling duration beyond which
// buying inst's hardware beats renting it (the paper reports ~200 days;
// because F1 pricing and hardware cost both scale linearly in FPGA count,
// every F1 size crosses over at the same point).
func CrossoverDays(inst Instance) float64 {
	return inst.HardwarePrice / (24 * inst.PricePerHr)
}

// CostCurve returns (days, cloud$, onprem$) samples for Fig. 14.
func CostCurve(inst Instance, maxDays, step float64) (days, cloud, onprem []float64) {
	for d := step; d <= maxDays; d += step {
		days = append(days, d)
		cloud = append(cloud, CloudCost(d, inst))
		onprem = append(onprem, OnPremCost(inst))
	}
	return days, cloud, onprem
}
