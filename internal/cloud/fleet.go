package cloud

import (
	"fmt"
	"sort"
	"time"
)

// Fleet is the class-management tool of paper §4.7: educators launch
// prototype instances on demand for students and pay only for the time the
// FPGAs are actually in use — the on-demand scale-out a single institution
// could never buy outright.
type Fleet struct {
	instance Instance
	sessions map[string][]Session
	active   map[string]time.Time
	// peak is the high-water mark of concurrently active students — the
	// number of boards an owned lab would actually have needed.
	peak int
}

// Session is one completed student FPGA reservation.
type Session struct {
	Student  string
	Start    time.Time
	Duration time.Duration
}

// NewFleet creates a fleet on the given instance type (one student per
// FPGA slot).
func NewFleet(instance Instance) *Fleet {
	return &Fleet{
		instance: instance,
		sessions: make(map[string][]Session),
		active:   make(map[string]time.Time),
	}
}

// Launch starts an instance for a student. A student can hold one at a
// time, and the fleet holds one student per FPGA slot: a launch beyond the
// instance's FPGA count is rejected until someone releases (the capacity
// the "one student per slot" model always implied but never enforced).
func (f *Fleet) Launch(student string, at time.Time) error {
	if _, busy := f.active[student]; busy {
		return fmt.Errorf("cloud: %s already has an active instance", student)
	}
	if len(f.active) >= f.instance.FPGAs {
		return fmt.Errorf("cloud: all %d FPGA slots of %s are in use", f.instance.FPGAs, f.instance.Name)
	}
	f.active[student] = at
	if len(f.active) > f.peak {
		f.peak = len(f.active)
	}
	return nil
}

// Release stops a student's instance, recording the billable session.
func (f *Fleet) Release(student string, at time.Time) error {
	start, ok := f.active[student]
	if !ok {
		return fmt.Errorf("cloud: %s has no active instance", student)
	}
	delete(f.active, student)
	f.sessions[student] = append(f.sessions[student], Session{
		Student: student, Start: start, Duration: at.Sub(start),
	})
	return nil
}

// Active returns the number of instances currently running.
func (f *Fleet) Active() int { return len(f.active) }

// Peak returns the highest concurrency the fleet has served.
func (f *Fleet) Peak() int { return f.peak }

// StudentHours returns a student's total billed FPGA time.
func (f *Fleet) StudentHours(student string) float64 {
	var total time.Duration
	for _, s := range f.sessions[student] {
		total += s.Duration
	}
	return total.Hours()
}

// slotPrice is the hourly price of one student's FPGA slot. F1 pricing is
// linear in FPGA count, so this is $1.65/FPGA-hour for every size; billing
// at the full instance price would overcharge an f1.16xl student 8x.
func (f *Fleet) slotPrice() float64 {
	if f.instance.FPGAs == 0 {
		return f.instance.PricePerHr
	}
	return f.instance.PricePerHr / float64(f.instance.FPGAs)
}

// Bill returns the total cost of all completed sessions: on-demand hourly
// pricing, per FPGA slot, rounded up to the EC2 per-second minimum
// granularity (modeled as exact seconds here).
func (f *Fleet) Bill() float64 {
	var hours float64
	for student := range f.sessions {
		hours += f.StudentHours(student)
	}
	return hours * f.slotPrice()
}

// Report renders per-student usage and the class total, sorted by cost.
func (f *Fleet) Report() string {
	type row struct {
		student string
		hours   float64
	}
	var rows []row
	for s := range f.sessions {
		rows = append(rows, row{s, f.StudentHours(s)})
	}
	// Cost descending, then name ascending: without the secondary key,
	// students with equal usage would appear in Go map iteration order
	// and the report would differ run to run.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].hours != rows[j].hours {
			return rows[i].hours > rows[j].hours
		}
		return rows[i].student < rows[j].student
	})
	out := fmt.Sprintf("%-16s %8s %10s\n", "Student", "Hours", "Cost")
	for _, r := range rows {
		out += fmt.Sprintf("%-16s %8.2f %9.2f$\n", r.student, r.hours, r.hours*f.slotPrice())
	}
	out += fmt.Sprintf("%-16s %8s %9.2f$\n", "TOTAL", "", f.Bill())
	return out
}

// CompareToOwnedLab contrasts the fleet's bill with buying enough boards
// for the observed peak concurrency (the purchase a department would
// otherwise need). The hardware side prices one FPGA's worth of the
// instance's hardware per concurrently-served student; using the tracked
// peak instead of a caller-supplied guess keeps the comparison honest.
func (f *Fleet) CompareToOwnedLab() (cloudCost, hardwareCost float64) {
	perBoard := f.instance.HardwarePrice / float64(f.instance.FPGAs)
	return f.Bill(), float64(f.peak) * perBoard
}
