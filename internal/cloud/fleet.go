package cloud

import (
	"fmt"
	"sort"
	"time"
)

// Fleet is the class-management tool of paper §4.7: educators launch
// prototype instances on demand for students and pay only for the time the
// FPGAs are actually in use — the on-demand scale-out a single institution
// could never buy outright.
type Fleet struct {
	instance Instance
	sessions map[string][]Session
	active   map[string]time.Time
}

// Session is one completed student FPGA reservation.
type Session struct {
	Student  string
	Start    time.Time
	Duration time.Duration
}

// NewFleet creates a fleet on the given instance type (one student per
// FPGA slot).
func NewFleet(instance Instance) *Fleet {
	return &Fleet{
		instance: instance,
		sessions: make(map[string][]Session),
		active:   make(map[string]time.Time),
	}
}

// Launch starts an instance for a student. A student can hold one at a
// time.
func (f *Fleet) Launch(student string, at time.Time) error {
	if _, busy := f.active[student]; busy {
		return fmt.Errorf("cloud: %s already has an active instance", student)
	}
	f.active[student] = at
	return nil
}

// Release stops a student's instance, recording the billable session.
func (f *Fleet) Release(student string, at time.Time) error {
	start, ok := f.active[student]
	if !ok {
		return fmt.Errorf("cloud: %s has no active instance", student)
	}
	delete(f.active, student)
	f.sessions[student] = append(f.sessions[student], Session{
		Student: student, Start: start, Duration: at.Sub(start),
	})
	return nil
}

// Active returns the number of instances currently running.
func (f *Fleet) Active() int { return len(f.active) }

// StudentHours returns a student's total billed FPGA time.
func (f *Fleet) StudentHours(student string) float64 {
	var total time.Duration
	for _, s := range f.sessions[student] {
		total += s.Duration
	}
	return total.Hours()
}

// Bill returns the total cost of all completed sessions: on-demand hourly
// pricing, per FPGA, rounded up to the EC2 per-second minimum granularity
// (modeled as exact seconds here).
func (f *Fleet) Bill() float64 {
	var hours float64
	for student := range f.sessions {
		hours += f.StudentHours(student)
	}
	return hours * f.instance.PricePerHr
}

// Report renders per-student usage and the class total, sorted by cost.
func (f *Fleet) Report() string {
	type row struct {
		student string
		hours   float64
	}
	var rows []row
	for s := range f.sessions {
		rows = append(rows, row{s, f.StudentHours(s)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].hours > rows[j].hours })
	out := fmt.Sprintf("%-16s %8s %10s\n", "Student", "Hours", "Cost")
	for _, r := range rows {
		out += fmt.Sprintf("%-16s %8.2f %9.2f$\n", r.student, r.hours, r.hours*f.instance.PricePerHr)
	}
	out += fmt.Sprintf("%-16s %8s %9.2f$\n", "TOTAL", "", f.Bill())
	return out
}

// CompareToOwnedLab contrasts the fleet's bill with buying enough boards
// for the peak concurrency (the purchase a department would otherwise
// need).
func (f *Fleet) CompareToOwnedLab(peakConcurrent int) (cloudCost, hardwareCost float64) {
	return f.Bill(), float64(peakConcurrent) * f.instance.HardwarePrice
}
