package cloud

import (
	"fmt"
	"strings"
	"time"
)

// Fig. 12's experimental pipeline: an HTTP request enters an AWS Lambda
// gateway, is proxied to the Nginx web server running on the SMAPPIC
// prototype, whose PHP backend fetches data from S3, attaches the current
// time and answers back through the chain. The cloud services here are
// in-process models with representative latencies; the prototype-side work
// is charged by the caller in prototype cycles (the example application
// runs it on a real simulated prototype).

// S3 is an in-process object store standing in for the AWS S3 service.
type S3 struct {
	objects map[string][]byte
	// GetLatency models the S3 REST round trip from inside the VPC.
	GetLatency time.Duration
}

// NewS3 returns an empty bucket with a typical in-region GET latency.
func NewS3() *S3 {
	return &S3{objects: make(map[string][]byte), GetLatency: 18 * time.Millisecond}
}

// Put stores an object.
func (s *S3) Put(key string, data []byte) { s.objects[key] = data }

// Get fetches an object and reports the modeled fetch latency.
func (s *S3) Get(key string) (data []byte, latency time.Duration, err error) {
	d, ok := s.objects[key]
	if !ok {
		return nil, s.GetLatency, fmt.Errorf("cloud: S3 key %q not found", key)
	}
	return d, s.GetLatency, nil
}

// Stage is one hop of the pipeline trace.
type Stage struct {
	Name    string
	Latency time.Duration
}

// Trace is the end-to-end request record.
type Trace struct {
	Stages   []Stage
	Response string
}

// Total returns the end-to-end latency.
func (t *Trace) Total() time.Duration {
	var sum time.Duration
	for _, s := range t.Stages {
		sum += s.Latency
	}
	return sum
}

// String renders the trace as a table.
func (t *Trace) String() string {
	var b strings.Builder
	for _, s := range t.Stages {
		fmt.Fprintf(&b, "  %-28s %10.3f ms\n", s.Name, float64(s.Latency.Microseconds())/1000)
	}
	fmt.Fprintf(&b, "  %-28s %10.3f ms\n", "TOTAL", float64(t.Total().Microseconds())/1000)
	return b.String()
}

// Lambda is the gateway function: it redirects requests from the Internet
// into the private network where the prototype lives.
type Lambda struct {
	// InvokeOverhead is the warm-start function overhead.
	InvokeOverhead time.Duration
	// ProxyRTT is the hop from Lambda to the prototype's Nginx.
	ProxyRTT time.Duration
}

// NewLambda returns a gateway with warm-invocation latencies.
func NewLambda() *Lambda {
	return &Lambda{InvokeOverhead: 6 * time.Millisecond, ProxyRTT: 2 * time.Millisecond}
}

// Backend is the prototype side of the pipeline: Nginx + the CGI PHP
// script. Handle receives the S3 payload and returns the response body and
// how long the prototype spent producing it (simulated cycles converted to
// wall-clock by the caller).
type Backend interface {
	Handle(path string, s3Data []byte) (body string, prototypeTime time.Duration)
}

// Pipeline wires the stages of Fig. 12.
type Pipeline struct {
	Lambda  *Lambda
	S3      *S3
	Backend Backend
	// S3Key selects the object the PHP script fetches.
	S3Key string
}

// Request runs one HTTP request through the pipeline and returns the trace.
func (p *Pipeline) Request(path string) (*Trace, error) {
	t := &Trace{}
	t.Stages = append(t.Stages, Stage{"Lambda invoke (gateway)", p.Lambda.InvokeOverhead})
	t.Stages = append(t.Stages, Stage{"proxy -> Nginx on SMAPPIC", p.Lambda.ProxyRTT / 2})

	data, s3lat, err := p.S3.Get(p.S3Key)
	if err != nil {
		return nil, err
	}
	t.Stages = append(t.Stages, Stage{"PHP: S3 fetch (REST)", s3lat})

	body, protoTime, err := func() (string, time.Duration, error) {
		b, d := p.Backend.Handle(path, data)
		return b, d, nil
	}()
	if err != nil {
		return nil, err
	}
	t.Stages = append(t.Stages, Stage{"Nginx+PHP on prototype", protoTime})
	t.Stages = append(t.Stages, Stage{"response -> Lambda", p.Lambda.ProxyRTT / 2})
	t.Stages = append(t.Stages, Stage{"Lambda return", p.Lambda.InvokeOverhead / 2})
	t.Response = body
	return t, nil
}
