package cloud

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

func TestF1CatalogMatchesTable1(t *testing.T) {
	f1 := F1Instances()
	if len(f1) != 3 {
		t.Fatalf("%d F1 instances, want 3", len(f1))
	}
	want := map[string]struct {
		fpgas int
		price float64
	}{
		"f1.2xl":  {1, 1.65},
		"f1.4xl":  {2, 3.30},
		"f1.16xl": {8, 13.20},
	}
	for _, i := range f1 {
		w, ok := want[i.Name]
		if !ok {
			t.Errorf("unexpected instance %s", i.Name)
			continue
		}
		if i.FPGAs != w.fpgas || i.PricePerHr != w.price {
			t.Errorf("%s = %d FPGAs @ $%.2f, want %d @ $%.2f", i.Name, i.FPGAs, i.PricePerHr, w.fpgas, w.price)
		}
	}
	// Per-FPGA price constant across sizes (paper: $1.65/FPGA-hour).
	for _, i := range f1 {
		if math.Abs(i.PricePerHr/float64(i.FPGAs)-1.65) > 0.001 {
			t.Errorf("%s per-FPGA price = %.3f", i.Name, i.PricePerHr/float64(i.FPGAs))
		}
	}
}

func TestCheapestForPicksTable3Choices(t *testing.T) {
	cases := []struct {
		req  Requirements
		want string
	}{
		{Requirements{VCPUs: 2, MemoryGB: 8}, "t3.m"},             // Sniper
		{Requirements{VCPUs: 1, MemoryGB: 64}, "r5.2xl"},          // gem5
		{Requirements{VCPUs: 1, MemoryGB: 8}, "t3.m"},             // Verilator
		{Requirements{VCPUs: 1, MemoryGB: 8, FPGAs: 1}, "f1.2xl"}, // SMAPPIC/FireSim
		{Requirements{MemoryGB: 350}, "r5.12xl"},                  // gem5 + mcf
	}
	for _, c := range cases {
		got, err := CheapestFor(c.req)
		if err != nil {
			t.Errorf("CheapestFor(%+v): %v", c.req, err)
			continue
		}
		if got.Name != c.want {
			t.Errorf("CheapestFor(%+v) = %s, want %s", c.req, got.Name, c.want)
		}
	}
}

func TestCheapestForImpossible(t *testing.T) {
	if _, err := CheapestFor(Requirements{FPGAs: 100}); err == nil {
		t.Fatal("expected error for impossible requirements")
	}
}

func TestCrossoverNear200Days(t *testing.T) {
	d := CrossoverDays(f1())
	if d < 190 || d < 0 || d > 215 {
		t.Fatalf("crossover at %.0f days, paper says ~200", d)
	}
	// Cloud cheaper before, on-prem cheaper after.
	if CloudCost(d-10, f1()) >= OnPremCost(f1()) {
		t.Error("cloud should win before the crossover")
	}
	if CloudCost(d+10, f1()) <= OnPremCost(f1()) {
		t.Error("on-prem should win after the crossover")
	}
}

// Regression: OnPremCost used to hardcode f1.2xl's $8000, so the Fig. 14
// comparison was wrong for every other instance — an f1.16xl's worth of
// hardware (8 FPGAs) is $64000, not $8000.
func TestOnPremCostTracksInstanceHardware(t *testing.T) {
	big, err := InstanceByName("f1.16xl")
	if err != nil {
		t.Fatal(err)
	}
	if got := OnPremCost(big); got != 64000 {
		t.Fatalf("OnPremCost(f1.16xl) = $%.0f, want $64000", got)
	}
	if got := OnPremCost(f1()); got != 8000 {
		t.Fatalf("OnPremCost(f1.2xl) = $%.0f, want $8000", got)
	}
	// With hardware price in play, the f1.16xl comparison must use the
	// f1.16xl rent too: past the crossover the 8-FPGA cloud bill exceeds
	// the 8-FPGA hardware purchase.
	d := CrossoverDays(big)
	if CloudCost(d+10, big) <= OnPremCost(big) {
		t.Error("f1.16xl on-prem should win past its crossover")
	}
	if CloudCost(d+10, big) < 64000 {
		t.Errorf("f1.16xl cloud cost past crossover $%.0f should exceed the $64000 hardware", CloudCost(d+10, big))
	}
}

func TestCrossoverSameAcrossF1Sizes(t *testing.T) {
	// F1 rent and hardware both scale linearly in FPGAs, so every size
	// crosses over together (~200 days) — but only when each instance's
	// own hardware price is used.
	for _, inst := range F1Instances() {
		d := CrossoverDays(inst)
		if d < 190 || d > 215 {
			t.Errorf("%s crossover %.0f days, want ~200", inst.Name, d)
		}
	}
}

func TestCostCurveShape(t *testing.T) {
	days, cl, op := CostCurve(f1(), 350, 50)
	if len(days) != 7 || len(cl) != 7 || len(op) != 7 {
		t.Fatalf("curve lengths %d/%d/%d", len(days), len(cl), len(op))
	}
	for i := 1; i < len(cl); i++ {
		if cl[i] <= cl[i-1] {
			t.Fatal("cloud cost not increasing")
		}
		if op[i] != op[i-1] {
			t.Fatal("on-prem cost should be flat after purchase")
		}
	}
}

// fakeBackend stands in for the prototype in pipeline tests.
type fakeBackend struct{}

func (fakeBackend) Handle(path string, s3Data []byte) (string, time.Duration) {
	return "data=" + string(s3Data) + " date=2026-07-05", 3 * time.Millisecond
}

func TestPipelineTraceCompletes(t *testing.T) {
	s3 := NewS3()
	s3.Put("dataset.json", []byte(`{"v":1}`))
	p := &Pipeline{Lambda: NewLambda(), S3: s3, Backend: fakeBackend{}, S3Key: "dataset.json"}
	tr, err := p.Request("/index.php")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Response, `{"v":1}`) {
		t.Fatalf("response %q missing S3 data", tr.Response)
	}
	if !strings.Contains(tr.Response, "date=") {
		t.Fatal("script did not attach the date")
	}
	if len(tr.Stages) != 6 {
		t.Fatalf("%d stages, want 6", len(tr.Stages))
	}
	if tr.Total() < 20*time.Millisecond || tr.Total() > 100*time.Millisecond {
		t.Fatalf("end-to-end %v, want tens of ms", tr.Total())
	}
	if !strings.Contains(tr.String(), "TOTAL") {
		t.Fatal("trace rendering broken")
	}
}

func TestPipelineMissingObject(t *testing.T) {
	p := &Pipeline{Lambda: NewLambda(), S3: NewS3(), Backend: fakeBackend{}, S3Key: "absent"}
	if _, err := p.Request("/"); err == nil {
		t.Fatal("expected S3 miss error")
	}
}

func f1() Instance {
	for _, i := range Catalog {
		if i.Name == "f1.2xl" {
			return i
		}
	}
	panic("no f1.2xl")
}

func instance(t *testing.T, name string) Instance {
	t.Helper()
	inst, err := InstanceByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestFleetBillsOnlyUsedTime(t *testing.T) {
	// Two concurrent students need two FPGA slots: f1.4xl.
	f := NewFleet(instance(t, "f1.4xl"))
	t0 := time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC)
	if err := f.Launch("alice", t0); err != nil {
		t.Fatal(err)
	}
	if err := f.Launch("bob", t0); err != nil {
		t.Fatal(err)
	}
	if f.Active() != 2 {
		t.Fatalf("active = %d", f.Active())
	}
	f.Release("alice", t0.Add(2*time.Hour))
	f.Release("bob", t0.Add(30*time.Minute))
	if got := f.StudentHours("alice"); got != 2 {
		t.Fatalf("alice hours = %v", got)
	}
	// Billing is per FPGA slot ($1.65/hr on every F1 size), not per
	// instance: 2.5 slot-hours at the f1.4xl's $3.30 instance price would
	// double-charge.
	want := (2 + 0.5) * 1.65
	if got := f.Bill(); got < want-0.001 || got > want+0.001 {
		t.Fatalf("bill = %.3f, want %.3f", got, want)
	}
}

// Regression: Launch never checked capacity, so a 1-FPGA f1.2xl happily
// "hosted" any number of concurrent students.
func TestFleetLaunchEnforcesCapacity(t *testing.T) {
	f := NewFleet(instance(t, "f1.4xl")) // 2 FPGA slots
	t0 := time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC)
	if err := f.Launch("alice", t0); err != nil {
		t.Fatal(err)
	}
	if err := f.Launch("bob", t0); err != nil {
		t.Fatal(err)
	}
	if err := f.Launch("carol", t0); err == nil {
		t.Fatal("third launch on a 2-slot instance accepted")
	}
	if err := f.Release("alice", t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := f.Launch("carol", t0.Add(time.Hour)); err != nil {
		t.Fatalf("launch after release rejected: %v", err)
	}
	if f.Peak() != 2 {
		t.Fatalf("peak = %d, want 2", f.Peak())
	}
}

// Regression: Report ranged over the sessions map and only sorted by hours,
// so students with tied usage appeared in map iteration order — a different
// report every run. Render many times and demand byte-stability.
func TestFleetReportStableUnderTies(t *testing.T) {
	f := NewFleet(instance(t, "f1.16xl"))
	t0 := time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC)
	for _, s := range []string{"dana", "alice", "carol", "bob", "erin", "frank"} {
		if err := f.Launch(s, t0); err != nil {
			t.Fatal(err)
		}
		if err := f.Release(s, t0.Add(3*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	first := f.Report()
	for i := 0; i < 20; i++ {
		if got := f.Report(); got != first {
			t.Fatalf("report differs between renders:\n%s\nvs\n%s", first, got)
		}
	}
	// Ties must come out name-ascending.
	if !tieOrderOK(first, "alice", "bob", "carol", "dana", "erin", "frank") {
		t.Fatalf("tied students not sorted by name:\n%s", first)
	}
}

func tieOrderOK(report string, names ...string) bool {
	last := -1
	for _, n := range names {
		i := strings.Index(report, n)
		if i < 0 || i < last {
			return false
		}
		last = i
	}
	return true
}

func TestFleetDoubleLaunchRejected(t *testing.T) {
	f := NewFleet(f1())
	now := time.Now()
	f.Launch("alice", now)
	if err := f.Launch("alice", now); err == nil {
		t.Fatal("double launch accepted")
	}
	if err := f.Release("ghost", now); err == nil {
		t.Fatal("release without launch accepted")
	}
}

func TestFleetClassBeatsOwnedLab(t *testing.T) {
	// A 96-student class doing 3 hours of lab each, in waves of 8 on an
	// f1.16xl: the paper's argument that on-demand FPGA time crushes
	// buying boards. CompareToOwnedLab used to take a caller-supplied
	// student count, which let callers under- (or over-) count the boards
	// an owned lab needs; it now prices the tracked peak concurrency.
	f := NewFleet(instance(t, "f1.16xl"))
	t0 := time.Now()
	for wave := 0; wave < 12; wave++ {
		start := t0.Add(time.Duration(wave) * 3 * time.Hour)
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("student%02d", wave*8+i)
			if err := f.Launch(name, start); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("student%02d", wave*8+i)
			if err := f.Release(name, start.Add(3*time.Hour)); err != nil {
				t.Fatal(err)
			}
		}
	}
	cloudCost, hw := f.CompareToOwnedLab()
	// 96 students * 3 h * $1.65/slot-hour vs. 8 boards * $8000.
	if want := 96 * 3 * 1.65; math.Abs(cloudCost-want) > 0.01 {
		t.Fatalf("cloud bill $%.2f, want $%.2f", cloudCost, want)
	}
	if hw != 8*8000 {
		t.Fatalf("owned-lab hardware $%.0f, want $64000 for the 8-board peak", hw)
	}
	if cloudCost >= hw/10 {
		t.Fatalf("cloud $%.0f should be far below an owned lab $%.0f", cloudCost, hw)
	}
	rep := f.Report()
	if !strings.Contains(rep, "TOTAL") || !strings.Contains(rep, "student00") {
		t.Error("report rendering broken")
	}
}
