package cloud

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

func TestF1CatalogMatchesTable1(t *testing.T) {
	f1 := F1Instances()
	if len(f1) != 3 {
		t.Fatalf("%d F1 instances, want 3", len(f1))
	}
	want := map[string]struct {
		fpgas int
		price float64
	}{
		"f1.2xl":  {1, 1.65},
		"f1.4xl":  {2, 3.30},
		"f1.16xl": {8, 13.20},
	}
	for _, i := range f1 {
		w, ok := want[i.Name]
		if !ok {
			t.Errorf("unexpected instance %s", i.Name)
			continue
		}
		if i.FPGAs != w.fpgas || i.PricePerHr != w.price {
			t.Errorf("%s = %d FPGAs @ $%.2f, want %d @ $%.2f", i.Name, i.FPGAs, i.PricePerHr, w.fpgas, w.price)
		}
	}
	// Per-FPGA price constant across sizes (paper: $1.65/FPGA-hour).
	for _, i := range f1 {
		if math.Abs(i.PricePerHr/float64(i.FPGAs)-1.65) > 0.001 {
			t.Errorf("%s per-FPGA price = %.3f", i.Name, i.PricePerHr/float64(i.FPGAs))
		}
	}
}

func TestCheapestForPicksTable3Choices(t *testing.T) {
	cases := []struct {
		req  Requirements
		want string
	}{
		{Requirements{VCPUs: 2, MemoryGB: 8}, "t3.m"},             // Sniper
		{Requirements{VCPUs: 1, MemoryGB: 64}, "r5.2xl"},          // gem5
		{Requirements{VCPUs: 1, MemoryGB: 8}, "t3.m"},             // Verilator
		{Requirements{VCPUs: 1, MemoryGB: 8, FPGAs: 1}, "f1.2xl"}, // SMAPPIC/FireSim
		{Requirements{MemoryGB: 350}, "r5.12xl"},                  // gem5 + mcf
	}
	for _, c := range cases {
		got, err := CheapestFor(c.req)
		if err != nil {
			t.Errorf("CheapestFor(%+v): %v", c.req, err)
			continue
		}
		if got.Name != c.want {
			t.Errorf("CheapestFor(%+v) = %s, want %s", c.req, got.Name, c.want)
		}
	}
}

func TestCheapestForImpossible(t *testing.T) {
	if _, err := CheapestFor(Requirements{FPGAs: 100}); err == nil {
		t.Fatal("expected error for impossible requirements")
	}
}

func TestCrossoverNear200Days(t *testing.T) {
	d := CrossoverDays()
	if d < 190 || d < 0 || d > 215 {
		t.Fatalf("crossover at %.0f days, paper says ~200", d)
	}
	// Cloud cheaper before, on-prem cheaper after.
	if CloudCost(d-10) >= OnPremCost(d-10) {
		t.Error("cloud should win before the crossover")
	}
	if CloudCost(d+10) <= OnPremCost(d+10) {
		t.Error("on-prem should win after the crossover")
	}
}

func TestCostCurveShape(t *testing.T) {
	days, cl, op := CostCurve(350, 50)
	if len(days) != 7 || len(cl) != 7 || len(op) != 7 {
		t.Fatalf("curve lengths %d/%d/%d", len(days), len(cl), len(op))
	}
	for i := 1; i < len(cl); i++ {
		if cl[i] <= cl[i-1] {
			t.Fatal("cloud cost not increasing")
		}
		if op[i] != op[i-1] {
			t.Fatal("on-prem cost should be flat after purchase")
		}
	}
}

// fakeBackend stands in for the prototype in pipeline tests.
type fakeBackend struct{}

func (fakeBackend) Handle(path string, s3Data []byte) (string, time.Duration) {
	return "data=" + string(s3Data) + " date=2026-07-05", 3 * time.Millisecond
}

func TestPipelineTraceCompletes(t *testing.T) {
	s3 := NewS3()
	s3.Put("dataset.json", []byte(`{"v":1}`))
	p := &Pipeline{Lambda: NewLambda(), S3: s3, Backend: fakeBackend{}, S3Key: "dataset.json"}
	tr, err := p.Request("/index.php")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Response, `{"v":1}`) {
		t.Fatalf("response %q missing S3 data", tr.Response)
	}
	if !strings.Contains(tr.Response, "date=") {
		t.Fatal("script did not attach the date")
	}
	if len(tr.Stages) != 6 {
		t.Fatalf("%d stages, want 6", len(tr.Stages))
	}
	if tr.Total() < 20*time.Millisecond || tr.Total() > 100*time.Millisecond {
		t.Fatalf("end-to-end %v, want tens of ms", tr.Total())
	}
	if !strings.Contains(tr.String(), "TOTAL") {
		t.Fatal("trace rendering broken")
	}
}

func TestPipelineMissingObject(t *testing.T) {
	p := &Pipeline{Lambda: NewLambda(), S3: NewS3(), Backend: fakeBackend{}, S3Key: "absent"}
	if _, err := p.Request("/"); err == nil {
		t.Fatal("expected S3 miss error")
	}
}

func f1() Instance {
	for _, i := range Catalog {
		if i.Name == "f1.2xl" {
			return i
		}
	}
	panic("no f1.2xl")
}

func TestFleetBillsOnlyUsedTime(t *testing.T) {
	f := NewFleet(f1())
	t0 := time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC)
	if err := f.Launch("alice", t0); err != nil {
		t.Fatal(err)
	}
	if err := f.Launch("bob", t0); err != nil {
		t.Fatal(err)
	}
	if f.Active() != 2 {
		t.Fatalf("active = %d", f.Active())
	}
	f.Release("alice", t0.Add(2*time.Hour))
	f.Release("bob", t0.Add(30*time.Minute))
	if got := f.StudentHours("alice"); got != 2 {
		t.Fatalf("alice hours = %v", got)
	}
	want := (2 + 0.5) * 1.65
	if got := f.Bill(); got < want-0.001 || got > want+0.001 {
		t.Fatalf("bill = %.3f, want %.3f", got, want)
	}
}

func TestFleetDoubleLaunchRejected(t *testing.T) {
	f := NewFleet(f1())
	now := time.Now()
	f.Launch("alice", now)
	if err := f.Launch("alice", now); err == nil {
		t.Fatal("double launch accepted")
	}
	if err := f.Release("ghost", now); err == nil {
		t.Fatal("release without launch accepted")
	}
}

func TestFleetClassBeatsOwnedLab(t *testing.T) {
	// A 100-student class doing 3 hours of lab each: the paper's argument
	// that on-demand FPGA time crushes buying boards.
	f := NewFleet(f1())
	t0 := time.Now()
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("student%02d", i)
		f.Launch(name, t0)
		f.Release(name, t0.Add(3*time.Hour))
	}
	cloud, hw := f.CompareToOwnedLab(100)
	if cloud >= hw/10 {
		t.Fatalf("cloud $%.0f should be far below a 100-board lab $%.0f", cloud, hw)
	}
	rep := f.Report()
	if !strings.Contains(rep, "TOTAL") || !strings.Contains(rep, "student00") {
		t.Error("report rendering broken")
	}
}
