package rvasm

import (
	"testing"
	"testing/quick"
)

func words(t *testing.T, src string) []uint32 {
	t.Helper()
	p, err := Assemble(0x1000, src)
	if err != nil {
		t.Fatalf("assemble %q: %v", src, err)
	}
	if len(p.Bytes)%4 != 0 {
		t.Fatalf("odd byte count %d", len(p.Bytes))
	}
	out := make([]uint32, len(p.Bytes)/4)
	for i := range out {
		out[i] = uint32(p.Bytes[4*i]) | uint32(p.Bytes[4*i+1])<<8 |
			uint32(p.Bytes[4*i+2])<<16 | uint32(p.Bytes[4*i+3])<<24
	}
	return out
}

func TestEncodingsMatchSpec(t *testing.T) {
	// Golden encodings cross-checked against the RISC-V ISA manual.
	cases := map[string]uint32{
		"addi x1, x2, 5":        0x00510093,
		"add x3, x4, x5":        0x005201B3,
		"sub x3, x4, x5":        0x405201B3,
		"lui x1, 0x12345":       0x123450B7,
		"ld x6, 8(x7)":          0x0083B303,
		"sd x6, 16(x7)":         0x0063B823,
		"mul x1, x2, x3":        0x023100B3,
		"ecall":                 0x00000073,
		"ebreak":                0x00100073,
		"mret":                  0x30200073,
		"wfi":                   0x10500073,
		"slli x1, x1, 12":       0x00C09093,
		"srai x1, x1, 3":        0x4030D093,
		"amoadd.d x5, x6, (x7)": 0x0063B2AF,
		"lr.d x5, (x7)":         0x1003B2AF,
	}
	for src, want := range cases {
		got := words(t, src)
		if len(got) != 1 || got[0] != want {
			t.Errorf("%s = %#08x, want %#08x", src, got[0], want)
		}
	}
}

func TestBranchOffsets(t *testing.T) {
	w := words(t, `
	top:	nop
		beq x1, x2, top
	`)
	// beq at 0x1004 targeting 0x1000: offset -4.
	// imm[12|10:5]=1111111 rs2=00010 rs1=00001 f3=000 imm[4:1|11]=11101 op=1100011
	if w[1] != 0xFE208EE3 {
		t.Fatalf("backward beq = %#08x, want 0xFE208EE3", w[1])
	}
}

func TestJalEncoding(t *testing.T) {
	w := words(t, `
		jal x1, next
		nop
	next:	nop
	`)
	// jal at 0x1000 to 0x1008: offset +8.
	if w[0] != 0x008000EF {
		t.Fatalf("jal = %#08x, want 0x008000EF", w[0])
	}
}

func TestRegisterNamesEquivalence(t *testing.T) {
	a := words(t, "add ra, sp, gp")
	b := words(t, "add x1, x2, x3")
	if a[0] != b[0] {
		t.Fatalf("ABI names encode differently: %#x vs %#x", a[0], b[0])
	}
	if words(t, "mv s0, a0")[0] != words(t, "mv fp, a0")[0] {
		t.Fatal("fp alias broken")
	}
}

func TestPseudoExpansions(t *testing.T) {
	if w := words(t, "nop"); w[0] != 0x00000013 {
		t.Fatalf("nop = %#08x", w[0])
	}
	if w := words(t, "ret"); w[0] != 0x00008067 {
		t.Fatalf("ret = %#08x", w[0])
	}
	// li small = addi.
	if w := words(t, "li a0, 42"); len(w) != 1 || w[0] != 0x02A00513 {
		t.Fatalf("li small = %v", w)
	}
	// li 32-bit = lui + addiw.
	if w := words(t, "li a0, 0x12345678"); len(w) != 2 {
		t.Fatalf("li 32-bit expanded to %d words", len(w))
	}
}

func TestLabelArithmeticForbidden(t *testing.T) {
	if _, err := Assemble(0x1000, "la a0, foo+4\nfoo: nop"); err == nil {
		t.Fatal("label arithmetic should be rejected")
	}
}

func TestSymbolLoadFixedLength(t *testing.T) {
	// la of a forward symbol always occupies 8 words so pass-1 sizes hold.
	p := MustAssemble(0x1000, `
		la a0, target
	mark:	nop
	target:	nop
	`)
	if p.Symbols["mark"] != 0x1000+8*4 {
		t.Fatalf("mark at %#x, want la to occupy exactly 8 words", p.Symbols["mark"])
	}
}

func TestDirectives(t *testing.T) {
	p := MustAssemble(0x1000, `
		.byte 1, 2, 3
		.align 2
		.word 0xAABBCCDD
		.dword 0x1122334455667788
		.space 4
		.asciz "ok"
	`)
	b := p.Bytes
	if b[0] != 1 || b[1] != 2 || b[2] != 3 || b[3] != 0 {
		t.Fatalf("byte/align wrong: %v", b[:4])
	}
	if b[4] != 0xDD || b[7] != 0xAA {
		t.Fatal(".word endianness wrong")
	}
	if b[8] != 0x88 || b[15] != 0x11 {
		t.Fatal(".dword endianness wrong")
	}
	if string(b[20:23]) != "ok\x00" {
		t.Fatalf(".asciz wrong: %q", b[20:23])
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := MustAssemble(0x1000, `
		# full-line comment
		nop   # trailing comment
		// C++-style comment

		nop
	`)
	if len(p.Bytes) != 8 {
		t.Fatalf("comments miscounted: %d bytes", len(p.Bytes))
	}
}

func TestEntryAndSymbols(t *testing.T) {
	p := MustAssemble(0x2000, `
	start:	nop
	loop:	j loop
	`)
	if p.Entry("start") != 0x2000 || p.Entry("loop") != 0x2004 {
		t.Fatalf("symbols: %v", p.Symbols)
	}
	if p.Entry("missing") != 0x2000 {
		t.Fatal("Entry of missing label should return base")
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"unknowninsn a0, a1",
		"addi a0, nosuchreg, 1",
		".bogusdirective 1",
		"csrw nosuchcsr, a0",
		"lw a0, 4(nope)",
		"jal a0",               // jal with one operand must be a label
		"beq a0, a1, 99999999", // branch out of range (absolute target)
	}
	for _, src := range bad {
		if _, err := Assemble(0x1000, src); err == nil {
			t.Errorf("%q assembled without error", src)
		}
	}
}

// Property: assembling the same source twice is byte-identical, and every
// instruction line contributes a multiple of 4 bytes.
func TestAssembleDeterministic(t *testing.T) {
	srcs := []string{
		"nop\nadd a0, a1, a2\n",
		"li a0, 0x123456789\nret\n",
		"loop: addi a0, a0, -1\nbnez a0, loop\n",
	}
	f := func(pick uint8) bool {
		src := srcs[int(pick)%len(srcs)]
		a := MustAssemble(0x1000, src)
		b := MustAssemble(0x1000, src)
		if len(a.Bytes) != len(b.Bytes) || len(a.Bytes)%4 != 0 {
			return false
		}
		for i := range a.Bytes {
			if a.Bytes[i] != b.Bytes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Round-trip property: assemble -> disassemble -> assemble reaches a fixed
// point for a broad sample of the supported instruction space.
func TestDisassembleRoundTrip(t *testing.T) {
	sources := []string{
		"addi a0, a1, -7",
		"add s0, s1, s2",
		"subw t0, t1, t2",
		"mul a0, a1, a2",
		"divu a3, a4, a5",
		"lui a0, 0x12345",
		"auipc t0, 0xFF",
		"ld a0, 40(sp)",
		"sb t1, -3(gp)",
		"slli a0, a0, 17",
		"sraiw a1, a1, 5",
		"beq a0, a1, 8", // forward branch offset within one insn
		"jalr ra, t0, 16",
		"amoadd.d t0, t1, (t2)",
		"amoswap.w a0, a1, (a2)",
		"lr.d s0, (s1)",
		"sc.w s2, s3, (s4)",
		"ecall",
		"ebreak",
		"mret",
		"wfi",
		"fence",
		"csrrw a0, mstatus, a1",
		"csrrs zero, mie, t0",
	}
	for _, src := range sources {
		// Branch/jump operands are absolute targets in assembler syntax but
		// print as offsets; assembling at base 0 makes the two coincide.
		p1, err := Assemble(0, src)
		if err != nil {
			t.Fatalf("assemble %q: %v", src, err)
		}
		w1 := uint32(p1.Bytes[0]) | uint32(p1.Bytes[1])<<8 | uint32(p1.Bytes[2])<<16 | uint32(p1.Bytes[3])<<24
		dis := Disassemble(w1)
		p2, err := Assemble(0, dis)
		if err != nil {
			t.Fatalf("reassemble %q (from %q): %v", dis, src, err)
		}
		w2 := uint32(p2.Bytes[0]) | uint32(p2.Bytes[1])<<8 | uint32(p2.Bytes[2])<<16 | uint32(p2.Bytes[3])<<24
		if w1 != w2 {
			t.Errorf("round trip diverged: %q -> %#08x -> %q -> %#08x", src, w1, dis, w2)
		}
	}
}

// Property: disassembling arbitrary words never panics and unknown words
// render as .word directives that reassemble to themselves.
func TestDisassembleTotal(t *testing.T) {
	f := func(w uint32) bool {
		s := Disassemble(w)
		if s == "" {
			return false
		}
		if len(s) >= 5 && s[:5] == ".word" {
			p, err := Assemble(0, s)
			if err != nil || len(p.Bytes) != 4 {
				return false
			}
			got := uint32(p.Bytes[0]) | uint32(p.Bytes[1])<<8 | uint32(p.Bytes[2])<<16 | uint32(p.Bytes[3])<<24
			return got == w
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDisassembleAllListing(t *testing.T) {
	p := MustAssemble(0x1000, "nop\naddi a0, a0, 1\nebreak\n")
	listing := DisassembleAll(p)
	for _, want := range []string{"00001000", "addi", "ebreak"} {
		if !containsStr(listing, want) {
			t.Errorf("listing missing %q:\n%s", want, listing)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}
