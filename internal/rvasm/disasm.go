package rvasm

import (
	"fmt"
	"strings"
)

// Disassemble renders one RV64IMA instruction word in the same syntax the
// assembler accepts, so assemble(disassemble(w)) == w for every supported
// encoding. Unknown words render as ".word 0x...".
func Disassemble(inst uint32) string {
	op := inst & 0x7F
	rd := int(inst >> 7 & 0x1F)
	rs1 := int(inst >> 15 & 0x1F)
	rs2 := int(inst >> 20 & 0x1F)
	f3 := inst >> 12 & 7
	f7 := inst >> 25
	immI := int64(signExtend(uint64(inst>>20), 12))

	r := regName
	unknown := func() string { return fmt.Sprintf(".word 0x%08X", inst) }

	switch op {
	case 0x37:
		return fmt.Sprintf("lui %s, 0x%x", r(rd), inst>>12)
	case 0x17:
		return fmt.Sprintf("auipc %s, 0x%x", r(rd), inst>>12)
	case 0x6F:
		imm := int64(signExtend(uint64(inst>>31<<20|inst>>21&0x3FF<<1|inst>>20&1<<11|inst>>12&0xFF<<12), 21))
		return fmt.Sprintf("jal %s, %d", r(rd), imm)
	case 0x67:
		return fmt.Sprintf("jalr %s, %s, %d", r(rd), r(rs1), immI)
	case 0x63:
		imm := int64(signExtend(uint64(inst>>31<<12|inst>>25&0x3F<<5|inst>>8&0xF<<1|inst>>7&1<<11), 13))
		names := map[uint32]string{0: "beq", 1: "bne", 4: "blt", 5: "bge", 6: "bltu", 7: "bgeu"}
		n, ok := names[f3]
		if !ok {
			return unknown()
		}
		return fmt.Sprintf("%s %s, %s, %d", n, r(rs1), r(rs2), imm)
	case 0x03:
		names := map[uint32]string{0: "lb", 1: "lh", 2: "lw", 3: "ld", 4: "lbu", 5: "lhu", 6: "lwu"}
		n, ok := names[f3]
		if !ok {
			return unknown()
		}
		return fmt.Sprintf("%s %s, %d(%s)", n, r(rd), immI, r(rs1))
	case 0x23:
		names := map[uint32]string{0: "sb", 1: "sh", 2: "sw", 3: "sd"}
		n, ok := names[f3]
		if !ok {
			return unknown()
		}
		imm := int64(signExtend(uint64(inst>>25<<5|inst>>7&0x1F), 12))
		return fmt.Sprintf("%s %s, %d(%s)", n, r(rs2), imm, r(rs1))
	case 0x13:
		switch f3 {
		case 0:
			return fmt.Sprintf("addi %s, %s, %d", r(rd), r(rs1), immI)
		case 2:
			return fmt.Sprintf("slti %s, %s, %d", r(rd), r(rs1), immI)
		case 3:
			return fmt.Sprintf("sltiu %s, %s, %d", r(rd), r(rs1), immI)
		case 4:
			return fmt.Sprintf("xori %s, %s, %d", r(rd), r(rs1), immI)
		case 6:
			return fmt.Sprintf("ori %s, %s, %d", r(rd), r(rs1), immI)
		case 7:
			return fmt.Sprintf("andi %s, %s, %d", r(rd), r(rs1), immI)
		case 1:
			return fmt.Sprintf("slli %s, %s, %d", r(rd), r(rs1), inst>>20&0x3F)
		case 5:
			if inst>>30&1 != 0 {
				return fmt.Sprintf("srai %s, %s, %d", r(rd), r(rs1), inst>>20&0x3F)
			}
			return fmt.Sprintf("srli %s, %s, %d", r(rd), r(rs1), inst>>20&0x3F)
		}
	case 0x1B:
		switch f3 {
		case 0:
			return fmt.Sprintf("addiw %s, %s, %d", r(rd), r(rs1), immI)
		case 1:
			return fmt.Sprintf("slliw %s, %s, %d", r(rd), r(rs1), inst>>20&0x1F)
		case 5:
			if inst>>30&1 != 0 {
				return fmt.Sprintf("sraiw %s, %s, %d", r(rd), r(rs1), inst>>20&0x1F)
			}
			return fmt.Sprintf("srliw %s, %s, %d", r(rd), r(rs1), inst>>20&0x1F)
		}
	case 0x33, 0x3B:
		for name, enc := range rTypes {
			if enc[2] == op && enc[0] == f3 && enc[1] == f7 {
				return fmt.Sprintf("%s %s, %s, %s", name, r(rd), r(rs1), r(rs2))
			}
		}
	case 0x0F:
		return "fence"
	case 0x2F:
		width := map[uint32]string{2: "w", 3: "d"}[f3]
		if width == "" {
			return unknown()
		}
		for name, f5 := range amoTypes {
			if f5 == inst>>27 {
				if name == "lr" {
					return fmt.Sprintf("lr.%s %s, (%s)", width, r(rd), r(rs1))
				}
				return fmt.Sprintf("%s.%s %s, %s, (%s)", name, width, r(rd), r(rs2), r(rs1))
			}
		}
	case 0x73:
		if f3 == 0 {
			switch inst >> 20 {
			case 0:
				return "ecall"
			case 1:
				return "ebreak"
			case 0x302:
				return "mret"
			case 0x105:
				return "wfi"
			}
			return unknown()
		}
		csr := inst >> 20
		csrStr := csrNameOf(csr)
		switch f3 & 3 {
		case 1:
			return fmt.Sprintf("csrrw %s, %s, %s", r(rd), csrStr, r(rs1))
		case 2:
			return fmt.Sprintf("csrrs %s, %s, %s", r(rd), csrStr, r(rs1))
		case 3:
			return fmt.Sprintf("csrrc %s, %s, %s", r(rd), csrStr, r(rs1))
		}
	}
	return unknown()
}

// DisassembleAll renders a program's code words, one instruction per line
// with addresses (a debugging aid for the examples and tests).
func DisassembleAll(p *Program) string {
	var b strings.Builder
	for i := 0; i+4 <= len(p.Bytes); i += 4 {
		w := uint32(p.Bytes[i]) | uint32(p.Bytes[i+1])<<8 | uint32(p.Bytes[i+2])<<16 | uint32(p.Bytes[i+3])<<24
		fmt.Fprintf(&b, "%08x:  %08x  %s\n", p.Base+uint64(i), w, Disassemble(w))
	}
	return b.String()
}

func signExtend(v uint64, bits uint) uint64 {
	sh := 64 - bits
	return uint64(int64(v<<sh) >> sh)
}

var regNamesByNum = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

func regName(n int) string { return regNamesByNum[n&31] }

func csrNameOf(csr uint32) string {
	for name, v := range csrNames {
		if v == csr {
			return name
		}
	}
	return fmt.Sprintf("0x%x", csr)
}
