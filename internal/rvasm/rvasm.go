// Package rvasm is a small two-pass RV64IMA assembler. It exists so that
// the repository's examples and tests can express bare-metal programs in
// readable assembly instead of hand-encoded words. It supports the
// instructions the RV64IMA core implements, the usual pseudo-instructions,
// labels, and a handful of data directives.
package rvasm

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is the assembler output.
type Program struct {
	Base    uint64 // load address of Bytes[0]
	Bytes   []byte
	Symbols map[string]uint64
}

// Entry returns the address of a label, or the base address if absent.
func (p *Program) Entry(label string) uint64 {
	if a, ok := p.Symbols[label]; ok {
		return a
	}
	return p.Base
}

// regNames maps ABI and x-register names to numbers.
var regNames = map[string]int{}

func init() {
	abi := []string{
		"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
		"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
		"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
		"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
	}
	for i, n := range abi {
		regNames[n] = i
		regNames[fmt.Sprintf("x%d", i)] = i
	}
	regNames["fp"] = 8
}

var csrNames = map[string]uint32{
	"mstatus": 0x300, "misa": 0x301, "mie": 0x304, "mtvec": 0x305,
	"mscratch": 0x340, "mepc": 0x341, "mcause": 0x342, "mtval": 0x343,
	"mip": 0x344, "mcycle": 0xB00, "minstret": 0xB02, "mhartid": 0xF14,
	"time": 0xC01,
}

// Assemble translates source into a Program loaded at base.
func Assemble(base uint64, source string) (*Program, error) {
	a := &assembler{base: base, symbols: make(map[string]uint64)}
	// Pass 1: compute sizes and label addresses.
	if err := a.run(source, false); err != nil {
		return nil, err
	}
	// Pass 2: emit.
	a.out = a.out[:0]
	a.pc = base
	if err := a.run(source, true); err != nil {
		return nil, err
	}
	return &Program{Base: base, Bytes: a.out, Symbols: a.symbols}, nil
}

// MustAssemble is Assemble that panics on error (for tests and tables of
// fixed programs).
func MustAssemble(base uint64, source string) *Program {
	p, err := Assemble(base, source)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	base    uint64
	pc      uint64
	out     []byte
	symbols map[string]uint64
	emit    bool
	lineNo  int
}

func (a *assembler) errf(format string, args ...any) error {
	return fmt.Errorf("rvasm: line %d: %s", a.lineNo, fmt.Sprintf(format, args...))
}

func (a *assembler) run(source string, emit bool) error {
	a.emit = emit
	a.pc = a.base
	for i, raw := range strings.Split(source, "\n") {
		a.lineNo = i + 1
		line := raw
		if idx := strings.IndexAny(line, "#"); idx >= 0 {
			line = line[:idx]
		}
		if idx := strings.Index(line, "//"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		for {
			colon := strings.Index(line, ":")
			if colon < 0 || strings.ContainsAny(line[:colon], " \t\"") {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if !emit {
				if _, dup := a.symbols[label]; dup {
					return a.errf("duplicate label %q", label)
				}
				a.symbols[label] = a.pc
			}
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		if err := a.statement(line); err != nil {
			return err
		}
	}
	return nil
}

func (a *assembler) put32(w uint32) {
	if a.emit {
		a.out = append(a.out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	a.pc += 4
}

func (a *assembler) putBytes(b []byte) {
	if a.emit {
		a.out = append(a.out, b...)
	}
	a.pc += uint64(len(b))
}

// operand parsing -----------------------------------------------------------

func (a *assembler) reg(s string) (int, error) {
	r, ok := regNames[strings.TrimSpace(s)]
	if !ok {
		return 0, a.errf("unknown register %q", s)
	}
	return r, nil
}

// value resolves an integer literal or label, with an optional %hi/%lo.
func (a *assembler) value(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	if sym, ok := a.symbols[s]; ok {
		v = sym
	} else if n, err := strconv.ParseUint(strings.TrimPrefix(s, "+"), 0, 64); err == nil {
		v = n
	} else if n2, err2 := strconv.ParseInt(s, 0, 64); err2 == nil {
		v = uint64(n2)
	} else {
		if !a.emit {
			return 0, nil // labels may be forward references in pass 1
		}
		return 0, a.errf("cannot resolve %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// memOperand parses "imm(reg)".
func (a *assembler) memOperand(s string) (imm int64, reg int, err error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf("bad memory operand %q", s)
	}
	immStr := strings.TrimSpace(s[:open])
	if immStr == "" {
		immStr = "0"
	}
	imm, err = a.value(immStr)
	if err != nil {
		return 0, 0, err
	}
	reg, err = a.reg(s[open+1 : len(s)-1])
	return imm, reg, err
}

// encoders -------------------------------------------------------------------

func encR(op, f3, f7 uint32, rd, rs1, rs2 int) uint32 {
	return f7<<25 | uint32(rs2)<<20 | uint32(rs1)<<15 | f3<<12 | uint32(rd)<<7 | op
}

func encI(op, f3 uint32, rd, rs1 int, imm int64) uint32 {
	return uint32(imm&0xFFF)<<20 | uint32(rs1)<<15 | f3<<12 | uint32(rd)<<7 | op
}

func encS(op, f3 uint32, rs1, rs2 int, imm int64) uint32 {
	return uint32(imm>>5&0x7F)<<25 | uint32(rs2)<<20 | uint32(rs1)<<15 | f3<<12 | uint32(imm&0x1F)<<7 | op
}

func encB(op, f3 uint32, rs1, rs2 int, imm int64) uint32 {
	return uint32(imm>>12&1)<<31 | uint32(imm>>5&0x3F)<<25 | uint32(rs2)<<20 |
		uint32(rs1)<<15 | f3<<12 | uint32(imm>>1&0xF)<<8 | uint32(imm>>11&1)<<7 | op
}

func encU(op uint32, rd int, imm int64) uint32 {
	return uint32(imm)&0xFFFFF000 | uint32(rd)<<7 | op
}

func encJ(op uint32, rd int, imm int64) uint32 {
	return uint32(imm>>20&1)<<31 | uint32(imm>>1&0x3FF)<<21 | uint32(imm>>11&1)<<20 |
		uint32(imm>>12&0xFF)<<12 | uint32(rd)<<7 | op
}

// instruction tables ----------------------------------------------------------

var rTypes = map[string][3]uint32{ // f3, f7, op
	"add": {0, 0, 0x33}, "sub": {0, 0x20, 0x33}, "sll": {1, 0, 0x33},
	"slt": {2, 0, 0x33}, "sltu": {3, 0, 0x33}, "xor": {4, 0, 0x33},
	"srl": {5, 0, 0x33}, "sra": {5, 0x20, 0x33}, "or": {6, 0, 0x33},
	"and":  {7, 0, 0x33},
	"addw": {0, 0, 0x3B}, "subw": {0, 0x20, 0x3B}, "sllw": {1, 0, 0x3B},
	"srlw": {5, 0, 0x3B}, "sraw": {5, 0x20, 0x3B},
	"mul": {0, 1, 0x33}, "mulh": {1, 1, 0x33}, "mulhsu": {2, 1, 0x33},
	"mulhu": {3, 1, 0x33}, "div": {4, 1, 0x33}, "divu": {5, 1, 0x33},
	"rem": {6, 1, 0x33}, "remu": {7, 1, 0x33},
	"mulw": {0, 1, 0x3B}, "divw": {4, 1, 0x3B}, "divuw": {5, 1, 0x3B},
	"remw": {6, 1, 0x3B}, "remuw": {7, 1, 0x3B},
}

var iTypes = map[string][2]uint32{ // f3, op
	"addi": {0, 0x13}, "slti": {2, 0x13}, "sltiu": {3, 0x13},
	"xori": {4, 0x13}, "ori": {6, 0x13}, "andi": {7, 0x13},
	"addiw": {0, 0x1B}, "jalr": {0, 0x67},
}

var loadTypes = map[string]uint32{
	"lb": 0, "lh": 1, "lw": 2, "ld": 3, "lbu": 4, "lhu": 5, "lwu": 6,
}

var storeTypes = map[string]uint32{"sb": 0, "sh": 1, "sw": 2, "sd": 3}

var branchTypes = map[string]uint32{
	"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7,
}

var amoTypes = map[string]uint32{ // funct5
	"amoswap": 0x01, "amoadd": 0x00, "amoxor": 0x04, "amoand": 0x0C,
	"amoor": 0x08, "amomin": 0x10, "amomax": 0x14, "amominu": 0x18,
	"amomaxu": 0x1C, "lr": 0x02, "sc": 0x03,
}

// statement assembles one directive or instruction.
func (a *assembler) statement(line string) error {
	mn := line
	rest := ""
	if sp := strings.IndexAny(line, " \t"); sp >= 0 {
		mn, rest = line[:sp], strings.TrimSpace(line[sp+1:])
	}
	mn = strings.ToLower(mn)

	if strings.HasPrefix(mn, ".") {
		return a.directive(mn, rest)
	}

	args := splitArgs(rest)
	return a.instruction(mn, args)
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func (a *assembler) directive(mn, rest string) error {
	switch mn {
	case ".align":
		n, err := a.value(rest)
		if err != nil {
			return err
		}
		align := uint64(1) << uint(n)
		for a.pc%align != 0 {
			a.putBytes([]byte{0})
		}
	case ".word":
		for _, arg := range splitArgs(rest) {
			v, err := a.value(arg)
			if err != nil {
				return err
			}
			a.put32(uint32(v))
		}
	case ".dword":
		for _, arg := range splitArgs(rest) {
			v, err := a.value(arg)
			if err != nil {
				return err
			}
			a.put32(uint32(v))
			a.put32(uint32(uint64(v) >> 32))
		}
	case ".byte":
		for _, arg := range splitArgs(rest) {
			v, err := a.value(arg)
			if err != nil {
				return err
			}
			a.putBytes([]byte{byte(v)})
		}
	case ".space":
		n, err := a.value(rest)
		if err != nil {
			return err
		}
		a.putBytes(make([]byte, n))
	case ".asciz":
		s, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return a.errf("bad string %s", rest)
		}
		a.putBytes(append([]byte(s), 0))
	default:
		return a.errf("unknown directive %s", mn)
	}
	return nil
}

func (a *assembler) instruction(mn string, args []string) error {
	need := func(n int) error {
		if len(args) != n {
			return a.errf("%s expects %d operands, got %d", mn, n, len(args))
		}
		return nil
	}

	// Pseudo-instructions first.
	switch mn {
	case "nop":
		a.put32(encI(0x13, 0, 0, 0, 0))
		return nil
	case "mv":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(args[1])
		if err != nil {
			return err
		}
		a.put32(encI(0x13, 0, rd, rs, 0))
		return nil
	case "not":
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(args[1])
		if err != nil {
			return err
		}
		a.put32(encI(0x13, 4, rd, rs, -1))
		return nil
	case "neg":
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(args[1])
		if err != nil {
			return err
		}
		a.put32(encR(0x33, 0, 0x20, rd, 0, rs))
		return nil
	case "li", "la":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		v, err := a.value(args[1])
		if err != nil {
			return err
		}
		if isSymbolOperand(args[1]) {
			// Symbols may be forward references whose value is unknown in
			// pass 1; use a fixed-length expansion so label addresses are
			// identical in both passes.
			a.loadImmFixed(rd, v)
		} else {
			a.loadImm(rd, v)
		}
		return nil
	case "j":
		if err := need(1); err != nil {
			return err
		}
		return a.jump(0, args[0])
	case "jal":
		if len(args) == 1 {
			return a.jump(1, args[0])
		}
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		return a.jump(rd, args[1])
	case "call":
		return a.jump(1, args[0])
	case "jr":
		rs, err := a.reg(args[0])
		if err != nil {
			return err
		}
		a.put32(encI(0x67, 0, 0, rs, 0))
		return nil
	case "ret":
		a.put32(encI(0x67, 0, 0, 1, 0))
		return nil
	case "beqz":
		return a.branchPseudo("beq", args)
	case "bnez":
		return a.branchPseudo("bne", args)
	case "bgez":
		return a.branchPseudo("bge", args)
	case "bltz":
		return a.branchPseudo("blt", args)
	case "ble": // ble a,b,l == bge b,a,l
		return a.instruction("bge", []string{args[1], args[0], args[2]})
	case "bgt":
		return a.instruction("blt", []string{args[1], args[0], args[2]})
	case "csrr":
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		csr, err := a.csr(args[1])
		if err != nil {
			return err
		}
		a.put32(uint32(csr)<<20 | 2<<12 | uint32(rd)<<7 | 0x73)
		return nil
	case "csrw":
		csr, err := a.csr(args[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(args[1])
		if err != nil {
			return err
		}
		a.put32(uint32(csr)<<20 | uint32(rs)<<15 | 1<<12 | 0x73)
		return nil
	case "csrs":
		csr, err := a.csr(args[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(args[1])
		if err != nil {
			return err
		}
		a.put32(uint32(csr)<<20 | uint32(rs)<<15 | 2<<12 | 0x73)
		return nil
	case "csrc":
		csr, err := a.csr(args[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(args[1])
		if err != nil {
			return err
		}
		a.put32(uint32(csr)<<20 | uint32(rs)<<15 | 3<<12 | 0x73)
		return nil
	case "csrrw", "csrrs", "csrrc":
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		csr, err := a.csr(args[1])
		if err != nil {
			return err
		}
		rs, err := a.reg(args[2])
		if err != nil {
			return err
		}
		f3 := map[string]uint32{"csrrw": 1, "csrrs": 2, "csrrc": 3}[mn]
		a.put32(uint32(csr)<<20 | uint32(rs)<<15 | f3<<12 | uint32(rd)<<7 | 0x73)
		return nil
	case "ecall":
		a.put32(0x73)
		return nil
	case "ebreak":
		a.put32(1<<20 | 0x73)
		return nil
	case "mret":
		a.put32(0x302<<20 | 0x73)
		return nil
	case "wfi":
		a.put32(0x105<<20 | 0x73)
		return nil
	case "fence", "fence.i":
		a.put32(0x0F)
		return nil
	}

	// Real instructions by format.
	if enc, ok := rTypes[mn]; ok {
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(args[1])
		if err != nil {
			return err
		}
		rs2, err := a.reg(args[2])
		if err != nil {
			return err
		}
		a.put32(encR(enc[2], enc[0], enc[1], rd, rs1, rs2))
		return nil
	}
	if enc, ok := iTypes[mn]; ok {
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(args[1])
		if err != nil {
			return err
		}
		imm, err := a.value(args[2])
		if err != nil {
			return err
		}
		if a.emit && (imm < -2048 || imm > 2047) {
			return a.errf("%s immediate %d out of range", mn, imm)
		}
		a.put32(encI(enc[1], enc[0], rd, rs1, imm))
		return nil
	}
	switch mn {
	case "slli", "srli", "srai", "slliw", "srliw", "sraiw":
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(args[1])
		if err != nil {
			return err
		}
		sh, err := a.value(args[2])
		if err != nil {
			return err
		}
		op := uint32(0x13)
		if strings.HasSuffix(mn, "w") {
			op = 0x1B
		}
		var f3, hi uint32
		switch strings.TrimSuffix(mn, "w") {
		case "slli":
			f3 = 1
		case "srli":
			f3 = 5
		case "srai":
			f3, hi = 5, 0x20<<5
		}
		a.put32(uint32(hi)<<20 | uint32(sh&0x3F)<<20 | 0 /*rs2 in imm*/ | uint32(rs1)<<15 | f3<<12 | uint32(rd)<<7 | op)
		return nil
	}
	if f3, ok := loadTypes[mn]; ok {
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		imm, rs1, err := a.memOperand(args[1])
		if err != nil {
			return err
		}
		a.put32(encI(0x03, f3, rd, rs1, imm))
		return nil
	}
	if f3, ok := storeTypes[mn]; ok {
		if err := need(2); err != nil {
			return err
		}
		rs2, err := a.reg(args[0])
		if err != nil {
			return err
		}
		imm, rs1, err := a.memOperand(args[1])
		if err != nil {
			return err
		}
		a.put32(encS(0x23, f3, rs1, rs2, imm))
		return nil
	}
	if f3, ok := branchTypes[mn]; ok {
		if err := need(3); err != nil {
			return err
		}
		rs1, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs2, err := a.reg(args[1])
		if err != nil {
			return err
		}
		target, err := a.value(args[2])
		if err != nil {
			return err
		}
		off := target - int64(a.pc)
		if a.emit && (off < -4096 || off > 4095 || off&1 != 0) {
			return a.errf("branch target out of range (offset %d)", off)
		}
		a.put32(encB(0x63, f3, rs1, rs2, off))
		return nil
	}
	// AMO family: amoadd.w/d etc.
	if dot := strings.Index(mn, "."); dot > 0 {
		baseMn, suffix := mn[:dot], mn[dot+1:]
		if f5, ok := amoTypes[baseMn]; ok {
			var f3 uint32
			switch suffix {
			case "w":
				f3 = 2
			case "d":
				f3 = 3
			default:
				return a.errf("bad AMO width %q", suffix)
			}
			var rd, rs1, rs2 int
			var err error
			if baseMn == "lr" {
				if err = need(2); err != nil {
					return err
				}
				rd, err = a.reg(args[0])
				if err != nil {
					return err
				}
				_, rs1, err = a.memOperand(args[1])
				if err != nil {
					return err
				}
			} else {
				if err = need(3); err != nil {
					return err
				}
				rd, err = a.reg(args[0])
				if err != nil {
					return err
				}
				rs2, err = a.reg(args[1])
				if err != nil {
					return err
				}
				_, rs1, err = a.memOperand(args[2])
				if err != nil {
					return err
				}
			}
			a.put32(f5<<27 | uint32(rs2)<<20 | uint32(rs1)<<15 | f3<<12 | uint32(rd)<<7 | 0x2F)
			return nil
		}
	}
	switch mn {
	case "lui", "auipc":
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		v, err := a.value(args[1])
		if err != nil {
			return err
		}
		op := uint32(0x37)
		if mn == "auipc" {
			op = 0x17
		}
		a.put32(encU(op, rd, v<<12))
		return nil
	}
	return a.errf("unknown instruction %q", mn)
}

func (a *assembler) csr(s string) (uint32, error) {
	if v, ok := csrNames[strings.ToLower(strings.TrimSpace(s))]; ok {
		return v, nil
	}
	n, err := strconv.ParseUint(strings.TrimSpace(s), 0, 12)
	if err != nil {
		return 0, a.errf("unknown CSR %q", s)
	}
	return uint32(n), nil
}

func (a *assembler) jump(rd int, target string) error {
	v, err := a.value(target)
	if err != nil {
		return err
	}
	off := v - int64(a.pc)
	if a.emit && (off < -(1<<20) || off >= 1<<20) {
		return a.errf("jump target out of range (offset %d)", off)
	}
	a.put32(encJ(0x6F, rd, off))
	return nil
}

func (a *assembler) branchPseudo(real string, args []string) error {
	if len(args) != 2 {
		return a.errf("%s expects 2 operands", real)
	}
	return a.instruction(real, []string{args[0], "zero", args[1]})
}

// isSymbolOperand reports whether s is a label reference (not a numeric
// literal). The answer is identical in both passes, which keeps sizes
// stable.
func isSymbolOperand(s string) bool {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(s, "-"), "+"))
	if _, err := strconv.ParseUint(s, 0, 64); err == nil {
		return false
	}
	if _, err := strconv.ParseInt(s, 0, 64); err == nil {
		return false
	}
	return true
}

// loadImmFixed materializes v in exactly eight words (padding with nops),
// enough for any 64-bit constant.
func (a *assembler) loadImmFixed(rd int, v int64) {
	start := a.pc
	a.loadImm(rd, v)
	for a.pc-start < 8*4 {
		a.put32(encI(0x13, 0, 0, 0, 0)) // nop
	}
	if a.pc-start > 8*4 {
		panic(fmt.Sprintf("rvasm: loadImm for %#x exceeded fixed budget", uint64(v)))
	}
}

// loadImm emits a minimal sequence materializing a 64-bit constant.
func (a *assembler) loadImm(rd int, v int64) {
	if v >= -2048 && v <= 2047 {
		a.put32(encI(0x13, 0, rd, 0, v))
		return
	}
	if v >= -(1<<31) && v < 1<<31 {
		hi := (v + 0x800) >> 12 << 12
		lo := v - hi
		a.put32(encU(0x37, rd, hi))
		if lo != 0 {
			a.put32(encI(0x1B, 0, rd, rd, lo)) // addiw keeps 32-bit sign
		}
		return
	}
	// General case (LLVM-style recursion): materialize the upper bits,
	// shift left 12, add the sign-extended low 12 bits.
	lo12 := v << 52 >> 52
	hi := (v - lo12) >> 12
	a.loadImm(rd, hi)
	a.put32(uint32(12)<<20 | uint32(rd)<<15 | 1<<12 | uint32(rd)<<7 | 0x13) // slli rd, rd, 12
	if lo12 != 0 {
		a.put32(encI(0x13, 0, rd, rd, lo12))
	}
}
