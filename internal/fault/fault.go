// Package fault is a seeded, deterministic fault-injection framework for the
// simulated platform. Subsystems register named fault sites ("pcie.ep2.link",
// "node1.bridge", "node0.dram") and a Plan — parsed from a CLI spec like
// "pcie.*.drop:p=0.01,seed=7" — schedules drops, corruptions, extra delays,
// stall windows, endpoint hangs and memory bit flips against them.
//
// The framework follows the same nil-safe, zero-cost-when-disabled pattern as
// sim.Stats: a subsystem resolves its *Site once at construction time and the
// pointer is nil when no plan rule matches, so the hot path pays a single
// predictable branch and performs no allocation. All randomness comes from a
// per-site xorshift generator seeded from (plan seed, site name), so two runs
// with the same seed and plan inject byte-identical fault sequences, and the
// order in which sites are resolved does not matter.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"smappic/internal/ckpt"
	"smappic/internal/sim"
)

// Kind enumerates the fault types a rule can inject.
type Kind int

const (
	// Drop makes a transfer vanish in flight (no delivery, no response).
	Drop Kind = iota
	// Corrupt delivers the transfer with a payload the receiver's checksum
	// rejects; recovery is the sender's problem (retransmission).
	Corrupt
	// Delay adds Cycles of extra latency to a transfer.
	Delay
	// Stall makes the site unavailable for Cycles after triggering; transfers
	// arriving inside the window wait it out.
	Stall
	// Hang stops the site permanently: every later transfer is dropped. Used
	// to model a wedged endpoint for forward-progress testing.
	Hang
	// Flip injects a single-bit memory error (SECDED-correctable).
	Flip
	// Flip2 injects a double-bit memory error (SECDED detects, cannot
	// correct).
	Flip2
)

var kindNames = map[string]Kind{
	"drop":    Drop,
	"corrupt": Corrupt,
	"delay":   Delay,
	"stall":   Stall,
	"hang":    Hang,
	"flip":    Flip,
	"flip2":   Flip2,
}

// String returns the spec-grammar name of the kind.
func (k Kind) String() string {
	for name, v := range kindNames {
		if v == k {
			return name
		}
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Rule is one parsed injection directive: a site pattern, a fault kind and
// its trigger parameters.
type Rule struct {
	// Pattern selects fault sites by dot-separated segments. A "*" segment
	// matches exactly one name segment, except as the final segment, where it
	// matches the whole remainder ("pcie.*" covers "pcie.ep2.link").
	Pattern string
	Kind    Kind
	// P is the per-event trigger probability in [0, 1]. Defaults to 1.
	P float64
	// N caps how many times the rule fires (0 = unlimited).
	N uint64
	// After skips the first After events at the site before the rule is
	// eligible (deterministic event counting, not time).
	After uint64
	// Cycles parameterizes Delay (extra latency) and Stall (window length).
	Cycles sim.Time
	// Seed, when nonzero, is mixed into the RNG seed of every site the rule
	// matches (on top of the plan seed).
	Seed uint64
}

// Plan is a parsed set of rules plus the base seed. A Plan is immutable and
// stateless: all mutable trigger state lives in the Sites an Injector builds
// from it, so one Plan can parameterize any number of runs.
type Plan struct {
	Rules []Rule
	Seed  uint64
}

// String renders the plan in canonical spec form (every parameter explicit,
// fixed order), so equal plans — however their specs were written — render
// identically. Used for configuration fingerprinting; a nil plan renders
// empty.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	for _, r := range p.Rules {
		fmt.Fprintf(&b, ";%s.%s:p=%g,n=%d,after=%d,cycles=%d,seed=%d",
			r.Pattern, r.Kind, r.P, r.N, r.After, uint64(r.Cycles), r.Seed)
	}
	return b.String()
}

// Parse builds a Plan from a spec string. The grammar is
//
//	spec  := rule (";" rule)*
//	rule  := pattern "." kind [":" param ("," param)*]
//	param := key "=" value
//	kind  := drop | corrupt | delay | stall | hang | flip | flip2
//	key   := p | n | after | cycles | seed
//
// e.g. "pcie.*.drop:p=0.01;node0.dram.flip:p=0.001,seed=7". An empty spec
// returns a nil Plan (injection disabled). seed parameters apply per rule;
// defaultSeed seeds everything else.
func Parse(spec string, defaultSeed uint64) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	plan := &Plan{Seed: defaultSeed}
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		rule, err := parseRule(rs)
		if err != nil {
			return nil, err
		}
		plan.Rules = append(plan.Rules, rule)
	}
	if len(plan.Rules) == 0 {
		return nil, nil
	}
	return plan, nil
}

// MustParse is Parse for tests and literals; it panics on error.
func MustParse(spec string, defaultSeed uint64) *Plan {
	p, err := Parse(spec, defaultSeed)
	if err != nil {
		panic(err)
	}
	return p
}

func parseRule(rs string) (Rule, error) {
	head, params, hasParams := strings.Cut(rs, ":")
	dot := strings.LastIndex(head, ".")
	if dot < 0 {
		return Rule{}, fmt.Errorf("fault: rule %q has no kind suffix (want pattern.kind)", rs)
	}
	pattern, kindName := head[:dot], head[dot+1:]
	kind, ok := kindNames[kindName]
	if !ok {
		return Rule{}, fmt.Errorf("fault: unknown fault kind %q in %q", kindName, rs)
	}
	if pattern == "" {
		return Rule{}, fmt.Errorf("fault: empty site pattern in %q", rs)
	}
	r := Rule{Pattern: pattern, Kind: kind, P: 1}
	if hasParams {
		for _, kv := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return Rule{}, fmt.Errorf("fault: bad parameter %q in %q (want key=value)", kv, rs)
			}
			var err error
			switch key {
			case "p":
				r.P, err = strconv.ParseFloat(val, 64)
				if err == nil && (r.P < 0 || r.P > 1) {
					err = fmt.Errorf("p=%v out of [0,1]", r.P)
				}
			case "n":
				r.N, err = strconv.ParseUint(val, 10, 64)
			case "after":
				r.After, err = strconv.ParseUint(val, 10, 64)
			case "cycles":
				var c uint64
				c, err = strconv.ParseUint(val, 10, 64)
				r.Cycles = sim.Time(c)
			case "seed":
				r.Seed, err = strconv.ParseUint(val, 10, 64)
			default:
				err = fmt.Errorf("unknown parameter %q", key)
			}
			if err != nil {
				return Rule{}, fmt.Errorf("fault: rule %q: %v", rs, err)
			}
		}
	}
	if (r.Kind == Delay || r.Kind == Stall) && r.Cycles == 0 {
		return Rule{}, fmt.Errorf("fault: rule %q: %s requires cycles=N", rs, r.Kind)
	}
	return r, nil
}

// matches reports whether the rule's pattern selects the site name.
func (r Rule) matches(name string) bool {
	ps := strings.Split(r.Pattern, ".")
	ns := strings.Split(name, ".")
	for i, p := range ps {
		if p == "*" && i == len(ps)-1 {
			return len(ns) > i // trailing * swallows the remainder
		}
		if i >= len(ns) || (p != "*" && p != ns[i]) {
			return false
		}
	}
	return len(ns) == len(ps)
}

// Injector resolves fault sites against a plan. A nil Injector is valid and
// hands out nil Sites, so callers wire it unconditionally.
type Injector struct {
	eng   *sim.Engine
	plan  *Plan
	sites map[string]*Site
}

// NewInjector builds an injector for a plan. A nil or empty plan returns a
// nil injector: injection fully disabled, zero cost.
func NewInjector(eng *sim.Engine, plan *Plan) *Injector {
	if plan == nil || len(plan.Rules) == 0 {
		return nil
	}
	return &Injector{eng: eng, plan: plan, sites: make(map[string]*Site)}
}

// Site resolves the fault site with the given name. It returns nil — the
// zero-cost disabled form — when the injector is nil or no plan rule matches
// the name. Resolving the same name twice returns the same Site.
func (inj *Injector) Site(name string) *Site {
	if inj == nil {
		return nil
	}
	if s, ok := inj.sites[name]; ok {
		return s
	}
	var s *Site
	seed := inj.plan.Seed
	for _, r := range inj.plan.Rules {
		if !r.matches(name) {
			continue
		}
		if s == nil {
			s = &Site{name: name, eng: inj.eng}
		}
		s.rules = append(s.rules, siteRule{Rule: r})
		seed ^= r.Seed
	}
	if s != nil {
		s.rng = *sim.NewRNG(mix(seed, name))
	}
	inj.sites[name] = s
	return s
}

// SiteOn resolves a fault site like Site but binds its stall timing to the
// given engine. Components owned by a shard resolve their sites against
// their shard's engine, so stall windows are measured on the clock that
// actually drives the site; with a single shared engine SiteOn is
// equivalent to Site.
func (inj *Injector) SiteOn(name string, eng *sim.Engine) *Site {
	s := inj.Site(name)
	if s != nil {
		s.eng = eng
	}
	return s
}

// Sites returns the names of all resolved sites that have at least one rule,
// in sorted order (for diagnostics).
func (inj *Injector) Sites() []string {
	if inj == nil {
		return nil
	}
	var names []string
	for name, s := range inj.sites {
		if s != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// CaptureState records every resolved site's deterministic progress: its
// RNG stream position, hang/stall condition and per-rule trigger counters,
// sorted by site name. Restoring it into a fresh injector built from the
// same plan resumes the exact fault sequence mid-stream.
func (inj *Injector) CaptureState() *ckpt.FaultState {
	if inj == nil {
		return nil
	}
	st := &ckpt.FaultState{}
	for _, name := range inj.Sites() {
		s := inj.sites[name]
		ss := ckpt.FaultSiteState{
			Name:       name,
			RNG:        s.rng.State(),
			Hung:       s.hung,
			StallUntil: uint64(s.stallUntil),
		}
		for i := range s.rules {
			ss.Rules = append(ss.Rules, ckpt.FaultRuleState{Seen: s.rules[i].seen, Fired: s.rules[i].fired})
		}
		st.Sites = append(st.Sites, ss)
	}
	return st
}

// RestoreState overlays captured site progress. Every snapshot site must
// resolve against this injector's plan with the same rule count — anything
// else means the snapshot was taken under a different fault plan.
func (inj *Injector) RestoreState(st *ckpt.FaultState) error {
	if st == nil {
		return nil
	}
	if inj == nil {
		if len(st.Sites) == 0 {
			return nil
		}
		return &ckpt.MismatchError{Field: "fault plan", Got: fmt.Sprintf("%d sites", len(st.Sites)), Want: "no injector"}
	}
	for _, ss := range st.Sites {
		s := inj.Site(ss.Name)
		if s == nil {
			return &ckpt.MismatchError{Field: "fault site " + ss.Name, Got: "present", Want: "no matching rule"}
		}
		if len(ss.Rules) != len(s.rules) {
			return &ckpt.MismatchError{Field: "fault site " + ss.Name + " rule count",
				Got: fmt.Sprint(len(ss.Rules)), Want: fmt.Sprint(len(s.rules))}
		}
		s.rng.SetState(ss.RNG)
		s.hung = ss.Hung
		s.stallUntil = sim.Time(ss.StallUntil)
		for i := range s.rules {
			s.rules[i].seen = ss.Rules[i].Seen
			s.rules[i].fired = ss.Rules[i].Fired
		}
	}
	return nil
}

// String summarizes the active sites and their fired-fault counts.
func (inj *Injector) String() string {
	if inj == nil {
		return "fault injection disabled"
	}
	var b strings.Builder
	for _, name := range inj.Sites() {
		s := inj.sites[name]
		fmt.Fprintf(&b, "%s:", name)
		for _, r := range s.rules {
			fmt.Fprintf(&b, " %s(fired %d)", r.Kind, r.fired)
		}
		if s.hung {
			b.WriteString(" HUNG")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// mix folds a name into a seed (FNV-1a over the name, xored into the seed and
// scrambled) so sites draw independent streams.
func mix(seed uint64, name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	z := seed ^ h
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ z>>31
}

// siteRule is a rule plus its per-site trigger state.
type siteRule struct {
	Rule
	seen  uint64 // events observed at the site
	fired uint64 // times this rule has triggered
}

// Site is one named injection point. The nil Site is the disabled form: every
// method no-ops and allocates nothing.
type Site struct {
	name  string
	eng   *sim.Engine
	rng   sim.RNG
	rules []siteRule

	hung       bool
	stallUntil sim.Time
}

// Name returns the site's registered name.
func (s *Site) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Fate is the outcome of consulting a site for one transfer.
type Fate struct {
	// Drop: the transfer vanishes (the site may be hung; see Site.Hung).
	Drop bool
	// Corrupt: deliver, but with a checksum-detectable corruption.
	Corrupt bool
	// Extra latency to add to the transfer.
	Extra sim.Time
}

// Transfer consults the site's drop/corrupt/delay/stall/hang rules for one
// transfer event and returns its fate. The zero Fate (nil site, or no rule
// triggered) means the transfer proceeds unharmed.
func (s *Site) Transfer() (f Fate) {
	if s == nil {
		return
	}
	if s.hung {
		f.Drop = true
		return
	}
	if s.eng != nil && s.stallUntil > s.eng.Now() {
		f.Extra = s.stallUntil - s.eng.Now()
	}
	for i := range s.rules {
		r := &s.rules[i]
		switch r.Kind {
		case Flip, Flip2:
			continue // memory rules; see FlipBits
		}
		if !s.trigger(r) {
			continue
		}
		switch r.Kind {
		case Drop:
			f.Drop = true
		case Corrupt:
			f.Corrupt = true
		case Delay:
			f.Extra += r.Cycles
		case Stall:
			if s.eng != nil {
				s.stallUntil = s.eng.Now() + r.Cycles
			}
			f.Extra += r.Cycles
		case Hang:
			s.hung = true
			f.Drop = true
		}
	}
	return
}

// FlipBits consults the site's memory rules for one access and returns the
// number of bit errors to model: 0 (clean), 1 (SECDED corrects) or 2 (SECDED
// detects, uncorrectable). Double-bit rules take precedence.
func (s *Site) FlipBits() int {
	if s == nil {
		return 0
	}
	bits := 0
	for i := range s.rules {
		r := &s.rules[i]
		switch r.Kind {
		case Flip:
			if bits < 1 && s.trigger(r) {
				bits = 1
			}
		case Flip2:
			if s.trigger(r) {
				bits = 2
			}
		}
	}
	return bits
}

// Hung reports whether a Hang rule has triggered at this site.
func (s *Site) Hung() bool { return s != nil && s.hung }

// trigger advances the rule's event counters and RNG and reports whether it
// fires for this event.
func (s *Site) trigger(r *siteRule) bool {
	r.seen++
	if r.seen <= r.After {
		return false
	}
	if r.N > 0 && r.fired >= r.N {
		return false
	}
	if r.P < 1 && s.rng.Float64() >= r.P {
		return false
	}
	r.fired++
	return true
}
