package fault

import (
	"strings"
	"testing"

	"smappic/internal/sim"
)

func TestParseGrammar(t *testing.T) {
	p, err := Parse("pcie.*.drop:p=0.01,seed=7;node0.dram.flip:p=0.001;node1.bridge.delay:cycles=50,n=3,after=10", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(p.Rules))
	}
	r := p.Rules[0]
	if r.Pattern != "pcie.*" || r.Kind != Drop || r.P != 0.01 || r.Seed != 7 {
		t.Fatalf("rule 0 = %+v", r)
	}
	r = p.Rules[2]
	if r.Kind != Delay || r.Cycles != 50 || r.N != 3 || r.After != 10 {
		t.Fatalf("rule 2 = %+v", r)
	}
	if p.Seed != 1 {
		t.Fatalf("plan seed = %d", p.Seed)
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	if p, err := Parse("", 1); p != nil || err != nil {
		t.Fatalf("empty spec: %v %v", p, err)
	}
	if p, err := Parse("  ;  ", 1); p != nil || err != nil {
		t.Fatalf("blank rules: %v %v", p, err)
	}
	for _, bad := range []string{
		"pcie.ep0.link",            // no kind
		"pcie.ep0.link.zap:p=0.1",  // unknown kind
		"pcie.ep0.link.drop:p=1.5", // p out of range
		"pcie.ep0.link.drop:p",     // not key=value
		"pcie.ep0.link.drop:q=1",   // unknown key
		".drop",                    // empty pattern
		"node0.dram.delay:p=1",     // delay without cycles
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestPatternMatching(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"pcie.ep2.link", "pcie.ep2.link", true},
		{"pcie.ep2.link", "pcie.ep1.link", false},
		{"pcie.*.link", "pcie.ep1.link", true},
		{"pcie.*", "pcie.ep1.link", true}, // trailing * swallows remainder
		{"pcie.*", "pcie.ep1", true},
		{"pcie.*", "node0.dram", false},
		{"*.dram", "node0.dram", true},
		{"*.dram", "node0.dram.x", false},
		{"node0.dram", "node0.dram.x", false},
	}
	for _, c := range cases {
		if got := (Rule{Pattern: c.pattern}).matches(c.name); got != c.want {
			t.Errorf("matches(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var inj *Injector
	s := inj.Site("anything")
	if s != nil {
		t.Fatal("nil injector handed out a site")
	}
	if f := s.Transfer(); f.Drop || f.Corrupt || f.Extra != 0 {
		t.Fatal("nil site injected a fault")
	}
	if s.FlipBits() != 0 || s.Hung() || s.Name() != "" {
		t.Fatal("nil site not inert")
	}
	if NewInjector(sim.NewEngine(), nil) != nil {
		t.Fatal("nil plan should produce a nil injector")
	}
}

func TestUnmatchedSiteIsNil(t *testing.T) {
	inj := NewInjector(sim.NewEngine(), MustParse("pcie.*.drop:p=1", 1))
	if s := inj.Site("node0.dram"); s != nil {
		t.Fatal("unmatched site should be nil")
	}
	if s := inj.Site("pcie.ep0.link"); s == nil {
		t.Fatal("matched site missing")
	}
	if inj.Site("pcie.ep0.link") != inj.Site("pcie.ep0.link") {
		t.Fatal("site resolution not idempotent")
	}
}

func TestZeroAllocHotPath(t *testing.T) {
	var nilSite *Site
	inj := NewInjector(sim.NewEngine(), MustParse("pcie.*.drop:p=0.5;pcie.*.flip:p=0.5", 1))
	live := inj.Site("pcie.ep0.link")
	if n := testing.AllocsPerRun(1000, func() {
		nilSite.Transfer()
		nilSite.FlipBits()
		live.Transfer()
		live.FlipBits()
	}); n != 0 {
		t.Fatalf("hot path allocates %.1f/op, want 0", n)
	}
}

func TestDeterministicSequences(t *testing.T) {
	seq := func() []bool {
		inj := NewInjector(sim.NewEngine(), MustParse("pcie.*.drop:p=0.3", 42))
		s := inj.Site("pcie.ep1.link")
		out := make([]bool, 200)
		for i := range out {
			out[i] = s.Transfer().Drop
		}
		return out
	}
	a, b := seq(), seq()
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences diverge at %d", i)
		}
		if a[i] {
			drops++
		}
	}
	if drops < 30 || drops > 90 {
		t.Fatalf("p=0.3 fired %d/200 times", drops)
	}

	// Different seed -> different sequence; different site name -> different
	// stream from the same seed.
	inj2 := NewInjector(sim.NewEngine(), MustParse("pcie.*.drop:p=0.3", 43))
	s2 := inj2.Site("pcie.ep1.link")
	same := 0
	for i := range a {
		if s2.Transfer().Drop == a[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seed change did not alter the sequence")
	}
}

func TestSiteResolutionOrderIndependent(t *testing.T) {
	plan := MustParse("pcie.*.drop:p=0.5", 9)
	first := func(order []string) bool {
		inj := NewInjector(sim.NewEngine(), plan)
		for _, n := range order {
			inj.Site(n)
		}
		return inj.Site("pcie.ep0.link").Transfer().Drop
	}
	a := first([]string{"pcie.ep0.link", "pcie.ep1.link"})
	b := first([]string{"pcie.ep1.link", "pcie.ep0.link"})
	if a != b {
		t.Fatal("site RNG depends on resolution order")
	}
}

func TestAfterAndNCaps(t *testing.T) {
	inj := NewInjector(sim.NewEngine(), MustParse("x.drop:after=5,n=2", 1))
	s := inj.Site("x")
	drops := 0
	for i := 0; i < 20; i++ {
		f := s.Transfer()
		if f.Drop {
			drops++
			if i < 5 {
				t.Fatalf("fired at event %d, before after=5", i)
			}
		}
	}
	if drops != 2 {
		t.Fatalf("fired %d times, want n=2", drops)
	}
}

func TestStallWindow(t *testing.T) {
	eng := sim.NewEngine()
	inj := NewInjector(eng, MustParse("link.stall:cycles=100,n=1", 1))
	s := inj.Site("link")
	if f := s.Transfer(); f.Extra != 100 {
		t.Fatalf("stall trigger Extra = %d, want 100", f.Extra)
	}
	// Mid-window transfers wait out the remainder.
	eng.Schedule(40, func() {
		if f := s.Transfer(); f.Extra != 60 {
			t.Errorf("mid-window Extra = %d, want 60", f.Extra)
		}
	})
	eng.Schedule(200, func() {
		if f := s.Transfer(); f.Extra != 0 {
			t.Errorf("post-window Extra = %d, want 0", f.Extra)
		}
	})
	eng.Run()
}

func TestHangIsPermanent(t *testing.T) {
	inj := NewInjector(sim.NewEngine(), MustParse("ep.hang:after=3", 1))
	s := inj.Site("ep")
	for i := 0; i < 3; i++ {
		if s.Transfer().Drop {
			t.Fatalf("hung at event %d, before after=3", i)
		}
	}
	for i := 0; i < 5; i++ {
		if !s.Transfer().Drop {
			t.Fatal("hung site let a transfer through")
		}
	}
	if !s.Hung() {
		t.Fatal("Hung() false after hang")
	}
	if !strings.Contains(inj.String(), "HUNG") {
		t.Fatal("injector summary missing HUNG marker")
	}
}

func TestFlipBitsPrecedence(t *testing.T) {
	inj := NewInjector(sim.NewEngine(), MustParse("m.flip:p=1;m.flip2:p=1,after=2", 1))
	s := inj.Site("m")
	if s.FlipBits() != 1 || s.FlipBits() != 1 {
		t.Fatal("single-bit flips missing before flip2 becomes eligible")
	}
	if s.FlipBits() != 2 {
		t.Fatal("double-bit rule should take precedence")
	}
}
