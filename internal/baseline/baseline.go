// Package baseline models the architecture-modeling tools SMAPPIC is
// compared against in §4.5 (Fig. 13, Table 3): Sniper, gem5, Verilator and
// FireSim, plus the SiFive Freedom U740 silicon used as the ground-truth
// execution platform. Each tool is reduced to what the cost comparison
// observes: an effective simulation rate, host requirements, and how many
// independent prototype instances share one host.
package baseline

import (
	"fmt"

	"smappic/internal/cloud"
)

// Tool identifies a modeling approach.
type Tool string

const (
	SMAPPIC       Tool = "SMAPPIC"
	FireSimSingle Tool = "FireSim single-node"
	FireSimSuper  Tool = "FireSim supernode"
	Sniper        Tool = "Sniper"
	Gem5          Tool = "gem5"
	Verilator     Tool = "Verilator"
	SiliconU740   Tool = "SiFive U740"
)

// Model captures a tool's cost-relevant behavior.
type Model struct {
	Tool Tool
	// RateIPS is the effective simulated-instruction rate (per second).
	RateIPS float64
	// InstancesPerHost is how many independent benchmark runs share one
	// host (SMAPPIC's 1x4x2 packs four prototypes per FPGA; FireSim
	// supernode packs four as well but at reduced frequency).
	InstancesPerHost int
	// Requirements select the cheapest suitable EC2 instance (Table 3).
	Requirements cloud.Requirements
	// Notes records the paper's caveats (ISA substitutions, failures).
	Notes string
}

// Models returns the evaluated tool set with calibrated rates.
//
// Rates derive from the paper's anchors: SMAPPIC runs at 100 MHz with the
// Ariane's ~0.5 IPC on SPEC-like code (50 MIPS); single-node FireSim is
// comparable in frequency ("similar frequencies") but packs one instance
// per FPGA; supernode FireSim packs four at ~0.4x frequency; Sniper is a
// parallel ~5 MIPS simulator; gem5's detailed model is ~5 KIPS; Verilator
// simulates RTL at ~6 kHz (the paper's 65 s vs 4 ms HelloWorld anchor).
func Models() []Model {
	return []Model{
		{SMAPPIC, 50e6, 4, cloud.Requirements{VCPUs: 1, MemoryGB: 8, FPGAs: 1}, "1x4x2 configuration, four independent prototypes per FPGA"},
		{FireSimSingle, 50e6, 1, cloud.Requirements{VCPUs: 1, MemoryGB: 8, FPGAs: 1}, "one quad-core RocketChip, no network simulation"},
		{FireSimSuper, 20e6, 4, cloud.Requirements{VCPUs: 1, MemoryGB: 8, FPGAs: 1}, "four single-core instances, network simulated, lower frequency"},
		{Sniper, 5e6, 1, cloud.Requirements{VCPUs: 2, MemoryGB: 8}, "x86-64 binaries (RISC-V support did not run); no perlbench (forks unsupported)"},
		{Gem5, 5e3, 1, cloud.Requirements{VCPUs: 1, MemoryGB: 64}, "mcf requires a 350 GB host"},
		{Verilator, 6.15e3, 1, cloud.Requirements{VCPUs: 1, MemoryGB: 8}, "RTL simulation"},
		{SiliconU740, 720e6, 1, cloud.Requirements{}, "HiFive Unmatched, 1.2 GHz, baseline silicon"},
	}
}

// ModelFor returns the model of one tool.
func ModelFor(t Tool) Model {
	for _, m := range Models() {
		if m.Tool == t {
			return m
		}
	}
	panic(fmt.Sprintf("baseline: unknown tool %q", t))
}

// Benchmark is one SPECint 2017 component with its "test"-input dynamic
// instruction count (billions), reconstructed from the U740 runtimes.
type Benchmark struct {
	Name      string
	GInstr    float64 // dynamic instructions, billions
	Gem5MemGB int     // host memory gem5 needed
	SniperOK  bool    // perlbench forks break Sniper
}

// SPECint2017 lists the paper's benchmark suite ("test" inputs).
var SPECint2017 = []Benchmark{
	{"deepsjeng", 85, 64, true},
	{"exchange2", 4, 64, true},
	{"gcc", 60, 64, true},
	{"leela", 6, 64, true},
	{"mcf", 210, 350, true},
	{"omnetpp", 90, 64, true},
	{"perlbench", 55, 64, false},
	{"x264", 150, 64, true},
	{"xalancbmk", 130, 64, true},
	{"xz", 300, 350, true},
}

// TotalGInstr sums the suite.
func TotalGInstr() float64 {
	var t float64
	for _, b := range SPECint2017 {
		t += b.GInstr
	}
	return t
}

// Cost returns the dollars to run one benchmark on one tool: runtime at the
// tool's rate, on the cheapest suitable instance, divided across the
// instances sharing the host.
func Cost(m Model, b Benchmark) (dollars float64, hours float64, err error) {
	if m.Tool == Sniper && !b.SniperOK {
		return 0, 0, fmt.Errorf("baseline: Sniper cannot run %s (forks)", b.Name)
	}
	req := m.Requirements
	if m.Tool == Gem5 {
		req.MemoryGB = b.Gem5MemGB
	}
	inst, err := cloud.CheapestFor(req)
	if err != nil {
		return 0, 0, err
	}
	seconds := b.GInstr * 1e9 / m.RateIPS
	hours = seconds / 3600
	dollars = hours * inst.PricePerHr / float64(m.InstancesPerHost)
	return dollars, hours, nil
}

// SuiteCost sums Cost over the SPECint suite, skipping benchmarks the tool
// cannot run (as the paper does for Sniper/perlbench).
func SuiteCost(m Model) (dollars float64, skipped []string) {
	for _, b := range SPECint2017 {
		d, _, err := Cost(m, b)
		if err != nil {
			skipped = append(skipped, b.Name)
			continue
		}
		dollars += d
	}
	return dollars, skipped
}

// HelloWorld anchors the Verilator comparison of §4.5: the example's cycle
// count, measured on the prototype, converts to both tools' wall-clock.
type HelloWorld struct {
	Cycles uint64
}

// SMAPPICSeconds is the prototype's wall-clock at 100 MHz.
func (h HelloWorld) SMAPPICSeconds() float64 { return float64(h.Cycles) / 100e6 }

// VerilatorSeconds is the RTL simulator's wall-clock at its modeled rate.
func (h HelloWorld) VerilatorSeconds() float64 {
	return float64(h.Cycles) / ModelFor(Verilator).RateIPS
}

// CostEfficiencyRatio returns how much more cost-efficient SMAPPIC is than
// Verilator on this run (the paper derives ~1600x): the speed ratio divided
// by the price ratio of their hosts, with SMAPPIC sharing the FPGA 4-ways.
func (h HelloWorld) CostEfficiencyRatio() float64 {
	speed := h.VerilatorSeconds() / h.SMAPPICSeconds()
	smappicHost, _ := cloud.CheapestFor(ModelFor(SMAPPIC).Requirements)
	verilatorHost, _ := cloud.CheapestFor(ModelFor(Verilator).Requirements)
	price := (smappicHost.PricePerHr / 4) / verilatorHost.PricePerHr
	return speed / price
}
