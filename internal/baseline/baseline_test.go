package baseline

import (
	"math"
	"testing"
)

func TestSMAPPICFourTimesCheaperThanFireSimSingle(t *testing.T) {
	// Paper §4.5: "Compared to a single-node FireSim configuration,
	// SMAPPIC shows about four times better cost-efficiency."
	sm, _ := SuiteCost(ModelFor(SMAPPIC))
	fs, _ := SuiteCost(ModelFor(FireSimSingle))
	ratio := fs / sm
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("FireSim/SMAPPIC cost ratio = %.2f, want ~4", ratio)
	}
}

func TestSupernodeBetweenSMAPPICAndSingleNode(t *testing.T) {
	sm, _ := SuiteCost(ModelFor(SMAPPIC))
	super, _ := SuiteCost(ModelFor(FireSimSuper))
	single, _ := SuiteCost(ModelFor(FireSimSingle))
	if !(sm < super && super < single) {
		t.Fatalf("ordering wrong: SMAPPIC=%.2f supernode=%.2f single=%.2f", sm, super, single)
	}
	// Paper's SPECint annotations: single 11.56, supernode 8.24 (~0.71x).
	if r := super / single; r < 0.6 || r > 0.85 {
		t.Fatalf("supernode/single = %.2f, want ~0.71", r)
	}
}

func TestSuiteTotalsNearPaperAnnotations(t *testing.T) {
	single, _ := SuiteCost(ModelFor(FireSimSingle))
	super, _ := SuiteCost(ModelFor(FireSimSuper))
	// Fig. 13 annotates the SPECint totals: 11.56 and 8.24 dollars.
	if math.Abs(single-11.56) > 3 {
		t.Errorf("FireSim single suite cost $%.2f, paper $11.56", single)
	}
	if math.Abs(super-8.24) > 3 {
		t.Errorf("FireSim supernode suite cost $%.2f, paper $8.24", super)
	}
}

func TestGem5OrdersOfMagnitudeWorse(t *testing.T) {
	g, _ := SuiteCost(ModelFor(Gem5))
	sn, _ := SuiteCost(ModelFor(Sniper))
	if g/sn < 1e3 {
		t.Fatalf("gem5/Sniper cost ratio = %.0f, paper says 4-5 orders of magnitude over the cheapest bars", g/sn)
	}
}

func TestSniperSkipsPerlbench(t *testing.T) {
	_, skipped := SuiteCost(ModelFor(Sniper))
	if len(skipped) != 1 || skipped[0] != "perlbench" {
		t.Fatalf("Sniper skipped %v, want [perlbench]", skipped)
	}
}

func TestGem5McfNeedsBigHost(t *testing.T) {
	var mcf Benchmark
	for _, b := range SPECint2017 {
		if b.Name == "mcf" {
			mcf = b
		}
	}
	dollarsMcf, hoursMcf, err := Cost(ModelFor(Gem5), mcf)
	if err != nil {
		t.Fatal(err)
	}
	if hoursMcf < 100 {
		t.Errorf("gem5 mcf only %f hours; should be enormous", hoursMcf)
	}
	// mcf runs on the 384 GB instance at a higher rate than r5.2xl.
	var leela Benchmark
	for _, b := range SPECint2017 {
		if b.Name == "leela" {
			leela = b
		}
	}
	dollarsLeela, _, _ := Cost(ModelFor(Gem5), leela)
	if dollarsMcf <= dollarsLeela {
		t.Error("mcf (big memory, long run) should cost more than leela")
	}
}

func TestHelloWorldAnchorsVerilator(t *testing.T) {
	// §4.5: Verilator takes 65 s where SMAPPIC takes 4 ms, making SMAPPIC
	// ~1600x more cost-efficient.
	h := HelloWorld{Cycles: 400_000} // 4 ms at 100 MHz
	if s := h.SMAPPICSeconds(); math.Abs(s-0.004) > 1e-9 {
		t.Fatalf("SMAPPIC seconds = %v", s)
	}
	if v := h.VerilatorSeconds(); v < 55 || v > 75 {
		t.Fatalf("Verilator seconds = %.1f, want ~65", v)
	}
	if r := h.CostEfficiencyRatio(); r < 1200 || r > 2000 {
		t.Fatalf("cost-efficiency ratio = %.0f, want ~1600", r)
	}
}

func TestSuiteHasTenBenchmarks(t *testing.T) {
	if len(SPECint2017) != 10 {
		t.Fatalf("%d benchmarks", len(SPECint2017))
	}
	if TotalGInstr() < 500 || TotalGInstr() > 3000 {
		t.Fatalf("suite total %.0f Ginstr implausible", TotalGInstr())
	}
}

func TestSiliconFastest(t *testing.T) {
	si := ModelFor(SiliconU740)
	for _, m := range Models() {
		if m.Tool != SiliconU740 && m.RateIPS >= si.RateIPS {
			t.Errorf("%s rate %.0f >= silicon %.0f", m.Tool, m.RateIPS, si.RateIPS)
		}
	}
}

func TestUnknownToolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ModelFor(bogus) did not panic")
		}
	}()
	ModelFor(Tool("bogus"))
}
