package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift64*). Models use it instead of math/rand so that simulations are
// reproducible across Go versions and independent of global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (a zero seed is remapped, since
// xorshift has an all-zero fixed point).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// State exposes the generator's internal state for checkpointing. Together
// with SetState it round-trips the stream exactly: a generator restored to a
// captured state produces the same tail of values the original would have.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state captured with State. Unlike NewRNG it performs
// no zero remapping: a captured state is never zero (xorshift64* cannot
// reach zero from a nonzero state, and NewRNG never starts at zero).
func (r *RNG) SetState(state uint64) { r.state = state }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
