package sim

import "fmt"

// Process is a coroutine running against an Engine. Each Process has its own
// goroutine; the engine resumes it at scheduled times, and the process yields
// back by calling Wait, WaitUntil or one of the blocking helpers. Exactly one
// of {engine, any process} runs at a time, so models stay deterministic and
// need no locking among themselves.
//
// A Process is the execution vehicle for anything with sequential control
// flow: workload threads, the RISC-V core's instruction loop, test drivers.
type Process struct {
	eng    *Engine
	name   string
	resume chan struct{}
	yield  chan struct{}
	done   bool
	err    any // panic value from the process body, re-raised in the engine

	// dispatchFn and wakeFn are bound once at creation so the hot resume
	// paths (Wait, Call, Suspend) schedule without allocating a closure
	// per event.
	dispatchFn func()
	wakeFn     func()
	armed      bool // a Suspend/Call completion is outstanding
}

// Go starts fn as a new process at the current simulation time. fn receives
// the Process handle and must use it for all time-consuming operations.
func Go(eng *Engine, name string, fn func(*Process)) *Process {
	p := &Process{
		eng:    eng,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	p.dispatchFn = p.dispatch
	p.wakeFn = p.wake
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				p.err = r
			}
			p.done = true
			p.yield <- struct{}{}
		}()
		fn(p)
	}()
	eng.Schedule(0, p.dispatchFn)
	return p
}

// dispatch hands control to the process goroutine and blocks the engine until
// the process yields or finishes.
func (p *Process) dispatch() {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
	if p.err != nil {
		panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, p.err))
	}
}

// wake is the shared completion callback handed out by Suspend and Call. A
// process can have at most one completion outstanding (it is parked while it
// waits), so one bound function per process suffices; the armed flag catches
// a completion invoked twice.
func (p *Process) wake() {
	if !p.armed {
		panic(fmt.Sprintf("sim: process %q woken twice", p.name))
	}
	p.armed = false
	p.eng.Schedule(0, p.dispatchFn)
}

// Engine returns the engine this process runs on.
func (p *Process) Engine() *Engine { return p.eng }

// Name returns the process name (for diagnostics).
func (p *Process) Name() string { return p.name }

// Now returns the current simulation time.
func (p *Process) Now() Time { return p.eng.Now() }

// Done reports whether the process body has returned.
func (p *Process) Done() bool { return p.done }

// Wait suspends the process for d cycles.
func (p *Process) Wait(d Time) {
	p.eng.Schedule(d, p.dispatchFn)
	p.block()
}

// WaitUntil suspends the process until absolute time t (no-op if t <= now).
func (p *Process) WaitUntil(t Time) {
	if t <= p.eng.Now() {
		return
	}
	p.eng.At(t, p.dispatchFn)
	p.block()
}

// block yields control back to the engine until dispatch resumes us.
func (p *Process) block() {
	p.yield <- struct{}{}
	<-p.resume
}

// Hop moves the process to another shard: after delay cycles it resumes on
// dstEng, delivered through net so the crossing is ordered canonically with
// all other cross-shard traffic. src and dst are the CrossNet shard ids;
// the call must be made from shard src's execution context, and delay must
// be at least the group lookahead. With a SerialNet, dstEng is the same
// engine and Hop degenerates to a canonically-ordered Wait.
func (p *Process) Hop(net CrossNet, src, dst int, dstEng *Engine, delay Time) {
	net.Send(src, dst, p.eng.Now()+delay, func() {
		// Runs on dst's goroutine; the process itself is parked, and the
		// window barrier orders this write after the park below.
		p.eng = dstEng
		p.dispatch()
	})
	p.block()
}

// Suspend parks the process indefinitely. The returned wake function
// reschedules it; it must be called exactly once per Suspend, from any event
// callback. Typical use: issue a request to a model, Suspend, and have the
// model's completion event call wake. The wake function is the process's
// pooled completion (no allocation); waking twice panics.
func (p *Process) Suspend() (wake func()) {
	p.armed = true
	return p.wakeFn
}

// Park suspends until wake is invoked. It is split from Suspend so callers
// can publish the wake function before blocking.
func (p *Process) Park() { p.block() }

// Call issues an asynchronous operation and blocks until it completes.
// start receives a completion callback; the model must invoke it exactly once
// (possibly immediately). Call returns at the simulation time of completion.
func (p *Process) Call(start func(done func())) {
	p.armed = true
	// The engine cannot execute the dispatch the completion schedules
	// before we yield below, even when the completion is synchronous,
	// because the engine is blocked waiting on this process.
	start(p.wakeFn)
	p.block()
}
