package sim

import "testing"

func TestTimerCancelSkipsEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.After(100, func() { fired = true })
	e.Schedule(10, func() {})
	tm.Cancel()
	end := e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if end != 10 {
		t.Fatalf("cancelled timer advanced the clock: end=%d, want 10", end)
	}
	if e.Executed() != 1 {
		t.Fatalf("executed=%d, want 1 (cancelled event must not count)", e.Executed())
	}
}

func TestTimerFiresWhenNotCancelled(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(50, func() { fired = true })
	if end := e.Run(); !fired || end != 50 {
		t.Fatalf("fired=%v end=%d, want true 50", fired, end)
	}
}

func TestTimerCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine()
	n := 0
	tm := e.After(5, func() { n++ })
	e.Run()
	tm.Cancel() // must not panic or disturb anything
	tm.Cancel()
	var nilTimer *Timer
	nilTimer.Cancel()
	if n != 1 {
		t.Fatalf("fired %d times, want 1", n)
	}
}

func TestWatchdogFiresOnStall(t *testing.T) {
	e := NewEngine()
	inflight := 0
	var fired bool
	NewWatchdog(e, 100, func() bool { return inflight > 0 }, func() { fired = true })
	// A request goes in flight but its completion event is lost: the queue
	// drains while the gauge stays up.
	e.Schedule(10, func() { inflight = 1 })
	e.Run()
	if !fired {
		t.Fatal("watchdog did not fire on a wedged in-flight transaction")
	}
}

func TestWatchdogQuiesceDisarms(t *testing.T) {
	e := NewEngine()
	fired := false
	wd := NewWatchdog(e, 100, func() bool { return false }, func() { fired = true })
	e.Schedule(10, func() {})
	end := e.Run()
	if fired {
		t.Fatal("watchdog fired on a cleanly quiesced run")
	}
	if wd.Fired() {
		t.Fatal("Fired() true without a stall")
	}
	// The watchdog re-arms once (progress was made in its first interval),
	// sees no progress and nothing in flight, then disarms: the run must not
	// be kept alive indefinitely.
	if end > 300 {
		t.Fatalf("watchdog kept the run alive to %d", end)
	}
}

func TestWatchdogRearmsWhileProgressing(t *testing.T) {
	e := NewEngine()
	fired := false
	inflight := true
	NewWatchdog(e, 100, func() bool { return inflight }, func() { fired = true })
	// Steady activity for 10 intervals, then clean quiesce.
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 50 {
			e.Schedule(20, tick)
		} else {
			inflight = false
		}
	}
	e.Schedule(20, tick)
	e.Run()
	if fired {
		t.Fatal("watchdog fired despite steady forward progress")
	}
}

func TestWatchdogSparsePendingIsNotStall(t *testing.T) {
	e := NewEngine()
	fired := false
	done := false
	NewWatchdog(e, 100, func() bool { return !done }, func() { fired = true })
	// One event far in the future: in flight, no progress per interval, but
	// the pending queue proves the system will move again.
	e.Schedule(1000, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("sparse event did not run")
	}
	if fired {
		t.Fatal("watchdog fired while events were still pending")
	}
}

func TestWatchdogStop(t *testing.T) {
	e := NewEngine()
	fired := false
	inflight := true
	wd := NewWatchdog(e, 100, func() bool { return inflight }, func() { fired = true })
	e.Schedule(10, func() { wd.Stop() })
	e.Run()
	if fired {
		t.Fatal("stopped watchdog fired")
	}
}
