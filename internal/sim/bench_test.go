package sim

import "testing"

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%16), func() {})
		if i%1024 == 0 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkProcessContextSwitch(b *testing.B) {
	e := NewEngine()
	Go(e, "bench", func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Wait(1)
		}
	})
	b.ResetTimer()
	e.Run()
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkStatsCounter(b *testing.B) {
	var s Stats
	c := s.Counter("bench.counter")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
