package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Chrome trace-event export: the retained ring buffer renders as a JSON
// document loadable by chrome://tracing and Perfetto (ui.perfetto.dev).
// Each distinct track prefix up to the first "." becomes a process
// ("node0", "node1", ...) and each full track name a thread within it
// ("node0.tile3", "node0.bridge"), so multi-node prototypes display one
// swimlane group per node. Timestamps are simulation cycles presented as
// trace microseconds (1 cycle == 1 us on the viewer's axis).
//
// The export is deterministic: ids are assigned from sorted name sets and
// events appear in ring-buffer order, so two same-seed runs produce
// byte-identical files.

// defaultTrack is the timeline for events emitted without a track.
const defaultTrack = "sim"

// chromeEvent is one trace-event JSON record. Field order is fixed by the
// struct, keeping output deterministic.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   uint64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// procOf maps a track name to its process (swimlane group) name.
func procOf(track string) string {
	if i := strings.IndexByte(track, '.'); i > 0 {
		return track[:i]
	}
	return track
}

// WriteChrome writes the retained events as a Chrome trace-event JSON
// document. A nil tracer writes a valid empty trace.
func (t *Tracer) WriteChrome(w io.Writer) error {
	events := t.Events()

	// Assign deterministic pids/tids from the sorted name sets.
	trackSet := make(map[string]struct{})
	for _, ev := range events {
		track := ev.Track
		if track == "" {
			track = defaultTrack
		}
		trackSet[track] = struct{}{}
	}
	tracks := make([]string, 0, len(trackSet))
	for tr := range trackSet {
		tracks = append(tracks, tr)
	}
	sort.Strings(tracks)

	pids := make(map[string]int)
	tids := make(map[string]int)
	var procs []string
	for _, tr := range tracks {
		p := procOf(tr)
		if _, ok := pids[p]; !ok {
			pids[p] = len(pids) + 1
			procs = append(procs, p)
		}
		tids[tr] = len(tids) + 1
	}

	var out []chromeEvent
	for _, p := range procs {
		out = append(out, chromeEvent{
			Name: "process_name", Phase: "M", PID: pids[p],
			Args: map[string]any{"name": p},
		})
	}
	for _, tr := range tracks {
		out = append(out, chromeEvent{
			Name: "thread_name", Phase: "M", PID: pids[procOf(tr)], TID: tids[tr],
			Args: map[string]any{"name": tr},
		})
	}
	for _, ev := range events {
		track := ev.Track
		if track == "" {
			track = defaultTrack
		}
		ce := chromeEvent{
			Cat: ev.Category,
			TS:  uint64(ev.At),
			PID: pids[procOf(track)],
			TID: tids[track],
		}
		if ce.Name = ev.Name; ce.Name == "" {
			ce.Name = ev.Category
		}
		if ev.Message != "" {
			ce.Args = map[string]any{"msg": ev.Message}
		}
		if ev.Dur > 0 {
			ce.Phase = "X"
			ce.Dur = uint64(ev.Dur)
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		out = append(out, ce)
	}

	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ce := range out {
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(out)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", b, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
