package sim

import (
	"fmt"
	"strings"
)

// Tracer records cycle-stamped events into a bounded ring buffer — the
// debugging companion to the Stats counters. It is nil-safe: all methods
// are no-ops on a nil receiver, so models can trace unconditionally and
// pay nothing unless a tracer is installed.
type Tracer struct {
	eng     *Engine
	cap     int
	events  []TraceEvent
	next    int
	wrapped bool
	filter  func(category string) bool
}

// TraceEvent is one recorded occurrence.
type TraceEvent struct {
	At       Time
	Category string
	Message  string
}

// NewTracer creates a tracer holding the last capacity events.
func NewTracer(eng *Engine, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{eng: eng, cap: capacity, events: make([]TraceEvent, 0, capacity)}
}

// SetFilter restricts recording to categories the predicate accepts.
func (t *Tracer) SetFilter(f func(category string) bool) {
	if t != nil {
		t.filter = f
	}
}

// Emit records an event at the current simulation time.
func (t *Tracer) Emit(category, format string, args ...any) {
	if t == nil {
		return
	}
	if t.filter != nil && !t.filter(category) {
		return
	}
	ev := TraceEvent{At: t.eng.Now(), Category: category, Message: fmt.Sprintf(format, args...)}
	if len(t.events) < t.cap {
		t.events = append(t.events, ev)
	} else {
		t.events[t.next] = ev
		t.next = (t.next + 1) % t.cap
		t.wrapped = true
	}
}

// Events returns the recorded events in time order.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		out := make([]TraceEvent, len(t.events))
		copy(out, t.events)
		return out
	}
	out := make([]TraceEvent, 0, t.cap)
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// String renders the retained events, one per line.
func (t *Tracer) String() string {
	var b strings.Builder
	for _, ev := range t.Events() {
		fmt.Fprintf(&b, "%10d %-12s %s\n", ev.At, ev.Category, ev.Message)
	}
	return b.String()
}
