package sim

import (
	"fmt"
	"strings"
)

// Trace categories shared across packages, so filters and exporters see
// consistent labels no matter which subsystem emitted an event.
const (
	CatCoherence = "coherence" // cache protocol messages
	CatMMIO      = "mmio"      // uncacheable device accesses
	CatNoC       = "noc"       // mesh traffic
	CatBridge    = "bridge"    // inter-node bridge activity
	CatMem       = "mem"       // memory controller / DRAM
	CatPCIe      = "pcie"      // inter-FPGA fabric
	CatIRQ       = "irq"       // interrupt delivery
	CatKernel    = "kernel"    // mini-kernel scheduling
)

// Tracer records cycle-stamped events into a bounded ring buffer — the
// debugging companion to the Stats counters. It is nil-safe: all methods
// are no-ops on a nil receiver, so models can trace unconditionally and
// pay nothing unless a tracer is installed. Call sites that format
// arguments should still guard with Enabled() to avoid boxing them for a
// nil tracer.
type Tracer struct {
	eng     *Engine
	cap     int
	events  []TraceEvent
	next    int
	wrapped bool
	filter  func(category string) bool
}

// TraceEvent is one recorded occurrence. Track names the timeline the event
// belongs to ("node0.tile3", "node1.bridge"); an empty track renders on the
// shared "sim" timeline. Dur is non-zero for span events (an operation that
// started Dur cycles before At).
type TraceEvent struct {
	At       Time
	Dur      Time
	Category string
	Track    string
	Name     string
	Message  string
}

// Text returns the human-readable label of the event.
func (ev TraceEvent) Text() string {
	if ev.Message != "" {
		return ev.Message
	}
	return ev.Name
}

// NewTracer creates a tracer holding the last capacity events.
func NewTracer(eng *Engine, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{eng: eng, cap: capacity, events: make([]TraceEvent, 0, capacity)}
}

// Enabled reports whether events will be recorded; callers building
// expensive event payloads should check it first.
func (t *Tracer) Enabled() bool { return t != nil }

// SetFilter restricts recording to categories the predicate accepts.
func (t *Tracer) SetFilter(f func(category string) bool) {
	if t != nil {
		t.filter = f
	}
}

// Emit records a formatted event at the current simulation time on the
// shared timeline.
func (t *Tracer) Emit(category, format string, args ...any) {
	if t == nil {
		return
	}
	t.EmitT("", category, format, args...)
}

// EmitT records a formatted event on a specific track.
func (t *Tracer) EmitT(track, category, format string, args ...any) {
	if t == nil {
		return
	}
	if t.filter != nil && !t.filter(category) {
		return
	}
	t.record(TraceEvent{
		At: t.eng.Now(), Category: category, Track: track,
		Message: fmt.Sprintf(format, args...),
	})
}

// Instant records an unformatted point event — the cheap emission path for
// hot subsystems (no fmt, no argument boxing).
func (t *Tracer) Instant(track, category, name string) {
	if t == nil {
		return
	}
	if t.filter != nil && !t.filter(category) {
		return
	}
	t.record(TraceEvent{At: t.eng.Now(), Category: category, Track: track, Name: name})
}

// Span records an operation that began at start and completed now; trace
// viewers render it as a duration bar on the track.
func (t *Tracer) Span(track, category, name string, start Time) {
	if t == nil {
		return
	}
	if t.filter != nil && !t.filter(category) {
		return
	}
	now := t.eng.Now()
	t.record(TraceEvent{At: start, Dur: now - start, Category: category, Track: track, Name: name})
}

func (t *Tracer) record(ev TraceEvent) {
	if len(t.events) < t.cap {
		t.events = append(t.events, ev)
		return
	}
	t.events[t.next] = ev
	t.next = (t.next + 1) % t.cap
	t.wrapped = true
}

// Events returns the recorded events in emission order.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		out := make([]TraceEvent, len(t.events))
		copy(out, t.events)
		return out
	}
	out := make([]TraceEvent, 0, t.cap)
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// String renders the retained events, one per line.
func (t *Tracer) String() string {
	var b strings.Builder
	for _, ev := range t.Events() {
		fmt.Fprintf(&b, "%10d %-12s %s\n", ev.At, ev.Category, ev.Text())
	}
	return b.String()
}
