package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// fuzzCaps is the adaptive-cap palette the fuzzer picks from; it spans
// fixed windows, small caps (frequent widen/collapse transitions) and the
// default.
var fuzzCaps = [...]int{1, 2, 4, 8, DefaultAdaptiveCap}

// fuzzScenario is a decoded fuzz input: a shard count, an adaptive cap and
// a list of cross-shard sends with pseudo-random issue times and latencies.
type fuzzScenario struct {
	shards int
	cap    int
	ops    []fuzzOp
}

// fuzzOp is one cross-shard send: issued on shard src at issue time, it
// delivers on dst lookahead+extra cycles later. Colliding (dst, cycle)
// pairs are common by construction — issue times and extras are drawn from
// small ranges — which is exactly what exercises the canonical merge.
type fuzzOp struct {
	src, dst int
	issue    Time
	extra    Time
}

// decodeFuzzScenario maps raw fuzz bytes onto a scenario. Every byte
// string decodes to something runnable (or nil for "too short"), so the
// fuzzer explores freely.
func decodeFuzzScenario(data []byte, la Time) *fuzzScenario {
	if len(data) < 2 {
		return nil
	}
	sc := &fuzzScenario{
		shards: 2 + int(data[0])%3, // 2..4
		cap:    fuzzCaps[int(data[1])%len(fuzzCaps)],
	}
	cursors := make([]Time, sc.shards) // per-shard issue-time cursor
	for i := 2; i+3 < len(data) && len(sc.ops) < 64; i += 4 {
		src := int(data[i]) % sc.shards
		dst := int(data[i+1]) % sc.shards
		if dst == src {
			dst = (dst + 1) % sc.shards
		}
		// Advance the source's cursor by 0..2*la-1 cycles, so consecutive
		// sends land in the same window, adjacent windows, or far apart.
		cursors[src] += Time(data[i+2]) % (2 * la)
		sc.ops = append(sc.ops, fuzzOp{
			src:   src,
			dst:   dst,
			issue: 1 + cursors[src],
			// 0..la-1 extra cycles on top of the lookahead: deliveries stay
			// legal but collide across sources at shared cycles.
			extra: Time(data[i+3]) % la,
		})
	}
	return sc
}

// fuzzDelivery is one observed delivery, recorded at the destination in
// execution order with everything the canonical contract sorts by.
type fuzzDelivery struct {
	At   Time
	Sent Time
	Src  int
	Op   int // op index; increases with the per-source sequence
}

// runFuzzScenario executes a scenario on the given net constructor and
// returns the per-shard delivery logs plus the final time. Each op is a
// scheduled event on its source engine that performs the cross-shard send
// from the source's execution context, as the real fabric does.
func runFuzzScenario(sc *fuzzScenario, la Time, engs []*Engine, net CrossNet, drain func() Time) ([][]fuzzDelivery, Time) {
	logs := make([][]fuzzDelivery, sc.shards)
	for i, op := range sc.ops {
		op, i := op, i
		src := engs[op.src]
		dst := engs[op.dst]
		src.At(op.issue, func() {
			sent := src.Now()
			net.Send(op.src, op.dst, sent+la+op.extra, func() {
				logs[op.dst] = append(logs[op.dst], fuzzDelivery{
					At: dst.Now(), Sent: sent, Src: op.src, Op: i,
				})
			})
		})
	}
	return logs, drain()
}

// FuzzEnvelopeMergeOrder is the determinism fuzz harness: for arbitrary
// shard counts, send/deliver times and adaptive caps, the serial reference,
// the fixed-window group and the adaptively-widened group must produce the
// identical delivery streams, and every same-(destination, cycle) collision
// must apply in the canonical (deliver, send, src, seq) order.
func FuzzEnvelopeMergeOrder(f *testing.F) {
	// Seeds: minimal, two-shard ping-pong, a collision-heavy burst, four
	// shards under the default cap, and a long mixed scenario. The checked-in
	// corpus under testdata/fuzz mirrors these.
	f.Add([]byte("\x00\x00"))
	f.Add([]byte("\x00\x01AB\x05\x00BA\x05\x00"))
	f.Add([]byte("\x02\x03" + "AB\x00\x07" + "BA\x00\x07" + "CA\x00\x07" + "AC\x01\x07"))
	f.Add([]byte("\x02\x04ABxyBCloCDhiDAjkACmnBDqr"))
	f.Add([]byte("\x01\x02" + "AB\x3c\x00" + "BA\x01\x3c" + "AB\x02\x3c" + "BA\x3c\x01" + "AB\x10\x10" + "BA\x20\x20"))
	// Four shards, cluster-local ping-pong in both adjacent pairs plus
	// cross-pair traffic: under the hierarchical leg the pairs become
	// multi-engine clusters, so this drives the inner-window merge and the
	// inner/outer boundary at once.
	f.Add([]byte("\x02\x01" + "\x00\x01\x05\x00" + "\x01\x00\x05\x00" + "\x02\x03\x05\x00" + "\x03\x02\x05\x00" + "\x00\x02\x00\x07" + "\x02\x00\x00\x07"))

	const la = Time(61)
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := decodeFuzzScenario(data, la)
		if sc == nil {
			return
		}

		// Serial reference: every shard aliases one engine.
		se := NewEngine()
		sEngs := make([]*Engine, sc.shards)
		for i := range sEngs {
			sEngs[i] = se
		}
		wantLogs, wantEnd := runFuzzScenario(sc, la, sEngs, NewSerialNet(se), se.Run)

		// Sharded, fixed windows and the fuzzed adaptive cap: both must match
		// the serial stream exactly.
		for _, cap := range []int{1, sc.cap} {
			engs := make([]*Engine, sc.shards)
			for i := range engs {
				engs[i] = NewEngine()
			}
			g := NewGroup(la, engs...)
			g.SetAdaptive(cap)
			gotLogs, gotEnd := runFuzzScenario(sc, la, engs, g, g.Run)
			if gotEnd != wantEnd {
				t.Fatalf("cap %d: final time %d, serial %d", cap, gotEnd, wantEnd)
			}
			if !reflect.DeepEqual(gotLogs, wantLogs) {
				t.Fatalf("cap %d: delivery streams diverge from serial:\nserial:  %v\nsharded: %v", cap, wantLogs, gotLogs)
			}
			for i, e := range engs {
				if len(sc.ops) > 0 && e.Now() != gotEnd {
					t.Fatalf("cap %d: shard %d clock %d not aligned to %d", cap, i, e.Now(), gotEnd)
				}
			}
		}

		// Hierarchical group over the same endpoints: adjacent shards pair
		// into clusters synchronized at a short inner crossing nested inside
		// the outer windows. Every op's latency clears the outer lookahead,
		// so the same scenario is legal at both levels — and the nested
		// merge (inner flushes tiling outer chunks) must reproduce the
		// serial delivery stream exactly, fixed and adaptive.
		for _, cap := range []int{1, sc.cap} {
			engs := make([]*Engine, sc.shards)
			for i := range engs {
				engs[i] = NewEngine()
			}
			clusters := make([][]*Engine, 0, (sc.shards+1)/2)
			epEngine := make([]int, sc.shards)
			for i := 0; i < sc.shards; i += 2 {
				hi := i + 2
				if hi > sc.shards {
					hi = sc.shards
				}
				clusters = append(clusters, engs[i:hi])
				for j := i; j < hi; j++ {
					epEngine[j] = j
				}
			}
			g := NewHierGroup(la, 7, clusters, epEngine)
			g.SetAdaptive(cap)
			gotLogs, gotEnd := runFuzzScenario(sc, la, engs, g, g.Run)
			if gotEnd != wantEnd {
				t.Fatalf("hier cap %d: final time %d, serial %d", cap, gotEnd, wantEnd)
			}
			if !reflect.DeepEqual(gotLogs, wantLogs) {
				t.Fatalf("hier cap %d: delivery streams diverge from serial:\nserial:  %v\nsharded: %v", cap, wantLogs, gotLogs)
			}
		}

		// Canonical order within every (destination, cycle) collision: sorted
		// by (send time, source, per-source issue order). The per-source op
		// index is a monotone image of the sequence number, so checking it
		// checks the seq tie-break.
		for dst, log := range wantLogs {
			for i := 1; i < len(log); i++ {
				a, b := log[i-1], log[i]
				if b.At < a.At {
					t.Fatalf("dst %d: deliveries ran backwards in time: %+v then %+v", dst, a, b)
				}
				if b.At != a.At {
					continue
				}
				if b.Sent < a.Sent ||
					(b.Sent == a.Sent && b.Src < a.Src) ||
					(b.Sent == a.Sent && b.Src == a.Src && b.Op < a.Op) {
					t.Fatalf("dst %d cycle %d: non-canonical merge order: %+v before %+v", dst, a.At, a, b)
				}
			}
		}
	})
}

// TestFuzzSeedsDecode sanity-checks the decoder on the seed corpus shapes:
// ops are generated, stay in range and respect the latency floor.
func TestFuzzSeedsDecode(t *testing.T) {
	const la = Time(61)
	sc := decodeFuzzScenario([]byte("\x02\x04ABxyBCloCDhiDAjkACmnBDqr"), la)
	if sc == nil || sc.shards != 4 || sc.cap != DefaultAdaptiveCap {
		t.Fatalf("decoded %+v", sc)
	}
	if len(sc.ops) == 0 {
		t.Fatal("no ops decoded")
	}
	for _, op := range sc.ops {
		if op.src == op.dst || op.src >= sc.shards || op.dst >= sc.shards {
			t.Fatalf("bad op %+v", op)
		}
		if op.extra >= la {
			t.Fatalf("extra %d reaches lookahead %d; collisions would be illegal sends", op.extra, la)
		}
	}
	if decodeFuzzScenario([]byte{1}, la) != nil {
		t.Fatal("short input should decode to nil")
	}
	_ = fmt.Sprint(sc)
}
