package sim

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Sampler snapshots a fixed set of counters and gauges every N cycles into
// a time series, so experiments can plot NoC link traffic, queue depths or
// MSHR occupancy over a run instead of seeing only end-of-run totals.
//
// Sampled names resolve in this order: a trailing "*" sums all counters
// under the prefix (Sum semantics, "." boundary aware); otherwise an exact
// counter match wins, then an exact gauge match; unknown names read as zero
// until the instrument is created.
//
// The sampler re-schedules itself on the engine it was created on. When a
// tick observes that nothing but the sampler itself has executed since the
// previous tick, it stops re-arming: this keeps Engine.Run (which drains the
// queue) terminating once the simulated system quiesces.
type Sampler struct {
	eng      *Engine
	stats    *Stats
	every    Time
	names    []string
	rows     []SampleRow
	lastExec uint64
	stopped  bool

	// maxRows, when positive, caps the retained time series: once reached,
	// each new row overwrites the oldest (start marks the ring head). The
	// default (0) keeps every row, preserving historical behavior.
	maxRows int
	start   int

	// OnRow, when non-nil, is invoked with each freshly taken row, after it
	// has been recorded. It runs inside the sampler's own tick event on the
	// simulation goroutine, so it may read simulation state freely but must
	// not schedule events or block — the observability layer uses it to hand
	// rows to its snapshot mailbox and SSE stream.
	OnRow func(SampleRow)
}

// SampleRow is one snapshot: the cycle it was taken at and the sampled
// values, parallel to the sampler's name list.
type SampleRow struct {
	At     Time
	Values []uint64
}

// NewSampler creates a sampler ticking every `every` cycles and arms its
// first tick. A non-positive interval defaults to 1000 cycles.
func NewSampler(eng *Engine, stats *Stats, every Time, names ...string) *Sampler {
	if every <= 0 {
		every = 1000
	}
	s := &Sampler{eng: eng, stats: stats, every: every, names: names}
	s.lastExec = eng.Executed()
	eng.Schedule(every, s.tick)
	return s
}

// SetMaxRows caps the retained time series at n rows: once full, each new
// sample overwrites the oldest (a ring buffer), so an indefinitely running
// sampler — a long -serve session, a numa48-scale run — holds bounded memory.
// n <= 0 restores the default unbounded behavior. Call it before the series
// wraps; shrinking an already-wrapped series is not supported.
func (s *Sampler) SetMaxRows(n int) {
	if n < 0 {
		n = 0
	}
	s.maxRows = n
}

// MaxRows returns the ring-buffer cap (0 = unbounded).
func (s *Sampler) MaxRows() int { return s.maxRows }

// Names returns the sampled column names.
func (s *Sampler) Names() []string { return s.names }

// Rows returns the recorded time series in chronological order. When the
// ring-buffer cap has dropped old rows, the slice starts at the oldest
// retained row.
func (s *Sampler) Rows() []SampleRow {
	if s.start == 0 {
		return s.rows
	}
	out := make([]SampleRow, 0, len(s.rows))
	out = append(out, s.rows[s.start:]...)
	out = append(out, s.rows[:s.start]...)
	return out
}

// Every returns the sampling interval in cycles.
func (s *Sampler) Every() Time { return s.every }

// Stop prevents any further samples from being taken.
func (s *Sampler) Stop() { s.stopped = true }

func (s *Sampler) tick() {
	if s.stopped {
		return
	}
	row := SampleRow{At: s.eng.Now(), Values: make([]uint64, len(s.names))}
	for i, n := range s.names {
		row.Values[i] = s.sample(n)
	}
	if s.maxRows > 0 && len(s.rows) >= s.maxRows {
		s.rows[s.start] = row
		s.start = (s.start + 1) % len(s.rows)
	} else {
		s.rows = append(s.rows, row)
	}
	if s.OnRow != nil {
		s.OnRow(row)
	}
	// Quiesce detection: if only our own tick executed since the last one,
	// the simulation is idle; re-arming would keep Engine.Run alive forever.
	exec := s.eng.Executed()
	if exec-s.lastExec <= 1 {
		s.stopped = true
		return
	}
	s.lastExec = exec
	s.eng.Schedule(s.every, s.tick)
}

func (s *Sampler) sample(name string) uint64 {
	if strings.HasSuffix(name, "*") {
		return s.stats.Sum(strings.TrimSuffix(name, "*"))
	}
	if c, ok := s.stats.counters[name]; ok {
		return c.Value
	}
	if g, ok := s.stats.gauges[name]; ok {
		if g.Value < 0 {
			return 0
		}
		return uint64(g.Value)
	}
	return 0
}

// CSV renders the time series with a header row ("cycle,<name>,...").
func (s *Sampler) CSV() string {
	var b strings.Builder
	b.WriteString("cycle")
	for _, n := range s.names {
		b.WriteByte(',')
		b.WriteString(n)
	}
	b.WriteByte('\n')
	for _, r := range s.Rows() {
		fmt.Fprintf(&b, "%d", r.At)
		for _, v := range r.Values {
			fmt.Fprintf(&b, ",%d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MarshalJSON renders {"every":N,"names":[...],"rows":[[cycle,v0,v1,...],...]}.
func (s *Sampler) MarshalJSON() ([]byte, error) {
	ordered := s.Rows()
	rows := make([][]uint64, len(ordered))
	for i, r := range ordered {
		row := make([]uint64, 0, len(r.Values)+1)
		row = append(row, uint64(r.At))
		row = append(row, r.Values...)
		rows[i] = row
	}
	names := s.names
	if names == nil {
		names = []string{}
	}
	return json.Marshal(map[string]any{
		"every": uint64(s.every),
		"names": names,
		"rows":  rows,
	})
}
