package sim

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Sampler snapshots a fixed set of counters and gauges every N cycles into
// a time series, so experiments can plot NoC link traffic, queue depths or
// MSHR occupancy over a run instead of seeing only end-of-run totals.
//
// Sampled names resolve in this order: a trailing "*" sums all counters
// under the prefix (Sum semantics, "." boundary aware); otherwise an exact
// counter match wins, then an exact gauge match; unknown names read as zero
// until the instrument is created.
//
// The sampler re-schedules itself on the engine it was created on. When a
// tick observes that nothing but the sampler itself has executed since the
// previous tick, it stops re-arming: this keeps Engine.Run (which drains the
// queue) terminating once the simulated system quiesces.
type Sampler struct {
	eng      *Engine
	stats    *Stats
	every    Time
	names    []string
	rows     []SampleRow
	lastExec uint64
	stopped  bool
}

// SampleRow is one snapshot: the cycle it was taken at and the sampled
// values, parallel to the sampler's name list.
type SampleRow struct {
	At     Time
	Values []uint64
}

// NewSampler creates a sampler ticking every `every` cycles and arms its
// first tick. A non-positive interval defaults to 1000 cycles.
func NewSampler(eng *Engine, stats *Stats, every Time, names ...string) *Sampler {
	if every <= 0 {
		every = 1000
	}
	s := &Sampler{eng: eng, stats: stats, every: every, names: names}
	s.lastExec = eng.Executed()
	eng.Schedule(every, s.tick)
	return s
}

// Names returns the sampled column names.
func (s *Sampler) Names() []string { return s.names }

// Rows returns the recorded time series.
func (s *Sampler) Rows() []SampleRow { return s.rows }

// Every returns the sampling interval in cycles.
func (s *Sampler) Every() Time { return s.every }

// Stop prevents any further samples from being taken.
func (s *Sampler) Stop() { s.stopped = true }

func (s *Sampler) tick() {
	if s.stopped {
		return
	}
	row := SampleRow{At: s.eng.Now(), Values: make([]uint64, len(s.names))}
	for i, n := range s.names {
		row.Values[i] = s.sample(n)
	}
	s.rows = append(s.rows, row)
	// Quiesce detection: if only our own tick executed since the last one,
	// the simulation is idle; re-arming would keep Engine.Run alive forever.
	exec := s.eng.Executed()
	if exec-s.lastExec <= 1 {
		s.stopped = true
		return
	}
	s.lastExec = exec
	s.eng.Schedule(s.every, s.tick)
}

func (s *Sampler) sample(name string) uint64 {
	if strings.HasSuffix(name, "*") {
		return s.stats.Sum(strings.TrimSuffix(name, "*"))
	}
	if c, ok := s.stats.counters[name]; ok {
		return c.Value
	}
	if g, ok := s.stats.gauges[name]; ok {
		if g.Value < 0 {
			return 0
		}
		return uint64(g.Value)
	}
	return 0
}

// CSV renders the time series with a header row ("cycle,<name>,...").
func (s *Sampler) CSV() string {
	var b strings.Builder
	b.WriteString("cycle")
	for _, n := range s.names {
		b.WriteByte(',')
		b.WriteString(n)
	}
	b.WriteByte('\n')
	for _, r := range s.rows {
		fmt.Fprintf(&b, "%d", r.At)
		for _, v := range r.Values {
			fmt.Fprintf(&b, ",%d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MarshalJSON renders {"every":N,"names":[...],"rows":[[cycle,v0,v1,...],...]}.
func (s *Sampler) MarshalJSON() ([]byte, error) {
	rows := make([][]uint64, len(s.rows))
	for i, r := range s.rows {
		row := make([]uint64, 0, len(r.Values)+1)
		row = append(row, uint64(r.At))
		row = append(row, r.Values...)
		rows[i] = row
	}
	names := s.names
	if names == nil {
		names = []string{}
	}
	return json.Marshal(map[string]any{
		"every": uint64(s.every),
		"names": names,
		"rows":  rows,
	})
}
