// Sharded parallel execution: a Group runs several Engines on goroutines
// under a conservative bounded-lag synchronizer. The PCIe fabric's one-way
// latency is the lookahead L: no shard can affect another sooner than L
// cycles out, so between barriers every shard may safely execute all of its
// events in the window [T, T+L) without seeing the others. At each barrier
// the shards' outboxes are merged and injected in the canonical CrossNet
// order (see crossnet.go), which makes a sharded run produce the exact
// event order — and therefore byte-identical metrics — of the serial
// reference.
//
// # Adaptive lookahead
//
// A fixed window of L cycles pays a full barrier (goroutine fan-out,
// coordinator merge, telemetry flush) every minimum-crossing interval even
// when the shards are not talking to each other — which is most of a
// bucket-sort run. The Group therefore widens windows adaptively: after a
// window closes with no cross-shard envelopes, the next window doubles in
// width (in units of L) up to a cap, and collapses back to L the moment
// traffic reappears.
//
// Widening never reorders events, because a widened window is executed as
// lockstep *chunks* of L cycles. The safety argument is the conservative
// one, applied per chunk: every envelope emitted during chunk [c, c+L) is
// sent at some s >= c (the previous chunk drained everything earlier) and
// delivers at s + model latency >= c + L — i.e. never inside its own chunk.
// Between chunks the shards meet at a lightweight in-window barrier; the
// last arriver checks the outboxes and ends the window at the first chunk
// boundary with traffic parked, so no shard ever crosses a chunk boundary
// ahead of an undelivered envelope. A window of width W is therefore
// event-for-event identical to W consecutive fixed windows whose barriers
// all had nothing to inject — the chunks that were skipped are exactly the
// barriers that would have been no-ops. The adaptive width sequence is a
// pure function of the (deterministic) simulation, so replay reproduces it,
// and WindowDigest fingerprints it so a checkpoint cursor can prove it did.
package sim

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
)

// DefaultAdaptiveCap is the default ceiling on adaptive window widening, in
// units of the lookahead L: windows grow geometrically 1, 2, 4, ... up to
// this multiplier while cross-shard traffic is absent. 64 puts the widest
// window at a few thousand cycles with the PCIe-calibrated L — long enough
// to amortize barriers across a local compute phase, short enough that the
// group still reaches quiescent points (checkpoints, watchdog checks,
// dashboard snapshots) at a useful cadence.
const DefaultAdaptiveCap = 64

// Group executes a set of Engines — one per shard — in bounded-lag windows.
// Construct with NewGroup; it implements CrossNet for cross-shard sends.
//
// Threading contract: during a window each engine runs on its own worker
// goroutine and must only touch state owned by its shard; Send(src, ...)
// must be called from shard src's goroutine. Between windows (and before
// Run / after it returns) the group is quiescent and the caller's goroutine
// may inspect any shard freely — the window barrier provides the
// happens-before edge.
type Group struct {
	lookahead Time
	engines   []*Engine
	seqs      []uint64
	// outbox is the batched envelope hand-off: one preallocated slice per
	// (src, dst) pair at index src*shards+dst. During a window row src is
	// owned by shard src's goroutine (Send appends, nothing else touches
	// it); at the barrier the coordinator drains every slice per
	// destination and merges in canonical order. Slices are reused window
	// to window, so a warmed-up group hands envelopes off without
	// allocating.
	outbox   [][]netEntry
	horizon  Time       // current window's exclusive upper bound
	running  bool       // inside a window (workers active)
	merged   []netEntry // per-destination inject scratch, reused
	active   []int      // participant scratch, reused window to window
	affinity bool       // pin shard workers with runtime.LockOSThread

	// Adaptive-lookahead state. width is the next window's width in units
	// of lookahead; maxWidth caps the geometric widening (1 = fixed
	// windows). chunksRan is the width the current window actually reached
	// before traffic (or idleness) ended it — written by the last barrier
	// arriver, read by the coordinator after the workers join.
	width     int
	maxWidth  int
	chunksRan int
	bar       winBarrier

	// Synchronizer telemetry, maintained unconditionally (a few integer
	// bumps per window). envOut[i] is written only by shard i's goroutine
	// during a window; everything else is coordinator-owned and touched only
	// while the group is quiescent — the window WaitGroup provides the
	// happens-before edges in both directions.
	windows    uint64   // completed synchronization windows
	chunks     uint64   // completed window chunks (windows in units of L)
	widenings  uint64   // windows after which the width grew
	collapses  uint64   // windows after which the width snapped back to 1
	digest     uint64   // FNV-1a over the (start, width) window sequence
	ranWindows []uint64 // windows in which shard i actually executed work
	envIn      []uint64 // envelopes injected into shard i (merged deliveries)
	envOut     []uint64 // envelopes sent by shard i

	// syncStats, when bound with EnableSyncStats, mirrors the telemetry into
	// per-shard stats registries at every barrier.
	syncStats []shardSyncStats

	// OnBarrier, when non-nil, runs at the end of every synchronization
	// window, after the worker goroutines have joined and before the next
	// window begins. The group is quiescent: the callback may inspect any
	// shard engine or registry freely, but must not schedule events or send
	// envelopes. The observability layer publishes its snapshot here.
	OnBarrier func()
}

// shardSyncStats is the per-shard registry binding of the synchronizer
// telemetry (see EnableSyncStats).
type shardSyncStats struct {
	windows   *Counter
	chunks    *Counter
	widenings *Counter
	collapses *Counter
	envIn     *Counter
	envOut    *Counter
	horizon   *Gauge
	width     *Gauge
	lag       *Gauge
}

// fnvOffset/fnvPrime are the FNV-1a constants for the window-sequence
// digest. Starting from the offset basis keeps the digest of an empty
// sequence nonzero, so a snapshot can always carry it.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// fnvFold mixes one word into the running window digest.
func fnvFold(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// NewGroup builds a synchronizer over the given shard engines. lookahead is
// the minimum cross-shard latency in cycles; it must be positive, and every
// Send must honor it. Windows start fixed at the lookahead; call SetAdaptive
// to let them widen when cross-shard traffic is sparse.
func NewGroup(lookahead Time, engines ...*Engine) *Group {
	if lookahead == 0 {
		panic("sim: parallel group needs a positive lookahead")
	}
	if len(engines) == 0 {
		panic("sim: parallel group needs at least one engine")
	}
	return &Group{
		lookahead:  lookahead,
		engines:    engines,
		seqs:       make([]uint64, len(engines)),
		outbox:     make([][]netEntry, len(engines)*len(engines)),
		width:      1,
		maxWidth:   1,
		digest:     fnvOffset,
		ranWindows: make([]uint64, len(engines)),
		envIn:      make([]uint64, len(engines)),
		envOut:     make([]uint64, len(engines)),
	}
}

// SetAdaptive sets the adaptive-lookahead cap: the maximum window width as a
// multiple of the lookahead. 1 keeps fixed windows; larger caps let windows
// double geometrically while no cross-shard envelope appears and collapse
// back to 1 the window traffic returns. Must be called while the group is
// quiescent. The cap is part of the window-sequence identity a replay
// checkpoint records, so a restore must use the same value (core.Replay
// verifies it).
func (g *Group) SetAdaptive(cap int) {
	if cap < 1 {
		panic(fmt.Sprintf("sim: adaptive lookahead cap %d; need >= 1", cap))
	}
	g.maxWidth = cap
	if g.width > cap {
		g.width = cap
	}
}

// SetAffinity, when on, makes every shard worker pin itself to an OS thread
// (runtime.LockOSThread) for the duration of its window, so a shard's
// event pool, heap and model state keep their cache affinity instead of
// migrating across threads mid-window. Pure execution policy: it affects
// neither the event stream nor the window sequence.
func (g *Group) SetAffinity(on bool) { g.affinity = on }

// EnableSyncStats registers the synchronizer's telemetry as instruments in
// the given per-shard registries (regs[i] belongs to shard i) under the
// "fpga<i>.sync." prefix: windows and chunks executed, envelopes merged in
// and sent out, widening/collapse counts, the current window horizon and
// width, and the shard's lag behind that horizon. Values are refreshed at
// every window barrier. Note that a report folding these registries will
// then differ from a serial run's (a serial engine has no windows), so the
// feature is opt-in — see core.Config.SyncMetrics.
func (g *Group) EnableSyncStats(regs []*Stats) {
	if len(regs) != len(g.engines) {
		panic(fmt.Sprintf("sim: EnableSyncStats got %d registries for %d shards", len(regs), len(g.engines)))
	}
	g.syncStats = make([]shardSyncStats, len(regs))
	for i, s := range regs {
		prefix := fmt.Sprintf("fpga%d.sync.", i)
		g.syncStats[i] = shardSyncStats{
			windows:   s.Counter(prefix + "windows"),
			chunks:    s.Counter(prefix + "chunks"),
			widenings: s.Counter(prefix + "widenings"),
			collapses: s.Counter(prefix + "collapses"),
			envIn:     s.Counter(prefix + "envelopes_in"),
			envOut:    s.Counter(prefix + "envelopes_out"),
			horizon:   s.Gauge(prefix + "horizon"),
			width:     s.Gauge(prefix + "width"),
			lag:       s.Gauge(prefix + "lag"),
		}
	}
}

// flushSyncStats assigns the current telemetry into the bound registries.
// Assignment (not accumulation) keeps it idempotent; it runs only at
// barriers, where the coordinator owns every shard registry.
func (g *Group) flushSyncStats() {
	for i := range g.syncStats {
		ss := &g.syncStats[i]
		ss.windows.Value = g.ranWindows[i]
		ss.chunks.Value = g.chunks
		ss.widenings.Value = g.widenings
		ss.collapses.Value = g.collapses
		ss.envIn.Value = g.envIn[i]
		ss.envOut.Value = g.envOut[i]
		ss.horizon.Set(int64(g.horizon))
		ss.width.Set(int64(g.width))
		lag := int64(0)
		if le := g.engines[i].LastEventTime(); g.horizon > 0 && g.horizon-1 > le {
			lag = int64(g.horizon - 1 - le)
		}
		ss.lag.Set(lag)
	}
}

// ShardSync is one shard's synchronizer state, captured at a barrier.
type ShardSync struct {
	Shard     int    `json:"shard"`
	Windows   uint64 `json:"windows"` // windows in which the shard ran work
	EnvIn     uint64 `json:"env_in"`  // envelopes merged into the shard
	EnvOut    uint64 `json:"env_out"` // envelopes the shard sent
	LastEvent Time   `json:"last_event"`
	Pending   int    `json:"pending"` // live events still queued
	Lag       Time   `json:"lag"`     // cycles behind the window horizon
}

// GroupSync is the synchronizer's state, captured at a barrier: window and
// chunk totals, the adaptive-width machinery, and per-shard occupancy.
type GroupSync struct {
	Windows   uint64      `json:"windows"`   // completed synchronization windows
	Chunks    uint64      `json:"chunks"`    // completed chunks (windows in units of L)
	Horizon   Time        `json:"horizon"`   // last window's exclusive upper bound
	Lookahead Time        `json:"lookahead"` // minimum window width in cycles
	Width     int         `json:"width"`     // next window's width, in units of L
	WidthCap  int         `json:"width_cap"` // adaptive cap (1 = fixed windows)
	Widenings uint64      `json:"widenings"` // windows after which the width grew
	Collapses uint64      `json:"collapses"` // windows that snapped the width back
	Shards    []ShardSync `json:"shards"`
}

// SyncSnapshot captures the synchronizer's state: window/chunk totals, the
// current horizon, the adaptive window width, and per-shard occupancy. It
// must only be called while the group is quiescent (between windows — e.g.
// from OnBarrier — or before/after Run).
func (g *Group) SyncSnapshot() GroupSync {
	sn := GroupSync{
		Windows:   g.windows,
		Chunks:    g.chunks,
		Horizon:   g.horizon,
		Lookahead: g.lookahead,
		Width:     g.width,
		WidthCap:  g.maxWidth,
		Widenings: g.widenings,
		Collapses: g.collapses,
		Shards:    make([]ShardSync, len(g.engines)),
	}
	for i, e := range g.engines {
		le := e.LastEventTime()
		var lag Time
		if g.horizon > 0 && g.horizon-1 > le {
			lag = g.horizon - 1 - le
		}
		sn.Shards[i] = ShardSync{
			Shard:     i,
			Windows:   g.ranWindows[i],
			EnvIn:     g.envIn[i],
			EnvOut:    g.envOut[i],
			LastEvent: le,
			Pending:   e.Pending(),
			Lag:       lag,
		}
	}
	return sn
}

// Windows returns the number of completed synchronization windows. It is
// the sharded engine's replay cursor: re-executing the same build for the
// same number of windows reproduces the exact global state, so a replay
// checkpoint of a sharded run records this count where a serial one records
// the executed-event count. Under adaptive lookahead the window widths are
// themselves deterministic, so the cursor stays exact; WindowDigest lets a
// restore verify it replayed the identical width sequence.
func (g *Group) Windows() uint64 { return g.windows }

// Chunks returns the number of completed window chunks — the window count
// normalized to units of the lookahead, comparable across adaptive caps.
func (g *Group) Chunks() uint64 { return g.chunks }

// WindowDigest returns the running FNV-1a fingerprint of the window
// sequence: every completed window folds in its start time and the width it
// actually reached. Two runs that stepped the same windows at the same
// widths — what a replay cursor promises — have equal digests.
func (g *Group) WindowDigest() uint64 { return g.digest }

// Shards returns the number of shard engines.
func (g *Group) Shards() int { return len(g.engines) }

// Engine returns shard i's engine.
func (g *Group) Engine(i int) *Engine { return g.engines[i] }

// Lookahead returns the minimum synchronization window length in cycles.
func (g *Group) Lookahead() Time { return g.lookahead }

// WidthCap returns the adaptive widening cap (1 = fixed windows).
func (g *Group) WidthCap() int { return g.maxWidth }

// Send implements CrossNet: it parks fn in the (src, dst) outbox for
// delivery on shard dst at deliverAt. Must be called from shard src's
// goroutine (or from the coordinator while the group is quiescent). A
// delivery closer than the lookahead to the sender's clock would mean the
// model's cross-shard latency undercuts the lookahead — a wiring bug — and
// panics. (Deliveries inside the current window's horizon are fine under
// adaptive widening: the chunk discipline ends the window before any shard
// crosses the boundary they land beyond.)
func (g *Group) Send(src, dst int, deliverAt Time, fn func()) {
	n := len(g.engines)
	if src < 0 || src >= n || dst < 0 || dst >= n {
		panic(fmt.Sprintf("sim: cross-shard send %d->%d outside group of %d shards", src, dst, n))
	}
	sent := g.engines[src].Now()
	if g.running && deliverAt < sent+g.lookahead {
		panic(fmt.Sprintf("sim: cross-shard send at %d delivers at %d; model latency undercuts lookahead %d",
			sent, deliverAt, g.lookahead))
	}
	g.seqs[src]++
	g.envOut[src]++
	box := &g.outbox[src*n+dst]
	*box = append(*box, netEntry{at: deliverAt, sent: sent, src: src, seq: g.seqs[src], fn: fn})
}

// inject merges the parked envelopes per destination in canonical order and
// pushes each onto its engine as a front-of-cycle delivery. Injection order
// matters: AtFront assigns per-engine sequence numbers, so injecting in
// canonical order reproduces the serial engine's tie-break for deliveries
// that land on the same (destination, cycle). Consumed entries are zeroed
// so delivered closures don't linger, and all buffers are reused.
func (g *Group) inject() {
	n := len(g.engines)
	for dst := 0; dst < n; dst++ {
		all := g.merged[:0]
		for src := 0; src < n; src++ {
			box := &g.outbox[src*n+dst]
			all = append(all, *box...)
			for j := range *box {
				(*box)[j] = netEntry{}
			}
			*box = (*box)[:0]
		}
		if len(all) == 0 {
			continue
		}
		slices.SortFunc(all, netCmp)
		eng := g.engines[dst]
		for i := range all {
			g.envIn[dst]++
			eng.AtFront(all[i].at, all[i].fn)
			all[i] = netEntry{}
		}
		g.merged = all[:0]
	}
}

// pendingEnvelopes reports whether any outbox holds an undelivered envelope.
func (g *Group) pendingEnvelopes() bool {
	for i := range g.outbox {
		if len(g.outbox[i]) > 0 {
			return true
		}
	}
	return false
}

// minNext returns the earliest live event time across all shards.
func (g *Group) minNext() (Time, bool) {
	var best Time
	found := false
	for _, e := range g.engines {
		if t, ok := e.NextEventTime(); ok && (!found || t < best) {
			best, found = t, true
		}
	}
	return best, found
}

// winBarrier is the in-window chunk barrier: a reusable phase rendezvous
// for the window's participant shards. The last arriver of each phase
// evaluates the window-over decision while it holds the lock (so every
// participant's work for the chunk happens-before the decision) and the
// verdict is read by all under the same lock on the way out.
type winBarrier struct {
	mu      sync.Mutex
	cond    sync.Cond
	parties int
	arrived int
	phase   uint64
	stop    bool
}

// reset prepares the barrier for a window with the given participant count.
func (b *winBarrier) reset(parties int) {
	b.parties = parties
	b.arrived = 0
	b.stop = false
	if b.cond.L == nil {
		b.cond.L = &b.mu
	}
}

// arrive blocks until every participant has finished the chunk, then
// reports whether the window continues. over runs exactly once per phase,
// in the last arriver, under the barrier lock.
func (b *winBarrier) arrive(over func() bool) (cont bool) {
	b.mu.Lock()
	b.arrived++
	if b.arrived == b.parties {
		b.stop = over()
		b.arrived = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		phase := b.phase
		for phase == b.phase {
			b.cond.Wait()
		}
	}
	stop := b.stop
	b.mu.Unlock()
	return !stop
}

// windowOver is the chunk-boundary decision, made by the last barrier
// arriver after chunk k (1-based) of a window starting at start with the
// given planned width. The window ends when it reaches its planned width,
// when any outbox parked an envelope (its delivery lands at or beyond the
// next chunk boundary, so stopping here is exactly a fixed-window barrier),
// or when no shard has work left before the planned horizon (the remaining
// chunks would all be empty). Reading other shards' engines and outboxes is
// safe here: every participant is parked in the barrier and the barrier
// lock orders the reads.
func (g *Group) windowOver(start Time, k, planned int) bool {
	g.chunksRan = k
	if k >= planned {
		return true
	}
	if g.pendingEnvelopes() {
		return true
	}
	end := start + Time(planned)*g.lookahead
	for _, e := range g.engines {
		if t, ok := e.NextEventTime(); ok && t < end {
			return false
		}
	}
	return true
}

// runShardWindow is one participant's window: execute chunk after chunk of
// L cycles, meeting the others at the chunk barrier, until the last arriver
// calls the window over.
func (g *Group) runShardWindow(e *Engine, start Time, planned int) {
	if g.affinity {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	for k := 1; ; k++ {
		e.runTo(start + Time(k)*g.lookahead - 1)
		if !g.bar.arrive(func() bool { return g.windowOver(start, k, planned) }) {
			return
		}
	}
}

// StepWindow runs one synchronization window: injects pending envelopes,
// finds the global next event time T, and lets every shard with work before
// the horizon execute it concurrently, chunk by chunk under the adaptive
// width. Returns false when no work remains anywhere.
func (g *Group) StepWindow() bool {
	g.inject()
	t, ok := g.minNext()
	if !ok {
		return false
	}
	planned := g.width
	g.horizon = t + Time(planned)*g.lookahead
	g.active = g.active[:0]
	for i, e := range g.engines {
		if next, ok := e.NextEventTime(); ok && next < g.horizon {
			g.ranWindows[i]++
			g.active = append(g.active, i)
		}
	}
	g.running = true
	g.chunksRan = planned
	switch {
	case planned == 1 && len(g.active) == 1:
		// Fixed-width window with a single busy shard: run inline, no
		// goroutine, no barrier.
		g.engines[g.active[0]].runTo(g.horizon - 1)
	case planned == 1:
		// Fixed-width window: the chunk loop degenerates to one runTo per
		// shard, so skip the chunk barrier entirely.
		var wg sync.WaitGroup
		for _, i := range g.active {
			wg.Add(1)
			go func(e *Engine) {
				defer wg.Done()
				if g.affinity {
					runtime.LockOSThread()
					defer runtime.UnlockOSThread()
				}
				e.runTo(g.horizon - 1)
			}(g.engines[i])
		}
		wg.Wait()
	case len(g.active) == 1:
		// Widened window, one busy shard: run the chunk loop inline. The
		// barrier with one party never blocks, but the chunk decisions
		// still run — the shard's own sends must end the window at the
		// correct boundary.
		g.bar.reset(1)
		g.runShardWindow(g.engines[g.active[0]], t, planned)
	default:
		g.bar.reset(len(g.active))
		var wg sync.WaitGroup
		for _, i := range g.active {
			wg.Add(1)
			go func(e *Engine) {
				defer wg.Done()
				g.runShardWindow(e, t, planned)
			}(g.engines[i])
		}
		wg.Wait()
	}
	g.running = false
	ran := g.chunksRan
	g.horizon = t + Time(ran)*g.lookahead
	g.windows++
	g.chunks += uint64(ran)
	g.digest = fnvFold(fnvFold(g.digest, uint64(t)), uint64(ran))
	// Adapt: traffic parked at this barrier collapses the width back to the
	// minimum crossing; a quiet window doubles it up to the cap.
	if g.pendingEnvelopes() {
		if g.width > 1 {
			g.collapses++
		}
		g.width = 1
	} else if g.width < g.maxWidth {
		g.width *= 2
		if g.width > g.maxWidth {
			g.width = g.maxWidth
		}
		g.widenings++
	}
	if g.syncStats != nil {
		g.flushSyncStats()
	}
	if g.OnBarrier != nil {
		g.OnBarrier()
	}
	return true
}

// Run executes windows until every shard drains, then aligns all engine
// clocks to the global last-event time (mirroring the serial engine, whose
// single clock rests on the last executed event). Returns that time.
func (g *Group) Run() Time {
	for g.StepWindow() {
	}
	t := g.Now()
	for _, e := range g.engines {
		e.alignTo(t)
	}
	return t
}

// Now returns the globally latest executed-event time. While the group is
// quiescent this matches what the serial engine's Now would report after
// executing the same events.
func (g *Group) Now() Time {
	var t Time
	for _, e := range g.engines {
		if le := e.LastEventTime(); le > t {
			t = le
		}
	}
	return t
}
