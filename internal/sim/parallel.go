// Sharded parallel execution: a Group runs several Engines on goroutines
// under a conservative bounded-lag synchronizer. The PCIe fabric's one-way
// latency is the outer lookahead L: no FPGA can affect another sooner than
// L cycles out, so between barriers every shard may safely execute all of
// its events in the window [T, T+L) without seeing the others. At each
// barrier the shards' outboxes are merged and injected in the canonical
// CrossNet order (see crossnet.go), which makes a sharded run produce the
// exact event order — and therefore byte-identical metrics — of the serial
// reference.
//
// # Adaptive lookahead
//
// A fixed window of L cycles pays a full barrier (goroutine fan-out,
// coordinator merge, telemetry flush) every minimum-crossing interval even
// when the shards are not talking to each other — which is most of a
// bucket-sort run. The Group therefore widens windows adaptively: after a
// window closes with no cross-shard envelopes, the next window doubles in
// width (in units of L) up to a cap, and collapses back to L the moment
// traffic reappears.
//
// Widening never reorders events, because a widened window is executed as
// lockstep *chunks* of L cycles. The safety argument is the conservative
// one, applied per chunk: every envelope emitted during chunk [c, c+L) is
// sent at some s >= c (the previous chunk drained everything earlier) and
// delivers at s + model latency >= c + L — i.e. never inside its own chunk.
// Between chunks the shards meet at a lightweight in-window barrier; the
// last arriver checks the outboxes and ends the window at the first chunk
// boundary with traffic parked, so no shard ever crosses a chunk boundary
// ahead of an undelivered envelope. A window of width W is therefore
// event-for-event identical to W consecutive fixed windows whose barriers
// all had nothing to inject — the chunks that were skipped are exactly the
// barriers that would have been no-ops. The adaptive width sequence is a
// pure function of the (deterministic) simulation, so replay reproduces it,
// and WindowDigest fingerprints it so a checkpoint cursor can prove it did.
//
// # Hierarchical windows (sub-FPGA sharding)
//
// The intra-FPGA interconnect couples co-located nodes far more tightly
// than PCIe couples FPGAs: its crossing is a few cycles, not sixty. Running
// one engine per *node* under the flat scheme would therefore force the
// whole system to the tiny lookahead. Instead the Group supports two
// levels (NewHierGroup): engines are grouped into clusters (one per FPGA),
// and within each outer chunk of L cycles, each multi-engine cluster runs
// its own sequence of *inner* windows at the inner lookahead l — planned,
// chunked, adaptively widened and barriered exactly like the outer level,
// but entirely inside the cluster. Inner windows always tile outer chunks:
// an inner window never crosses the enclosing outer chunk boundary (its
// horizon is clamped to it), so the outer safety argument is untouched.
// The per-chunk argument then holds at both radii: a cross-cluster
// envelope sent inside outer chunk [c, c+L) delivers at >= c+L (outer
// barrier injection), and an intra-cluster envelope sent inside inner
// chunk [b, b+l) delivers at >= b+l (drained into the member's spool at
// the next inner barrier). A truncated final inner chunk [b, e) with
// e <= b+l is safe for the same reason: everything it sends delivers at
// >= b+l >= e. Same-engine sends bypass the window machinery entirely —
// they go straight into the owning engine's delivery spool, which applies
// the identical canonical per-(endpoint, cycle) order in every mode.
package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// DefaultAdaptiveCap is the default ceiling on adaptive window widening, in
// units of the lookahead L: windows grow geometrically 1, 2, 4, ... up to
// this multiplier while cross-shard traffic is absent. 64 puts the widest
// window at a few thousand cycles with the PCIe-calibrated L — long enough
// to amortize barriers across a local compute phase, short enough that the
// group still reaches quiescent points (checkpoints, watchdog checks,
// dashboard snapshots) at a useful cadence. Inner windows use the same cap
// in units of the inner lookahead; their width is additionally clamped by
// the enclosing outer chunk.
const DefaultAdaptiveCap = 64

// Group executes a set of Engines — one per shard — in bounded-lag windows,
// optionally nested two levels deep (see NewHierGroup). Construct with
// NewGroup or NewHierGroup; it implements CrossNet for cross-shard sends.
//
// Threading contract: during a window each engine runs on its own worker
// goroutine and must only touch state owned by its shard; Send(src, ...)
// must be called from the goroutine of the engine owning endpoint src.
// Between windows (and before Run / after it returns) the group is
// quiescent and the caller's goroutine may inspect any shard freely — the
// window barrier provides the happens-before edge.
type Group struct {
	lookahead Time // outer: minimum cross-cluster (PCIe) crossing
	innerLA   Time // inner: minimum intra-cluster cross-engine crossing
	engines   []*Engine
	clusters  [][]int // engine indices per cluster (all singletons when flat)
	engCl     []int   // engine index -> cluster index
	epEng     []int   // endpoint id -> engine index
	seqs      []uint64
	spools    []*spool                // per-engine canonical delivery spool
	minLat    func(src, dst int) Time // optional per-edge model floor
	// outbox is the batched envelope hand-off: one preallocated slice per
	// (src, dst) engine pair at index src*engines+dst. During a window row
	// src is owned by engine src's goroutine (Send appends, nothing else
	// touches it); intra-cluster rows drain at the cluster's inner barriers
	// and cross-cluster rows at the outer window barrier, each merging into
	// the destination engine's spool. Slices are reused window to window, so
	// a warmed-up group hands envelopes off without allocating.
	outbox   [][]netEntry
	horizon  Time  // current window's exclusive upper bound
	running  bool  // inside a window (workers active)
	active   []int // active-cluster scratch, reused window to window
	affinity bool  // pin shard workers with runtime.LockOSThread

	// Adaptive-lookahead state. width is the next window's width in units
	// of lookahead; maxWidth caps the geometric widening (1 = fixed
	// windows). chunksRan is the width the current window actually reached
	// before traffic (or idleness) ended it — written by the last barrier
	// arriver, read by the coordinator after the workers join.
	width     int
	maxWidth  int
	chunksRan int
	bar       winBarrier

	// cl holds each cluster's inner synchronizer (meaningful only for
	// clusters with more than one engine).
	cl []clusterState

	// Synchronizer telemetry, maintained unconditionally (a few integer
	// bumps per window). envOut[i] is written only by engine i's goroutine
	// during a window; envIn[i] is written by engine i's own sends, its
	// cluster's inner-barrier drains and the quiescent coordinator —
	// contexts the barriers already order. Everything else is
	// coordinator-owned and touched only while the group is quiescent.
	windows    uint64   // completed synchronization windows
	chunks     uint64   // completed window chunks (windows in units of L)
	widenings  uint64   // windows after which the width grew
	collapses  uint64   // windows after which the width snapped back to 1
	digest     uint64   // FNV-1a over the (start, width) outer window sequence
	ranWindows []uint64 // windows in which engine i actually executed work
	envIn      []uint64 // envelopes merged toward engine i
	envOut     []uint64 // envelopes sent by engine i

	// syncStats, when bound with EnableSyncStats, mirrors the telemetry into
	// per-shard stats registries at every barrier.
	syncStats []shardSyncStats

	// OnBarrier, when non-nil, runs at the end of every synchronization
	// window, after the worker goroutines have joined and before the next
	// window begins. The group is quiescent: the callback may inspect any
	// shard engine or registry freely, but must not schedule events or send
	// envelopes. The observability layer publishes its snapshot here.
	OnBarrier func()
}

// clusterState is one cluster's inner window machinery: a private chunk
// barrier plus the same plan/adapt/digest state the outer level keeps, in
// units of the inner lookahead. All fields are touched only under the
// cluster's barrier lock (or while the group is quiescent).
type clusterState struct {
	engines  []int
	bar      winBarrier
	width    int // next inner window width, in units of innerLA
	maxWidth int
	winStart Time // current inner window start
	winEnd   Time // current inner window's exclusive clamp (tiles the outer chunk)

	windows   uint64
	chunks    uint64
	widenings uint64
	collapses uint64
	chunksRan int
	digest    uint64 // FNV-1a over the (start, chunks) inner window sequence
}

// shardSyncStats is the per-shard registry binding of the synchronizer
// telemetry (see EnableSyncStats).
type shardSyncStats struct {
	windows   *Counter
	chunks    *Counter
	widenings *Counter
	collapses *Counter
	envIn     *Counter
	envOut    *Counter
	horizon   *Gauge
	width     *Gauge
	lag       *Gauge

	// Inner-group instruments, bound only on the first engine of a
	// multi-engine cluster.
	innerWindows   *Counter
	innerChunks    *Counter
	innerWidenings *Counter
	innerCollapses *Counter
	innerWidth     *Gauge
}

// fnvOffset/fnvPrime are the FNV-1a constants for the window-sequence
// digest. Starting from the offset basis keeps the digest of an empty
// sequence nonzero, so a snapshot can always carry it.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// fnvFold mixes one word into the running window digest.
func fnvFold(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// NewGroup builds a flat synchronizer over the given shard engines, with
// one endpoint per engine. lookahead is the minimum cross-shard latency in
// cycles; it must be positive, and every Send must honor it. Windows start
// fixed at the lookahead; call SetAdaptive to let them widen when
// cross-shard traffic is sparse.
func NewGroup(lookahead Time, engines ...*Engine) *Group {
	clusters := make([][]*Engine, len(engines))
	for i, e := range engines {
		clusters[i] = []*Engine{e}
	}
	epEngine := make([]int, len(engines))
	for i := range epEngine {
		epEngine[i] = i
	}
	return NewHierGroup(lookahead, lookahead, clusters, epEngine)
}

// NewHierGroup builds a two-level synchronizer: engines grouped into
// clusters (one per FPGA), cross-cluster sends honoring the outer
// lookahead and cross-engine sends within one cluster honoring the inner
// lookahead, with endpoint ids mapped onto engines by epEngine. Both
// lookaheads must be positive and inner must not exceed outer. Clusters of
// one engine skip the inner machinery entirely, so a hierarchical group
// whose clusters are all singletons behaves exactly like a flat one.
func NewHierGroup(outer, inner Time, clusters [][]*Engine, epEngine []int) *Group {
	if outer == 0 || inner == 0 {
		panic("sim: parallel group needs positive lookaheads")
	}
	if inner > outer {
		panic(fmt.Sprintf("sim: inner lookahead %d exceeds outer lookahead %d", inner, outer))
	}
	if len(clusters) == 0 {
		panic("sim: parallel group needs at least one cluster")
	}
	g := &Group{
		lookahead: outer,
		innerLA:   inner,
		width:     1,
		maxWidth:  1,
		digest:    fnvOffset,
		cl:        make([]clusterState, len(clusters)),
	}
	for ci, members := range clusters {
		if len(members) == 0 {
			panic("sim: parallel group cluster with no engines")
		}
		cs := &g.cl[ci]
		cs.width = 1
		cs.maxWidth = 1
		cs.digest = fnvOffset
		var idx []int
		for _, e := range members {
			idx = append(idx, len(g.engines))
			g.engCl = append(g.engCl, ci)
			g.engines = append(g.engines, e)
		}
		cs.engines = idx
		g.clusters = append(g.clusters, idx)
	}
	if len(epEngine) == 0 {
		panic("sim: parallel group needs at least one endpoint")
	}
	for _, ei := range epEngine {
		if ei < 0 || ei >= len(g.engines) {
			panic(fmt.Sprintf("sim: endpoint mapped to engine %d outside group of %d engines", ei, len(g.engines)))
		}
	}
	g.epEng = append([]int(nil), epEngine...)
	n := len(g.engines)
	g.seqs = make([]uint64, len(g.epEng))
	g.outbox = make([][]netEntry, n*n)
	g.spools = make([]*spool, n)
	for i, e := range g.engines {
		g.spools[i] = newSpool(e)
	}
	g.ranWindows = make([]uint64, n)
	g.envIn = make([]uint64, n)
	g.envOut = make([]uint64, n)
	return g
}

// SetAdaptive sets the adaptive-lookahead cap: the maximum window width as a
// multiple of the lookahead, applied at both levels (outer windows in units
// of the outer lookahead, inner windows in units of the inner one — inner
// widths are additionally clamped by the enclosing outer chunk). 1 keeps
// fixed windows; larger caps let windows double geometrically while no
// cross-shard envelope appears and collapse back to 1 the window traffic
// returns. Must be called while the group is quiescent. The cap is part of
// the window-sequence identity a replay checkpoint records, so a restore
// must use the same value (core.Replay verifies it).
func (g *Group) SetAdaptive(cap int) {
	if cap < 1 {
		panic(fmt.Sprintf("sim: adaptive lookahead cap %d; need >= 1", cap))
	}
	g.maxWidth = cap
	if g.width > cap {
		g.width = cap
	}
	for ci := range g.cl {
		cs := &g.cl[ci]
		cs.maxWidth = cap
		if cs.width > cap {
			cs.width = cap
		}
	}
}

// SetAffinity, when on, makes every shard worker pin itself to an OS thread
// (runtime.LockOSThread) for the duration of its window, so a shard's
// event pool, heap and model state keep their cache affinity instead of
// migrating across threads mid-window. Pure execution policy: it affects
// neither the event stream nor the window sequence.
func (g *Group) SetAffinity(on bool) { g.affinity = on }

// SetMinLatencyFunc arms an additional per-edge model-latency floor on top
// of the topology bounds the group always enforces (inner lookahead for
// intra-cluster cross-engine sends, outer lookahead for cross-cluster
// sends): a send undercutting class(src, dst) panics even when its
// endpoints share an engine, mirroring SerialNet.SetMinLatencyFunc so both
// modes police the same contract.
func (g *Group) SetMinLatencyFunc(class func(src, dst int) Time) {
	g.minLat = class
}

// EnableSyncStats registers the synchronizer's telemetry as instruments in
// the given per-shard registries (regs[i] belongs to engine i) under the
// "fpga<i>.sync." prefix — "node<i>.sync." when the group is hierarchical
// (sub-FPGA sharding, where a shard is a node). Mirrored per engine:
// windows and chunks executed, envelopes merged in and sent out,
// widening/collapse counts, the current window horizon and width, and the
// engine's lag behind that horizon. Each multi-engine cluster additionally
// binds its inner-window counters ("...sync.inner_windows" etc.) on its
// first engine's registry. Values are refreshed at every window barrier.
// Note that a report folding these registries will then differ from a
// serial run's (a serial engine has no windows), so the feature is opt-in —
// see core.Config.SyncMetrics.
func (g *Group) EnableSyncStats(regs []*Stats) {
	if len(regs) != len(g.engines) {
		panic(fmt.Sprintf("sim: EnableSyncStats got %d registries for %d shards", len(regs), len(g.engines)))
	}
	kind := "fpga"
	if g.Hierarchical() {
		kind = "node"
	}
	g.syncStats = make([]shardSyncStats, len(regs))
	for i, s := range regs {
		prefix := fmt.Sprintf("%s%d.sync.", kind, i)
		g.syncStats[i] = shardSyncStats{
			windows:   s.Counter(prefix + "windows"),
			chunks:    s.Counter(prefix + "chunks"),
			widenings: s.Counter(prefix + "widenings"),
			collapses: s.Counter(prefix + "collapses"),
			envIn:     s.Counter(prefix + "envelopes_in"),
			envOut:    s.Counter(prefix + "envelopes_out"),
			horizon:   s.Gauge(prefix + "horizon"),
			width:     s.Gauge(prefix + "width"),
			lag:       s.Gauge(prefix + "lag"),
		}
	}
	for ci, members := range g.clusters {
		if len(members) < 2 {
			continue
		}
		ss := &g.syncStats[members[0]]
		s := regs[members[0]]
		prefix := fmt.Sprintf("%s%d.sync.", kind, members[0])
		_ = ci
		ss.innerWindows = s.Counter(prefix + "inner_windows")
		ss.innerChunks = s.Counter(prefix + "inner_chunks")
		ss.innerWidenings = s.Counter(prefix + "inner_widenings")
		ss.innerCollapses = s.Counter(prefix + "inner_collapses")
		ss.innerWidth = s.Gauge(prefix + "inner_width")
	}
}

// flushSyncStats assigns the current telemetry into the bound registries.
// Assignment (not accumulation) keeps it idempotent; it runs only at
// barriers, where the coordinator owns every shard registry.
func (g *Group) flushSyncStats() {
	for i := range g.syncStats {
		ss := &g.syncStats[i]
		ss.windows.Value = g.ranWindows[i]
		ss.chunks.Value = g.chunks
		ss.widenings.Value = g.widenings
		ss.collapses.Value = g.collapses
		ss.envIn.Value = g.envIn[i]
		ss.envOut.Value = g.envOut[i]
		ss.horizon.Set(int64(g.horizon))
		ss.width.Set(int64(g.width))
		lag := int64(0)
		if le := g.engines[i].LastEventTime(); g.horizon > 0 && g.horizon-1 > le {
			lag = int64(g.horizon - 1 - le)
		}
		ss.lag.Set(lag)
		if ss.innerWindows != nil {
			cs := &g.cl[g.engCl[i]]
			ss.innerWindows.Value = cs.windows
			ss.innerChunks.Value = cs.chunks
			ss.innerWidenings.Value = cs.widenings
			ss.innerCollapses.Value = cs.collapses
			ss.innerWidth.Set(int64(cs.width))
		}
	}
}

// ShardSync is one shard engine's synchronizer state, captured at a barrier.
type ShardSync struct {
	Shard     int    `json:"shard"`
	Windows   uint64 `json:"windows"` // windows in which the shard ran work
	EnvIn     uint64 `json:"env_in"`  // envelopes merged into the shard
	EnvOut    uint64 `json:"env_out"` // envelopes the shard sent
	LastEvent Time   `json:"last_event"`
	Pending   int    `json:"pending"` // live events still queued
	Lag       Time   `json:"lag"`     // cycles behind the window horizon
}

// InnerSync is one cluster's inner-window synchronizer state (sub-FPGA
// sharding), captured at an outer barrier.
type InnerSync struct {
	Cluster   int    `json:"cluster"`
	Engines   int    `json:"engines"`
	Lookahead Time   `json:"lookahead"` // inner lookahead in cycles
	Windows   uint64 `json:"windows"`   // completed inner windows
	Chunks    uint64 `json:"chunks"`    // completed inner chunks (units of the inner lookahead)
	Width     int    `json:"width"`     // next inner window's width
	WidthCap  int    `json:"width_cap"`
	Widenings uint64 `json:"widenings"`
	Collapses uint64 `json:"collapses"`
}

// GroupSync is the synchronizer's state, captured at a barrier: window and
// chunk totals, the adaptive-width machinery, per-shard occupancy, and —
// under sub-FPGA sharding — each cluster's inner-window state.
type GroupSync struct {
	Windows   uint64      `json:"windows"`   // completed synchronization windows
	Chunks    uint64      `json:"chunks"`    // completed chunks (windows in units of L)
	Horizon   Time        `json:"horizon"`   // last window's exclusive upper bound
	Lookahead Time        `json:"lookahead"` // minimum window width in cycles
	Width     int         `json:"width"`     // next window's width, in units of L
	WidthCap  int         `json:"width_cap"` // adaptive cap (1 = fixed windows)
	Widenings uint64      `json:"widenings"` // windows after which the width grew
	Collapses uint64      `json:"collapses"` // windows that snapped the width back
	Shards    []ShardSync `json:"shards"`
	Inner     []InnerSync `json:"inner,omitempty"` // per multi-engine cluster
}

// SyncSnapshot captures the synchronizer's state: window/chunk totals, the
// current horizon, the adaptive window width, and per-shard occupancy. It
// must only be called while the group is quiescent (between windows — e.g.
// from OnBarrier — or before/after Run).
func (g *Group) SyncSnapshot() GroupSync {
	sn := GroupSync{
		Windows:   g.windows,
		Chunks:    g.chunks,
		Horizon:   g.horizon,
		Lookahead: g.lookahead,
		Width:     g.width,
		WidthCap:  g.maxWidth,
		Widenings: g.widenings,
		Collapses: g.collapses,
		Shards:    make([]ShardSync, len(g.engines)),
	}
	for i, e := range g.engines {
		le := e.LastEventTime()
		var lag Time
		if g.horizon > 0 && g.horizon-1 > le {
			lag = g.horizon - 1 - le
		}
		sn.Shards[i] = ShardSync{
			Shard:     i,
			Windows:   g.ranWindows[i],
			EnvIn:     g.envIn[i],
			EnvOut:    g.envOut[i],
			LastEvent: le,
			Pending:   e.Pending(),
			Lag:       lag,
		}
	}
	for ci := range g.cl {
		cs := &g.cl[ci]
		if len(cs.engines) < 2 {
			continue
		}
		sn.Inner = append(sn.Inner, InnerSync{
			Cluster:   ci,
			Engines:   len(cs.engines),
			Lookahead: g.innerLA,
			Windows:   cs.windows,
			Chunks:    cs.chunks,
			Width:     cs.width,
			WidthCap:  cs.maxWidth,
			Widenings: cs.widenings,
			Collapses: cs.collapses,
		})
	}
	return sn
}

// Windows returns the number of completed synchronization windows. It is
// the sharded engine's replay cursor: re-executing the same build for the
// same number of windows reproduces the exact global state, so a replay
// checkpoint of a sharded run records this count where a serial one records
// the executed-event count. Under adaptive lookahead the window widths are
// themselves deterministic, so the cursor stays exact; WindowDigest lets a
// restore verify it replayed the identical width sequence.
func (g *Group) Windows() uint64 { return g.windows }

// Chunks returns the number of completed window chunks — the window count
// normalized to units of the lookahead, comparable across adaptive caps.
func (g *Group) Chunks() uint64 { return g.chunks }

// WindowDigest returns the running FNV-1a fingerprint of the window
// sequence: every completed outer window folds in its start time and the
// width it actually reached, and — under sub-FPGA sharding — each
// cluster's inner window sequence folds its own digest on top, in cluster
// order. Two runs that stepped the same windows at the same widths at both
// levels — what a replay cursor promises — have equal digests.
func (g *Group) WindowDigest() uint64 {
	h := g.digest
	for ci := range g.cl {
		if len(g.cl[ci].engines) > 1 {
			h = fnvFold(h, g.cl[ci].digest)
		}
	}
	return h
}

// Shards returns the number of shard engines.
func (g *Group) Shards() int { return len(g.engines) }

// Clusters returns the number of engine clusters (FPGAs). Equal to
// Shards() for a flat group.
func (g *Group) Clusters() int { return len(g.clusters) }

// Hierarchical reports whether any cluster holds more than one engine —
// i.e. whether the inner window machinery is in play.
func (g *Group) Hierarchical() bool {
	for _, members := range g.clusters {
		if len(members) > 1 {
			return true
		}
	}
	return false
}

// Engine returns shard i's engine.
func (g *Group) Engine(i int) *Engine { return g.engines[i] }

// Lookahead returns the minimum outer synchronization window length in
// cycles.
func (g *Group) Lookahead() Time { return g.lookahead }

// InnerLookahead returns the minimum inner (intra-cluster) window length in
// cycles; equal to Lookahead for a flat group.
func (g *Group) InnerLookahead() Time { return g.innerLA }

// WidthCap returns the adaptive widening cap (1 = fixed windows).
func (g *Group) WidthCap() int { return g.maxWidth }

// Send implements CrossNet. Same-engine sends go straight into the owning
// engine's delivery spool; cross-engine sends park in the (src, dst)
// engine outbox for the next inner (same cluster) or outer (cross-cluster)
// barrier merge. Must be called from the goroutine of the engine owning
// endpoint src (or from the coordinator while the group is quiescent). A
// delivery closer than the governing lookahead to the sender's clock would
// mean the model's cross-shard latency undercuts the synchronizer — a
// wiring bug — and panics. (Deliveries inside the current window's horizon
// are fine under adaptive widening: the chunk discipline ends the window
// before any shard crosses the boundary they land beyond.)
func (g *Group) Send(src, dst int, deliverAt Time, fn func()) {
	if src < 0 || src >= len(g.epEng) || dst < 0 || dst >= len(g.epEng) {
		panic(fmt.Sprintf("sim: cross-shard send %d->%d outside group of %d endpoints", src, dst, len(g.epEng)))
	}
	se, de := g.epEng[src], g.epEng[dst]
	sent := g.engines[se].Now()
	if g.running {
		var min Time
		if se != de {
			min = g.lookahead
			if g.engCl[se] == g.engCl[de] {
				min = g.innerLA
			}
		}
		if g.minLat != nil {
			if m := g.minLat(src, dst); m > min {
				min = m
			}
		}
		if min > 0 && deliverAt < sent+min {
			panic(fmt.Sprintf("sim: cross-shard send %d->%d at %d delivers at %d; model latency undercuts lookahead %d",
				src, dst, sent, deliverAt, min))
		}
	}
	g.seqs[src]++
	g.envOut[se]++
	e := netEntry{at: deliverAt, sent: sent, src: src, dst: dst, seq: g.seqs[src], fn: fn}
	if se == de {
		g.envIn[de]++
		g.spools[de].insert(e)
		return
	}
	box := &g.outbox[se*len(g.engines)+de]
	*box = append(*box, e)
}

// inject merges every parked envelope into its destination engine's spool.
// The spool applies each (endpoint, cycle)'s deliveries in canonical order
// at the front of the cycle, exactly like the serial reference; deliveries
// to different endpoints carry no cross-order (their state is disjoint).
// Consumed entries are zeroed so delivered closures don't linger, and all
// buffers are reused.
func (g *Group) inject() {
	n := len(g.engines)
	for de := 0; de < n; de++ {
		sp := g.spools[de]
		for se := 0; se < n; se++ {
			if se == de {
				continue
			}
			box := &g.outbox[se*n+de]
			for j := range *box {
				g.envIn[de]++
				sp.insert((*box)[j])
				(*box)[j] = netEntry{}
			}
			*box = (*box)[:0]
		}
	}
}

// drainIntraCluster merges the cluster's internal outbox rows into its
// member spools. It runs under the cluster's inner barrier lock with every
// member parked, which orders the spool insertions against member
// execution on both sides.
func (g *Group) drainIntraCluster(ci int) {
	n := len(g.engines)
	members := g.cl[ci].engines
	for _, de := range members {
		sp := g.spools[de]
		for _, se := range members {
			if se == de {
				continue
			}
			box := &g.outbox[se*n+de]
			for j := range *box {
				g.envIn[de]++
				sp.insert((*box)[j])
				(*box)[j] = netEntry{}
			}
			*box = (*box)[:0]
		}
	}
}

// pendingEnvelopes reports whether any outbox holds an undelivered envelope.
// At outer barriers only cross-cluster rows can be non-empty: every cluster
// leaves its outer chunk through an inner drain.
func (g *Group) pendingEnvelopes() bool {
	for i := range g.outbox {
		if len(g.outbox[i]) > 0 {
			return true
		}
	}
	return false
}

// pendingIntraCluster reports whether the cluster's internal rows hold an
// undelivered envelope.
func (g *Group) pendingIntraCluster(ci int) bool {
	n := len(g.engines)
	members := g.cl[ci].engines
	for _, se := range members {
		for _, de := range members {
			if se != de && len(g.outbox[se*n+de]) > 0 {
				return true
			}
		}
	}
	return false
}

// minNext returns the earliest live event time across all shards.
func (g *Group) minNext() (Time, bool) {
	var best Time
	found := false
	for _, e := range g.engines {
		if t, ok := e.NextEventTime(); ok && (!found || t < best) {
			best, found = t, true
		}
	}
	return best, found
}

// winBarrier is the in-window chunk barrier: a reusable phase rendezvous
// for the window's participant shards. The last arriver of each phase
// evaluates the window-over decision while it holds the lock (so every
// participant's work for the chunk happens-before the decision) and the
// verdict is read by all under the same lock on the way out.
type winBarrier struct {
	mu      sync.Mutex
	cond    sync.Cond
	parties int
	arrived int
	phase   uint64
	stop    bool
}

// reset prepares the barrier for a window with the given participant count.
func (b *winBarrier) reset(parties int) {
	b.parties = parties
	b.arrived = 0
	b.stop = false
	if b.cond.L == nil {
		b.cond.L = &b.mu
	}
}

// arrive blocks until every participant has finished the chunk, then
// reports whether the window continues. over runs exactly once per phase,
// in the last arriver, under the barrier lock.
func (b *winBarrier) arrive(over func() bool) (cont bool) {
	b.mu.Lock()
	b.arrived++
	if b.arrived == b.parties {
		b.stop = over()
		b.arrived = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		phase := b.phase
		for phase == b.phase {
			b.cond.Wait()
		}
	}
	stop := b.stop
	b.mu.Unlock()
	return !stop
}

// windowOver is the outer chunk-boundary decision, made by the last barrier
// arriver after chunk k (1-based) of a window starting at start with the
// given planned width. The window ends when it reaches its planned width,
// when any outbox parked a cross-cluster envelope (its delivery lands at or
// beyond the next chunk boundary, so stopping here is exactly a
// fixed-window barrier), or when no shard has work left before the planned
// horizon (the remaining chunks would all be empty). Reading other shards'
// engines and outboxes is safe here: every participant is parked in the
// barrier and the barrier lock orders the reads.
func (g *Group) windowOver(start Time, k, planned int) bool {
	g.chunksRan = k
	if k >= planned {
		return true
	}
	if g.pendingEnvelopes() {
		return true
	}
	end := start + Time(planned)*g.lookahead
	for _, e := range g.engines {
		if t, ok := e.NextEventTime(); ok && t < end {
			return false
		}
	}
	return true
}

// innerSetup plans a cluster's next inner window inside the outer chunk
// ending (exclusively) at chunkEnd. It runs under the cluster's barrier
// lock: first it drains the cluster's internal envelopes (their flush
// events then count as member work), then it looks for the earliest member
// event before the chunk boundary. It returns true — "stop" — when the
// cluster has nothing left to do in this outer chunk.
func (g *Group) innerSetup(ci int, chunkEnd Time) bool {
	g.drainIntraCluster(ci)
	cs := &g.cl[ci]
	var t Time
	found := false
	for _, ei := range cs.engines {
		if next, ok := g.engines[ei].NextEventTime(); ok && next < chunkEnd && (!found || next < t) {
			t, found = next, true
		}
	}
	if !found {
		return true
	}
	cs.winStart = t
	end := t + Time(cs.width)*g.innerLA
	if end > chunkEnd {
		end = chunkEnd
	}
	cs.winEnd = end
	return false
}

// innerOver is the inner chunk-boundary decision after inner chunk k
// (1-based) of the cluster's current window: over when the window reached
// its clamp, parked intra-cluster traffic, or ran out of member work. When
// the window ends it also closes the books — chunk count, digest fold and
// the inner width adaptation — still under the barrier lock.
func (g *Group) innerOver(ci, k int) bool {
	cs := &g.cl[ci]
	cs.chunksRan = k
	over := true
	switch {
	case cs.winStart+Time(k)*g.innerLA >= cs.winEnd:
	case g.pendingIntraCluster(ci):
	default:
		over = false
		for _, ei := range cs.engines {
			if t, ok := g.engines[ei].NextEventTime(); ok && t < cs.winEnd {
				break
			}
			if ei == cs.engines[len(cs.engines)-1] {
				over = true
			}
		}
	}
	if !over {
		return false
	}
	cs.windows++
	cs.chunks += uint64(k)
	cs.digest = fnvFold(fnvFold(cs.digest, uint64(cs.winStart)), uint64(k))
	if g.pendingIntraCluster(ci) {
		if cs.width > 1 {
			cs.collapses++
		}
		cs.width = 1
	} else if cs.width < cs.maxWidth {
		cs.width *= 2
		if cs.width > cs.maxWidth {
			cs.width = cs.maxWidth
		}
		cs.widenings++
	}
	return true
}

// runClusterChunk executes one member engine's share of a single outer
// chunk ending (exclusively) at chunkEnd. Singleton clusters run straight
// through; multi-engine clusters alternate setup phases (drain + plan) and
// inner chunk loops at the cluster barrier until the cluster is idle up to
// the chunk boundary. Inner windows tile the outer chunk: their horizon
// never crosses chunkEnd.
func (g *Group) runClusterChunk(ci int, e *Engine, chunkEnd Time) {
	cs := &g.cl[ci]
	if len(cs.engines) == 1 {
		e.runTo(chunkEnd - 1)
		return
	}
	for {
		if !cs.bar.arrive(func() bool { return g.innerSetup(ci, chunkEnd) }) {
			return
		}
		for k := 1; ; k++ {
			end := cs.winStart + Time(k)*g.innerLA
			if end > cs.winEnd {
				end = cs.winEnd
			}
			e.runTo(end - 1)
			if !cs.bar.arrive(func() bool { return g.innerOver(ci, k) }) {
				break
			}
		}
	}
}

// runEngineWindow is one participant engine's outer window: execute chunk
// after chunk of L cycles (each possibly expanded into inner windows by its
// cluster), meeting the other participants at the outer chunk barrier,
// until the last arriver calls the window over.
func (g *Group) runEngineWindow(ci int, e *Engine, start Time, planned int) {
	if g.affinity {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	for k := 1; ; k++ {
		g.runClusterChunk(ci, e, start+Time(k)*g.lookahead)
		if !g.bar.arrive(func() bool { return g.windowOver(start, k, planned) }) {
			return
		}
	}
}

// StepWindow runs one synchronization window: injects pending envelopes,
// finds the global next event time T, and lets every cluster with work
// before the horizon execute it concurrently — chunk by chunk under the
// adaptive width, each multi-engine cluster running its own inner windows
// inside each chunk. Returns false when no work remains anywhere.
func (g *Group) StepWindow() bool {
	g.inject()
	t, ok := g.minNext()
	if !ok {
		return false
	}
	planned := g.width
	g.horizon = t + Time(planned)*g.lookahead
	g.active = g.active[:0]
	parties := 0
	for ci, members := range g.clusters {
		act := false
		for _, ei := range members {
			if next, ok := g.engines[ei].NextEventTime(); ok && next < g.horizon {
				g.ranWindows[ei]++
				act = true
			}
		}
		if act {
			g.active = append(g.active, ci)
			parties += len(members)
		}
	}
	g.running = true
	g.chunksRan = planned
	for _, ci := range g.active {
		if len(g.clusters[ci]) > 1 {
			g.cl[ci].bar.reset(len(g.clusters[ci]))
		}
	}
	switch {
	case planned == 1 && parties == 1:
		// Fixed-width window with a single busy singleton cluster: run
		// inline, no goroutine, no barrier.
		g.engines[g.clusters[g.active[0]][0]].runTo(g.horizon - 1)
	case planned == 1:
		// Fixed-width window: the outer chunk loop degenerates to one chunk
		// per cluster, so skip the outer chunk barrier entirely (the inner
		// machinery still runs inside the chunk).
		var wg sync.WaitGroup
		for _, ci := range g.active {
			for _, ei := range g.clusters[ci] {
				wg.Add(1)
				go func(ci int, e *Engine) {
					defer wg.Done()
					if g.affinity {
						runtime.LockOSThread()
						defer runtime.UnlockOSThread()
					}
					g.runClusterChunk(ci, e, g.horizon)
				}(ci, g.engines[ei])
			}
		}
		wg.Wait()
	case parties == 1:
		// Widened window, one busy singleton cluster: run the chunk loop
		// inline. The barrier with one party never blocks, but the chunk
		// decisions still run — the shard's own sends must end the window at
		// the correct boundary.
		g.bar.reset(1)
		g.runEngineWindow(g.active[0], g.engines[g.clusters[g.active[0]][0]], t, planned)
	default:
		g.bar.reset(parties)
		var wg sync.WaitGroup
		for _, ci := range g.active {
			for _, ei := range g.clusters[ci] {
				wg.Add(1)
				go func(ci int, e *Engine) {
					defer wg.Done()
					g.runEngineWindow(ci, e, t, planned)
				}(ci, g.engines[ei])
			}
		}
		wg.Wait()
	}
	g.running = false
	ran := g.chunksRan
	g.horizon = t + Time(ran)*g.lookahead
	g.windows++
	g.chunks += uint64(ran)
	g.digest = fnvFold(fnvFold(g.digest, uint64(t)), uint64(ran))
	// Adapt: traffic parked at this barrier collapses the width back to the
	// minimum crossing; a quiet window doubles it up to the cap.
	if g.pendingEnvelopes() {
		if g.width > 1 {
			g.collapses++
		}
		g.width = 1
	} else if g.width < g.maxWidth {
		g.width *= 2
		if g.width > g.maxWidth {
			g.width = g.maxWidth
		}
		g.widenings++
	}
	if g.syncStats != nil {
		g.flushSyncStats()
	}
	if g.OnBarrier != nil {
		g.OnBarrier()
	}
	return true
}

// Run executes windows until every shard drains, then aligns all engine
// clocks to the global last-event time (mirroring the serial engine, whose
// single clock rests on the last executed event). Returns that time.
func (g *Group) Run() Time {
	for g.StepWindow() {
	}
	t := g.Now()
	for _, e := range g.engines {
		e.alignTo(t)
	}
	return t
}

// Now returns the globally latest executed-event time. While the group is
// quiescent this matches what the serial engine's Now would report after
// executing the same events.
func (g *Group) Now() Time {
	var t Time
	for _, e := range g.engines {
		if le := e.LastEventTime(); le > t {
			t = le
		}
	}
	return t
}
