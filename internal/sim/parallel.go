// Sharded parallel execution: a Group runs several Engines on goroutines
// under a conservative bounded-lag synchronizer. The PCIe fabric's one-way
// latency is the lookahead window L: no shard can affect another sooner
// than L cycles out, so between barriers every shard may safely execute all
// of its events in the window [T, T+L) without seeing the others. At each
// barrier the shards' outboxes are merged and injected in the canonical
// CrossNet order (see crossnet.go), which makes a sharded run produce the
// exact event order — and therefore byte-identical metrics — of the serial
// reference.
package sim

import (
	"fmt"
	"slices"
	"sync"
)

// groupEnv is a timestamped cross-shard envelope parked in a shard outbox.
type groupEnv struct {
	netEntry
	dst int
}

// Group executes a set of Engines — one per shard — in bounded-lag windows.
// Construct with NewGroup; it implements CrossNet for cross-shard sends.
//
// Threading contract: during a window each engine runs on its own worker
// goroutine and must only touch state owned by its shard; Send(src, ...)
// must be called from shard src's goroutine. Between windows (and before
// Run / after it returns) the group is quiescent and the caller's goroutine
// may inspect any shard freely — the window barrier provides the
// happens-before edge.
type Group struct {
	lookahead Time
	engines   []*Engine
	seqs      []uint64
	outbox    [][]groupEnv
	horizon   Time       // current window's exclusive upper bound
	running   bool       // inside a window (workers active)
	merged    []groupEnv // inject scratch, reused window to window

	// Synchronizer telemetry, maintained unconditionally (a few integer
	// bumps per window). envOut[i] is written only by shard i's goroutine
	// during a window; everything else is coordinator-owned and touched only
	// while the group is quiescent — the window WaitGroup provides the
	// happens-before edges in both directions.
	windows    uint64   // completed synchronization windows
	ranWindows []uint64 // windows in which shard i actually executed work
	envIn      []uint64 // envelopes injected into shard i (merged deliveries)
	envOut     []uint64 // envelopes sent by shard i

	// syncStats, when bound with EnableSyncStats, mirrors the telemetry into
	// per-shard stats registries at every barrier.
	syncStats []shardSyncStats

	// OnBarrier, when non-nil, runs at the end of every synchronization
	// window, after the worker goroutines have joined and before the next
	// window begins. The group is quiescent: the callback may inspect any
	// shard engine or registry freely, but must not schedule events or send
	// envelopes. The observability layer publishes its snapshot here.
	OnBarrier func()
}

// shardSyncStats is the per-shard registry binding of the synchronizer
// telemetry (see EnableSyncStats).
type shardSyncStats struct {
	windows *Counter
	envIn   *Counter
	envOut  *Counter
	horizon *Gauge
	lag     *Gauge
}

// NewGroup builds a synchronizer over the given shard engines. lookahead is
// the minimum cross-shard latency in cycles; it must be positive, and every
// Send must honor it.
func NewGroup(lookahead Time, engines ...*Engine) *Group {
	if lookahead == 0 {
		panic("sim: parallel group needs a positive lookahead")
	}
	if len(engines) == 0 {
		panic("sim: parallel group needs at least one engine")
	}
	return &Group{
		lookahead:  lookahead,
		engines:    engines,
		seqs:       make([]uint64, len(engines)),
		outbox:     make([][]groupEnv, len(engines)),
		ranWindows: make([]uint64, len(engines)),
		envIn:      make([]uint64, len(engines)),
		envOut:     make([]uint64, len(engines)),
	}
}

// EnableSyncStats registers the synchronizer's telemetry as instruments in
// the given per-shard registries (regs[i] belongs to shard i) under the
// "fpga<i>.sync." prefix: windows executed, envelopes merged in and sent
// out, the current window horizon, and the shard's lag behind that horizon.
// Values are refreshed at every window barrier. Note that a report folding
// these registries will then differ from a serial run's (a serial engine has
// no windows), so the feature is opt-in — see core.Config.SyncMetrics.
func (g *Group) EnableSyncStats(regs []*Stats) {
	if len(regs) != len(g.engines) {
		panic(fmt.Sprintf("sim: EnableSyncStats got %d registries for %d shards", len(regs), len(g.engines)))
	}
	g.syncStats = make([]shardSyncStats, len(regs))
	for i, s := range regs {
		prefix := fmt.Sprintf("fpga%d.sync.", i)
		g.syncStats[i] = shardSyncStats{
			windows: s.Counter(prefix + "windows"),
			envIn:   s.Counter(prefix + "envelopes_in"),
			envOut:  s.Counter(prefix + "envelopes_out"),
			horizon: s.Gauge(prefix + "horizon"),
			lag:     s.Gauge(prefix + "lag"),
		}
	}
}

// flushSyncStats assigns the current telemetry into the bound registries.
// Assignment (not accumulation) keeps it idempotent; it runs only at
// barriers, where the coordinator owns every shard registry.
func (g *Group) flushSyncStats() {
	for i := range g.syncStats {
		ss := &g.syncStats[i]
		ss.windows.Value = g.ranWindows[i]
		ss.envIn.Value = g.envIn[i]
		ss.envOut.Value = g.envOut[i]
		ss.horizon.Set(int64(g.horizon))
		lag := int64(0)
		if le := g.engines[i].LastEventTime(); g.horizon > 0 && g.horizon-1 > le {
			lag = int64(g.horizon - 1 - le)
		}
		ss.lag.Set(lag)
	}
}

// ShardSync is one shard's synchronizer state, captured at a barrier.
type ShardSync struct {
	Shard     int    `json:"shard"`
	Windows   uint64 `json:"windows"` // windows in which the shard ran work
	EnvIn     uint64 `json:"env_in"`  // envelopes merged into the shard
	EnvOut    uint64 `json:"env_out"` // envelopes the shard sent
	LastEvent Time   `json:"last_event"`
	Pending   int    `json:"pending"` // live events still queued
	Lag       Time   `json:"lag"`     // cycles behind the window horizon
}

// SyncSnapshot captures the synchronizer's state: total windows, the current
// horizon, and per-shard occupancy. It must only be called while the group
// is quiescent (between windows — e.g. from OnBarrier — or before/after Run).
func (g *Group) SyncSnapshot() (windows uint64, horizon Time, shards []ShardSync) {
	shards = make([]ShardSync, len(g.engines))
	for i, e := range g.engines {
		le := e.LastEventTime()
		var lag Time
		if g.horizon > 0 && g.horizon-1 > le {
			lag = g.horizon - 1 - le
		}
		shards[i] = ShardSync{
			Shard:     i,
			Windows:   g.ranWindows[i],
			EnvIn:     g.envIn[i],
			EnvOut:    g.envOut[i],
			LastEvent: le,
			Pending:   e.Pending(),
			Lag:       lag,
		}
	}
	return g.windows, g.horizon, shards
}

// Windows returns the number of completed synchronization windows. It is
// the sharded engine's replay cursor: re-executing the same build for the
// same number of windows reproduces the exact global state, so a replay
// checkpoint of a sharded run records this count where a serial one records
// the executed-event count.
func (g *Group) Windows() uint64 { return g.windows }

// Shards returns the number of shard engines.
func (g *Group) Shards() int { return len(g.engines) }

// Engine returns shard i's engine.
func (g *Group) Engine(i int) *Engine { return g.engines[i] }

// Lookahead returns the synchronization window length in cycles.
func (g *Group) Lookahead() Time { return g.lookahead }

// Send implements CrossNet: it parks fn in shard src's outbox for delivery
// on shard dst at deliverAt. Must be called from shard src's goroutine (or
// from the coordinator while the group is quiescent). A delivery time inside
// the current window would mean the model's cross-shard latency undercuts
// the lookahead — a wiring bug — and panics.
func (g *Group) Send(src, dst int, deliverAt Time, fn func()) {
	if src < 0 || src >= len(g.engines) || dst < 0 || dst >= len(g.engines) {
		panic(fmt.Sprintf("sim: cross-shard send %d->%d outside group of %d shards", src, dst, len(g.engines)))
	}
	if g.running && deliverAt < g.horizon {
		panic(fmt.Sprintf("sim: cross-shard send delivers at %d inside window ending %d; model latency undercuts lookahead %d",
			deliverAt, g.horizon, g.lookahead))
	}
	g.seqs[src]++
	g.envOut[src]++
	g.outbox[src] = append(g.outbox[src], groupEnv{
		netEntry: netEntry{at: deliverAt, sent: g.engines[src].Now(), src: src, seq: g.seqs[src], fn: fn},
		dst:      dst,
	})
}

// inject merges all outboxes in canonical order and pushes each envelope
// onto its destination engine as a front-of-cycle delivery. Injection order
// matters: AtFront assigns per-engine sequence numbers, so injecting in
// canonical order reproduces the serial engine's tie-break for deliveries
// that land on the same (destination, cycle).
func (g *Group) inject() {
	all := g.merged[:0]
	for i := range g.outbox {
		all = append(all, g.outbox[i]...)
		for j := range g.outbox[i] {
			g.outbox[i][j] = groupEnv{}
		}
		g.outbox[i] = g.outbox[i][:0]
	}
	slices.SortFunc(all, func(a, b groupEnv) int { return netCmp(a.netEntry, b.netEntry) })
	for i := range all {
		g.envIn[all[i].dst]++
		g.engines[all[i].dst].AtFront(all[i].at, all[i].fn)
		all[i] = groupEnv{}
	}
	g.merged = all[:0]
}

// minNext returns the earliest live event time across all shards.
func (g *Group) minNext() (Time, bool) {
	var best Time
	found := false
	for _, e := range g.engines {
		if t, ok := e.NextEventTime(); ok && (!found || t < best) {
			best, found = t, true
		}
	}
	return best, found
}

// StepWindow runs one synchronization window: injects pending envelopes,
// finds the global next event time T, and lets every shard with work before
// T+L execute it concurrently. Returns false when no work remains anywhere.
func (g *Group) StepWindow() bool {
	g.inject()
	t, ok := g.minNext()
	if !ok {
		return false
	}
	g.horizon = t + g.lookahead
	g.running = true
	var wg sync.WaitGroup
	for i, e := range g.engines {
		if next, ok := e.NextEventTime(); ok && next < g.horizon {
			g.ranWindows[i]++
			wg.Add(1)
			go func(e *Engine) {
				defer wg.Done()
				e.runTo(g.horizon - 1)
			}(e)
		}
	}
	wg.Wait()
	g.running = false
	g.windows++
	if g.syncStats != nil {
		g.flushSyncStats()
	}
	if g.OnBarrier != nil {
		g.OnBarrier()
	}
	return true
}

// Run executes windows until every shard drains, then aligns all engine
// clocks to the global last-event time (mirroring the serial engine, whose
// single clock rests on the last executed event). Returns that time.
func (g *Group) Run() Time {
	for g.StepWindow() {
	}
	t := g.Now()
	for _, e := range g.engines {
		e.alignTo(t)
	}
	return t
}

// Now returns the globally latest executed-event time. While the group is
// quiescent this matches what the serial engine's Now would report after
// executing the same events.
func (g *Group) Now() Time {
	var t Time
	for _, e := range g.engines {
		if le := e.LastEventTime(); le > t {
			t = le
		}
	}
	return t
}
