// Sharded parallel execution: a Group runs several Engines on goroutines
// under a conservative bounded-lag synchronizer. The PCIe fabric's one-way
// latency is the lookahead window L: no shard can affect another sooner
// than L cycles out, so between barriers every shard may safely execute all
// of its events in the window [T, T+L) without seeing the others. At each
// barrier the shards' outboxes are merged and injected in the canonical
// CrossNet order (see crossnet.go), which makes a sharded run produce the
// exact event order — and therefore byte-identical metrics — of the serial
// reference.
package sim

import (
	"fmt"
	"slices"
	"sync"
)

// groupEnv is a timestamped cross-shard envelope parked in a shard outbox.
type groupEnv struct {
	netEntry
	dst int
}

// Group executes a set of Engines — one per shard — in bounded-lag windows.
// Construct with NewGroup; it implements CrossNet for cross-shard sends.
//
// Threading contract: during a window each engine runs on its own worker
// goroutine and must only touch state owned by its shard; Send(src, ...)
// must be called from shard src's goroutine. Between windows (and before
// Run / after it returns) the group is quiescent and the caller's goroutine
// may inspect any shard freely — the window barrier provides the
// happens-before edge.
type Group struct {
	lookahead Time
	engines   []*Engine
	seqs      []uint64
	outbox    [][]groupEnv
	horizon   Time       // current window's exclusive upper bound
	running   bool       // inside a window (workers active)
	merged    []groupEnv // inject scratch, reused window to window
}

// NewGroup builds a synchronizer over the given shard engines. lookahead is
// the minimum cross-shard latency in cycles; it must be positive, and every
// Send must honor it.
func NewGroup(lookahead Time, engines ...*Engine) *Group {
	if lookahead == 0 {
		panic("sim: parallel group needs a positive lookahead")
	}
	if len(engines) == 0 {
		panic("sim: parallel group needs at least one engine")
	}
	return &Group{
		lookahead: lookahead,
		engines:   engines,
		seqs:      make([]uint64, len(engines)),
		outbox:    make([][]groupEnv, len(engines)),
	}
}

// Shards returns the number of shard engines.
func (g *Group) Shards() int { return len(g.engines) }

// Engine returns shard i's engine.
func (g *Group) Engine(i int) *Engine { return g.engines[i] }

// Lookahead returns the synchronization window length in cycles.
func (g *Group) Lookahead() Time { return g.lookahead }

// Send implements CrossNet: it parks fn in shard src's outbox for delivery
// on shard dst at deliverAt. Must be called from shard src's goroutine (or
// from the coordinator while the group is quiescent). A delivery time inside
// the current window would mean the model's cross-shard latency undercuts
// the lookahead — a wiring bug — and panics.
func (g *Group) Send(src, dst int, deliverAt Time, fn func()) {
	if src < 0 || src >= len(g.engines) || dst < 0 || dst >= len(g.engines) {
		panic(fmt.Sprintf("sim: cross-shard send %d->%d outside group of %d shards", src, dst, len(g.engines)))
	}
	if g.running && deliverAt < g.horizon {
		panic(fmt.Sprintf("sim: cross-shard send delivers at %d inside window ending %d; model latency undercuts lookahead %d",
			deliverAt, g.horizon, g.lookahead))
	}
	g.seqs[src]++
	g.outbox[src] = append(g.outbox[src], groupEnv{
		netEntry: netEntry{at: deliverAt, sent: g.engines[src].Now(), src: src, seq: g.seqs[src], fn: fn},
		dst:      dst,
	})
}

// inject merges all outboxes in canonical order and pushes each envelope
// onto its destination engine as a front-of-cycle delivery. Injection order
// matters: AtFront assigns per-engine sequence numbers, so injecting in
// canonical order reproduces the serial engine's tie-break for deliveries
// that land on the same (destination, cycle).
func (g *Group) inject() {
	all := g.merged[:0]
	for i := range g.outbox {
		all = append(all, g.outbox[i]...)
		for j := range g.outbox[i] {
			g.outbox[i][j] = groupEnv{}
		}
		g.outbox[i] = g.outbox[i][:0]
	}
	slices.SortFunc(all, func(a, b groupEnv) int { return netCmp(a.netEntry, b.netEntry) })
	for i := range all {
		g.engines[all[i].dst].AtFront(all[i].at, all[i].fn)
		all[i] = groupEnv{}
	}
	g.merged = all[:0]
}

// minNext returns the earliest live event time across all shards.
func (g *Group) minNext() (Time, bool) {
	var best Time
	found := false
	for _, e := range g.engines {
		if t, ok := e.NextEventTime(); ok && (!found || t < best) {
			best, found = t, true
		}
	}
	return best, found
}

// StepWindow runs one synchronization window: injects pending envelopes,
// finds the global next event time T, and lets every shard with work before
// T+L execute it concurrently. Returns false when no work remains anywhere.
func (g *Group) StepWindow() bool {
	g.inject()
	t, ok := g.minNext()
	if !ok {
		return false
	}
	g.horizon = t + g.lookahead
	g.running = true
	var wg sync.WaitGroup
	for _, e := range g.engines {
		if next, ok := e.NextEventTime(); ok && next < g.horizon {
			wg.Add(1)
			go func(e *Engine) {
				defer wg.Done()
				e.runTo(g.horizon - 1)
			}(e)
		}
	}
	wg.Wait()
	g.running = false
	return true
}

// Run executes windows until every shard drains, then aligns all engine
// clocks to the global last-event time (mirroring the serial engine, whose
// single clock rests on the last executed event). Returns that time.
func (g *Group) Run() Time {
	for g.StepWindow() {
	}
	t := g.Now()
	for _, e := range g.engines {
		e.alignTo(t)
	}
	return t
}

// Now returns the globally latest executed-event time. While the group is
// quiescent this matches what the serial engine's Now would report after
// executing the same events.
func (g *Group) Now() Time {
	var t Time
	for _, e := range g.engines {
		if le := e.LastEventTime(); le > t {
			t = le
		}
	}
	return t
}
