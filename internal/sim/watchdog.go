package sim

// Watchdog is a forward-progress monitor for deadlock detection. Every
// Interval cycles it checks whether any event other than its own check has
// executed. Three outcomes:
//
//   - progress was made (or events are still pending in the future): re-arm
//     and keep watching;
//   - no progress, nothing pending, and the inflight predicate reports
//     outstanding transactions: the system is wedged — fire the onStall
//     callback (once) and disarm;
//   - no progress and nothing in flight: the system has quiesced — disarm
//     silently so Engine.Run can drain.
//
// The check event itself is excluded from the progress count (same idea as
// the Sampler's quiesce detection), so an armed watchdog on an idle system
// does not keep the run alive.
type Watchdog struct {
	eng      *Engine
	interval Time
	inflight func() bool
	onStall  func()

	lastExec uint64
	fired    bool
	stopped  bool
}

// NewWatchdog creates and arms a watchdog. inflight reports whether
// transactions are outstanding somewhere in the model (typically a scan of
// occupancy gauges); onStall is invoked at most once, when no non-watchdog
// event has executed for a full interval while inflight() is true. Either
// callback may be nil.
func NewWatchdog(eng *Engine, interval Time, inflight func() bool, onStall func()) *Watchdog {
	if interval == 0 {
		interval = 1 << 20
	}
	w := &Watchdog{eng: eng, interval: interval, inflight: inflight, onStall: onStall}
	w.lastExec = eng.Executed()
	eng.Schedule(interval, w.check)
	return w
}

// Interval returns the check period in cycles.
func (w *Watchdog) Interval() Time { return w.interval }

// Fired reports whether the watchdog has detected a stall.
func (w *Watchdog) Fired() bool { return w.fired }

// Stop disarms the watchdog permanently.
func (w *Watchdog) Stop() { w.stopped = true }

func (w *Watchdog) check() {
	if w.stopped {
		return
	}
	exec := w.eng.Executed()
	progressed := exec-w.lastExec > 1 // 1 = this check itself
	w.lastExec = exec
	if progressed || w.eng.Pending() > 0 {
		// Still moving, or events queued in the future (sparse activity is
		// not a deadlock). Keep watching.
		w.eng.Schedule(w.interval, w.check)
		return
	}
	if w.inflight != nil && w.inflight() {
		// Wedged: transactions outstanding but nothing will ever run.
		w.fired = true
		if w.onStall != nil {
			w.onStall()
		}
		return
	}
	// Quiesced: disarm so the engine can drain.
}
