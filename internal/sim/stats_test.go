package sim

import (
	"bytes"
	"strings"
	"testing"
)

// Sum must treat prefixes as hierarchical components: "node1" covers
// "node1.tile0.miss" but never "node10.tile0.miss". The old implementation
// used a raw string prefix and over-matched.
func TestSumStopsAtComponentBoundary(t *testing.T) {
	var s Stats
	s.Counter("node1.tile0.miss").Add(1)
	s.Counter("node1.tile1.miss").Add(2)
	s.Counter("node10.tile0.miss").Add(100)
	s.Counter("node100.tile0.miss").Add(1000)
	s.Counter("node1").Add(10) // exact match counts too

	if got := s.Sum("node1"); got != 13 {
		t.Fatalf("Sum(node1) = %d, want 13 (must exclude node10.* and node100.*)", got)
	}
	if got := s.Sum("node1."); got != 3 {
		t.Fatalf("Sum(node1.) = %d, want 3", got)
	}
	if got := s.Sum("node10"); got != 100 {
		t.Fatalf("Sum(node10) = %d, want 100", got)
	}
	if got := s.Sum(""); got != 1113 {
		t.Fatalf("Sum(\"\") = %d, want total 1113", got)
	}
}

func TestGaugeTracksHighWaterMark(t *testing.T) {
	var s Stats
	g := s.Gauge("memctl.rd_inflight")
	g.Set(3)
	g.Add(4)
	g.Dec()
	if g.Value != 6 {
		t.Fatalf("gauge value = %d, want 6", g.Value)
	}
	if g.High != 7 {
		t.Fatalf("gauge high = %d, want 7", g.High)
	}
	if v, ok := s.GaugeValue("memctl.rd_inflight"); !ok || v != 6 {
		t.Fatalf("GaugeValue = %d,%v, want 6,true", v, ok)
	}
	if _, ok := s.GaugeValue("missing"); ok {
		t.Fatal("GaugeValue found a gauge that was never created")
	}
}

func TestHistogramBinsAndQuantiles(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Samples != 100 || h.Min != 1 || h.Max != 100 || h.Sum != 5050 {
		t.Fatalf("summary = n=%d min=%d max=%d sum=%d", h.Samples, h.Min, h.Max, h.Sum)
	}
	if got := h.Mean(); got != 50.5 {
		t.Fatalf("mean = %v, want 50.5", got)
	}
	// Log2 bins: the cumulative count reaches 50 in bin 6 ([32,64)), whose
	// upper edge is 63; higher quantiles land in bin 7 and clamp to Max.
	if got := h.P50(); got != 63 {
		t.Fatalf("p50 = %d, want 63", got)
	}
	if got := h.P95(); got != 100 {
		t.Fatalf("p95 = %d, want 100 (clamped to max)", got)
	}
	if got := h.P99(); got != 100 {
		t.Fatalf("p99 = %d, want 100 (clamped to max)", got)
	}
}

func TestHistogramZeroAndExtremeValues(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(0)
	h.Observe(^uint64(0))
	if h.Samples != 3 || h.Min != 0 || h.Max != ^uint64(0) {
		t.Fatalf("summary = n=%d min=%d max=%d", h.Samples, h.Min, h.Max)
	}
	if h.Bins[0] != 2 || h.Bins[64] != 1 {
		t.Fatalf("bins[0]=%d bins[64]=%d, want 2 and 1", h.Bins[0], h.Bins[64])
	}
	if got := h.P50(); got != 0 {
		t.Fatalf("p50 = %d, want 0", got)
	}
	if got := h.P99(); got != ^uint64(0) {
		t.Fatalf("p99 = %d, want max uint64", got)
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	var a, b Histogram
	for v := uint64(1); v <= 10; v++ {
		a.Observe(v)
	}
	for v := uint64(100); v <= 109; v++ {
		b.Observe(v)
	}
	a.Merge(&b)
	if a.Samples != 20 || a.Min != 1 || a.Max != 109 {
		t.Fatalf("merged = n=%d min=%d max=%d", a.Samples, a.Min, a.Max)
	}
	a.Merge(nil) // nil-safe
	if a.Samples != 20 {
		t.Fatalf("merge(nil) changed samples to %d", a.Samples)
	}
	a.Name = "x"
	a.Reset()
	if a.Samples != 0 || a.Sum != 0 || a.Name != "x" {
		t.Fatalf("reset left n=%d sum=%d name=%q", a.Samples, a.Sum, a.Name)
	}
}

// Nil instruments are the disabled-telemetry fast path: every mutating
// method must be a no-op and must not allocate.
func TestNilInstrumentsAreFreeNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	if avg := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(7)
		g.Set(3)
		g.Inc()
		g.Dec()
		h.Observe(42)
	}); avg != 0 {
		t.Fatalf("nil instruments allocated %v per run, want 0", avg)
	}
}

func TestStatsStringAndCSVSections(t *testing.T) {
	var s Stats
	s.Counter("b.count").Add(2)
	s.Counter("a.count").Add(1)
	s.Gauge("q.depth").Set(5)
	s.Histogram("lat").Observe(8)
	s.Histogram("empty") // no samples: omitted from renderings

	str := s.String()
	if !strings.Contains(str, "a.count") || !strings.Contains(str, "q.depth") || !strings.Contains(str, "lat") {
		t.Fatalf("String missing sections:\n%s", str)
	}
	if strings.Contains(str, "empty") {
		t.Fatalf("String rendered an empty histogram:\n%s", str)
	}
	if strings.Index(str, "a.count") > strings.Index(str, "b.count") {
		t.Fatalf("counters not sorted:\n%s", str)
	}

	csv := s.CSV()
	if !strings.HasPrefix(csv, "kind,name,") {
		t.Fatalf("CSV missing header: %q", csv)
	}
	for _, want := range []string{"counter,a.count,1", "gauge,q.depth,5,5", "histogram,lat,1,8,8"} {
		if !strings.Contains(csv, want) {
			t.Fatalf("CSV missing %q:\n%s", want, csv)
		}
	}
}

// Two registries populated in different orders must marshal byte-identically:
// the metrics JSON is diffed across runs in regression workflows.
func TestStatsJSONDeterministic(t *testing.T) {
	build := func(reverse bool) []byte {
		var s Stats
		names := []string{"node0.miss", "node1.miss", "node2.miss"}
		if reverse {
			for i := len(names) - 1; i >= 0; i-- {
				s.Counter(names[i]).Add(uint64(i))
			}
		} else {
			for i, n := range names {
				s.Counter(n).Add(uint64(i))
			}
		}
		s.Gauge("g").Set(1)
		s.Histogram("h").Observe(5)
		out, err := s.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return out
	}
	a, b := build(false), build(true)
	if !bytes.Equal(a, b) {
		t.Fatalf("insertion order changed JSON:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(string(a), `"histograms"`) || !strings.Contains(string(a), `"p95"`) {
		t.Fatalf("JSON missing histogram summary: %s", a)
	}
}
