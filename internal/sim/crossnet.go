package sim

import "sort"

// CrossNet carries events between shards — the PCIe crossings and thread
// migrations that are the only coupling between FPGA chips. Both execution
// modes implement it: SerialNet for the single-engine reference and Group
// for the sharded engine. The two apply the *same* canonical delivery
// discipline, which is what makes them produce identical event orders:
//
//   - all deliveries landing on one destination in one cycle are applied in
//     ascending (send time, source shard, per-source sequence) order;
//   - deliveries run at the front of their cycle (Engine.AtFront), before
//     any ordinarily scheduled local event of the same cycle.
//
// The per-source sequence reproduces serial scheduling order: within one
// shard sends are numbered in execution order, and in the serial engine
// execution order at a given time *is* scheduling order, so sorting by
// (send time, source, sequence) reconstructs exactly the global sequence
// numbers the serial engine would have assigned.
type CrossNet interface {
	// Send delivers fn on shard dst at absolute time deliverAt. src is the
	// calling shard; the call must be made from src's execution context.
	// In sharded mode deliverAt must be at least the group lookahead past
	// the current window start — the caller's model latency guarantees it.
	Send(src, dst int, deliverAt Time, fn func())
}

// netEntry is one in-flight cross-shard delivery.
type netEntry struct {
	at   Time // delivery time
	sent Time // send time
	src  int
	seq  uint64
	fn   func()
}

// netOrder sorts deliveries into the canonical application order. Entries
// are compared by (delivery time, send time, source shard, per-source seq).
func netOrder(a, b netEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.sent != b.sent {
		return a.sent < b.sent
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// SerialNet is the single-engine CrossNet: everything runs on one Engine,
// so "crossing" is just a scheduled event — but routed through the same
// canonical ordering the sharded Group uses, so the serial reference and a
// sharded run order cross-shard traffic identically.
type SerialNet struct {
	eng       *Engine
	seqs      map[int]uint64
	pending   map[int][]netEntry        // per destination, not yet delivered
	scheduled map[int]map[Time]struct{} // (dst, cycle) flushes already queued
}

// NewSerialNet returns a CrossNet that delivers on eng.
func NewSerialNet(eng *Engine) *SerialNet {
	return &SerialNet{
		eng:       eng,
		seqs:      make(map[int]uint64),
		pending:   make(map[int][]netEntry),
		scheduled: make(map[int]map[Time]struct{}),
	}
}

// Send implements CrossNet.
func (n *SerialNet) Send(src, dst int, deliverAt Time, fn func()) {
	n.seqs[src]++
	n.pending[dst] = append(n.pending[dst], netEntry{
		at:   deliverAt,
		sent: n.eng.Now(),
		src:  src,
		seq:  n.seqs[src],
		fn:   fn,
	})
	sch := n.scheduled[dst]
	if sch == nil {
		sch = make(map[Time]struct{})
		n.scheduled[dst] = sch
	}
	if _, ok := sch[deliverAt]; !ok {
		sch[deliverAt] = struct{}{}
		n.eng.AtFront(deliverAt, func() { n.flush(dst) })
	}
}

// flush applies every delivery due on dst at the current cycle, in canonical
// order. It runs as a prioDeliver event, ahead of the cycle's local work.
func (n *SerialNet) flush(dst int) {
	now := n.eng.Now()
	delete(n.scheduled[dst], now)
	var due, rest []netEntry
	for _, e := range n.pending[dst] {
		if e.at == now {
			due = append(due, e)
		} else {
			rest = append(rest, e)
		}
	}
	n.pending[dst] = rest
	sort.Slice(due, func(i, j int) bool { return netOrder(due[i], due[j]) })
	for _, e := range due {
		e.fn()
	}
}
