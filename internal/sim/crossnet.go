package sim

import (
	"fmt"
	"slices"
)

// CrossNet carries events between shards — the PCIe crossings, the
// intra-FPGA interconnect hops and thread migrations that are the only
// coupling between shard engines. Both execution modes implement it:
// SerialNet for the single-engine reference and Group for the sharded
// engine. The two apply the *same* canonical delivery discipline, which is
// what makes them produce identical event orders:
//
//   - all deliveries landing on one destination endpoint in one cycle are
//     applied in ascending (send time, source endpoint, per-source
//     sequence) order;
//   - deliveries run at the front of their cycle (Engine.AtFront), before
//     any ordinarily scheduled local event of the same cycle.
//
// The per-source sequence reproduces serial scheduling order: within one
// endpoint sends are numbered in execution order, and in the serial engine
// execution order at a given time *is* scheduling order, so sorting by
// (send time, source, sequence) reconstructs exactly the global sequence
// numbers the serial engine would have assigned.
//
// Deliveries to *different* endpoints in the same cycle carry no ordering
// contract: endpoint state is disjoint by construction (each delivery
// mutates only its destination's models and registry), so the two modes are
// free to interleave them differently without observable divergence.
type CrossNet interface {
	// Send delivers fn on endpoint dst at absolute time deliverAt. src is
	// the calling endpoint; the call must be made from the execution context
	// of the engine that owns src. In sharded mode deliverAt must be at
	// least the governing lookahead past the current window start — the
	// caller's model latency guarantees it.
	Send(src, dst int, deliverAt Time, fn func())
}

// netEntry is one in-flight cross-shard delivery.
type netEntry struct {
	at   Time // delivery time
	sent Time // send time
	src  int  // source endpoint
	dst  int  // destination endpoint
	seq  uint64
	fn   func()
}

// netOrder sorts deliveries into the canonical application order. Entries
// are compared by (delivery time, send time, source endpoint, per-source
// seq).
func netOrder(a, b netEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.sent != b.sent {
		return a.sent < b.sent
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// netCmp is netOrder as a three-way comparison for slices.SortFunc (which,
// unlike sort.Slice, sorts a typed slice without boxing or reflection).
func netCmp(a, b netEntry) int {
	if netOrder(a, b) {
		return -1
	}
	if netOrder(b, a) {
		return 1
	}
	return 0
}

// dstState is one destination endpoint's delivery state. Buffers are
// reused flush to flush, so a warmed-up spool parks and flushes without
// allocating.
type dstState struct {
	pending []netEntry // not yet delivered
	due     []netEntry // scratch: the current cycle's deliveries
	sched   []Time     // cycles with a flush event already queued
}

// spool is one engine's delivery side of a CrossNet: per destination
// endpoint it parks pending envelopes and applies all of a cycle's
// deliveries in canonical order at the front of that cycle, with exactly
// one flush event per (destination, cycle). SerialNet is a spool over the
// single engine; the sharded Group keeps one spool per shard engine, fed
// from barrier merges and from same-engine sends.
//
// Endpoint ids may include pcie.HostID (-1); state is indexed at id+1.
type spool struct {
	eng     *Engine
	dsts    []*dstState
	flushFn func(any) // bound once; arg is the destination endpoint id
}

func newSpool(eng *Engine) *spool {
	s := &spool{eng: eng}
	s.flushFn = func(dst any) { s.flush(dst.(int)) }
	return s
}

// dstAt returns dst's delivery state, growing the table on first use.
func (s *spool) dstAt(dst int) *dstState {
	for dst+1 >= len(s.dsts) {
		s.dsts = append(s.dsts, nil)
	}
	if s.dsts[dst+1] == nil {
		s.dsts[dst+1] = &dstState{}
	}
	return s.dsts[dst+1]
}

// insert parks one envelope and guarantees a flush event for its
// (destination, cycle). It must run either in the owning engine's own
// execution context or while that engine is provably parked (a window
// barrier provides the happens-before edge).
func (s *spool) insert(e netEntry) {
	d := s.dstAt(e.dst)
	d.pending = append(d.pending, e)
	// One flush event per (dst, cycle): the scheduled set is a small slice
	// (only cycles within the fabric's latency spread are outstanding), so
	// a linear scan beats a map here.
	if !slices.Contains(d.sched, e.at) {
		d.sched = append(d.sched, e.at)
		s.eng.AtFrontArg(e.at, s.flushFn, e.dst)
	}
}

// flush applies every delivery due on dst at the current cycle, in canonical
// order. It runs as a prioDeliver event, ahead of the cycle's local work.
func (s *spool) flush(dst int) {
	d := s.dstAt(dst)
	now := s.eng.Now()
	if i := slices.Index(d.sched, now); i >= 0 {
		d.sched = slices.Delete(d.sched, i, i+1)
	}
	// Partition in place: due entries move to the scratch buffer, the rest
	// compact to the front of pending. The consumed tail is zeroed so the
	// delivered closures don't linger past their execution.
	due := d.due[:0]
	keep := d.pending[:0]
	for _, e := range d.pending {
		if e.at == now {
			due = append(due, e)
		} else {
			keep = append(keep, e)
		}
	}
	for i := len(keep); i < len(d.pending); i++ {
		d.pending[i] = netEntry{}
	}
	d.pending = keep
	slices.SortFunc(due, netCmp)
	for i := range due {
		due[i].fn()
		due[i].fn = nil
	}
	d.due = due[:0]
}

// SerialNet is the single-engine CrossNet: everything runs on one Engine,
// so "crossing" is just a scheduled event — but routed through the same
// canonical ordering the sharded Group uses, so the serial reference and a
// sharded run order cross-shard traffic identically.
type SerialNet struct {
	sp     *spool
	minLat func(src, dst int) Time // per-edge model-latency floor; nil = unguarded
	seqs   []uint64
}

// NewSerialNet returns a CrossNet that delivers on eng.
func NewSerialNet(eng *Engine) *SerialNet {
	return &SerialNet{sp: newSpool(eng)}
}

// seqAt returns a pointer to src's sequence counter, growing the table on
// first use of a source.
func (n *SerialNet) seqAt(src int) *uint64 {
	for src+1 >= len(n.seqs) {
		n.seqs = append(n.seqs, 0)
	}
	return &n.seqs[src+1]
}

// SetMinLatency arms a uniform model-latency floor, the guard the sharded
// Group always enforces: a Send delivering closer than lat to the current
// cycle panics. The serial engine does not need the bound for correctness —
// it has no windows — but a model that undercuts it here would undercut the
// sharded lookahead too, so guarding the serial reference catches the
// wiring bug in whichever mode hits it first. 0 disarms the guard.
func (n *SerialNet) SetMinLatency(lat Time) {
	if lat == 0 {
		n.minLat = nil
		return
	}
	n.minLat = func(int, int) Time { return lat }
}

// SetMinLatencyFunc arms a per-edge-class model-latency floor: class
// returns the minimum latency a send on the (src, dst) edge must respect —
// e.g. the intra-FPGA interconnect crossing for co-located nodes and the
// (much larger) PCIe crossing for nodes on different FPGAs. With
// granularity-aware floors the serial reference panics on an undercutting
// intra-FPGA send exactly like a per-node sharded run would, not only on
// PCIe-class sends. A nil or zero class result leaves that edge unguarded.
func (n *SerialNet) SetMinLatencyFunc(class func(src, dst int) Time) {
	n.minLat = class
}

// Send implements CrossNet.
func (n *SerialNet) Send(src, dst int, deliverAt Time, fn func()) {
	now := n.sp.eng.Now()
	if n.minLat != nil {
		if min := n.minLat(src, dst); min > 0 && deliverAt < now+min {
			panic(fmt.Sprintf("sim: cross-shard send %d->%d at %d delivers at %d; model latency undercuts minimum crossing %d",
				src, dst, now, deliverAt, min))
		}
	}
	seq := n.seqAt(src)
	*seq++
	n.sp.insert(netEntry{at: deliverAt, sent: now, src: src, dst: dst, seq: *seq, fn: fn})
}
