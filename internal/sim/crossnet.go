package sim

import (
	"fmt"
	"slices"
)

// CrossNet carries events between shards — the PCIe crossings and thread
// migrations that are the only coupling between FPGA chips. Both execution
// modes implement it: SerialNet for the single-engine reference and Group
// for the sharded engine. The two apply the *same* canonical delivery
// discipline, which is what makes them produce identical event orders:
//
//   - all deliveries landing on one destination in one cycle are applied in
//     ascending (send time, source shard, per-source sequence) order;
//   - deliveries run at the front of their cycle (Engine.AtFront), before
//     any ordinarily scheduled local event of the same cycle.
//
// The per-source sequence reproduces serial scheduling order: within one
// shard sends are numbered in execution order, and in the serial engine
// execution order at a given time *is* scheduling order, so sorting by
// (send time, source, sequence) reconstructs exactly the global sequence
// numbers the serial engine would have assigned.
type CrossNet interface {
	// Send delivers fn on shard dst at absolute time deliverAt. src is the
	// calling shard; the call must be made from src's execution context.
	// In sharded mode deliverAt must be at least the group lookahead past
	// the current window start — the caller's model latency guarantees it.
	Send(src, dst int, deliverAt Time, fn func())
}

// netEntry is one in-flight cross-shard delivery.
type netEntry struct {
	at   Time // delivery time
	sent Time // send time
	src  int
	seq  uint64
	fn   func()
}

// netOrder sorts deliveries into the canonical application order. Entries
// are compared by (delivery time, send time, source shard, per-source seq).
func netOrder(a, b netEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.sent != b.sent {
		return a.sent < b.sent
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// netCmp is netOrder as a three-way comparison for slices.SortFunc (which,
// unlike sort.Slice, sorts a typed slice without boxing or reflection).
func netCmp(a, b netEntry) int {
	if netOrder(a, b) {
		return -1
	}
	if netOrder(b, a) {
		return 1
	}
	return 0
}

// dstState is a SerialNet's per-destination delivery state. Buffers are
// reused flush to flush, so a warmed-up net sends and flushes without
// allocating.
type dstState struct {
	pending []netEntry // not yet delivered
	due     []netEntry // scratch: the current cycle's deliveries
	sched   []Time     // cycles with a flush event already queued
}

// SerialNet is the single-engine CrossNet: everything runs on one Engine,
// so "crossing" is just a scheduled event — but routed through the same
// canonical ordering the sharded Group uses, so the serial reference and a
// sharded run order cross-shard traffic identically.
//
// Endpoint ids may include pcie.HostID (-1); state is indexed at id+1.
type SerialNet struct {
	eng     *Engine
	minLat  Time // model-latency floor; 0 = unguarded
	seqs    []uint64
	dsts    []*dstState
	flushFn func(any) // bound once; arg is the destination id
}

// NewSerialNet returns a CrossNet that delivers on eng.
func NewSerialNet(eng *Engine) *SerialNet {
	n := &SerialNet{eng: eng}
	n.flushFn = func(dst any) { n.flush(dst.(int)) }
	return n
}

// seqAt returns a pointer to src's sequence counter, growing the table on
// first use of a source.
func (n *SerialNet) seqAt(src int) *uint64 {
	for src+1 >= len(n.seqs) {
		n.seqs = append(n.seqs, 0)
	}
	return &n.seqs[src+1]
}

// dstAt returns dst's delivery state, growing the table on first use.
func (n *SerialNet) dstAt(dst int) *dstState {
	for dst+1 >= len(n.dsts) {
		n.dsts = append(n.dsts, nil)
	}
	if n.dsts[dst+1] == nil {
		n.dsts[dst+1] = &dstState{}
	}
	return n.dsts[dst+1]
}

// SetMinLatency arms the model-latency guard the sharded Group always
// enforces: a Send delivering closer than lat to the current cycle panics.
// The serial engine does not need the bound for correctness — it has no
// windows — but a model that undercuts it here would undercut the sharded
// lookahead too, so guarding the serial reference catches the wiring bug in
// whichever mode hits it first.
func (n *SerialNet) SetMinLatency(lat Time) { n.minLat = lat }

// Send implements CrossNet.
func (n *SerialNet) Send(src, dst int, deliverAt Time, fn func()) {
	if n.minLat > 0 && deliverAt < n.eng.Now()+n.minLat {
		panic(fmt.Sprintf("sim: cross-shard send at %d delivers at %d; model latency undercuts minimum crossing %d",
			n.eng.Now(), deliverAt, n.minLat))
	}
	seq := n.seqAt(src)
	*seq++
	d := n.dstAt(dst)
	d.pending = append(d.pending, netEntry{
		at:   deliverAt,
		sent: n.eng.Now(),
		src:  src,
		seq:  *seq,
		fn:   fn,
	})
	// One flush event per (dst, cycle): the scheduled set is a small slice
	// (only cycles within the fabric's latency spread are outstanding), so
	// a linear scan beats a map here.
	if !slices.Contains(d.sched, deliverAt) {
		d.sched = append(d.sched, deliverAt)
		n.eng.AtFrontArg(deliverAt, n.flushFn, dst)
	}
}

// flush applies every delivery due on dst at the current cycle, in canonical
// order. It runs as a prioDeliver event, ahead of the cycle's local work.
func (n *SerialNet) flush(dst int) {
	d := n.dstAt(dst)
	now := n.eng.Now()
	if i := slices.Index(d.sched, now); i >= 0 {
		d.sched = slices.Delete(d.sched, i, i+1)
	}
	// Partition in place: due entries move to the scratch buffer, the rest
	// compact to the front of pending. The consumed tail is zeroed so the
	// delivered closures don't linger past their execution.
	due := d.due[:0]
	keep := d.pending[:0]
	for _, e := range d.pending {
		if e.at == now {
			due = append(due, e)
		} else {
			keep = append(keep, e)
		}
	}
	for i := len(keep); i < len(d.pending); i++ {
		d.pending[i] = netEntry{}
	}
	d.pending = keep
	slices.SortFunc(due, netCmp)
	for i := range due {
		due[i].fn()
		due[i].fn = nil
	}
	d.due = due[:0]
}
