package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []Time
	e.Schedule(30, func() { order = append(order, e.Now()) })
	e.Schedule(10, func() { order = append(order, e.Now()) })
	e.Schedule(20, func() { order = append(order, e.Now()) })
	e.Run()
	want := []Time{10, 20, 30}
	if len(order) != len(want) {
		t.Fatalf("executed %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("event %d at time %d, want %d", i, order[i], want[i])
		}
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events reordered: got %v", order)
		}
	}
}

func TestEngineZeroDelayRunsSameCycle(t *testing.T) {
	e := NewEngine()
	var at Time = TimeMax
	e.Schedule(7, func() {
		e.Schedule(0, func() { at = e.Now() })
	})
	e.Run()
	if at != 7 {
		t.Fatalf("zero-delay event ran at %d, want 7", at)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(20, func() { ran++ })
	e.Schedule(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("ran %d events by t=20, want 2", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("clock at %d, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("%d events pending, want 1", e.Pending())
	}
	e.Run()
	if ran != 3 || e.Now() != 30 {
		t.Fatalf("after Run: ran=%d now=%d, want 3/30", ran, e.Now())
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("idle RunUntil left clock at %d, want 100", e.Now())
	}
}

func TestEngineStopResume(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10, func() { ran++; e.Stop() })
	e.Schedule(20, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran %d events before stop, want 1", ran)
	}
	e.Resume()
	e.Run()
	if ran != 2 {
		t.Fatalf("ran %d events after resume, want 2", ran)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed uint64) []uint64 {
		e := NewEngine()
		rng := NewRNG(seed)
		var trace []uint64
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 4 {
				return
			}
			n := rng.Intn(3) + 1
			for i := 0; i < n; i++ {
				d := Time(rng.Intn(5))
				e.Schedule(d, func() {
					trace = append(trace, uint64(e.Now()))
					spawn(depth + 1)
				})
			}
		}
		spawn(0)
		e.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic event count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any set of delays, the engine visits them in sorted order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var seen []Time
		for _, d := range delays {
			e.Schedule(Time(d), func() { seen = append(seen, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProcessWaitAdvancesTime(t *testing.T) {
	e := NewEngine()
	var stamps []Time
	Go(e, "walker", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Wait(10)
			stamps = append(stamps, p.Now())
		}
	})
	e.Run()
	want := []Time{10, 20, 30}
	if len(stamps) != len(want) {
		t.Fatalf("got %d stamps, want %d", len(stamps), len(want))
	}
	for i := range want {
		if stamps[i] != want[i] {
			t.Errorf("stamp %d = %d, want %d", i, stamps[i], want[i])
		}
	}
}

func TestProcessCallSynchronousCompletion(t *testing.T) {
	e := NewEngine()
	var done Time = TimeMax
	Go(e, "caller", func(p *Process) {
		p.Wait(5)
		p.Call(func(complete func()) { complete() })
		done = p.Now()
	})
	e.Run()
	if done != 5 {
		t.Fatalf("synchronous Call completed at %d, want 5", done)
	}
}

func TestProcessCallAsynchronousCompletion(t *testing.T) {
	e := NewEngine()
	var done Time
	Go(e, "caller", func(p *Process) {
		p.Call(func(complete func()) {
			e.Schedule(42, complete)
		})
		done = p.Now()
	})
	e.Run()
	if done != 42 {
		t.Fatalf("async Call completed at %d, want 42", done)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			Go(e, name, func(p *Process) {
				for i := 0; i < 3; i++ {
					p.Wait(2)
					trace = append(trace, name)
				}
			})
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("process interleaving not deterministic at %d: %v vs %v", i, a, b)
		}
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	e := NewEngine()
	Go(e, "bomb", func(p *Process) {
		p.Wait(1)
		panic("boom")
	})
	defer func() {
		if recover() == nil {
			t.Error("process panic did not propagate to engine")
		}
	}()
	e.Run()
}

func TestProcessSuspendWake(t *testing.T) {
	e := NewEngine()
	var woke Time
	var p *Process
	p = Go(e, "sleeper", func(pr *Process) {
		wake := pr.Suspend()
		e.Schedule(99, wake)
		pr.Park()
		woke = pr.Now()
	})
	e.Run()
	if !p.Done() {
		t.Fatal("process never completed")
	}
	if woke != 99 {
		t.Fatalf("woke at %d, want 99", woke)
	}
}

func TestRNGDeterministicAndSpread(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverge")
		}
	}
	r := NewRNG(1)
	buckets := make([]int, 10)
	for i := 0; i < 10000; i++ {
		buckets[r.Intn(10)]++
	}
	for i, n := range buckets {
		if n < 800 || n > 1200 {
			t.Errorf("bucket %d has %d/10000 samples, expected ~1000", i, n)
		}
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(20)
		seen := make(map[int]bool)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == 20
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatsCountersAndSum(t *testing.T) {
	var s Stats
	s.Counter("node0.tile0.miss").Add(3)
	s.Counter("node0.tile1.miss").Add(4)
	s.Counter("node1.tile0.miss").Inc()
	if got := s.Sum("node0."); got != 7 {
		t.Errorf("Sum(node0.) = %d, want 7", got)
	}
	if got := s.Get("node1.tile0.miss"); got != 1 {
		t.Errorf("Get = %d, want 1", got)
	}
	if got := s.Get("missing"); got != 0 {
		t.Errorf("Get(missing) = %d, want 0", got)
	}
	if names := s.Names(); len(names) != 3 || names[0] != "node0.tile0.miss" {
		t.Errorf("Names() = %v", names)
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{5, 1, 9} {
		h.Observe(v)
	}
	if h.Min != 1 || h.Max != 9 || h.Samples != 3 {
		t.Fatalf("min/max/n = %d/%d/%d", h.Min, h.Max, h.Samples)
	}
	if h.Mean() != 5 {
		t.Fatalf("mean = %f, want 5", h.Mean())
	}
}

func TestTracerRingBufferWraps(t *testing.T) {
	e := NewEngine()
	tr := NewTracer(e, 4)
	for i := 0; i < 10; i++ {
		tr.Emit("cat", "event %d", i)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if evs[0].Message != "event 6" || evs[3].Message != "event 9" {
		t.Fatalf("wrong window: %v ... %v", evs[0].Message, evs[3].Message)
	}
}

func TestTracerFilter(t *testing.T) {
	e := NewEngine()
	tr := NewTracer(e, 16)
	tr.SetFilter(func(cat string) bool { return cat == "keep" })
	tr.Emit("keep", "a")
	tr.Emit("drop", "b")
	if tr.Len() != 1 || tr.Events()[0].Category != "keep" {
		t.Fatalf("filter broken: %v", tr.Events())
	}
}

func TestTracerTimestamps(t *testing.T) {
	e := NewEngine()
	tr := NewTracer(e, 16)
	e.Schedule(42, func() { tr.Emit("x", "later") })
	e.Run()
	if tr.Events()[0].At != 42 {
		t.Fatalf("timestamp %d, want 42", tr.Events()[0].At)
	}
}
