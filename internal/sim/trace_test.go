package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// fill emits n instant events on alternating tracks, one per cycle.
func fillTracer(eng *Engine, tr *Tracer, n int) {
	for i := 0; i < n; i++ {
		i := i
		eng.Schedule(Time(i+1), func() {
			track := "node0.tile0"
			if i%2 == 1 {
				track = "node1.bridge"
			}
			tr.Instant(track, CatNoC, fmt.Sprintf("ev%d", i))
		})
	}
	eng.Run()
}

// After the ring wraps, Events must return the newest `cap` events in
// emission order, oldest first.
func TestTracerWrapKeepsEmissionOrder(t *testing.T) {
	eng := NewEngine()
	tr := NewTracer(eng, 4)
	fillTracer(eng, tr, 10)
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		want := fmt.Sprintf("ev%d", 6+i)
		if ev.Name != want {
			t.Fatalf("event %d = %q, want %q", i, ev.Name, want)
		}
		if i > 0 && evs[i-1].At > ev.At {
			t.Fatalf("events out of time order: %d after %d", evs[i-1].At, ev.At)
		}
	}
}

// A category filter must apply before ring admission, so a wrapped buffer
// holds only accepted events and ordering survives the wrap.
func TestTracerFilterWithWrap(t *testing.T) {
	eng := NewEngine()
	tr := NewTracer(eng, 3)
	tr.SetFilter(func(cat string) bool { return cat == CatBridge })
	for i := 0; i < 12; i++ {
		i := i
		eng.Schedule(Time(i+1), func() {
			if i%2 == 0 {
				tr.Instant("node0.bridge", CatBridge, fmt.Sprintf("keep%d", i))
			} else {
				tr.Instant("node0.tile0", CatCoherence, fmt.Sprintf("drop%d", i))
			}
		})
	}
	eng.Run()
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Category != CatBridge || !strings.HasPrefix(ev.Name, "keep") {
			t.Fatalf("event %d = %v, want filtered bridge event", i, ev)
		}
		want := fmt.Sprintf("keep%d", 6+2*i)
		if ev.Name != want {
			t.Fatalf("event %d = %q, want %q", i, ev.Name, want)
		}
	}
}

func TestTracerSpanRecordsDuration(t *testing.T) {
	eng := NewEngine()
	tr := NewTracer(eng, 8)
	eng.Schedule(5, func() {
		start := eng.Now()
		eng.Schedule(7, func() { tr.Span("node0.memctl", CatMem, "drain", start) })
	})
	eng.Run()
	evs := tr.Events()
	if len(evs) != 1 || evs[0].At != 5 || evs[0].Dur != 7 {
		t.Fatalf("span = %+v, want At=5 Dur=7", evs)
	}
}

// Two identical runs must render byte-identical text and Chrome traces:
// trace diffs across same-seed runs are the debugging workflow the
// single-threaded deterministic engine guarantees.
func TestTraceOutputsDeterministic(t *testing.T) {
	render := func() (string, []byte) {
		eng := NewEngine()
		tr := NewTracer(eng, 64)
		fillTracer(eng, tr, 20)
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
		return tr.String(), buf.Bytes()
	}
	s1, c1 := render()
	s2, c2 := render()
	if s1 != s2 {
		t.Fatal("same-seed text traces differ")
	}
	if !bytes.Equal(c1, c2) {
		t.Fatal("same-seed Chrome traces differ")
	}
}

func TestWriteChromeValidJSONWithProcessTracks(t *testing.T) {
	eng := NewEngine()
	tr := NewTracer(eng, 64)
	fillTracer(eng, tr, 6)
	eng.Schedule(1, func() {
		tr.Span("node0.memctl", CatMem, "xfer", 0)
		tr.EmitT("node1.tile2", CatCoherence, "line=%#x", 0x40)
	})
	eng.Run()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			TS    uint64         `json:"ts"`
			Dur   uint64         `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}

	pids := map[int]bool{}
	var procNames, threadNames, spans int
	for _, ev := range doc.TraceEvents {
		pids[ev.PID] = true
		switch {
		case ev.Name == "process_name":
			procNames++
		case ev.Name == "thread_name":
			threadNames++
		case ev.Phase == "X":
			spans++
			if ev.Dur == 0 {
				t.Fatalf("span with zero dur: %+v", ev)
			}
		}
	}
	if procNames < 2 || len(pids) < 2 {
		t.Fatalf("want >=2 process tracks, got %d names over %d pids", procNames, len(pids))
	}
	if threadNames < 3 {
		t.Fatalf("want >=3 thread tracks (tile0, bridge, memctl...), got %d", threadNames)
	}
	if spans != 1 {
		t.Fatalf("want 1 span event, got %d", spans)
	}
}

func TestWriteChromeNilTracerEmptyTrace(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome on nil tracer: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer produced invalid JSON: %v", err)
	}
}
