// Package sim provides a deterministic cycle-level discrete-event simulation
// kernel. It is the substrate every hardware model in this repository is
// built on: the NoC, caches, memory controllers, PCIe links, bridges and
// cores all schedule work on a shared Engine.
//
// Determinism: events are ordered by (time, priority, sequence number), where
// the sequence number is assigned at scheduling time. Two runs with the same
// inputs produce identical event orders and therefore identical results.
//
// Throughput: the engine is allocation-free on its hot path. Events live in a
// per-Engine pool and are recycled through a free list; a generation counter
// per slot keeps a stale Timer from cancelling a recycled event. The pending
// queue is a hand-rolled 4-ary heap over a value slice (no interface boxing,
// no per-push allocation), and work scheduled for the current cycle bypasses
// the heap entirely through a FIFO — the majority of cycle-level traffic
// (zero-delay continuations, process dispatches) never touches the heap.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in simulated time, measured in clock cycles of the
// prototype's reference clock (100 MHz by default, so one cycle is 10 ns).
type Time uint64

// TimeMax is the largest representable simulation time.
const TimeMax Time = math.MaxUint64

// event is a pooled scheduled callback. Exactly one of fn/afn is set while
// the event is live; both nil marks a cancelled (or free) slot. gen counts
// how many times the slot has been recycled, so a Timer holding (idx, gen)
// can never resurrect or cancel a successor event in the same slot.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	afn  func(any)
	arg  any
	gen  uint64
	prio uint8
}

// live reports whether the slot holds a schedulable callback.
func (ev *event) live() bool { return ev.fn != nil || ev.afn != nil }

// Event priorities: deliveries injected by a CrossNet run at the start of
// their cycle, before ordinarily scheduled work, so serial and sharded
// execution see cross-shard traffic at the same point in the cycle.
const (
	prioDeliver = 0
	prioNormal  = 1
)

// heapEnt is one pending-queue entry: the ordering key plus the pool index.
// key folds (prio, seq) into one word — prio in the top bit, seq below — so
// the heap comparison is two integer compares with no pointer chasing.
type heapEnt struct {
	at  Time
	key uint64
	idx int32
}

func entKey(prio uint8, seq uint64) uint64 { return uint64(prio)<<63 | seq }

func entLess(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.key < b.key
}

// Engine is a discrete-event simulation engine. The zero value is not ready
// to use; construct one with NewEngine.
type Engine struct {
	now       Time
	seq       uint64
	stopped   bool
	live      int  // scheduled events that have not fired and are not cancelled
	lastEvent Time // timestamp of the most recently executed event

	pool []event   // event slots; index is the stable handle
	free []int32   // recycled slot indices
	heap []heapEnt // 4-ary min-heap ordered by (at, prio, seq)

	// Same-cycle FIFO fast path: normal-priority events scheduled for the
	// current cycle. Entries are appended in seq order, so the FIFO is
	// already sorted; only a front-of-cycle (prioDeliver) heap event can
	// order before its head.
	fifo     []int32
	fifoHead int

	// stats
	executed uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of live events currently scheduled. Cancelled
// timers still sitting in the queue are not counted: a drained queue of
// cancelled PCIe retransmit timers must read as quiesced, or the Watchdog
// and Sampler would see phantom pending work.
func (e *Engine) Pending() int { return e.live }

// LastEventTime returns the timestamp of the most recently executed event.
// Unlike Now it is never advanced by RunUntil's deadline forcing, so it
// reports when the engine last did real work.
func (e *Engine) LastEventTime() Time { return e.lastEvent }

// alloc takes a slot from the free list (or grows the pool), stamps it with
// the next sequence number and returns its index.
func (e *Engine) alloc(at Time, prio uint8) int32 {
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.pool = append(e.pool, event{})
		idx = int32(len(e.pool) - 1)
	}
	e.seq++
	ev := &e.pool[idx]
	ev.at = at
	ev.prio = prio
	ev.seq = e.seq
	return idx
}

// release recycles a slot: the callback references are dropped so the GC can
// collect them, and the generation is bumped so stale Timers miss.
func (e *Engine) release(idx int32) {
	ev := &e.pool[idx]
	ev.fn, ev.afn, ev.arg = nil, nil, nil
	ev.gen++
	e.free = append(e.free, idx)
}

// enqueue places a freshly allocated slot in the pending structure: the
// same-cycle FIFO when it is normal-priority work for the current cycle,
// the heap otherwise.
func (e *Engine) enqueue(idx int32, t Time, prio uint8) {
	e.live++
	if t == e.now && prio == prioNormal {
		e.fifo = append(e.fifo, idx)
		return
	}
	e.heapPush(heapEnt{at: t, key: entKey(prio, e.pool[idx].seq), idx: idx})
}

// heapPush inserts an entry into the 4-ary heap.
func (e *Engine) heapPush(ent heapEnt) {
	h := append(e.heap, ent)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.heap = h
}

// heapPopHead removes the minimum entry.
func (e *Engine) heapPopHead() {
	h := e.heap
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	e.heap = h
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entLess(h[j], h[m]) {
				m = j
			}
		}
		if !entLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// fifoAdvance consumes the FIFO head, resetting the buffer once drained so
// its capacity is reused cycle after cycle.
func (e *Engine) fifoAdvance() {
	e.fifoHead++
	if e.fifoHead == len(e.fifo) {
		e.fifo = e.fifo[:0]
		e.fifoHead = 0
	}
}

// pastPanic reports a scheduling-in-the-past bug; it is always a model bug.
func (e *Engine) pastPanic(t Time) {
	panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
}

// Schedule runs fn after delay cycles. A delay of zero runs fn later in the
// current cycle (after all previously scheduled work for this cycle).
func (e *Engine) Schedule(delay Time, fn func()) {
	e.At(e.now+delay, fn)
}

// ScheduleArg runs fn(arg) after delay cycles. It is the typed-callback
// twin of Schedule for hot call sites: a model stores one bound method (or
// package function) as a func(any) and passes the per-event state as arg,
// so no capture closure is allocated per event. A pointer-shaped arg (the
// usual case: *Packet, *Msg, *Envelope, small ints) does not allocate when
// converted to any.
func (e *Engine) ScheduleArg(delay Time, fn func(any), arg any) {
	e.AtArg(e.now+delay, fn, arg)
}

// At runs fn at absolute time t. Scheduling in the past panics: it is always
// a model bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		e.pastPanic(t)
	}
	idx := e.alloc(t, prioNormal)
	e.pool[idx].fn = fn
	e.enqueue(idx, t, prioNormal)
}

// AtArg runs fn(arg) at absolute time t; see ScheduleArg.
func (e *Engine) AtArg(t Time, fn func(any), arg any) {
	if t < e.now {
		e.pastPanic(t)
	}
	idx := e.alloc(t, prioNormal)
	ev := &e.pool[idx]
	ev.afn = fn
	ev.arg = arg
	e.enqueue(idx, t, prioNormal)
}

// AtFront runs fn at absolute time t, ahead of every normally scheduled
// event of that cycle. CrossNets use it to inject cross-shard deliveries "on
// the clock edge": a delivery at cycle T always executes before local work
// of cycle T, in both serial and sharded execution, which removes the one
// tie the two modes could otherwise order differently.
func (e *Engine) AtFront(t Time, fn func()) {
	if t < e.now {
		e.pastPanic(t)
	}
	idx := e.alloc(t, prioDeliver)
	e.pool[idx].fn = fn
	e.enqueue(idx, t, prioDeliver)
}

// AtFrontArg is the typed-callback twin of AtFront; see ScheduleArg.
func (e *Engine) AtFrontArg(t Time, fn func(any), arg any) {
	if t < e.now {
		e.pastPanic(t)
	}
	idx := e.alloc(t, prioDeliver)
	ev := &e.pool[idx]
	ev.afn = fn
	ev.arg = arg
	e.enqueue(idx, t, prioDeliver)
}

// Timer is a handle to a cancellable event scheduled with Engine.After.
// The zero Timer is valid and cancels nothing. A Timer is a value: it holds
// the event's pool slot and the slot's generation at scheduling time, so a
// Cancel that races with slot recycling (the event fired, the slot was
// reused) is a guaranteed no-op rather than a resurrection bug.
type Timer struct {
	eng *Engine
	idx int32
	gen uint64
}

// Cancel discards the timer's event. A cancelled event is skipped unexecuted
// when the queue reaches it: it does not run, does not advance the clock and
// does not count as executed, so timeout guards that usually get cancelled
// leave a run's final time and statistics untouched. Safe on the zero Timer
// and after the event has already fired.
func (t *Timer) Cancel() {
	if t == nil || t.eng == nil {
		return
	}
	ev := &t.eng.pool[t.idx]
	if ev.gen == t.gen && ev.live() {
		ev.fn, ev.afn, ev.arg = nil, nil, nil
		t.eng.live--
	}
	t.eng = nil
}

// After schedules fn after delay cycles, like Schedule, but returns a Timer
// that can cancel the event before it fires. Models use it for timeout
// watchdogs (e.g. the PCIe retransmit timer) that are cancelled on the
// common path.
func (e *Engine) After(delay Time, fn func()) Timer {
	t := e.now + delay
	idx := e.alloc(t, prioNormal)
	ev := &e.pool[idx]
	ev.fn = fn
	gen := ev.gen
	e.enqueue(idx, t, prioNormal)
	return Timer{eng: e, idx: idx, gen: gen}
}

// NextEventTime returns the timestamp of the earliest live event, discarding
// any cancelled events it finds at the head of the queue (their slots are
// recycled onto the free list, exactly as Step's drain does). The second
// return is false when no live events remain.
func (e *Engine) NextEventTime() (Time, bool) {
	for e.fifoHead < len(e.fifo) {
		idx := e.fifo[e.fifoHead]
		if e.pool[idx].live() {
			return e.now, true
		}
		e.fifoAdvance()
		e.release(idx)
	}
	for len(e.heap) > 0 {
		ent := e.heap[0]
		if e.pool[ent.idx].live() {
			return ent.at, true
		}
		e.heapPopHead()
		e.release(ent.idx)
	}
	return 0, false
}

// peekAt returns the timestamp of the earliest queued event, live or
// cancelled (run loops use it for deadline checks; Step discards cancelled
// heads without executing them).
func (e *Engine) peekAt() (Time, bool) {
	if e.fifoHead < len(e.fifo) {
		return e.now, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].at, true
	}
	return 0, false
}

// next pops the globally earliest queued event's slot index. The FIFO holds
// only normal-priority work for the current cycle, already in seq order, so
// the only heap entry that can order before its head is same-cycle work with
// a smaller key (a front-of-cycle delivery, or a normal event scheduled
// before the clock reached this cycle).
func (e *Engine) next() (int32, bool) {
	hasF := e.fifoHead < len(e.fifo)
	if len(e.heap) > 0 {
		ent := e.heap[0]
		if hasF {
			f := e.fifo[e.fifoHead]
			if ent.at == e.now && ent.key < entKey(prioNormal, e.pool[f].seq) {
				e.heapPopHead()
				return ent.idx, true
			}
			e.fifoAdvance()
			return f, true
		}
		e.heapPopHead()
		return ent.idx, true
	}
	if hasF {
		f := e.fifo[e.fifoHead]
		e.fifoAdvance()
		return f, true
	}
	return 0, false
}

// Step executes the single next event. It reports false when the queue is
// empty or the engine has been stopped. Cancelled events are discarded
// without executing (and without advancing the clock); Step still reports
// true for them so run loops keep draining.
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	idx, ok := e.next()
	if !ok {
		return false
	}
	ev := &e.pool[idx]
	if !ev.live() {
		e.release(idx) // cancelled; already removed from the live count
		return true
	}
	e.now = ev.at
	e.lastEvent = ev.at
	e.executed++
	e.live--
	// Copy the callback out and recycle the slot before invoking: the
	// callback may schedule (growing the pool and moving ev) and a Timer
	// still pointing at the slot is fenced off by the generation bump.
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	e.release(idx)
	if fn != nil {
		fn()
	} else {
		afn(arg)
	}
	return true
}

// Run executes events until the queue drains or Stop is called. It returns
// the final simulation time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued; the clock is left at min(deadline,
// last executed event time).
func (e *Engine) RunUntil(deadline Time) Time {
	for !e.stopped {
		t, ok := e.peekAt()
		if !ok || t > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return e.now
}

// RunFor advances the clock by d cycles, executing everything in between.
func (e *Engine) RunFor(d Time) Time { return e.RunUntil(e.now + d) }

// runTo executes events with timestamps <= deadline but, unlike RunUntil,
// never forces the clock forward: the clock is left at the last executed
// event. Shard workers use it so that between windows every engine's notion
// of "now" matches what the serial engine would have seen (forcing would
// timestamp post-window scheduling differently across modes).
func (e *Engine) runTo(deadline Time) {
	for !e.stopped {
		t, ok := e.peekAt()
		if !ok || t > deadline {
			break
		}
		e.Step()
	}
}

// alignTo advances an idle engine's clock to t without executing anything.
// The shard group calls it after a full drain so that host-side code that
// schedules new work afterwards (e.g. spawning the next workload phase) sees
// the same timestamps a serial run would.
func (e *Engine) alignTo(t Time) {
	if t > e.now {
		e.now = t
	}
}

// Stop halts Run/RunUntil after the current event completes. Pending events
// remain queued; a stopped engine can be resumed with Resume.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears the stopped flag set by Stop.
func (e *Engine) Resume() { e.stopped = false }

// Stopped reports whether the engine is currently stopped.
func (e *Engine) Stopped() bool { return e.stopped }
