// Package sim provides a deterministic cycle-level discrete-event simulation
// kernel. It is the substrate every hardware model in this repository is
// built on: the NoC, caches, memory controllers, PCIe links, bridges and
// cores all schedule work on a shared Engine.
//
// Determinism: events are ordered by (time, sequence number), where the
// sequence number is assigned at scheduling time. Two runs with the same
// inputs produce identical event orders and therefore identical results.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, measured in clock cycles of the
// prototype's reference clock (100 MHz by default, so one cycle is 10 ns).
type Time uint64

// TimeMax is the largest representable simulation time.
const TimeMax Time = math.MaxUint64

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}
func (h eventHeap) peek() *event { return h[0] }

// Engine is a discrete-event simulation engine. The zero value is not ready
// to use; construct one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool

	// stats
	executed uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn after delay cycles. A delay of zero runs fn later in the
// current cycle (after all previously scheduled work for this cycle).
func (e *Engine) Schedule(delay Time, fn func()) {
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t. Scheduling in the past panics: it is always
// a model bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// Timer is a handle to a cancellable event scheduled with Engine.After.
type Timer struct{ ev *event }

// Cancel discards the timer's event. A cancelled event is skipped unexecuted
// when the queue reaches it: it does not run, does not advance the clock and
// does not count as executed, so timeout guards that usually get cancelled
// leave a run's final time and statistics untouched. Safe on a nil Timer and
// after the event has already fired.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.fn = nil
		t.ev = nil
	}
}

// After schedules fn after delay cycles, like Schedule, but returns a Timer
// that can cancel the event before it fires. Models use it for timeout
// watchdogs (e.g. the PCIe retransmit timer) that are cancelled on the
// common path.
func (e *Engine) After(delay Time, fn func()) *Timer {
	e.seq++
	ev := &event{at: e.now + delay, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// Step executes the single next event. It reports false when the queue is
// empty or the engine has been stopped. Cancelled events are discarded
// without executing (and without advancing the clock); Step still reports
// true for them so run loops keep draining.
func (e *Engine) Step() bool {
	if e.stopped || len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	if ev.fn == nil {
		return true // cancelled
	}
	e.now = ev.at
	e.executed++
	ev.fn()
	ev.fn = nil // release the closure; a Timer may still point at the event
	return true
}

// Run executes events until the queue drains or Stop is called. It returns
// the final simulation time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued; the clock is left at min(deadline,
// last executed event time).
func (e *Engine) RunUntil(deadline Time) Time {
	for !e.stopped && len(e.queue) > 0 && e.queue.peek().at <= deadline {
		e.Step()
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return e.now
}

// RunFor advances the clock by d cycles, executing everything in between.
func (e *Engine) RunFor(d Time) Time { return e.RunUntil(e.now + d) }

// Stop halts Run/RunUntil after the current event completes. Pending events
// remain queued; a stopped engine can be resumed with Resume.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears the stopped flag set by Stop.
func (e *Engine) Resume() { e.stopped = false }

// Stopped reports whether the engine is currently stopped.
func (e *Engine) Stopped() bool { return e.stopped }
