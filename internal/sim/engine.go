// Package sim provides a deterministic cycle-level discrete-event simulation
// kernel. It is the substrate every hardware model in this repository is
// built on: the NoC, caches, memory controllers, PCIe links, bridges and
// cores all schedule work on a shared Engine.
//
// Determinism: events are ordered by (time, sequence number), where the
// sequence number is assigned at scheduling time. Two runs with the same
// inputs produce identical event orders and therefore identical results.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, measured in clock cycles of the
// prototype's reference clock (100 MHz by default, so one cycle is 10 ns).
type Time uint64

// TimeMax is the largest representable simulation time.
const TimeMax Time = math.MaxUint64

// event is a scheduled callback.
type event struct {
	at   Time
	prio uint8
	seq  uint64
	fn   func()
}

// Event priorities: deliveries injected by a CrossNet run at the start of
// their cycle, before ordinarily scheduled work, so serial and sharded
// execution see cross-shard traffic at the same point in the cycle.
const (
	prioDeliver = 0
	prioNormal  = 1
)

// eventHeap implements heap.Interface ordered by (at, prio, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}
func (h eventHeap) peek() *event { return h[0] }

// Engine is a discrete-event simulation engine. The zero value is not ready
// to use; construct one with NewEngine.
type Engine struct {
	now       Time
	seq       uint64
	queue     eventHeap
	stopped   bool
	live      int  // scheduled events that have not fired and are not cancelled
	lastEvent Time // timestamp of the most recently executed event

	// stats
	executed uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of live events currently scheduled. Cancelled
// timers still sitting in the queue are not counted: a drained queue of
// cancelled PCIe retransmit timers must read as quiesced, or the Watchdog
// and Sampler would see phantom pending work.
func (e *Engine) Pending() int { return e.live }

// LastEventTime returns the timestamp of the most recently executed event.
// Unlike Now it is never advanced by RunUntil's deadline forcing, so it
// reports when the engine last did real work.
func (e *Engine) LastEventTime() Time { return e.lastEvent }

// NextEventTime returns the timestamp of the earliest live event, discarding
// any cancelled events it finds at the head of the queue. The second return
// is false when no live events remain.
func (e *Engine) NextEventTime() (Time, bool) {
	for len(e.queue) > 0 {
		ev := e.queue.peek()
		if ev.fn != nil {
			return ev.at, true
		}
		heap.Pop(&e.queue)
	}
	return 0, false
}

// Schedule runs fn after delay cycles. A delay of zero runs fn later in the
// current cycle (after all previously scheduled work for this cycle).
func (e *Engine) Schedule(delay Time, fn func()) {
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t. Scheduling in the past panics: it is always
// a model bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	e.live++
	heap.Push(&e.queue, &event{at: t, prio: prioNormal, seq: e.seq, fn: fn})
}

// AtFront runs fn at absolute time t, ahead of every normally scheduled
// event of that cycle. CrossNets use it to inject cross-shard deliveries "on
// the clock edge": a delivery at cycle T always executes before local work
// of cycle T, in both serial and sharded execution, which removes the one
// tie the two modes could otherwise order differently.
func (e *Engine) AtFront(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	e.live++
	heap.Push(&e.queue, &event{at: t, prio: prioDeliver, seq: e.seq, fn: fn})
}

// Timer is a handle to a cancellable event scheduled with Engine.After.
type Timer struct {
	eng *Engine
	ev  *event
}

// Cancel discards the timer's event. A cancelled event is skipped unexecuted
// when the queue reaches it: it does not run, does not advance the clock and
// does not count as executed, so timeout guards that usually get cancelled
// leave a run's final time and statistics untouched. Safe on a nil Timer and
// after the event has already fired.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		if t.ev.fn != nil { // not already fired or cancelled
			t.ev.fn = nil
			t.eng.live--
		}
		t.ev = nil
	}
}

// After schedules fn after delay cycles, like Schedule, but returns a Timer
// that can cancel the event before it fires. Models use it for timeout
// watchdogs (e.g. the PCIe retransmit timer) that are cancelled on the
// common path.
func (e *Engine) After(delay Time, fn func()) *Timer {
	e.seq++
	e.live++
	ev := &event{at: e.now + delay, prio: prioNormal, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return &Timer{eng: e, ev: ev}
}

// Step executes the single next event. It reports false when the queue is
// empty or the engine has been stopped. Cancelled events are discarded
// without executing (and without advancing the clock); Step still reports
// true for them so run loops keep draining.
func (e *Engine) Step() bool {
	if e.stopped || len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	if ev.fn == nil {
		return true // cancelled; already removed from the live count
	}
	e.now = ev.at
	e.lastEvent = ev.at
	e.executed++
	e.live--
	ev.fn()
	ev.fn = nil // release the closure; a Timer may still point at the event
	return true
}

// Run executes events until the queue drains or Stop is called. It returns
// the final simulation time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued; the clock is left at min(deadline,
// last executed event time).
func (e *Engine) RunUntil(deadline Time) Time {
	for !e.stopped && len(e.queue) > 0 && e.queue.peek().at <= deadline {
		e.Step()
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return e.now
}

// RunFor advances the clock by d cycles, executing everything in between.
func (e *Engine) RunFor(d Time) Time { return e.RunUntil(e.now + d) }

// runTo executes events with timestamps <= deadline but, unlike RunUntil,
// never forces the clock forward: the clock is left at the last executed
// event. Shard workers use it so that between windows every engine's notion
// of "now" matches what the serial engine would have seen (forcing would
// timestamp post-window scheduling differently across modes).
func (e *Engine) runTo(deadline Time) {
	for !e.stopped && len(e.queue) > 0 && e.queue.peek().at <= deadline {
		e.Step()
	}
}

// alignTo advances an idle engine's clock to t without executing anything.
// The shard group calls it after a full drain so that host-side code that
// schedules new work afterwards (e.g. spawning the next workload phase) sees
// the same timestamps a serial run would.
func (e *Engine) alignTo(t Time) {
	if t > e.now {
		e.now = t
	}
}

// Stop halts Run/RunUntil after the current event completes. Pending events
// remain queued; a stopped engine can be resumed with Resume.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears the stopped flag set by Stop.
func (e *Engine) Resume() { e.stopped = false }

// Stopped reports whether the engine is currently stopped.
func (e *Engine) Stopped() bool { return e.stopped }
