package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// TestPendingCountsLiveEvents is the regression test for the live-event
// counter: cancelled timers must not count as pending work, and a timer
// cancelled after it fired must not double-decrement.
func TestPendingCountsLiveEvents(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Schedule(20, func() {})
	tm := e.After(15, func() { t.Error("cancelled timer fired") })
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", e.Pending())
	}
	tm.Cancel()
	if e.Pending() != 2 {
		t.Fatalf("Pending after cancel = %d, want 2 (cancelled timer still counted)", e.Pending())
	}
	tm.Cancel() // double cancel is a no-op
	if e.Pending() != 2 {
		t.Fatalf("Pending after double cancel = %d, want 2", e.Pending())
	}
	fired := false
	tm2 := e.After(30, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("live timer did not fire")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", e.Pending())
	}
	tm2.Cancel() // cancel after fire is a no-op
	if e.Pending() != 0 {
		t.Fatalf("Pending after post-fire cancel = %d, want 0 (double decrement)", e.Pending())
	}
}

// TestAtFrontRunsBeforeSameCycleEvents checks the delivery priority: an
// AtFront event runs before every ordinarily scheduled event of its cycle,
// even ones scheduled earlier.
func TestAtFrontRunsBeforeSameCycleEvents(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(10, func() { order = append(order, "normal1") })
	e.At(10, func() { order = append(order, "normal2") })
	e.AtFront(10, func() { order = append(order, "deliver") })
	e.Run()
	want := []string{"deliver", "normal1", "normal2"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// crossModel is a little two-shard system used to compare the serial and
// sharded execution modes: each shard runs a local tick loop and
// periodically sends the other shard a message that schedules follow-up
// local work. Every executed action appends (time, label) to its shard's
// own log — shard-owned state, mirroring how the real system keeps
// per-shard stats registries and merges them after the run.
type crossModel struct {
	log  [][]string
	engs []*Engine // engine per shard (aliases in serial mode)
	net  CrossNet
	la   Time
}

func (m *crossModel) record(shard int, t Time, label string) {
	m.log[shard] = append(m.log[shard], fmt.Sprintf("@%d:%s", t, label))
}

// start seeds each shard with a tick loop: ticks+sends happen on a stride
// chosen so deliveries from both shards collide on the same destination
// cycle, exercising the canonical tie-break.
func (m *crossModel) start(rounds int) {
	for s := range m.engs {
		s := s
		e := m.engs[s]
		var tick func(i int)
		tick = func(i int) {
			m.record(s, e.Now(), fmt.Sprintf("tick%d", i))
			if i >= rounds {
				return
			}
			dst := 1 - s
			// Both shards send so the deliveries land on the same cycle
			// at the same destination.
			at := (e.Now()/m.la+2)*m.la + Time(7)
			m.net.Send(s, dst, at, func() {
				m.record(dst, m.engs[dst].Now(), fmt.Sprintf("recv%d-from%d", i, s))
				m.engs[dst].Schedule(3, func() {
					m.record(dst, m.engs[dst].Now(), fmt.Sprintf("follow%d-from%d", i, s))
				})
			})
			e.Schedule(m.la/2+Time(s), func() { tick(i + 1) })
		}
		e.Schedule(Time(s+1), func() { tick(0) })
	}
}

// TestGroupMatchesSerialNet drives the same model through the sharded Group
// and the single-engine SerialNet and requires identical logs, final times
// and per-engine clock alignment.
func TestGroupMatchesSerialNet(t *testing.T) {
	const la = Time(61)
	const rounds = 12

	serial := &crossModel{la: la, log: make([][]string, 2)}
	se := NewEngine()
	serial.engs = []*Engine{se, se}
	serial.net = NewSerialNet(se)
	serial.start(rounds)
	serialEnd := se.Run()

	sharded := &crossModel{la: la, log: make([][]string, 2)}
	e0, e1 := NewEngine(), NewEngine()
	g := NewGroup(la, e0, e1)
	sharded.engs = []*Engine{e0, e1}
	sharded.net = g
	sharded.start(rounds)
	shardedEnd := g.Run()

	for s := 0; s < 2; s++ {
		if !reflect.DeepEqual(serial.log[s], sharded.log[s]) {
			t.Fatalf("shard %d logs diverge:\nserial:  %v\nsharded: %v", s, serial.log[s], sharded.log[s])
		}
	}
	if serialEnd != shardedEnd {
		t.Fatalf("final time diverges: serial %d, sharded %d", serialEnd, shardedEnd)
	}
	if e0.Now() != shardedEnd || e1.Now() != shardedEnd {
		t.Fatalf("shard clocks not aligned after Run: %d, %d, want %d", e0.Now(), e1.Now(), shardedEnd)
	}
}

// hierModel extends the cross-shard model to two latency classes: four
// endpoints in two clusters of two, where intra-cluster sends pay the inner
// crossing and cross-cluster sends pay the outer one. Each endpoint ticks
// locally and alternates a near (cluster-mate) and a far (other cluster)
// send, so inner windows, outer chunks and both merge paths all carry
// traffic.
type hierModel struct {
	log   [][]string
	engs  []*Engine
	net   CrossNet
	outer Time
	inner Time
}

func (m *hierModel) record(shard int, t Time, label string) {
	m.log[shard] = append(m.log[shard], fmt.Sprintf("@%d:%s", t, label))
}

func (m *hierModel) start(rounds int) {
	for s := range m.engs {
		s := s
		e := m.engs[s]
		var tick func(i int)
		tick = func(i int) {
			m.record(s, e.Now(), fmt.Sprintf("tick%d", i))
			if i >= rounds {
				return
			}
			// Even rounds reach the cluster-mate at the inner latency; odd
			// rounds cross clusters at the outer one. Delivery cycles are
			// aligned so sends from several sources collide.
			var dst int
			var lat Time
			if i%2 == 0 {
				dst, lat = s^1, m.inner
			} else {
				dst, lat = (s+2)%len(m.engs), m.outer
			}
			at := (e.Now()/lat+2)*lat + 3
			m.net.Send(s, dst, at, func() {
				m.record(dst, m.engs[dst].Now(), fmt.Sprintf("recv%d-from%d", i, s))
				m.engs[dst].Schedule(1, func() {
					m.record(dst, m.engs[dst].Now(), fmt.Sprintf("follow%d-from%d", i, s))
				})
			})
			e.Schedule(m.inner+Time(s), func() { tick(i + 1) })
		}
		e.Schedule(Time(s+1), func() { tick(0) })
	}
}

// TestHierGroupMatchesSerialNet drives the two-latency model through the
// hierarchical synchronizer (two clusters of two engines, inner windows
// nested in outer chunks) and the serial reference, and requires identical
// logs, final times and clock alignment — for fixed windows and a spread of
// adaptive caps. This is the unit-level equivalence proof for per-node
// sharding; in particular a multi-engine cluster must actually execute its
// members inside each chunk (a protocol inversion here livelocks, which the
// test surfaces as a timeout).
func TestHierGroupMatchesSerialNet(t *testing.T) {
	const outer, inner = Time(61), Time(7)
	const rounds = 12

	serial := &hierModel{outer: outer, inner: inner, log: make([][]string, 4)}
	se := NewEngine()
	serial.engs = []*Engine{se, se, se, se}
	serial.net = NewSerialNet(se)
	serial.start(rounds)
	serialEnd := se.Run()

	for _, cap := range []int{1, 4, DefaultAdaptiveCap} {
		t.Run(fmt.Sprintf("cap%d", cap), func(t *testing.T) {
			sharded := &hierModel{outer: outer, inner: inner, log: make([][]string, 4)}
			engs := make([]*Engine, 4)
			for i := range engs {
				engs[i] = NewEngine()
			}
			g := NewHierGroup(outer, inner,
				[][]*Engine{{engs[0], engs[1]}, {engs[2], engs[3]}},
				[]int{0, 1, 2, 3})
			g.SetAdaptive(cap)
			sharded.engs = engs
			sharded.net = g
			sharded.start(rounds)
			shardedEnd := g.Run()

			for s := range serial.log {
				if !reflect.DeepEqual(serial.log[s], sharded.log[s]) {
					t.Fatalf("shard %d logs diverge:\nserial:  %v\nsharded: %v", s, serial.log[s], sharded.log[s])
				}
			}
			if serialEnd != shardedEnd {
				t.Fatalf("final time diverges: serial %d, sharded %d", serialEnd, shardedEnd)
			}
			for i, e := range engs {
				if e.Now() != shardedEnd {
					t.Fatalf("engine %d clock %d not aligned to %d", i, e.Now(), shardedEnd)
				}
			}
			sn := g.SyncSnapshot()
			if len(sn.Inner) != 2 {
				t.Fatalf("got %d inner views, want 2", len(sn.Inner))
			}
			for ci, iv := range sn.Inner {
				if iv.Windows == 0 {
					t.Errorf("cluster %d ran no inner windows", ci)
				}
			}
		})
	}
}

// TestHierGroupInnerUndercutPanics checks the nested lookahead contract: an
// intra-cluster send below the inner crossing must panic, while one at
// exactly the inner bound — far below the outer lookahead — is legal.
func TestHierGroupInnerUndercutPanics(t *testing.T) {
	const outer, inner = Time(61), Time(7)
	engs := []*Engine{NewEngine(), NewEngine(), NewEngine(), NewEngine()}
	g := NewHierGroup(outer, inner,
		[][]*Engine{{engs[0], engs[1]}, {engs[2], engs[3]}},
		[]int{0, 1, 2, 3})
	ok := false
	panicked := false
	engs[0].Schedule(5, func() {
		g.Send(0, 1, engs[0].Now()+inner, func() { ok = true }) // inner bound: fine
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		g.Send(0, 1, engs[0].Now()+inner-1, func() {})
	})
	g.Run()
	if !ok {
		t.Fatal("legal intra-cluster send was not delivered")
	}
	if !panicked {
		t.Fatal("intra-cluster send below the inner crossing did not panic")
	}
}

// TestGroupSingleShardMatchesSerial runs the degenerate one-shard group:
// windowed execution of a purely local model must not change anything.
func TestGroupSingleShardMatchesSerial(t *testing.T) {
	run := func(e *Engine, drain func() Time) (log []Time, end Time) {
		for i := 0; i < 5; i++ {
			d := Time(10 * (i + 1))
			e.Schedule(d, func() { log = append(log, e.Now()) })
		}
		return log, drain()
	}
	se := NewEngine()
	wantLog, wantEnd := run(se, se.Run)

	pe := NewEngine()
	g := NewGroup(61, pe)
	gotLog, gotEnd := run(pe, g.Run)
	_ = gotLog
	if wantEnd != gotEnd {
		t.Fatalf("end time %d, want %d", gotEnd, wantEnd)
	}
	if !reflect.DeepEqual(wantLog, gotLog) {
		t.Fatalf("log %v, want %v", gotLog, wantLog)
	}
}

// TestGroupSendInsideWindowPanics checks the lookahead guard: a model whose
// cross-shard latency undercuts the window must be caught, not silently
// reordered.
func TestGroupSendInsideWindowPanics(t *testing.T) {
	e0, e1 := NewEngine(), NewEngine()
	g := NewGroup(61, e0, e1)
	panicked := false
	e0.Schedule(5, func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		g.Send(0, 1, e0.Now()+1, func() {}) // far below lookahead
	})
	g.Run()
	if !panicked {
		t.Fatal("undercutting send did not panic")
	}
}

// TestGroupSendOutOfRangePanics checks that host-side traffic (shard -1)
// cannot sneak through the cross-shard network.
func TestGroupSendOutOfRangePanics(t *testing.T) {
	g := NewGroup(61, NewEngine(), NewEngine())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range send did not panic")
		}
	}()
	g.Send(-1, 0, 100, func() {})
}

// TestSerialNetCanonicalOrder checks the tie-break: deliveries colliding on
// one (destination, cycle) apply in (send time, source, sequence) order
// regardless of Send call order.
func TestSerialNetCanonicalOrder(t *testing.T) {
	e := NewEngine()
	n := NewSerialNet(e)
	var order []string
	// Sends issued from interleaved "shard" contexts at time 0; all deliver
	// at cycle 100.
	e.Schedule(0, func() {
		n.Send(2, 0, 100, func() { order = append(order, "src2#1") })
		n.Send(1, 0, 100, func() { order = append(order, "src1#1") })
		n.Send(1, 0, 100, func() { order = append(order, "src1#2") })
	})
	e.Schedule(40, func() {
		// Later send time loses to earlier, even from a smaller source.
		n.Send(0, 0, 100, func() { order = append(order, "src0-late") })
	})
	e.Run()
	want := []string{"src1#1", "src1#2", "src2#1", "src0-late"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("delivery order %v, want %v", order, want)
	}
}

// TestGroupSyncTelemetry drives the cross-shard model and checks the
// synchronizer's window/envelope accounting: SyncSnapshot at barriers and at
// the end, and OnBarrier firing once per window while the group is quiescent.
func TestGroupSyncTelemetry(t *testing.T) {
	const la = Time(61)
	m := &crossModel{la: la, log: make([][]string, 2)}
	e0, e1 := NewEngine(), NewEngine()
	g := NewGroup(la, e0, e1)
	m.engs = []*Engine{e0, e1}
	m.net = g
	m.start(8)

	barriers := 0
	var lastWindows uint64
	g.OnBarrier = func() {
		barriers++
		sn := g.SyncSnapshot()
		if sn.Windows != uint64(barriers) {
			t.Errorf("barrier %d: windows = %d", barriers, sn.Windows)
		}
		if sn.Windows < lastWindows {
			t.Errorf("windows went backwards: %d after %d", sn.Windows, lastWindows)
		}
		lastWindows = sn.Windows
		if sn.Horizon == 0 {
			t.Error("horizon not set at barrier")
		}
		if sn.Chunks < sn.Windows {
			t.Errorf("barrier %d: %d chunks for %d windows", barriers, sn.Chunks, sn.Windows)
		}
		if len(sn.Shards) != 2 {
			t.Fatalf("got %d shard views, want 2", len(sn.Shards))
		}
		for _, s := range sn.Shards {
			if s.LastEvent >= sn.Horizon {
				t.Errorf("shard %d ran to %d, beyond horizon %d", s.Shard, s.LastEvent, sn.Horizon)
			}
		}
	}
	g.Run()

	final := g.SyncSnapshot()
	if barriers == 0 || uint64(barriers) != final.Windows {
		t.Fatalf("OnBarrier fired %d times for %d windows", barriers, final.Windows)
	}
	var in, out uint64
	for _, s := range final.Shards {
		if s.Windows == 0 {
			t.Errorf("shard %d never ran a window", s.Shard)
		}
		if s.Pending != 0 {
			t.Errorf("shard %d still has %d pending after drain", s.Shard, s.Pending)
		}
		in += s.EnvIn
		out += s.EnvOut
	}
	// Every envelope sent was delivered: 8 rounds, both shards send each round.
	if out == 0 || in != out {
		t.Fatalf("envelope accounting: in %d, out %d", in, out)
	}
}

// TestGroupEnableSyncStats checks the opt-in registry mirror: after a run the
// per-shard registries carry the fpga<i>.sync.* instruments with values that
// match SyncSnapshot.
func TestGroupEnableSyncStats(t *testing.T) {
	const la = Time(61)
	m := &crossModel{la: la, log: make([][]string, 2)}
	e0, e1 := NewEngine(), NewEngine()
	g := NewGroup(la, e0, e1)
	m.engs = []*Engine{e0, e1}
	m.net = g
	regs := []*Stats{{}, {}}
	g.EnableSyncStats(regs)
	m.start(6)
	g.Run()

	shards := g.SyncSnapshot().Shards
	for i, reg := range regs {
		prefix := fmt.Sprintf("fpga%d.sync.", i)
		if got := reg.Get(prefix + "windows"); got != shards[i].Windows {
			t.Errorf("shard %d windows counter = %d, snapshot says %d", i, got, shards[i].Windows)
		}
		if got := reg.Get(prefix + "envelopes_in"); got != shards[i].EnvIn {
			t.Errorf("shard %d env_in counter = %d, snapshot says %d", i, got, shards[i].EnvIn)
		}
		if got := reg.Get(prefix + "envelopes_out"); got != shards[i].EnvOut {
			t.Errorf("shard %d env_out counter = %d, snapshot says %d", i, got, shards[i].EnvOut)
		}
		if h, ok := reg.GaugeValue(prefix + "horizon"); !ok || h == 0 {
			t.Errorf("shard %d horizon gauge = %d,%v", i, h, ok)
		}
		if _, ok := reg.GaugeValue(prefix + "lag"); !ok {
			t.Errorf("shard %d lag gauge missing", i)
		}
	}
	// Mismatched registry count is a wiring bug and must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EnableSyncStats with wrong registry count did not panic")
			}
		}()
		NewGroup(la, NewEngine(), NewEngine()).EnableSyncStats([]*Stats{{}})
	}()
}

// TestGroupAdaptiveMatchesSerialNet re-runs the cross-shard model under a
// range of adaptive widening caps: whatever the window widths do, the logs
// and final times must stay identical to the serial reference — widening is
// execution scheduling, not model behavior.
func TestGroupAdaptiveMatchesSerialNet(t *testing.T) {
	const la = Time(61)
	const rounds = 12

	serial := &crossModel{la: la, log: make([][]string, 2)}
	se := NewEngine()
	serial.engs = []*Engine{se, se}
	serial.net = NewSerialNet(se)
	serial.start(rounds)
	serialEnd := se.Run()

	for _, cap := range []int{2, 8, DefaultAdaptiveCap} {
		t.Run(fmt.Sprintf("cap%d", cap), func(t *testing.T) {
			sharded := &crossModel{la: la, log: make([][]string, 2)}
			e0, e1 := NewEngine(), NewEngine()
			g := NewGroup(la, e0, e1)
			g.SetAdaptive(cap)
			sharded.engs = []*Engine{e0, e1}
			sharded.net = g
			sharded.start(rounds)
			shardedEnd := g.Run()

			for s := 0; s < 2; s++ {
				if !reflect.DeepEqual(serial.log[s], sharded.log[s]) {
					t.Fatalf("shard %d logs diverge under cap %d:\nserial:  %v\nsharded: %v",
						s, cap, serial.log[s], sharded.log[s])
				}
			}
			if serialEnd != shardedEnd {
				t.Fatalf("final time diverges under cap %d: serial %d, sharded %d", cap, serialEnd, shardedEnd)
			}
		})
	}
}

// TestAdaptiveCollapse pins the width policy: quiet windows double the width
// geometrically up to the cap, and the width snaps back to the minimum
// crossing within one window of cross-shard traffic reappearing.
func TestAdaptiveCollapse(t *testing.T) {
	const la = Time(10)
	e0, e1 := NewEngine(), NewEngine()
	g := NewGroup(la, e0, e1)
	g.SetAdaptive(8)

	// Both shards tick densely so every chunk has local work; one send from
	// shard 0 fires mid-run.
	delivered := false
	for s, e := range []*Engine{e0, e1} {
		e := e
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 800 {
				e.Schedule(1, tick)
			}
		}
		e.Schedule(Time(s+1), tick)
	}
	e0.Schedule(300, func() {
		g.Send(0, 1, e0.Now()+la, func() { delivered = true })
	})

	var widths []int
	collapsedAt := -1
	sawCap := false
	for g.StepWindow() {
		sn := g.SyncSnapshot()
		widths = append(widths, sn.Width)
		if sn.Width == 8 {
			sawCap = true
		}
		if sn.Collapses == 1 && collapsedAt < 0 {
			collapsedAt = len(widths) - 1
			if sn.Width != 1 {
				t.Fatalf("width %d one window after traffic reappeared, want 1 (widths: %v)", sn.Width, widths)
			}
		}
	}
	if !delivered {
		t.Fatal("cross-shard send never delivered")
	}
	if !sawCap {
		t.Fatalf("width never reached the cap 8 during quiet phase (widths: %v)", widths)
	}
	if collapsedAt < 0 {
		t.Fatalf("width never collapsed after traffic (widths: %v)", widths)
	}
	// Quiet prefix doubles geometrically: next-window widths 2, 4, 8, 8, ...
	for i := 0; i < collapsedAt; i++ {
		want := 2 << i
		if want > 8 {
			want = 8
		}
		if widths[i] != want {
			t.Fatalf("quiet window %d: next width %d, want %d (widths: %v)", i, widths[i], want, widths)
		}
	}
	sn := g.SyncSnapshot()
	if sn.Widenings == 0 || sn.Collapses != 1 {
		t.Fatalf("widenings %d, collapses %d; want >0, 1", sn.Widenings, sn.Collapses)
	}
	if sn.Chunks <= sn.Windows {
		t.Fatalf("chunks %d not above windows %d; widening never took effect", sn.Chunks, sn.Windows)
	}
}

// TestWindowDigestDeterminism runs the same model twice under the same cap
// and requires identical window sequences (count, chunks, digest) — the
// property the checkpoint replay cursor relies on — and different caps to
// yield different digests for the same model.
func TestWindowDigestDeterminism(t *testing.T) {
	// A model with a long quiet phase, so adaptive widening actually differs
	// from fixed windows: dense local ticks on both shards, one mid-run send.
	run := func(cap int) (uint64, uint64, uint64) {
		e0, e1 := NewEngine(), NewEngine()
		g := NewGroup(10, e0, e1)
		g.SetAdaptive(cap)
		for s, e := range []*Engine{e0, e1} {
			e := e
			n := 0
			var tick func()
			tick = func() {
				n++
				if n < 600 {
					e.Schedule(1, tick)
				}
			}
			e.Schedule(Time(s+1), tick)
		}
		e0.Schedule(250, func() { g.Send(0, 1, e0.Now()+10, func() {}) })
		g.Run()
		return g.Windows(), g.Chunks(), g.WindowDigest()
	}
	w1, c1, d1 := run(8)
	w2, c2, d2 := run(8)
	if w1 != w2 || c1 != c2 || d1 != d2 {
		t.Fatalf("same cap diverged: (%d,%d,%#x) vs (%d,%d,%#x)", w1, c1, d1, w2, c2, d2)
	}
	wf, cf, df := run(1)
	if wf == w1 && df == d1 {
		t.Fatalf("fixed and adaptive runs produced the same window sequence (%d windows, digest %#x)", wf, df)
	}
	if cf < c1 {
		// Chunks normalize windows to lookahead units; the fixed run pays one
		// window per chunk, so it can only have at least as many.
		t.Fatalf("fixed run executed %d chunks, adaptive %d", cf, c1)
	}
}

// TestSerialNetMinLatencyGuard checks the serial side of the lookahead
// contract: once armed, a send undercutting the minimum crossing panics
// instead of silently diverging from what a sharded run would do.
func TestSerialNetMinLatencyGuard(t *testing.T) {
	e := NewEngine()
	n := NewSerialNet(e)
	n.SetMinLatency(61)
	ok := false
	e.Schedule(5, func() {
		n.Send(0, 1, e.Now()+61, func() { ok = true }) // exactly the bound: fine
		defer func() {
			if recover() == nil {
				t.Error("undercutting serial send did not panic")
			}
		}()
		n.Send(0, 1, e.Now()+60, func() {})
	})
	e.Run()
	if !ok {
		t.Fatal("legal send was not delivered")
	}
}
