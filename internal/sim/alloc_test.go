package sim

import "testing"

// The engine's event core is pooled: once the free list is warm, the
// Schedule->Step round trip must not allocate at all. These tests pin that
// property so allocation creep fails CI instead of silently eroding the
// zero-allocation win. AllocsPerRun's first iterations warm the pool, so
// the amortized average over many runs converges to the steady state.

// TestScheduleStepZeroAlloc pins the plain-closure hot path: Schedule of a
// prebuilt func plus the Step that executes it.
func TestScheduleStepZeroAlloc(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	// Warm the pool and the heap/FIFO slices.
	for i := 0; i < 64; i++ {
		eng.Schedule(Time(i%3), fn)
	}
	eng.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		eng.Schedule(1, fn)
		for eng.Step() {
		}
	}); avg != 0 {
		t.Fatalf("Schedule+Step allocates %.2f/op at steady state, want 0", avg)
	}
}

// TestScheduleArgStepZeroAlloc pins the typed-callback path the hot
// subsystems (noc, cache, mem, pcie, bridge) use: a bound func(any) plus a
// pointer-shaped argument must ride the pooled event with no boxing.
func TestScheduleArgStepZeroAlloc(t *testing.T) {
	eng := NewEngine()
	type payload struct{ n int }
	arg := &payload{}
	fn := func(v any) { v.(*payload).n++ }
	for i := 0; i < 64; i++ {
		eng.ScheduleArg(Time(i%3), fn, arg)
	}
	eng.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		eng.ScheduleArg(1, fn, arg)
		for eng.Step() {
		}
	}); avg != 0 {
		t.Fatalf("ScheduleArg+Step allocates %.2f/op at steady state, want 0", avg)
	}
	if arg.n == 0 {
		t.Fatal("callback never ran")
	}
}

// TestSameCycleFastPathZeroAlloc pins the same-cycle FIFO: events scheduled
// for the current cycle bypass the heap entirely and must not allocate.
func TestSameCycleFastPathZeroAlloc(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		eng.Schedule(0, fn)
	}
	eng.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		eng.Schedule(0, fn)
		eng.Schedule(0, fn)
		for eng.Step() {
		}
	}); avg != 0 {
		t.Fatalf("same-cycle Schedule+Step allocates %.2f/op at steady state, want 0", avg)
	}
}

// TestAfterFireZeroAlloc pins the cancellable-timer path when the timer
// fires: After hands back a value Timer (no heap box) and the pooled event
// is recycled on expiry.
func TestAfterFireZeroAlloc(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		eng.After(1, fn)
	}
	eng.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		eng.After(1, fn)
		for eng.Step() {
		}
	}); avg != 0 {
		t.Fatalf("After+fire allocates %.2f/op at steady state, want 0", avg)
	}
}

// TestNextEventTimeRecyclesCancelled pins the lazy drain: when NextEventTime
// skips cancelled events at the head of the queue, their slots must land on
// the pooled free list and be reused by subsequent scheduling instead of
// growing the pool.
func TestNextEventTimeRecyclesCancelled(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	var timers [8]Timer
	for i := range timers {
		timers[i] = eng.After(5, fn)
	}
	for i := range timers {
		timers[i].Cancel()
	}
	if at, ok := eng.NextEventTime(); ok {
		t.Fatalf("only cancelled events queued, but NextEventTime reported live work at %d", at)
	}
	if got := len(eng.free); got != len(timers) {
		t.Fatalf("free list holds %d slots after draining %d cancelled events, want all recycled", got, len(timers))
	}
	poolLen := len(eng.pool)
	for range timers {
		eng.Schedule(1, fn)
	}
	if len(eng.pool) != poolLen {
		t.Fatalf("pool grew from %d to %d slots; drained slots were not reused", poolLen, len(eng.pool))
	}
	eng.Run()
}

// TestAfterCancelZeroAlloc pins the cancel path: a cancelled timer's event
// must return to the free list (via the lazy drain) without allocating.
func TestAfterCancelZeroAlloc(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		tm := eng.After(1, fn)
		tm.Cancel()
	}
	eng.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		tm := eng.After(1, fn)
		tm.Cancel()
		eng.Schedule(1, fn) // keep time advancing so cancelled slots drain
		for eng.Step() {
		}
	}); avg != 0 {
		t.Fatalf("After+Cancel allocates %.2f/op at steady state, want 0", avg)
	}
}

// TestGroupHandoffZeroAlloc pins the batched envelope hand-off: once the
// per-(src,dst) outbox slices and the inject scratch are warm, parking an
// envelope (Send), merging it at the barrier (inject) and delivering it
// (AtFront + Step) must not allocate per envelope.
func TestGroupHandoffZeroAlloc(t *testing.T) {
	e0, e1 := NewEngine(), NewEngine()
	g := NewGroup(61, e0, e1)
	fn := func() {}
	drain := func() {
		for e0.Step() {
		}
		for e1.Step() {
		}
	}
	// Warm the outboxes, the merge scratch and both engines' pools with a
	// burst of envelopes each way.
	for i := 0; i < 64; i++ {
		g.Send(0, 1, e1.Now()+100, fn)
		g.Send(1, 0, e0.Now()+100, fn)
	}
	g.inject()
	drain()
	if avg := testing.AllocsPerRun(1000, func() {
		g.Send(0, 1, e1.Now()+100, fn)
		g.Send(1, 0, e0.Now()+100, fn)
		g.inject()
		drain()
	}); avg != 0 {
		t.Fatalf("envelope hand-off allocates %.2f/op at steady state, want 0", avg)
	}
}

// TestGroupHandoffBurstZeroAlloc is the same pin for a multi-envelope
// window: a batch of colliding deliveries exercises the canonical sort and
// must still amortize to zero allocations per window.
func TestGroupHandoffBurstZeroAlloc(t *testing.T) {
	e0, e1 := NewEngine(), NewEngine()
	g := NewGroup(61, e0, e1)
	fn := func() {}
	window := func() {
		at := e1.Now() + 100
		for i := 0; i < 16; i++ {
			g.Send(0, 1, at, fn)
		}
		g.inject()
		for e1.Step() {
		}
	}
	for i := 0; i < 8; i++ {
		window()
	}
	if avg := testing.AllocsPerRun(1000, window); avg != 0 {
		t.Fatalf("16-envelope window allocates %.2f/op at steady state, want 0", avg)
	}
}
