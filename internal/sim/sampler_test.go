package sim

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// workload drives a counter for `until` cycles: one event per cycle.
func sampledWorkload(eng *Engine, s *Stats, until Time) {
	var step func()
	c := s.Counter("node0.mesh.noc1.flits")
	g := s.Gauge("node0.memctl.rd_inflight")
	step = func() {
		c.Add(2)
		g.Set(int64(eng.Now() % 5))
		if eng.Now() < until {
			eng.Schedule(1, step)
		}
	}
	eng.Schedule(1, step)
}

func TestSamplerRecordsTimeSeries(t *testing.T) {
	eng := NewEngine()
	var s Stats
	sampledWorkload(eng, &s, 100)
	sm := NewSampler(eng, &s, 10, "node0.mesh.noc1.flits", "node0.memctl.rd_inflight", "node0.*", "missing")
	eng.Run()

	rows := sm.Rows()
	if len(rows) < 10 {
		t.Fatalf("got %d rows, want >=10", len(rows))
	}
	r0 := rows[0]
	if r0.At != 10 {
		t.Fatalf("first sample at %d, want 10", r0.At)
	}
	// The tick was scheduled before the cycle-10 workload step, so it runs
	// first within the cycle and sees the 9 completed steps of +2 each.
	if r0.Values[0] != 18 {
		t.Fatalf("counter sample = %d, want 18", r0.Values[0])
	}
	if r0.Values[1] != 9%5 {
		t.Fatalf("gauge sample = %d, want %d", r0.Values[1], 9%5)
	}
	// The prefix column sums the flit counter (the gauge is not a counter).
	if r0.Values[2] != r0.Values[0] {
		t.Fatalf("prefix sum = %d, want %d", r0.Values[2], r0.Values[0])
	}
	if r0.Values[3] != 0 {
		t.Fatalf("unknown name sampled %d, want 0", r0.Values[3])
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Values[0] < rows[i-1].Values[0] {
			t.Fatalf("counter series not monotonic at row %d", i)
		}
	}
}

// The sampler re-schedules itself, which would keep Engine.Run alive
// forever; once nothing else executes between ticks it must stop re-arming
// so the run terminates.
func TestSamplerStopsWhenSimulationQuiesces(t *testing.T) {
	eng := NewEngine()
	var s Stats
	sampledWorkload(eng, &s, 50)
	sm := NewSampler(eng, &s, 10, "node0.mesh.noc1.flits")
	end := eng.Run() // must return

	if end > 200 {
		t.Fatalf("engine ran to %d; sampler kept the queue alive", end)
	}
	n := len(sm.Rows())
	eng.Schedule(1, func() {})
	eng.Run()
	if len(sm.Rows()) != n {
		t.Fatal("stopped sampler recorded more rows")
	}
}

func TestSamplerStopIsImmediate(t *testing.T) {
	eng := NewEngine()
	var s Stats
	sampledWorkload(eng, &s, 100)
	sm := NewSampler(eng, &s, 10, "node0.mesh.noc1.flits")
	sm.Stop()
	eng.Run()
	if len(sm.Rows()) != 0 {
		t.Fatalf("stopped sampler recorded %d rows", len(sm.Rows()))
	}
}

func TestSamplerCSVAndJSON(t *testing.T) {
	eng := NewEngine()
	var s Stats
	sampledWorkload(eng, &s, 30)
	sm := NewSampler(eng, &s, 10, "node0.mesh.noc1.flits")
	eng.Run()

	csv := sm.CSV()
	if !strings.HasPrefix(csv, "cycle,node0.mesh.noc1.flits\n10,18\n") {
		t.Fatalf("unexpected CSV:\n%s", csv)
	}

	out, err := json.Marshal(sm)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var doc struct {
		Every uint64     `json:"every"`
		Names []string   `json:"names"`
		Rows  [][]uint64 `json:"rows"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if doc.Every != 10 || len(doc.Names) != 1 || len(doc.Rows) == 0 {
		t.Fatalf("unexpected doc: %+v", doc)
	}
	if doc.Rows[0][0] != 10 || doc.Rows[0][1] != 18 {
		t.Fatalf("first row = %v, want [10 18]", doc.Rows[0])
	}
}

func TestSamplerDefaultInterval(t *testing.T) {
	eng := NewEngine()
	var s Stats
	sm := NewSampler(eng, &s, 0)
	if sm.Every() != 1000 {
		t.Fatalf("default interval = %d, want 1000", sm.Every())
	}
}

// TestSamplerRingBuffer checks the MaxRows cap: the series stays bounded,
// drops the oldest rows, and Rows/CSV/JSON all present the retained window
// in chronological order.
func TestSamplerRingBuffer(t *testing.T) {
	eng := NewEngine()
	var s Stats
	sampledWorkload(eng, &s, 200)
	sm := NewSampler(eng, &s, 10, "node0.mesh.noc1.flits")
	sm.SetMaxRows(5)
	if sm.MaxRows() != 5 {
		t.Fatalf("MaxRows = %d, want 5", sm.MaxRows())
	}
	eng.Run()

	rows := sm.Rows()
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5 (ring cap)", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].At <= rows[i-1].At {
			t.Fatalf("rows not chronological after wrap: %d then %d", rows[i-1].At, rows[i].At)
		}
	}
	// The retained window must be the LAST five samples of the run: the
	// unbounded reference run tells us what those are.
	ref := NewEngine()
	var rs Stats
	sampledWorkload(ref, &rs, 200)
	rm := NewSampler(ref, &rs, 10, "node0.mesh.noc1.flits")
	ref.Run()
	all := rm.Rows()
	want := all[len(all)-5:]
	for i := range want {
		if rows[i].At != want[i].At || rows[i].Values[0] != want[i].Values[0] {
			t.Fatalf("row %d = %+v, want %+v", i, rows[i], want[i])
		}
	}
	// CSV and JSON go through Rows(), so they see the same ordered window.
	csv := sm.CSV()
	if !strings.Contains(csv, fmt.Sprintf("\n%d,", want[0].At)) {
		t.Fatalf("CSV missing oldest retained row %d:\n%s", want[0].At, csv)
	}
	if strings.Contains(csv, fmt.Sprintf("\n%d,", all[0].At)) {
		t.Fatalf("CSV still contains dropped row %d:\n%s", all[0].At, csv)
	}
}

// TestSamplerUnboundedByDefault pins the compatibility contract: without
// SetMaxRows every sample is retained (goldens embed full series).
func TestSamplerUnboundedByDefault(t *testing.T) {
	eng := NewEngine()
	var s Stats
	sampledWorkload(eng, &s, 500)
	sm := NewSampler(eng, &s, 10, "node0.mesh.noc1.flits")
	eng.Run()
	if n := len(sm.Rows()); n < 49 {
		t.Fatalf("unbounded sampler kept %d rows, want ~50", n)
	}
}

// TestSamplerOnRow checks the observability hook: each recorded row is also
// handed to OnRow, in order, after being recorded.
func TestSamplerOnRow(t *testing.T) {
	eng := NewEngine()
	var s Stats
	sampledWorkload(eng, &s, 50)
	sm := NewSampler(eng, &s, 10, "node0.mesh.noc1.flits")
	var seen []Time
	sm.OnRow = func(r SampleRow) { seen = append(seen, r.At) }
	eng.Run()
	rows := sm.Rows()
	if len(seen) != len(rows) {
		t.Fatalf("OnRow saw %d rows, sampler recorded %d", len(seen), len(rows))
	}
	for i, r := range rows {
		if seen[i] != r.At {
			t.Fatalf("OnRow order mismatch at %d: %d vs %d", i, seen[i], r.At)
		}
	}
}
