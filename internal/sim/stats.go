package sim

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Counter is a named monotonically increasing statistic. Models expose
// counters through a Stats registry so experiments can read congestion,
// hit rates and traffic volumes after a run.
//
// All instrument types (Counter, Gauge, Histogram) are nil-safe on their
// mutating methods: models pre-resolve instruments at construction time and
// leave the pointers nil when telemetry is disabled, so the hot path pays a
// single predictable branch and performs no allocation.
type Counter struct {
	Name  string
	Value uint64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.Value += n
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.Value++
	}
}

// LazyCounter is a counter handle that registers with its Stats on first
// increment instead of at construction. Use it for conditionally-hit
// counters a model resolves up front: a metrics report then lists the
// counter only if the run actually touched it (exactly as if the model had
// looked it up by name at each hit), while repeat increments still pay no
// string building or map lookup. The zero value (and any handle built with
// a nil Stats) is a no-op.
type LazyCounter struct {
	stats *Stats
	name  string
	c     *Counter
}

// LazyCounter returns a lazily-registering handle for name. Safe to call on
// a nil registry: the handle is then a no-op.
func (s *Stats) LazyCounter(name string) LazyCounter {
	return LazyCounter{stats: s, name: name}
}

// Add increments the counter by n, registering it on first use.
func (l *LazyCounter) Add(n uint64) {
	if l.c == nil {
		if l.stats == nil {
			return
		}
		l.c = l.stats.Counter(l.name)
	}
	l.c.Value += n
}

// Inc increments the counter by one, registering it on first use.
func (l *LazyCounter) Inc() { l.Add(1) }

// Gauge is a named instantaneous level (queue depth, MSHR occupancy,
// in-flight transactions). It tracks the high-water mark alongside the
// current value. The simulation is single-threaded, so unsynchronized
// updates are safe.
type Gauge struct {
	Name  string
	Value int64
	High  int64
}

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.Value = v
	if v > g.High {
		g.High = v
	}
}

// Add moves the gauge by d (negative to decrease). No-op on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.Value += d
	if g.Value > g.High {
		g.High = g.Value
	}
}

// Inc increases the gauge by one. No-op on a nil receiver.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decreases the gauge by one. No-op on a nil receiver.
func (g *Gauge) Dec() { g.Add(-1) }

// histBins is the number of log2 bins: bin 0 holds the value 0, bin i
// (1 <= i <= 64) holds values in [2^(i-1), 2^i).
const histBins = 65

// Histogram records a distribution of integer samples in logarithmic
// (power-of-two) bins plus explicit min/max/sum, giving O(1) observation
// and approximate quantiles with bounded relative error. The zero value is
// ready to use.
type Histogram struct {
	Name    string
	Samples uint64
	Sum     uint64
	Min     uint64
	Max     uint64
	Bins    [histBins]uint64
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	if h.Samples == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Samples++
	h.Sum += v
	h.Bins[bits.Len64(v)]++
}

// Mean returns the mean of observed samples (zero if none).
func (h *Histogram) Mean() float64 {
	if h == nil || h.Samples == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Samples)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the upper edge of the first bin at which the cumulative sample count
// reaches q*Samples, clamped to the observed [Min, Max] range.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil || h.Samples == 0 {
		return 0
	}
	target := uint64(q * float64(h.Samples))
	if float64(target) < q*float64(h.Samples) {
		target++
	}
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range h.Bins {
		cum += n
		if cum >= target {
			// Upper edge of bin i: 0 for bin 0, 2^i - 1 otherwise.
			var edge uint64
			if i > 0 {
				if i >= 64 {
					edge = ^uint64(0)
				} else {
					edge = 1<<uint(i) - 1
				}
			}
			if edge > h.Max {
				edge = h.Max
			}
			if edge < h.Min {
				edge = h.Min
			}
			return edge
		}
	}
	return h.Max
}

// P50 returns the estimated median.
func (h *Histogram) P50() uint64 { return h.Quantile(0.50) }

// P95 returns the estimated 95th percentile.
func (h *Histogram) P95() uint64 { return h.Quantile(0.95) }

// P99 returns the estimated 99th percentile.
func (h *Histogram) P99() uint64 { return h.Quantile(0.99) }

// Merge folds the samples of o into h (used to aggregate per-tile
// distributions into per-node ones). No-op when either side is nil.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || o.Samples == 0 {
		return
	}
	if h.Samples == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Samples += o.Samples
	h.Sum += o.Sum
	for i := range h.Bins {
		h.Bins[i] += o.Bins[i]
	}
}

// Reset clears all recorded samples, keeping the name.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	*h = Histogram{Name: h.Name}
}

// summary renders the one-line text form of a histogram.
func (h *Histogram) summary() string {
	return fmt.Sprintf("n=%d min=%d mean=%.1f p50=%d p95=%d p99=%d max=%d",
		h.Samples, h.Min, h.Mean(), h.P50(), h.P95(), h.P99(), h.Max)
}

// Stats is a registry of counters, gauges and histograms, hierarchical by
// dot-separated names ("node0.tile3.bpc.miss"). The zero value is ready to
// use. It is not synchronized: the single-threaded simulation engine is the
// only writer.
type Stats struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Counter returns the counter with the given name, creating it on first use.
func (s *Stats) Counter(name string) *Counter {
	if s.counters == nil {
		s.counters = make(map[string]*Counter)
	}
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{Name: name}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (s *Stats) Gauge(name string) *Gauge {
	if s.gauges == nil {
		s.gauges = make(map[string]*Gauge)
	}
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{Name: name}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on first
// use.
func (s *Stats) Histogram(name string) *Histogram {
	if s.hists == nil {
		s.hists = make(map[string]*Histogram)
	}
	h, ok := s.hists[name]
	if !ok {
		h = &Histogram{Name: name}
		s.hists[name] = h
	}
	return h
}

// CopyFrom replaces s's contents with a deep merge of the given registries.
// Counters and gauge movements add; gauge high-water marks and histogram
// extrema take the max. The report layer uses it to fold per-shard
// registries into the single registry MetricsJSON serializes; shard
// instrument names never collide (node/fpga/endpoint prefixes are
// shard-unique), so the merge is a disjoint union in practice.
func (s *Stats) CopyFrom(parts ...*Stats) {
	s.counters = make(map[string]*Counter)
	s.gauges = make(map[string]*Gauge)
	s.hists = make(map[string]*Histogram)
	for _, p := range parts {
		for name, c := range p.counters {
			s.Counter(name).Value += c.Value
		}
		for name, g := range p.gauges {
			dst := s.Gauge(name)
			dst.Value += g.Value
			if g.High > dst.High {
				dst.High = g.High
			}
		}
		for name, h := range p.hists {
			s.Histogram(name).Merge(h)
		}
	}
}

// CounterSnapshot returns every counter's current value as a plain map —
// the portable form of a finished run's counts. The campaign layer stores
// these snapshots in its result cache and folds them back together with
// AddCounts, so per-job statistics survive process boundaries without
// carrying live registries around.
func (s *Stats) CounterSnapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.counters))
	for name, c := range s.counters {
		out[name] = c.Value
	}
	return out
}

// AddCounts adds a CounterSnapshot into the registry, creating counters as
// needed. Together with CounterSnapshot it gives campaign-level aggregation
// the same merge semantics CopyFrom gives the sharded engine, but over
// serialized snapshots instead of live registries.
func (s *Stats) AddCounts(m map[string]uint64) {
	for name, v := range m {
		s.Counter(name).Add(v)
	}
}

// GaugeSnap is the immutable copy of a gauge inside a StatsSnapshot.
type GaugeSnap struct {
	Value int64 `json:"value"`
	High  int64 `json:"high"`
}

// HistSnap is the immutable summary of a histogram inside a StatsSnapshot.
type HistSnap struct {
	Samples uint64  `json:"samples"`
	Sum     uint64  `json:"sum"`
	Min     uint64  `json:"min"`
	Max     uint64  `json:"max"`
	Mean    float64 `json:"mean"`
	P50     uint64  `json:"p50"`
	P95     uint64  `json:"p95"`
	P99     uint64  `json:"p99"`
}

// StatsSnapshot is a point-in-time deep copy of a registry: plain maps with
// no pointers back into the live instruments. The observability layer builds
// snapshots at quiescent boundaries (sample ticks, window barriers) and hands
// them to HTTP handlers, which may marshal them concurrently with the
// simulation precisely because nothing in a snapshot aliases live state.
// Untouched-histogram entries are omitted, matching MarshalJSON.
type StatsSnapshot struct {
	Counters   map[string]uint64    `json:"counters"`
	Gauges     map[string]GaugeSnap `json:"gauges"`
	Histograms map[string]HistSnap  `json:"histograms"`
}

// Snapshot deep-copies the registry. The caller must hold the simulation
// quiescent (single-threaded engine, or a window barrier of the sharded one);
// the returned snapshot is then safe to share across goroutines.
func (s *Stats) Snapshot() *StatsSnapshot {
	snap := &StatsSnapshot{
		Counters:   make(map[string]uint64, len(s.counters)),
		Gauges:     make(map[string]GaugeSnap, len(s.gauges)),
		Histograms: make(map[string]HistSnap, len(s.hists)),
	}
	for name, c := range s.counters {
		snap.Counters[name] = c.Value
	}
	for name, g := range s.gauges {
		snap.Gauges[name] = GaugeSnap{Value: g.Value, High: g.High}
	}
	for name, h := range s.hists {
		if h.Samples == 0 {
			continue
		}
		snap.Histograms[name] = HistSnap{
			Samples: h.Samples, Sum: h.Sum, Min: h.Min, Max: h.Max,
			Mean: h.Mean(), P50: h.P50(), P95: h.P95(), P99: h.P99(),
		}
	}
	return snap
}

// CaptureState returns value copies of every instrument, sorted by name —
// the full-fidelity form checkpointing needs. Unlike Snapshot it preserves
// histogram bins and zero-sample histograms, so a registry restored with
// RestoreState renders byte-identical reports and keeps observing into the
// same distributions.
func (s *Stats) CaptureState() (counters []Counter, gauges []Gauge, hists []Histogram) {
	for _, c := range s.counters {
		counters = append(counters, *c)
	}
	for _, g := range s.gauges {
		gauges = append(gauges, *g)
	}
	for _, h := range s.hists {
		hists = append(hists, *h)
	}
	sort.Slice(counters, func(i, j int) bool { return counters[i].Name < counters[j].Name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].Name < gauges[j].Name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	return counters, gauges, hists
}

// RestoreState overwrites instruments from a CaptureState dump. Instruments
// already registered keep their identity (live pointers held by models stay
// valid and simply see the restored values); instruments only present in the
// dump are created. Instruments present in the registry but absent from the
// dump are left untouched — restore runs right after construction, when the
// registry holds only freshly-registered zero-valued instruments.
func (s *Stats) RestoreState(counters []Counter, gauges []Gauge, hists []Histogram) {
	for i := range counters {
		c := s.Counter(counters[i].Name)
		c.Value = counters[i].Value
	}
	for i := range gauges {
		g := s.Gauge(gauges[i].Name)
		g.Value, g.High = gauges[i].Value, gauges[i].High
	}
	for i := range hists {
		h := s.Histogram(hists[i].Name)
		name := h.Name
		*h = hists[i]
		h.Name = name
	}
}

// Get returns the value of a counter, or zero if it was never touched.
func (s *Stats) Get(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.Value
	}
	return 0
}

// GaugeValue returns the current value of a gauge and whether it exists.
func (s *Stats) GaugeValue(name string) (int64, bool) {
	if g, ok := s.gauges[name]; ok {
		return g.Value, true
	}
	return 0, false
}

// FindHistogram returns the named histogram, or nil if it was never created.
func (s *Stats) FindHistogram(name string) *Histogram { return s.hists[name] }

// Sum returns the sum of all counters under prefix. A counter matches when
// its name equals the prefix exactly or extends it at a "." boundary, so
// Sum("node1") covers "node1.tile0.miss" but not "node10.tile0.miss".
func (s *Stats) Sum(prefix string) uint64 {
	var total uint64
	for name, c := range s.counters {
		if matchesPrefix(name, prefix) {
			total += c.Value
		}
	}
	return total
}

// matchesPrefix reports whether name equals prefix or extends it at a "."
// boundary (a trailing "." in prefix already is the boundary; the empty
// prefix matches everything).
func matchesPrefix(name, prefix string) bool {
	if !strings.HasPrefix(name, prefix) {
		return false
	}
	if len(name) == len(prefix) || prefix == "" || strings.HasSuffix(prefix, ".") {
		return true
	}
	return name[len(prefix)] == '.'
}

// Names returns all counter names in sorted order.
func (s *Stats) Names() []string {
	names := make([]string, 0, len(s.counters))
	for name := range s.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns all gauge names in sorted order.
func (s *Stats) GaugeNames() []string {
	names := make([]string, 0, len(s.gauges))
	for name := range s.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns all histogram names in sorted order.
func (s *Stats) HistogramNames() []string {
	names := make([]string, 0, len(s.hists))
	for name := range s.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// String renders all instruments, one per line, sorted by name within each
// section. Counters come first (matching the registry's historical output),
// then gauges and histogram summaries.
func (s *Stats) String() string {
	var b strings.Builder
	for _, name := range s.Names() {
		fmt.Fprintf(&b, "%-48s %d\n", name, s.counters[name].Value)
	}
	for _, name := range s.GaugeNames() {
		g := s.gauges[name]
		fmt.Fprintf(&b, "%-48s %d (high %d)\n", name, g.Value, g.High)
	}
	for _, name := range s.HistogramNames() {
		h := s.hists[name]
		if h.Samples == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-48s %s\n", name, h.summary())
	}
	return b.String()
}

// gaugeJSON is the wire form of a gauge.
type gaugeJSON struct {
	Value int64 `json:"value"`
	High  int64 `json:"high"`
}

// histJSON is the wire form of a histogram summary.
type histJSON struct {
	Samples uint64  `json:"samples"`
	Sum     uint64  `json:"sum"`
	Min     uint64  `json:"min"`
	Max     uint64  `json:"max"`
	Mean    float64 `json:"mean"`
	P50     uint64  `json:"p50"`
	P95     uint64  `json:"p95"`
	P99     uint64  `json:"p99"`
}

// MarshalJSON renders the registry as a deterministic JSON document with
// "counters", "gauges" and "histograms" sections (encoding/json sorts map
// keys, so two identical runs produce byte-identical output).
func (s *Stats) MarshalJSON() ([]byte, error) {
	counters := make(map[string]uint64, len(s.counters))
	for name, c := range s.counters {
		counters[name] = c.Value
	}
	gauges := make(map[string]gaugeJSON, len(s.gauges))
	for name, g := range s.gauges {
		gauges[name] = gaugeJSON{Value: g.Value, High: g.High}
	}
	hists := make(map[string]histJSON, len(s.hists))
	for name, h := range s.hists {
		if h.Samples == 0 {
			continue
		}
		hists[name] = histJSON{
			Samples: h.Samples, Sum: h.Sum, Min: h.Min, Max: h.Max,
			Mean: h.Mean(), P50: h.P50(), P95: h.P95(), P99: h.P99(),
		}
	}
	return json.Marshal(map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	})
}

// WriteCSV renders the registry as CSV rows "kind,name,fields..." sorted by
// kind then name, for spreadsheet import.
func (s *Stats) WriteCSV(w *strings.Builder) {
	for _, name := range s.Names() {
		fmt.Fprintf(w, "counter,%s,%d\n", name, s.counters[name].Value)
	}
	for _, name := range s.GaugeNames() {
		g := s.gauges[name]
		fmt.Fprintf(w, "gauge,%s,%d,%d\n", name, g.Value, g.High)
	}
	for _, name := range s.HistogramNames() {
		h := s.hists[name]
		if h.Samples == 0 {
			continue
		}
		fmt.Fprintf(w, "histogram,%s,%d,%d,%d,%.3f,%d,%d,%d\n",
			name, h.Samples, h.Min, h.Max, h.Mean(), h.P50(), h.P95(), h.P99())
	}
}

// CSV returns the WriteCSV rendering with a header line.
func (s *Stats) CSV() string {
	var b strings.Builder
	b.WriteString("kind,name,value_or_samples,high_or_min,max,mean,p50,p95,p99\n")
	s.WriteCSV(&b)
	return b.String()
}
