package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a named monotonically increasing statistic. Models expose
// counters through a Stats registry so experiments can read congestion,
// hit rates and traffic volumes after a run.
type Counter struct {
	Name  string
	Value uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.Value += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Value++ }

// Stats is a registry of counters, hierarchical by dot-separated names
// ("node0.tile3.bpc.miss"). The zero value is ready to use.
type Stats struct {
	counters map[string]*Counter
}

// Counter returns the counter with the given name, creating it on first use.
func (s *Stats) Counter(name string) *Counter {
	if s.counters == nil {
		s.counters = make(map[string]*Counter)
	}
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{Name: name}
		s.counters[name] = c
	}
	return c
}

// Get returns the value of a counter, or zero if it was never touched.
func (s *Stats) Get(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.Value
	}
	return 0
}

// Sum returns the sum of all counters whose names begin with prefix.
func (s *Stats) Sum(prefix string) uint64 {
	var total uint64
	for name, c := range s.counters {
		if strings.HasPrefix(name, prefix) {
			total += c.Value
		}
	}
	return total
}

// Names returns all counter names in sorted order.
func (s *Stats) Names() []string {
	names := make([]string, 0, len(s.counters))
	for name := range s.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// String renders all counters, one per line, sorted by name.
func (s *Stats) String() string {
	var b strings.Builder
	for _, name := range s.Names() {
		fmt.Fprintf(&b, "%-48s %d\n", name, s.counters[name].Value)
	}
	return b.String()
}

// Histogram records a distribution of integer samples in fixed-width bins
// plus explicit min/max/sum for summary statistics.
type Histogram struct {
	Name    string
	Samples uint64
	Sum     uint64
	Min     uint64
	Max     uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h.Samples == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Samples++
	h.Sum += v
}

// Mean returns the mean of observed samples (zero if none).
func (h *Histogram) Mean() float64 {
	if h.Samples == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Samples)
}
