package core

import "fmt"

// Physical address map. Each node owns one DRAM region; the top half of the
// region backs the node's virtual SD card (paper §3.4.2), the bottom half is
// main memory. Device (uncacheable) space sits far above DRAM.
const (
	// DRAMBase is where node 0's DRAM region starts (the RISC-V reset
	// region sits below it).
	DRAMBase uint64 = 0x8000_0000
	// NodeDRAMSize is each node's DRAM region (1 GiB modeled; F1 boards
	// carry 16 GiB per channel, shrunk here to keep addresses compact).
	NodeDRAMSize uint64 = 1 << 30
	// ResetPC is where cores start executing (the host loads the boot
	// program there).
	ResetPC uint64 = DRAMBase

	// DevBase is the start of uncacheable device space. Bits [39:32]
	// select the node, bits of the offset select the device.
	DevBase uint64 = 0xF0_0000_0000

	// Device offsets within a node's device window.
	DevUART0    uint64 = 0x0000_1000
	DevUART1    uint64 = 0x0000_2000
	DevSD       uint64 = 0x0000_3000
	DevCLINT    uint64 = 0x0200_0000
	DevPLIC     uint64 = 0x0C00_0000
	DevAccel    uint64 = 0x4000_0000 // + tile<<16: per-tile accelerator MMIO
	DevNodeSize uint64 = 1 << 32
)

// AddrMap answers placement questions for a prototype's address space.
type AddrMap struct {
	nodes        int
	tilesPerNode int
	unified      bool
}

// NewAddrMap builds the map for a prototype.
func NewAddrMap(nodes, tilesPerNode int, unified bool) *AddrMap {
	return &AddrMap{nodes: nodes, tilesPerNode: tilesPerNode, unified: unified}
}

// NodeDRAMBase returns the start of a node's DRAM region.
func (m *AddrMap) NodeDRAMBase(node int) uint64 {
	return DRAMBase + uint64(node)*NodeDRAMSize
}

// MainMemorySize is the usable main memory per node (bottom half).
func (m *AddrMap) MainMemorySize() uint64 { return NodeDRAMSize / 2 }

// SDCardBase returns the physical address of a node's virtual SD card image
// (top half of the node's DRAM).
func (m *AddrMap) SDCardBase(node int) uint64 {
	return m.NodeDRAMBase(node) + NodeDRAMSize/2
}

// IsDRAM reports whether addr falls in any node's DRAM region.
func (m *AddrMap) IsDRAM(addr uint64) bool {
	return addr >= DRAMBase && addr < DRAMBase+uint64(m.nodes)*NodeDRAMSize
}

// IsUncached reports whether addr is device space.
func (m *AddrMap) IsUncached(addr uint64) bool { return addr >= DevBase }

// HomeNode returns the node owning addr's DRAM region. With unified memory
// disabled, every node is its own coherence domain, so the caller's node is
// the home; pass it as fallback.
func (m *AddrMap) HomeNode(addr uint64, callerNode int) int {
	if !m.unified {
		return callerNode
	}
	if !m.IsDRAM(addr) {
		return callerNode
	}
	return int((addr - DRAMBase) / NodeDRAMSize)
}

// HomeTile returns the LLC slice within the home node: cache lines
// interleave across the node's slices (SMAPPIC's out-of-the-box homing).
func (m *AddrMap) HomeTile(addr uint64) int {
	return int(addr >> 6 % uint64(m.tilesPerNode))
}

// DevNode extracts the node index from a device address.
func (m *AddrMap) DevNode(addr uint64) int {
	return int((addr - DevBase) / DevNodeSize)
}

// DevOffset returns the offset within the node's device window.
func (m *AddrMap) DevOffset(addr uint64) uint64 {
	return (addr - DevBase) % DevNodeSize
}

// AccelTile extracts the tile index from a per-tile accelerator address,
// reporting ok=false for non-accelerator device offsets.
func (m *AddrMap) AccelTile(off uint64) (tile int, devOff uint64, ok bool) {
	if off < DevAccel {
		return 0, 0, false
	}
	rel := off - DevAccel
	tile = int(rel >> 16)
	if tile >= m.tilesPerNode {
		return 0, 0, false
	}
	return tile, rel & 0xFFFF, true
}

// CheckMainMemory panics if addr+size spills out of a node's usable main
// memory (catches workloads colliding with the SD image).
func (m *AddrMap) CheckMainMemory(addr uint64, size int) {
	if !m.IsDRAM(addr) {
		panic(fmt.Sprintf("core: address %#x outside DRAM", addr))
	}
	off := (addr - DRAMBase) % NodeDRAMSize
	if off+uint64(size) > m.MainMemorySize() {
		panic(fmt.Sprintf("core: access %#x+%d crosses into the SD region", addr, size))
	}
}
