package core

import (
	"smappic/internal/axi"
	"smappic/internal/pcie"
	"smappic/internal/sim"
)

// icLatency is the intra-FPGA interconnect traversal latency in cycles: the
// crossing every hop inside the custom logic pays (bridge slot to bridge
// slot, shell to bridge slot). It replaces the old per-FPGA crossbar's
// traversal latency — but as a CrossNet send instead of a same-engine
// forward, so co-located nodes become shard boundaries and the per-node
// sharded engine can use it as its inner lookahead. Every mode routes these
// hops the same way (the serial reference and per-FPGA shards included),
// which is what keeps results granularity-invariant.
const icLatency sim.Time = 2

// icBeats converts a transfer size to target-port beats (one beat per cycle
// on the 512-bit port), minimum one.
func icBeats(n int) sim.Time {
	beats := sim.Time((n + axi.BeatBytes - 1) / axi.BeatBytes)
	if beats == 0 {
		beats = 1
	}
	return beats
}

// icPort is the destination side of one interconnect window: the
// arbitration point serializing beats onto one bridge's inbound port. It is
// owned by the destination node's engine — arbitration state is only
// touched from delivered events, so per-node shards need no locking.
type icPort struct {
	node   int // the node whose bridge sits behind this port
	eng    *sim.Engine
	target axi.Target
	busy   sim.Time
	writes sim.LazyCounter
	reads  sim.LazyCounter
}

// arbitrate reserves beats on the port and runs invoke when the transfer
// wins the port, exactly like the old crossbar's per-target serialization
// (start = max(arrival, busy); busy = start + beats).
func (pt *icPort) arbitrate(beats sim.Time, invoke func()) {
	now := pt.eng.Now()
	start := now
	if pt.busy > start {
		start = pt.busy
	}
	pt.busy = start + beats
	if start > now {
		pt.eng.Schedule(start-now, invoke)
		return
	}
	invoke()
}

// dropWriteResp discards the bridge's inbound write acknowledgement: the
// source was answered at issue time (posted write), so the destination-side
// response has no consumer.
func dropWriteResp(*axi.WriteResp) {}

// icMaster is one node's master port onto its FPGA's interconnect. It
// replaces the per-FPGA crossbar plus the old clOut router: addresses below
// the PCIe aperture decode to a co-located bridge window and cross the
// interconnect (a CrossNet send at icLatency); addresses inside the
// aperture leave through the FPGA's shell, hopping to the shell-owning
// slot-0 node first when the master lives elsewhere. The shell's inbound
// custom-logic port is the slot-0 node's icMaster, so PCIe-delivered
// transactions join the same arbitration as local ones.
type icMaster struct {
	p    *Prototype
	node int // source endpoint
	eng  *sim.Engine
}

// decode resolves a CL-local address to the co-located bridge port behind
// it, or nil when unmapped.
func (m *icMaster) decode(addr axi.Addr) *icPort {
	base := bridgeWindow(0)
	if addr < base {
		return nil
	}
	b := m.p.Cfg.NodesPerFPGA
	slot := int(uint64(addr-base) / bridgeWindowSize)
	if slot >= b {
		return nil
	}
	return m.p.icPorts[m.node/b*b+slot]
}

// outNode returns the slot-0 node of the master's FPGA — the node whose
// engine owns the FPGA's shell.
func (m *icMaster) outNode() int {
	b := m.p.Cfg.NodesPerFPGA
	return m.node / b * b
}

func (m *icMaster) Write(req *axi.WriteReq, done func(*axi.WriteResp)) {
	if req.Addr >= pcie.WindowBase {
		m.shellWrite(req, done)
		return
	}
	pt := m.decode(req.Addr)
	if pt == nil {
		done(&axi.WriteResp{ID: req.ID, OK: false})
		return
	}
	beats := icBeats(len(req.Data))
	// The crossing owns a copy of the request: req may point into a pooled
	// record (a PCIe exchange's rewritten request) that its owner recycles at
	// a later cycle of the same window — which another engine may execute
	// concurrently. Within one engine sim order protects the pointer; across
	// engines only a value handed off at the Send boundary is safe.
	cp := *req
	m.p.net.Send(m.node, pt.node, m.eng.Now()+icLatency, func() {
		pt.writes.Inc()
		pt.arbitrate(beats, func() { pt.target.Write(&cp, dropWriteResp) })
	})
	// Posted write: the decode succeeded, so the source is answered
	// immediately. The bridge's inbound port unconditionally acknowledges
	// writes (loss shows up as a missing envelope, reconciled by credits),
	// so no information is lost by acknowledging at the source.
	done(&axi.WriteResp{ID: req.ID, OK: true})
}

func (m *icMaster) Read(req *axi.ReadReq, done func(*axi.ReadResp)) {
	if req.Addr >= pcie.WindowBase {
		m.shellRead(req, done)
		return
	}
	pt := m.decode(req.Addr)
	if pt == nil {
		done(&axi.ReadResp{ID: req.ID, OK: false})
		return
	}
	beats := icBeats(req.Len)
	src := m.node
	cp := *req // see Write: the crossing owns a copy
	m.p.net.Send(src, pt.node, m.eng.Now()+icLatency, func() {
		pt.reads.Inc()
		pt.arbitrate(beats, func() {
			pt.target.Read(&cp, func(r *axi.ReadResp) {
				// Full round trip: the response pays the return crossing
				// too, delivered back on the source node's engine.
				m.p.net.Send(pt.node, src, pt.eng.Now()+icLatency, func() { done(r) })
			})
		})
	})
}

// shellWrite routes a PCIe-aperture write out through the FPGA's shell. The
// shell is owned by the slot-0 node's engine; masters on other nodes cross
// the interconnect to reach it, and the response crosses back (the bridge
// reclaims credits on a failed write, so the completion must arrive in the
// source's own execution context).
func (m *icMaster) shellWrite(req *axi.WriteReq, done func(*axi.WriteResp)) {
	sh := m.p.Shells[m.node/m.p.Cfg.NodesPerFPGA]
	out := m.outNode()
	if m.node == out {
		sh.Outbound().Write(req, done)
		return
	}
	src := m.node
	shEng := m.p.EngineForNode(out)
	cp := *req // see Write: the crossing owns a copy
	m.p.net.Send(src, out, m.eng.Now()+icLatency, func() {
		sh.Outbound().Write(&cp, func(r *axi.WriteResp) {
			m.p.net.Send(out, src, shEng.Now()+icLatency, func() { done(r) })
		})
	})
}

// shellRead is shellWrite for reads (credit fetches crossing PCIe).
func (m *icMaster) shellRead(req *axi.ReadReq, done func(*axi.ReadResp)) {
	sh := m.p.Shells[m.node/m.p.Cfg.NodesPerFPGA]
	out := m.outNode()
	if m.node == out {
		sh.Outbound().Read(req, done)
		return
	}
	src := m.node
	shEng := m.p.EngineForNode(out)
	cp := *req // see Write: the crossing owns a copy
	m.p.net.Send(src, out, m.eng.Now()+icLatency, func() {
		sh.Outbound().Read(&cp, func(r *axi.ReadResp) {
			m.p.net.Send(out, src, shEng.Now()+icLatency, func() { done(r) })
		})
	})
}

var _ axi.Target = (*icMaster)(nil)

// pcieView adapts the node-endpoint CrossNet to the PCIe fabric's endpoint
// language: fabric endpoint f is FPGA f, carried by its slot-0 node (whose
// engine owns the shell and the fabric port). The host endpoint
// (pcie.HostID, negative) passes through untranslated.
type pcieView struct {
	net   sim.CrossNet
	nodes int // nodes per FPGA
}

func (v pcieView) Send(src, dst int, deliverAt sim.Time, fn func()) {
	if src >= 0 {
		src *= v.nodes
	}
	if dst >= 0 {
		dst *= v.nodes
	}
	v.net.Send(src, dst, deliverAt, fn)
}
