package core

import (
	"fmt"

	"smappic/internal/cache"
	"smappic/internal/riscv"
	"smappic/internal/sim"
)

// corePort implements riscv.Mem for a tile: cacheable accesses flow through
// the private cache stack (the TRI boundary) and move functional data in
// the backing store at completion time; uncacheable accesses become MMIO
// round trips over the NoC.
type corePort struct{ tile *Tile }

func (cp *corePort) proto() *Prototype { return cp.tile.node.proto }

// Cacheable accesses use the Suspend/Park split rather than Call: the
// process's pooled completion goes straight to the cache stack, so the
// per-access path allocates nothing.

func (cp *corePort) Fetch(p *sim.Process, addr uint64) uint32 {
	pr := cp.proto()
	cp.tile.Priv.Fetch(addr, p.Suspend())
	p.Park()
	return pr.Backing.ReadU32(addr)
}

func (cp *corePort) Load(p *sim.Process, addr uint64, size int) uint64 {
	pr := cp.proto()
	if pr.Map.IsUncached(addr) {
		var out uint64
		p.Call(func(done func()) {
			pr.sendMMIO(cp.tile, &mmioReq{addr: addr, size: size, done: func(v uint64) {
				out = v
				done()
			}})
		})
		return out
	}
	cp.tile.Priv.Load(addr, p.Suspend())
	p.Park()
	return readBacking(pr, addr, size)
}

func (cp *corePort) Store(p *sim.Process, addr uint64, size int, v uint64) {
	pr := cp.proto()
	if pr.Map.IsUncached(addr) {
		p.Call(func(done func()) {
			pr.sendMMIO(cp.tile, &mmioReq{write: true, addr: addr, size: size, val: v, done: func(uint64) {
				done()
			}})
		})
		return
	}
	cp.tile.Priv.Store(addr, p.Suspend())
	p.Park()
	writeBacking(pr, addr, size, v)
}

func (cp *corePort) Amo(p *sim.Process, addr uint64, size int, f func(uint64) uint64) uint64 {
	pr := cp.proto()
	var old uint64
	cp.tile.Priv.Amo(addr, p.Suspend())
	p.Park()
	// The line is held in M here; the read-modify-write is atomic in the
	// simulated interleaving.
	old = readBacking(pr, addr, size)
	writeBacking(pr, addr, size, f(old))
	return old
}

func readBacking(pr *Prototype, addr uint64, size int) uint64 {
	switch size {
	case 1:
		return uint64(pr.Backing.ReadU8(addr))
	case 2:
		return uint64(pr.Backing.ReadU16(addr))
	case 4:
		return uint64(pr.Backing.ReadU32(addr))
	case 8:
		return pr.Backing.ReadU64(addr)
	}
	panic(fmt.Sprintf("core: bad access size %d", size))
}

func writeBacking(pr *Prototype, addr uint64, size int, v uint64) {
	switch size {
	case 1:
		pr.Backing.WriteU8(addr, uint8(v))
	case 2:
		pr.Backing.WriteU16(addr, uint16(v))
	case 4:
		pr.Backing.WriteU32(addr, uint32(v))
	case 8:
		pr.Backing.WriteU64(addr, v)
	default:
		panic(fmt.Sprintf("core: bad access size %d", size))
	}
}

var _ riscv.Mem = (*corePort)(nil)

// ReadPhys reads simulated memory functionally (host/debug access, no
// simulated time).
func (p *Prototype) ReadPhys(addr uint64, size int) uint64 { return readBacking(p, addr, size) }

// WritePhys writes simulated memory functionally.
func (p *Prototype) WritePhys(addr uint64, size int, v uint64) { writeBacking(p, addr, size, v) }

// Port is the execution-driven interface for workload threads (the fast
// path for large studies): Go code issues loads and stores that charge real
// memory-system timing and move data in simulated memory, without running
// an ISA-level core.
type Port struct {
	tile *Tile
	pr   *Prototype
}

// PortAt returns the workload port of a tile.
func (p *Prototype) PortAt(g cache.GID) *Port {
	return &Port{tile: p.Tile(g), pr: p}
}

// Tile returns the port's tile location.
func (pt *Port) Tile() cache.GID { return pt.tile.ID }

// Load reads size bytes at addr through the cache hierarchy.
func (pt *Port) Load(p *sim.Process, addr uint64, size int) uint64 {
	pt.tile.Priv.Load(addr, p.Suspend())
	p.Park()
	return readBacking(pt.pr, addr, size)
}

// Store writes size bytes at addr through the cache hierarchy.
func (pt *Port) Store(p *sim.Process, addr uint64, size int, v uint64) {
	pt.tile.Priv.Store(addr, p.Suspend())
	p.Park()
	writeBacking(pt.pr, addr, size, v)
}

// LoadAsync issues a non-blocking load; done receives the value at
// completion time. Callers (e.g. the MAPLE engine) use it to keep several
// misses in flight, bounded by the BPC's MSHRs.
func (pt *Port) LoadAsync(addr uint64, size int, done func(uint64)) {
	pt.tile.Priv.Load(addr, func() { done(readBacking(pt.pr, addr, size)) })
}

// StoreAsync issues a non-blocking store: the value lands when write
// permission arrives, without stalling the caller (MAPLE's decoupled
// update path).
func (pt *Port) StoreAsync(addr uint64, size int, v uint64) {
	pt.tile.Priv.Store(addr, func() { writeBacking(pt.pr, addr, size, v) })
}

// Amo performs an atomic read-modify-write (fetch-add style) at addr.
func (pt *Port) Amo(p *sim.Process, addr uint64, size int, f func(uint64) uint64) uint64 {
	pt.tile.Priv.Amo(addr, p.Suspend())
	p.Park()
	old := readBacking(pt.pr, addr, size)
	writeBacking(pt.pr, addr, size, f(old))
	return old
}

// MMIOLoad performs an uncacheable device read (e.g. an accelerator fetch).
func (pt *Port) MMIOLoad(p *sim.Process, addr uint64, size int) uint64 {
	var out uint64
	p.Call(func(done func()) {
		pt.pr.sendMMIO(pt.tile, &mmioReq{addr: addr, size: size, done: func(v uint64) {
			out = v
			done()
		}})
	})
	return out
}

// MMIOStore performs an uncacheable device write.
func (pt *Port) MMIOStore(p *sim.Process, addr uint64, size int, v uint64) {
	p.Call(func(done func()) {
		pt.pr.sendMMIO(pt.tile, &mmioReq{write: true, addr: addr, size: size, val: v, done: func(uint64) {
			done()
		}})
	})
}

// Compute charges n cycles of pure computation (in-order single-issue).
func (pt *Port) Compute(p *sim.Process, n sim.Time) {
	if n > 0 {
		p.Wait(n)
	}
}
