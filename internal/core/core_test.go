package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"smappic/internal/cache"
	"smappic/internal/rvasm"
	"smappic/internal/sim"
)

func TestParseShape(t *testing.T) {
	a, b, c, err := ParseShape("4x1x12")
	if err != nil || a != 4 || b != 1 || c != 12 {
		t.Fatalf("ParseShape = %d,%d,%d,%v", a, b, c, err)
	}
	for _, bad := range []string{"", "4x1", "0x1x2", "axbxc"} {
		if _, _, _, err := ParseShape(bad); err == nil {
			t.Errorf("ParseShape(%q) should fail", bad)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		a, b, c int
		ok      bool
	}{
		{1, 1, 12, true},
		{4, 1, 12, true},
		{1, 4, 2, true},
		{4, 4, 2, true},
		{5, 1, 2, false},  // > 4 FPGAs on one low-latency switch
		{1, 5, 2, false},  // > 4 DRAM channels
		{1, 1, 13, false}, // > 12 tiles per VU9P
	}
	for _, tc := range cases {
		cfg := DefaultConfig(tc.a, tc.b, tc.c)
		err := cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("Validate(%dx%dx%d) err=%v, want ok=%v", tc.a, tc.b, tc.c, err, tc.ok)
		}
	}
}

func TestMeshDims(t *testing.T) {
	cases := map[int][2]int{12: {4, 3}, 2: {2, 1}, 6: {3, 2}, 9: {3, 3}, 5: {5, 1}}
	for tiles, want := range cases {
		cfg := DefaultConfig(1, 1, tiles)
		w, h := cfg.MeshDims()
		if w != want[0] || h != want[1] {
			t.Errorf("MeshDims(%d) = %dx%d, want %dx%d", tiles, w, h, want[0], want[1])
		}
	}
}

func TestAddrMapHoming(t *testing.T) {
	m := NewAddrMap(4, 12, true)
	if got := m.HomeNode(m.NodeDRAMBase(2)+0x1234, 0); got != 2 {
		t.Errorf("HomeNode = %d, want 2", got)
	}
	// Line interleaving across 12 slices.
	a := m.NodeDRAMBase(0)
	seen := map[int]bool{}
	for i := uint64(0); i < 12; i++ {
		seen[m.HomeTile(a+i*64)] = true
	}
	if len(seen) != 12 {
		t.Errorf("lines interleave over %d slices, want 12", len(seen))
	}
	// Non-unified: home stays on the caller's node.
	mu := NewAddrMap(4, 12, false)
	if got := mu.HomeNode(m.NodeDRAMBase(2), 1); got != 1 {
		t.Errorf("non-unified HomeNode = %d, want caller's 1", got)
	}
}

func TestAddrMapDevice(t *testing.T) {
	m := NewAddrMap(4, 4, true)
	addr := DevBase + 2*DevNodeSize + DevAccel + 3<<16 + 0x8
	if !m.IsUncached(addr) {
		t.Fatal("device address not uncached")
	}
	if m.DevNode(addr) != 2 {
		t.Fatalf("DevNode = %d", m.DevNode(addr))
	}
	tile, off, ok := m.AccelTile(m.DevOffset(addr))
	if !ok || tile != 3 || off != 8 {
		t.Fatalf("AccelTile = %d,%#x,%v", tile, off, ok)
	}
	if _, _, ok := m.AccelTile(DevCLINT); ok {
		t.Error("CLINT offset misdecoded as accelerator")
	}
}

// buildQuiet builds a prototype for tests.
func buildQuiet(t *testing.T, cfg Config) *Prototype {
	t.Helper()
	p, err := Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBootHelloWorldOverUART(t *testing.T) {
	cfg := DefaultConfig(1, 1, 2)
	p := buildQuiet(t, cfg)
	host := p.Host()

	prog := rvasm.MustAssemble(ResetPC, `
		csrr t0, mhartid
		bnez t0, halt          # only hart 0 prints
		la   s0, msg
		li   s1, 0xF000001000  # UART0 THR
	putc:	lbu  t1, 0(s0)
		beqz t1, halt
		sd   t1, 0(s1)
	wait:	ld   t2, 40(s1)        # LSR at reg 5 (byte regs, stride 8 here)
		andi t2, t2, 0x20
		beqz t2, wait
		addi s0, s0, 1
		j    putc
	halt:	li a0, 0
		ebreak
	msg:	.asciz "Hello SMAPPIC\n"
	`)
	host.LoadProgram(0, prog)
	p.Start()
	p.Run()
	if !p.AllHalted() {
		t.Fatal("cores did not halt")
	}
	if got := host.Console(0); got != "Hello SMAPPIC\n" {
		t.Fatalf("console = %q", got)
	}
}

func TestMultiHartsSeeDistinctIDs(t *testing.T) {
	cfg := DefaultConfig(1, 1, 4)
	p := buildQuiet(t, cfg)
	host := p.Host()
	// Each hart writes its ID into a distinct slot, then halts.
	prog := rvasm.MustAssemble(ResetPC, `
		csrr t0, mhartid
		slli t1, t0, 3
		la   t2, slots
		add  t2, t2, t1
		sd   t0, 0(t2)
		mv   a0, t0
		ebreak
		.align 3
	slots:	.space 64
	`)
	host.LoadProgram(0, prog)
	p.Start()
	p.Run()
	slots := prog.Entry("slots")
	for h := 0; h < 4; h++ {
		if got := p.Backing.ReadU64(slots + uint64(h*8)); got != uint64(h) {
			t.Errorf("slot %d = %d", h, got)
		}
	}
}

func TestCrossNodeSharedMemory(t *testing.T) {
	// 2 FPGAs, 1 node each, unified memory: hart 0 (node 0) writes a flag
	// in node 1's memory; hart on node 1 spins on it.
	cfg := DefaultConfig(2, 1, 1)
	p := buildQuiet(t, cfg)
	host := p.Host()

	flagAddr := p.Map.NodeDRAMBase(1) + 0x2000
	writer := rvasm.MustAssemble(ResetPC, `
		csrr t0, mhartid
		bnez t0, reader
		li   t1, 0xC0002000   # flag in node 1's DRAM region
		li   t2, 7
		li   t3, 4000
	delay:	addi t3, t3, -1        # let the reader start spinning
		bnez t3, delay
		sd   t2, 0(t1)
		li   a0, 1
		ebreak
	reader:	li   t1, 0xC0002000
	spin:	ld   t2, 0(t1)
		beqz t2, spin
		mv   a0, t2
		ebreak
	`)
	if p.Map.NodeDRAMBase(1) != 0xC000_0000 {
		t.Fatalf("node1 DRAM base = %#x; test constant stale", p.Map.NodeDRAMBase(1))
	}
	host.LoadProgram(0, writer)
	p.Start()
	p.RunUntil(3_000_000)
	if !p.AllHalted() {
		t.Fatal("harts did not halt; cross-node coherence broken")
	}
	if got := p.Backing.ReadU64(flagAddr); got != 7 {
		t.Fatalf("flag = %d", got)
	}
	reader := p.Nodes[1].Tiles[0].Core
	if reader.HaltCode() != 7 {
		t.Fatalf("reader saw %d, want 7", reader.HaltCode())
	}
	if p.Stats.Get("node0.bridge.tx_packets") == 0 {
		t.Error("no inter-node bridge traffic for cross-node access")
	}
}

func TestLatencyProbeIntraNode(t *testing.T) {
	cfg := DefaultConfig(1, 1, 12)
	cfg.Core = CoreNone
	p := buildQuiet(t, cfg)
	lat := p.MeasureLatency(cache.GID{Node: 0, Tile: 0}, cache.GID{Node: 0, Tile: 11}, 1)
	// Paper Fig. 7: intra-node round trip ~100 cycles.
	if lat < 60 || lat > 140 {
		t.Fatalf("intra-node latency = %d, want ~100", lat)
	}
}

func TestLatencyProbeInterNodeRatio(t *testing.T) {
	// The paper's numbers are for 12-tile nodes (Fig. 7's 4x1x12 system).
	cfg := DefaultConfig(2, 1, 12)
	cfg.Core = CoreNone
	p := buildQuiet(t, cfg)
	intra := p.MeasureLatency(cache.GID{Node: 0, Tile: 0}, cache.GID{Node: 0, Tile: 7}, 1)
	inter := p.MeasureLatency(cache.GID{Node: 0, Tile: 0}, cache.GID{Node: 1, Tile: 7}, 2)
	// Paper: inter-node ~2.5x intra-node (250 vs 100 cycles).
	ratio := float64(inter) / float64(intra)
	if ratio < 1.8 || ratio > 3.5 {
		t.Fatalf("inter/intra latency ratio = %.2f (inter=%d intra=%d), want ~2.5", ratio, inter, intra)
	}
	if inter < 200 || inter > 320 {
		t.Fatalf("inter-node latency = %d, want ~250", inter)
	}
}

func TestLatencyMatrixNUMAStructure(t *testing.T) {
	cfg := DefaultConfig(2, 1, 2)
	cfg.Core = CoreNone
	p := buildQuiet(t, cfg)
	m := p.LatencyMatrix()
	intra, inter := p.LatencySummary(m)
	if !(inter > intra*1.8) {
		t.Fatalf("NUMA structure missing: intra=%.0f inter=%.0f", intra, inter)
	}
	txt := FormatHeatmap(m)
	if !strings.Contains(txt, "\n") || len(strings.Split(txt, "\n")) < 5 {
		t.Error("heatmap rendering broken")
	}
}

func TestDeterministicBuildAndRun(t *testing.T) {
	run := func() sim.Time {
		cfg := DefaultConfig(2, 1, 2)
		cfg.Core = CoreNone
		p := buildQuiet(t, cfg)
		p.MeasureLatency(cache.GID{Node: 0, Tile: 0}, cache.GID{Node: 1, Tile: 1}, 1)
		return p.Eng.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("prototype runs diverge: %d vs %d", a, b)
	}
}

func TestWorkloadPortTiming(t *testing.T) {
	cfg := DefaultConfig(1, 1, 2)
	cfg.Core = CoreNone
	p := buildQuiet(t, cfg)
	port := p.PortAt(cache.GID{Node: 0, Tile: 0})
	addr := p.Map.NodeDRAMBase(0) + 0x4000

	var first, second sim.Time
	sim.Go(p.Eng, "wl", func(proc *sim.Process) {
		s := proc.Now()
		port.Load(proc, addr, 8)
		first = proc.Now() - s
		s = proc.Now()
		port.Load(proc, addr, 8)
		second = proc.Now() - s
	})
	p.Run()
	if second >= first {
		t.Fatalf("L1 hit (%d) not faster than cold miss (%d)", second, first)
	}
	if first < 80 {
		t.Fatalf("cold miss = %d cycles, expected to include ~80-cycle DRAM", first)
	}
	if second != 1 {
		t.Fatalf("L1 hit = %d cycles, want 1", second)
	}
}

func TestWorkloadPortDataFlow(t *testing.T) {
	cfg := DefaultConfig(1, 1, 2)
	cfg.Core = CoreNone
	p := buildQuiet(t, cfg)
	a := p.PortAt(cache.GID{Node: 0, Tile: 0})
	b := p.PortAt(cache.GID{Node: 0, Tile: 1})
	addr := p.Map.NodeDRAMBase(0) + 0x8000

	var got uint64
	sim.Go(p.Eng, "wl", func(proc *sim.Process) {
		a.Store(proc, addr, 8, 0xC0FFEE)
		got = b.Load(proc, addr, 8)
	})
	p.Run()
	if got != 0xC0FFEE {
		t.Fatalf("cross-tile read = %#x", got)
	}
}

func TestAmoAtomicityUnderContention(t *testing.T) {
	cfg := DefaultConfig(1, 1, 4)
	cfg.Core = CoreNone
	p := buildQuiet(t, cfg)
	addr := p.Map.NodeDRAMBase(0) + 0xC000
	const perThread = 50
	for i := 0; i < 4; i++ {
		port := p.PortAt(cache.GID{Node: 0, Tile: i})
		sim.Go(p.Eng, "incr", func(proc *sim.Process) {
			for k := 0; k < perThread; k++ {
				port.Amo(proc, addr, 8, func(o uint64) uint64 { return o + 1 })
			}
		})
	}
	p.Run()
	if got := p.Backing.ReadU64(addr); got != 4*perThread {
		t.Fatalf("counter = %d, want %d", got, 4*perThread)
	}
}

func TestIndependentNodesDoNotShareMemory(t *testing.T) {
	cfg := DefaultConfig(1, 4, 2)
	cfg.UnifiedMemory = false
	cfg.Core = CoreNone
	p := buildQuiet(t, cfg)
	// Each node homes every address locally: no bridge traffic even for
	// "remote" region addresses.
	port := p.PortAt(cache.GID{Node: 0, Tile: 0})
	sim.Go(p.Eng, "wl", func(proc *sim.Process) {
		port.Load(proc, p.Map.NodeDRAMBase(0)+0x100, 8)
	})
	p.Run()
	if p.Stats.Get("node0.bridge.tx_packets") != 0 {
		t.Error("independent-node config generated bridge traffic")
	}
}

func TestCLINTTimerInterruptWakesCore(t *testing.T) {
	cfg := DefaultConfig(1, 1, 1)
	p := buildQuiet(t, cfg)
	host := p.Host()
	// Program: set mtimecmp via CLINT, enable MTIE, wfi, expect trap.
	prog := rvasm.MustAssemble(ResetPC, `
		la   t0, handler
		csrw mtvec, t0
		li   t0, 0xF002004000  # CLINT mtimecmp hart0
		li   t1, 3000
		sd   t1, 0(t0)
		li   t0, 128           # MTIE
		csrw mie, t0
		li   t0, 8
		csrs mstatus, t0
	spin:	j spin
	handler:
		li a0, 42
		ebreak
	`)
	host.LoadProgram(0, prog)
	p.Start()
	p.RunUntil(1_000_000)
	c := p.Nodes[0].Tiles[0].Core
	if !c.Halted() || c.HaltCode() != 42 {
		t.Fatalf("timer interrupt not delivered: %s", c)
	}
	if p.Eng.Now() < 3000 {
		t.Fatal("halted before mtimecmp")
	}
}

func TestSoftwareInterruptAcrossNodes(t *testing.T) {
	// Hart 0 on node 0 sends an IPI to hart 1 on node 1 through its local
	// CLINT window; the interrupt packetizer crosses the bridge.
	cfg := DefaultConfig(2, 1, 1)
	p := buildQuiet(t, cfg)
	host := p.Host()
	prog := rvasm.MustAssemble(ResetPC, `
		csrr t0, mhartid
		bnez t0, receiver
		li   t0, 0xF002000004  # CLINT msip hart1 (node 0 window)
		li   t1, 1
		li   t2, 3000
	delay:	addi t2, t2, -1
		bnez t2, delay
		sw   t1, 0(t0)
		li   a0, 1
		ebreak
	receiver:
		la   t0, handler
		csrw mtvec, t0
		li   t0, 8             # MSIE
		csrw mie, t0
		li   t0, 8
		csrs mstatus, t0
	spin:	j spin
	handler:
		li   a0, 99
		ebreak
	`)
	host.LoadProgram(0, prog)
	p.Start()
	p.RunUntil(5_000_000)
	rcv := p.Nodes[1].Tiles[0].Core
	if !rcv.Halted() || rcv.HaltCode() != 99 {
		t.Fatalf("cross-node IPI not delivered: %s", rcv)
	}
}

func TestVirtualSDBootFlow(t *testing.T) {
	cfg := DefaultConfig(1, 1, 1)
	p := buildQuiet(t, cfg)
	host := p.Host()
	// Host loads a "filesystem" onto the virtual SD; the core DMAs sector
	// 3 into main memory and reads a magic number from it.
	img := make([]byte, 4*512)
	for i := range img {
		img[i] = byte(i / 512)
	}
	img[3*512] = 0x5A
	host.LoadSDImage(0, 0, img)
	prog := rvasm.MustAssemble(ResetPC, `
		li t0, 0xF000003000    # SD controller
		li t1, 3
		sd t1, 0(t0)           # sector
		li t1, 0x80100000
		sd t1, 8(t0)           # target
		li t1, 1
		sd t1, 16(t0)          # count
		sd t1, 24(t0)          # cmd = read
	poll:	ld t2, 32(t0)
		bnez t2, poll
		li t3, 0x80100000
		lbu a0, 0(t3)
		ebreak
	`)
	host.LoadProgram(0, prog)
	p.Start()
	p.RunUntil(1_000_000)
	c := p.Nodes[0].Tiles[0].Core
	if !c.Halted() || c.HaltCode() != 0x5A {
		t.Fatalf("SD boot flow failed: %s", c)
	}
}

func TestPicoRV32CoreSlowerThanAriane(t *testing.T) {
	run := func(ct CoreType) sim.Time {
		cfg := DefaultConfig(1, 1, 1)
		cfg.Core = ct
		p := buildQuiet(t, cfg)
		host := p.Host()
		host.LoadProgram(0, rvasm.MustAssemble(ResetPC, `
			li t0, 500
		loop:	addi t0, t0, -1
			bnez t0, loop
			li a0, 0
			ebreak
		`))
		p.Start()
		return p.RunUntilHalted(10_000_000)
	}
	ariane := run(CoreAriane)
	pico := run(CorePicoRV32)
	// Both cores pay the same fetch path; the CPI difference shows on top.
	if float64(pico) < float64(ariane)*1.4 {
		t.Fatalf("PicoRV32 (%d) should be clearly slower than Ariane (%d)", pico, ariane)
	}
	c := DefaultConfig(1, 1, 1)
	c.Core = CoreType("z80")
	if err := c.Validate(); err == nil {
		t.Error("bogus core type accepted")
	}
}

func TestGlobalInterleaveHomingSpreadsHomes(t *testing.T) {
	cfg := DefaultConfig(2, 1, 2)
	cfg.Core = CoreNone
	cfg.GlobalInterleaveHoming = true
	p := buildQuiet(t, cfg)
	// With global interleaving, consecutive lines in node 0's DRAM home
	// alternately on node 0 and node 1.
	port := p.PortAt(cache.GID{Node: 0, Tile: 0})
	sim.Go(p.Eng, "wl", func(proc *sim.Process) {
		for i := uint64(0); i < 8; i++ {
			port.Load(proc, p.Map.NodeDRAMBase(0)+0x10000+i*64, 8)
		}
	})
	p.Run()
	if p.Stats.Get("node0.bridge.tx_packets") == 0 {
		t.Fatal("global-interleave homing produced no inter-node traffic for local addresses")
	}
}

func TestTracerRecordsCoherenceAndMMIO(t *testing.T) {
	cfg := DefaultConfig(1, 1, 2)
	cfg.Core = CoreNone
	p := buildQuiet(t, cfg)
	tr := p.EnableTrace(256)
	port := p.PortAt(cache.GID{Node: 0, Tile: 0})
	sim.Go(p.Eng, "wl", func(proc *sim.Process) {
		port.Load(proc, p.Map.NodeDRAMBase(0)+0x7000, 8)
		port.MMIOLoad(proc, DevBase+DevCLINT+0xBFF8, 8) // CLINT mtime
	})
	p.Run()
	var sawCoherence, sawMMIO bool
	for _, ev := range tr.Events() {
		switch ev.Category {
		case "coherence":
			sawCoherence = true
		case "mmio":
			sawMMIO = true
		}
	}
	if !sawCoherence {
		t.Error("no coherence events traced")
	}
	if !sawMMIO {
		t.Error("no MMIO events traced")
	}
	if tr.String() == "" {
		t.Error("trace rendering empty")
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *sim.Tracer
	tr.Emit("x", "should not panic")
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer misbehaves")
	}
}

func TestMixedTopologySameFPGAFasterThanCross(t *testing.T) {
	// 2 FPGAs x 2 nodes: nodes 0,1 share FPGA 0 (AXI crossbar path);
	// node 2 sits on FPGA 1 (PCIe path). Inter-node latency must be
	// much lower inside the FPGA than across the PCIe fabric.
	cfg := DefaultConfig(2, 2, 2)
	cfg.Core = CoreNone
	p := buildQuiet(t, cfg)
	sameFPGA := p.MeasureLatency(cache.GID{Node: 0, Tile: 0}, cache.GID{Node: 1, Tile: 0}, 1)
	crossFPGA := p.MeasureLatency(cache.GID{Node: 0, Tile: 0}, cache.GID{Node: 2, Tile: 0}, 2)
	if sameFPGA >= crossFPGA {
		t.Fatalf("same-FPGA inter-node (%d) should beat cross-FPGA (%d)", sameFPGA, crossFPGA)
	}
	if crossFPGA-sameFPGA < 80 {
		t.Fatalf("PCIe crossing adds only %d cycles; expected ~125 RTT difference", crossFPGA-sameFPGA)
	}
}

func TestMixedTopologyCoherentAcrossBothPaths(t *testing.T) {
	cfg := DefaultConfig(2, 2, 1)
	cfg.Core = CoreNone
	p := buildQuiet(t, cfg)
	// One writer per node increments a counter homed on node 3 (far FPGA),
	// exercising crossbar and PCIe transport in one protocol.
	addr := p.Map.NodeDRAMBase(3) + 0x9000
	const each = 25
	for n := 0; n < 4; n++ {
		port := p.PortAt(cache.GID{Node: n, Tile: 0})
		sim.Go(p.Eng, "incr", func(proc *sim.Process) {
			for i := 0; i < each; i++ {
				port.Amo(proc, addr, 8, func(o uint64) uint64 { return o + 1 })
			}
		})
	}
	p.Run()
	if got := p.Backing.ReadU64(addr); got != 4*each {
		t.Fatalf("counter = %d, want %d (coherence broken across mixed topology)", got, 4*each)
	}
}

// runTelemetryWorkload builds a 2x1x4 CoreNone prototype with tracing and
// sampling enabled and drives cross-node traffic through it.
func runTelemetryWorkload(t *testing.T) *Prototype {
	t.Helper()
	cfg := DefaultConfig(2, 1, 4)
	cfg.Core = CoreNone
	p := buildQuiet(t, cfg)
	p.EnableTrace(1 << 16)
	p.EnableSampler(100)
	a := p.PortAt(cache.GID{Node: 0, Tile: 0})
	b := p.PortAt(cache.GID{Node: 1, Tile: 0})
	remote := p.Map.NodeDRAMBase(1) + 0x2000
	sim.Go(p.Eng, "wl0", func(proc *sim.Process) {
		for i := uint64(0); i < 32; i++ {
			a.Store(proc, remote+i*64, 8, i)
			a.Load(proc, p.Map.NodeDRAMBase(0)+i*64, 8)
		}
	})
	sim.Go(p.Eng, "wl1", func(proc *sim.Process) {
		for i := uint64(0); i < 32; i++ {
			b.Load(proc, p.Map.NodeDRAMBase(1)+0x8000+i*64, 8)
		}
	})
	p.Run()
	return p
}

func TestMetricsJSONEndToEnd(t *testing.T) {
	p := runTelemetryWorkload(t)
	out, err := p.MetricsJSON()
	if err != nil {
		t.Fatalf("MetricsJSON: %v", err)
	}
	var doc struct {
		Meta struct {
			FPGAs  int    `json:"fpgas"`
			Cycles uint64 `json:"cycles"`
			Seed   uint64 `json:"seed"`
		} `json:"meta"`
		Stats struct {
			Counters   map[string]uint64 `json:"counters"`
			Gauges     map[string]any    `json:"gauges"`
			Histograms map[string]struct {
				Samples uint64 `json:"samples"`
				P50     uint64 `json:"p50"`
				P95     uint64 `json:"p95"`
				P99     uint64 `json:"p99"`
			} `json:"histograms"`
		} `json:"stats"`
		Samples struct {
			Rows [][]uint64 `json:"rows"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("invalid metrics JSON: %v", err)
	}
	if doc.Meta.FPGAs != 2 || doc.Meta.Cycles == 0 {
		t.Fatalf("bad meta: %+v", doc.Meta)
	}
	// Per-node merged cache histograms with percentiles.
	for _, node := range []string{"node0", "node1"} {
		h, ok := doc.Stats.Histograms[node+".bpc.miss_latency"]
		if !ok || h.Samples == 0 {
			t.Fatalf("missing merged histogram for %s (have %d histograms)", node, len(doc.Stats.Histograms))
		}
		if h.P50 == 0 || h.P95 < h.P50 || h.P99 < h.P95 {
			t.Fatalf("%s percentiles not ordered: %+v", node, h)
		}
	}
	// Per-link NoC counters were flushed.
	found := false
	for name := range doc.Stats.Counters {
		if strings.Contains(name, ".link") && strings.HasSuffix(name, ".flits") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no per-link flit counters in metrics JSON")
	}
	if len(doc.Samples.Rows) == 0 {
		t.Fatal("sampler recorded no rows")
	}
}

func TestMetricsAndTraceDeterministic(t *testing.T) {
	render := func() ([]byte, []byte) {
		p := runTelemetryWorkload(t)
		m, err := p.MetricsJSON()
		if err != nil {
			t.Fatalf("MetricsJSON: %v", err)
		}
		var buf bytes.Buffer
		if err := p.WriteTrace(&buf); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		return m, buf.Bytes()
	}
	m1, t1 := render()
	m2, t2 := render()
	if !bytes.Equal(m1, m2) {
		t.Fatal("same-seed metrics JSON differs between runs")
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("same-seed trace differs between runs")
	}
	// Report (which also flushes telemetry) must be idempotent: a second
	// flush must not double-count the merged histograms or link counters.
	p := runTelemetryWorkload(t)
	r1 := p.Report()
	r2 := p.Report()
	if r1 != r2 {
		t.Fatal("Report is not idempotent")
	}
}

func TestPrototypeTraceHasPerNodeTracks(t *testing.T) {
	p := runTelemetryWorkload(t)
	var buf bytes.Buffer
	if err := p.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	procs := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "process_name" {
			procs[ev.Args["name"].(string)] = true
		}
	}
	if !procs["node0"] || !procs["node1"] {
		t.Fatalf("want node0 and node1 process tracks, got %v", procs)
	}
}
