package core

import (
	"fmt"
	"strings"

	"smappic/internal/cache"
	"smappic/internal/sim"
)

// probeSeq makes each measurement use a fresh cache line so measurements
// never interfere.
var _ = fmt.Sprintf

// probeLine picks a line homed at exactly (node, tile): it lives in the
// node's DRAM region (home node = region owner) and its line index is
// congruent to the tile (home slice = line interleave).
func (p *Prototype) probeLine(g cache.GID, seq int) uint64 {
	base := p.Map.NodeDRAMBase(g.Node) + 0x0100_0000 // probe scratch area
	c := uint64(p.Cfg.TilesPerNode)
	k := (uint64(g.Tile) + c - (base>>6)%c) % c
	return base + (k+uint64(seq)*c)*cache.LineBytes
}

// MeasureLatency returns the inter-core communication latency from sender i
// to receiver j, measured as the paper's Fig. 7 does: a cache line owned by
// core j (dirty in its private cache, homed on j's node) is loaded by core
// i. The load's round trip covers request to the home slice, downgrade
// probe to j, and the data grant back to i — crossing the inter-node
// interconnect twice when i and j sit on different nodes.
func (p *Prototype) MeasureLatency(i, j cache.GID, seq int) sim.Time {
	p.mustSerial("MeasureLatency")
	line := p.probeLine(j, seq)
	sender := p.PortAt(i)
	receiver := p.PortAt(j)

	var lat sim.Time
	pr := sim.Go(p.Eng, "probe", func(proc *sim.Process) {
		// Warm: j takes the line in M.
		receiver.Store(proc, line, 8, 0xAB)
		proc.Wait(8)
		start := proc.Now()
		sender.Load(proc, line, 8)
		lat = proc.Now() - start
	})
	p.Eng.Run()
	_ = pr
	// The paper measures with a software ping-pong (flag polling loop on
	// both cores); its per-iteration instruction overhead adds a fixed
	// cost on top of the hardware transaction.
	return lat + pingPongSWOverhead
}

// pingPongSWOverhead is the software side of the paper's measurement loop.
const pingPongSWOverhead sim.Time = 55

// LatencyMatrix measures all hart pairs and returns the full heatmap of
// Fig. 7, in cycles. matrix[i][j] is the latency of core i reading a line
// owned by core j.
func (p *Prototype) LatencyMatrix() [][]sim.Time {
	n := p.Cfg.TotalTiles()
	out := make([][]sim.Time, n)
	seq := 0
	for i := 0; i < n; i++ {
		out[i] = make([]sim.Time, n)
		for j := 0; j < n; j++ {
			seq++
			out[i][j] = p.MeasureLatency(p.hartLoc(i), p.hartLoc(j), seq)
		}
	}
	return out
}

// LatencySummary aggregates a latency matrix into the intra-node and
// inter-node means the paper quotes (~100 vs ~250 cycles).
func (p *Prototype) LatencySummary(m [][]sim.Time) (intra, inter float64) {
	var intraSum, interSum, intraN, interN uint64
	c := p.Cfg.TilesPerNode
	for i := range m {
		for j := range m[i] {
			if i == j {
				continue
			}
			if i/c == j/c {
				intraSum += uint64(m[i][j])
				intraN++
			} else {
				interSum += uint64(m[i][j])
				interN++
			}
		}
	}
	if intraN > 0 {
		intra = float64(intraSum) / float64(intraN)
	}
	if interN > 0 {
		inter = float64(interSum) / float64(interN)
	}
	return intra, inter
}

// FormatHeatmap renders a latency matrix as aligned text (the repository's
// stand-in for the paper's color plot).
func FormatHeatmap(m [][]sim.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s", "")
	for j := range m {
		fmt.Fprintf(&b, "%5d", j)
	}
	b.WriteByte('\n')
	for i := range m {
		fmt.Fprintf(&b, "%4d", i)
		for j := range m[i] {
			fmt.Fprintf(&b, "%5d", m[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
