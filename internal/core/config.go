// Package core assembles the SMAPPIC platform: it instantiates BYOC-style
// nodes (tiles with private caches, LLC slices, mesh NoC), connects them
// with the inter-node bridge over an AXI crossbar (same FPGA) or the PCIe
// fabric (across FPGAs), attaches the NoC-AXI4 memory controllers, interrupt
// machinery and virtual devices, and exposes the measurement API the
// evaluation uses.
//
// Prototypes are described in the paper's AxBxC notation: A FPGAs, B nodes
// per FPGA, C tiles per node.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"smappic/internal/bridge"
	"smappic/internal/cache"
	"smappic/internal/fault"
	"smappic/internal/pcie"
	"smappic/internal/sim"
)

// CoreType selects what occupies a tile's compute slot.
type CoreType string

const (
	// CoreAriane is the RV64 application core (functional + timing).
	CoreAriane CoreType = "ariane"
	// CorePicoRV32 is the small multi-cycle core BYOC also integrates:
	// same ISA-level behavior, ~4x the CPI.
	CorePicoRV32 CoreType = "picorv32"
	// CoreNone leaves the compute slot empty; the tile still has its
	// private cache and LLC slice and can host execution-driven workload
	// threads (the fast path for large studies).
	CoreNone CoreType = "none"
)

// Config describes a prototype.
type Config struct {
	FPGAs        int // A
	NodesPerFPGA int // B
	TilesPerNode int // C

	Core  CoreType
	Cache cache.Params

	// UnifiedMemory connects the nodes with the coherent inter-node
	// interconnect. When false, nodes are independent prototypes sharing
	// FPGAs (the cost-efficient 1x4x2-style configuration).
	UnifiedMemory bool

	// GlobalInterleaveHoming selects the alternative homing policy that
	// interleaves cache-line homes across every node in the system instead
	// of homing lines on the node that owns their DRAM region. It exists
	// for the ablation study: it destroys the locality that makes
	// first-touch NUMA allocation effective.
	GlobalInterleaveHoming bool

	// DRAMLatency is the paper's Table 2 value (cycles).
	DRAMLatency sim.Time
	// DRAMBytesPerCycle throttles each DDR4 channel.
	DRAMBytesPerCycle int

	Bridge bridge.Params
	PCIe   pcie.Params

	// ClockMHz is the prototype clock (for converting cycles to seconds).
	ClockMHz int

	Seed uint64

	// Faults, when non-nil, is a parsed fault-injection plan (see the fault
	// package's grammar). Build wires its sites into the PCIe fabric, the
	// bridges and the DRAM channels. Nil disables injection at zero cost.
	Faults *fault.Plan

	// WatchdogInterval, when nonzero, arms the forward-progress watchdog:
	// if no event executes for this many cycles while transactions are in
	// flight, the run records a stall diagnosis instead of draining silently.
	// Serial builds use the event-based sim.Watchdog; sharded builds use a
	// barrier-hook GroupWatchdog that checks per-shard progress at window
	// barriers without scheduling events (so arming it keeps the sharded
	// event stream byte-identical to an unwatched sharded run, and the
	// diagnosis names the wedged shard).
	WatchdogInterval sim.Time

	// Parallel > 1 shards the simulation: one engine per shard running on
	// its own goroutine under a bounded-lag synchronizer whose outer
	// lookahead is the minimum PCIe crossing (see internal/sim/parallel.go).
	// ShardGranularity picks the shard size — one per FPGA (default) or one
	// per node, the latter nesting the co-located engines in an inner
	// window level at the intra-FPGA interconnect crossing — so the value
	// only selects the mode. Sharded runs produce byte-identical
	// MetricsJSON to serial ones at either granularity; the
	// live-introspection extras (tracer, sampler, latency probe) are
	// serial-only, and the watchdog switches to its barrier-hook sharded
	// form. 0 or 1 (the default) runs serial.
	Parallel int

	// ShardGranularity selects how finely a Parallel > 1 build shards:
	// "fpga" (or "", the default) runs one engine per FPGA; "node" runs one
	// engine per node, letting a 48-core numa48 shape occupy 48 host cores
	// under the hierarchical window synchronizer. Execution policy like
	// Parallel itself: results are byte-identical across granularities, so
	// the value is excluded from the configuration identity — but replay
	// snapshots of sharded runs record it, since the window-digest cursor
	// they carry is granularity-specific. Ignored when serial.
	ShardGranularity string

	// AdaptiveLookahead caps the sharded synchronizer's adaptive window
	// widening, in multiples of the minimum PCIe crossing: windows double
	// geometrically up to this cap while no cross-shard envelope appears and
	// collapse back to one crossing the window traffic returns (see
	// internal/sim/parallel.go). 0 (the default) uses sim.DefaultAdaptiveCap;
	// 1 pins windows to the fixed minimum crossing; negative is invalid.
	// When a watchdog is armed, Build additionally clamps the cap so the
	// widest window never exceeds the watchdog interval — otherwise a quiet
	// wide window would legitimately delay the barrier past the stall
	// deadline. The effective cap is execution scheduling, not model
	// behavior: it never changes simulation results, but it is part of the
	// window-sequence identity replay checkpoints record, so a snapshot of a
	// sharded run only restores under the same effective cap. Ignored when
	// serial.
	AdaptiveLookahead int

	// ShardAffinity, with Parallel > 1, pins each shard's worker to an OS
	// thread for the duration of a window (runtime.LockOSThread) so shard
	// heaps and event pools stay cache-hot instead of migrating across
	// threads. Pure execution policy with no effect on results or on the
	// window sequence; snapshots restore across either setting.
	ShardAffinity bool

	// SyncMetrics, with Parallel > 1, records the window synchronizer's
	// behavior (windows executed, envelopes merged, horizon and per-shard
	// lag) as fpga<N>.sync.* instruments in the per-shard registries, so
	// MetricsJSON captures it alongside the dashboard. Opt-in because the
	// extra instruments necessarily make a sharded report differ from the
	// serial reference document (a serial engine has no windows); leave it
	// off when byte-comparing the two, as the differential harness does.
	// Ignored when serial.
	SyncMetrics bool
}

// DefaultConfig returns the paper's Table 2 system for the given shape.
func DefaultConfig(fpgas, nodesPerFPGA, tilesPerNode int) Config {
	return Config{
		FPGAs:             fpgas,
		NodesPerFPGA:      nodesPerFPGA,
		TilesPerNode:      tilesPerNode,
		Core:              CoreAriane,
		Cache:             cache.DefaultParams(),
		UnifiedMemory:     true,
		DRAMLatency:       76, // + controller path = Table 2's 80 cycles
		DRAMBytesPerCycle: 64,
		Bridge:            bridge.DefaultParams(),
		PCIe:              pcie.DefaultParams(),
		ClockMHz:          100,
		Seed:              1,
	}
}

// ParseShape parses the paper's AxBxC notation ("4x1x12").
func ParseShape(s string) (fpgas, nodes, tiles int, err error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(s)), "x")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("core: shape %q is not AxBxC", s)
	}
	var v [3]int
	for i, p := range parts {
		v[i], err = strconv.Atoi(p)
		if err != nil || v[i] <= 0 {
			return 0, 0, 0, fmt.Errorf("core: bad component %q in shape %q", p, s)
		}
	}
	return v[0], v[1], v[2], nil
}

// Shape renders the configuration in AxBxC notation.
func (c Config) Shape() string {
	return fmt.Sprintf("%dx%dx%d", c.FPGAs, c.NodesPerFPGA, c.TilesPerNode)
}

// TotalNodes returns A*B.
func (c Config) TotalNodes() int { return c.FPGAs * c.NodesPerFPGA }

// TotalTiles returns A*B*C.
func (c Config) TotalTiles() int { return c.TotalNodes() * c.TilesPerNode }

// MeshDims returns the node mesh shape for C tiles: the squarest W>=H
// factorization, matching OpenPiton's default floorplans (12 tiles -> 4x3).
func (c Config) MeshDims() (w, h int) {
	n := c.TilesPerNode
	h = 1
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			h = f
		}
	}
	return n / h, h
}

// Validate checks the configuration against the F1 physical constraints of
// paper §4.8 (gate count is checked separately by the fpga package).
func (c Config) Validate() error {
	if c.FPGAs <= 0 || c.NodesPerFPGA <= 0 || c.TilesPerNode <= 0 {
		return fmt.Errorf("core: all shape components must be positive (%s)", c.Shape())
	}
	if c.FPGAs > pcie.MaxFPGAs {
		return fmt.Errorf("core: %d FPGAs requested; only %d share low-latency PCIe links in an F1 instance", c.FPGAs, pcie.MaxFPGAs)
	}
	if c.NodesPerFPGA > 4 {
		return fmt.Errorf("core: %d nodes per FPGA; F1 has only 4 DRAM channels, one per node", c.NodesPerFPGA)
	}
	if c.TilesPerNode > 12 {
		return fmt.Errorf("core: %d tiles per node exceed the 12 that fit a VU9P", c.TilesPerNode)
	}
	if c.Core != CoreAriane && c.Core != CorePicoRV32 && c.Core != CoreNone {
		return fmt.Errorf("core: unknown core type %q", c.Core)
	}
	if c.AdaptiveLookahead < 0 {
		return fmt.Errorf("core: AdaptiveLookahead %d; want 0 (default), 1 (fixed windows) or a positive cap", c.AdaptiveLookahead)
	}
	if g := c.ShardGranularity; g != "" && g != "fpga" && g != "node" {
		return fmt.Errorf("core: unknown shard granularity %q; want fpga or node", g)
	}
	return nil
}

// Granularity resolves the effective shard granularity ("fpga" or "node"),
// mapping the empty default to "fpga".
func (c Config) Granularity() string {
	if c.ShardGranularity == "" {
		return "fpga"
	}
	return c.ShardGranularity
}

// AdaptiveCap resolves the effective adaptive-lookahead cap for a sharded
// build: the configured cap (default sim.DefaultAdaptiveCap), clamped so a
// full-width window cannot outlast an armed watchdog's interval. Derived
// only from the configuration, so every run and replay of it agrees.
func (c Config) AdaptiveCap() int {
	cap := c.AdaptiveLookahead
	if cap == 0 {
		cap = sim.DefaultAdaptiveCap
	}
	if c.WatchdogInterval > 0 {
		if byWD := int(c.WatchdogInterval / c.PCIe.MinCrossing()); byWD < cap {
			cap = byWD
		}
		if cap < 1 {
			cap = 1
		}
	}
	return cap
}
