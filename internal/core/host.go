package core

import (
	"fmt"

	"smappic/internal/dev"
	"smappic/internal/rvasm"
)

// Host models the F1 instance's host CPU side: the PCIe driver, the virtual
// serial devices, program loading and SD card initialization. Host actions
// that happen before boot (image loading) are functional-only, matching the
// paper's flow where setup time is not part of the measured run.
type Host struct {
	pr      *Prototype
	serial0 []*dev.VirtualSerial
	serial1 []*dev.VirtualSerial
}

// Host returns the prototype's host-side tooling.
func (p *Prototype) Host() *Host {
	h := &Host{pr: p}
	for _, n := range p.Nodes {
		h.serial0 = append(h.serial0, dev.NewVirtualSerial(n.UART0))
		h.serial1 = append(h.serial1, dev.NewVirtualSerial(n.UART1))
	}
	return h
}

// LoadProgram writes an assembled program into a node's main memory through
// the PCIe DMA path (done before releasing the cores from reset).
func (h *Host) LoadProgram(node int, prog *rvasm.Program) {
	if prog.Base < DRAMBase {
		panic(fmt.Sprintf("core: program base %#x below DRAM", prog.Base))
	}
	h.pr.Backing.WriteBytes(prog.Base, prog.Bytes)
}

// LoadSDImage initializes a node's virtual SD card, as the specialized
// host-side Linux driver does (paper §3.4.2).
func (h *Host) LoadSDImage(node int, offset uint64, image []byte) {
	h.pr.Nodes[node].SD.LoadImage(offset, image)
}

// Console returns everything node's console UART printed so far.
func (h *Host) Console(node int) string { return h.serial0[node].Console() }

// DataConsole returns the overclocked data UART's output.
func (h *Host) DataConsole(node int) string { return h.serial1[node].Console() }

// SendConsole types into a node's console.
func (h *Host) SendConsole(node int, s string) { h.serial0[node].Send(s) }
