package core

import (
	"fmt"

	"smappic/internal/axi"
	"smappic/internal/bridge"
	"smappic/internal/cache"
	"smappic/internal/dev"
	"smappic/internal/fault"
	"smappic/internal/interrupt"
	"smappic/internal/mem"
	"smappic/internal/noc"
	"smappic/internal/pcie"
	"smappic/internal/riscv"
	"smappic/internal/shell"
	"smappic/internal/sim"
)

// Device is a memory-mapped peripheral reachable through uncacheable
// accesses. All virtual devices and accelerators implement it.
type Device interface {
	Name() string
	Read(off uint64, size int) uint64
	Write(off uint64, size int, v uint64)
}

// strided rescales MMIO byte offsets to a device's register indices.
type strided struct {
	d     Device
	shift uint
}

func (s strided) Name() string { return s.d.Name() }
func (s strided) Read(off uint64, size int) uint64 {
	return s.d.Read(off>>s.shift, size)
}
func (s strided) Write(off uint64, size int, v uint64) {
	s.d.Write(off>>s.shift, size, v)
}

// devRegion is one entry of a node's MMIO decode table.
type devRegion struct {
	base    uint64
	size    uint64
	dev     Device
	latency sim.Time
}

// Tile is one tile of a node: private cache stack, LLC slice, and
// optionally a core or an accelerator device.
type Tile struct {
	ID     cache.GID
	Priv   *cache.Private
	LLC    *cache.Slice
	Core   *riscv.Core
	Depack *interrupt.Depacketizer
	Accel  Device // per-tile MMIO device (GNG, MAPLE, ...)

	node *Node
	proc *sim.Process
}

// Node is one chip/die of the target system: a BYOC instance.
type Node struct {
	ID    int
	FPGA  int
	Mesh  *noc.Mesh
	Tiles []*Tile

	Bridge *bridge.Bridge
	MemCtl *mem.Controller
	DRAM   *mem.DRAM

	CLINT *interrupt.CLINT
	PLIC  *interrupt.PLIC
	UART0 *dev.UART // console, 115200 baud
	UART1 *dev.UART // data, ~1 Mbit/s ("overclocked", paper §3.4.1)
	SD    *dev.SDCard
	Pack  *interrupt.Packetizer

	proto   *Prototype
	eng     *sim.Engine // the node's shard engine (the global one when serial)
	stats   *sim.Stats  // the shard's registry (the global one when serial)
	name    string
	devices []devRegion
}

// Name returns the node's hierarchical stats/trace prefix ("node3").
func (n *Node) Name() string { return n.name }

// Prototype is a built SMAPPIC system.
type Prototype struct {
	Cfg Config
	// Eng is the single simulation engine of a serial build; nil under
	// sharded execution (Cfg.Parallel > 1), where each FPGA owns an engine
	// and Group coordinates them. Use Now/Run/RunUntilHalted, which dispatch
	// on the mode, instead of touching Eng directly.
	Eng *sim.Engine
	// Group is the bounded-lag shard synchronizer of a sharded build; nil
	// when serial.
	Group *sim.Group
	// Stats is the registry reports read. Serial builds write it directly;
	// sharded builds keep one registry per shard and fold them into Stats at
	// report time.
	Stats   *sim.Stats
	Backing *mem.Backing
	Map     *AddrMap
	Fabric  *pcie.Fabric
	Shells  []*shell.Shell
	Nodes   []*Node
	RNG     *sim.RNG

	engs       []*sim.Engine // per shard; the one global engine when serial
	shardStats []*sim.Stats  // per shard; all Stats when serial
	nodeShard  []int         // node id -> shard index (all 0 when serial)
	icPorts    []*icPort     // node id -> its bridge's interconnect port
	net        sim.CrossNet  // cross-shard delivery (SerialNet when serial)
	// Tracer, when installed with EnableTrace, records protocol and MMIO
	// events (nil-safe: tracing is free when disabled).
	Tracer *sim.Tracer
	// Sampler, when installed with EnableSampler, snapshots selected
	// counters at a fixed cycle interval.
	Sampler *sim.Sampler
	// Injector resolves fault sites against Cfg.Faults; nil when no plan is
	// configured (injection disabled, zero cost).
	Injector *fault.Injector
	// Watchdog is the forward-progress monitor armed by EnableWatchdog (or
	// by Build when Cfg.WatchdogInterval is set).
	Watchdog *sim.Watchdog
	// GroupWatchdog is the sharded-run forward-progress monitor installed by
	// Build when Cfg.WatchdogInterval is set on a parallel build. It piggy-
	// backs on window barriers instead of scheduling events, so arming it
	// does not perturb the simulated event stream.
	GroupWatchdog *GroupWatchdog
	// StallDiagnosis is filled when the watchdog detects a wedged run: no
	// event executed for a full interval while transactions were in flight.
	StallDiagnosis string
	// WorkloadTag names the software loaded into the prototype (set by the
	// workload layer); snapshots record it so restore can refuse to replay a
	// cursor against a different program.
	WorkloadTag string
}

// EnableTrace installs an event tracer retaining the last capacity events
// and propagates it to subsystems that emit their own tracks (bridges).
// Serial-only: the trace ring is a single time-ordered buffer.
func (p *Prototype) EnableTrace(capacity int) *sim.Tracer {
	p.mustSerial("EnableTrace")
	p.Tracer = sim.NewTracer(p.Eng, capacity)
	for _, n := range p.Nodes {
		n.Bridge.SetTracer(p.Tracer)
	}
	return p.Tracer
}

// Build constructs a prototype from the configuration. It corresponds to
// the FPGA image generation step: after Build the system is "programmed"
// and ready to load software.
func Build(cfg Config) (*Prototype, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	parallel := cfg.Parallel > 1
	perNode := parallel && cfg.Granularity() == "node"
	shards := 1
	if parallel {
		shards = cfg.FPGAs
		if perNode {
			shards = cfg.TotalNodes()
		}
	}
	p := &Prototype{
		Cfg:        cfg,
		Backing:    mem.NewBacking(),
		Map:        NewAddrMap(cfg.TotalNodes(), cfg.TilesPerNode, cfg.UnifiedMemory),
		RNG:        sim.NewRNG(cfg.Seed),
		engs:       make([]*sim.Engine, shards),
		shardStats: make([]*sim.Stats, shards),
		nodeShard:  make([]int, cfg.TotalNodes()),
		icPorts:    make([]*icPort, cfg.TotalNodes()),
	}
	for n := range p.nodeShard {
		switch {
		case perNode:
			p.nodeShard[n] = n
		case parallel:
			p.nodeShard[n] = n / cfg.NodesPerFPGA
		}
	}
	if parallel {
		// One engine and registry per shard (an FPGA, or a node under
		// per-node granularity); shards never touch each other's. p.Stats
		// stays empty until report time, when the shard registries are
		// folded into it.
		p.Stats = &sim.Stats{}
		for i := range p.engs {
			p.engs[i] = sim.NewEngine()
			p.shardStats[i] = &sim.Stats{}
		}
		// Clusters group one FPGA's shard engines under the inner (intra-
		// FPGA interconnect) lookahead; the outer level synchronizes FPGAs
		// at the PCIe lookahead. Per-FPGA granularity degenerates to
		// singleton clusters — the flat, one-level behavior.
		clusters := make([][]*sim.Engine, cfg.FPGAs)
		for f := range clusters {
			if perNode {
				clusters[f] = p.engs[f*cfg.NodesPerFPGA : (f+1)*cfg.NodesPerFPGA]
			} else {
				clusters[f] = p.engs[f : f+1]
			}
		}
		p.Group = sim.NewHierGroup(cfg.PCIe.MinCrossing(), icLatency, clusters, p.nodeShard)
		p.Group.SetAdaptive(cfg.AdaptiveCap())
		p.Group.SetAffinity(cfg.ShardAffinity)
		p.Group.SetMinLatencyFunc(p.minCrossingOf)
		p.net = p.Group
		if cfg.SyncMetrics {
			p.Group.EnableSyncStats(p.shardStats)
		}
	} else {
		p.Eng = sim.NewEngine()
		p.Stats = &sim.Stats{}
		p.engs[0] = p.Eng
		p.shardStats[0] = p.Stats
		// The serial reference enforces the same per-edge model-latency
		// floors the sharded lookaheads depend on (PCIe crossing between
		// FPGAs, interconnect crossing inside one), so an undercutting model
		// is caught in whichever mode runs first.
		net := sim.NewSerialNet(p.Eng)
		net.SetMinLatencyFunc(p.minCrossingOf)
		p.net = net
	}
	p.Injector = fault.NewInjector(p.engs[0], cfg.Faults)
	p.Fabric = pcie.New(p.engs[0], cfg.PCIe, p.shardStats[0])
	p.Fabric.SetInjector(p.Injector)
	// The fabric addresses endpoints by FPGA id; the CrossNet underneath
	// speaks node ids (so intra-FPGA hops can cross shards too). pcieView
	// translates: FPGA f rides its slot-0 node's endpoint.
	p.Fabric.SetCrossNet(pcieView{net: p.net, nodes: cfg.NodesPerFPGA})
	if parallel {
		for f := 0; f < cfg.FPGAs; f++ {
			s := p.nodeShard[f*cfg.NodesPerFPGA]
			p.Fabric.ShardEndpoint(f, p.engs[s], p.shardStats[s])
		}
	}
	if cfg.WatchdogInterval > 0 {
		if parallel {
			p.EnableGroupWatchdog(cfg.WatchdogInterval)
		} else {
			p.EnableWatchdog(cfg.WatchdogInterval)
		}
	}

	w, h := cfg.MeshDims()

	// Per-FPGA: shell on the slot-0 node's engine, with that node's
	// interconnect master as the inbound custom logic — PCIe-delivered
	// transactions cross the intra-FPGA interconnect to their slot like
	// locally issued ones.
	for f := 0; f < cfg.FPGAs; f++ {
		out := f * cfg.NodesPerFPGA
		s := p.nodeShard[out]
		sh := shell.New(p.engs[s], p.Fabric, f, p.shardStats[s])
		p.Shells = append(p.Shells, sh)
		sh.SetCustomLogic(&icMaster{p: p, node: out, eng: p.engs[s]})
	}

	// Nodes.
	for nID := 0; nID < cfg.TotalNodes(); nID++ {
		f := nID / cfg.NodesPerFPGA
		eng, stats := p.engs[p.nodeShard[nID]], p.shardStats[p.nodeShard[nID]]
		name := fmt.Sprintf("node%d", nID)
		n := &Node{ID: nID, FPGA: f, proto: p, eng: eng, stats: stats, name: name}
		// Router/link delays calibrated so a 12-tile node reproduces the
		// paper's ~100-cycle intra-node round trip (Fig. 7).
		n.Mesh = noc.New(eng, name+".mesh", noc.Params{
			RouterDelay: 3, LinkDelay: 2, Width: w, Height: h,
		}, stats)

		// Memory path: DRAM channel behind the NoC-AXI4 controller. The
		// controller sees node-local offsets; translate by the region base
		// for the (timing-only) channel.
		n.DRAM = mem.NewDRAM(eng, name+".dram", cfg.DRAMLatency, cfg.DRAMBytesPerCycle, nil, 0, stats)
		n.DRAM.SetInjector(p.Injector)
		n.MemCtl = mem.NewController(eng, n.Mesh, name+".memctl", n.DRAM, stats)

		// Interrupt fabric: global hart numbering node*C + tile.
		n.Pack = interrupt.NewPacketizer(func(hart int, c *interrupt.Change) {
			p.sendInterrupt(n, hart, c)
		})
		n.CLINT = interrupt.NewCLINT(eng, cfg.TotalTiles(), n.Pack)
		n.PLIC = interrupt.NewPLIC(cfg.TotalTiles(), 4, n.Pack)

		// Virtual devices.
		n.UART0 = dev.NewUART(eng, name+".uart0", stats)
		n.UART1 = dev.NewUART(eng, name+".uart1", stats)
		n.UART1.CyclesPerByte = dev.FastBaudCycles
		n.UART0.IRQ = func(level bool) { n.PLIC.SetLevel(1, level) }
		n.UART1.IRQ = func(level bool) { n.PLIC.SetLevel(2, level) }
		n.SD = dev.NewSDCard(eng, p.Backing, p.Map.SDCardBase(nID), NodeDRAMSize/2, stats, name+".sd")

		n.devices = []devRegion{
			// UART registers are exposed at stride 8 on the core side
			// (64-bit friendly), matching OpenPiton's chipset bridge.
			{DevUART0, 0x1000, strided{n.UART0, 3}, 2},
			{DevUART1, 0x1000, strided{n.UART1, 3}, 2},
			{DevSD, 0x1000, n.SD, 2},
			{DevCLINT, 0x10000, n.CLINT, 2},
			{DevPLIC, 0x400_0000, n.PLIC, 2},
		}

		// Tiles.
		for tID := 0; tID < cfg.TilesPerNode; tID++ {
			gid := cache.GID{Node: nID, Tile: tID}
			tname := fmt.Sprintf("%s.tile%d", name, tID)
			t := &Tile{ID: gid, node: n}
			t.Priv = cache.NewPrivate(eng, gid, cfg.Cache, nodeConn{n}, p.homeFunc(nID), stats, tname+".bpc")
			t.LLC = cache.NewSlice(eng, gid, cfg.Cache, nodeConn{n}, stats, tname+".llc")
			t.Depack = interrupt.NewDepacketizer(func(k interrupt.Kind, level bool) {
				if t.Core != nil {
					t.Core.SetIRQ(int(k), level)
				}
			})
			switch cfg.Core {
			case CoreAriane:
				t.Core = riscv.New(&corePort{tile: t}, p.hartID(gid), ResetPC, stats, tname+".core")
			case CorePicoRV32:
				t.Core = riscv.NewWithProfile(&corePort{tile: t}, p.hartID(gid), ResetPC, riscv.PicoRV32, stats, tname+".core")
			}
			n.Tiles = append(n.Tiles, t)
			n.Mesh.AttachTile(tID, p.tileHandler(t))
		}
		n.Mesh.AttachChipset(p.chipsetHandler(n))

		// Inter-node bridge, behind its interconnect window's arbitration
		// port.
		n.Bridge = bridge.New(eng, n.Mesh, nID, cfg.Bridge, stats, name+".bridge")
		n.Bridge.SetInjector(p.Injector)
		p.icPorts[nID] = &icPort{
			node:   nID,
			eng:    eng,
			target: n.Bridge.Inbound(),
			writes: stats.LazyCounter(name + ".ic.writes"),
			reads:  stats.LazyCounter(name + ".ic.reads"),
		}

		p.Nodes = append(p.Nodes, n)
	}

	// Wire bridge outbound paths: same-FPGA destinations cross the intra-
	// FPGA interconnect; remote destinations leave through the shell to
	// PCIe (hopping to the shell-owning slot-0 node first).
	for _, n := range p.Nodes {
		n.Bridge.ConnectOut(&icMaster{p: p, node: n.ID, eng: n.eng},
			func(dst int) axi.Addr { return p.bridgeAddr(n.FPGA, dst) })
	}
	return p, nil
}

// minCrossingOf is the per-edge model-latency floor between two CrossNet
// endpoints (node ids): zero for an endpoint's own engine-local sends, the
// interconnect crossing between co-located nodes, the PCIe crossing across
// FPGAs (and for anything involving the host endpoint).
func (p *Prototype) minCrossingOf(src, dst int) sim.Time {
	if src < 0 || dst < 0 {
		return p.Cfg.PCIe.MinCrossing()
	}
	if src == dst {
		return 0
	}
	if src/p.Cfg.NodesPerFPGA == dst/p.Cfg.NodesPerFPGA {
		return icLatency
	}
	return p.Cfg.PCIe.MinCrossing()
}

// bridgeWindow returns the CL-inbound window of a node's bridge within its
// FPGA (local addressing).
const bridgeWindowSize = 1 << 24

func bridgeWindow(slot int) axi.Addr {
	return axi.Addr(0x1000_0000 + uint64(slot)*bridgeWindowSize)
}

// bridgeAddr computes the AXI address for reaching dstNode's bridge from an
// FPGA: local window if co-located, PCIe window of the peer FPGA otherwise.
func (p *Prototype) bridgeAddr(srcFPGA, dstNode int) axi.Addr {
	dstFPGA := dstNode / p.Cfg.NodesPerFPGA
	slot := dstNode % p.Cfg.NodesPerFPGA
	if dstFPGA == srcFPGA {
		return bridgeWindow(slot)
	}
	base, _ := p.Fabric.Window(dstFPGA)
	return base + bridgeWindow(slot)
}

// hartID returns the global hart number of a tile.
func (p *Prototype) hartID(g cache.GID) int {
	return g.Node*p.Cfg.TilesPerNode + g.Tile
}

// hartLoc inverts hartID.
func (p *Prototype) hartLoc(hart int) cache.GID {
	return cache.GID{Node: hart / p.Cfg.TilesPerNode, Tile: hart % p.Cfg.TilesPerNode}
}

// homeFunc builds the homing function for a node's caches: home node from
// the DRAM region (default), or globally line-interleaved for the ablation
// configuration; home slice by line interleave either way.
func (p *Prototype) homeFunc(nodeID int) cache.HomeFunc {
	if p.Cfg.GlobalInterleaveHoming && p.Cfg.UnifiedMemory {
		nodes := uint64(p.Cfg.TotalNodes())
		tiles := uint64(p.Cfg.TilesPerNode)
		return func(line uint64) cache.GID {
			idx := line >> 6
			return cache.GID{
				Node: int(idx % nodes),
				Tile: int(idx / nodes % tiles),
			}
		}
	}
	return func(line uint64) cache.GID {
		return cache.GID{
			Node: p.Map.HomeNode(line, nodeID),
			Tile: p.Map.HomeTile(line),
		}
	}
}

// Tile returns the tile at a global location.
func (p *Prototype) Tile(g cache.GID) *Tile { return p.Nodes[g.Node].Tiles[g.Tile] }

// TileByHart returns the tile hosting a hart.
func (p *Prototype) TileByHart(hart int) *Tile { return p.Tile(p.hartLoc(hart)) }

// Seconds converts cycles to wall-clock seconds at the prototype frequency.
func (p *Prototype) Seconds(cycles sim.Time) float64 {
	return float64(cycles) / (float64(p.Cfg.ClockMHz) * 1e6)
}

// Now returns the current simulation time: the single engine's clock when
// serial, the globally latest executed event when sharded (the two agree —
// see internal/sim/parallel.go).
func (p *Prototype) Now() sim.Time {
	if p.Group != nil {
		return p.Group.Now()
	}
	return p.Eng.Now()
}

// ShardOfNode returns the shard index that simulates a node: 0 when
// serial, the node's FPGA under per-FPGA granularity, the node itself
// under per-node granularity.
func (p *Prototype) ShardOfNode(node int) int { return p.nodeShard[node] }

// EngineForNode returns the engine that simulates a node: its shard's
// engine, or the global engine when serial. Under per-node granularity
// distinct co-located nodes get distinct engines.
func (p *Prototype) EngineForNode(node int) *sim.Engine {
	return p.engs[p.nodeShard[node]]
}

// Net returns the cross-shard delivery network. Serial and sharded builds
// both have one, so code that crosses shards (the PCIe fabric, thread
// migration) is written once against it.
func (p *Prototype) Net() sim.CrossNet { return p.net }

// StatsForNode returns the registry new instruments on a node (e.g. an
// accelerator placed on one of its tiles) must register with: the node's
// shard registry when sharded, the global one when serial. Instruments
// registered on Stats directly would be dropped by a sharded build's
// report-time merge.
func (p *Prototype) StatsForNode(node int) *sim.Stats {
	return p.shardStats[p.nodeShard[node]]
}

// ShardRegistries returns the per-shard stats registries in shard order
// (one registry, the global one, when serial). Observers that rebuild the
// merged report must fold all of them, whatever the granularity.
func (p *Prototype) ShardRegistries() []*sim.Stats { return p.shardStats }

// Lookahead returns the minimum cross-FPGA latency in cycles — the outer
// bound every PCIe-class CrossNet send must respect, in either mode
// (serial runs must obey it too or they would diverge from sharded ones).
func (p *Prototype) Lookahead() sim.Time { return p.Cfg.PCIe.MinCrossing() }

// InnerLookahead returns the minimum intra-FPGA cross-shard latency in
// cycles: the interconnect crossing between co-located nodes, and the
// inner window bound of per-node sharded runs. Like Lookahead it is a
// property of the model, not the execution mode.
func (p *Prototype) InnerLookahead() sim.Time { return icLatency }

// MustSerial panics when a serial-only feature is used on a sharded build;
// exported for the software layers (kernel, workload) that add their own
// serial-only features, such as state capture.
func (p *Prototype) MustSerial(what string) { p.mustSerial(what) }

// mustSerial panics when a serial-only feature is used on a sharded build.
func (p *Prototype) mustSerial(what string) {
	if p.Eng == nil {
		panic(fmt.Sprintf("core: %s is serial-only; rebuild without Parallel", what))
	}
}

// Run drains the simulation (until all activity quiesces).
func (p *Prototype) Run() sim.Time {
	if p.Group != nil {
		t := p.Group.Run()
		p.GroupWatchdog.drained()
		return t
	}
	return p.Eng.Run()
}

// RunObserved drains the simulation like Run while invoking publish at
// non-perturbing boundaries: every `every` cycles from the driving goroutine
// between events when serial, and at every window barrier when sharded (via
// Group.OnBarrier, which it installs for the duration of the call, chaining
// any hook already present). publish must only read state — it runs while
// the simulation is provably quiescent, so a snapshot taken inside it cannot
// perturb event order, and the run's outputs are byte-identical to an
// unobserved one.
func (p *Prototype) RunObserved(every sim.Time, publish func()) sim.Time {
	if p.Group != nil {
		prev := p.Group.OnBarrier
		p.Group.OnBarrier = func() {
			if prev != nil {
				prev()
			}
			publish()
		}
		defer func() { p.Group.OnBarrier = prev }()
		t := p.Group.Run()
		p.GroupWatchdog.drained()
		return t
	}
	if every <= 0 {
		every = 100_000
	}
	next := p.Eng.Now() + every
	for p.Eng.Step() {
		if p.Eng.Now() >= next {
			publish()
			next = p.Eng.Now() + every
		}
	}
	return p.Eng.Now()
}

// RunUntil advances simulation to the deadline. Serial-only: sharded
// execution advances in lookahead windows, not to arbitrary deadlines.
func (p *Prototype) RunUntil(t sim.Time) sim.Time {
	p.mustSerial("RunUntil")
	return p.Eng.RunUntil(t)
}

// RunUntilHalted executes until every core halts, the event queue drains,
// or the cycle limit passes, and returns the final time. Sharded execution
// checks the halt condition at window barriers (the only points where core
// state is coherent to inspect), so it may overshoot the limit by up to one
// window.
func (p *Prototype) RunUntilHalted(limit sim.Time) sim.Time {
	if p.Group != nil {
		for !p.AllHalted() && p.Group.Now() < limit {
			if !p.Group.StepWindow() {
				p.GroupWatchdog.drained()
				break
			}
		}
		return p.Group.Now()
	}
	for !p.AllHalted() && p.Eng.Now() < limit {
		if !p.Eng.Step() {
			break
		}
	}
	return p.Eng.Now()
}

// RunUntilHaltedObserved is RunUntilHalted with the observation contract of
// RunObserved: publish runs between events every `every` cycles when serial,
// and at window barriers when sharded.
func (p *Prototype) RunUntilHaltedObserved(limit, every sim.Time, publish func()) sim.Time {
	if p.Group != nil {
		prev := p.Group.OnBarrier
		p.Group.OnBarrier = func() {
			if prev != nil {
				prev()
			}
			publish()
		}
		defer func() { p.Group.OnBarrier = prev }()
		return p.RunUntilHalted(limit)
	}
	if every <= 0 {
		every = 100_000
	}
	next := p.Eng.Now() + every
	for !p.AllHalted() && p.Eng.Now() < limit {
		if !p.Eng.Step() {
			break
		}
		if p.Eng.Now() >= next {
			publish()
			next = p.Eng.Now() + every
		}
	}
	return p.Eng.Now()
}

// Start boots every RISC-V core (no-op for CoreNone prototypes). Cores
// begin fetching at ResetPC.
func (p *Prototype) Start() {
	for _, n := range p.Nodes {
		for _, t := range n.Tiles {
			if t.Core == nil || t.Accel != nil {
				continue
			}
			t := t
			t.proc = sim.Go(n.eng, fmt.Sprintf("hart%d", p.hartID(t.ID)), func(pr *sim.Process) {
				t.Core.Run(pr, 0)
			})
		}
	}
}

// AllHalted reports whether every started core has halted.
func (p *Prototype) AllHalted() bool {
	for _, n := range p.Nodes {
		for _, t := range n.Tiles {
			if t.Core != nil && t.Accel == nil && !t.Core.Halted() {
				return false
			}
		}
	}
	return true
}
