// Checkpoint/restore assembly for the platform. Two snapshot kinds exist
// (package ckpt): replay cursors, which any prototype can take at any point
// and which restore by deterministic re-execution; and full state captures,
// which are serial-only and must be taken at a quiescent safepoint (event
// queue drained) — the campaign layer arranges those at workload barrier
// cuts. See DESIGN.md "Snapshot format".
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"smappic/internal/ckpt"
	"smappic/internal/sim"
)

// canonicalString renders every parameter that shapes the simulated event
// stream, in a fixed order. Struct fields print with %+v, whose layout is
// fixed by the type definitions; the fault plan uses its canonical form so
// differently-written but equal specs fingerprint identically.
func (c Config) canonicalString() string {
	return fmt.Sprintf("shape=%s;core=%s;cache=%+v;unified=%t;gih=%t;dram=%d/%d;bridge=%+v;pcie=%+v;clock=%d;seed=%d;faults=%s;watchdog=%d",
		c.Shape(), c.Core, c.Cache, c.UnifiedMemory, c.GlobalInterleaveHoming,
		c.DRAMLatency, c.DRAMBytesPerCycle, c.Bridge, c.PCIe, c.ClockMHz,
		c.Seed, c.Faults.String(), c.WatchdogInterval)
}

// ConfigHash fingerprints the configuration for snapshot/restore matching.
// Parallel is deliberately excluded: serial and sharded runs of one
// configuration are byte-identical, and the execution mode is verified
// separately (with a clearer error) when replaying a cursor.
func (c Config) ConfigHash() string {
	sum := sha256.Sum256([]byte(c.canonicalString()))
	return hex.EncodeToString(sum[:])
}

// PrefixString renders only the boot-relevant parameter subset: what a
// warm-start prefix depends on. Fork-time parameters — fault plan, bridge
// credits and link shaping, the watchdog — are excluded, so sweep points
// that differ only in those share one prefix snapshot. The campaign layer
// appends its workload parameters before hashing.
func (c Config) PrefixString() string {
	return fmt.Sprintf("shape=%s;core=%s;cache=%+v;unified=%t;gih=%t;dram=%d/%d;pcie=%+v;clock=%d;seed=%d",
		c.Shape(), c.Core, c.Cache, c.UnifiedMemory, c.GlobalInterleaveHoming,
		c.DRAMLatency, c.DRAMBytesPerCycle, c.PCIe, c.ClockMHz, c.Seed)
}

// normalizedParallel folds "unset" and "1" into one serial mode value.
func normalizedParallel(parallel int) int {
	if parallel <= 1 {
		return 1
	}
	return parallel
}

// Checkpoint writes a replay-cursor snapshot of the run so far: the
// executed-event count (serial) or completed-window count (sharded), plus
// the engine clock for verification. It may be taken at any point where the
// caller's run loop is between events/windows. WorkloadTag (set by the
// caller after loading software) guards restore against replaying a
// different program.
func (p *Prototype) Checkpoint(w io.Writer) error {
	snap := &ckpt.Snapshot{
		Kind:       ckpt.KindReplay,
		ConfigHash: p.Cfg.ConfigHash(),
		Workload:   p.WorkloadTag,
		Now:        uint64(p.Now()),
		Replay:     &ckpt.Replay{Parallel: normalizedParallel(p.Cfg.Parallel)},
	}
	if p.Group != nil {
		snap.Replay.Windows = p.Group.Windows()
		snap.Replay.Adaptive = p.Group.WidthCap()
		snap.Replay.WindowDigest = p.Group.WindowDigest()
		snap.Replay.Granularity = p.Cfg.Granularity()
	} else {
		snap.Replay.Executed = p.Eng.Executed()
	}
	return snap.Write(w)
}

// RestorePrototype reads and verifies a snapshot, checks it belongs to cfg,
// and builds a fresh prototype for it. The caller then loads the same
// software, starts the prototype and — for replay snapshots — calls Replay
// to re-execute to the cursor, or — for state snapshots — applies the state
// sections. All failure modes return typed ckpt errors; nothing panics on a
// hostile snapshot.
func RestorePrototype(r io.Reader, cfg Config) (*Prototype, *ckpt.Snapshot, error) {
	snap, err := ckpt.Read(r)
	if err != nil {
		return nil, nil, err
	}
	if snap.ConfigHash != cfg.ConfigHash() {
		return nil, nil, &ckpt.MismatchError{Field: "configuration", Got: snap.ConfigHash, Want: cfg.ConfigHash()}
	}
	p, err := Build(cfg)
	if err != nil {
		return nil, nil, err
	}
	return p, snap, nil
}

// Replay re-executes a freshly built, started prototype to a replay
// snapshot's cursor. Determinism does the heavy lifting: stepping the same
// build the same number of events (or windows) reproduces the exact global
// state, and the recorded clock cross-checks it — a mismatch means the
// software or configuration differs from the checkpointed run.
func (p *Prototype) Replay(snap *ckpt.Snapshot) error {
	if snap.Kind != ckpt.KindReplay || snap.Replay == nil {
		return &ckpt.MismatchError{Field: "snapshot kind", Got: snap.Kind.String(), Want: ckpt.KindReplay.String()}
	}
	if snap.Workload != p.WorkloadTag {
		return &ckpt.MismatchError{Field: "workload", Got: snap.Workload, Want: p.WorkloadTag}
	}
	rp := snap.Replay
	if rp.Parallel != normalizedParallel(p.Cfg.Parallel) {
		return &ckpt.MismatchError{Field: "execution mode (parallel shards)",
			Got: fmt.Sprint(rp.Parallel), Want: fmt.Sprint(normalizedParallel(p.Cfg.Parallel))}
	}
	if p.Group != nil {
		// A window cursor is granularity-specific: per-FPGA and per-node
		// runs of one configuration execute different window sequences, so
		// a cursor only replays at the granularity it was taken under.
		// Cursors predating the field are all per-FPGA.
		cursorGran := rp.Granularity
		if cursorGran == "" {
			cursorGran = "fpga"
		}
		if cursorGran != p.Cfg.Granularity() {
			return &ckpt.MismatchError{Field: "shard granularity",
				Got: cursorGran, Want: p.Cfg.Granularity()}
		}
		// A window cursor only means "the same windows" if both runs widen
		// them identically, so the adaptive cap is part of the cursor's
		// identity — and the digest proves the replayed window sequence
		// (starts and widths) matched, not just its length.
		if rp.Adaptive != 0 && rp.Adaptive != p.Group.WidthCap() {
			return &ckpt.MismatchError{Field: "adaptive lookahead cap",
				Got: fmt.Sprint(rp.Adaptive), Want: fmt.Sprint(p.Group.WidthCap())}
		}
		for p.Group.Windows() < rp.Windows {
			if !p.Group.StepWindow() {
				return &ckpt.MismatchError{Field: "replay cursor",
					Got:  fmt.Sprintf("%d windows", rp.Windows),
					Want: fmt.Sprintf("run drained after %d", p.Group.Windows())}
			}
		}
		if uint64(p.Group.Now()) != snap.Now {
			return &ckpt.MismatchError{Field: "replay clock",
				Got: fmt.Sprint(snap.Now), Want: fmt.Sprint(p.Group.Now())}
		}
		if rp.WindowDigest != 0 && rp.WindowDigest != p.Group.WindowDigest() {
			return &ckpt.MismatchError{Field: "window sequence digest",
				Got: fmt.Sprintf("%#x", rp.WindowDigest), Want: fmt.Sprintf("%#x", p.Group.WindowDigest())}
		}
		return nil
	}
	for p.Eng.Executed() < rp.Executed {
		if !p.Eng.Step() {
			return &ckpt.MismatchError{Field: "replay cursor",
				Got:  fmt.Sprintf("%d events", rp.Executed),
				Want: fmt.Sprintf("run drained after %d", p.Eng.Executed())}
		}
	}
	if uint64(p.Eng.Now()) != snap.Now {
		return &ckpt.MismatchError{Field: "replay clock",
			Got: fmt.Sprint(snap.Now), Want: fmt.Sprint(p.Eng.Now())}
	}
	return nil
}

// statsToCkpt converts a registry dump to snapshot form.
func statsToCkpt(s *sim.Stats) ckpt.StatsState {
	counters, gauges, hists := s.CaptureState()
	var st ckpt.StatsState
	for _, c := range counters {
		st.Counters = append(st.Counters, ckpt.CounterState{Name: c.Name, Value: c.Value})
	}
	for _, g := range gauges {
		st.Gauges = append(st.Gauges, ckpt.GaugeState{Name: g.Name, Value: g.Value, High: g.High})
	}
	for _, h := range hists {
		st.Hists = append(st.Hists, ckpt.HistState{
			Name: h.Name, Samples: h.Samples, Sum: h.Sum, Min: h.Min, Max: h.Max,
			Bins: append([]uint64(nil), h.Bins[:]...),
		})
	}
	return st
}

// statsFromCkpt applies a snapshot registry dump.
func statsFromCkpt(s *sim.Stats, st ckpt.StatsState) error {
	var counters []sim.Counter
	var gauges []sim.Gauge
	var hists []sim.Histogram
	for _, c := range st.Counters {
		counters = append(counters, sim.Counter{Name: c.Name, Value: c.Value})
	}
	for _, g := range st.Gauges {
		gauges = append(gauges, sim.Gauge{Name: g.Name, Value: g.Value, High: g.High})
	}
	for _, h := range st.Hists {
		hist := sim.Histogram{Name: h.Name, Samples: h.Samples, Sum: h.Sum, Min: h.Min, Max: h.Max}
		if len(h.Bins) != len(hist.Bins) {
			return &ckpt.CorruptError{Reason: fmt.Sprintf("histogram %s has %d bins; this build uses %d", h.Name, len(h.Bins), len(hist.Bins))}
		}
		copy(hist.Bins[:], h.Bins)
		hists = append(hists, hist)
	}
	s.RestoreState(counters, gauges, hists)
	return nil
}

// CaptureState assembles the full quiescent-state section: backing memory,
// every node's devices and caches, the PCIe fabric, fault-injector progress
// and the statistics registry. Serial-only (state snapshots are taken by
// campaign jobs, which run serial), and the event queue must be fully
// drained — each subsystem additionally checks its own quiescence
// invariants and errors instead of capturing a torn state.
func (p *Prototype) CaptureState() (*ckpt.State, error) {
	p.mustSerial("CaptureState")
	if p.Eng.Pending() != 0 {
		return nil, fmt.Errorf("core: %d events still pending; state capture requires a drained engine", p.Eng.Pending())
	}
	st := &ckpt.State{Mem: p.Backing.CaptureState()}
	for _, n := range p.Nodes {
		ns := ckpt.NodeState{
			Node: n.ID,
			DRAM: n.DRAM.CaptureState(),
			NoC:  n.Mesh.CaptureState(),
		}
		mc, err := n.MemCtl.CaptureState()
		if err != nil {
			return nil, err
		}
		ns.MemCtl = mc
		br, err := n.Bridge.CaptureState()
		if err != nil {
			return nil, err
		}
		ns.Bridge = br
		for _, t := range n.Tiles {
			ts := ckpt.TileState{Tile: t.ID.Tile}
			if err := t.Priv.CaptureState(&ts); err != nil {
				return nil, err
			}
			if err := t.LLC.CaptureState(&ts); err != nil {
				return nil, err
			}
			ns.Tiles = append(ns.Tiles, ts)
		}
		st.Nodes = append(st.Nodes, ns)
	}
	st.PCIe = p.Fabric.CaptureState()
	st.Fault = p.Injector.CaptureState()
	st.Stats = []ckpt.StatsState{statsToCkpt(p.Stats)}
	return st, nil
}

// ApplyState overlays a captured state section onto a freshly built serial
// prototype. With warmFork set — warm-start forking, where the restoring
// configuration may differ in fork-time parameters — the bridge section
// (credits, link shaper) and fault section are skipped: a fresh bridge's
// full-credit quiescent state is consistent on both sides of every link,
// and the fork's own fault plan starts its streams from zero.
func (p *Prototype) ApplyState(st *ckpt.State, warmFork bool) error {
	p.mustSerial("ApplyState")
	if err := p.Backing.RestoreState(st.Mem); err != nil {
		return err
	}
	if len(st.Nodes) != len(p.Nodes) {
		return &ckpt.MismatchError{Field: "node count",
			Got: fmt.Sprint(len(st.Nodes)), Want: fmt.Sprint(len(p.Nodes))}
	}
	for i, ns := range st.Nodes {
		n := p.Nodes[i]
		if ns.Node != n.ID {
			return &ckpt.CorruptError{Reason: fmt.Sprintf("node section %d labeled node%d", i, ns.Node)}
		}
		n.DRAM.RestoreState(ns.DRAM)
		n.MemCtl.RestoreState(ns.MemCtl)
		if err := n.Mesh.RestoreState(ns.NoC); err != nil {
			return err
		}
		if !warmFork {
			n.Bridge.RestoreState(ns.Bridge)
		}
		if len(ns.Tiles) != len(n.Tiles) {
			return &ckpt.MismatchError{Field: "tile count",
				Got: fmt.Sprint(len(ns.Tiles)), Want: fmt.Sprint(len(n.Tiles))}
		}
		for j, ts := range ns.Tiles {
			t := n.Tiles[j]
			if err := t.Priv.RestoreState(&ts); err != nil {
				return err
			}
			if err := t.LLC.RestoreState(&ts); err != nil {
				return err
			}
		}
	}
	if err := p.Fabric.RestoreState(st.PCIe); err != nil {
		return err
	}
	if !warmFork {
		if err := p.Injector.RestoreState(st.Fault); err != nil {
			return err
		}
	}
	if len(st.Stats) > 0 {
		if err := statsFromCkpt(p.Stats, st.Stats[0]); err != nil {
			return err
		}
	}
	return nil
}
