package core

import (
	"fmt"

	"smappic/internal/bridge"
	"smappic/internal/cache"
	"smappic/internal/interrupt"
	"smappic/internal/mem"
	"smappic/internal/noc"
	"smappic/internal/sim"
)

// nodeConn implements cache.Conn for one node: local destinations go over
// the mesh; remote destinations are wrapped in a bridge envelope, routed to
// the bridge port, and re-injected into the destination node's mesh.
type nodeConn struct{ n *Node }

func (c nodeConn) SendProto(from, to cache.GID, msg *cache.Msg) {
	cls := msg.Class()
	flits := msg.Flits()
	src := noc.Dest{Port: noc.PortTile, Tile: from.Tile}
	if to.Node == c.n.ID {
		c.n.Mesh.Send(&noc.Packet{
			Class: cls, Src: src,
			Dst:     noc.Dest{Port: noc.PortTile, Tile: to.Tile},
			Flits:   flits,
			Payload: msg,
		})
		return
	}
	c.n.Mesh.Send(&noc.Packet{
		Class: cls, Src: src,
		Dst:   noc.Dest{Port: noc.PortBridge},
		Flits: flits,
		Payload: &bridge.Envelope{
			SrcNode: c.n.ID, DstNode: to.Node, DstTile: to.Tile,
			Class: cls, Flits: flits, Payload: msg,
		},
	})
}

func (c nodeConn) SendMem(from cache.GID, req *mem.Req) {
	// The memory controller works in node-local offsets; strip the node's
	// region base. Size of the NoC packet: write requests carry the line.
	req.Addr = (req.Addr - DRAMBase) % NodeDRAMSize
	data := 0
	if req.Write {
		data = req.Size
	}
	c.n.Mesh.Send(&noc.Packet{
		Class:   noc.NoC3,
		Src:     noc.Dest{Port: noc.PortTile, Tile: from.Tile},
		Dst:     noc.Dest{Port: noc.PortChipset},
		Flits:   mem.FlitsFor(data),
		Payload: req,
	})
}

// mmioReq is an uncacheable device access travelling over the NoC to the
// chipset (or an accelerator tile). The completion callback rides in the
// message; the simulation is single-threaded, so this is deterministic and
// race-free (it stands in for the response packet's routing information).
type mmioReq struct {
	write bool
	addr  uint64
	size  int
	val   uint64
	src   noc.Dest
	done  func(val uint64)
}

// mmioResp carries the device's answer back to the requesting tile.
type mmioResp struct {
	val  uint64
	done func(val uint64)
}

// tileHandler dispatches packets delivered to a tile port.
func (p *Prototype) tileHandler(t *Tile) noc.Handler {
	// The tile's trace track is fixed for the prototype's lifetime; compute
	// it once so the hot path never formats strings.
	track := fmt.Sprintf("node%d.tile%d", t.ID.Node, t.ID.Tile)
	return func(pkt *noc.Packet) {
		switch m := pkt.Payload.(type) {
		case *cache.Msg:
			if p.Tracer.Enabled() {
				p.Tracer.EmitT(track, sim.CatCoherence, "%v line=%#x req=%v at tile %v", m.Op, m.Line, m.Req, t.ID)
			}
			switch m.Op {
			case cache.GetS, cache.GetM, cache.PutS, cache.PutM, cache.InvAck, cache.DownAck:
				t.LLC.HandleMsg(m)
			default:
				t.Priv.HandleMsg(m)
			}
		case *mem.Resp:
			t.LLC.HandleMemResp(m)
		case *interrupt.Change:
			t.Depack.Handle(m)
		case *mmioReq:
			p.accelAccess(t, m)
		case *mmioResp:
			m.done(m.val)
		default:
			panic(fmt.Sprintf("core: tile %v: unexpected payload %T", t.ID, pkt.Payload))
		}
	}
}

// accelMMIOLatency is the device-side cost of a non-cacheable accelerator
// access (the TRI/NIU serialization that makes uncached loads slow on the
// real platform, ~40-60 cycles end to end).
const accelMMIOLatency sim.Time = 26

// accelAccess serves an uncacheable access to a tile-resident accelerator.
func (p *Prototype) accelAccess(t *Tile, m *mmioReq) {
	if t.Accel == nil {
		panic(fmt.Sprintf("core: tile %v has no accelerator but received MMIO %#x", t.ID, m.addr))
	}
	off := p.Map.DevOffset(m.addr)
	_, devOff, ok := p.Map.AccelTile(off)
	if !ok {
		panic(fmt.Sprintf("core: bad accelerator address %#x", m.addr))
	}
	t.node.eng.Schedule(accelMMIOLatency, func() {
		var val uint64
		if m.write {
			t.Accel.Write(devOff, m.size, m.val)
		} else {
			val = t.Accel.Read(devOff, m.size)
		}
		t.node.Mesh.Send(&noc.Packet{
			Class:   noc.NoC2,
			Src:     noc.Dest{Port: noc.PortTile, Tile: t.ID.Tile},
			Dst:     m.src,
			Flits:   2,
			Payload: &mmioResp{val: val, done: m.done},
		})
	})
}

// chipsetHandler demuxes chipset-port traffic: memory requests to the
// controller, MMIO to the devices.
func (p *Prototype) chipsetHandler(n *Node) noc.Handler {
	return func(pkt *noc.Packet) {
		switch m := pkt.Payload.(type) {
		case *mem.Req:
			n.MemCtl.Handle(pkt)
		case *mmioReq:
			p.deviceAccess(n, m)
		default:
			panic(fmt.Sprintf("core: node%d chipset: unexpected payload %T", n.ID, pkt.Payload))
		}
	}
}

// deviceAccess serves an uncacheable access to a chipset device.
func (p *Prototype) deviceAccess(n *Node, m *mmioReq) {
	off := p.Map.DevOffset(m.addr)
	for _, r := range n.devices {
		if off >= r.base && off < r.base+r.size {
			r := r
			n.eng.Schedule(r.latency, func() {
				var val uint64
				if m.write {
					r.dev.Write(off-r.base, m.size, m.val)
				} else {
					val = r.dev.Read(off-r.base, m.size)
				}
				if p.Tracer.Enabled() {
					p.Tracer.EmitT(n.Name(), sim.CatMMIO, "%s %s off=%#x val=%#x", rw(m.write), r.dev.Name(), off-r.base, val|m.val)
				}
				n.Mesh.Send(&noc.Packet{
					Class:   noc.NoC2,
					Src:     noc.Dest{Port: noc.PortChipset},
					Dst:     m.src,
					Flits:   2,
					Payload: &mmioResp{val: val, done: m.done},
				})
			})
			return
		}
	}
	panic(fmt.Sprintf("core: node%d: no device at offset %#x", n.ID, off))
}

// sendInterrupt routes a packetizer change to the owning hart's tile, which
// may be on another node (the scalability problem §3.3 solves).
func (p *Prototype) sendInterrupt(from *Node, hart int, c *interrupt.Change) {
	dst := p.hartLoc(hart)
	if dst.Node == from.ID {
		from.Mesh.Send(&noc.Packet{
			Class:   noc.NoC2,
			Src:     noc.Dest{Port: noc.PortChipset},
			Dst:     noc.Dest{Port: noc.PortTile, Tile: dst.Tile},
			Flits:   interrupt.Flits,
			Payload: c,
		})
		return
	}
	from.Mesh.Send(&noc.Packet{
		Class: noc.NoC2,
		Src:   noc.Dest{Port: noc.PortChipset},
		Dst:   noc.Dest{Port: noc.PortBridge},
		Flits: interrupt.Flits,
		Payload: &bridge.Envelope{
			SrcNode: from.ID, DstNode: dst.Node, DstTile: dst.Tile,
			Class: noc.NoC2, Flits: interrupt.Flits, Payload: c,
		},
	})
}

// sendMMIO issues an uncacheable access from a tile and wires its response.
func (p *Prototype) sendMMIO(t *Tile, m *mmioReq) {
	node := p.Map.DevNode(m.addr)
	off := p.Map.DevOffset(m.addr)
	src := noc.Dest{Port: noc.PortTile, Tile: t.ID.Tile}
	m.src = src

	var dst noc.Dest
	if tile, _, ok := p.Map.AccelTile(off); ok {
		dst = noc.Dest{Port: noc.PortTile, Tile: tile}
	} else {
		dst = noc.Dest{Port: noc.PortChipset}
	}
	if node == t.ID.Node {
		t.node.Mesh.Send(&noc.Packet{
			Class: noc.NoC1, Src: src, Dst: dst, Flits: 3, Payload: m,
		})
		return
	}
	t.node.Mesh.Send(&noc.Packet{
		Class: noc.NoC1, Src: src,
		Dst:   noc.Dest{Port: noc.PortBridge},
		Flits: 3,
		Payload: &bridge.Envelope{
			SrcNode: t.ID.Node, DstNode: node,
			DstPort: dst.Port, DstTile: dst.Tile,
			Class: noc.NoC1, Flits: 3, Payload: m,
		},
	})
}

// rw labels an access direction in traces.
func rw(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

var _ = sim.Time(0)
