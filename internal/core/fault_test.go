package core

import (
	"bytes"
	"strings"
	"testing"

	"smappic/internal/cache"
	"smappic/internal/fault"
	"smappic/internal/sim"
)

// runFaultedWorkload builds a 2-node prototype, pushes 64 cache lines to the
// remote node and reads them back (verifying the data survived whatever the
// plan injected), and returns the run's full metrics document.
func runFaultedWorkload(t *testing.T, spec string) []byte {
	t.Helper()
	cfg := DefaultConfig(2, 1, 2)
	cfg.Core = CoreNone
	if spec != "" {
		cfg.Faults = fault.MustParse(spec, 42)
	}
	p, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	port := p.PortAt(cache.GID{Node: 0, Tile: 0})
	remote := p.Map.NodeDRAMBase(1) + 0x200000
	sim.Go(p.Eng, "wl", func(proc *sim.Process) {
		for i := uint64(0); i < 64; i++ {
			port.Store(proc, remote+i*64, 8, i^0xDEAD)
		}
		for i := uint64(0); i < 64; i++ {
			if v := port.Load(proc, remote+i*64, 8); v != i^0xDEAD {
				t.Errorf("line %d read back %#x, want %#x", i, v, i^0xDEAD)
			}
		}
	})
	p.Run()
	out, err := p.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// Same seed, same plan: the whole run — including every injected fault and
// every recovery action — must replay to byte-identical metrics.
func TestFaultedRunIsDeterministic(t *testing.T) {
	const spec = "pcie.*.drop:p=0.1;*.dram.flip:p=0.05"
	a := runFaultedWorkload(t, spec)
	b := runFaultedWorkload(t, spec)
	if !bytes.Equal(a, b) {
		t.Fatal("two runs with the same seed and plan produced different metrics")
	}
}

// A plan whose rules can never fire must not perturb the simulation at all:
// the reliable-delivery machinery may be armed, but its timers cancel without
// advancing time, so the metrics match a run with injection disabled.
func TestFaultFreePlanMatchesDisabledInjection(t *testing.T) {
	armed := runFaultedWorkload(t, "pcie.*.drop:p=0;*.bridge.drop:p=0;*.dram.flip:p=0")
	off := runFaultedWorkload(t, "")
	if !bytes.Equal(armed, off) {
		t.Fatal("a never-firing plan changed the metrics versus no injector")
	}
}

// A permanently hung PCIe endpoint must end as a watchdog diagnosis naming
// the stuck transactions, not as a silent drain or an infinite event loop.
func TestHangProducesWatchdogDiagnosis(t *testing.T) {
	cfg := DefaultConfig(2, 1, 2)
	cfg.Core = CoreNone
	cfg.Faults = fault.MustParse("pcie.ep0.link.hang:after=4", 1)
	cfg.WatchdogInterval = 100_000
	p, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	port := p.PortAt(cache.GID{Node: 0, Tile: 0})
	remote := p.Map.NodeDRAMBase(1) + 0x200000
	completed := 0
	sim.Go(p.Eng, "wl", func(proc *sim.Process) {
		for i := uint64(0); i < 16; i++ {
			port.Store(proc, remote+i*64, 8, i)
			completed++
		}
	})
	p.Run() // must terminate: the watchdog fires instead of spinning

	if completed == 16 {
		t.Error("every store completed despite the hung link")
	}
	if p.Watchdog == nil || !p.Watchdog.Fired() {
		t.Fatalf("watchdog did not fire (%d/16 stores completed)", completed)
	}
	diag := p.StallDiagnosis
	if !strings.Contains(diag, "WATCHDOG") {
		t.Fatalf("missing stall diagnosis, got %q", diag)
	}
	if !strings.Contains(diag, "mshr_occ") {
		t.Errorf("diagnosis does not name the stuck MSHR:\n%s", diag)
	}
	if !strings.Contains(diag, "HUNG") {
		t.Errorf("diagnosis does not show the hung fault site:\n%s", diag)
	}
	if !strings.Contains(p.Report(), "WATCHDOG") {
		t.Error("Report() does not include the diagnosis")
	}
}
