package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"smappic/internal/sim"
)

// flushTelemetry publishes derived statistics that are kept out of the hot
// path during simulation: per-link NoC counters (accumulated in flat arrays
// inside each mesh) and per-node cache-miss latency histograms (merged from
// the per-tile ones). It is idempotent — calling it twice does not
// double-count — so Report and MetricsJSON may both be used on one run.
func (p *Prototype) flushTelemetry() {
	if p.Stats == nil {
		return
	}
	for _, n := range p.Nodes {
		n.Mesh.FlushLinkStats()
		merged := n.stats.Histogram(n.name + ".bpc.miss_latency")
		merged.Reset()
		for tID := range n.Tiles {
			h := n.stats.FindHistogram(fmt.Sprintf("%s.tile%d.bpc.miss_latency", n.name, tID))
			merged.Merge(h)
		}
	}
	if p.Group != nil {
		// Fold the per-shard registries into the reporting registry. Shard
		// instrument names are disjoint, so this is a rename-free union; it
		// is also idempotent because CopyFrom replaces rather than adds.
		p.Stats.CopyFrom(p.shardStats...)
	}
}

// Report renders the end-of-run statistics as text: a run header followed by
// every counter, gauge and histogram in the registry.
func (p *Prototype) Report() string {
	p.flushTelemetry()
	var b strings.Builder
	fmt.Fprintf(&b, "# shape %dx%dx%d, %d cycles (%.6f s at %d MHz), seed %d\n",
		p.Cfg.FPGAs, p.Cfg.NodesPerFPGA, p.Cfg.TilesPerNode,
		p.Now(), p.Seconds(p.Now()), p.Cfg.ClockMHz, p.Cfg.Seed)
	b.WriteString(p.Stats.String())
	if p.Injector != nil {
		b.WriteString("# fault injection\n")
		b.WriteString(p.Injector.String())
	}
	if p.StallDiagnosis != "" {
		b.WriteString(p.StallDiagnosis)
	}
	return b.String()
}

// metricsDoc is the wire form of MetricsJSON. Field order is fixed and all
// maps inside are rendered with sorted keys, so two identical runs produce
// byte-identical documents.
type metricsDoc struct {
	Meta    metricsMeta  `json:"meta"`
	Stats   *sim.Stats   `json:"stats"`
	Samples *sim.Sampler `json:"samples,omitempty"`
}

type metricsMeta struct {
	FPGAs        int    `json:"fpgas"`
	NodesPerFPGA int    `json:"nodes_per_fpga"`
	TilesPerNode int    `json:"tiles_per_node"`
	Cycles       uint64 `json:"cycles"`
	ClockMHz     int    `json:"clock_mhz"`
	Seed         uint64 `json:"seed"`
}

// MetricsJSON renders the run's metadata, full statistics registry and (when
// a sampler is installed) the sampled time series as one JSON document.
func (p *Prototype) MetricsJSON() ([]byte, error) {
	p.flushTelemetry()
	doc := metricsDoc{
		Meta: metricsMeta{
			FPGAs:        p.Cfg.FPGAs,
			NodesPerFPGA: p.Cfg.NodesPerFPGA,
			TilesPerNode: p.Cfg.TilesPerNode,
			Cycles:       uint64(p.Now()),
			ClockMHz:     p.Cfg.ClockMHz,
			Seed:         p.Cfg.Seed,
		},
		Stats:   p.Stats,
		Samples: p.Sampler,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// EnableSampler installs an interval sampler snapshotting the given counter
// or gauge names (trailing "*" sums a prefix) every `every` cycles. With no
// names it samples a default set: per-node NoC flit totals per class, bridge
// traffic, DRAM accesses and memory-engine occupancy.
func (p *Prototype) EnableSampler(every sim.Time, names ...string) *sim.Sampler {
	p.mustSerial("EnableSampler")
	if len(names) == 0 {
		names = p.defaultSampleSet()
	}
	p.Sampler = sim.NewSampler(p.Eng, p.Stats, every, names...)
	return p.Sampler
}

// defaultSampleSet lists the sampler columns used when the caller names none.
func (p *Prototype) defaultSampleSet() []string {
	var names []string
	for _, n := range p.Nodes {
		names = append(names,
			n.name+".mesh.noc1.flits",
			n.name+".mesh.noc2.flits",
			n.name+".mesh.noc3.flits",
			n.name+".bridge.tx_flits",
			n.name+".dram.reads",
			n.name+".dram.writes",
			n.name+".memctl.rd_inflight",
			n.name+".memctl.wr_inflight",
		)
	}
	return names
}

// WriteTrace exports the recorded event trace in Chrome trace-event JSON
// (load in Perfetto or chrome://tracing). Safe to call with no tracer
// installed; the result is then a valid empty trace.
func (p *Prototype) WriteTrace(w io.Writer) error {
	return p.Tracer.WriteChrome(w)
}

// EnableWatchdog arms the forward-progress watchdog: if no event executes for
// interval cycles while any occupancy gauge is nonzero, the run is wedged —
// the watchdog records a diagnosis (StallDiagnosis, also appended to Report)
// built from the stats registry instead of letting the queue drain silently.
func (p *Prototype) EnableWatchdog(interval sim.Time) *sim.Watchdog {
	p.mustSerial("EnableWatchdog")
	p.Watchdog = sim.NewWatchdog(p.Eng, interval, p.hasInflight, func() {
		p.StallDiagnosis = p.stallDiagnosis(interval)
	})
	return p.Watchdog
}

// hasInflight reports whether any transaction is outstanding anywhere in the
// model, judged by the occupancy gauges every subsystem maintains (MSHRs,
// memory engines, PCIe in-flight, bridge send queues).
func (p *Prototype) hasInflight() bool {
	if p.Stats == nil {
		return false
	}
	for _, name := range p.Stats.GaugeNames() {
		if v, ok := p.Stats.GaugeValue(name); ok && v != 0 {
			return true
		}
	}
	return false
}

// stallDiagnosis renders the watchdog's dump: where the outstanding work is
// stuck (every nonzero gauge) and what the fault injector has done so far.
func (p *Prototype) stallDiagnosis(interval sim.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "WATCHDOG: no forward progress for %d cycles at cycle %d with transactions in flight\n",
		interval, p.Now())
	b.WriteString("outstanding (nonzero gauges):\n")
	for _, name := range p.Stats.GaugeNames() {
		if v, ok := p.Stats.GaugeValue(name); ok && v != 0 {
			fmt.Fprintf(&b, "  %-40s %d\n", name, v)
		}
	}
	if p.Injector != nil {
		b.WriteString("fault sites:\n")
		b.WriteString(p.Injector.String())
	}
	return b.String()
}

// GroupWatchdog is the sharded-run forward-progress monitor. The serial
// watchdog schedules check events, which a sharded run cannot afford: an
// extra event per interval would perturb window contents and break the
// serial/parallel byte-equality contract. Instead this watchdog piggybacks
// on the window barrier — a point where every shard is provably quiescent —
// and compares each shard engine's executed-event count against the last
// barrier at which that shard made progress. A shard that executes nothing
// for a full interval while its own registry shows outstanding transactions
// is wedged; the diagnosis names it. A second detector covers total
// wedges the barrier hook cannot see: if the whole group drains (StepWindow
// returns false) while occupancy gauges are still nonzero, callbacks were
// lost and the run stalled silently — Run/RunUntilHalted call drained() for
// that case.
type GroupWatchdog struct {
	p        *Prototype
	interval sim.Time
	lastExec []uint64   // executed-event count per shard at its last progress
	lastAt   []sim.Time // group time of that last progress
	fired    bool
}

// EnableGroupWatchdog arms the sharded watchdog; Build calls it when
// WatchdogInterval is set on a parallel configuration. It chains onto any
// Group.OnBarrier hook already installed and schedules no events.
func (p *Prototype) EnableGroupWatchdog(interval sim.Time) *GroupWatchdog {
	if p.Group == nil {
		panic("core: EnableGroupWatchdog needs a sharded build; use EnableWatchdog")
	}
	w := &GroupWatchdog{
		p:        p,
		interval: interval,
		lastExec: make([]uint64, p.Group.Shards()),
		lastAt:   make([]sim.Time, p.Group.Shards()),
	}
	prev := p.Group.OnBarrier
	p.Group.OnBarrier = func() {
		if prev != nil {
			prev()
		}
		w.check()
	}
	p.GroupWatchdog = w
	return w
}

// Fired reports whether the watchdog has recorded a stall diagnosis.
func (w *GroupWatchdog) Fired() bool { return w != nil && w.fired }

// check runs at every window barrier, while all shards are parked.
func (w *GroupWatchdog) check() {
	if w.fired {
		return
	}
	now := w.p.Group.Now()
	for i := range w.lastExec {
		e := w.p.Group.Engine(i).Executed()
		if e != w.lastExec[i] {
			w.lastExec[i], w.lastAt[i] = e, now
			continue
		}
		if now-w.lastAt[i] < w.interval {
			continue
		}
		if !w.p.shardHasInflight(i) {
			// Idle, not wedged (e.g. this FPGA's cores halted early);
			// restart its clock so later traffic gets a full interval.
			w.lastAt[i] = now
			continue
		}
		w.fired = true
		w.p.StallDiagnosis = w.p.shardStallDiagnosis(i, w.interval)
		return
	}
}

// drained runs after the group's event queues empty: a drain with
// transactions still outstanding means callbacks were dropped and the run
// wedged without ever reaching another barrier check. Nil-safe (serial
// builds and unwatched sharded builds have no GroupWatchdog).
func (w *GroupWatchdog) drained() {
	if w == nil || w.fired {
		return
	}
	for i := range w.lastExec {
		if w.p.shardHasInflight(i) {
			w.fired = true
			w.p.StallDiagnosis = w.p.shardStallDiagnosis(i, w.interval)
			return
		}
	}
}

// shardHasInflight is hasInflight scoped to one shard's registry.
func (p *Prototype) shardHasInflight(shard int) bool {
	s := p.shardStats[shard]
	if s == nil {
		return false
	}
	for _, name := range s.GaugeNames() {
		if v, ok := s.GaugeValue(name); ok && v != 0 {
			return true
		}
	}
	return false
}

// shardStallDiagnosis renders the sharded watchdog's dump, naming the
// wedged shard and listing where its outstanding work is stuck.
func (p *Prototype) shardStallDiagnosis(shard int, interval sim.Time) string {
	var b strings.Builder
	kind := "fpga"
	if p.Cfg.Granularity() == "node" {
		kind = "node"
	}
	fmt.Fprintf(&b, "WATCHDOG: shard %d (%s%d) made no forward progress for %d cycles at cycle %d with transactions in flight\n",
		shard, kind, shard, interval, p.Group.Now())
	fmt.Fprintf(&b, "outstanding on shard %d (nonzero gauges):\n", shard)
	s := p.shardStats[shard]
	for _, name := range s.GaugeNames() {
		if v, ok := s.GaugeValue(name); ok && v != 0 {
			fmt.Fprintf(&b, "  %-40s %d\n", name, v)
		}
	}
	if p.Injector != nil {
		b.WriteString("fault sites:\n")
		b.WriteString(p.Injector.String())
	}
	return b.String()
}
