package core

import (
	"bytes"
	"strings"
	"testing"

	"smappic/internal/cache"
	"smappic/internal/fault"
	"smappic/internal/sim"
)

// runStoreWorkload builds a 2-node prototype in the requested mode, streams
// 16 stores from node 0 into node 1's DRAM, runs to quiescence and returns
// the prototype plus how many stores completed.
func runStoreWorkload(t *testing.T, parallel int, faults string, watchdog sim.Time) (*Prototype, int) {
	t.Helper()
	cfg := DefaultConfig(2, 1, 2)
	cfg.Core = CoreNone
	cfg.Parallel = parallel
	cfg.WatchdogInterval = watchdog
	if faults != "" {
		cfg.Faults = fault.MustParse(faults, 1)
	}
	p, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	port := p.PortAt(cache.GID{Node: 0, Tile: 0})
	remote := p.Map.NodeDRAMBase(1) + 0x200000
	completed := 0
	sim.Go(p.engs[0], "wl", func(proc *sim.Process) {
		for i := uint64(0); i < 16; i++ {
			port.Store(proc, remote+i*64, 8, i)
			completed++
		}
	})
	p.Run()
	return p, completed
}

// TestGroupWatchdogDiagnosesWedgedShard wedges a sharded run with a hung
// PCIe link and requires the barrier-hook watchdog to terminate the run with
// a diagnosis that names the stuck shard.
func TestGroupWatchdogDiagnosesWedgedShard(t *testing.T) {
	p, completed := runStoreWorkload(t, 2, "pcie.ep0.link.hang:after=4", 100_000)
	if completed == 16 {
		t.Error("every store completed despite the hung link")
	}
	if !p.GroupWatchdog.Fired() {
		t.Fatalf("sharded watchdog did not fire (%d/16 stores completed)", completed)
	}
	diag := p.StallDiagnosis
	if !strings.Contains(diag, "WATCHDOG: shard 0 (fpga0)") {
		t.Errorf("diagnosis does not name the wedged shard:\n%s", diag)
	}
	if !strings.Contains(diag, "mshr_occ") {
		t.Errorf("diagnosis does not name the stuck MSHR:\n%s", diag)
	}
	if !strings.Contains(diag, "HUNG") {
		t.Errorf("diagnosis does not show the hung fault site:\n%s", diag)
	}
	if !strings.Contains(p.Report(), "WATCHDOG") {
		t.Error("Report() does not include the diagnosis")
	}
}

// TestGroupWatchdogNonPerturbing runs the same traffic serial-unarmed,
// sharded-unarmed and sharded-armed: the armed run must be byte-identical to
// both, because the sharded watchdog only reads state at window barriers and
// never schedules an event.
func TestGroupWatchdogNonPerturbing(t *testing.T) {
	metricsOf := func(p *Prototype) []byte {
		t.Helper()
		m, err := p.MetricsJSON()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	serial, n1 := runStoreWorkload(t, 0, "", 0)
	unarmed, n2 := runStoreWorkload(t, 2, "", 0)
	armed, n3 := runStoreWorkload(t, 2, "", 10_000)
	if n1 != 16 || n2 != 16 || n3 != 16 {
		t.Fatalf("stores completed: serial %d, sharded %d, sharded+watchdog %d; want 16 each", n1, n2, n3)
	}
	if armed.GroupWatchdog.Fired() {
		t.Fatalf("watchdog fired on a healthy run:\n%s", armed.StallDiagnosis)
	}
	if serial.Now() != unarmed.Now() || unarmed.Now() != armed.Now() {
		t.Errorf("final times diverge: serial %d, sharded %d, sharded+watchdog %d",
			serial.Now(), unarmed.Now(), armed.Now())
	}
	ms, mu, ma := metricsOf(serial), metricsOf(unarmed), metricsOf(armed)
	if !bytes.Equal(mu, ma) {
		t.Error("arming the sharded watchdog changed the metrics document")
	}
	if !bytes.Equal(ms, ma) {
		t.Error("sharded+watchdog metrics diverge from the serial reference")
	}
}
