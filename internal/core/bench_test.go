package core

import (
	"testing"

	"smappic/internal/cache"
	"smappic/internal/sim"
)

// BenchmarkL1Hit measures the simulator's throughput on the hot path: an
// L1-resident load through the workload port.
func BenchmarkL1Hit(b *testing.B) {
	cfg := DefaultConfig(1, 1, 2)
	cfg.Core = CoreNone
	p, err := Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	port := p.PortAt(cache.GID{Node: 0, Tile: 0})
	addr := p.Map.NodeDRAMBase(0) + 0x4000
	b.ResetTimer()
	sim.Go(p.Eng, "bench", func(proc *sim.Process) {
		for i := 0; i < b.N; i++ {
			port.Load(proc, addr, 8)
		}
	})
	p.Run()
}

// BenchmarkLLCMissPath measures a full BPC-miss/LLC-hit round trip.
func BenchmarkLLCMissPath(b *testing.B) {
	cfg := DefaultConfig(1, 1, 2)
	cfg.Core = CoreNone
	p, err := Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	port := p.PortAt(cache.GID{Node: 0, Tile: 0})
	base := p.Map.NodeDRAMBase(0) + 0x100000
	b.ResetTimer()
	sim.Go(p.Eng, "bench", func(proc *sim.Process) {
		for i := 0; i < b.N; i++ {
			// Stride over a region larger than the BPC to keep missing.
			port.Load(proc, base+uint64(i%512)*64, 8)
		}
	})
	p.Run()
}

// BenchmarkCrossNodeAccess measures the full inter-node bridge + PCIe path.
func BenchmarkCrossNodeAccess(b *testing.B) {
	cfg := DefaultConfig(2, 1, 2)
	cfg.Core = CoreNone
	p, err := Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	port := p.PortAt(cache.GID{Node: 0, Tile: 0})
	remote := p.Map.NodeDRAMBase(1) + 0x100000
	b.ResetTimer()
	sim.Go(p.Eng, "bench", func(proc *sim.Process) {
		for i := 0; i < b.N; i++ {
			port.Load(proc, remote+uint64(i%512)*64, 8)
		}
	})
	p.Run()
}

// BenchmarkRISCVMIPS measures functional core throughput (simulated
// instructions per wall-clock second) on a tight register loop.
func BenchmarkRISCVMIPS(b *testing.B) {
	cfg := DefaultConfig(1, 1, 1)
	p, err := Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Hand-assembled: addi t0,t0,1; j -4 — an infinite two-instruction loop.
	p.Backing.WriteU32(ResetPC, 0x00128293)
	p.Backing.WriteU32(ResetPC+4, 0xFFDFF06F)
	core := p.Nodes[0].Tiles[0].Core
	b.ResetTimer()
	sim.Go(p.Eng, "hart", func(proc *sim.Process) { core.Run(proc, uint64(b.N)) })
	p.Run()
	b.ReportMetric(float64(core.InstRet())/b.Elapsed().Seconds()/1e6, "MIPS")
}

// BenchmarkPrototypeBuild measures configuration-to-prototype time (the
// simulated analogue of image generation).
func BenchmarkPrototypeBuild(b *testing.B) {
	cfg := DefaultConfig(4, 1, 12)
	cfg.Core = CoreNone
	for i := 0; i < b.N; i++ {
		if _, err := Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
