package pcie

import (
	"testing"

	"smappic/internal/axi"
	"smappic/internal/fault"
	"smappic/internal/sim"
)

func TestDoubleAttachPanics(t *testing.T) {
	f := New(sim.NewEngine(), DefaultParams(), nil)
	f.Attach(1, &echoTarget{})
	defer func() {
		if recover() == nil {
			t.Error("double Attach(1) did not panic")
		}
	}()
	f.Attach(1, &echoTarget{})
}

func TestErrorResponsePaysLatency(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, DefaultParams(), nil)
	base, _ := f.Window(3) // nothing attached
	var at sim.Time
	var resp *axi.WriteResp
	f.Master(0).Write(&axi.WriteReq{Addr: base}, func(r *axi.WriteResp) { resp, at = r, eng.Now() })
	eng.Run()
	if resp == nil || resp.OK {
		t.Fatal("write to unattached endpoint should fail")
	}
	if at != DefaultParams().OneWay {
		t.Fatalf("error response at %d, want one-way latency %d", at, DefaultParams().OneWay)
	}
}

func TestReliableDeliveryUnderDrops(t *testing.T) {
	eng := sim.NewEngine()
	var st sim.Stats
	f := New(eng, DefaultParams(), &st)
	f.SetInjector(fault.NewInjector(eng, fault.MustParse("pcie.ep0.link.drop:p=0.3", 11)))
	dst := &echoTarget{}
	f.Attach(1, dst)
	base, _ := f.Window(1)

	oks := 0
	const n = 100
	for i := 0; i < n; i++ {
		f.Master(0).Write(&axi.WriteReq{Addr: base + axi.Addr(i*64), Data: make([]byte, 64)},
			func(r *axi.WriteResp) {
				if r.OK {
					oks++
				}
			})
	}
	eng.Run()
	if oks != n {
		t.Fatalf("%d/%d writes delivered under 30%% loss", oks, n)
	}
	if len(dst.writes) != n {
		t.Fatalf("destination applied %d writes, want exactly %d (dedup broken)", len(dst.writes), n)
	}
	if st.Get("pcie.ep0.retransmits") == 0 {
		t.Error("no retransmits counted under 30% loss")
	}
	if st.Get("pcie.ep0.link_drops") == 0 {
		t.Error("no drops counted")
	}
}

func TestCorruptionIsRetransmitted(t *testing.T) {
	eng := sim.NewEngine()
	var st sim.Stats
	f := New(eng, DefaultParams(), &st)
	f.SetInjector(fault.NewInjector(eng, fault.MustParse("pcie.ep0.link.corrupt:n=1", 3)))
	f.Attach(1, &echoTarget{})
	base, _ := f.Window(1)
	var resp *axi.ReadResp
	f.Master(0).Read(&axi.ReadReq{Addr: base, Len: 64}, func(r *axi.ReadResp) { resp = r })
	eng.Run()
	if resp == nil || !resp.OK {
		t.Fatal("read did not survive one corrupted request")
	}
	if st.Get("pcie.ep0.link_corrupt") != 1 || st.Get("pcie.ep0.retransmits") != 1 {
		t.Fatalf("corrupt=%d retransmits=%d, want 1/1",
			st.Get("pcie.ep0.link_corrupt"), st.Get("pcie.ep0.retransmits"))
	}
}

func TestHungEndpointGivesUpWithError(t *testing.T) {
	eng := sim.NewEngine()
	var st sim.Stats
	f := New(eng, DefaultParams(), &st)
	f.SetInjector(fault.NewInjector(eng, fault.MustParse("pcie.ep0.link.hang", 1)))
	f.Attach(1, &echoTarget{})
	base, _ := f.Window(1)
	var resp *axi.WriteResp
	f.Master(0).Write(&axi.WriteReq{Addr: base, Data: make([]byte, 64)}, func(r *axi.WriteResp) { resp = r })
	eng.Run()
	if resp == nil {
		t.Fatal("hung link must produce a response, not a silent hang")
	}
	if resp.OK {
		t.Fatal("hung link produced OK:true")
	}
	if st.Get("pcie.ep0.link_failed") != 1 {
		t.Fatalf("link_failed = %d, want 1", st.Get("pcie.ep0.link_failed"))
	}
	if st.Get("pcie.ep0.retransmits") != maxAttempts-1 {
		t.Fatalf("retransmits = %d, want %d", st.Get("pcie.ep0.retransmits"), maxAttempts-1)
	}
	if g := st.Get("pcie.ep0.inflight"); g != 0 {
		t.Fatalf("inflight gauge leaked: %d", g)
	}
}

// TestFaultFreePlanMatchesNoInjector pins the zero-cost property: an injector
// whose rules never fire must leave transfer timing identical to no injector
// at all.
func TestFaultFreePlanMatchesNoInjector(t *testing.T) {
	run := func(inj bool) sim.Time {
		eng := sim.NewEngine()
		f := New(eng, DefaultParams(), nil)
		if inj {
			f.SetInjector(fault.NewInjector(eng, fault.MustParse("pcie.*.drop:p=0", 1)))
		}
		f.Attach(1, &echoTarget{})
		base, _ := f.Window(1)
		var at sim.Time
		for i := 0; i < 10; i++ {
			f.Master(0).Write(&axi.WriteReq{Addr: base, Data: make([]byte, 256)},
				func(*axi.WriteResp) { at = eng.Now() })
		}
		eng.Run()
		return at
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("fault-free plan changed timing: %d vs %d", a, b)
	}
}

func TestDelayFaultAddsLatency(t *testing.T) {
	rtt := func(spec string) sim.Time {
		eng := sim.NewEngine()
		f := New(eng, DefaultParams(), nil)
		if spec != "" {
			f.SetInjector(fault.NewInjector(eng, fault.MustParse(spec, 1)))
		}
		f.Attach(1, &echoTarget{})
		base, _ := f.Window(1)
		var at sim.Time
		f.Master(0).Read(&axi.ReadReq{Addr: base, Len: 24}, func(*axi.ReadResp) { at = eng.Now() })
		eng.Run()
		return at
	}
	clean := rtt("")
	delayed := rtt("pcie.ep0.link.delay:cycles=40,n=1")
	if delayed != clean+40 {
		t.Fatalf("delay fault: rtt %d vs clean %d, want +40", delayed, clean)
	}
}
