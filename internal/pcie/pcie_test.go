package pcie

import (
	"testing"

	"smappic/internal/axi"
	"smappic/internal/sim"
)

// echoTarget acks writes and returns canned data for reads.
type echoTarget struct {
	writes []axi.WriteReq
	reads  []axi.ReadReq
}

func (e *echoTarget) Write(req *axi.WriteReq, done func(*axi.WriteResp)) {
	e.writes = append(e.writes, *req)
	done(&axi.WriteResp{ID: req.ID, OK: true})
}

func (e *echoTarget) Read(req *axi.ReadReq, done func(*axi.ReadResp)) {
	e.reads = append(e.reads, *req)
	done(&axi.ReadResp{ID: req.ID, Data: make([]byte, req.Len), OK: true})
}

func TestRouteByWindow(t *testing.T) {
	f := New(sim.NewEngine(), DefaultParams(), nil)
	for i := 0; i < MaxFPGAs; i++ {
		base, _ := f.Window(i)
		if got := f.RouteOf(base); got != i {
			t.Errorf("RouteOf(window %d base) = %d", i, got)
		}
		if got := f.RouteOf(base + 12345); got != i {
			t.Errorf("RouteOf(window %d interior) = %d", i, got)
		}
	}
	if got := f.RouteOf(0x1000); got != HostID {
		t.Errorf("RouteOf(low addr) = %d, want host", got)
	}
}

func TestLocalAddrStripsWindow(t *testing.T) {
	f := New(sim.NewEngine(), DefaultParams(), nil)
	base, _ := f.Window(2)
	if got := f.LocalAddr(base + 0xABC); got != 0xABC {
		t.Errorf("LocalAddr = %#x, want 0xABC", got)
	}
	if got := f.LocalAddr(0x5000); got != 0x5000 {
		t.Errorf("host LocalAddr = %#x, want unchanged", got)
	}
}

func TestFPGAToFPGAWriteBypassesHost(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, DefaultParams(), nil)
	host := &echoTarget{}
	fpga1 := &echoTarget{}
	f.Attach(HostID, host)
	f.Attach(1, fpga1)

	base, _ := f.Window(1)
	var resp *axi.WriteResp
	f.Master(0).Write(&axi.WriteReq{Addr: base + 0x40, Data: make([]byte, 64)}, func(r *axi.WriteResp) { resp = r })
	eng.Run()
	if resp == nil || !resp.OK {
		t.Fatal("write did not complete")
	}
	if len(host.writes) != 0 {
		t.Error("FPGA-to-FPGA transfer touched the host")
	}
	if len(fpga1.writes) != 1 || fpga1.writes[0].Addr != 0x40 {
		t.Fatalf("FPGA1 saw %+v", fpga1.writes)
	}
}

func TestRoundTripLatencyNear125Cycles(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, DefaultParams(), nil)
	f.Attach(1, &echoTarget{})
	base, _ := f.Window(1)

	var done sim.Time
	f.Master(0).Read(&axi.ReadReq{Addr: base, Len: 24}, func(r *axi.ReadResp) { done = eng.Now() })
	eng.Run()
	// Two crossings at 60 + serialization each; the shell's conversion adds
	// the last couple of cycles toward the paper's 125-cycle RTT.
	if done < 115 || done > 130 {
		t.Fatalf("PCIe RTT = %d cycles, want ~122 (125 with shell conversion)", done)
	}
}

func TestUnattachedEndpointFails(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, DefaultParams(), nil)
	base, _ := f.Window(3)
	var resp *axi.WriteResp
	f.Master(0).Write(&axi.WriteReq{Addr: base}, func(r *axi.WriteResp) { resp = r })
	eng.Run()
	if resp == nil || resp.OK {
		t.Fatal("write to unattached endpoint should fail")
	}
}

func TestEgressSerialization(t *testing.T) {
	eng := sim.NewEngine()
	p := DefaultParams()
	p.BytesPerCycle = 64
	f := New(eng, p, nil)
	f.Attach(1, &echoTarget{})
	base, _ := f.Window(1)

	var times []sim.Time
	// Two 640-byte writes = 10 egress beats each from the same endpoint.
	for i := 0; i < 2; i++ {
		f.Master(0).Write(&axi.WriteReq{Addr: base, Data: make([]byte, 640)}, func(r *axi.WriteResp) {
			times = append(times, eng.Now())
		})
	}
	eng.Run()
	if len(times) != 2 {
		t.Fatalf("completed %d, want 2", len(times))
	}
	if times[1]-times[0] < 10 {
		t.Errorf("second transfer not serialized: %v", times)
	}
}

func TestStatsCountTraffic(t *testing.T) {
	eng := sim.NewEngine()
	var st sim.Stats
	f := New(eng, DefaultParams(), &st)
	f.Attach(1, &echoTarget{})
	base, _ := f.Window(1)
	f.Master(0).Write(&axi.WriteReq{Addr: base, Data: make([]byte, 64)}, func(*axi.WriteResp) {})
	eng.Run()
	if st.Get("pcie.ep0.tx_transfers") == 0 {
		t.Error("tx_transfers not counted")
	}
	if st.Get("pcie.ep1.tx_transfers") == 0 {
		t.Error("response transfer not counted")
	}
}

func TestBadEndpointIDPanics(t *testing.T) {
	f := New(sim.NewEngine(), DefaultParams(), nil)
	defer func() {
		if recover() == nil {
			t.Error("Attach(9) did not panic")
		}
	}()
	f.Attach(9, &echoTarget{})
}
