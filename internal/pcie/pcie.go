// Package pcie models the PCIe Gen3 x16 fabric inside an AWS F1 instance:
// up to four FPGAs and the host CPU hang off one low-latency switch, and
// FPGA-to-FPGA transfers travel directly without touching the host (the
// property SMAPPIC's inter-node interconnect relies on).
//
// The paper measured the inter-FPGA round-trip latency at about 1250 ns,
// i.e. 125 cycles at the 100 MHz prototype clock. The fabric models each
// crossing as a fixed one-way latency plus egress serialization at the
// PCIe link's bandwidth.
package pcie

import (
	"fmt"

	"smappic/internal/axi"
	"smappic/internal/sim"
)

// HostID is the endpoint index of the host CPU's root port.
const HostID = -1

// MaxFPGAs is the number of FPGAs reachable over low-latency PCIe links in
// one F1 instance (f1.16xlarge has 8 FPGAs, but only groups of 4 share a
// low-latency switch — the constraint in paper §4.8).
const MaxFPGAs = 4

// Params configure fabric timing.
type Params struct {
	OneWay        sim.Time // one-way switch latency, cycles
	BytesPerCycle int      // egress link bandwidth
}

// DefaultParams matches the F1 measurements: 60-cycle switch one-way (the
// shell adds conversion cycles on each side for the paper's ~125-cycle RTT)
// and 16 GB/s ~ 160 B/cycle at 100 MHz.
func DefaultParams() Params {
	return Params{OneWay: 60, BytesPerCycle: 160}
}

// epStats is the pre-resolved telemetry of one fabric endpoint; created
// lazily at first traffic, nil instruments when the fabric has no registry.
type epStats struct {
	txBytes     *sim.Counter
	txTransfers *sim.Counter
	rtt         *sim.Histogram // request round-trip as seen by the master
	inflight    *sim.Gauge     // outstanding transactions from this endpoint
}

// Fabric is the PCIe switch connecting FPGAs and the host.
type Fabric struct {
	eng    *sim.Engine
	p      Params
	stats  *sim.Stats
	eps    map[int]axi.Target
	egress map[int]sim.Time // per-endpoint egress link reservation
	epTel  map[int]*epStats
	// Address windows: FPGA i owns [WindowBase + i*WindowSize, +WindowSize).
	// Anything else routes to the host.
	windowBase axi.Addr
	windowSize uint64
}

// WindowSize is each FPGA's aperture in the host PCIe address space.
const WindowSize uint64 = 1 << 40

// WindowBase is the start of the FPGA apertures.
const WindowBase axi.Addr = 1 << 44

// New creates a fabric. Attach endpoints before sending.
func New(eng *sim.Engine, p Params, stats *sim.Stats) *Fabric {
	return &Fabric{
		eng:        eng,
		p:          p,
		stats:      stats,
		eps:        make(map[int]axi.Target),
		egress:     make(map[int]sim.Time),
		epTel:      make(map[int]*epStats),
		windowBase: WindowBase,
		windowSize: WindowSize,
	}
}

// ep returns the telemetry of endpoint id, creating it on first use. The
// zero-instrument struct is returned when the fabric has no registry, so
// callers can use the nil-safe instrument methods unconditionally.
func (f *Fabric) ep(id int) *epStats {
	t, ok := f.epTel[id]
	if !ok {
		t = &epStats{}
		if f.stats != nil {
			t.txBytes = f.stats.Counter(fmt.Sprintf("pcie.ep%d.tx_bytes", id))
			t.txTransfers = f.stats.Counter(fmt.Sprintf("pcie.ep%d.tx_transfers", id))
			t.rtt = f.stats.Histogram(fmt.Sprintf("pcie.ep%d.rtt", id))
			t.inflight = f.stats.Gauge(fmt.Sprintf("pcie.ep%d.inflight", id))
		}
		f.epTel[id] = t
	}
	return t
}

// Attach registers the inbound AXI target for endpoint id (an FPGA index in
// [0, MaxFPGAs) or HostID).
func (f *Fabric) Attach(id int, t axi.Target) {
	if id != HostID && (id < 0 || id >= MaxFPGAs) {
		panic(fmt.Sprintf("pcie: endpoint id %d out of range", id))
	}
	f.eps[id] = t
}

// Window returns the PCIe aperture of FPGA id.
func (f *Fabric) Window(id int) (base axi.Addr, size uint64) {
	return f.windowBase + axi.Addr(uint64(id)*f.windowSize), f.windowSize
}

// RouteOf returns the endpoint that owns addr.
func (f *Fabric) RouteOf(addr axi.Addr) int {
	if addr >= f.windowBase {
		i := int(uint64(addr-f.windowBase) / f.windowSize)
		if i < MaxFPGAs {
			return i
		}
	}
	return HostID
}

// LocalAddr strips the window base, returning the address as seen inside the
// destination endpoint.
func (f *Fabric) LocalAddr(addr axi.Addr) axi.Addr {
	if f.RouteOf(addr) == HostID {
		return addr
	}
	base, _ := f.Window(f.RouteOf(addr))
	return addr - base
}

// delay reserves egress bandwidth at src and returns the total transfer
// delay for n bytes.
func (f *Fabric) delay(src, n int) sim.Time {
	beats := sim.Time((n + f.p.BytesPerCycle - 1) / f.p.BytesPerCycle)
	if beats == 0 {
		beats = 1
	}
	start := f.eng.Now()
	if b := f.egress[src]; b > start {
		start = b
	}
	f.egress[src] = start + beats
	t := f.ep(src)
	t.txBytes.Add(uint64(n))
	t.txTransfers.Inc()
	return (start - f.eng.Now()) + beats + f.p.OneWay
}

// port is one endpoint's outbound master interface.
type port struct {
	f   *Fabric
	src int
}

// Master returns the outbound AXI interface of endpoint src. Writes and
// reads are routed by address to the owning endpoint; responses pay the
// return crossing.
func (f *Fabric) Master(src int) axi.Target { return &port{f: f, src: src} }

func (p *port) deliver(dstID, nbytes int, fwd func(axi.Target), fail func()) {
	dst, ok := p.f.eps[dstID]
	if !ok {
		fail()
		return
	}
	p.f.eng.Schedule(p.f.delay(p.src, nbytes), func() { fwd(dst) })
}

func (p *port) Write(req *axi.WriteReq, done func(*axi.WriteResp)) {
	dstID := p.f.RouteOf(req.Addr)
	local := &axi.WriteReq{Addr: p.f.LocalAddr(req.Addr), ID: req.ID, Data: req.Data, User: req.User}
	tel := p.f.ep(p.src)
	start := p.f.eng.Now()
	tel.inflight.Inc()
	p.deliver(dstID, len(req.Data), func(dst axi.Target) {
		dst.Write(local, func(r *axi.WriteResp) {
			// b-channel response crosses back (small TLP).
			p.f.eng.Schedule(p.f.delay(dstID, 4), func() {
				tel.rtt.Observe(uint64(p.f.eng.Now() - start))
				tel.inflight.Dec()
				done(r)
			})
		})
	}, func() { tel.inflight.Dec(); done(&axi.WriteResp{ID: req.ID, OK: false}) })
}

func (p *port) Read(req *axi.ReadReq, done func(*axi.ReadResp)) {
	dstID := p.f.RouteOf(req.Addr)
	local := &axi.ReadReq{Addr: p.f.LocalAddr(req.Addr), ID: req.ID, Len: req.Len}
	tel := p.f.ep(p.src)
	start := p.f.eng.Now()
	tel.inflight.Inc()
	p.deliver(dstID, 4, func(dst axi.Target) {
		dst.Read(local, func(r *axi.ReadResp) {
			// r-channel data crosses back.
			p.f.eng.Schedule(p.f.delay(dstID, req.Len), func() {
				tel.rtt.Observe(uint64(p.f.eng.Now() - start))
				tel.inflight.Dec()
				done(r)
			})
		})
	}, func() { tel.inflight.Dec(); done(&axi.ReadResp{ID: req.ID, OK: false}) })
}
