// Package pcie models the PCIe Gen3 x16 fabric inside an AWS F1 instance:
// up to four FPGAs and the host CPU hang off one low-latency switch, and
// FPGA-to-FPGA transfers travel directly without touching the host (the
// property SMAPPIC's inter-node interconnect relies on).
//
// The paper measured the inter-FPGA round-trip latency at about 1250 ns,
// i.e. 125 cycles at the 100 MHz prototype clock. The fabric models each
// crossing as a fixed one-way latency plus egress serialization at the
// PCIe link's bandwidth.
package pcie

import (
	"fmt"

	"smappic/internal/axi"
	"smappic/internal/fault"
	"smappic/internal/sim"
)

// HostID is the endpoint index of the host CPU's root port.
const HostID = -1

// MaxFPGAs is the number of FPGAs reachable over low-latency PCIe links in
// one F1 instance (f1.16xlarge has 8 FPGAs, but only groups of 4 share a
// low-latency switch — the constraint in paper §4.8).
const MaxFPGAs = 4

// Params configure fabric timing.
type Params struct {
	OneWay        sim.Time // one-way switch latency, cycles
	BytesPerCycle int      // egress link bandwidth
}

// DefaultParams matches the F1 measurements: 60-cycle switch one-way (the
// shell adds conversion cycles on each side for the paper's ~125-cycle RTT)
// and 16 GB/s ~ 160 B/cycle at 100 MHz.
func DefaultParams() Params {
	return Params{OneWay: 60, BytesPerCycle: 160}
}

// epStats is the pre-resolved telemetry of one fabric endpoint; created
// lazily at first traffic, nil instruments when the fabric has no registry.
// The reliability counters are created eagerly alongside the rest so a run
// with a fault-free plan reports the same metric set (all zero) as a run with
// no injector at all.
type epStats struct {
	txBytes     *sim.Counter
	txTransfers *sim.Counter
	rtt         *sim.Histogram // request round-trip as seen by the master
	inflight    *sim.Gauge     // outstanding transactions from this endpoint

	retransmits *sim.Counter // reliable-link retransmissions issued
	linkDrops   *sim.Counter // transfers lost at this endpoint's egress
	linkCorrupt *sim.Counter // transfers the receiver's checksum rejected
	linkFailed  *sim.Counter // exchanges that exhausted retries (OK:false)

	site *fault.Site // egress fault site ("pcie.epN.link"), nil when clean
}

// Fabric is the PCIe switch connecting FPGAs and the host.
type Fabric struct {
	eng    *sim.Engine
	p      Params
	stats  *sim.Stats
	inj    *fault.Injector
	eps    map[int]axi.Target
	egress map[int]sim.Time // per-endpoint egress link reservation
	epTel  map[int]*epStats
	rel    map[pair]*relState // reliable-link state per directed endpoint pair
	// Address windows: FPGA i owns [WindowBase + i*WindowSize, +WindowSize).
	// Anything else routes to the host.
	windowBase axi.Addr
	windowSize uint64
}

// WindowSize is each FPGA's aperture in the host PCIe address space.
const WindowSize uint64 = 1 << 40

// WindowBase is the start of the FPGA apertures.
const WindowBase axi.Addr = 1 << 44

// New creates a fabric. Attach endpoints before sending.
func New(eng *sim.Engine, p Params, stats *sim.Stats) *Fabric {
	return &Fabric{
		eng:        eng,
		p:          p,
		stats:      stats,
		eps:        make(map[int]axi.Target),
		egress:     make(map[int]sim.Time),
		epTel:      make(map[int]*epStats),
		rel:        make(map[pair]*relState),
		windowBase: WindowBase,
		windowSize: WindowSize,
	}
}

// SetInjector attaches a fault injector. Each endpoint resolves its egress
// fault site "pcie.epN.link" at first traffic, so the injector must be set
// before the fabric carries transfers. A nil injector leaves every link
// infallible (the default).
func (f *Fabric) SetInjector(inj *fault.Injector) { f.inj = inj }

// ep returns the telemetry of endpoint id, creating it on first use. The
// zero-instrument struct is returned when the fabric has no registry, so
// callers can use the nil-safe instrument methods unconditionally.
func (f *Fabric) ep(id int) *epStats {
	t, ok := f.epTel[id]
	if !ok {
		t = &epStats{}
		if f.stats != nil {
			t.txBytes = f.stats.Counter(fmt.Sprintf("pcie.ep%d.tx_bytes", id))
			t.txTransfers = f.stats.Counter(fmt.Sprintf("pcie.ep%d.tx_transfers", id))
			t.rtt = f.stats.Histogram(fmt.Sprintf("pcie.ep%d.rtt", id))
			t.inflight = f.stats.Gauge(fmt.Sprintf("pcie.ep%d.inflight", id))
			t.retransmits = f.stats.Counter(fmt.Sprintf("pcie.ep%d.retransmits", id))
			t.linkDrops = f.stats.Counter(fmt.Sprintf("pcie.ep%d.link_drops", id))
			t.linkCorrupt = f.stats.Counter(fmt.Sprintf("pcie.ep%d.link_corrupt", id))
			t.linkFailed = f.stats.Counter(fmt.Sprintf("pcie.ep%d.link_failed", id))
		}
		t.site = f.inj.Site(fmt.Sprintf("pcie.ep%d.link", id))
		f.epTel[id] = t
	}
	return t
}

// Attach registers the inbound AXI target for endpoint id (an FPGA index in
// [0, MaxFPGAs) or HostID).
func (f *Fabric) Attach(id int, t axi.Target) {
	if id != HostID && (id < 0 || id >= MaxFPGAs) {
		panic(fmt.Sprintf("pcie: endpoint id %d out of range", id))
	}
	if _, dup := f.eps[id]; dup {
		panic(fmt.Sprintf("pcie: endpoint id %d attached twice", id))
	}
	f.eps[id] = t
}

// Window returns the PCIe aperture of FPGA id.
func (f *Fabric) Window(id int) (base axi.Addr, size uint64) {
	return f.windowBase + axi.Addr(uint64(id)*f.windowSize), f.windowSize
}

// RouteOf returns the endpoint that owns addr.
func (f *Fabric) RouteOf(addr axi.Addr) int {
	if addr >= f.windowBase {
		i := int(uint64(addr-f.windowBase) / f.windowSize)
		if i < MaxFPGAs {
			return i
		}
	}
	return HostID
}

// LocalAddr strips the window base, returning the address as seen inside the
// destination endpoint.
func (f *Fabric) LocalAddr(addr axi.Addr) axi.Addr {
	if f.RouteOf(addr) == HostID {
		return addr
	}
	base, _ := f.Window(f.RouteOf(addr))
	return addr - base
}

// delay reserves egress bandwidth at src and returns the total transfer
// delay for n bytes.
func (f *Fabric) delay(src, n int) sim.Time {
	beats := sim.Time((n + f.p.BytesPerCycle - 1) / f.p.BytesPerCycle)
	if beats == 0 {
		beats = 1
	}
	start := f.eng.Now()
	if b := f.egress[src]; b > start {
		start = b
	}
	f.egress[src] = start + beats
	t := f.ep(src)
	t.txBytes.Add(uint64(n))
	t.txTransfers.Inc()
	return (start - f.eng.Now()) + beats + f.p.OneWay
}

// Reliable link layer
//
// When a fault injector puts a site on an endpoint's link, every exchange
// crossing that endpoint runs a lightweight reliability protocol modeled on
// PCIe's own DLLP layer: the request carries a per-(src,dst) sequence number
// and a checksum, the receiver deduplicates retransmissions against a replay
// cache, and the sender arms an ACK timeout with capped exponential backoff.
// After maxAttempts the sender gives up and propagates OK:false instead of
// hanging. Endpoints without fault sites keep the original two-crossing fast
// path with byte-identical timing and metrics.

const (
	// maxAttempts bounds retransmission: one original send plus seven
	// retries, after which the exchange fails with OK:false.
	maxAttempts = 8
	// backoffCap caps the exponential timeout multiplier (1, 2, 4, 8, 8...).
	backoffCap = 8
	// replayWindow is how many completed sequence numbers the receiver keeps
	// for duplicate detection before pruning.
	replayWindow = 256
	// timeoutSlack pads the ACK timeout beyond the nominal round trip to
	// absorb egress queueing. A late ACK only costs a spurious (deduplicated)
	// retransmit, never correctness.
	timeoutSlack = 64
)

// pair identifies a directed endpoint pair.
type pair struct{ src, dst int }

// relState is the reliable-link state of one directed pair: the sender's next
// sequence number and the receiver's replay cache. A cache entry present but
// nil marks a request still being processed by the destination; a non-nil
// entry holds the response for replay if the ACK was lost.
type relState struct {
	nextSeq uint64
	cache   map[uint64]any
}

func (f *Fabric) relOf(src, dst int) *relState {
	k := pair{src, dst}
	st, ok := f.rel[k]
	if !ok {
		st = &relState{cache: make(map[uint64]any)}
		f.rel[k] = st
	}
	return st
}

// cross moves nbytes out of endpoint ep, consulting its fault site. then runs
// after the crossing delay when the transfer survives; a dropped, corrupted
// or hung transfer is counted and silently lost (a corrupted payload is
// delivered but fails the receiver's checksum, which comes to the same
// thing — the sender's timeout recovers either way).
func (f *Fabric) cross(ep, nbytes int, then func()) {
	tel := f.ep(ep)
	d := f.delay(ep, nbytes)
	fate := tel.site.Transfer()
	if fate.Drop {
		tel.linkDrops.Inc()
		return
	}
	if fate.Corrupt {
		tel.linkCorrupt.Inc()
		return
	}
	f.eng.Schedule(d+fate.Extra, then)
}

// xchg is one request/response exchange running the reliability protocol.
type xchg struct {
	f                   *Fabric
	src, dst            int
	fwdBytes, respBytes int
	seq                 uint64
	st                  *relState
	invoke              func(reply func(any))
	finish              func(any)
	attempts            int
	timer               *sim.Timer
	done                bool
}

// exchange performs a request/response exchange from src to dst. invoke calls
// the destination target and must hand the response to its callback exactly
// once; finish receives that response, or nil when the link gave up after
// maxAttempts. With no fault site on either endpoint this is a plain pair of
// crossings — the fast path, byte-identical to the pre-fault model.
func (f *Fabric) exchange(src, dst int, fwdBytes, respBytes int, invoke func(reply func(any)), finish func(any)) {
	if f.ep(src).site == nil && f.ep(dst).site == nil {
		f.eng.Schedule(f.delay(src, fwdBytes), func() {
			invoke(func(r any) {
				f.eng.Schedule(f.delay(dst, respBytes), func() { finish(r) })
			})
		})
		return
	}
	st := f.relOf(src, dst)
	x := &xchg{
		f: f, src: src, dst: dst,
		fwdBytes: fwdBytes, respBytes: respBytes,
		seq: st.nextSeq, st: st,
		invoke: invoke, finish: finish,
	}
	st.nextSeq++
	x.attempt()
}

// baseTimeout is the nominal exchange round trip plus slack.
func (x *xchg) baseTimeout() sim.Time {
	bpc := x.f.p.BytesPerCycle
	beats := sim.Time((x.fwdBytes + x.respBytes + bpc - 1) / bpc)
	return 2*x.f.p.OneWay + beats + timeoutSlack
}

func (x *xchg) attempt() {
	x.attempts++
	mult := sim.Time(1) << (x.attempts - 1)
	if mult > backoffCap {
		mult = backoffCap
	}
	x.timer = x.f.eng.After(x.baseTimeout()*mult, x.timeout)
	x.f.cross(x.src, x.fwdBytes, x.deliver)
}

// deliver runs at the receiver after a surviving forward crossing.
func (x *xchg) deliver() {
	if r, seen := x.st.cache[x.seq]; seen {
		// Duplicate of a retransmitted request. If the destination already
		// responded, replay the cached response; otherwise the original
		// invocation is still in flight and will respond itself.
		if r != nil {
			x.sendResp(r)
		}
		return
	}
	x.st.cache[x.seq] = nil
	if x.seq >= replayWindow {
		delete(x.st.cache, x.seq-replayWindow)
	}
	x.invoke(func(r any) {
		x.st.cache[x.seq] = r
		x.sendResp(r)
	})
}

func (x *xchg) sendResp(r any) {
	x.f.cross(x.dst, x.respBytes, func() { x.complete(r) })
}

func (x *xchg) complete(r any) {
	if x.done {
		return // a duplicate response from a spurious retransmit
	}
	x.done = true
	x.timer.Cancel()
	x.finish(r)
}

func (x *xchg) timeout() {
	if x.done {
		return
	}
	if x.attempts >= maxAttempts {
		x.done = true
		x.f.ep(x.src).linkFailed.Inc()
		x.finish(nil)
		return
	}
	x.f.ep(x.src).retransmits.Inc()
	x.attempt()
}

// port is one endpoint's outbound master interface.
type port struct {
	f   *Fabric
	src int
}

// Master returns the outbound AXI interface of endpoint src. Writes and
// reads are routed by address to the owning endpoint; responses pay the
// return crossing.
func (f *Fabric) Master(src int) axi.Target { return &port{f: f, src: src} }

// fail schedules an OK:false response for an unrouteable request. The error
// still pays the one-way switch latency: the request has to reach the switch
// before anything can reject it.
func (p *port) fail(tel *epStats, respond func()) {
	p.f.eng.Schedule(p.f.p.OneWay, func() {
		tel.inflight.Dec()
		respond()
	})
}

func (p *port) Write(req *axi.WriteReq, done func(*axi.WriteResp)) {
	f := p.f
	dstID := f.RouteOf(req.Addr)
	local := &axi.WriteReq{Addr: f.LocalAddr(req.Addr), ID: req.ID, Data: req.Data, User: req.User}
	tel := f.ep(p.src)
	start := f.eng.Now()
	tel.inflight.Inc()
	dst, ok := f.eps[dstID]
	if !ok {
		p.fail(tel, func() { done(&axi.WriteResp{ID: req.ID, OK: false}) })
		return
	}
	// b-channel response crosses back as a small TLP.
	f.exchange(p.src, dstID, len(req.Data), 4,
		func(reply func(any)) {
			dst.Write(local, func(r *axi.WriteResp) { reply(r) })
		},
		func(r any) {
			tel.rtt.Observe(uint64(f.eng.Now() - start))
			tel.inflight.Dec()
			if r == nil {
				done(&axi.WriteResp{ID: req.ID, OK: false})
				return
			}
			done(r.(*axi.WriteResp))
		})
}

func (p *port) Read(req *axi.ReadReq, done func(*axi.ReadResp)) {
	f := p.f
	dstID := f.RouteOf(req.Addr)
	local := &axi.ReadReq{Addr: f.LocalAddr(req.Addr), ID: req.ID, Len: req.Len}
	tel := f.ep(p.src)
	start := f.eng.Now()
	tel.inflight.Inc()
	dst, ok := f.eps[dstID]
	if !ok {
		p.fail(tel, func() { done(&axi.ReadResp{ID: req.ID, OK: false}) })
		return
	}
	// r-channel data crosses back.
	f.exchange(p.src, dstID, 4, req.Len,
		func(reply func(any)) {
			dst.Read(local, func(r *axi.ReadResp) { reply(r) })
		},
		func(r any) {
			tel.rtt.Observe(uint64(f.eng.Now() - start))
			tel.inflight.Dec()
			if r == nil {
				done(&axi.ReadResp{ID: req.ID, OK: false})
				return
			}
			done(r.(*axi.ReadResp))
		})
}
