// Package pcie models the PCIe Gen3 x16 fabric inside an AWS F1 instance:
// up to four FPGAs and the host CPU hang off one low-latency switch, and
// FPGA-to-FPGA transfers travel directly without touching the host (the
// property SMAPPIC's inter-node interconnect relies on).
//
// The paper measured the inter-FPGA round-trip latency at about 1250 ns,
// i.e. 125 cycles at the 100 MHz prototype clock. The fabric models each
// crossing as a fixed one-way latency plus egress serialization at the
// PCIe link's bandwidth.
//
// The fabric is the only component that spans FPGA chips, so under sharded
// execution it is the cross-shard boundary: all of its mutable state is
// partitioned per endpoint (engine, egress reservation, telemetry, and the
// per-direction halves of the reliable-link state), and every crossing is
// delivered through a sim.CrossNet, whose canonical ordering keeps serial
// and sharded runs byte-identical. In serial mode an internal SerialNet
// plays that role on the single engine.
package pcie

import (
	"fmt"
	"sort"

	"smappic/internal/axi"
	"smappic/internal/ckpt"
	"smappic/internal/fault"
	"smappic/internal/sim"
)

// HostID is the endpoint index of the host CPU's root port.
const HostID = -1

// MaxFPGAs is the number of FPGAs reachable over low-latency PCIe links in
// one F1 instance (f1.16xlarge has 8 FPGAs, but only groups of 4 share a
// low-latency switch — the constraint in paper §4.8).
const MaxFPGAs = 4

// Params configure fabric timing.
type Params struct {
	OneWay        sim.Time // one-way switch latency, cycles
	BytesPerCycle int      // egress link bandwidth
}

// DefaultParams matches the F1 measurements: 60-cycle switch one-way (the
// shell adds conversion cycles on each side for the paper's ~125-cycle RTT)
// and 16 GB/s ~ 160 B/cycle at 100 MHz.
func DefaultParams() Params {
	return Params{OneWay: 60, BytesPerCycle: 160}
}

// MinCrossing is the smallest possible cycle count between issuing a
// transfer at one endpoint and its arrival at another: the one-way switch
// latency plus at least one egress serialization beat. It lower-bounds
// every CrossNet delivery the fabric makes, so it is the safe lookahead for
// sharded execution.
func (p Params) MinCrossing() sim.Time { return p.OneWay + 1 }

// epStats is the pre-resolved telemetry of one fabric endpoint; nil
// instruments when the fabric has no registry. The reliability counters are
// created eagerly alongside the rest so a run with a fault-free plan
// reports the same metric set (all zero) as a run with no injector at all.
type epStats struct {
	txBytes     *sim.Counter
	txTransfers *sim.Counter
	rtt         *sim.Histogram // request round-trip as seen by the master
	inflight    *sim.Gauge     // outstanding transactions from this endpoint

	retransmits *sim.Counter // reliable-link retransmissions issued
	linkDrops   *sim.Counter // transfers lost at this endpoint's egress
	linkCorrupt *sim.Counter // transfers the receiver's checksum rejected
	linkFailed  *sim.Counter // exchanges that exhausted retries (OK:false)

	site *fault.Site // egress fault site ("pcie.epN.link"), nil when clean
}

// epState is everything the fabric owns on behalf of one endpoint. Each
// field is only ever touched from that endpoint's execution context, which
// is what lets shards run concurrently between barriers.
type epState struct {
	id      int
	eng     *sim.Engine
	tel     *epStats
	siteSet bool       // fault site resolved (it may have resolved to nil)
	target  axi.Target // inbound interface; nil until Attach
	egress  sim.Time   // egress link reservation
	master  *port      // the endpoint's one outbound master interface
	// Free lists of pooled fast-path exchange records. Owned by this
	// endpoint: records are taken and recycled only in its execution
	// context, so shards never contend.
	wops []*wop
	rops []*rop
}

// Fabric is the PCIe switch connecting FPGAs and the host.
type Fabric struct {
	eng     *sim.Engine // default engine for endpoints without an explicit shard
	p       Params
	stats   *sim.Stats // default registry, likewise
	inj     *fault.Injector
	net     sim.CrossNet
	sharded bool
	eps     map[int]*epState
	// rel[src+1][dst+1] is the reliable-link state of the directed pair
	// (src, dst); the +1 folds HostID (-1) into the array. A fixed array —
	// allocated up front — so concurrent shards never mutate a shared map.
	rel [MaxFPGAs + 1][MaxFPGAs + 1]*relState
	// Address windows: FPGA i owns [WindowBase + i*WindowSize, +WindowSize).
	// Anything else routes to the host.
	windowBase axi.Addr
	windowSize uint64
}

// WindowSize is each FPGA's aperture in the host PCIe address space.
const WindowSize uint64 = 1 << 40

// WindowBase is the start of the FPGA apertures.
const WindowBase axi.Addr = 1 << 44

// New creates a fabric. Attach endpoints before sending. Crossings are
// delivered through an internal SerialNet on eng until SetCrossNet replaces
// it.
func New(eng *sim.Engine, p Params, stats *sim.Stats) *Fabric {
	f := &Fabric{
		eng:        eng,
		p:          p,
		stats:      stats,
		net:        sim.NewSerialNet(eng),
		eps:        make(map[int]*epState),
		windowBase: WindowBase,
		windowSize: WindowSize,
	}
	for i := range f.rel {
		for j := range f.rel[i] {
			f.rel[i][j] = &relState{cache: make(map[uint64]any)}
		}
	}
	return f
}

// SetInjector attaches a fault injector. In serial mode each endpoint
// resolves its egress fault site "pcie.epN.link" at first traffic; sharded
// builds resolve eagerly at ShardEndpoint (the injector registry must not
// be touched from concurrent shards), so there the injector must be set
// first. A nil injector leaves every link infallible (the default).
func (f *Fabric) SetInjector(inj *fault.Injector) { f.inj = inj }

// SetCrossNet replaces the delivery network. Sharded builds pass the shard
// group so crossings become envelopes exchanged at window barriers; it can
// also be used to share one SerialNet between the fabric and other
// cross-shard users (thread migration) so they draw from the same
// per-source sequence space in both modes. Must be called before traffic.
func (f *Fabric) SetCrossNet(net sim.CrossNet) { f.net = net }

// ShardEndpoint binds endpoint id to its shard's engine and stats registry
// and creates its state eagerly. Sharded builds must call it for every
// endpoint before Attach; it also marks the fabric sharded, after which
// traffic touching an unbound endpoint (e.g. the host) panics instead of
// silently racing.
func (f *Fabric) ShardEndpoint(id int, eng *sim.Engine, stats *sim.Stats) {
	if _, dup := f.eps[id]; dup {
		panic(fmt.Sprintf("pcie: endpoint %d sharded twice", id))
	}
	f.sharded = true
	st := f.newState(id, eng, stats)
	f.resolveSite(st)
	f.eps[id] = st
}

func (f *Fabric) newState(id int, eng *sim.Engine, stats *sim.Stats) *epState {
	st := &epState{id: id, eng: eng, tel: &epStats{}}
	st.master = &port{f: f, src: id}
	if stats != nil {
		t := st.tel
		t.txBytes = stats.Counter(fmt.Sprintf("pcie.ep%d.tx_bytes", id))
		t.txTransfers = stats.Counter(fmt.Sprintf("pcie.ep%d.tx_transfers", id))
		t.rtt = stats.Histogram(fmt.Sprintf("pcie.ep%d.rtt", id))
		t.inflight = stats.Gauge(fmt.Sprintf("pcie.ep%d.inflight", id))
		t.retransmits = stats.Counter(fmt.Sprintf("pcie.ep%d.retransmits", id))
		t.linkDrops = stats.Counter(fmt.Sprintf("pcie.ep%d.link_drops", id))
		t.linkCorrupt = stats.Counter(fmt.Sprintf("pcie.ep%d.link_corrupt", id))
		t.linkFailed = stats.Counter(fmt.Sprintf("pcie.ep%d.link_failed", id))
	}
	return st
}

// resolveSite binds the endpoint's egress fault site. Serial mode defers
// this to first traffic so SetInjector may be called any time before the
// fabric carries transfers; sharded mode resolves at ShardEndpoint because
// the injector's registry must not be touched from concurrent shards.
func (f *Fabric) resolveSite(st *epState) *fault.Site {
	if !st.siteSet {
		st.tel.site = f.inj.SiteOn(fmt.Sprintf("pcie.ep%d.link", st.id), st.eng)
		st.siteSet = true
	}
	return st.tel.site
}

// state returns endpoint id's state, creating it on the fabric's default
// engine/registry on first use in serial mode. In sharded mode every
// endpoint that carries traffic must have been bound with ShardEndpoint.
func (f *Fabric) state(id int) *epState {
	st, ok := f.eps[id]
	if !ok {
		if f.sharded {
			panic(fmt.Sprintf("pcie: endpoint %d carries traffic but was not bound to a shard", id))
		}
		st = f.newState(id, f.eng, f.stats)
		f.eps[id] = st
	}
	return st
}

// Attach registers the inbound AXI target for endpoint id (an FPGA index in
// [0, MaxFPGAs) or HostID).
func (f *Fabric) Attach(id int, t axi.Target) {
	if id != HostID && (id < 0 || id >= MaxFPGAs) {
		panic(fmt.Sprintf("pcie: endpoint id %d out of range", id))
	}
	st := f.state(id)
	if st.target != nil {
		panic(fmt.Sprintf("pcie: endpoint id %d attached twice", id))
	}
	st.target = t
}

// Window returns the PCIe aperture of FPGA id.
func (f *Fabric) Window(id int) (base axi.Addr, size uint64) {
	return f.windowBase + axi.Addr(uint64(id)*f.windowSize), f.windowSize
}

// RouteOf returns the endpoint that owns addr.
func (f *Fabric) RouteOf(addr axi.Addr) int {
	if addr >= f.windowBase {
		i := int(uint64(addr-f.windowBase) / f.windowSize)
		if i < MaxFPGAs {
			return i
		}
	}
	return HostID
}

// LocalAddr strips the window base, returning the address as seen inside the
// destination endpoint.
func (f *Fabric) LocalAddr(addr axi.Addr) axi.Addr {
	if f.RouteOf(addr) == HostID {
		return addr
	}
	base, _ := f.Window(f.RouteOf(addr))
	return addr - base
}

// CaptureState records the fabric's persistent state: per-endpoint egress
// reservation clocks and the reliable links' send sequence numbers. The
// replay caches are reception history — at a quiescent safepoint every
// sequence below nextSeq has been delivered and acknowledged, so nextSeq
// alone carries the protocol forward. Pooled exchange records are free-list
// bookkeeping and are not state.
func (f *Fabric) CaptureState() ckpt.PCIeState {
	var st ckpt.PCIeState
	ids := make([]int, 0, len(f.eps))
	for id := range f.eps {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st.Endpoints = append(st.Endpoints, ckpt.PCIeEndpointState{
			ID: id, Egress: uint64(f.eps[id].egress),
		})
	}
	for i := range f.rel {
		for j := range f.rel[i] {
			if f.rel[i][j].nextSeq != 0 {
				st.Seqs = append(st.Seqs, ckpt.PCIeSeqState{
					Src: i, Dst: j, NextSeq: f.rel[i][j].nextSeq,
				})
			}
		}
	}
	return st
}

// RestoreState overlays a captured fabric state, creating endpoint records
// as needed (serial mode creates them lazily on first traffic, so a fresh
// build may not hold every endpoint the snapshot does).
func (f *Fabric) RestoreState(st ckpt.PCIeState) error {
	for _, ep := range st.Endpoints {
		if ep.ID != HostID && (ep.ID < 0 || ep.ID >= MaxFPGAs) {
			return &ckpt.CorruptError{Reason: fmt.Sprintf("pcie endpoint id %d out of range", ep.ID)}
		}
		f.state(ep.ID).egress = sim.Time(ep.Egress)
	}
	for _, sq := range st.Seqs {
		if sq.Src < 0 || sq.Src >= len(f.rel) || sq.Dst < 0 || sq.Dst >= len(f.rel) {
			return &ckpt.CorruptError{Reason: fmt.Sprintf("pcie reliable-link pair (%d,%d) out of range", sq.Src, sq.Dst)}
		}
		f.rel[sq.Src][sq.Dst].nextSeq = sq.NextSeq
	}
	return nil
}

// delay reserves egress bandwidth at src and returns the total transfer
// delay for n bytes. Runs in src's execution context.
func (f *Fabric) delay(src, n int) sim.Time {
	beats := sim.Time((n + f.p.BytesPerCycle - 1) / f.p.BytesPerCycle)
	if beats == 0 {
		beats = 1
	}
	st := f.state(src)
	start := st.eng.Now()
	if st.egress > start {
		start = st.egress
	}
	st.egress = start + beats
	st.tel.txBytes.Add(uint64(n))
	st.tel.txTransfers.Inc()
	return (start - st.eng.Now()) + beats + f.p.OneWay
}

// Reliable link layer
//
// When a fault injector puts a site on an endpoint's link, every exchange
// crossing that endpoint runs a lightweight reliability protocol modeled on
// PCIe's own DLLP layer: the request carries a per-(src,dst) sequence number
// and a checksum, the receiver deduplicates retransmissions against a replay
// cache, and the sender arms an ACK timeout with capped exponential backoff.
// After maxAttempts the sender gives up and propagates OK:false instead of
// hanging. Endpoints without fault sites keep the original two-crossing fast
// path with byte-identical timing and metrics.

const (
	// maxAttempts bounds retransmission: one original send plus seven
	// retries, after which the exchange fails with OK:false.
	maxAttempts = 8
	// backoffCap caps the exponential timeout multiplier (1, 2, 4, 8, 8...).
	backoffCap = 8
	// replayWindow is how many completed sequence numbers the receiver keeps
	// for duplicate detection before pruning.
	replayWindow = 256
	// timeoutSlack pads the ACK timeout beyond the nominal round trip to
	// absorb egress queueing. A late ACK only costs a spurious (deduplicated)
	// retransmit, never correctness.
	timeoutSlack = 64
)

// relState is the reliable-link state of one directed pair. Its two halves
// have different owners: nextSeq is advanced at the source endpoint, the
// replay cache is consulted and filled at the destination.
type relState struct {
	nextSeq uint64
	cache   map[uint64]any
}

func (f *Fabric) relOf(src, dst int) *relState { return f.rel[src+1][dst+1] }

// cross moves nbytes from endpoint src to endpoint dst, consulting src's
// fault site. then runs at dst after the crossing delay when the transfer
// survives; a dropped, corrupted or hung transfer is counted and silently
// lost (a corrupted payload is delivered but fails the receiver's checksum,
// which comes to the same thing — the sender's timeout recovers either
// way). Runs in src's execution context; delivery goes through the
// CrossNet, the cross-shard edge.
func (f *Fabric) cross(src, dst, nbytes int, then func()) {
	st := f.state(src)
	d := f.delay(src, nbytes)
	fate := f.resolveSite(st).Transfer()
	if fate.Drop {
		st.tel.linkDrops.Inc()
		return
	}
	if fate.Corrupt {
		st.tel.linkCorrupt.Inc()
		return
	}
	f.net.Send(src, dst, st.eng.Now()+d+fate.Extra, then)
}

// xchg is one request/response exchange running the reliability protocol.
// Field ownership mirrors relState: seq/attempts/timer/done live at the
// source (attempt, complete and timeout all run there), while deliver runs
// at the destination and touches only the replay cache and the invocation.
type xchg struct {
	f                   *Fabric
	src, dst            int
	fwdBytes, respBytes int
	seq                 uint64
	st                  *relState
	invoke              func(reply func(any))
	finish              func(any)
	attempts            int
	timer               sim.Timer
	done                bool
}

// exchange performs a request/response exchange from src to dst. invoke calls
// the destination target and must hand the response to its callback exactly
// once; finish receives that response, or nil when the link gave up after
// maxAttempts. With no fault site on either endpoint this is a plain pair of
// crossings — the fast path, byte-identical to the pre-fault model.
func (f *Fabric) exchange(src, dst int, fwdBytes, respBytes int, invoke func(reply func(any)), finish func(any)) {
	if f.resolveSite(f.state(src)) == nil && f.resolveSite(f.state(dst)) == nil {
		f.cross(src, dst, fwdBytes, func() {
			invoke(func(r any) {
				f.cross(dst, src, respBytes, func() { finish(r) })
			})
		})
		return
	}
	st := f.relOf(src, dst)
	x := &xchg{
		f: f, src: src, dst: dst,
		fwdBytes: fwdBytes, respBytes: respBytes,
		seq: st.nextSeq, st: st,
		invoke: invoke, finish: finish,
	}
	st.nextSeq++
	x.attempt()
}

// baseTimeout is the nominal exchange round trip plus slack.
func (x *xchg) baseTimeout() sim.Time {
	bpc := x.f.p.BytesPerCycle
	beats := sim.Time((x.fwdBytes + x.respBytes + bpc - 1) / bpc)
	return 2*x.f.p.OneWay + beats + timeoutSlack
}

func (x *xchg) attempt() {
	x.attempts++
	mult := sim.Time(1) << (x.attempts - 1)
	if mult > backoffCap {
		mult = backoffCap
	}
	x.timer = x.f.state(x.src).eng.After(x.baseTimeout()*mult, x.timeout)
	x.f.cross(x.src, x.dst, x.fwdBytes, x.deliver)
}

// deliver runs at the receiver after a surviving forward crossing.
func (x *xchg) deliver() {
	if r, seen := x.st.cache[x.seq]; seen {
		// Duplicate of a retransmitted request. If the destination already
		// responded, replay the cached response; otherwise the original
		// invocation is still in flight and will respond itself.
		if r != nil {
			x.sendResp(r)
		}
		return
	}
	x.st.cache[x.seq] = nil
	if x.seq >= replayWindow {
		delete(x.st.cache, x.seq-replayWindow)
	}
	x.invoke(func(r any) {
		x.st.cache[x.seq] = r
		x.sendResp(r)
	})
}

func (x *xchg) sendResp(r any) {
	x.f.cross(x.dst, x.src, x.respBytes, func() { x.complete(r) })
}

func (x *xchg) complete(r any) {
	if x.done {
		return // a duplicate response from a spurious retransmit
	}
	x.done = true
	x.timer.Cancel()
	x.finish(r)
}

func (x *xchg) timeout() {
	if x.done {
		return
	}
	if x.attempts >= maxAttempts {
		x.done = true
		x.f.state(x.src).tel.linkFailed.Inc()
		x.finish(nil)
		return
	}
	x.f.state(x.src).tel.retransmits.Inc()
	x.attempt()
}

// port is one endpoint's outbound master interface.
type port struct {
	f   *Fabric
	src int
}

// Master returns the outbound AXI interface of endpoint src. Writes and
// reads are routed by address to the owning endpoint; responses pay the
// return crossing.
func (f *Fabric) Master(src int) axi.Target { return f.state(src).master }

// fail schedules an OK:false response for an unrouteable request. The error
// still pays the one-way switch latency: the request has to reach the switch
// before anything can reject it. The rejection never leaves src.
func (p *port) fail(tel *epStats, respond func()) {
	p.f.state(p.src).eng.Schedule(p.f.p.OneWay, func() {
		tel.inflight.Dec()
		respond()
	})
}

// targetOf returns the inbound interface of endpoint id without creating
// state for unknown endpoints (an unrouteable address must fail cleanly,
// not panic the sharded fabric).
func (f *Fabric) targetOf(id int) axi.Target {
	if st, ok := f.eps[id]; ok {
		return st.target
	}
	return nil
}

// wop is one pooled fast-path write exchange: the rewritten request held by
// value, plus the three stage callbacks built once per record. The record is
// taken and recycled at the source endpoint; between the two crossings it is
// touched only at the destination, with the CrossNet barriers providing the
// ordering — the same discipline the capture closures it replaces followed.
type wop struct {
	dstID int
	dst   axi.Target
	local axi.WriteReq
	done  func(*axi.WriteResp)
	start sim.Time
	resp  *axi.WriteResp

	deliverFn func()               // at dst: invoke the inbound target
	respFn    func(*axi.WriteResp) // at dst: carry the response back
	finishFn  func()               // at src: telemetry, completion, recycle
}

func newWop(f *Fabric, st *epState) *wop {
	o := &wop{}
	o.deliverFn = func() { o.dst.Write(&o.local, o.respFn) }
	o.respFn = func(r *axi.WriteResp) {
		o.resp = r
		// b-channel response crosses back as a small TLP.
		f.cross(o.dstID, st.id, 4, o.finishFn)
	}
	o.finishFn = func() {
		st.tel.rtt.Observe(uint64(st.eng.Now() - o.start))
		st.tel.inflight.Dec()
		done, resp := o.done, o.resp
		// Recycle before completing: done may issue the next transfer
		// synchronously through this same endpoint.
		o.dst, o.done, o.resp = nil, nil, nil
		o.local = axi.WriteReq{}
		st.wops = append(st.wops, o)
		done(resp)
	}
	return o
}

func (f *Fabric) getWop(st *epState) *wop {
	if n := len(st.wops); n > 0 {
		o := st.wops[n-1]
		st.wops = st.wops[:n-1]
		return o
	}
	return newWop(f, st)
}

// rop is wop's read-channel twin.
type rop struct {
	dstID int
	dst   axi.Target
	local axi.ReadReq
	done  func(*axi.ReadResp)
	start sim.Time
	resp  *axi.ReadResp

	deliverFn func()
	respFn    func(*axi.ReadResp)
	finishFn  func()
}

func newRop(f *Fabric, st *epState) *rop {
	o := &rop{}
	o.deliverFn = func() { o.dst.Read(&o.local, o.respFn) }
	o.respFn = func(r *axi.ReadResp) {
		o.resp = r
		// r-channel data crosses back.
		f.cross(o.dstID, st.id, o.local.Len, o.finishFn)
	}
	o.finishFn = func() {
		st.tel.rtt.Observe(uint64(st.eng.Now() - o.start))
		st.tel.inflight.Dec()
		done, resp := o.done, o.resp
		o.dst, o.done, o.resp = nil, nil, nil
		o.local = axi.ReadReq{}
		st.rops = append(st.rops, o)
		done(resp)
	}
	return o
}

func (f *Fabric) getRop(st *epState) *rop {
	if n := len(st.rops); n > 0 {
		o := st.rops[n-1]
		st.rops = st.rops[:n-1]
		return o
	}
	return newRop(f, st)
}

func (p *port) Write(req *axi.WriteReq, done func(*axi.WriteResp)) {
	f := p.f
	dstID := f.RouteOf(req.Addr)
	src := f.state(p.src)
	tel := src.tel
	start := src.eng.Now()
	tel.inflight.Inc()
	dst := f.targetOf(dstID)
	if dst == nil {
		p.fail(tel, func() { done(&axi.WriteResp{ID: req.ID, OK: false}) })
		return
	}
	if f.resolveSite(src) == nil && f.resolveSite(f.state(dstID)) == nil {
		o := f.getWop(src)
		o.dstID, o.dst = dstID, dst
		o.local = axi.WriteReq{Addr: f.LocalAddr(req.Addr), ID: req.ID, Data: req.Data, User: req.User}
		o.done, o.start = done, start
		f.cross(p.src, dstID, len(req.Data), o.deliverFn)
		return
	}
	local := &axi.WriteReq{Addr: f.LocalAddr(req.Addr), ID: req.ID, Data: req.Data, User: req.User}
	// b-channel response crosses back as a small TLP.
	f.exchange(p.src, dstID, len(req.Data), 4,
		func(reply func(any)) {
			dst.Write(local, func(r *axi.WriteResp) { reply(r) })
		},
		func(r any) {
			tel.rtt.Observe(uint64(src.eng.Now() - start))
			tel.inflight.Dec()
			if r == nil {
				done(&axi.WriteResp{ID: req.ID, OK: false})
				return
			}
			done(r.(*axi.WriteResp))
		})
}

func (p *port) Read(req *axi.ReadReq, done func(*axi.ReadResp)) {
	f := p.f
	dstID := f.RouteOf(req.Addr)
	src := f.state(p.src)
	tel := src.tel
	start := src.eng.Now()
	tel.inflight.Inc()
	dst := f.targetOf(dstID)
	if dst == nil {
		p.fail(tel, func() { done(&axi.ReadResp{ID: req.ID, OK: false}) })
		return
	}
	if f.resolveSite(src) == nil && f.resolveSite(f.state(dstID)) == nil {
		o := f.getRop(src)
		o.dstID, o.dst = dstID, dst
		o.local = axi.ReadReq{Addr: f.LocalAddr(req.Addr), ID: req.ID, Len: req.Len}
		o.done, o.start = done, start
		f.cross(p.src, dstID, 4, o.deliverFn)
		return
	}
	local := &axi.ReadReq{Addr: f.LocalAddr(req.Addr), ID: req.ID, Len: req.Len}
	// r-channel data crosses back.
	f.exchange(p.src, dstID, 4, req.Len,
		func(reply func(any)) {
			dst.Read(local, func(r *axi.ReadResp) { reply(r) })
		},
		func(r any) {
			tel.rtt.Observe(uint64(src.eng.Now() - start))
			tel.inflight.Dec()
			if r == nil {
				done(&axi.ReadResp{ID: req.ID, OK: false})
				return
			}
			done(r.(*axi.ReadResp))
		})
}
