package accel

import (
	"math"
	"testing"

	"smappic/internal/cache"
	"smappic/internal/core"
	"smappic/internal/sim"
)

func TestTaus88Deterministic(t *testing.T) {
	a, b := newTaus88(7), newTaus88(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("same-seed taus88 diverges")
		}
	}
}

func TestTaus88Uniformity(t *testing.T) {
	r := newTaus88(12345)
	buckets := make([]int, 16)
	for i := 0; i < 1_600_00; i++ {
		buckets[r.next()>>28]++
	}
	for i, n := range buckets {
		if n < 8000 || n > 12000 {
			t.Errorf("bucket %d = %d, expected ~10000", i, n)
		}
	}
}

func TestGNGStatisticsAreGaussian(t *testing.T) {
	g := NewGNG(99, nil, "gng")
	const n = 100_000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := float64(g.Sample()) / 2048 // back to real units
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %f, want ~0", mean)
	}
	if std < 0.97 || std > 1.03 {
		t.Errorf("stddev = %f, want ~1", std)
	}
}

func TestGNGPackedFetches(t *testing.T) {
	// Two generators with the same seed: one fetched 1-at-a-time, one
	// 4-at-a-time; the sample streams must match.
	a := NewGNG(5, nil, "a")
	b := NewGNG(5, nil, "b")
	var seq []uint16
	for i := 0; i < 8; i++ {
		seq = append(seq, uint16(a.Read(GNGFetch1, 8)))
	}
	var packed []uint16
	for i := 0; i < 2; i++ {
		v := b.Read(GNGFetch4, 8)
		for k := 0; k < 4; k++ {
			packed = append(packed, uint16(v>>(16*k)))
		}
	}
	for i := range seq {
		if seq[i] != packed[i] {
			t.Fatalf("packed stream diverges at %d: %x vs %x", i, seq[i], packed[i])
		}
	}
}

func TestGNGStatsCount(t *testing.T) {
	var st sim.Stats
	g := NewGNG(1, &st, "gng")
	g.Read(GNGFetch2, 8)
	g.Read(GNGFetch4, 8)
	if st.Get("gng.fetches") != 2 || st.Get("gng.samples") != 6 {
		t.Fatalf("stats = %d fetches / %d samples", st.Get("gng.fetches"), st.Get("gng.samples"))
	}
}

func TestSoftwareMatchesHardware(t *testing.T) {
	hw := NewGNG(77, nil, "hw")
	sw := NewSoftwareGNG(77)
	for i := 0; i < 100; i++ {
		if hw.Sample() != sw.Sample() {
			t.Fatal("software and hardware GNG diverge (same algorithm expected)")
		}
	}
}

func mapleProto(t *testing.T) *core.Prototype {
	t.Helper()
	cfg := core.DefaultConfig(1, 1, 6)
	cfg.Core = core.CoreNone
	p, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMAPLEDeliversStreamInOrder(t *testing.T) {
	p := mapleProto(t)
	base := p.Map.NodeDRAMBase(0) + 0x10000
	for i := uint64(0); i < 32; i++ {
		p.Backing.WriteU64(base+i*8, 100+i)
	}
	m := NewMAPLE(p, cache.GID{Node: 0, Tile: 2}, "maple")
	m.Program(func(i int) (uint64, int, bool) {
		if i >= 32 {
			return 0, 0, false
		}
		return base + uint64(i)*8, 8, true
	})
	var got []uint64
	sim.Go(p.Eng, "exec", func(proc *sim.Process) {
		for {
			v, ok := m.Fetch(proc)
			if !ok {
				break
			}
			got = append(got, v)
		}
	})
	p.Run()
	if len(got) != 32 {
		t.Fatalf("fetched %d values, want 32", len(got))
	}
	for i, v := range got {
		if v != 100+uint64(i) {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestMAPLEHidesMemoryLatency(t *testing.T) {
	// Irregular gather with compute per element: with MAPLE the fetch cost
	// is the queue pop, not the memory round trip.
	p := mapleProto(t)
	base := p.Map.NodeDRAMBase(0) + 0x100000
	rng := sim.NewRNG(3)
	const n = 200
	idx := make([]uint64, n)
	for i := range idx {
		idx[i] = uint64(rng.Intn(1 << 16))
	}

	// Baseline: demand loads from the execute tile, strided to miss.
	direct := func() sim.Time {
		port := p.PortAt(cache.GID{Node: 0, Tile: 0})
		var took sim.Time
		sim.Go(p.Eng, "exec", func(proc *sim.Process) {
			start := proc.Now()
			for _, ix := range idx {
				port.Load(proc, base+ix*64, 8)
				proc.Wait(20) // compute on the element
			}
			took = proc.Now() - start
		})
		p.Run()
		return took
	}()

	p2 := mapleProto(t)
	decoupled := func() sim.Time {
		m := NewMAPLE(p2, cache.GID{Node: 0, Tile: 2}, "maple")
		m.Program(func(i int) (uint64, int, bool) {
			if i >= n {
				return 0, 0, false
			}
			return base + idx[i]*64, 8, true
		})
		var took sim.Time
		sim.Go(p2.Eng, "exec", func(proc *sim.Process) {
			start := proc.Now()
			for {
				_, ok := m.Fetch(proc)
				if !ok {
					break
				}
				proc.Wait(20)
			}
			took = proc.Now() - start
		})
		p2.Run()
		return took
	}()

	if float64(direct) < float64(decoupled)*1.5 {
		t.Fatalf("MAPLE gave no latency tolerance: direct=%d decoupled=%d", direct, decoupled)
	}
}

func TestMAPLEQueueBoundsProducer(t *testing.T) {
	p := mapleProto(t)
	m := NewMAPLE(p, cache.GID{Node: 0, Tile: 2}, "maple")
	m.QueueDepth = 4
	base := p.Map.NodeDRAMBase(0) + 0x10000
	m.Program(func(i int) (uint64, int, bool) {
		if i >= 100 {
			return 0, 0, false
		}
		return base + uint64(i)*64, 8, true
	})
	maxDepth := 0
	sim.Go(p.Eng, "exec", func(proc *sim.Process) {
		for {
			if d := len(m.queue); d > maxDepth {
				maxDepth = d
			}
			_, ok := m.Fetch(proc)
			if !ok {
				break
			}
			proc.Wait(500) // slow consumer: producer must throttle
		}
	})
	p.Run()
	if maxDepth > 4 {
		t.Fatalf("queue overflowed its depth: %d > 4", maxDepth)
	}
}
