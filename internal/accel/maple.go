package accel

import (
	"smappic/internal/cache"
	"smappic/internal/core"
	"smappic/internal/sim"
)

// MAPLE is the decoupled access/execute engine of Orenes-Vera et al.
// (ISCA'22), re-evaluated in SMAPPIC in paper §4.3. The Execute part runs
// on a general-purpose core; the Access part is offloaded to MAPLE, which
// is programmed before execution to asynchronously fetch data from memory
// and supply it to the Execute core right when needed.
//
// The engine occupies a tile (the paper uses tiles 2 and 3 of a 1x1x6
// configuration): it fetches through that tile's cache port with several
// requests in flight (bounded by its issue window and the BPC's MSHRs) and
// fills a hardware queue; the consumer pops entries with a short queue-read
// latency instead of a full memory round trip. That overlap is the whole
// trick: latency-bound irregular loops become throughput-bound.
type MAPLE struct {
	pr   *core.Prototype
	tile cache.GID
	port *core.Port
	name string

	// QueueDepth is the hardware FIFO size.
	QueueDepth int
	// Window bounds in-flight memory requests.
	Window int
	// PopCost is the consumer-side cost of reading the queue head (a load
	// to the adjacent tile).
	PopCost sim.Time

	addrs        func(i int) (uint64, int, bool)
	pairs        func(i int) (a, b uint64, ok bool)
	queue        []uint64
	pending      map[int]uint64
	next         int // next index to issue
	deliverNext  int // next index to append to the queue
	inflight     int
	exhausted    bool
	done         bool
	consumerWake func()
}

// NewMAPLE places an engine on a tile of the prototype.
func NewMAPLE(pr *core.Prototype, tile cache.GID, name string) *MAPLE {
	return &MAPLE{
		pr:         pr,
		tile:       tile,
		port:       pr.PortAt(tile),
		name:       name,
		QueueDepth: 64,
		Window:     8,
		PopCost:    12,
	}
}

// Name identifies the engine.
func (m *MAPLE) Name() string { return m.name }

// Read implements the tile-device interface for status probes.
func (m *MAPLE) Read(off uint64, size int) uint64 { return uint64(len(m.queue)) }

// Write implements the tile-device interface (configuration is done through
// Program in this model).
func (m *MAPLE) Write(off uint64, size int, v uint64) {}

// Program arms the engine with an access pattern: addrs(i) returns the i-th
// physical address to fetch (ok=false ends the stream). Fetching starts
// immediately and runs ahead of the consumer up to QueueDepth entries.
func (m *MAPLE) Program(addrs func(i int) (addr uint64, size int, ok bool)) {
	m.addrs = addrs
	m.pairs = nil
	m.reset()
}

// ProgramPacked arms the engine with a paired pattern: the i-th queue entry
// packs the 32-bit values at addresses a and b as lo|hi<<32. One consumer
// pop then delivers both operands — the format MAPLE uses for small
// (index, flag) tuples like BFS's neighbor visits.
func (m *MAPLE) ProgramPacked(pairs func(i int) (a, b uint64, ok bool)) {
	m.addrs = nil
	m.pairs = pairs
	m.reset()
}

func (m *MAPLE) reset() {
	m.queue = nil
	m.pending = make(map[int]uint64)
	m.next, m.deliverNext, m.inflight = 0, 0, 0
	m.exhausted, m.done = false, false
	// Kick the pump from an event so Program can be called outside the
	// engine's context.
	m.pr.EngineForNode(m.tile.Node).Schedule(0, m.pump)
}

// pump issues fetches while the window and queue have room.
func (m *MAPLE) pump() {
	for !m.exhausted && m.inflight < m.Window &&
		len(m.queue)+m.inflight+len(m.pending) < m.QueueDepth {
		i := m.next
		if m.pairs != nil {
			a, b, ok := m.pairs(i)
			if !ok {
				m.exhausted = true
				break
			}
			m.next++
			m.inflight += 2
			var lo, hi uint64
			got := 0
			land := func() {
				m.inflight--
				got++
				if got == 2 {
					m.deliver(i, lo|hi<<32)
				}
			}
			m.port.LoadAsync(a, 8, func(v uint64) { lo = v & 0xFFFFFFFF; land() })
			m.port.LoadAsync(b, 8, func(v uint64) { hi = v & 0xFFFFFFFF; land() })
			continue
		}
		addr, size, ok := m.addrs(m.next)
		if !ok {
			m.exhausted = true
			break
		}
		m.next++
		m.inflight++
		m.port.LoadAsync(addr, size, func(v uint64) { m.complete(i, v) })
	}
	if m.exhausted && m.inflight == 0 && len(m.pending) == 0 {
		m.done = true
		m.wakeConsumer()
	}
}

// complete records a finished single fetch and delivers in program order.
func (m *MAPLE) complete(i int, v uint64) {
	m.inflight--
	m.deliver(i, v)
}

// deliver queues a finished entry, preserving program order.
func (m *MAPLE) deliver(i int, v uint64) {
	m.pending[i] = v
	for {
		pv, ok := m.pending[m.deliverNext]
		if !ok {
			break
		}
		delete(m.pending, m.deliverNext)
		m.deliverNext++
		m.queue = append(m.queue, pv)
	}
	m.wakeConsumer()
	m.pump()
}

func (m *MAPLE) wakeConsumer() {
	if m.consumerWake != nil {
		w := m.consumerWake
		m.consumerWake = nil
		w()
	}
}

// Fetch pops the next value for the Execute core, blocking until the engine
// has produced it. The returned ok is false once the stream is exhausted.
func (m *MAPLE) Fetch(p *sim.Process) (v uint64, ok bool) {
	p.Wait(m.PopCost)
	for len(m.queue) == 0 {
		if m.done {
			return 0, false
		}
		if m.consumerWake != nil {
			panic("accel: MAPLE supports a single consumer")
		}
		m.consumerWake = p.Suspend()
		p.Park()
	}
	v = m.queue[0]
	m.queue = m.queue[1:]
	// Space freed: let the engine run further ahead.
	m.pump()
	return v, true
}
