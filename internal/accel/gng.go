// Package accel provides the two accelerators of the paper's case studies:
// the OpenCores Gaussian Noise Generator (§4.2) and the MAPLE decoupled
// access engine (§4.3). Both integrate as tile devices behind the TRI
// boundary, exactly like the paper's prototypes: the GNG is fetched with
// non-cacheable loads, MAPLE prefetches asynchronously through its own
// cache port and supplies the execute core through a hardware queue.
package accel

import (
	"math"

	"smappic/internal/sim"
)

// GNG register offsets: one non-cacheable load returns 1, 2 or 4 packed
// 16-bit samples (the paper's base and optimized integration schemes).
const (
	GNGFetch1 = 0x00
	GNGFetch2 = 0x08
	GNGFetch4 = 0x10
	GNGStatus = 0x18
)

// taus88 is the three-stage Tausworthe generator the OpenCores GNG uses as
// its uniform source (Tausworthe 1965; L'Ecuyer's taus88 parameters).
type taus88 struct {
	s1, s2, s3 uint32
}

func newTaus88(seed uint32) taus88 {
	if seed < 128 {
		seed += 128 // stages need a few high bits set
	}
	return taus88{s1: seed, s2: seed ^ 0x1234ABCD, s3: seed ^ 0x00F0F0F0}
}

func (t *taus88) next() uint32 {
	b := (t.s1<<13 ^ t.s1) >> 19
	t.s1 = (t.s1&0xFFFFFFFE)<<12 ^ b
	b = (t.s2<<2 ^ t.s2) >> 25
	t.s2 = (t.s2&0xFFFFFFF8)<<4 ^ b
	b = (t.s3<<3 ^ t.s3) >> 11
	t.s3 = (t.s3&0xFFFFFFF0)<<17 ^ b
	return t.s1 ^ t.s2 ^ t.s3
}

// float01 returns a uniform in (0,1).
func (t *taus88) float01() float64 {
	return (float64(t.next()) + 1) / 4294967297.0
}

// BoxMuller converts two uniforms into one Gaussian sample in the GNG's
// fixed-point output format: signed 16-bit with 11 fractional bits (Lee et
// al.'s hardware Box-Muller design).
func BoxMuller(u1, u2 float64) int16 {
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	v := z * 2048 // 4.11 fixed point
	switch {
	case v > math.MaxInt16:
		return math.MaxInt16
	case v < math.MinInt16:
		return math.MinInt16
	}
	return int16(v)
}

// GNG is the Gaussian Noise Generator accelerator as a tile device.
type GNG struct {
	rng   taus88
	stats *sim.Stats
	name  string
}

// NewGNG creates a generator with the given seed.
func NewGNG(seed uint32, stats *sim.Stats, name string) *GNG {
	return &GNG{rng: newTaus88(seed), stats: stats, name: name}
}

// Name identifies the device.
func (g *GNG) Name() string { return g.name }

// Sample produces the next noise value.
func (g *GNG) Sample() int16 {
	return BoxMuller(g.rng.float01(), g.rng.float01())
}

// Read implements the tile-device MMIO interface: each load fetches 1, 2 or
// 4 packed samples.
func (g *GNG) Read(off uint64, size int) uint64 {
	n := 0
	switch off {
	case GNGFetch1:
		n = 1
	case GNGFetch2:
		n = 2
	case GNGFetch4:
		n = 4
	case GNGStatus:
		return 1 // always ready: the Tausworthe core outruns the bus
	default:
		return 0
	}
	if g.stats != nil {
		g.stats.Counter(g.name + ".fetches").Inc()
		g.stats.Counter(g.name + ".samples").Add(uint64(n))
	}
	var out uint64
	for i := 0; i < n; i++ {
		out |= uint64(uint16(g.Sample())) << (16 * i)
	}
	return out
}

// Write implements the device interface (the GNG has no writable state).
func (g *GNG) Write(off uint64, size int, v uint64) {}

// SoftwareGNG is the software reference implementation executed on the
// Ariane core in the paper's comparison. CyclesPerSample is the modeled
// cost of one Box-Muller evaluation (log, sqrt, cos through libm on the
// in-order core); the benchmark charges it per generated number.
type SoftwareGNG struct {
	rng taus88
}

// SWCyclesPerSample is the calibrated per-sample software cost: two
// Tausworthe draws plus log, sqrt and cos through libm and the fixed-point
// conversion, on the in-order single-issue core.
const SWCyclesPerSample = 500

// NewSoftwareGNG seeds the software generator.
func NewSoftwareGNG(seed uint32) *SoftwareGNG {
	return &SoftwareGNG{rng: newTaus88(seed)}
}

// Sample produces the next noise value (functionally identical to the
// hardware: same Tausworthe source, same Box-Muller).
func (s *SoftwareGNG) Sample() int16 {
	return BoxMuller(s.rng.float01(), s.rng.float01())
}
