package dev

import (
	"bytes"
	"testing"

	"smappic/internal/mem"
	"smappic/internal/sim"
)

func TestUARTTransmitToHost(t *testing.T) {
	eng := sim.NewEngine()
	u := NewUART(eng, "uart0", nil)
	u.CyclesPerByte = 10
	for _, b := range []byte("Hi") {
		// Respect LSR: wait for THR empty.
		for u.Read(UartLSR, 1)&lsrTHREmpty == 0 {
			eng.RunFor(1)
		}
		u.Write(UartTHR, 1, uint64(b))
		eng.RunFor(10)
	}
	eng.Run()
	if got := string(u.HostRead()); got != "Hi" {
		t.Fatalf("host read %q, want Hi", got)
	}
}

func TestUARTLineRateModeled(t *testing.T) {
	eng := sim.NewEngine()
	u := NewUART(eng, "uart0", nil)
	u.Write(UartTHR, 1, 'x')
	if u.Read(UartLSR, 1)&lsrTHREmpty != 0 {
		t.Fatal("THR should be busy right after write")
	}
	eng.RunUntil(StdBaudCycles - 1)
	if u.TxPending() != 0 {
		t.Fatal("byte appeared before a full frame time")
	}
	eng.Run()
	if u.TxPending() != 1 {
		t.Fatal("byte never appeared")
	}
}

func TestUARTReceiveAndIRQ(t *testing.T) {
	eng := sim.NewEngine()
	u := NewUART(eng, "uart0", nil)
	var irq bool
	u.IRQ = func(l bool) { irq = l }
	u.Write(UartIER, 1, 1) // enable RX interrupt
	u.HostWrite([]byte("ok"))
	if !irq {
		t.Fatal("RX interrupt not raised")
	}
	if u.Read(UartLSR, 1)&lsrDataReady == 0 {
		t.Fatal("LSR data-ready not set")
	}
	if got := u.Read(UartRBR, 1); got != 'o' {
		t.Fatalf("first byte = %c", rune(got))
	}
	if got := u.Read(UartRBR, 1); got != 'k' {
		t.Fatalf("second byte = %c", rune(got))
	}
	if irq {
		t.Fatal("IRQ still high with RX empty")
	}
}

func TestUARTLiteTapMatchesMMIO(t *testing.T) {
	eng := sim.NewEngine()
	u := NewUART(eng, "uart0", nil)
	u.CyclesPerByte = 1
	tap := u.LiteTap()
	tap.WriteReg(UartTHR*4, 'Z')
	eng.Run()
	if got := string(u.HostRead()); got != "Z" {
		t.Fatalf("lite-tap write produced %q", got)
	}
	u.HostWrite([]byte{'Q'})
	if got := tap.ReadReg(UartRBR * 4); got != 'Q' {
		t.Fatalf("lite-tap read = %c", rune(got))
	}
}

func TestVirtualSerialConsole(t *testing.T) {
	eng := sim.NewEngine()
	u := NewUART(eng, "uart0", nil)
	u.CyclesPerByte = 1
	vs := NewVirtualSerial(u)
	for _, b := range []byte("boot ok\n") {
		u.Write(UartTHR, 1, uint64(b))
		eng.RunFor(1)
	}
	eng.Run()
	if got := vs.Console(); got != "boot ok\n" {
		t.Fatalf("console = %q", got)
	}
	vs.Send("ls\n")
	if got := u.Read(UartRBR, 1); got != 'l' {
		t.Fatalf("core saw %c", rune(got))
	}
}

func TestSDCardReadIntoMemory(t *testing.T) {
	eng := sim.NewEngine()
	b := mem.NewBacking()
	sd := NewSDCard(eng, b, 1<<29, 1<<29, nil, "sd0")
	img := make([]byte, 2*SDSectorBytes)
	for i := range img {
		img[i] = byte(i)
	}
	sd.LoadImage(0, img)

	sd.Write(SDSector, 8, 0)
	sd.Write(SDTarget, 8, 0x1000)
	sd.Write(SDCount, 8, 2)
	sd.Write(SDCmd, 8, 1)
	if sd.Read(SDStatus, 8) != 1 {
		t.Fatal("controller should be busy")
	}
	eng.Run()
	if sd.Read(SDStatus, 8) != 0 {
		t.Fatal("controller stuck busy")
	}
	got := make([]byte, len(img))
	b.ReadBytes(0x1000, got)
	if !bytes.Equal(got, img) {
		t.Fatal("sector data mismatch after DMA read")
	}
}

func TestSDCardWriteFromMemory(t *testing.T) {
	eng := sim.NewEngine()
	b := mem.NewBacking()
	sd := NewSDCard(eng, b, 1<<29, 1<<29, nil, "sd0")
	data := bytes.Repeat([]byte{0xAB}, SDSectorBytes)
	b.WriteBytes(0x2000, data)

	sd.Write(SDSector, 8, 5)
	sd.Write(SDTarget, 8, 0x2000)
	sd.Write(SDCount, 8, 1)
	sd.Write(SDCmd, 8, 2)
	eng.Run()
	if !bytes.Equal(sd.ReadImage(5*SDSectorBytes, SDSectorBytes), data) {
		t.Fatal("card contents mismatch after DMA write")
	}
}

func TestSDCardDMATiming(t *testing.T) {
	eng := sim.NewEngine()
	b := mem.NewBacking()
	sd := NewSDCard(eng, b, 1<<29, 1<<29, nil, "sd0")
	sd.Write(SDCount, 8, 8)
	sd.Write(SDCmd, 8, 1)
	end := eng.Run()
	if end != 8*sd.DMACyclesPerSector {
		t.Fatalf("8-sector DMA took %d cycles, want %d", end, 8*sd.DMACyclesPerSector)
	}
}

func TestSDCardIgnoresCommandWhileBusy(t *testing.T) {
	eng := sim.NewEngine()
	b := mem.NewBacking()
	var st sim.Stats
	sd := NewSDCard(eng, b, 1<<29, 1<<29, &st, "sd0")
	sd.Write(SDCount, 8, 4)
	sd.Write(SDCmd, 8, 1)
	sd.Write(SDCmd, 8, 1) // while busy: dropped
	eng.Run()
	if st.Get("sd0.transfers") != 1 {
		t.Fatalf("transfers = %d, want 1", st.Get("sd0.transfers"))
	}
}
