package dev

import (
	"bytes"
	"testing"
	"testing/quick"

	"smappic/internal/sim"
)

func TestPPPRoundTrip(t *testing.T) {
	var got [][]byte
	ep := PPPEndpoint{OnFrame: func(p []byte) { got = append(got, p) }}
	payload := []byte("GET /index.php HTTP/1.1\r\n")
	ep.Consume(PPPEncode(payload))
	if len(got) != 1 || !bytes.Equal(got[0], payload) {
		t.Fatalf("round trip failed: %q", got)
	}
	if ep.Received != 1 || ep.Dropped != 0 {
		t.Fatalf("counters: rx=%d drop=%d", ep.Received, ep.Dropped)
	}
}

func TestPPPEscapesControlBytes(t *testing.T) {
	payload := []byte{pppFlag, pppEsc, 0x00, 0x1F, 'A'}
	enc := PPPEncode(payload)
	// No raw flag/escape bytes inside the frame body.
	for _, b := range enc[1 : len(enc)-1] {
		if b == pppFlag {
			t.Fatal("unescaped flag inside frame")
		}
	}
	var got []byte
	ep := PPPEndpoint{OnFrame: func(p []byte) { got = p }}
	ep.Consume(enc)
	if !bytes.Equal(got, payload) {
		t.Fatalf("escaped payload mangled: %v vs %v", got, payload)
	}
}

func TestPPPDropsCorruptFrames(t *testing.T) {
	enc := PPPEncode([]byte("hello"))
	enc[3] ^= 0xFF // corrupt a body byte
	ep := PPPEndpoint{OnFrame: func(p []byte) { t.Error("corrupt frame delivered") }}
	ep.Consume(enc)
	if ep.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", ep.Dropped)
	}
}

func TestPPPByteAtATimeDelivery(t *testing.T) {
	// Frames must reassemble even when the UART delivers single bytes.
	var got []byte
	ep := PPPEndpoint{OnFrame: func(p []byte) { got = p }}
	for _, b := range PPPEncode([]byte("fragmented")) {
		ep.Consume([]byte{b})
	}
	if string(got) != "fragmented" {
		t.Fatalf("got %q", got)
	}
}

func TestPPPIgnoresInterFrameNoise(t *testing.T) {
	var got [][]byte
	ep := PPPEndpoint{OnFrame: func(p []byte) { got = append(got, p) }}
	stream := append([]byte{0x55, 0xAA}, PPPEncode([]byte("a"))...)
	stream = append(stream, 0x13, 0x37)
	stream = append(stream, PPPEncode([]byte("b"))...)
	ep.Consume(stream)
	if len(got) != 2 || string(got[0]) != "a" || string(got[1]) != "b" {
		t.Fatalf("frames = %q", got)
	}
}

// Property: encode/decode round-trips arbitrary payloads, including ones
// full of flag and escape bytes.
func TestPPPRoundTripProperty(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		var got []byte
		ep := PPPEndpoint{OnFrame: func(p []byte) { got = p }}
		ep.Consume(PPPEncode(payload))
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPPPOverUART(t *testing.T) {
	// End to end over the overclocked data UART: prototype-side writes
	// frame bytes to the THR; host pumps them through pppd's framer.
	eng := sim.NewEngine()
	u := NewUART(eng, "uart1", nil)
	u.CyclesPerByte = FastBaudCycles
	host := NewPPPHost(u)

	frame := PPPEncode([]byte("ping from the prototype"))
	sim.Go(eng, "tx", func(p *sim.Process) {
		for _, b := range frame {
			for u.Read(UartLSR, 1)&0x20 == 0 {
				p.Wait(50)
			}
			u.Write(UartTHR, 1, uint64(b))
			p.Wait(FastBaudCycles)
		}
	})
	eng.Run()
	host.Poll()
	if len(host.Inbox) != 1 || string(host.Inbox[0]) != "ping from the prototype" {
		t.Fatalf("inbox = %q", host.Inbox)
	}
	rx, drop := host.Stats()
	if rx != 1 || drop != 0 {
		t.Fatalf("stats rx=%d drop=%d", rx, drop)
	}

	// And the other direction: host -> prototype RX FIFO.
	host.Send([]byte("pong"))
	var ep PPPEndpoint
	var got []byte
	ep.OnFrame = func(p []byte) { got = p }
	for u.Read(UartLSR, 1)&1 != 0 {
		ep.Consume([]byte{byte(u.Read(UartRBR, 1))})
	}
	if string(got) != "pong" {
		t.Fatalf("prototype received %q", got)
	}
}
