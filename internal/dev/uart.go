// Package dev provides SMAPPIC's I/O devices (paper §3.4): the UART16550
// tunneled over AXI-Lite to a host-side virtual serial device, and the
// virtual SD card mapped into the top half of the FPGA's DRAM.
package dev

import (
	"smappic/internal/axi"
	"smappic/internal/sim"
)

// UART16550 register offsets (LCR.DLAB=0 view; the divisor latch is
// accepted but the model's speed is set by CyclesPerByte).
const (
	UartRBR = 0 // read: receive buffer
	UartTHR = 0 // write: transmit holding
	UartIER = 1
	UartIIR = 2 // read; write = FCR
	UartLCR = 3
	UartMCR = 4
	UartLSR = 5
)

// LSR bits.
const (
	lsrDataReady = 1 << 0
	lsrTHREmpty  = 1 << 5
	lsrTXIdle    = 1 << 6
)

// StdBaudCycles is the cycles per byte at the standard 115200 bit/s rate at
// 100 MHz (10 bits per frame).
const StdBaudCycles = 8680

// FastBaudCycles models the paper's "overclocked" ~1 Mbit/s data UART.
const FastBaudCycles = 1000

// UART is a 16550-compatible UART. The core side accesses registers through
// MMIO; the host side drains TX and feeds RX through the AXI-Lite tunnel
// (LiteTap) or directly via HostRead/HostWrite in tests.
type UART struct {
	eng   *sim.Engine
	name  string
	stats *sim.Stats

	// CyclesPerByte is the modeled line rate.
	CyclesPerByte sim.Time

	// IRQ is asserted through this callback (wired to the PLIC).
	IRQ func(level bool)

	rx       []byte // waiting for the core
	tx       []byte // waiting for the host
	ier      uint8
	lcr      uint8
	shifting bool
}

// NewUART creates a UART at the standard baud rate.
func NewUART(eng *sim.Engine, name string, stats *sim.Stats) *UART {
	return &UART{eng: eng, name: name, stats: stats, CyclesPerByte: StdBaudCycles}
}

// Name identifies the device in the chipset address map.
func (u *UART) Name() string { return u.name }

func (u *UART) updateIRQ() {
	if u.IRQ == nil {
		return
	}
	// Interrupt on received data available, when enabled.
	u.IRQ(u.ier&1 != 0 && len(u.rx) > 0)
}

// Read implements core-side MMIO reads.
func (u *UART) Read(off uint64, size int) uint64 {
	switch off {
	case UartRBR:
		if len(u.rx) == 0 {
			return 0
		}
		b := u.rx[0]
		u.rx = u.rx[1:]
		u.updateIRQ()
		return uint64(b)
	case UartIER:
		return uint64(u.ier)
	case UartIIR:
		if u.ier&1 != 0 && len(u.rx) > 0 {
			return 0x04 // received data available
		}
		return 0x01 // no interrupt pending
	case UartLCR:
		return uint64(u.lcr)
	case UartLSR:
		var v uint64 = lsrTXIdle
		if !u.shifting {
			v |= lsrTHREmpty
		}
		if len(u.rx) > 0 {
			v |= lsrDataReady
		}
		return v
	}
	return 0
}

// Write implements core-side MMIO writes.
func (u *UART) Write(off uint64, size int, v uint64) {
	switch off {
	case UartTHR:
		if u.stats != nil {
			u.stats.Counter(u.name + ".tx_bytes").Inc()
		}
		u.shifting = true
		b := byte(v)
		u.eng.Schedule(u.CyclesPerByte, func() {
			u.tx = append(u.tx, b)
			u.shifting = false
		})
	case UartIER:
		u.ier = uint8(v)
		u.updateIRQ()
	case UartLCR:
		u.lcr = uint8(v)
	}
}

// HostWrite injects bytes on the receive side (host -> core).
func (u *UART) HostWrite(data []byte) {
	u.rx = append(u.rx, data...)
	u.updateIRQ()
}

// HostRead drains the transmit side (core -> host).
func (u *UART) HostRead() []byte {
	out := u.tx
	u.tx = nil
	return out
}

// TxPending returns the bytes queued toward the host without draining.
func (u *UART) TxPending() int { return len(u.tx) }

// LiteTap exposes the UART over AXI-Lite for the host tunnel: the same
// registers, as 32-bit words at stride 4 (the Xilinx AXI UART16550 layout).
func (u *UART) LiteTap() axi.LiteTarget { return liteTap{u} }

type liteTap struct{ u *UART }

func (t liteTap) ReadReg(addr axi.Addr) uint32 {
	return uint32(t.u.Read(uint64(addr)/4, 1))
}

func (t liteTap) WriteReg(addr axi.Addr, v uint32) {
	t.u.Write(uint64(addr)/4, 1, uint64(v))
}

// VirtualSerial is the host program that creates a virtual serial device and
// tunnels data between the PCIe driver and it (paper §3.4.1). It polls the
// UART through the AXI-Lite tap and accumulates console output.
type VirtualSerial struct {
	uart *UART
	out  []byte
}

// NewVirtualSerial attaches to a UART.
func NewVirtualSerial(u *UART) *VirtualSerial { return &VirtualSerial{uart: u} }

// Poll drains pending TX bytes into the console buffer.
func (v *VirtualSerial) Poll() {
	v.out = append(v.out, v.uart.HostRead()...)
}

// Console returns everything printed so far.
func (v *VirtualSerial) Console() string {
	v.Poll()
	return string(v.out)
}

// Send types input into the prototype's console.
func (v *VirtualSerial) Send(s string) { v.uart.HostWrite([]byte(s)) }
