package dev

import (
	"smappic/internal/mem"
	"smappic/internal/sim"
)

// Virtual SD card (paper §3.4.2). The F1 FPGA has no SD slot, so SMAPPIC
// introduces the notion of a virtual device: requests to the SD controller
// are forwarded into the prototype's main memory instead. The card's
// contents live in the top half of the node's DRAM; the bottom half is the
// prototype's main memory. Virtual devices provide functionality only — the
// controller charges a nominal DMA time, not real SD timing.

// SD controller register offsets (a simple DMA-style block controller).
const (
	SDSector = 0x00 // sector number (512-byte units)
	SDTarget = 0x08 // DRAM destination/source address
	SDCount  = 0x10 // number of sectors
	SDCmd    = 0x18 // 1 = read (card->mem), 2 = write (mem->card)
	SDStatus = 0x20 // 0 = idle/done, 1 = busy
)

// SDSectorBytes is the transfer granule.
const SDSectorBytes = 512

// SDCard is the virtual SD card controller for one node.
type SDCard struct {
	eng     *sim.Engine
	backing *mem.Backing
	// CardBase is the physical address of the card image (top half of the
	// node's DRAM region).
	CardBase uint64
	// CardSize bounds the image.
	CardSize uint64
	stats    *sim.Stats
	name     string

	// DMACyclesPerSector models the copy performed through the memory
	// system (functional device, coarse timing).
	DMACyclesPerSector sim.Time

	sector, target, count uint64
	busy                  bool
}

// NewSDCard creates the controller. Contents are read and written directly
// in the backing store at CardBase.
func NewSDCard(eng *sim.Engine, backing *mem.Backing, cardBase, cardSize uint64, stats *sim.Stats, name string) *SDCard {
	return &SDCard{
		eng: eng, backing: backing,
		CardBase: cardBase, CardSize: cardSize,
		stats: stats, name: name,
		DMACyclesPerSector: 64, // one line per 8 cycles over the NoC path
	}
}

// Name identifies the device in the chipset address map.
func (s *SDCard) Name() string { return s.name }

// LoadImage writes a filesystem/boot image onto the card, as the host-side
// SD initialization driver does over PCIe.
func (s *SDCard) LoadImage(offset uint64, data []byte) {
	s.backing.WriteBytes(s.CardBase+offset, data)
}

// ReadImage reads back card contents (for tests and host tooling).
func (s *SDCard) ReadImage(offset uint64, n int) []byte {
	out := make([]byte, n)
	s.backing.ReadBytes(s.CardBase+offset, out)
	return out
}

// Read implements core-side MMIO reads.
func (s *SDCard) Read(off uint64, size int) uint64 {
	switch off {
	case SDSector:
		return s.sector
	case SDTarget:
		return s.target
	case SDCount:
		return s.count
	case SDStatus:
		if s.busy {
			return 1
		}
		return 0
	}
	return 0
}

// Write implements core-side MMIO writes.
func (s *SDCard) Write(off uint64, size int, v uint64) {
	switch off {
	case SDSector:
		s.sector = v
	case SDTarget:
		s.target = v
	case SDCount:
		s.count = v
	case SDCmd:
		s.start(int(v))
	}
}

func (s *SDCard) start(cmd int) {
	if s.busy || s.count == 0 {
		return
	}
	s.busy = true
	n := s.count
	if s.stats != nil {
		s.stats.Counter(s.name + ".transfers").Inc()
		s.stats.Counter(s.name + ".sectors").Add(n)
	}
	s.eng.Schedule(s.DMACyclesPerSector*sim.Time(n), func() {
		buf := make([]byte, n*SDSectorBytes)
		card := s.CardBase + s.sector*SDSectorBytes
		switch cmd {
		case 1: // card -> memory
			s.backing.ReadBytes(card, buf)
			s.backing.WriteBytes(s.target, buf)
		case 2: // memory -> card
			s.backing.ReadBytes(s.target, buf)
			s.backing.WriteBytes(card, buf)
		}
		s.busy = false
	})
}
