package dev

// PPP framing over the overclocked data UART (paper §3.4.1): "We used the
// overclocked device to connect the prototype to the Internet using the
// standard modem connection utility pppd." This file implements the
// HDLC-like byte framing pppd speaks — flag delimiters, control-character
// escaping and a frame check sequence — plus an endpoint that turns a UART
// byte stream into a datagram interface.

const (
	pppFlag = 0x7E
	pppEsc  = 0x7D
	pppXOR  = 0x20
)

// fcs16 computes the PPP frame check sequence (CRC-16/X.25, the HDLC FCS).
func fcs16(data []byte) uint16 {
	fcs := uint16(0xFFFF)
	for _, b := range data {
		fcs ^= uint16(b)
		for i := 0; i < 8; i++ {
			if fcs&1 != 0 {
				fcs = fcs>>1 ^ 0x8408
			} else {
				fcs >>= 1
			}
		}
	}
	return ^fcs
}

// PPPEncode frames one datagram: flag, escaped payload+FCS, flag.
func PPPEncode(payload []byte) []byte {
	body := make([]byte, 0, len(payload)+2)
	body = append(body, payload...)
	fcs := fcs16(payload)
	body = append(body, byte(fcs), byte(fcs>>8))

	out := []byte{pppFlag}
	for _, b := range body {
		if b == pppFlag || b == pppEsc || b < 0x20 {
			out = append(out, pppEsc, b^pppXOR)
		} else {
			out = append(out, b)
		}
	}
	return append(out, pppFlag)
}

// PPPEndpoint reassembles datagrams from a UART byte stream and frames
// outgoing ones. Feed receive-side bytes with Consume; completed datagrams
// arrive on the OnFrame callback. Damaged frames (bad FCS) are counted and
// dropped, as pppd does.
type PPPEndpoint struct {
	OnFrame func(payload []byte)

	buf      []byte
	inFrame  bool
	escaping bool

	Received uint64
	Dropped  uint64
}

// Consume processes raw bytes from the line.
func (e *PPPEndpoint) Consume(data []byte) {
	for _, b := range data {
		switch {
		case b == pppFlag:
			if e.inFrame && len(e.buf) > 0 {
				e.finish()
			}
			e.inFrame = true
			e.buf = e.buf[:0]
			e.escaping = false
		case !e.inFrame:
			// Noise between frames: ignore.
		case b == pppEsc:
			e.escaping = true
		default:
			if e.escaping {
				b ^= pppXOR
				e.escaping = false
			}
			e.buf = append(e.buf, b)
		}
	}
}

func (e *PPPEndpoint) finish() {
	if len(e.buf) < 2 {
		e.Dropped++
		return
	}
	payload := e.buf[:len(e.buf)-2]
	got := uint16(e.buf[len(e.buf)-2]) | uint16(e.buf[len(e.buf)-1])<<8
	if got != fcs16(payload) {
		e.Dropped++
		return
	}
	e.Received++
	if e.OnFrame != nil {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		e.OnFrame(cp)
	}
}

// PPPHost is the host side of the tunnel: it pumps the UART's transmit
// buffer into a PPP endpoint and sends framed datagrams down the receive
// side — the "virtual serial device + pppd" pair of the paper.
type PPPHost struct {
	uart *UART
	ep   PPPEndpoint
	// Inbox collects datagrams the prototype sent.
	Inbox [][]byte
}

// NewPPPHost attaches to the (typically overclocked) data UART.
func NewPPPHost(u *UART) *PPPHost {
	h := &PPPHost{uart: u}
	h.ep.OnFrame = func(p []byte) { h.Inbox = append(h.Inbox, p) }
	return h
}

// Poll drains pending UART bytes through the framer.
func (h *PPPHost) Poll() { h.ep.Consume(h.uart.HostRead()) }

// Send frames a datagram toward the prototype.
func (h *PPPHost) Send(payload []byte) { h.uart.HostWrite(PPPEncode(payload)) }

// Stats returns (received, dropped) frame counts.
func (h *PPPHost) Stats() (received, dropped uint64) { return h.ep.Received, h.ep.Dropped }
