// Package mem provides the memory subsystem: the functional backing store
// holding the prototype's physical memory, the DRAM device model, and the
// NoC-AXI4 memory controller from paper §3.2 (Fig. 5).
//
// Functional data lives in the backing store and is read/written at the
// simulation time an access completes; caches (package cache) track only
// coherence state and timing. This split — standard in architecture
// simulators — keeps the coherence protocol race-free functionally while
// the timing model still generates the full message traffic.
package mem

import (
	"fmt"
	"sort"
	"sync"

	"smappic/internal/ckpt"
)

// pageBits is the granularity of on-demand allocation in the backing store.
const pageBits = 16 // 64 KiB pages

// Backing is a sparse flat physical memory. It allocates 64 KiB pages on
// first touch, so multi-GB address spaces cost only what is actually used.
// The zero value is ready to use.
//
// Under sharded execution several shard goroutines touch the store inside a
// window, so the page map is guarded by a lock. The data bytes themselves
// are not: conflicting same-line accesses from different shards are
// serialized by the coherence protocol, whose permission transfer crosses
// the PCIe fabric and therefore separates the accesses by at least the
// lookahead window — a synchronization barrier (and its happens-before
// edge) always sits between them.
type Backing struct {
	mu    sync.RWMutex
	pages map[uint64][]byte
}

// NewBacking returns an empty backing store.
func NewBacking() *Backing { return &Backing{pages: make(map[uint64][]byte)} }

func (b *Backing) page(addr uint64) []byte {
	key := addr >> pageBits
	b.mu.RLock()
	p, ok := b.pages[key]
	b.mu.RUnlock()
	if ok {
		return p
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.pages == nil {
		b.pages = make(map[uint64][]byte)
	}
	p, ok = b.pages[key]
	if !ok {
		p = make([]byte, 1<<pageBits)
		b.pages[key] = p
	}
	return p
}

// CaptureState copies every materialized page into snapshot form, sorted by
// page number so equal memory images serialize byte-identically.
func (b *Backing) CaptureState() ckpt.MemState {
	b.mu.RLock()
	defer b.mu.RUnlock()
	st := ckpt.MemState{PageBytes: 1 << pageBits}
	for key, p := range b.pages {
		data := make([]byte, len(p))
		copy(data, p)
		st.Pages = append(st.Pages, ckpt.MemPage{Page: key, Data: data})
	}
	sort.Slice(st.Pages, func(i, j int) bool { return st.Pages[i].Page < st.Pages[j].Page })
	return st
}

// RestoreState replaces the store's contents with a captured image.
func (b *Backing) RestoreState(st ckpt.MemState) error {
	if st.PageBytes != 1<<pageBits {
		return &ckpt.MismatchError{Field: "backing page size",
			Got: fmt.Sprint(st.PageBytes), Want: fmt.Sprint(1 << pageBits)}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pages = make(map[uint64][]byte, len(st.Pages))
	for _, pg := range st.Pages {
		if len(pg.Data) != 1<<pageBits {
			return &ckpt.CorruptError{Reason: fmt.Sprintf("backing page %#x has %d bytes", pg.Page, len(pg.Data))}
		}
		data := make([]byte, len(pg.Data))
		copy(data, pg.Data)
		b.pages[pg.Page] = data
	}
	return nil
}

// Footprint returns the number of bytes currently allocated.
func (b *Backing) Footprint() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return uint64(len(b.pages)) << pageBits
}

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (b *Backing) ReadBytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		p := b.page(addr)
		off := addr & (1<<pageBits - 1)
		n := copy(dst, p[off:])
		dst = dst[n:]
		addr += uint64(n)
	}
}

// WriteBytes copies src into memory starting at addr.
func (b *Backing) WriteBytes(addr uint64, src []byte) {
	for len(src) > 0 {
		p := b.page(addr)
		off := addr & (1<<pageBits - 1)
		n := copy(p[off:], src)
		src = src[n:]
		addr += uint64(n)
	}
}

// ReadU64 reads a little-endian 64-bit word. addr must be 8-byte aligned.
func (b *Backing) ReadU64(addr uint64) uint64 {
	if addr&7 != 0 {
		panic(fmt.Sprintf("mem: unaligned ReadU64 at %#x", addr))
	}
	p := b.page(addr)
	off := addr & (1<<pageBits - 1)
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(p[off+uint64(i)]) << (8 * i)
	}
	return v
}

// WriteU64 writes a little-endian 64-bit word. addr must be 8-byte aligned.
func (b *Backing) WriteU64(addr, v uint64) {
	if addr&7 != 0 {
		panic(fmt.Sprintf("mem: unaligned WriteU64 at %#x", addr))
	}
	p := b.page(addr)
	off := addr & (1<<pageBits - 1)
	for i := 0; i < 8; i++ {
		p[off+uint64(i)] = byte(v >> (8 * i))
	}
}

// ReadU32 reads a little-endian 32-bit word. addr must be 4-byte aligned.
func (b *Backing) ReadU32(addr uint64) uint32 {
	if addr&3 != 0 {
		panic(fmt.Sprintf("mem: unaligned ReadU32 at %#x", addr))
	}
	var buf [4]byte
	b.ReadBytes(addr, buf[:])
	return uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
}

// WriteU32 writes a little-endian 32-bit word. addr must be 4-byte aligned.
func (b *Backing) WriteU32(addr uint64, v uint32) {
	if addr&3 != 0 {
		panic(fmt.Sprintf("mem: unaligned WriteU32 at %#x", addr))
	}
	b.WriteBytes(addr, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

// ReadU16 reads a little-endian 16-bit halfword.
func (b *Backing) ReadU16(addr uint64) uint16 {
	var buf [2]byte
	b.ReadBytes(addr, buf[:])
	return uint16(buf[0]) | uint16(buf[1])<<8
}

// WriteU16 writes a little-endian 16-bit halfword.
func (b *Backing) WriteU16(addr uint64, v uint16) {
	b.WriteBytes(addr, []byte{byte(v), byte(v >> 8)})
}

// ReadU8 reads one byte.
func (b *Backing) ReadU8(addr uint64) uint8 {
	p := b.page(addr)
	return p[addr&(1<<pageBits-1)]
}

// WriteU8 writes one byte.
func (b *Backing) WriteU8(addr uint64, v uint8) {
	p := b.page(addr)
	p[addr&(1<<pageBits-1)] = v
}
