package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"smappic/internal/axi"
	"smappic/internal/fault"
	"smappic/internal/noc"
	"smappic/internal/sim"
)

func TestBackingReadWriteRoundTrip(t *testing.T) {
	b := NewBacking()
	b.WriteU64(0x1000, 0xDEADBEEFCAFEF00D)
	if got := b.ReadU64(0x1000); got != 0xDEADBEEFCAFEF00D {
		t.Fatalf("ReadU64 = %#x", got)
	}
	// Little-endian byte order.
	if got := b.ReadU8(0x1000); got != 0x0D {
		t.Fatalf("low byte = %#x, want 0x0D", got)
	}
	b.WriteU32(0x2000, 0x12345678)
	if got := b.ReadU32(0x2000); got != 0x12345678 {
		t.Fatalf("ReadU32 = %#x", got)
	}
	b.WriteU16(0x3001, 0xBEEF)
	if got := b.ReadU16(0x3001); got != 0xBEEF {
		t.Fatalf("ReadU16 = %#x", got)
	}
}

func TestBackingCrossPageAccess(t *testing.T) {
	b := NewBacking()
	// Write spanning a 64 KiB page boundary.
	addr := uint64(1<<16) - 3
	src := []byte{1, 2, 3, 4, 5, 6}
	b.WriteBytes(addr, src)
	dst := make([]byte, 6)
	b.ReadBytes(addr, dst)
	if !bytes.Equal(src, dst) {
		t.Fatalf("cross-page read = %v, want %v", dst, src)
	}
}

func TestBackingSparseFootprint(t *testing.T) {
	b := NewBacking()
	b.WriteU8(0, 1)
	b.WriteU8(1<<40, 1) // distant address
	if got := b.Footprint(); got != 2<<16 {
		t.Fatalf("footprint = %d, want two pages", got)
	}
}

func TestBackingUnalignedPanics(t *testing.T) {
	b := NewBacking()
	defer func() {
		if recover() == nil {
			t.Error("unaligned ReadU64 did not panic")
		}
	}()
	b.ReadU64(0x1001)
}

// Property: WriteBytes/ReadBytes round-trips arbitrary data at arbitrary
// addresses.
func TestBackingRoundTripProperty(t *testing.T) {
	b := NewBacking()
	f := func(addr uint32, data []byte) bool {
		if len(data) > 4096 {
			data = data[:4096]
		}
		b.WriteBytes(uint64(addr), data)
		out := make([]byte, len(data))
		b.ReadBytes(uint64(addr), out)
		return bytes.Equal(data, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDRAMLatencyAndData(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBacking()
	d := NewDRAM(eng, "dram", 76, 64, b, 0x8000_0000, nil)

	var wrAt sim.Time
	d.Write(&axi.WriteReq{Addr: 0x40, Data: []byte{0xAA, 0xBB}}, func(*axi.WriteResp) { wrAt = eng.Now() })
	eng.Run()
	if wrAt != 77 { // 76 latency + 1 beat
		t.Fatalf("write completed at %d, want 77", wrAt)
	}
	if b.ReadU8(0x8000_0040) != 0xAA || b.ReadU8(0x8000_0041) != 0xBB {
		t.Fatal("DRAM write did not reach backing store at translated address")
	}

	var rd []byte
	d.Read(&axi.ReadReq{Addr: 0x40, Len: 2}, func(r *axi.ReadResp) { rd = r.Data })
	eng.Run()
	if !bytes.Equal(rd, []byte{0xAA, 0xBB}) {
		t.Fatalf("DRAM read = %v", rd)
	}
}

func TestDRAMBandwidthSerializes(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDRAM(eng, "dram", 10, 64, nil, 0, nil)
	var times []sim.Time
	for i := 0; i < 3; i++ {
		d.Read(&axi.ReadReq{Addr: 0, Len: 64}, func(*axi.ReadResp) { times = append(times, eng.Now()) })
	}
	eng.Run()
	if len(times) != 3 {
		t.Fatalf("got %d completions", len(times))
	}
	// Each 64B read = 1 beat; they serialize 1 cycle apart.
	if times[1] != times[0]+1 || times[2] != times[1]+1 {
		t.Fatalf("bandwidth not serialized: %v", times)
	}
}

func TestShaperAddsLatencyAndThrottles(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDRAM(eng, "dram", 0, 0, nil, 0, nil)
	s := axi.NewShaper(eng, d, 50, 8)
	var times []sim.Time
	for i := 0; i < 2; i++ {
		s.Read(&axi.ReadReq{Addr: 0, Len: 64}, func(*axi.ReadResp) { times = append(times, eng.Now()) })
	}
	eng.Run()
	// 64B at 8B/cycle = 8 shaper beats + 1 DRAM beat. First: 50+8+1.
	// Second: queued 8 more cycles behind the first.
	if times[0] != 59 {
		t.Errorf("first shaped read at %d, want 59", times[0])
	}
	if times[1] != 67 {
		t.Errorf("second shaped read at %d, want 67", times[1])
	}
}

// controllerHarness wires a controller to a 1x2 mesh and a DRAM.
func controllerHarness(latency sim.Time, ids int) (*sim.Engine, *noc.Mesh, *Controller, *[]Resp) {
	eng := sim.NewEngine()
	mesh := noc.New(eng, "mesh", noc.DefaultParams(2, 1), nil)
	dram := NewDRAM(eng, "dram", latency, 64, nil, 0, nil)
	ctl := NewController(eng, mesh, "memctl", dram, nil)
	if ids > 0 {
		ctl.IDsPerEngine = ids
	}
	mesh.AttachChipset(ctl.Handle)
	resps := &[]Resp{}
	mesh.AttachTile(1, func(p *noc.Packet) {
		*resps = append(*resps, *p.Payload.(*Resp))
	})
	return eng, mesh, ctl, resps
}

func sendMemReq(mesh *noc.Mesh, req *Req) {
	data := 0
	if req.Write {
		data = req.Size
	}
	mesh.Send(&noc.Packet{
		Class:   noc.NoC3,
		Src:     req.Src,
		Dst:     noc.Dest{Port: noc.PortChipset},
		Flits:   FlitsFor(data),
		Payload: req,
	})
}

func TestControllerReadRoundTrip(t *testing.T) {
	eng, mesh, _, resps := controllerHarness(76, 0)
	sendMemReq(mesh, &Req{Addr: 0x1234, Size: 16, Src: noc.Dest{Port: noc.PortTile, Tile: 1}, Tag: 99})
	end := eng.Run()
	if len(*resps) != 1 {
		t.Fatalf("got %d responses", len(*resps))
	}
	r := (*resps)[0]
	if r.Tag != 99 || r.Write || r.Addr != 0x1234 {
		t.Fatalf("bad response %+v", r)
	}
	// Paper Table 2: DRAM latency 80 cycles. NoC traversal + deserialize +
	// DRAM + NoC back should land near 80-100.
	if end < 80 || end > 110 {
		t.Fatalf("memory round trip = %d cycles, want ~80-110", end)
	}
}

func TestControllerWriteAck(t *testing.T) {
	eng, mesh, _, resps := controllerHarness(10, 0)
	sendMemReq(mesh, &Req{Write: true, Addr: 0x40, Size: 64, Src: noc.Dest{Port: noc.PortTile, Tile: 1}, Tag: 7})
	eng.Run()
	if len(*resps) != 1 || !(*resps)[0].Write || (*resps)[0].Tag != 7 {
		t.Fatalf("bad write ack %+v", *resps)
	}
}

func TestControllerTagsPreservedAcrossOutOfOrder(t *testing.T) {
	eng, mesh, _, resps := controllerHarness(5, 0)
	for i := uint64(0); i < 8; i++ {
		sendMemReq(mesh, &Req{Addr: i * 64, Size: 8, Src: noc.Dest{Port: noc.PortTile, Tile: 1}, Tag: i})
	}
	eng.Run()
	if len(*resps) != 8 {
		t.Fatalf("got %d responses, want 8", len(*resps))
	}
	seen := map[uint64]bool{}
	for _, r := range *resps {
		seen[r.Tag] = true
	}
	if len(seen) != 8 {
		t.Fatalf("tags collided: %+v", *resps)
	}
}

func TestControllerIDLimitQueues(t *testing.T) {
	// Counters resolve at construction, so stats must be wired up front.
	var st sim.Stats
	eng := sim.NewEngine()
	mesh := noc.New(eng, "mesh", noc.DefaultParams(2, 1), nil)
	dram := NewDRAM(eng, "dram", 100, 64, nil, 0, nil)
	ctl := NewController(eng, mesh, "memctl", dram, &st)
	ctl.IDsPerEngine = 2
	mesh.AttachChipset(ctl.Handle)
	resps := &[]Resp{}
	mesh.AttachTile(1, func(p *noc.Packet) {
		*resps = append(*resps, *p.Payload.(*Resp))
	})
	for i := uint64(0); i < 6; i++ {
		sendMemReq(mesh, &Req{Addr: i * 64, Size: 8, Src: noc.Dest{Port: noc.PortTile, Tile: 1}, Tag: i})
	}
	eng.Run()
	if len(*resps) != 6 {
		t.Fatalf("got %d responses, want 6", len(*resps))
	}
	if st.Get("memctl.queued") == 0 {
		t.Error("expected queueing with 2 IDs and 6 requests")
	}
}

func TestControllerReadWriteEnginesIndependent(t *testing.T) {
	// Saturate the read engine; writes must still flow.
	eng, mesh, ctl, resps := controllerHarness(1000, 1)
	_ = ctl
	sendMemReq(mesh, &Req{Addr: 0, Size: 8, Src: noc.Dest{Port: noc.PortTile, Tile: 1}, Tag: 1})
	sendMemReq(mesh, &Req{Addr: 64, Size: 8, Src: noc.Dest{Port: noc.PortTile, Tile: 1}, Tag: 2})
	sendMemReq(mesh, &Req{Write: true, Addr: 128, Size: 64, Src: noc.Dest{Port: noc.PortTile, Tile: 1}, Tag: 3})
	eng.RunUntil(1500)
	var gotWrite bool
	for _, r := range *resps {
		if r.Write {
			gotWrite = true
		}
	}
	if !gotWrite {
		t.Error("write starved behind saturated read engine")
	}
	eng.Run()
	if len(*resps) != 3 {
		t.Fatalf("got %d responses, want 3", len(*resps))
	}
}

func TestFlitsFor(t *testing.T) {
	cases := map[int]int{0: 1, 1: 2, 8: 2, 9: 3, 64: 9}
	for data, want := range cases {
		if got := FlitsFor(data); got != want {
			t.Errorf("FlitsFor(%d) = %d, want %d", data, got, want)
		}
	}
}

func TestSECDEDModel(t *testing.T) {
	eng := sim.NewEngine()
	var st sim.Stats
	d := NewDRAM(eng, "node0.dram", 10, 64, nil, 0, &st)
	d.SetInjector(fault.NewInjector(eng, fault.MustParse("node0.dram.flip:n=2;node0.dram.flip2:n=1,after=2", 3)))

	var oks []bool
	for i := 0; i < 4; i++ {
		d.Read(&axi.ReadReq{Addr: 0, Len: 64}, func(r *axi.ReadResp) { oks = append(oks, r.OK) })
	}
	eng.Run()
	want := []bool{true, true, false, true} // 2 corrected, then 1 fatal
	for i, ok := range oks {
		if ok != want[i] {
			t.Fatalf("read %d OK=%v, want %v (all: %v)", i, ok, want[i], oks)
		}
	}
	if st.Get("node0.dram.ecc_corrected") != 2 {
		t.Errorf("ecc_corrected = %d, want 2", st.Get("node0.dram.ecc_corrected"))
	}
	if st.Get("node0.dram.ecc_uncorrectable") != 1 {
		t.Errorf("ecc_uncorrectable = %d, want 1", st.Get("node0.dram.ecc_uncorrectable"))
	}
}

func TestControllerCountsAXIErrors(t *testing.T) {
	eng := sim.NewEngine()
	var st sim.Stats
	mesh := noc.New(eng, "mesh", noc.DefaultParams(2, 2), nil)
	d := NewDRAM(eng, "node0.dram", 10, 64, nil, 0, &st)
	d.SetInjector(fault.NewInjector(eng, fault.MustParse("node0.dram.flip2:p=1", 3)))
	ctl := NewController(eng, mesh, "memctl", d, &st)

	responses := 0
	mesh.AttachTile(1, func(pkt *noc.Packet) { responses++ })
	ctl.Handle(&noc.Packet{Payload: &Req{
		Addr: 0x100, Size: 64,
		Src: noc.Dest{Port: noc.PortTile, Tile: 1},
	}})
	eng.Run()
	if responses != 1 {
		t.Fatalf("requester got %d responses, want 1 (MSHR must be released)", responses)
	}
	if st.Get("memctl.axi_errors") != 1 {
		t.Errorf("axi_errors = %d, want 1", st.Get("memctl.axi_errors"))
	}
}
