package mem

import (
	"smappic/internal/axi"
	"smappic/internal/sim"
)

// DRAM models one F1 onboard DDR4 channel as an AXI4 target: fixed access
// latency plus bandwidth serialization. When a Backing is attached, reads
// and writes also move functional data (used by host DMA and the virtual SD
// card; the cache hierarchy moves its data through the backing store
// directly and uses DRAM only for timing).
type DRAM struct {
	eng     *sim.Engine
	name    string
	stats   *sim.Stats
	backing *Backing
	base    uint64 // global physical address of this channel's offset 0

	// Latency is the device access time in cycles. The paper's Table 2
	// lists 80 cycles end-to-end from the LLC; the controller path adds
	// the difference.
	Latency sim.Time
	// BytesPerCycle limits channel throughput.
	BytesPerCycle int

	busy sim.Time
}

// NewDRAM creates a DRAM channel. backing may be nil for timing-only use.
func NewDRAM(eng *sim.Engine, name string, latency sim.Time, bytesPerCycle int, backing *Backing, base uint64, stats *sim.Stats) *DRAM {
	return &DRAM{
		eng: eng, name: name, stats: stats,
		backing: backing, base: base,
		Latency: latency, BytesPerCycle: bytesPerCycle,
	}
}

func (d *DRAM) delay(n int) sim.Time {
	beats := sim.Time(1)
	if d.BytesPerCycle > 0 {
		beats = sim.Time((n + d.BytesPerCycle - 1) / d.BytesPerCycle)
		if beats == 0 {
			beats = 1
		}
	}
	start := d.eng.Now()
	if d.busy > start {
		start = d.busy
	}
	d.busy = start + beats
	return (start - d.eng.Now()) + beats + d.Latency
}

// Write applies a write after the access latency.
func (d *DRAM) Write(req *axi.WriteReq, done func(*axi.WriteResp)) {
	if d.stats != nil {
		d.stats.Counter(d.name + ".writes").Inc()
		d.stats.Counter(d.name + ".write_bytes").Add(uint64(len(req.Data)))
	}
	d.eng.Schedule(d.delay(len(req.Data)), func() {
		if d.backing != nil && len(req.Data) > 0 {
			d.backing.WriteBytes(d.base+req.Addr, req.Data)
		}
		done(&axi.WriteResp{ID: req.ID, OK: true})
	})
}

// Read returns data after the access latency.
func (d *DRAM) Read(req *axi.ReadReq, done func(*axi.ReadResp)) {
	if d.stats != nil {
		d.stats.Counter(d.name + ".reads").Inc()
		d.stats.Counter(d.name + ".read_bytes").Add(uint64(req.Len))
	}
	d.eng.Schedule(d.delay(req.Len), func() {
		resp := &axi.ReadResp{ID: req.ID, OK: true}
		if d.backing != nil && req.Len > 0 {
			resp.Data = make([]byte, req.Len)
			d.backing.ReadBytes(d.base+req.Addr, resp.Data)
		}
		done(resp)
	})
}

var _ axi.Target = (*DRAM)(nil)
