package mem

import (
	"smappic/internal/axi"
	"smappic/internal/ckpt"
	"smappic/internal/fault"
	"smappic/internal/sim"
)

// DRAM models one F1 onboard DDR4 channel as an AXI4 target: fixed access
// latency plus bandwidth serialization. When a Backing is attached, reads
// and writes also move functional data (used by host DMA and the virtual SD
// card; the cache hierarchy moves its data through the backing store
// directly and uses DRAM only for timing).
type DRAM struct {
	eng     *sim.Engine
	name    string
	stats   *sim.Stats
	backing *Backing
	base    uint64 // global physical address of this channel's offset 0

	// Latency is the device access time in cycles. The paper's Table 2
	// lists 80 cycles end-to-end from the LLC; the controller path adds
	// the difference.
	Latency sim.Time
	// BytesPerCycle limits channel throughput.
	BytesPerCycle int

	busy sim.Time
	site *fault.Site // bit-flip fault site (the DRAM's own name)

	// Pre-resolved instruments (nil and free when telemetry is disabled).
	cReads      *sim.Counter
	cWrites     *sim.Counter
	cReadBytes  *sim.Counter
	cWriteBytes *sim.Counter
	cConflicts  *sim.Counter // accesses that found the channel busy
	cConfCycles *sim.Counter // cycles those accesses waited
	cEccFixed   *sim.Counter // single-bit errors SECDED corrected
	cEccFatal   *sim.Counter // double-bit errors SECDED detected (OK:false)
}

// NewDRAM creates a DRAM channel. backing may be nil for timing-only use.
func NewDRAM(eng *sim.Engine, name string, latency sim.Time, bytesPerCycle int, backing *Backing, base uint64, stats *sim.Stats) *DRAM {
	d := &DRAM{
		eng: eng, name: name, stats: stats,
		backing: backing, base: base,
		Latency: latency, BytesPerCycle: bytesPerCycle,
	}
	if stats != nil {
		d.cReads = stats.Counter(name + ".reads")
		d.cWrites = stats.Counter(name + ".writes")
		d.cReadBytes = stats.Counter(name + ".read_bytes")
		d.cWriteBytes = stats.Counter(name + ".write_bytes")
		d.cConflicts = stats.Counter(name + ".conflicts")
		d.cConfCycles = stats.Counter(name + ".conflict_cycles")
		d.cEccFixed = stats.Counter(name + ".ecc_corrected")
		d.cEccFatal = stats.Counter(name + ".ecc_uncorrectable")
	}
	return d
}

// SetInjector resolves this channel's bit-flip fault site (named after the
// channel, e.g. "node0.dram"). flip rules model single-bit upsets the SECDED
// code corrects; flip2 rules model double-bit upsets it can only detect,
// failing the read with OK:false. Must be called before traffic; nil-safe.
func (d *DRAM) SetInjector(inj *fault.Injector) { d.site = inj.SiteOn(d.name, d.eng) }

// CaptureState records the channel's timing state (the bandwidth
// serialization clock; everything else is configuration or statistics).
func (d *DRAM) CaptureState() ckpt.DRAMState { return ckpt.DRAMState{Busy: uint64(d.busy)} }

// RestoreState applies a captured timing state.
func (d *DRAM) RestoreState(st ckpt.DRAMState) { d.busy = sim.Time(st.Busy) }

func (d *DRAM) delay(n int) sim.Time {
	beats := sim.Time(1)
	if d.BytesPerCycle > 0 {
		beats = sim.Time((n + d.BytesPerCycle - 1) / d.BytesPerCycle)
		if beats == 0 {
			beats = 1
		}
	}
	start := d.eng.Now()
	if d.busy > start {
		d.cConflicts.Inc()
		d.cConfCycles.Add(uint64(d.busy - start))
		start = d.busy
	}
	d.busy = start + beats
	return (start - d.eng.Now()) + beats + d.Latency
}

// Write applies a write after the access latency.
func (d *DRAM) Write(req *axi.WriteReq, done func(*axi.WriteResp)) {
	d.cWrites.Inc()
	d.cWriteBytes.Add(uint64(len(req.Data)))
	d.eng.Schedule(d.delay(len(req.Data)), func() {
		if d.backing != nil && len(req.Data) > 0 {
			d.backing.WriteBytes(d.base+req.Addr, req.Data)
		}
		done(&axi.WriteResp{ID: req.ID, OK: true})
	})
}

// Read returns data after the access latency. The SECDED model runs on the
// read path: a single-bit upset is corrected transparently (counted), a
// double-bit upset is detected but uncorrectable and fails the read.
func (d *DRAM) Read(req *axi.ReadReq, done func(*axi.ReadResp)) {
	d.cReads.Inc()
	d.cReadBytes.Add(uint64(req.Len))
	d.eng.Schedule(d.delay(req.Len), func() {
		resp := &axi.ReadResp{ID: req.ID, OK: true}
		switch d.site.FlipBits() {
		case 1:
			d.cEccFixed.Inc()
		case 2:
			d.cEccFatal.Inc()
			resp.OK = false
		}
		if resp.OK && d.backing != nil && req.Len > 0 {
			resp.Data = make([]byte, req.Len)
			d.backing.ReadBytes(d.base+req.Addr, resp.Data)
		}
		done(resp)
	})
}

var _ axi.Target = (*DRAM)(nil)
