package mem

import (
	"fmt"

	"smappic/internal/axi"
	"smappic/internal/ckpt"
	"smappic/internal/noc"
	"smappic/internal/sim"
)

// Req is a memory request carried over the NoC from an LLC slice (or a
// device) to the memory controller. Tag is the requester's MSHR handle,
// echoed back in the response (the ID-MSHR mapping of paper Fig. 5).
type Req struct {
	Write bool
	Addr  uint64 // node-local DRAM offset
	Size  int    // bytes
	Src   noc.Dest
	Tag   uint64
}

// Resp is the controller's reply, sent back over the NoC.
type Resp struct {
	Write bool
	Addr  uint64
	Tag   uint64
}

// FlitsFor returns the NoC flit count for a memory message: one header flit
// plus one flit per 8 data bytes.
func FlitsFor(dataBytes int) int { return 1 + (dataBytes+7)/8 }

// engineKind selects the read or write engine.
type engineKind int

const (
	readEngine engineKind = iota
	writeEngine
)

// Controller is the NoC-AXI4 memory controller of paper §3.2 / Fig. 5.
// Requests arriving from the NoC are deserialized, buffered in the
// management module for non-blocking operation, steered into the read or
// write engine (each with a bounded AXI ID space), aligned to the 64-byte
// AXI4 boundary and issued to the DRAM channel. Responses restore the
// requester's MSHR tag and are serialized back onto the NoC.
type Controller struct {
	eng   *sim.Engine
	mesh  *noc.Mesh
	name  string
	stats *sim.Stats
	dram  axi.Target

	// DeserializeDelay models the NoC deserializer + management module.
	DeserializeDelay sim.Time
	// IDsPerEngine bounds in-flight AXI transactions per engine.
	IDsPerEngine int

	inflight [2]int
	queue    [2][]queuedReq
	nextID   axi.ID

	gInflight [2]*sim.Gauge  // read/write engine occupancy
	gQueue    [2]*sim.Gauge  // requests waiting for a free AXI ID
	hQWait    *sim.Histogram // cycles spent in the management queue
	cErrors   *sim.Counter   // DRAM responses with OK:false (e.g. ECC fatal)
	cQueued   sim.LazyCounter
	cWrites   sim.LazyCounter
	cReads    sim.LazyCounter
	enqueueFn func(any) // bound once; arg is the *Req
}

// zeroData backs the write engine's AXI beats. The protocol path is
// timing-only (functional data moves through the backing store), so every
// write carries zeros; sharing one read-only buffer avoids a 64-byte
// allocation per writeback.
var zeroData [4096]byte

// queuedReq is a request waiting for a free engine ID, with its enqueue
// time for wait accounting.
type queuedReq struct {
	req *Req
	at  sim.Time
}

// NewController creates a controller that replies through mesh and issues
// to dram (typically a *DRAM, possibly wrapped in an axi.Shaper).
func NewController(eng *sim.Engine, mesh *noc.Mesh, name string, dram axi.Target, stats *sim.Stats) *Controller {
	c := &Controller{
		eng: eng, mesh: mesh, name: name, stats: stats, dram: dram,
		DeserializeDelay: 4,
		IDsPerEngine:     16,
	}
	if stats != nil {
		c.gInflight[readEngine] = stats.Gauge(name + ".rd_inflight")
		c.gInflight[writeEngine] = stats.Gauge(name + ".wr_inflight")
		c.gQueue[readEngine] = stats.Gauge(name + ".rd_queue")
		c.gQueue[writeEngine] = stats.Gauge(name + ".wr_queue")
		c.hQWait = stats.Histogram(name + ".queue_wait")
		c.cErrors = stats.Counter(name + ".axi_errors")
	}
	c.cQueued = stats.LazyCounter(name + ".queued")
	c.cWrites = stats.LazyCounter(name + ".write_reqs")
	c.cReads = stats.LazyCounter(name + ".read_reqs")
	c.enqueueFn = func(req any) { c.enqueue(req.(*Req)) }
	return c
}

// CaptureState records the controller's persistent state. Only the
// monotonic AXI ID counter survives a quiescent safepoint: the engines and
// management queue are empty by definition (checked, since a non-quiescent
// capture would silently drop requests).
func (c *Controller) CaptureState() (ckpt.MemCtlState, error) {
	if c.inflight[readEngine] != 0 || c.inflight[writeEngine] != 0 ||
		len(c.queue[readEngine]) != 0 || len(c.queue[writeEngine]) != 0 {
		return ckpt.MemCtlState{}, fmt.Errorf("mem: %s has in-flight requests; not at a quiescent safepoint", c.name)
	}
	return ckpt.MemCtlState{NextID: uint64(c.nextID)}, nil
}

// RestoreState applies a captured state.
func (c *Controller) RestoreState(st ckpt.MemCtlState) { c.nextID = axi.ID(st.NextID) }

// Handle accepts a memory request delivered from the NoC. It is wired to
// the chipset port demux by the platform core.
func (c *Controller) Handle(pkt *noc.Packet) {
	req, ok := pkt.Payload.(*Req)
	if !ok {
		panic(fmt.Sprintf("mem: %s: unexpected payload %T", c.name, pkt.Payload))
	}
	c.eng.ScheduleArg(c.DeserializeDelay, c.enqueueFn, req)
}

func (c *Controller) enqueue(req *Req) {
	k := readEngine
	if req.Write {
		k = writeEngine
	}
	if c.inflight[k] >= c.IDsPerEngine {
		c.queue[k] = append(c.queue[k], queuedReq{req: req, at: c.eng.Now()})
		c.gQueue[k].Set(int64(len(c.queue[k])))
		c.cQueued.Inc()
		return
	}
	c.issue(k, req)
}

func (c *Controller) issue(k engineKind, req *Req) {
	c.inflight[k]++
	c.gInflight[k].Set(int64(c.inflight[k]))
	c.nextID++
	id := c.nextID
	aligned, _ := axi.Align(req.Addr)
	size := req.Size
	if size < axi.BeatBytes {
		size = axi.BeatBytes // AXI4 transfers are whole beats; narrow
		// requests select the needed bytes on return (Fig. 5).
	}
	doneOne := func(ok bool) {
		if !ok {
			// The requester's MSHR is still released and the tag echoed —
			// the NoC response format has no error channel — but the fault
			// is recorded instead of silently swallowed.
			c.cErrors.Inc()
		}
		c.inflight[k]--
		c.gInflight[k].Set(int64(c.inflight[k]))
		c.respond(req)
		if len(c.queue[k]) > 0 {
			next := c.queue[k][0]
			c.queue[k] = c.queue[k][1:]
			c.gQueue[k].Set(int64(len(c.queue[k])))
			c.hQWait.Observe(uint64(c.eng.Now() - next.at))
			c.issue(k, next.req)
		}
	}
	if req.Write {
		c.cWrites.Inc()
		data := zeroData[:]
		if size > len(data) {
			data = make([]byte, size)
		} else {
			data = data[:size]
		}
		c.dram.Write(&axi.WriteReq{Addr: aligned, ID: id, Data: data},
			func(r *axi.WriteResp) { doneOne(r.OK) })
	} else {
		c.cReads.Inc()
		c.dram.Read(&axi.ReadReq{Addr: aligned, ID: id, Len: size},
			func(r *axi.ReadResp) { doneOne(r.OK) })
	}
}

func (c *Controller) respond(req *Req) {
	data := 0
	if !req.Write {
		data = req.Size
	}
	c.mesh.Send(&noc.Packet{
		Class:   noc.NoC2,
		Src:     noc.Dest{Port: noc.PortChipset},
		Dst:     req.Src,
		Flits:   FlitsFor(data),
		Payload: &Resp{Write: req.Write, Addr: req.Addr, Tag: req.Tag},
	})
}
