// Package cache implements the BYOC memory subsystem that SMAPPIC nodes are
// built around: per-tile private caches (L1 + BYOC Private Cache) and the
// distributed, directory-coherent last-level cache (LLC), spanning nodes.
//
// The protocol is home-centric MESI, as in OpenPiton's P-Mesh: the LLC slice
// that is a line's home serializes all transactions on that line (blocking
// directory) and owners/sharers respond through the home (4-hop). Requests
// travel on NoC1, home-to-cache grants and probes on NoC2, cache-to-home
// responses and memory traffic on NoC3, so the three-channel mesh cannot
// deadlock.
//
// SMAPPIC's homing change (paper §3.1, stage 1) is implemented here: unlike
// BYOC's Coherence Domain Restriction, the home of a cache line is derived
// from its physical address — the node owning the DRAM region is the home
// node, and the slice within that node is chosen by line interleaving — so
// multi-node coherence works out of the box with no software support.
//
// Functional data lives in the backing store (package mem) and is moved at
// access-completion time; the protocol here carries permissions and timing.
package cache

import (
	"smappic/internal/mem"
	"smappic/internal/noc"
)

// LineBytes is the coherence granule.
const LineBytes = 64

// LineOf masks an address down to its cache line.
func LineOf(addr uint64) uint64 { return addr &^ (LineBytes - 1) }

// GID names a tile globally: node index and tile index within the node.
type GID struct {
	Node int
	Tile int
}

// MsgOp enumerates coherence protocol messages.
type MsgOp int

const (
	// Requests (NoC1), cache -> home.
	GetS MsgOp = iota // read permission
	GetM              // write permission
	PutS              // clean eviction notice
	PutM              // dirty eviction writeback

	// Probes (NoC2), home -> cache.
	Inv       // invalidate your copy
	Downgrade // demote M/E to S, return data

	// Probe responses (NoC3), cache -> home.
	InvAck
	DownAck

	// Grants (NoC2), home -> requester.
	DataS // shared copy
	DataE // exclusive clean copy (no other sharers existed)
	DataM // modify permission
)

// String returns the protocol name of the operation.
func (op MsgOp) String() string {
	switch op {
	case GetS:
		return "GetS"
	case GetM:
		return "GetM"
	case PutS:
		return "PutS"
	case PutM:
		return "PutM"
	case Inv:
		return "Inv"
	case Downgrade:
		return "Downgrade"
	case InvAck:
		return "InvAck"
	case DownAck:
		return "DownAck"
	case DataS:
		return "DataS"
	case DataE:
		return "DataE"
	case DataM:
		return "DataM"
	}
	return "MsgOp?"
}

// Msg is one coherence protocol message.
type Msg struct {
	Op   MsgOp
	Line uint64
	From GID // sender
	Req  GID // original requester (meaningful at the home)
}

// Flits returns the NoC flit count of the message: data-bearing messages
// carry the 64-byte line (1 header + 8 data flits); control messages are
// the OpenPiton 3-flit request format or a single-flit ack.
func (m *Msg) Flits() int {
	switch m.Op {
	case DataS, DataE, DataM, DownAck, PutM:
		return 1 + LineBytes/8
	case InvAck:
		return 1
	default:
		return 3
	}
}

// Class returns the NoC channel the message travels on.
func (m *Msg) Class() noc.Class {
	switch m.Op {
	case GetS, GetM, PutS, PutM:
		return noc.NoC1
	case Inv, Downgrade, DataS, DataE, DataM:
		return noc.NoC2
	default:
		return noc.NoC3
	}
}

// Conn is the transport the platform provides to cache components. It hides
// whether a destination is on the local mesh or behind the inter-node
// bridge.
type Conn interface {
	// SendProto routes a coherence message from one tile to another,
	// possibly across nodes.
	SendProto(from GID, to GID, msg *Msg)
	// SendMem sends a request from a tile to its node's memory controller
	// (home LLC slices and their DRAM channel are always co-located).
	SendMem(from GID, req *mem.Req)
}

// HomeFunc maps a line address to its home LLC slice.
type HomeFunc func(line uint64) GID

// Params sets cache geometry and latencies (defaults follow paper Table 2).
type Params struct {
	L1ISizeBytes int
	L1DSizeBytes int
	BPCSizeBytes int
	LLCSliceSize int
	Ways         int

	L1Latency  int // cycles for an L1 hit
	BPCLatency int // BPC lookup
	LLCLatency int // LLC slice lookup (includes directory)
	MSHRs      int // outstanding misses per BPC
}

// DefaultParams returns the Table 2 configuration: L1D 8KB, L1I 16KB,
// BPC 8KB, LLC slice 64KB, all 4-way.
func DefaultParams() Params {
	return Params{
		L1ISizeBytes: 16 << 10,
		L1DSizeBytes: 8 << 10,
		BPCSizeBytes: 8 << 10,
		LLCSliceSize: 64 << 10,
		Ways:         4,
		L1Latency:    1,
		BPCLatency:   8,
		LLCLatency:   20,
		MSHRs:        8,
	}
}
