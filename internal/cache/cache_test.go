package cache

import (
	"testing"

	"smappic/internal/mem"
	"smappic/internal/sim"
)

// fakeConn wires Private caches and Slices directly with a fixed message
// latency, standing in for the mesh+bridge transport the platform provides.
type fakeConn struct {
	eng    *sim.Engine
	lat    sim.Time
	memLat sim.Time
	privs  map[GID]*Private
	slices map[GID]*Slice
}

func newFakeConn(eng *sim.Engine) *fakeConn {
	return &fakeConn{
		eng: eng, lat: 5, memLat: 80,
		privs:  make(map[GID]*Private),
		slices: make(map[GID]*Slice),
	}
}

func (f *fakeConn) SendProto(from, to GID, msg *Msg) {
	f.eng.Schedule(f.lat, func() {
		switch msg.Op {
		case GetS, GetM, PutS, PutM, InvAck, DownAck:
			f.slices[to].HandleMsg(msg)
		default:
			f.privs[to].HandleMsg(msg)
		}
	})
}

func (f *fakeConn) SendMem(from GID, req *mem.Req) {
	f.eng.Schedule(f.memLat, func() {
		f.slices[from].HandleMemResp(&mem.Resp{Write: req.Write, Addr: req.Addr, Tag: req.Tag})
	})
}

// rig is a test system: nPriv private caches, one home slice at GID{0,99}.
type rig struct {
	eng   *sim.Engine
	conn  *fakeConn
	privs []*Private
	home  *Slice
	stats *sim.Stats
}

func newRig(t *testing.T, nPriv int) *rig {
	t.Helper()
	eng := sim.NewEngine()
	conn := newFakeConn(eng)
	var stats sim.Stats
	homeID := GID{Node: 0, Tile: 99}
	homeFn := func(line uint64) GID { return homeID }
	r := &rig{eng: eng, conn: conn, stats: &stats}
	p := DefaultParams()
	for i := 0; i < nPriv; i++ {
		id := GID{Node: 0, Tile: i}
		pc := NewPrivate(eng, id, p, conn, homeFn, &stats, "priv")
		conn.privs[id] = pc
		r.privs = append(r.privs, pc)
	}
	r.home = NewSlice(eng, homeID, p, conn, &stats, "home")
	conn.slices[homeID] = r.home
	return r
}

// load issues a blocking load from cache i and runs to completion.
func (r *rig) load(i int, addr uint64) {
	done := false
	r.privs[i].Load(addr, func() { done = true })
	r.eng.Run()
	if !done {
		panic("load never completed")
	}
}

func (r *rig) store(i int, addr uint64) {
	done := false
	r.privs[i].Store(addr, func() { done = true })
	r.eng.Run()
	if !done {
		panic("store never completed")
	}
}

func TestFirstReaderGetsExclusive(t *testing.T) {
	r := newRig(t, 2)
	r.load(0, 0x1000)
	if got := r.privs[0].State(0x1000); got != "E" {
		t.Fatalf("sole reader state = %s, want E", got)
	}
	if st, _ := r.home.DirState(0x1000); st != "E" {
		t.Fatalf("directory state = %s, want E", st)
	}
}

func TestSecondReaderSharesLine(t *testing.T) {
	r := newRig(t, 2)
	r.load(0, 0x1000)
	r.load(1, 0x1000)
	if a, b := r.privs[0].State(0x1000), r.privs[1].State(0x1000); a != "S" || b != "S" {
		t.Fatalf("states after second read = %s/%s, want S/S", a, b)
	}
	if st, n := r.home.DirState(0x1000); st != "S" || n != 2 {
		t.Fatalf("directory = %s with %d holders, want S with 2", st, n)
	}
}

func TestWriterInvalidatesSharers(t *testing.T) {
	r := newRig(t, 3)
	r.load(0, 0x2000)
	r.load(1, 0x2000)
	r.store(2, 0x2000)
	if got := r.privs[2].State(0x2000); got != "M" {
		t.Fatalf("writer state = %s, want M", got)
	}
	if a, b := r.privs[0].State(0x2000), r.privs[1].State(0x2000); a != "I" || b != "I" {
		t.Fatalf("old sharers = %s/%s, want I/I", a, b)
	}
	if st, _ := r.home.DirState(0x2000); st != "E" {
		t.Fatalf("directory = %s, want E (owned)", st)
	}
}

func TestSilentUpgradeFromExclusive(t *testing.T) {
	r := newRig(t, 1)
	r.load(0, 0x3000)
	before := r.stats.Get("home.GetM")
	r.store(0, 0x3000)
	if got := r.privs[0].State(0x3000); got != "M" {
		t.Fatalf("state after E-store = %s, want M", got)
	}
	if after := r.stats.Get("home.GetM"); after != before {
		t.Fatal("E->M upgrade generated a GetM; should be silent")
	}
}

func TestReadAfterWriteDowngradesOwner(t *testing.T) {
	r := newRig(t, 2)
	r.store(0, 0x4000)
	r.load(1, 0x4000)
	if a, b := r.privs[0].State(0x4000), r.privs[1].State(0x4000); a != "S" || b != "S" {
		t.Fatalf("states = %s/%s, want S/S after downgrade", a, b)
	}
	if r.stats.Get("priv.downgrade_rx") == 0 {
		t.Error("owner never saw a Downgrade probe")
	}
	if st, n := r.home.DirState(0x4000); st != "S" || n != 2 {
		t.Fatalf("directory = %s/%d, want S/2", st, n)
	}
}

func TestWriteAfterWriteMovesOwnership(t *testing.T) {
	r := newRig(t, 2)
	r.store(0, 0x5000)
	r.store(1, 0x5000)
	if a, b := r.privs[0].State(0x5000), r.privs[1].State(0x5000); a != "I" || b != "M" {
		t.Fatalf("states = %s/%s, want I/M", a, b)
	}
}

func TestL1HitIsFast(t *testing.T) {
	r := newRig(t, 1)
	r.load(0, 0x6000)
	start := r.eng.Now()
	var doneAt sim.Time
	r.privs[0].Load(0x6000, func() { doneAt = r.eng.Now() })
	r.eng.Run()
	if doneAt-start != 1 {
		t.Fatalf("L1 hit took %d cycles, want 1", doneAt-start)
	}
}

func TestMissLatencyIncludesMemory(t *testing.T) {
	r := newRig(t, 1)
	start := r.eng.Now()
	var doneAt sim.Time
	r.privs[0].Load(0x7000, func() { doneAt = r.eng.Now() })
	r.eng.Run()
	lat := doneAt - start
	// L1(1) + BPC(3) + msg(5) + LLC(8) + mem(80) + msg(5) ~ 102.
	if lat < 90 || lat > 120 {
		t.Fatalf("cold miss latency = %d, want ~102", lat)
	}
}

func TestLLCHitAvoidsMemory(t *testing.T) {
	r := newRig(t, 2)
	r.load(0, 0x8000)
	memReads := r.stats.Get("home.llc_miss")
	r.load(1, 0x8000)
	if got := r.stats.Get("home.llc_miss"); got != memReads {
		t.Fatal("second reader caused an LLC miss")
	}
}

func TestBPCEvictionSendsPut(t *testing.T) {
	r := newRig(t, 1)
	p := DefaultParams()
	setSpan := uint64(p.BPCSizeBytes / p.Ways) // lines mapping to set 0
	// Fill one BPC set beyond capacity with clean lines.
	for i := 0; i <= p.Ways; i++ {
		r.load(0, uint64(i)*setSpan)
	}
	if r.stats.Get("priv.evict_clean") == 0 {
		t.Error("no clean eviction notice sent")
	}
	// Dirty eviction.
	r2 := newRig(t, 1)
	r2.store(0, 0)
	for i := 1; i <= p.Ways; i++ {
		r2.store(0, uint64(i)*setSpan)
	}
	if r2.stats.Get("priv.writeback") == 0 {
		t.Error("no dirty writeback sent")
	}
}

func TestPutSCleansDirectory(t *testing.T) {
	r := newRig(t, 1)
	p := DefaultParams()
	setSpan := uint64(p.BPCSizeBytes / p.Ways)
	r.load(0, 0)
	for i := 1; i <= p.Ways; i++ {
		r.load(0, uint64(i)*setSpan)
	}
	// Line 0 was evicted; directory should no longer count the evicter.
	if st, n := r.home.DirState(0); st != "I" || n != 0 {
		t.Fatalf("directory after eviction = %s/%d, want I/0", st, n)
	}
}

func TestMSHRCoalescing(t *testing.T) {
	r := newRig(t, 1)
	done := 0
	for i := 0; i < 3; i++ {
		r.privs[0].Load(0x9000+uint64(i*8), func() { done++ })
	}
	r.eng.Run()
	if done != 3 {
		t.Fatalf("%d loads completed, want 3", done)
	}
	if r.stats.Get("priv.mshr_coalesce") != 2 {
		t.Fatalf("coalesced %d, want 2", r.stats.Get("priv.mshr_coalesce"))
	}
	if r.stats.Get("home.GetS") != 1 {
		t.Fatalf("home saw %d GetS, want 1", r.stats.Get("home.GetS"))
	}
}

func TestMSHRExhaustionStallsAndRecovers(t *testing.T) {
	r := newRig(t, 1)
	done := 0
	n := DefaultParams().MSHRs + 4
	for i := 0; i < n; i++ {
		r.privs[0].Load(uint64(i)*LineBytes*512, func() { done++ })
	}
	r.eng.Run()
	if done != n {
		t.Fatalf("%d loads completed, want %d", done, n)
	}
	if r.stats.Get("priv.mshr_stall") == 0 {
		t.Error("expected MSHR stalls")
	}
	if r.privs[0].OutstandingMisses() != 0 {
		t.Error("MSHRs leaked")
	}
}

func TestStoreCoalescedOntoReadMissEscalates(t *testing.T) {
	r := newRig(t, 2)
	// Someone else holds the line so the GetS is slow enough to overlap.
	r.store(1, 0xA000)
	loads, stores := 0, 0
	r.privs[0].Load(0xA000, func() { loads++ })
	r.privs[0].Store(0xA008, func() { stores++ })
	r.eng.Run()
	if loads != 1 || stores != 1 {
		t.Fatalf("loads=%d stores=%d, want 1/1", loads, stores)
	}
	if got := r.privs[0].State(0xA000); got != "M" {
		t.Fatalf("final state = %s, want M (store escalated)", got)
	}
}

func TestLLCEvictionBackInvalidates(t *testing.T) {
	r := newRig(t, 1)
	p := DefaultParams()
	llcSpan := uint64(p.LLCSliceSize / p.Ways)
	// Touch ways+1 lines that collide in one LLC set but spread over BPC
	// sets (llcSpan is a multiple of the BPC span, so use odd multiples).
	for i := 0; i <= p.Ways; i++ {
		r.load(0, uint64(i)*llcSpan)
	}
	if r.stats.Get("home.back_inval") == 0 {
		t.Error("LLC eviction did not back-invalidate private copies")
	}
	// The back-invalidated line must be gone from the BPC.
	if got := r.privs[0].State(0); got != "I" {
		t.Fatalf("BPC state after back-inval = %s, want I", got)
	}
}

func TestConcurrentWritersSerializedByHome(t *testing.T) {
	r := newRig(t, 4)
	done := 0
	for i := 0; i < 4; i++ {
		r.privs[i].Store(0xB000, func() { done++ })
	}
	r.eng.Run()
	if done != 4 {
		t.Fatalf("%d stores completed, want 4", done)
	}
	// Exactly one M holder at the end.
	holders := 0
	for i := 0; i < 4; i++ {
		if r.privs[i].State(0xB000) == "M" {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("%d M holders, want exactly 1", holders)
	}
	if r.stats.Get("home.queued") == 0 {
		t.Error("home never queued a conflicting transaction")
	}
}

// TestCoherenceInvariantRandom drives random loads/stores from several
// caches and checks the single-writer/multiple-reader invariant and
// BPC-directory agreement after quiescing.
func TestCoherenceInvariantRandom(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		r := newRig(t, 4)
		rng := sim.NewRNG(seed)
		pendingDone := 0
		issued := 0
		for step := 0; step < 400; step++ {
			c := rng.Intn(4)
			addr := uint64(rng.Intn(64)) * LineBytes
			issued++
			if rng.Intn(2) == 0 {
				r.privs[c].Load(addr, func() { pendingDone++ })
			} else {
				r.privs[c].Store(addr, func() { pendingDone++ })
			}
			if rng.Intn(4) == 0 {
				r.eng.Run() // quiesce occasionally to vary interleaving
			}
		}
		r.eng.Run()
		if pendingDone != issued {
			t.Fatalf("seed %d: %d/%d accesses completed", seed, pendingDone, issued)
		}
		for lineIdx := 0; lineIdx < 64; lineIdx++ {
			line := uint64(lineIdx) * LineBytes
			var m, e, s int
			for _, pc := range r.privs {
				switch pc.State(line) {
				case "M":
					m++
				case "E":
					e++
				case "S":
					s++
				}
			}
			if m+e > 1 || (m+e == 1 && s > 0) {
				t.Fatalf("seed %d line %#x: invariant violated M=%d E=%d S=%d", seed, line, m, e, s)
			}
			dirSt, holders := r.home.DirState(line)
			priv := m + e + s
			if priv > 0 && dirSt == "I" {
				t.Fatalf("seed %d line %#x: %d private copies but directory I", seed, line, priv)
			}
			if dirSt == "S" && holders < s {
				t.Fatalf("seed %d line %#x: directory tracks %d sharers, caches hold %d", seed, line, holders, s)
			}
		}
	}
}

// TestDeterministicTiming verifies the full protocol stack is reproducible.
func TestDeterministicTiming(t *testing.T) {
	run := func() sim.Time {
		r := newRig(t, 4)
		rng := sim.NewRNG(99)
		for step := 0; step < 200; step++ {
			c := rng.Intn(4)
			addr := uint64(rng.Intn(32)) * LineBytes
			if rng.Intn(2) == 0 {
				r.privs[c].Load(addr, func() {})
			} else {
				r.privs[c].Store(addr, func() {})
			}
		}
		return r.eng.Run()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic final time: %d vs %d", a, b)
	}
}

func TestSetAssocLRU(t *testing.T) {
	c := newSetAssoc(4*LineBytes, 4) // one set, 4 ways
	for i := uint64(0); i < 4; i++ {
		c.insert(i*LineBytes, stShared)
	}
	c.lookup(0) // make line 0 most recently used
	v, ev := c.insert(4*LineBytes, stShared)
	if !ev || v.line != 1*LineBytes {
		t.Fatalf("evicted %#x (evicted=%v), want line 0x40 (LRU)", v.line, ev)
	}
	if c.peek(0) == nil {
		t.Error("MRU line was evicted")
	}
}

func TestSetAssocInsertExistingUpdatesState(t *testing.T) {
	c := newSetAssoc(4*LineBytes, 4)
	c.insert(0, stShared)
	_, ev := c.insert(0, stModified)
	if ev {
		t.Error("re-insert evicted something")
	}
	if c.peek(0).st != stModified {
		t.Error("state not updated in place")
	}
	if c.lines() != 1 {
		t.Errorf("lines = %d, want 1", c.lines())
	}
}

func TestSetAssocBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad geometry did not panic")
		}
	}()
	newSetAssoc(3*LineBytes, 4)
}

func TestLineOf(t *testing.T) {
	if LineOf(0x1234) != 0x1200 {
		t.Fatalf("LineOf(0x1234) = %#x", LineOf(0x1234))
	}
}

func TestMsgFlitsAndClass(t *testing.T) {
	if (&Msg{Op: DataS}).Flits() != 9 {
		t.Error("data grant should be 9 flits")
	}
	if (&Msg{Op: GetS}).Flits() != 3 {
		t.Error("request should be 3 flits")
	}
	if (&Msg{Op: InvAck}).Flits() != 1 {
		t.Error("ack should be 1 flit")
	}
	if (&Msg{Op: GetS}).Class() != 0 || (&Msg{Op: DataM}).Class() != 1 || (&Msg{Op: DownAck}).Class() != 2 {
		t.Error("message classes misassigned")
	}
}

// newBareCache builds a single private cache + home slice with no stats
// registry: the disabled-telemetry configuration.
func newBareCache() (*sim.Engine, *Private) {
	eng := sim.NewEngine()
	conn := newFakeConn(eng)
	homeID := GID{Node: 0, Tile: 99}
	id := GID{Node: 0, Tile: 0}
	pc := NewPrivate(eng, id, DefaultParams(), conn, func(uint64) GID { return homeID }, nil, "priv")
	conn.privs[id] = pc
	conn.slices[homeID] = NewSlice(eng, homeID, DefaultParams(), conn, nil, "home")
	return eng, pc
}

// With telemetry disabled, the L1-hit fast path must not allocate beyond
// the engine's own event record: the nil-instrument idiom makes counters
// free, and enabling stats must not add allocations either.
func TestL1HitFastPathAllocations(t *testing.T) {
	measure := func(eng *sim.Engine, pc *Private) float64 {
		done := func() {}
		warm := false
		pc.Load(0x1000, func() { warm = true })
		eng.Run()
		if !warm {
			t.Fatal("warm-up load never completed")
		}
		return testing.AllocsPerRun(200, func() {
			pc.Load(0x1000, done)
			eng.Run()
		})
	}

	eng, pc := newBareCache()
	disabled := measure(eng, pc)
	// The engine pools its event records, so at steady state an L1 hit
	// allocates nothing at all; anything more means telemetry (or a capture
	// closure) leaked into the fast path.
	if disabled != 0 {
		t.Fatalf("L1 hit with telemetry disabled allocates %.1f/op, want 0", disabled)
	}

	r := newRig(t, 1)
	enabled := measure(r.eng, r.privs[0])
	if enabled > disabled {
		t.Fatalf("enabling telemetry added allocations to the L1-hit path: %.1f > %.1f", enabled, disabled)
	}
}

// A miss must appear in the hit/miss counters, the miss-latency histogram
// and the MSHR occupancy gauge.
func TestCacheTelemetryOnMiss(t *testing.T) {
	r := newRig(t, 1)
	r.load(0, 0x4000)

	if got := r.stats.Get("priv.l1_miss"); got != 1 {
		t.Fatalf("l1_miss = %d, want 1", got)
	}
	if got := r.stats.Get("priv.bpc_miss"); got != 1 {
		t.Fatalf("bpc_miss = %d, want 1", got)
	}
	h := r.stats.FindHistogram("priv.miss_latency")
	if h == nil || h.Samples != 1 {
		t.Fatalf("miss_latency histogram missing or empty: %+v", h)
	}
	if h.Min < 80 {
		t.Fatalf("miss latency %d cycles, want >= memory latency 80", h.Min)
	}
	g, ok := r.stats.GaugeValue("priv.mshr_occ")
	if !ok || g != 0 {
		t.Fatalf("mshr_occ = %d,%v, want 0 after completion", g, ok)
	}

	r.load(0, 0x4000) // now an L1 hit
	if got := r.stats.Get("priv.l1_hit"); got != 1 {
		t.Fatalf("l1_hit = %d, want 1", got)
	}
	if h.Samples != 1 {
		t.Fatalf("L1 hit observed a miss latency: n=%d", h.Samples)
	}
}

// The LLC slice must record directory-queue depth and memory round trips.
func TestLLCTelemetry(t *testing.T) {
	r := newRig(t, 1)
	r.load(0, 0x8000)
	h := r.stats.FindHistogram("home.mem_latency")
	if h == nil || h.Samples != 1 {
		t.Fatalf("mem_latency histogram missing or empty: %+v", h)
	}
	if h.Min < 80 {
		t.Fatalf("memory latency %d, want >= 80", h.Min)
	}
	if _, ok := r.stats.GaugeValue("home.dir_queue"); !ok {
		t.Fatal("dir_queue gauge never registered")
	}
}
