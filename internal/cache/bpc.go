package cache

import (
	"fmt"

	"smappic/internal/sim"
)

// mshr tracks one outstanding miss in the BPC. At most one transaction per
// line is in flight; later accesses to the same line coalesce as waiters.
type mshr struct {
	line    uint64
	op      MsgOp // GetS or GetM
	start   sim.Time
	waiters []func()
}

// Private is a tile's private cache stack: L1I and L1D in front of the BYOC
// Private Cache (BPC). The TRI boundary of BYOC corresponds to this type's
// Load/Store/Fetch/Amo methods: compute units interact with the memory
// system only through them and are isolated from the coherence protocol.
type Private struct {
	eng   *sim.Engine
	id    GID
	p     Params
	conn  Conn
	home  HomeFunc
	stats *sim.Stats
	name  string

	l1i *setAssoc
	l1d *setAssoc
	bpc *setAssoc

	mshrs   map[uint64]*mshr
	blocked []func() // accesses stalled on MSHR exhaustion

	// Pre-resolved hot-path instruments; nil (and therefore free no-ops)
	// when telemetry is disabled.
	cL1Hit    *sim.Counter
	cL1Miss   *sim.Counter
	cBpcHit   *sim.Counter
	cBpcMiss  *sim.Counter
	cUpgrade  sim.LazyCounter // silent E->M upgrades
	cCoalesce sim.LazyCounter // accesses coalesced onto a pending MSHR
	cStall    sim.LazyCounter // accesses stalled on MSHR exhaustion
	cGetS     sim.LazyCounter
	cGetM     sim.LazyCounter
	cWback    sim.LazyCounter
	cClean    sim.LazyCounter
	cInvRx    sim.LazyCounter
	cDownRx   sim.LazyCounter
	hMissLat  *sim.Histogram // BPC miss to grant, cycles
	gMSHR     *sim.Gauge     // MSHR occupancy
}

// NewPrivate builds a tile's private cache stack.
func NewPrivate(eng *sim.Engine, id GID, p Params, conn Conn, home HomeFunc, stats *sim.Stats, name string) *Private {
	c := &Private{
		eng: eng, id: id, p: p, conn: conn, home: home, stats: stats, name: name,
		l1i:   newSetAssoc(p.L1ISizeBytes, p.Ways),
		l1d:   newSetAssoc(p.L1DSizeBytes, p.Ways),
		bpc:   newSetAssoc(p.BPCSizeBytes, p.Ways),
		mshrs: make(map[uint64]*mshr),
	}
	if stats != nil {
		c.cL1Hit = stats.Counter(name + ".l1_hit")
		c.cL1Miss = stats.Counter(name + ".l1_miss")
		c.cBpcHit = stats.Counter(name + ".bpc_hit")
		c.cBpcMiss = stats.Counter(name + ".bpc_miss")
		c.hMissLat = stats.Histogram(name + ".miss_latency")
		c.gMSHR = stats.Gauge(name + ".mshr_occ")
	}
	c.cUpgrade = stats.LazyCounter(name + ".bpc_upgrade_silent")
	c.cCoalesce = stats.LazyCounter(name + ".mshr_coalesce")
	c.cStall = stats.LazyCounter(name + ".mshr_stall")
	c.cGetS = stats.LazyCounter(name + ".GetS")
	c.cGetM = stats.LazyCounter(name + ".GetM")
	c.cWback = stats.LazyCounter(name + ".writeback")
	c.cClean = stats.LazyCounter(name + ".evict_clean")
	c.cInvRx = stats.LazyCounter(name + ".inv_rx")
	c.cDownRx = stats.LazyCounter(name + ".downgrade_rx")
	return c
}

// ID returns the global tile id of this cache.
func (c *Private) ID() GID { return c.id }

// Load performs a data read of any size within one line. done fires when
// the value may be consumed.
func (c *Private) Load(addr uint64, done func()) { c.access(addr, false, c.l1d, done) }

// Store performs a data write within one line. done fires at the point the
// store is globally ordered (M permission held).
func (c *Private) Store(addr uint64, done func()) { c.access(addr, true, c.l1d, done) }

// Fetch performs an instruction read.
func (c *Private) Fetch(addr uint64, done func()) { c.access(addr, false, c.l1i, done) }

// Amo performs an atomic read-modify-write: it acquires M permission like a
// store; the caller applies the functional operation inside done, which runs
// while no other cache holds the line.
func (c *Private) Amo(addr uint64, done func()) { c.access(addr, true, c.l1d, done) }

func (c *Private) access(addr uint64, write bool, l1 *setAssoc, done func()) {
	line := LineOf(addr)
	// L1 hit: the L1s are inclusive in the BPC and mirror its permissions.
	if w := l1.lookup(line); w != nil {
		if !write || w.st == stModified {
			c.cL1Hit.Inc()
			c.eng.Schedule(sim.Time(c.p.L1Latency), done)
			return
		}
	}
	c.cL1Miss.Inc()
	// BPC lookup after the L1 latency.
	c.eng.Schedule(sim.Time(c.p.L1Latency+c.p.BPCLatency), func() {
		c.bpcAccess(line, write, l1, done)
	})
}

func (c *Private) bpcAccess(line uint64, write bool, l1 *setAssoc, done func()) {
	w := c.bpc.lookup(line)
	if w != nil {
		switch {
		case !write:
			c.cBpcHit.Inc()
			c.fillL1(l1, line, w.st)
			done()
			return
		case w.st == stModified:
			c.cBpcHit.Inc()
			c.fillL1(l1, line, stModified)
			done()
			return
		case w.st == stExclusive:
			// Silent E->M upgrade: the directory already records us as
			// the exclusive owner.
			c.cUpgrade.Inc()
			w.st = stModified
			w.dirty = true
			c.fillL1(l1, line, stModified)
			done()
			return
		}
		// Shared and writing: fall through to GetM.
	}
	c.cBpcMiss.Inc()
	c.miss(line, write, l1, done)
}

func (c *Private) miss(line uint64, write bool, l1 *setAssoc, done func()) {
	op := GetS
	if write {
		op = GetM
	}
	if m, ok := c.mshrs[line]; ok {
		// Coalesce. A pending GetS cannot satisfy a store: escalate by
		// queueing the store to retry after the fill completes.
		if write && m.op == GetS {
			m.waiters = append(m.waiters, func() { c.bpcAccess(line, true, l1, done) })
		} else {
			m.waiters = append(m.waiters, func() {
				c.fillL1(l1, line, c.grantState(write))
				done()
			})
		}
		c.cCoalesce.Inc()
		return
	}
	if len(c.mshrs) >= c.p.MSHRs {
		c.cStall.Inc()
		c.blocked = append(c.blocked, func() { c.bpcAccess(line, write, l1, done) })
		return
	}
	m := &mshr{line: line, op: op, start: c.eng.Now()}
	m.waiters = append(m.waiters, func() {
		c.fillL1(l1, line, c.grantState(write))
		done()
	})
	c.mshrs[line] = m
	c.gMSHR.Set(int64(len(c.mshrs)))
	if op == GetS {
		c.cGetS.Inc()
	} else {
		c.cGetM.Inc()
	}
	c.conn.SendProto(c.id, c.home(line), &Msg{Op: op, Line: line, From: c.id, Req: c.id})
}

func (c *Private) grantState(write bool) state {
	if write {
		return stModified
	}
	return stShared
}

func (c *Private) fillL1(l1 *setAssoc, line uint64, st state) {
	// Never downgrade an existing L1 entry: a read waiter coalesced onto a
	// write miss would otherwise lower the fresh M fill back to S.
	if w := l1.peek(line); w != nil && w.st >= st {
		return
	}
	// L1 victims need no protocol action: the BPC is inclusive of the L1s.
	l1.insert(line, st)
}

// HandleMsg processes a protocol message addressed to this private cache.
func (c *Private) HandleMsg(msg *Msg) {
	switch msg.Op {
	case DataS, DataE, DataM:
		c.handleGrant(msg)
	case Inv:
		c.handleInv(msg)
	case Downgrade:
		c.handleDowngrade(msg)
	default:
		panic(fmt.Sprintf("cache: %s: unexpected message %v", c.name, msg.Op))
	}
}

func (c *Private) handleGrant(msg *Msg) {
	m, ok := c.mshrs[msg.Line]
	if !ok {
		panic(fmt.Sprintf("cache: %s: grant %v for line %#x with no MSHR", c.name, msg.Op, msg.Line))
	}
	delete(c.mshrs, msg.Line)
	c.hMissLat.Observe(uint64(c.eng.Now() - m.start))
	c.gMSHR.Set(int64(len(c.mshrs)))

	var st state
	switch msg.Op {
	case DataS:
		st = stShared
	case DataE:
		st = stExclusive
	case DataM:
		st = stModified
	}
	victim, evicted := c.bpc.insert(msg.Line, st)
	if st == stModified {
		c.bpc.peek(msg.Line).dirty = true
	}
	if evicted {
		c.evict(victim)
	}
	waiters := m.waiters
	for _, w := range waiters {
		w()
	}
	// Retry accesses stalled on MSHR pressure.
	if len(c.blocked) > 0 {
		retry := c.blocked
		c.blocked = nil
		for _, r := range retry {
			r()
		}
	}
}

// evict notifies the home when a line leaves the BPC. Evictions are
// fire-and-forget: functional data lives in the backing store, so a probe
// racing with the eviction can always be acked safely (see package comment).
func (c *Private) evict(v way) {
	// Keep the L1s inclusive.
	c.l1i.invalidate(v.line)
	c.l1d.invalidate(v.line)
	op := PutS
	if v.st == stModified {
		op = PutM
		c.cWback.Inc()
	} else {
		c.cClean.Inc()
	}
	c.conn.SendProto(c.id, c.home(v.line), &Msg{Op: op, Line: v.line, From: c.id, Req: c.id})
}

func (c *Private) handleInv(msg *Msg) {
	c.bpc.invalidate(msg.Line)
	c.l1i.invalidate(msg.Line)
	c.l1d.invalidate(msg.Line)
	c.cInvRx.Inc()
	c.conn.SendProto(c.id, msg.From, &Msg{Op: InvAck, Line: msg.Line, From: c.id, Req: msg.Req})
}

func (c *Private) handleDowngrade(msg *Msg) {
	if w := c.bpc.peek(msg.Line); w != nil && (w.st == stModified || w.st == stExclusive) {
		w.st = stShared
		w.dirty = false
		if l := c.l1d.peek(msg.Line); l != nil {
			l.st = stShared
		}
		if l := c.l1i.peek(msg.Line); l != nil {
			l.st = stShared
		}
	}
	c.cDownRx.Inc()
	c.conn.SendProto(c.id, msg.From, &Msg{Op: DownAck, Line: msg.Line, From: c.id, Req: msg.Req})
}

// State reports the BPC state of a line (for tests and invariant checks).
func (c *Private) State(line uint64) string {
	if w := c.bpc.peek(line); w != nil {
		return w.st.String()
	}
	return "I"
}

// OutstandingMisses returns the number of active MSHRs.
func (c *Private) OutstandingMisses() int { return len(c.mshrs) }
