package cache

import "fmt"

// state is a per-line coherence state stored in the set-associative arrays.
type state uint8

const (
	stInvalid state = iota
	stShared
	stExclusive
	stModified
)

func (s state) String() string {
	switch s {
	case stInvalid:
		return "I"
	case stShared:
		return "S"
	case stExclusive:
		return "E"
	case stModified:
		return "M"
	}
	return "?"
}

// way is one entry of a set.
type way struct {
	line  uint64
	st    state
	dirty bool
	lru   uint64
}

// setAssoc is an LRU set-associative tag array. It stores coherence state
// and a dirty bit per line; data is not stored (see package comment).
type setAssoc struct {
	sets    [][]way
	setMask uint64
	tick    uint64
}

// newSetAssoc builds a tag array of the given total size and associativity.
// Size must be a power-of-two multiple of ways*LineBytes.
func newSetAssoc(sizeBytes, ways int) *setAssoc {
	lines := sizeBytes / LineBytes
	if lines <= 0 || lines%ways != 0 {
		panic(fmt.Sprintf("cache: bad geometry %dB/%dw", sizeBytes, ways))
	}
	nsets := lines / ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", nsets))
	}
	c := &setAssoc{sets: make([][]way, nsets), setMask: uint64(nsets - 1)}
	for i := range c.sets {
		c.sets[i] = make([]way, ways)
	}
	return c
}

func (c *setAssoc) set(line uint64) []way {
	return c.sets[(line/LineBytes)&c.setMask]
}

// lookup returns the entry for line if present, bumping its LRU position.
func (c *setAssoc) lookup(line uint64) *way {
	for i := range c.set(line) {
		w := &c.set(line)[i]
		if w.st != stInvalid && w.line == line {
			c.tick++
			w.lru = c.tick
			return w
		}
	}
	return nil
}

// peek returns the entry without touching LRU state.
func (c *setAssoc) peek(line uint64) *way {
	for i := range c.set(line) {
		w := &c.set(line)[i]
		if w.st != stInvalid && w.line == line {
			return w
		}
	}
	return nil
}

// insert places line with the given state, evicting the LRU way if the set
// is full. It returns the victim entry (valid if evicted=true). Inserting a
// line that is already present updates its state in place (evicted=false).
func (c *setAssoc) insert(line uint64, st state) (victim way, evicted bool) {
	set := c.set(line)
	if w := c.peek(line); w != nil {
		w.st = st
		c.tick++
		w.lru = c.tick
		return way{}, false
	}
	slot := &set[0]
	for i := range set {
		w := &set[i]
		if w.st == stInvalid {
			slot = w
			evicted = false
			goto place
		}
		if w.lru < slot.lru {
			slot = w
		}
	}
	victim, evicted = *slot, true
place:
	c.tick++
	*slot = way{line: line, st: st, lru: c.tick}
	return victim, evicted
}

// invalidate drops line if present, returning its previous entry.
func (c *setAssoc) invalidate(line uint64) (prev way, had bool) {
	if w := c.peek(line); w != nil {
		prev, had = *w, true
		w.st = stInvalid
		w.dirty = false
	}
	return prev, had
}

// lines returns the number of valid entries (for tests and stats).
func (c *setAssoc) lines() int {
	n := 0
	for _, set := range c.sets {
		for _, w := range set {
			if w.st != stInvalid {
				n++
			}
		}
	}
	return n
}
