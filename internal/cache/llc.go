package cache

import (
	"fmt"
	"sort"

	"smappic/internal/mem"
	"smappic/internal/noc"
	"smappic/internal/sim"
)

// NoReq marks probes that belong to no transaction (fire-and-forget
// back-invalidations); their acks are dropped instead of being counted
// toward whatever transaction happens to be live on the line.
var NoReq = GID{Node: -1, Tile: -1}

// dirState is the directory's view of a line.
type dirState uint8

const (
	dirI dirState = iota // no private copies
	dirS                 // one or more shared copies
	dirE                 // one exclusive owner (E or M in its cache)
)

// dirEntry is the directory record for one line.
type dirEntry struct {
	st      dirState
	owner   GID
	sharers map[GID]struct{}
}

func (d *dirEntry) addSharer(g GID)    { d.sharers[g] = struct{}{} }
func (d *dirEntry) removeSharer(g GID) { delete(d.sharers, g) }

// sortedSharers returns the sharer set in (node, tile) order. Invalidations
// must go out in a fixed order: Go randomizes map iteration per process, and
// the send order shapes NoC timing, so iterating the map directly makes two
// runs of the same configuration diverge.
func (d *dirEntry) sortedSharers() []GID {
	out := make([]GID, 0, len(d.sharers))
	for g := range d.sharers {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Tile < out[j].Tile
	})
	return out
}

// txn is one in-flight transaction at the home. The home is blocking: one
// transaction per line at a time; others queue.
type txn struct {
	msg      *Msg
	needAcks int
}

// Slice is one tile's LLC slice plus the directory for the lines it homes.
// It is the "home" of the coherence protocol.
type Slice struct {
	eng   *sim.Engine
	id    GID
	p     Params
	conn  Conn
	stats *sim.Stats
	name  string

	tags *setAssoc
	dir  map[uint64]*dirEntry

	busy    map[uint64]*txn
	pending map[uint64][]*Msg
	memTags map[uint64]memFetch // outstanding memory fetches by tag
	nextTag uint64

	nq      int            // total requests queued behind busy lines
	gQueue  *sim.Gauge     // directory queue depth
	hMemLat *sim.Histogram // LLC miss memory fetch latency, cycles

	// Hot-path counters, resolved once at construction (lazy handles:
	// no-ops without stats, registered on first hit). Avoids a string
	// concat + registry lookup per message.
	cQueued, cHit, cMiss sim.LazyCounter
	cGetS, cGetM         sim.LazyCounter
	cPutS, cPutM         sim.LazyCounter
	lookupFn             func(any) // bound once; arg is the *Msg
}

// memFetch is one outstanding memory fetch: the request to resume on the
// response plus the issue time for latency accounting.
type memFetch struct {
	msg *Msg
	at  sim.Time
}

// NewSlice builds an LLC slice.
func NewSlice(eng *sim.Engine, id GID, p Params, conn Conn, stats *sim.Stats, name string) *Slice {
	s := &Slice{
		eng: eng, id: id, p: p, conn: conn, stats: stats, name: name,
		tags:    newSetAssoc(p.LLCSliceSize, p.Ways),
		dir:     make(map[uint64]*dirEntry),
		busy:    make(map[uint64]*txn),
		pending: make(map[uint64][]*Msg),
		memTags: make(map[uint64]memFetch),
	}
	if stats != nil {
		s.gQueue = stats.Gauge(name + ".dir_queue")
		s.hMemLat = stats.Histogram(name + ".mem_latency")
	}
	s.cQueued = stats.LazyCounter(name + ".queued")
	s.cHit = stats.LazyCounter(name + ".llc_hit")
	s.cMiss = stats.LazyCounter(name + ".llc_miss")
	s.cGetS = stats.LazyCounter(name + ".GetS")
	s.cGetM = stats.LazyCounter(name + ".GetM")
	s.cPutS = stats.LazyCounter(name + ".puts")
	s.cPutM = stats.LazyCounter(name + ".putm")
	s.lookupFn = func(msg any) { s.lookup(msg.(*Msg)) }
	return s
}

func (s *Slice) count(what string) {
	if s.stats != nil {
		s.stats.Counter(s.name + "." + what).Inc()
	}
}

func (s *Slice) entry(line uint64) *dirEntry {
	e, ok := s.dir[line]
	if !ok {
		e = &dirEntry{sharers: make(map[GID]struct{})}
		s.dir[line] = e
	}
	return e
}

// HandleMsg processes a protocol message addressed to this home slice.
func (s *Slice) HandleMsg(msg *Msg) {
	switch msg.Op {
	case GetS, GetM:
		if _, inFlight := s.busy[msg.Line]; inFlight {
			s.pending[msg.Line] = append(s.pending[msg.Line], msg)
			s.nq++
			s.gQueue.Set(int64(s.nq))
			s.cQueued.Inc()
			return
		}
		s.begin(msg)
	case PutS:
		// Directory hygiene; does not need the line lock (a concurrent
		// transaction's probes will still be acked by the evicter).
		e := s.entry(msg.Line)
		e.removeSharer(msg.From)
		if e.st == dirE && e.owner == msg.From {
			e.st = dirI
		}
		if e.st == dirS && len(e.sharers) == 0 {
			e.st = dirI
		}
		s.cPutS.Inc()
	case PutM:
		e := s.entry(msg.Line)
		if e.st == dirE && e.owner == msg.From {
			e.st = dirI
		}
		e.removeSharer(msg.From)
		if w := s.tags.peek(msg.Line); w != nil {
			w.dirty = true
		} else {
			// Writeback to a line the LLC has since evicted: forward
			// straight to memory (timing only; data is in the backing
			// store).
			s.memWrite(msg.Line)
		}
		s.cPutM.Inc()
	case InvAck, DownAck:
		s.ack(msg)
	default:
		panic(fmt.Sprintf("cache: %s: unexpected message %v", s.name, msg.Op))
	}
}

// begin starts processing a GetS/GetM after the LLC lookup latency.
func (s *Slice) begin(msg *Msg) {
	s.busy[msg.Line] = &txn{msg: msg}
	if msg.Op == GetS {
		s.cGetS.Inc()
	} else {
		s.cGetM.Inc()
	}
	s.eng.ScheduleArg(sim.Time(s.p.LLCLatency), s.lookupFn, msg)
}

// lookup ensures the line is resident in the LLC, fetching from memory on a
// miss, then runs the directory action.
func (s *Slice) lookup(msg *Msg) {
	if s.tags.lookup(msg.Line) != nil {
		s.cHit.Inc()
		s.direct(msg)
		return
	}
	s.cMiss.Inc()
	s.nextTag++
	tag := s.nextTag
	s.memTags[tag] = memFetch{msg: msg, at: s.eng.Now()}
	s.conn.SendMem(s.id, &mem.Req{
		Addr: msg.Line,
		Size: LineBytes,
		Src:  s.nocDest(),
		Tag:  tag,
	})
}

// nocDest is where the memory controller should send responses.
func (s *Slice) nocDest() (d noc.Dest) {
	d.Port = noc.PortTile
	d.Tile = s.id.Tile
	return d
}

// HandleMemResp resumes a transaction waiting on a memory fetch or
// acknowledges a writeback.
func (s *Slice) HandleMemResp(r *mem.Resp) {
	if r.Write {
		return // writeback acks need no action
	}
	f, ok := s.memTags[r.Tag]
	if !ok {
		panic(fmt.Sprintf("cache: %s: memory response with unknown tag %d", s.name, r.Tag))
	}
	delete(s.memTags, r.Tag)
	s.hMemLat.Observe(uint64(s.eng.Now() - f.at))
	s.fill(f.msg)
}

// fill installs a fetched line and continues the transaction.
func (s *Slice) fill(msg *Msg) {
	victim, evicted := s.tags.insert(msg.Line, stShared)
	if evicted {
		s.evictLLC(victim)
	}
	s.direct(msg)
}

// evictLLC handles an LLC victim: dirty lines write back to memory, and the
// LLC's inclusivity is restored by back-invalidating any private copies
// (fire-and-forget; see package comment).
func (s *Slice) evictLLC(v way) {
	if e, ok := s.dir[v.line]; ok {
		switch e.st {
		case dirE:
			s.conn.SendProto(s.id, e.owner, &Msg{Op: Inv, Line: v.line, From: s.id, Req: NoReq})
			s.count("back_inval")
		case dirS:
			for _, g := range e.sortedSharers() {
				s.conn.SendProto(s.id, g, &Msg{Op: Inv, Line: v.line, From: s.id, Req: NoReq})
				s.count("back_inval")
			}
		}
		delete(s.dir, v.line)
	}
	if v.dirty {
		s.memWrite(v.line)
		s.count("llc_writeback")
	}
}

// A back-invalidation's InvAck may arrive outside any transaction; ack
// handling tolerates that (t == nil case in ack).

func (s *Slice) memWrite(line uint64) {
	s.nextTag++
	s.conn.SendMem(s.id, &mem.Req{
		Write: true,
		Addr:  line,
		Size:  LineBytes,
		Src:   s.nocDest(),
		Tag:   s.nextTag,
	})
}

// direct performs the directory action for a resident line.
func (s *Slice) direct(msg *Msg) {
	e := s.entry(msg.Line)
	t := s.busy[msg.Line]
	switch msg.Op {
	case GetS:
		switch e.st {
		case dirI:
			// No other copies: grant exclusive (MESI E optimization).
			e.st = dirE
			e.owner = msg.Req
			s.grant(msg, DataE)
			s.finish(msg.Line)
		case dirS:
			e.addSharer(msg.Req)
			s.grant(msg, DataS)
			s.finish(msg.Line)
		case dirE:
			if e.owner == msg.Req {
				// Requester lost the line silently? Cannot happen: BPC
				// evictions send PutS/PutM. Re-grant defensively.
				s.grant(msg, DataE)
				s.finish(msg.Line)
				return
			}
			// Demote the owner, then grant shared to both.
			t.needAcks = 1
			s.conn.SendProto(s.id, e.owner, &Msg{Op: Downgrade, Line: msg.Line, From: s.id, Req: msg.Req})
		}
	case GetM:
		switch e.st {
		case dirI:
			e.st = dirE
			e.owner = msg.Req
			s.grant(msg, DataM)
			s.finish(msg.Line)
		case dirS:
			n := 0
			for _, g := range e.sortedSharers() {
				if g == msg.Req {
					continue
				}
				s.conn.SendProto(s.id, g, &Msg{Op: Inv, Line: msg.Line, From: s.id, Req: msg.Req})
				n++
			}
			if n == 0 {
				e.st = dirE
				e.owner = msg.Req
				e.sharers = make(map[GID]struct{})
				s.grant(msg, DataM)
				s.finish(msg.Line)
				return
			}
			t.needAcks = n
		case dirE:
			if e.owner == msg.Req {
				s.grant(msg, DataM)
				s.finish(msg.Line)
				return
			}
			t.needAcks = 1
			s.conn.SendProto(s.id, e.owner, &Msg{Op: Inv, Line: msg.Line, From: s.id, Req: msg.Req})
		}
	}
}

// ack counts a probe response toward the current transaction and completes
// it when all probes have answered.
func (s *Slice) ack(msg *Msg) {
	if msg.Req == NoReq {
		return // response to a fire-and-forget back-invalidation
	}
	t := s.busy[msg.Line]
	if t == nil || t.needAcks == 0 {
		return // stray ack (evicter answered a probe it no longer needed)
	}
	t.needAcks--
	if t.needAcks > 0 {
		return
	}
	e := s.entry(msg.Line)
	req := t.msg
	switch req.Op {
	case GetS:
		// Owner was downgraded; its data is now at the home (DownAck).
		if w := s.tags.peek(msg.Line); w != nil {
			w.dirty = true
		}
		e.st = dirS
		e.sharers = make(map[GID]struct{})
		e.addSharer(e.owner)
		e.addSharer(req.Req)
		s.grant(req, DataS)
	case GetM:
		e.st = dirE
		e.owner = req.Req
		e.sharers = make(map[GID]struct{})
		s.grant(req, DataM)
	}
	s.finish(msg.Line)
}

func (s *Slice) grant(req *Msg, op MsgOp) {
	s.conn.SendProto(s.id, req.Req, &Msg{Op: op, Line: req.Line, From: s.id, Req: req.Req})
}

// finish releases the line lock and starts the next queued transaction.
func (s *Slice) finish(line uint64) {
	delete(s.busy, line)
	q := s.pending[line]
	if len(q) == 0 {
		delete(s.pending, line)
		return
	}
	next := q[0]
	if len(q) == 1 {
		delete(s.pending, line)
	} else {
		s.pending[line] = q[1:]
	}
	s.nq--
	s.gQueue.Set(int64(s.nq))
	s.begin(next)
}

// DirState reports the directory state of a line ("I", "S", "E") with the
// sharer/owner count, for tests and invariant checks.
func (s *Slice) DirState(line uint64) (st string, holders int) {
	e, ok := s.dir[line]
	if !ok {
		return "I", 0
	}
	switch e.st {
	case dirI:
		return "I", 0
	case dirS:
		return "S", len(e.sharers)
	default:
		return "E", 1
	}
}

// Resident reports whether the LLC currently holds the line.
func (s *Slice) Resident(line uint64) bool { return s.tags.peek(line) != nil }
