// Checkpoint capture/restore for the cache hierarchy. State snapshots are
// taken at quiescent safepoints (event queue drained, all threads parked at
// a barrier cut), where every protocol transaction has completed: the BPC
// MSHRs, the home's line locks, queued requests and outstanding memory
// fetches are all empty. Capture checks that instead of assuming it — a
// non-quiescent capture would silently drop in-flight transactions.
package cache

import (
	"fmt"
	"sort"

	"smappic/internal/ckpt"
)

// captureSetAssoc copies a tag array into snapshot form.
func captureSetAssoc(c *setAssoc) ckpt.SetAssocState {
	st := ckpt.SetAssocState{Tick: c.tick, Sets: make([][]ckpt.WayState, len(c.sets))}
	for i, set := range c.sets {
		ways := make([]ckpt.WayState, len(set))
		for j, w := range set {
			ways[j] = ckpt.WayState{Line: w.line, State: uint8(w.st), Dirty: w.dirty, LRU: w.lru}
		}
		st.Sets[i] = ways
	}
	return st
}

// restoreSetAssoc overlays a captured tag array, verifying the geometry
// matches the built one (a snapshot from a different cache configuration
// must be refused, not silently reshaped).
func restoreSetAssoc(c *setAssoc, st ckpt.SetAssocState, what string) error {
	if len(st.Sets) != len(c.sets) {
		return &ckpt.MismatchError{Field: what + " set count",
			Got: fmt.Sprint(len(st.Sets)), Want: fmt.Sprint(len(c.sets))}
	}
	for i, ways := range st.Sets {
		if len(ways) != len(c.sets[i]) {
			return &ckpt.MismatchError{Field: what + " associativity",
				Got: fmt.Sprint(len(ways)), Want: fmt.Sprint(len(c.sets[i]))}
		}
		for j, w := range ways {
			if w.State > uint8(stModified) {
				return &ckpt.CorruptError{Reason: fmt.Sprintf("%s way state %d out of range", what, w.State)}
			}
			c.sets[i][j] = way{line: w.Line, st: state(w.State), dirty: w.Dirty, lru: w.LRU}
		}
	}
	c.tick = st.Tick
	return nil
}

// CaptureState records the private stack's tag arrays into st. The MSHRs
// and the stalled-access queue must be empty (quiescence check).
func (c *Private) CaptureState(st *ckpt.TileState) error {
	if len(c.mshrs) != 0 || len(c.blocked) != 0 {
		return fmt.Errorf("cache: %s has %d outstanding misses and %d stalled accesses; not at a quiescent safepoint",
			c.name, len(c.mshrs), len(c.blocked))
	}
	st.L1I = captureSetAssoc(c.l1i)
	st.L1D = captureSetAssoc(c.l1d)
	st.BPC = captureSetAssoc(c.bpc)
	return nil
}

// RestoreState overlays captured tag arrays onto a freshly built stack.
func (c *Private) RestoreState(st *ckpt.TileState) error {
	if err := restoreSetAssoc(c.l1i, st.L1I, c.name+".l1i"); err != nil {
		return err
	}
	if err := restoreSetAssoc(c.l1d, st.L1D, c.name+".l1d"); err != nil {
		return err
	}
	return restoreSetAssoc(c.bpc, st.BPC, c.name+".bpc")
}

// CaptureState records the home slice's tag array, directory and monotonic
// transaction-tag counter into st. The line locks, pending queues and
// outstanding memory fetches must be empty (quiescence check).
func (s *Slice) CaptureState(st *ckpt.TileState) error {
	if len(s.busy) != 0 || len(s.pending) != 0 || len(s.memTags) != 0 || s.nq != 0 {
		return fmt.Errorf("cache: %s has in-flight transactions (%d busy, %d queued, %d memory fetches); not at a quiescent safepoint",
			s.name, len(s.busy), s.nq, len(s.memTags))
	}
	st.LLC = captureSetAssoc(s.tags)
	st.NextTag = s.nextTag
	st.Dir = make([]ckpt.DirEntry, 0, len(s.dir))
	for line, e := range s.dir {
		de := ckpt.DirEntry{
			Line:  line,
			State: uint8(e.st),
			Owner: ckpt.GIDState{Node: e.owner.Node, Tile: e.owner.Tile},
		}
		for _, g := range e.sortedSharers() {
			de.Sharers = append(de.Sharers, ckpt.GIDState{Node: g.Node, Tile: g.Tile})
		}
		st.Dir = append(st.Dir, de)
	}
	sort.Slice(st.Dir, func(i, j int) bool { return st.Dir[i].Line < st.Dir[j].Line })
	return nil
}

// RestoreState overlays a captured home slice onto a freshly built one.
func (s *Slice) RestoreState(st *ckpt.TileState) error {
	if err := restoreSetAssoc(s.tags, st.LLC, s.name); err != nil {
		return err
	}
	s.nextTag = st.NextTag
	s.dir = make(map[uint64]*dirEntry, len(st.Dir))
	for _, de := range st.Dir {
		if de.State > uint8(dirE) {
			return &ckpt.CorruptError{Reason: fmt.Sprintf("%s directory state %d out of range", s.name, de.State)}
		}
		e := &dirEntry{
			st:      dirState(de.State),
			owner:   GID{Node: de.Owner.Node, Tile: de.Owner.Tile},
			sharers: make(map[GID]struct{}, len(de.Sharers)),
		}
		for _, g := range de.Sharers {
			e.sharers[GID{Node: g.Node, Tile: g.Tile}] = struct{}{}
		}
		s.dir[de.Line] = e
	}
	return nil
}
