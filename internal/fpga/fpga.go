// Package fpga models the physical FPGA layer SMAPPIC builds on: the Xilinx
// VU9P resource budget, per-component LUT costs, the utilization-to-
// frequency relationship of Table 4, and the build-flow times reported in
// §4.1 (synthesis on a desktop, AWS postprocessing, bitstream load).
//
// The component costs are fitted to the paper's published utilization
// numbers; Check reproduces Table 4 within one percentage point.
package fpga

import (
	"fmt"
	"time"
)

// VU9PLUTs is the logic budget of the Virtex UltraScale+ VU9P on F1.
const VU9PLUTs = 1_182_240

// Fitted LUT fractions of the VU9P budget (see DESIGN.md).
const (
	tileFrac    = 0.070 // one Ariane tile: core + BPC + LLC slice + routers
	nodeFrac    = 0.035 // per-node memctl, inter-node bridge, interrupts
	shellFrac   = 0.090 // AWS Hard Shell partition
	crossbarK   = 0.005 // AXI crossbar grows with the square of node count
	fmaxCutoff  = 0.88  // utilization above which routing closes at 75 MHz
	fullFreqMHz = 100
	slowFreqMHz = 75
)

// Report describes one configuration's physical feasibility.
type Report struct {
	NodesPerFPGA int
	TilesPerNode int
	LUTs         int
	Utilization  float64 // 0..1
	FrequencyMHz int
	Fits         bool
}

// Estimate computes LUT usage and achievable frequency for B nodes of C
// tiles on one FPGA (the BxC rows of Table 4).
func Estimate(nodesPerFPGA, tilesPerNode int) Report {
	b, c := float64(nodesPerFPGA), float64(tilesPerNode)
	frac := shellFrac + b*nodeFrac + b*c*tileFrac + crossbarK*b*b
	r := Report{
		NodesPerFPGA: nodesPerFPGA,
		TilesPerNode: tilesPerNode,
		LUTs:         int(frac * VU9PLUTs),
		Utilization:  frac,
		Fits:         frac <= 1.0,
	}
	if frac >= fmaxCutoff {
		r.FrequencyMHz = slowFreqMHz
	} else {
		r.FrequencyMHz = fullFreqMHz
	}
	return r
}

// String renders the report as a Table 4 row.
func (r Report) String() string {
	return fmt.Sprintf("%dx%-3d %4d MHz   %3.0f%%", r.NodesPerFPGA, r.TilesPerNode,
		r.FrequencyMHz, r.Utilization*100)
}

// Table4 returns the paper's five configurations.
func Table4() []Report {
	shapes := [][2]int{{1, 12}, {1, 10}, {2, 4}, {2, 5}, {4, 2}}
	out := make([]Report, len(shapes))
	for i, s := range shapes {
		out[i] = Estimate(s[0], s[1])
	}
	return out
}

// BuildFlow models the prototype generation pipeline of §4.1.
type BuildFlow struct {
	// SynthesisTime on the paper's desktop (i9-9900K, 32 GB needed).
	SynthesisTime time.Duration
	// SynthesisMemGB is the peak memory of the Vivado run.
	SynthesisMemGB int
	// AWSPostprocess is the datacenter-side image creation.
	AWSPostprocess time.Duration
	// BitstreamLoad is the per-FPGA programming time.
	BitstreamLoad time.Duration
}

// EstimateBuild returns build-flow times for a configuration. Synthesis
// scales mildly with utilization around the paper's 2-hour observation.
func EstimateBuild(r Report) BuildFlow {
	base := 2 * time.Hour
	scaled := time.Duration(float64(base) * (0.5 + r.Utilization*0.55))
	return BuildFlow{
		SynthesisTime:  scaled,
		SynthesisMemGB: 32,
		AWSPostprocess: 2 * time.Hour,
		BitstreamLoad:  10 * time.Second,
	}
}

// Total returns end-to-end time from RTL to a programmed FPGA.
func (b BuildFlow) Total() time.Duration {
	return b.SynthesisTime + b.AWSPostprocess + b.BitstreamLoad
}
