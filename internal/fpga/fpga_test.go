package fpga

import (
	"math"
	"testing"
	"time"
)

// TestTable4MatchesPaper checks the fitted model against the paper's
// published utilization and frequency numbers within 1.5 points.
func TestTable4MatchesPaper(t *testing.T) {
	want := []struct {
		b, c    int
		freq    int
		utilPct float64
	}{
		{1, 12, 75, 97},
		{1, 10, 100, 83},
		{2, 4, 100, 73},
		{2, 5, 75, 88},
		{4, 2, 100, 87},
	}
	for _, w := range want {
		r := Estimate(w.b, w.c)
		if r.FrequencyMHz != w.freq {
			t.Errorf("%dx%d frequency = %d, paper says %d", w.b, w.c, r.FrequencyMHz, w.freq)
		}
		if math.Abs(r.Utilization*100-w.utilPct) > 1.5 {
			t.Errorf("%dx%d utilization = %.1f%%, paper says %.0f%%", w.b, w.c, r.Utilization*100, w.utilPct)
		}
		if !r.Fits {
			t.Errorf("%dx%d reported as not fitting", w.b, w.c)
		}
	}
}

func TestUtilizationMonotonicInTiles(t *testing.T) {
	prev := 0.0
	for c := 1; c <= 12; c++ {
		r := Estimate(1, c)
		if r.Utilization <= prev {
			t.Fatalf("utilization not increasing at %d tiles", c)
		}
		prev = r.Utilization
	}
}

func TestOversizedConfigDoesNotFit(t *testing.T) {
	r := Estimate(4, 4) // 16 Ariane tiles: beyond a VU9P
	if r.Fits {
		t.Fatalf("4x4 should not fit (util %.0f%%)", r.Utilization*100)
	}
}

func TestHighUtilizationLowersFrequency(t *testing.T) {
	low := Estimate(1, 4)
	high := Estimate(1, 12)
	if low.FrequencyMHz != 100 || high.FrequencyMHz != 75 {
		t.Fatalf("frequency model wrong: low=%d high=%d", low.FrequencyMHz, high.FrequencyMHz)
	}
}

func TestTable4HasFiveRows(t *testing.T) {
	rows := Table4()
	if len(rows) != 5 {
		t.Fatalf("Table4 has %d rows", len(rows))
	}
	if rows[0].String() == "" {
		t.Error("empty row rendering")
	}
}

func TestBuildFlowNearPaper(t *testing.T) {
	// §4.1: ~2h synthesis on a desktop, ~2h AWS postprocessing, ~10s load.
	b := EstimateBuild(Estimate(1, 12))
	if b.SynthesisTime < 90*time.Minute || b.SynthesisTime > 3*time.Hour {
		t.Errorf("synthesis time %v, want ~2h", b.SynthesisTime)
	}
	if b.AWSPostprocess != 2*time.Hour {
		t.Errorf("postprocess %v", b.AWSPostprocess)
	}
	if b.BitstreamLoad != 10*time.Second {
		t.Errorf("bitstream load %v", b.BitstreamLoad)
	}
	if b.Total() < 4*time.Hour {
		t.Errorf("total %v, want > 4h", b.Total())
	}
	if b.SynthesisMemGB != 32 {
		t.Errorf("synthesis memory %d GB", b.SynthesisMemGB)
	}
}
