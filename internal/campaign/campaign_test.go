package campaign

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// testSpec is a small grid used by the runner tests (4 points).
func testSpec() Spec {
	return Spec{
		Name:      "test",
		Shapes:    []string{"1x1x2"},
		Workloads: []string{WorkloadIS},
		Seeds:     []uint64{1, 2, 3, 4},
		Keys:      1 << 8,
	}
}

// fakeResult builds a deterministic Result for an executor stub.
func fakeResult(p Params) *Result {
	return &Result{
		Label:  p.Label(),
		Key:    p.Key(),
		Params: p,
		Cycles: 1000 + p.Seed,
		Stats:  map[string]uint64{"fake.cycles": 1000 + p.Seed},
	}
}

func TestSpecExpansionGridAndOrder(t *testing.T) {
	s := Spec{
		Name:      "grid",
		Shapes:    []string{"1x1x2", "2x1x2"},
		Workloads: []string{WorkloadIS},
		NUMA:      []bool{true, false},
		Seeds:     []uint64{1, 2, 3},
		Keys:      1 << 8,
	}
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2*2*3 {
		t.Fatalf("%d jobs, want 12", len(jobs))
	}
	keys := map[string]bool{}
	for i, j := range jobs {
		if j.Index != i {
			t.Fatalf("job %d has index %d", i, j.Index)
		}
		if keys[j.Params.Key()] {
			t.Fatalf("duplicate cache key at job %d (%s)", i, j.Params.Label())
		}
		keys[j.Params.Key()] = true
	}
	// Seed is the innermost dimension: the first points differ only by seed.
	if jobs[0].Params.Seed != 1 || jobs[1].Params.Seed != 2 || jobs[2].Params.Seed != 3 {
		t.Fatalf("seed not innermost: %d %d %d", jobs[0].Params.Seed, jobs[1].Params.Seed, jobs[2].Params.Seed)
	}
	if jobs[0].Params.Shape != jobs[5].Params.Shape || jobs[0].Params.Shape == jobs[6].Params.Shape {
		t.Fatal("shape should change every 6 jobs (numa x seeds)")
	}
	// Expansion is deterministic.
	again, _ := s.Jobs()
	for i := range jobs {
		if jobs[i].Params != again[i].Params {
			t.Fatalf("expansion not deterministic at job %d", i)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []Spec{
		{Shapes: []string{"1x1x2"}, Workloads: []string{WorkloadIS}},          // no name
		{Name: "x", Workloads: []string{WorkloadIS}},                          // no shapes
		{Name: "x", Shapes: []string{"1x1x2"}, Workloads: []string{"bogus"}},  // unknown workload
		{Name: "x", Shapes: []string{"1x1x2"}, Workloads: []string{"probe"}},  // probe needs 2 nodes
		{Name: "x", Shapes: []string{"zzz"}, Workloads: []string{WorkloadIS}}, // bad shape
		{Name: "x", Shapes: []string{"1x1x2"}, Workloads: []string{WorkloadIS}, Homing: []string{"bogus"}},
		{Name: "x", Shapes: []string{"1x1x2"}, Workloads: []string{WorkloadIS}, ActiveNodes: []int{5}},
		{Name: "x", Shapes: []string{"1x1x2"}, Workloads: []string{WorkloadIS}, Faults: []string{"pcie.drop:q=1"}},
	}
	for i, s := range cases {
		if _, err := s.Jobs(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"name":"x","shapes":["1x1x2"],"workloads":["is"],"seedz":[1]}`)); err == nil {
		t.Fatal("typoed field accepted")
	}
	s, err := ParseSpec([]byte(`{"name":"x","shapes":["1x1x2"],"workloads":["is"],"seeds":[1,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "x" || len(s.Seeds) != 2 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestCacheRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := testSpec()
	jobs, _ := p.Jobs()
	r := fakeResult(jobs[0].Params)
	if _, ok := c.Get(r.Key); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put(r); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(r.Key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.Cycles != r.Cycles || got.Label != r.Label || got.Stats["fake.cycles"] != r.Stats["fake.cycles"] {
		t.Fatalf("cache returned %+v, want %+v", got, r)
	}
	// A corrupted entry is a miss, not an error or a poisoned result.
	if err := os.WriteFile(filepath.Join(dir, r.Key+".json"), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(r.Key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	// An entry whose body does not match its address is a miss too.
	other := fakeResult(jobs[1].Params)
	body, _ := os.ReadFile(filepath.Join(dir, func() string { c.Put(other); return other.Key }()+".json"))
	os.WriteFile(filepath.Join(dir, r.Key+".json"), body, 0o644)
	if _, ok := c.Get(r.Key); ok {
		t.Fatal("mis-addressed entry served as a hit")
	}
}

// The core caching contract: an immediate re-run of the same spec executes
// zero jobs, and the aggregate is byte-identical to the first run's.
func TestSecondRunFullyCacheServed(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	exec := func(ctx context.Context, p Params) (*Result, error) {
		calls.Add(1)
		return fakeResult(p), nil
	}
	r := &Runner{Workers: 2, Cache: cache, Exec: exec}

	first, err := r.Run(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed != 4 || first.Cached != 0 || calls.Load() != 4 {
		t.Fatalf("first run: executed %d cached %d calls %d", first.Executed, first.Cached, calls.Load())
	}

	second, err := r.Run(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if second.Executed != 0 || second.Cached != 4 || calls.Load() != 4 {
		t.Fatalf("second run: executed %d cached %d calls %d", second.Executed, second.Cached, calls.Load())
	}

	j1, err := first.Aggregate().JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := second.Aggregate().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("cache-served aggregate differs from fresh aggregate:\n%s\nvs\n%s", j1, j2)
	}
}

// A stall is retried within the budget and the winning attempt is recorded.
func TestStallRetriedThenSucceeds(t *testing.T) {
	var mu sync.Mutex
	failed := map[string]bool{}
	exec := func(ctx context.Context, p Params) (*Result, error) {
		mu.Lock()
		defer mu.Unlock()
		if !failed[p.Key()] {
			failed[p.Key()] = true
			return nil, &StallError{Diagnosis: "WATCHDOG: injected test stall"}
		}
		return fakeResult(p), nil
	}
	spec := testSpec()
	spec.Retries = 1
	r := &Runner{Workers: 2, Exec: exec}
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 4 || res.Failed != 0 {
		t.Fatalf("executed %d failed %d, want 4/0", res.Executed, res.Failed)
	}
	for _, out := range res.Jobs {
		if out.Result.Attempts != 2 {
			t.Fatalf("job %d won on attempt %d, want 2", out.Job.Index, out.Result.Attempts)
		}
	}
}

// A job that stalls on every attempt fails once the budget is spent; other
// failures are not retried at all.
func TestRetryBudgetAndNonStallFailures(t *testing.T) {
	var stallCalls, otherCalls atomic.Int64
	alwaysStall := func(ctx context.Context, p Params) (*Result, error) {
		stallCalls.Add(1)
		return nil, &StallError{Diagnosis: "WATCHDOG: wedged"}
	}
	spec := testSpec()
	spec.Seeds = []uint64{1}
	spec.Retries = 2
	res, err := (&Runner{Exec: alwaysStall}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || stallCalls.Load() != 3 {
		t.Fatalf("failed %d after %d attempts, want 1 after 3", res.Failed, stallCalls.Load())
	}
	if !strings.Contains(res.Jobs[0].Err, "stalled") {
		t.Fatalf("failure lost the stall diagnosis: %q", res.Jobs[0].Err)
	}

	boom := func(ctx context.Context, p Params) (*Result, error) {
		otherCalls.Add(1)
		return nil, fmt.Errorf("build exploded")
	}
	res, err = (&Runner{Exec: boom}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || otherCalls.Load() != 1 {
		t.Fatalf("non-stall error retried: %d attempts", otherCalls.Load())
	}
}

// Cancelling a campaign mid-run leaves resumable state: completed jobs are
// cached, interrupted and undispatched jobs are skipped (not failed), and a
// re-run finishes the campaign serving the completed prefix from cache.
func TestCancellationLeavesResumableState(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	exec := func(ctx context.Context, p Params) (*Result, error) {
		n := calls.Add(1)
		if n >= 2 {
			// Simulate a job interrupted by campaign cancellation: the
			// driver observes ctx and aborts mid-simulation.
			cancel()
			return nil, fmt.Errorf("campaign: job aborted at cycle 12345: %w", ctx.Err())
		}
		return fakeResult(p), nil
	}
	r := &Runner{Workers: 1, Cache: cache, Exec: exec}
	res, err := r.Run(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 1 || res.Failed != 0 || res.Skipped != 3 {
		t.Fatalf("after cancel: executed %d failed %d skipped %d, want 1/0/3", res.Executed, res.Failed, res.Skipped)
	}

	// Resume: same cache, working executor, fresh context.
	var resumed atomic.Int64
	r2 := &Runner{Workers: 1, Cache: cache, Exec: func(ctx context.Context, p Params) (*Result, error) {
		resumed.Add(1)
		return fakeResult(p), nil
	}}
	res2, err := r2.Run(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cached != 1 || res2.Executed != 3 || resumed.Load() != 3 {
		t.Fatalf("resume: cached %d executed %d calls %d, want 1/3/3", res2.Cached, res2.Executed, resumed.Load())
	}
}

// A real stall end to end: a hung PCIe endpoint under the stores workload
// trips the watchdog, Execute converts the diagnosis into a StallError, and
// the runner burns its retry budget before failing the job.
func TestExecuteRealWatchdogStall(t *testing.T) {
	p := Params{
		Shape:     "2x1x2",
		Workload:  WorkloadStores,
		Homing:    HomingRegion,
		Keys:      16,
		Seed:      1,
		Faults:    "pcie.ep0.link.hang:after=4",
		FaultSeed: 1,
		Watchdog:  100_000,
	}
	_, err := Execute(context.Background(), p)
	if err == nil {
		t.Fatal("hung link did not fail the job")
	}
	if !IsStall(err) {
		t.Fatalf("stall not classified as StallError: %v", err)
	}
	if !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("error %q does not say stalled", err)
	}

	spec := Spec{
		Name:      "stall",
		Shapes:    []string{"2x1x2"},
		Workloads: []string{WorkloadStores},
		Keys:      16,
		Faults:    []string{"pcie.ep0.link.hang:after=4"},
		Watchdog:  100_000,
		Retries:   1,
	}
	res, err := (&Runner{}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Fatalf("stalling job not failed: %+v", res.Jobs[0])
	}
	// The deterministic stall wedges identically on both attempts.
	if !strings.Contains(res.Jobs[0].Err, "WATCHDOG") {
		t.Fatalf("failure lost the watchdog diagnosis: %q", res.Jobs[0].Err)
	}
}

// MaxCycles bounds a runaway job.
func TestExecuteMaxCycles(t *testing.T) {
	p := Params{
		Shape:     "1x1x2",
		Workload:  WorkloadIS,
		NUMA:      true,
		Homing:    HomingRegion,
		Keys:      1 << 10,
		Seed:      1,
		MaxCycles: 1000, // far too few for IS
	}
	_, err := Execute(context.Background(), p)
	if err == nil || !strings.Contains(err.Error(), "max_cycles") {
		t.Fatalf("runaway job not bounded: %v", err)
	}
	if IsStall(err) {
		t.Fatal("max_cycles abort must not be retried as a stall")
	}
}

// Cancelling the context aborts a real simulation between event slices.
func TestExecuteHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Params{
		Shape: "1x1x2", Workload: WorkloadIS, NUMA: true,
		Homing: HomingRegion, Keys: 1 << 10, Seed: 1,
	}
	_, err := Execute(ctx, p)
	if err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("cancelled job did not abort: %v", err)
	}
}

// The acceptance criterion: a >= 20-point campaign over the real simulator
// produces a byte-identical aggregate for 1 worker, 8 workers, and a fully
// cache-served re-run.
func TestWorkerCountInvariance(t *testing.T) {
	spec := Spec{
		Name:      "invariance",
		Shapes:    []string{"1x1x2", "2x1x2"},
		Workloads: []string{WorkloadIS},
		NUMA:      []bool{true, false},
		Seeds:     []uint64{1, 2, 3, 4, 5},
		Keys:      1 << 8,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 20 {
		t.Fatalf("spec expands to %d points, need >= 20", len(jobs))
	}

	serial, err := (&Runner{Workers: 1}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.Aggregate().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if serial.Executed != len(jobs) || serial.Failed != 0 {
		t.Fatalf("serial run: executed %d failed %d", serial.Executed, serial.Failed)
	}

	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Runner{Workers: 8, Cache: cache}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parallel.Aggregate().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("8-worker aggregate differs from serial:\n%s\nvs\n%s", want, got)
	}

	rerun, err := (&Runner{Workers: 8, Cache: cache}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Executed != 0 || rerun.Cached != len(jobs) {
		t.Fatalf("re-run not cache-served: executed %d cached %d", rerun.Executed, rerun.Cached)
	}
	cached, err := rerun.Aggregate().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, cached) {
		t.Fatal("cache-served aggregate differs from fresh serial aggregate")
	}

	// Sanity on the content itself: every job sorted its output, and the
	// cost estimate prices the 2-FPGA shape on the 2-FPGA instance.
	agg := rerun.Aggregate()
	for _, r := range agg.Results {
		if !r.Sorted {
			t.Fatalf("%s: IS output not sorted", r.Label)
		}
		if r.Checksum == "" || r.Cycles == 0 {
			t.Fatalf("%s: empty measurement", r.Label)
		}
	}
	if agg.Cost == nil || agg.Cost.Instance != "f1.4xl" {
		t.Fatalf("cost estimate %+v, want f1.4xl", agg.Cost)
	}
	if agg.Cost.CloudUSD != agg.Cost.FPGAHours*1.65 {
		t.Fatalf("cloud bill %.6f != %.6f FPGA-hours at $1.65", agg.Cost.CloudUSD, agg.Cost.FPGAHours)
	}
}

// Seeds must actually reach the simulation: different seeds, different
// answers; same seed, byte-identical result.
func TestSeedsChangeResults(t *testing.T) {
	base := Params{
		Shape: "1x1x2", Workload: WorkloadIS, NUMA: true,
		Homing: HomingRegion, Keys: 1 << 8, Seed: 1,
	}
	r1, err := Execute(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	r1again, err := Execute(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r1again.Cycles || r1.Checksum != r1again.Checksum {
		t.Fatal("same params, different result")
	}
	other := base
	other.Seed = 2
	r2, err := Execute(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Checksum == r1.Checksum {
		t.Fatal("seed did not reach the workload input")
	}
}

func TestAggregateCSV(t *testing.T) {
	exec := func(ctx context.Context, p Params) (*Result, error) { return fakeResult(p), nil }
	res, err := (&Runner{Exec: exec}).Run(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	csv := res.Aggregate().CSV()
	lines := strings.Split(strings.TrimSuffix(csv, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d CSV lines, want header + 4 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "index,label,workload,shape") {
		t.Fatalf("bad header %q", lines[0])
	}
	sum := res.Summary()
	if !strings.Contains(sum, "executed 4, cached 0, failed 0, skipped 0") {
		t.Fatalf("summary missing counts:\n%s", sum)
	}
}

// TestRunnerEmitsLifecycleEvents pins the OnEvent hook: every job produces a
// coherent event sequence (started ... done/failed, with stall_retry in
// between), cache hits are reported without execution, and Total is carried
// on every event.
func TestRunnerEmitsLifecycleEvents(t *testing.T) {
	var mu sync.Mutex
	events := map[int][]Event{}
	record := func(ev Event) {
		mu.Lock()
		events[ev.Index] = append(events[ev.Index], ev)
		mu.Unlock()
	}

	// Seed 2 stalls once then succeeds; seed 3 fails hard; the rest are clean.
	stalled := map[string]bool{}
	exec := func(ctx context.Context, p Params) (*Result, error) {
		mu.Lock()
		defer mu.Unlock()
		switch p.Seed {
		case 2:
			if !stalled[p.Key()] {
				stalled[p.Key()] = true
				return nil, &StallError{Diagnosis: "WATCHDOG: injected"}
			}
		case 3:
			return nil, fmt.Errorf("build exploded")
		}
		return fakeResult(p), nil
	}
	spec := testSpec()
	spec.Retries = 1
	r := &Runner{Workers: 2, Exec: exec, OnEvent: record}
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 3 || res.Failed != 1 {
		t.Fatalf("executed %d failed %d, want 3/1", res.Executed, res.Failed)
	}

	types := func(idx int) []EventType {
		var ts []EventType
		for _, ev := range events[idx] {
			ts = append(ts, ev.Type)
			if ev.Total != 4 {
				t.Errorf("job %d event %s has Total %d, want 4", idx, ev.Type, ev.Total)
			}
			if ev.Label == "" {
				t.Errorf("job %d event %s has no label", idx, ev.Type)
			}
		}
		return ts
	}
	want := map[int][]EventType{
		0: {EventStarted, EventDone},                  // seed 1
		1: {EventStarted, EventStallRetry, EventDone}, // seed 2
		2: {EventStarted, EventFailed},                // seed 3
		3: {EventStarted, EventDone},                  // seed 4
	}
	for idx, w := range want {
		got := types(idx)
		if fmt.Sprint(got) != fmt.Sprint(w) {
			t.Errorf("job %d events = %v, want %v", idx, got, w)
		}
	}
	// The retried job reports the winning attempt number and its cycles.
	doneEv := events[1][len(events[1])-1]
	if doneEv.Attempt != 2 || doneEv.Cycles == 0 {
		t.Errorf("retried done event = %+v, want attempt 2 with cycles", doneEv)
	}
	if events[2][1].Err == "" {
		t.Error("failed event lost its error")
	}

	// Second run over a cache: every job is a cache_hit with cycles, and the
	// failed one re-runs.
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2 := &Runner{Workers: 2, Exec: exec, Cache: cache, OnEvent: record}
	if _, err := r2.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	events = map[int][]Event{}
	mu.Unlock()
	if _, err := r2.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 4; idx++ {
		got := types(idx)
		w := []EventType{EventCacheHit}
		if idx == 2 { // the hard failure is never cached
			w = []EventType{EventStarted, EventFailed}
		}
		if fmt.Sprint(got) != fmt.Sprint(w) {
			t.Errorf("cached run: job %d events = %v, want %v", idx, got, w)
		}
	}
}

// TestRunnerEmitsSkippedOnCancellation checks that jobs cancelled before
// dispatch surface as skipped events.
func TestRunnerEmitsSkippedOnCancellation(t *testing.T) {
	var mu sync.Mutex
	var got []Event
	ctx, cancel := context.WithCancel(context.Background())
	exec := func(c context.Context, p Params) (*Result, error) {
		cancel() // first job cancels the campaign
		return fakeResult(p), nil
	}
	r := &Runner{Workers: 1, Exec: exec, OnEvent: func(ev Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	}}
	res, err := r.Run(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped == 0 {
		t.Fatal("cancellation produced no skipped jobs")
	}
	skipped := 0
	for _, ev := range got {
		if ev.Type == EventSkipped {
			skipped++
			if ev.Err == "" {
				t.Error("skipped event lost the cancellation cause")
			}
		}
	}
	if skipped != res.Skipped {
		t.Fatalf("%d skipped events for %d skipped jobs", skipped, res.Skipped)
	}
}
