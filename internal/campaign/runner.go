package campaign

import (
	"context"
	"sync"
	"time"
)

// Status classifies how a job's slot in the campaign was filled.
type Status string

const (
	// StatusRun: executed in this campaign run.
	StatusRun Status = "run"
	// StatusCached: served from the result cache without executing.
	StatusCached Status = "cached"
	// StatusFailed: executed and failed (stall after all retries, timeout,
	// build error).
	StatusFailed Status = "failed"
	// StatusSkipped: never executed — the campaign was cancelled before
	// the job was dispatched. Skipped jobs are what a resumed campaign
	// picks up.
	StatusSkipped Status = "skipped"
)

// EventType classifies a job lifecycle event (see Runner.OnEvent).
type EventType string

const (
	// EventStarted: the job was dispatched to a worker (first attempt).
	EventStarted EventType = "started"
	// EventCacheHit: the job was served from the result cache unexecuted.
	EventCacheHit EventType = "cache_hit"
	// EventStallRetry: an attempt hit a watchdog stall and the job is being
	// retried; Attempt is the attempt that failed.
	EventStallRetry EventType = "stall_retry"
	// EventPanicRetry: an attempt panicked, the panic was recovered into a
	// PanicError, and the job is being retried; Attempt is the attempt that
	// failed.
	EventPanicRetry EventType = "panic_retry"
	// EventResumed: a checkpoint file from an interrupted run of this exact
	// job was found; the job restarts from that snapshot instead of cycle 0.
	EventResumed EventType = "resumed"
	// EventDone: the job completed successfully; Cycles and Attempt are set.
	EventDone EventType = "done"
	// EventFailed: the job failed terminally; Err is set.
	EventFailed EventType = "failed"
	// EventSkipped: the job was never executed (campaign cancelled).
	EventSkipped EventType = "skipped"
	// EventRequeued: fleet only — the job's lease expired (its worker died
	// or lost its heartbeat) and the job went back on the queue for another
	// worker to pick up.
	EventRequeued EventType = "requeued"
)

// Event is one structured job lifecycle notification. The zero Total means
// the expansion failed before any event was emitted (never seen by hooks).
type Event struct {
	Type    EventType `json:"type"`
	Index   int       `json:"index"`
	Label   string    `json:"label"`
	Total   int       `json:"total"`             // jobs in the campaign
	Attempt int       `json:"attempt,omitempty"` // 1-based, for started/stall_retry/done
	Cycles  uint64    `json:"cycles,omitempty"`  // workload cycles, for done
	Err     string    `json:"err,omitempty"`     // for failed/skipped/stall_retry
}

// JobOutcome pairs a job with how it went.
type JobOutcome struct {
	Job    Job
	Status Status
	// Result is set for StatusRun and StatusCached.
	Result *Result
	// Err describes the failure for StatusFailed.
	Err string
}

// CampaignResult is everything a campaign run produced, in job-index order.
type CampaignResult struct {
	Spec     Spec
	Jobs     []JobOutcome
	Executed int
	Cached   int
	Failed   int
	Skipped  int
	// Elapsed is wall-clock; it never enters the deterministic reports.
	Elapsed time.Duration
}

// Runner executes campaigns in-process: it is the single-tenant composition
// of the campaign engine's three layers — the job list is the queue (cache
// hits resolved up front), the bounded goroutine pool is the scheduler, and
// Executor runs each job. The fleet server (internal/fleetsrv) recomposes
// the same layers across a network: a tenant-aware Queue, lease-based
// scheduling over worker processes, and the same Executor inside each
// worker — which is why a campaign's aggregate is byte-identical whichever
// composition ran it.
type Runner struct {
	// Workers bounds concurrent jobs; <= 0 means 1. Worker count affects
	// only wall-clock time: the aggregate output is byte-identical for
	// any value.
	Workers int
	// Cache, when non-nil, is consulted before executing and updated
	// after every successful job.
	Cache *Cache
	// Exec runs one job; nil means Execute (the real simulator). Tests
	// substitute instrumented executors here.
	Exec func(ctx context.Context, p Params) (*Result, error)
	// Log, when non-nil, receives one line per job as it completes.
	Log func(format string, args ...any)
	// OnEvent, when non-nil, receives structured job lifecycle events
	// (started, cache_hit, stall_retry, done, failed, skipped) as they
	// happen. It is called concurrently from worker goroutines and must be
	// safe for concurrent use; the fleet CLI's -v flag and the live
	// dashboard both hang off this hook.
	OnEvent func(Event)

	// execOpts forwards the Executor's test seam (see Executor.execOpts).
	execOpts func(ctx context.Context, p Params, opts ExecuteOpts) (*Result, error)
}

// emit delivers an event to the OnEvent hook, if any.
func (r *Runner) emit(ev Event) {
	if r.OnEvent != nil {
		r.OnEvent(ev)
	}
}

// Run expands the spec and executes every point not already in the cache.
// Cancellation via ctx is graceful: in-flight jobs are interrupted at their
// next event slice, undispatched jobs are marked skipped, and everything
// already completed is in the cache — re-running the same campaign resumes
// from there. Run returns the partial CampaignResult in that case, never an
// error for cancellation itself.
func (r *Runner) Run(ctx context.Context, spec Spec) (*CampaignResult, error) {
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := &CampaignResult{Spec: spec, Jobs: make([]JobOutcome, len(jobs))}

	// Resolve cache hits up front (cheap, serial, deterministic), then
	// fan the remainder out to the pool.
	var todo []Job
	for _, job := range jobs {
		if r.Cache != nil {
			if cached, ok := r.Cache.Get(job.Params.Key()); ok {
				res.Jobs[job.Index] = JobOutcome{Job: job, Status: StatusCached, Result: cached}
				r.emit(Event{Type: EventCacheHit, Index: job.Index, Label: job.Params.Label(),
					Total: len(jobs), Cycles: cached.Cycles})
				continue
			}
		}
		todo = append(todo, job)
	}

	// Warm-start prefixes are shared across every sweep point with the same
	// (shape, workload) prefix identity. Build each missing one exactly once,
	// serially, before the fan-out — so workers only ever fork, never race to
	// generate the same prefix.
	if r.Cache != nil && r.Exec == nil {
		built := map[string]bool{}
		for _, job := range todo {
			if !job.Params.WarmStart {
				continue
			}
			key := job.Params.PrefixKey()
			if built[key] {
				continue
			}
			built[key] = true
			path := warmPathIn(r.Cache.Dir(), job.Params)
			ok, serr := statExists(path)
			if serr != nil && r.Log != nil {
				r.Log("warm prefix %s: stat %s: %v (rebuilding)", key[:12], path, serr)
			}
			if ok {
				continue
			}
			if ctx.Err() != nil {
				break
			}
			snap, err := BuildPrefix(ctx, job.Params)
			if err == nil {
				err = snap.WriteFile(path)
			}
			if err != nil && r.Log != nil {
				// Not fatal: the affected jobs build their prefix in-process.
				r.Log("warm prefix %s: %v", key[:12], err)
			}
		}
	}

	workers := r.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(todo) && len(todo) > 0 {
		workers = len(todo)
	}
	ch := make(chan Job)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards res.Jobs writes from workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range ch {
				out := r.runJob(ctx, job, spec, len(jobs))
				mu.Lock()
				res.Jobs[job.Index] = out
				mu.Unlock()
				if r.Log != nil {
					switch out.Status {
					case StatusFailed:
						r.Log("job %d %s: FAILED: %s", job.Index, job.Params.Label(), out.Err)
					case StatusRun:
						r.Log("job %d %s: %d cycles (attempt %d)", job.Index, job.Params.Label(), out.Result.Cycles, out.Result.Attempts)
					}
				}
			}
		}()
	}
	for _, job := range todo {
		ch <- job
	}
	close(ch)
	wg.Wait()

	for i := range res.Jobs {
		switch res.Jobs[i].Status {
		case StatusRun:
			res.Executed++
		case StatusCached:
			res.Cached++
		case StatusFailed:
			res.Failed++
		default:
			res.Skipped++
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// runJob executes one job through the Executor layer with the spec's
// timeout, retry, and checkpoint/resume policy, then records the winning
// result in the cache.
func (r *Runner) runJob(ctx context.Context, job Job, spec Spec, total int) JobOutcome {
	ex := &Executor{Exec: r.Exec, Log: r.Log, OnEvent: r.OnEvent, execOpts: r.execOpts}
	if r.Cache != nil {
		ex.Dir = r.Cache.Dir()
	}
	out := ex.RunJob(ctx, job, spec.Policy(), total)
	if out.Status == StatusRun && r.Cache != nil {
		if cerr := r.Cache.Put(out.Result); cerr != nil && r.Log != nil {
			r.Log("job %d: cache write failed: %v", job.Index, cerr)
		}
	}
	return out
}
