package campaign

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"smappic/internal/ckpt"
)

// Status classifies how a job's slot in the campaign was filled.
type Status string

const (
	// StatusRun: executed in this campaign run.
	StatusRun Status = "run"
	// StatusCached: served from the result cache without executing.
	StatusCached Status = "cached"
	// StatusFailed: executed and failed (stall after all retries, timeout,
	// build error).
	StatusFailed Status = "failed"
	// StatusSkipped: never executed — the campaign was cancelled before
	// the job was dispatched. Skipped jobs are what a resumed campaign
	// picks up.
	StatusSkipped Status = "skipped"
)

// EventType classifies a job lifecycle event (see Runner.OnEvent).
type EventType string

const (
	// EventStarted: the job was dispatched to a worker (first attempt).
	EventStarted EventType = "started"
	// EventCacheHit: the job was served from the result cache unexecuted.
	EventCacheHit EventType = "cache_hit"
	// EventStallRetry: an attempt hit a watchdog stall and the job is being
	// retried; Attempt is the attempt that failed.
	EventStallRetry EventType = "stall_retry"
	// EventPanicRetry: an attempt panicked, the panic was recovered into a
	// PanicError, and the job is being retried; Attempt is the attempt that
	// failed.
	EventPanicRetry EventType = "panic_retry"
	// EventResumed: a checkpoint file from an interrupted run of this exact
	// job was found; the job restarts from that snapshot instead of cycle 0.
	EventResumed EventType = "resumed"
	// EventDone: the job completed successfully; Cycles and Attempt are set.
	EventDone EventType = "done"
	// EventFailed: the job failed terminally; Err is set.
	EventFailed EventType = "failed"
	// EventSkipped: the job was never executed (campaign cancelled).
	EventSkipped EventType = "skipped"
)

// Event is one structured job lifecycle notification. The zero Total means
// the expansion failed before any event was emitted (never seen by hooks).
type Event struct {
	Type    EventType `json:"type"`
	Index   int       `json:"index"`
	Label   string    `json:"label"`
	Total   int       `json:"total"`             // jobs in the campaign
	Attempt int       `json:"attempt,omitempty"` // 1-based, for started/stall_retry/done
	Cycles  uint64    `json:"cycles,omitempty"`  // workload cycles, for done
	Err     string    `json:"err,omitempty"`     // for failed/skipped/stall_retry
}

// JobOutcome pairs a job with how it went.
type JobOutcome struct {
	Job    Job
	Status Status
	// Result is set for StatusRun and StatusCached.
	Result *Result
	// Err describes the failure for StatusFailed.
	Err string
}

// CampaignResult is everything a campaign run produced, in job-index order.
type CampaignResult struct {
	Spec     Spec
	Jobs     []JobOutcome
	Executed int
	Cached   int
	Failed   int
	Skipped  int
	// Elapsed is wall-clock; it never enters the deterministic reports.
	Elapsed time.Duration
}

// Runner executes campaigns.
type Runner struct {
	// Workers bounds concurrent jobs; <= 0 means 1. Worker count affects
	// only wall-clock time: the aggregate output is byte-identical for
	// any value.
	Workers int
	// Cache, when non-nil, is consulted before executing and updated
	// after every successful job.
	Cache *Cache
	// Exec runs one job; nil means Execute (the real simulator). Tests
	// substitute instrumented executors here.
	Exec func(ctx context.Context, p Params) (*Result, error)
	// Log, when non-nil, receives one line per job as it completes.
	Log func(format string, args ...any)
	// OnEvent, when non-nil, receives structured job lifecycle events
	// (started, cache_hit, stall_retry, done, failed, skipped) as they
	// happen. It is called concurrently from worker goroutines and must be
	// safe for concurrent use; the fleet CLI's -v flag and the live
	// dashboard both hang off this hook.
	OnEvent func(Event)
}

// emit delivers an event to the OnEvent hook, if any.
func (r *Runner) emit(ev Event) {
	if r.OnEvent != nil {
		r.OnEvent(ev)
	}
}

// Run expands the spec and executes every point not already in the cache.
// Cancellation via ctx is graceful: in-flight jobs are interrupted at their
// next event slice, undispatched jobs are marked skipped, and everything
// already completed is in the cache — re-running the same campaign resumes
// from there. Run returns the partial CampaignResult in that case, never an
// error for cancellation itself.
func (r *Runner) Run(ctx context.Context, spec Spec) (*CampaignResult, error) {
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := &CampaignResult{Spec: spec, Jobs: make([]JobOutcome, len(jobs))}

	// Resolve cache hits up front (cheap, serial, deterministic), then
	// fan the remainder out to the pool.
	var todo []Job
	for _, job := range jobs {
		if r.Cache != nil {
			if cached, ok := r.Cache.Get(job.Params.Key()); ok {
				res.Jobs[job.Index] = JobOutcome{Job: job, Status: StatusCached, Result: cached}
				r.emit(Event{Type: EventCacheHit, Index: job.Index, Label: job.Params.Label(),
					Total: len(jobs), Cycles: cached.Cycles})
				continue
			}
		}
		todo = append(todo, job)
	}

	// Warm-start prefixes are shared across every sweep point with the same
	// (shape, workload) prefix identity. Build each missing one exactly once,
	// serially, before the fan-out — so workers only ever fork, never race to
	// generate the same prefix.
	if r.Cache != nil && r.Exec == nil {
		built := map[string]bool{}
		for _, job := range todo {
			if !job.Params.WarmStart {
				continue
			}
			key := job.Params.PrefixKey()
			if built[key] {
				continue
			}
			built[key] = true
			path := r.warmPath(job.Params)
			if _, err := os.Stat(path); err == nil {
				continue
			}
			if ctx.Err() != nil {
				break
			}
			snap, err := BuildPrefix(ctx, job.Params)
			if err == nil {
				err = snap.WriteFile(path)
			}
			if err != nil && r.Log != nil {
				// Not fatal: the affected jobs build their prefix in-process.
				r.Log("warm prefix %s: %v", key[:12], err)
			}
		}
	}

	workers := r.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(todo) && len(todo) > 0 {
		workers = len(todo)
	}
	ch := make(chan Job)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards res.Jobs writes from workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range ch {
				out := r.runJob(ctx, job, spec, len(jobs))
				mu.Lock()
				res.Jobs[job.Index] = out
				mu.Unlock()
				if r.Log != nil {
					switch out.Status {
					case StatusFailed:
						r.Log("job %d %s: FAILED: %s", job.Index, job.Params.Label(), out.Err)
					case StatusRun:
						r.Log("job %d %s: %d cycles (attempt %d)", job.Index, job.Params.Label(), out.Result.Cycles, out.Result.Attempts)
					}
				}
			}
		}()
	}
	for _, job := range todo {
		ch <- job
	}
	close(ch)
	wg.Wait()

	for i := range res.Jobs {
		switch res.Jobs[i].Status {
		case StatusRun:
			res.Executed++
		case StatusCached:
			res.Cached++
		case StatusFailed:
			res.Failed++
		default:
			res.Skipped++
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// warmPath is where the shared warm-start prefix snapshot for p's prefix
// identity lives in the cache directory.
func (r *Runner) warmPath(p Params) string {
	return filepath.Join(r.Cache.Dir(), "warm-"+p.PrefixKey()+".ckpt")
}

// ckptPath is where a job's in-flight periodic checkpoint lives. It is keyed
// by the job's full identity, written during execution, and deleted on
// success — so its existence means "this exact job was interrupted mid-run".
func (r *Runner) ckptPath(p Params) string {
	return filepath.Join(r.Cache.Dir(), p.Key()+".ckpt")
}

// runJob executes one job with the spec's timeout, retry, and
// checkpoint/resume policy. Stalls and recovered panics are retryable; a
// corrupt or version-skewed resume snapshot is discarded and the job
// restarts cold without burning a retry attempt.
func (r *Runner) runJob(ctx context.Context, job Job, spec Spec, total int) JobOutcome {
	label := job.Params.Label()
	if ctx.Err() != nil {
		r.emit(Event{Type: EventSkipped, Index: job.Index, Label: label, Total: total, Err: ctx.Err().Error()})
		return JobOutcome{Job: job, Status: StatusSkipped, Err: ctx.Err().Error()}
	}
	exec := r.Exec
	var opts ExecuteOpts
	ckptFile := ""
	if exec == nil {
		if r.Cache != nil {
			if job.Params.WarmStart {
				if wp := r.warmPath(job.Params); fileExists(wp) {
					opts.WarmStartPath = wp
				}
			}
			if spec.CheckpointEvery > 0 && job.Params.Workload == WorkloadIS {
				ckptFile = r.ckptPath(job.Params)
				opts.CheckpointPath = ckptFile
				opts.CheckpointEvery = spec.CheckpointEvery
				if fileExists(ckptFile) {
					opts.ResumeFrom = ckptFile
					r.emit(Event{Type: EventResumed, Index: job.Index, Label: label, Total: total})
				}
			}
		}
		exec = func(c context.Context, p Params) (*Result, error) { return ExecuteWithOpts(c, p, opts) }
	}
	r.emit(Event{Type: EventStarted, Index: job.Index, Label: label, Total: total, Attempt: 1})
	var lastErr error
	for attempt := 1; attempt <= spec.Retries+1; {
		jctx := ctx
		cancel := context.CancelFunc(func() {})
		if spec.TimeoutSec > 0 {
			jctx, cancel = context.WithTimeout(ctx, time.Duration(spec.TimeoutSec*float64(time.Second)))
		}
		result, err := exec(jctx, job.Params)
		cancel()
		if err == nil {
			result.Attempts = attempt
			if ckptFile != "" {
				os.Remove(ckptFile)
			}
			if r.Cache != nil {
				if cerr := r.Cache.Put(result); cerr != nil && r.Log != nil {
					r.Log("job %d: cache write failed: %v", job.Index, cerr)
				}
			}
			r.emit(Event{Type: EventDone, Index: job.Index, Label: label, Total: total,
				Attempt: attempt, Cycles: result.Cycles})
			return JobOutcome{Job: job, Status: StatusRun, Result: result}
		}
		lastErr = err
		if opts.ResumeFrom != "" && ckpt.IsSnapshotError(err) {
			// The resume snapshot is corrupt, truncated, or from another
			// format version — a bad file, not a bad job. Discard it and
			// restart cold; this costs no retry attempt.
			os.Remove(ckptFile)
			opts.ResumeFrom = ""
			if r.Log != nil {
				r.Log("job %d %s: discarding unusable checkpoint: %v", job.Index, label, err)
			}
			continue
		}
		// Retry watchdog stalls and recovered panics: the failure modes
		// where another attempt is meaningful policy (and what the retry
		// budget exists for). Cancellations and timeouts burn no further
		// attempts.
		if (!IsStall(err) && !IsPanic(err)) || ctx.Err() != nil {
			break
		}
		if attempt <= spec.Retries {
			typ := EventStallRetry
			if IsPanic(err) {
				typ = EventPanicRetry
			}
			r.emit(Event{Type: typ, Index: job.Index, Label: label, Total: total,
				Attempt: attempt, Err: err.Error()})
		}
		attempt++
	}
	if ctx.Err() != nil && !IsStall(lastErr) && !IsPanic(lastErr) {
		// The campaign was cancelled out from under the job; it never
		// completed, so it stays resumable rather than failed. Any periodic
		// checkpoint it wrote stays on disk for the resumed campaign.
		r.emit(Event{Type: EventSkipped, Index: job.Index, Label: label, Total: total, Err: lastErr.Error()})
		return JobOutcome{Job: job, Status: StatusSkipped, Err: lastErr.Error()}
	}
	r.emit(Event{Type: EventFailed, Index: job.Index, Label: label, Total: total, Err: fmt.Sprintf("%v", lastErr)})
	return JobOutcome{Job: job, Status: StatusFailed, Err: fmt.Sprintf("%v", lastErr)}
}

// fileExists reports whether path names an existing file.
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
