package campaign

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestOpenCacheSweepsStaleOrphans: a writer SIGKILLed between CreateTemp and
// rename leaks its temp file; OpenCache must collect stale ones while
// leaving fresh temps (a live writer in another process) alone.
func TestOpenCacheSweepsStaleOrphans(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "deadbeef.tmp-123456")
	fresh := filepath.Join(dir, "cafef00d.tmp-654321")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * orphanAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCache(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale orphan temp file not collected")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file (possibly a live writer's) was collected")
	}
}

// TestCacheEmptyAndTruncatedEntriesAreMisses: a zero-length or truncated
// entry (the crash shapes the fsync-before-rename discipline prevents going
// forward, but old caches may carry) must read as a miss and be recoverable
// by a fresh Put.
func TestCacheEmptyAndTruncatedEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs, _ := testSpec().Jobs()
	r := fakeResult(jobs[0].Params)
	if err := c.Put(r); err != nil {
		t.Fatal(err)
	}
	entry := filepath.Join(dir, r.Key+".json")

	// Zero-length entry.
	if err := os.Truncate(entry, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(r.Key); ok {
		t.Fatal("zero-length entry served as a hit")
	}

	// Truncated entry: a valid JSON prefix cut mid-document.
	if err := c.Put(r); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entry, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(r.Key); ok {
		t.Fatal("truncated entry served as a hit")
	}

	// A fresh Put recovers the slot, and leaves no temp files behind.
	if err := c.Put(r); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get(r.Key); !ok || got.Cycles != r.Cycles {
		t.Fatal("re-Put over a truncated entry did not recover it")
	}
	temps, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if len(temps) != 0 {
		t.Fatalf("Put left temp files behind: %v", temps)
	}
}

// TestStatExistsDistinguishesErrors: absence is (false, nil); a stat that
// fails for any other reason (here ENOTDIR: a path component is a file)
// must surface its error instead of silently reading as absence.
func TestStatExistsDistinguishesErrors(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, err := statExists(file); !ok || err != nil {
		t.Fatalf("existing file: ok=%v err=%v", ok, err)
	}
	if ok, err := statExists(filepath.Join(dir, "missing")); ok || err != nil {
		t.Fatalf("missing file: ok=%v err=%v", ok, err)
	}
	ok, err := statExists(filepath.Join(file, "child"))
	if ok || err == nil {
		t.Fatalf("stat through a file: ok=%v err=%v, want an error", ok, err)
	}
	if os.IsNotExist(err) {
		t.Fatal("ENOTDIR misclassified as not-exists")
	}

	// The classic shape of the bug — an unreadable parent directory — needs
	// non-root credentials to manifest (root bypasses permission checks).
	if os.Geteuid() != 0 {
		locked := filepath.Join(dir, "locked")
		if err := os.Mkdir(locked, 0o755); err != nil {
			t.Fatal(err)
		}
		inner := filepath.Join(locked, "snap.ckpt")
		if err := os.WriteFile(inner, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chmod(locked, 0o000); err != nil {
			t.Fatal(err)
		}
		defer os.Chmod(locked, 0o755)
		ok, err := statExists(inner)
		if ok || err == nil || os.IsNotExist(err) {
			t.Fatalf("permission error: ok=%v err=%v, want a non-IsNotExist error", ok, err)
		}
	}
}

// TestExecutorSurfacesStatErrors: when the checkpoint or warm-prefix stat
// fails for a reason other than absence, the job still runs (degraded to a
// cold start) but the failure is logged — never silently swallowed.
func TestExecutorSurfacesStatErrors(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var logged []string
	ex := &Executor{
		// A directory path routed through a plain file: every stat under it
		// fails with ENOTDIR, the deterministic stand-in for a permission
		// error on the snapshot.
		Dir: filepath.Join(file, "cachedir"),
		Log: func(format string, args ...any) {
			mu.Lock()
			logged = append(logged, strings.TrimSpace(format))
			mu.Unlock()
		},
		execOpts: func(ctx context.Context, p Params, opts ExecuteOpts) (*Result, error) {
			if opts.ResumeFrom != "" || opts.WarmStartPath != "" {
				t.Errorf("stat failure must degrade to a cold run, got opts %+v", opts)
			}
			return fakeResult(p), nil
		},
	}
	spec := testSpec()
	spec.Seeds = []uint64{1}
	spec.CheckpointEvery = 10_000
	spec.WarmStart = true
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	out := ex.RunJob(context.Background(), jobs[0], spec.Policy(), 1)
	if out.Status != StatusRun {
		t.Fatalf("job did not run: %+v", out)
	}
	var sawCkpt, sawWarm bool
	for _, line := range logged {
		if strings.Contains(line, "checkpoint unreadable") {
			sawCkpt = true
		}
		if strings.Contains(line, "warm prefix unreadable") {
			sawWarm = true
		}
	}
	if !sawCkpt || !sawWarm {
		t.Fatalf("stat failures not surfaced through Log: ckpt=%v warm=%v (%q)", sawCkpt, sawWarm, logged)
	}
}

// TestStallRetryDeletesCheckpointBeforeRetry: attempt 1 writes its periodic
// checkpoint and stalls; the retry must start with the checkpoint deleted
// and no ResumeFrom — resuming the pre-stall state would deterministically
// stall again.
func TestStallRetryDeletesCheckpointBeforeRetry(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	spec.Seeds = []uint64{1}
	spec.Retries = 1
	spec.CheckpointEvery = 10_000
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	ckptFile := filepath.Join(dir, jobs[0].Params.Key()+".ckpt")

	var mu sync.Mutex
	attempts := 0
	retrySawCkpt, retryResume := false, "unset"
	r := &Runner{Cache: cache}
	r.execOpts = func(ctx context.Context, p Params, opts ExecuteOpts) (*Result, error) {
		mu.Lock()
		defer mu.Unlock()
		attempts++
		if attempts == 1 {
			// The attempt checkpoints mid-run, then trips the watchdog.
			if err := os.WriteFile(opts.CheckpointPath, []byte("pre-stall state"), 0o644); err != nil {
				t.Error(err)
			}
			return nil, &StallError{Diagnosis: "WATCHDOG: injected pre-retry"}
		}
		retrySawCkpt, _ = statExists(ckptFile)
		retryResume = opts.ResumeFrom
		return fakeResult(p), nil
	}
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 1 || res.Failed != 0 || attempts != 2 {
		t.Fatalf("executed %d failed %d attempts %d, want 1/0/2", res.Executed, res.Failed, attempts)
	}
	if retrySawCkpt {
		t.Error("stalled attempt's checkpoint still on disk when the retry started")
	}
	if retryResume != "" {
		t.Errorf("retry resumed from %q, want a cold start", retryResume)
	}
}

// TestInterruptedStallRetryStartsCold is the crash shape from the field: a
// job stalls through its whole retry budget (each attempt leaving a periodic
// checkpoint), the campaign dies, and the resumed campaign must start the
// job cold — not ResumeFrom the pre-stall snapshot and deterministically
// burn the budget again.
func TestInterruptedStallRetryStartsCold(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	spec.Seeds = []uint64{1}
	spec.Retries = 1
	spec.CheckpointEvery = 10_000
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	ckptFile := filepath.Join(dir, jobs[0].Params.Key()+".ckpt")

	// First campaign: every attempt checkpoints then stalls; the job fails
	// terminally (standing in for "the process died mid-retry" — either way
	// the checkpoint has been written and no retry has overwritten it).
	cache1, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := &Runner{Cache: cache1}
	var mu sync.Mutex
	r1.execOpts = func(ctx context.Context, p Params, opts ExecuteOpts) (*Result, error) {
		mu.Lock()
		defer mu.Unlock()
		if err := os.WriteFile(opts.CheckpointPath, []byte("pre-stall state"), 0o644); err != nil {
			t.Error(err)
		}
		return nil, &StallError{Diagnosis: "WATCHDOG: injected stall"}
	}
	res, err := r1.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Fatalf("failed %d, want 1", res.Failed)
	}
	if ok, _ := statExists(ckptFile); ok {
		t.Fatal("stalling campaign left its poison checkpoint on disk")
	}

	// Resumed campaign: the job must start cold — no resumed event, no
	// ResumeFrom — and succeed on its first attempt.
	cache2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var events []EventType
	r2 := &Runner{Cache: cache2, OnEvent: func(ev Event) {
		mu.Lock()
		events = append(events, ev.Type)
		mu.Unlock()
	}}
	r2.execOpts = func(ctx context.Context, p Params, opts ExecuteOpts) (*Result, error) {
		if opts.ResumeFrom != "" {
			t.Errorf("resumed campaign warm-resumed the stalled state from %q", opts.ResumeFrom)
		}
		return fakeResult(p), nil
	}
	res2, err := r2.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Executed != 1 || res2.Failed != 0 {
		t.Fatalf("resumed campaign: executed %d failed %d, want 1/0", res2.Executed, res2.Failed)
	}
	for _, ev := range events {
		if ev == EventResumed {
			t.Fatal("resumed campaign emitted a resumed event for a job that must start cold")
		}
	}
	if res2.Jobs[0].Result.Attempts != 1 {
		t.Fatalf("cold restart took %d attempts, want 1", res2.Jobs[0].Result.Attempts)
	}
}
