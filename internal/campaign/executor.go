package campaign

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"smappic/internal/ckpt"
)

// ExecPolicy is the execution policy one job runs under: how long it may
// take, how many extra attempts a stall or panic earns, and how often it
// checkpoints. Policy never changes what a job computes — only how its
// result is won — so it travels outside Params and outside the cache key.
type ExecPolicy struct {
	TimeoutSec      float64 `json:"timeout_sec,omitempty"`
	Retries         int     `json:"retries,omitempty"`
	CheckpointEvery uint64  `json:"checkpoint_every,omitempty"`
}

// Policy extracts the execution policy from a spec.
func (s Spec) Policy() ExecPolicy {
	return ExecPolicy{
		TimeoutSec:      s.TimeoutSec,
		Retries:         s.Retries,
		CheckpointEvery: s.CheckpointEvery,
	}
}

// warmPathIn is where the shared warm-start prefix snapshot for p's prefix
// identity lives in a checkpoint directory.
func warmPathIn(dir string, p Params) string {
	return filepath.Join(dir, "warm-"+p.PrefixKey()+".ckpt")
}

// ckptPathIn is where a job's in-flight periodic checkpoint lives. It is
// keyed by the job's full identity, written during execution, and deleted on
// success or on a stall/panic — so its existence means "this exact job was
// interrupted mid-run and its state is worth resuming".
func ckptPathIn(dir string, p Params) string {
	return filepath.Join(dir, p.Key()+".ckpt")
}

// statExists reports whether path names an existing file, distinguishing
// genuine absence from stat failures (permission errors, a file where a
// directory was expected, I/O errors). Callers that used to collapse both
// into "not exists" silently downgraded resumable runs to cold ones.
func statExists(path string) (bool, error) {
	_, err := os.Stat(path)
	switch {
	case err == nil:
		return true, nil
	case os.IsNotExist(err):
		return false, nil
	default:
		return false, err
	}
}

// Executor runs single jobs under an ExecPolicy: per-attempt timeouts,
// stall/panic retries, periodic checkpointing with crash resume, and
// warm-start forking. It is the bottom layer of the campaign engine — the
// in-process Runner drives it from a goroutine pool, and a fleet worker
// process drives it from a network lease — so a job's outcome is
// byte-identical wherever it executes.
type Executor struct {
	// Dir is the checkpoint/warm-prefix directory (normally the result
	// cache's directory, shared between workers so a re-leased job can
	// resume its predecessor's checkpoint). Empty disables both policies.
	Dir string
	// Exec substitutes the simulator; nil means ExecuteWithOpts. Tests and
	// fleet protocol tests put instrumented executors here. When set,
	// checkpoint/warm-start setup is skipped (the stub has no opts).
	Exec func(ctx context.Context, p Params) (*Result, error)
	// Log, when non-nil, receives diagnostics (discarded checkpoints,
	// degraded stat failures).
	Log func(format string, args ...any)
	// OnEvent, when non-nil, receives structured lifecycle events. Called
	// from the executing goroutine; must be safe for concurrent use when
	// the caller runs jobs concurrently.
	OnEvent func(Event)

	// execOpts is the test seam for the checkpoint/retry machinery: like
	// Exec, but it receives the resolved ExecuteOpts of each attempt, and —
	// unlike Exec — checkpoint and warm-start bookkeeping runs exactly as
	// for the real simulator.
	execOpts func(ctx context.Context, p Params, opts ExecuteOpts) (*Result, error)
}

// emit delivers an event to the OnEvent hook, if any.
func (e *Executor) emit(ev Event) {
	if e.OnEvent != nil {
		e.OnEvent(ev)
	}
}

// logf logs through the Log hook, if any.
func (e *Executor) logf(format string, args ...any) {
	if e.Log != nil {
		e.Log(format, args...)
	}
}

// RunJob executes one job under pol. Stalls and recovered panics are
// retryable; a corrupt or version-skewed resume snapshot is discarded and
// the job restarts cold without burning a retry attempt. A stalled or
// panicked attempt's periodic checkpoint is deleted before the next attempt
// (and on terminal stall/panic failure): resuming the pre-stall state would
// deterministically stall again, so that snapshot is poison, not progress.
func (e *Executor) RunJob(ctx context.Context, job Job, pol ExecPolicy, total int) JobOutcome {
	label := job.Params.Label()
	if ctx.Err() != nil {
		e.emit(Event{Type: EventSkipped, Index: job.Index, Label: label, Total: total, Err: ctx.Err().Error()})
		return JobOutcome{Job: job, Status: StatusSkipped, Err: ctx.Err().Error()}
	}
	exec := e.Exec
	var opts ExecuteOpts
	ckptFile := ""
	if exec == nil {
		if e.Dir != "" {
			if job.Params.WarmStart {
				wp := warmPathIn(e.Dir, job.Params)
				ok, serr := statExists(wp)
				if serr != nil {
					e.logf("job %d %s: warm prefix unreadable (building in-process): %v", job.Index, label, serr)
				}
				if ok {
					opts.WarmStartPath = wp
				}
			}
			if pol.CheckpointEvery > 0 && job.Params.Workload == WorkloadIS {
				ckptFile = ckptPathIn(e.Dir, job.Params)
				opts.CheckpointPath = ckptFile
				opts.CheckpointEvery = pol.CheckpointEvery
				ok, serr := statExists(ckptFile)
				if serr != nil {
					e.logf("job %d %s: checkpoint unreadable (starting cold): %v", job.Index, label, serr)
				}
				if ok {
					opts.ResumeFrom = ckptFile
					e.emit(Event{Type: EventResumed, Index: job.Index, Label: label, Total: total})
				}
			}
		}
		if e.execOpts != nil {
			exec = func(c context.Context, p Params) (*Result, error) { return e.execOpts(c, p, opts) }
		} else {
			exec = func(c context.Context, p Params) (*Result, error) { return ExecuteWithOpts(c, p, opts) }
		}
	}
	e.emit(Event{Type: EventStarted, Index: job.Index, Label: label, Total: total, Attempt: 1})
	var lastErr error
	for attempt := 1; attempt <= pol.Retries+1; {
		jctx := ctx
		cancel := context.CancelFunc(func() {})
		if pol.TimeoutSec > 0 {
			jctx, cancel = context.WithTimeout(ctx, time.Duration(pol.TimeoutSec*float64(time.Second)))
		}
		result, err := exec(jctx, job.Params)
		cancel()
		if err == nil {
			result.Attempts = attempt
			if ckptFile != "" {
				os.Remove(ckptFile)
			}
			e.emit(Event{Type: EventDone, Index: job.Index, Label: label, Total: total,
				Attempt: attempt, Cycles: result.Cycles})
			return JobOutcome{Job: job, Status: StatusRun, Result: result}
		}
		lastErr = err
		if opts.ResumeFrom != "" && ckpt.IsSnapshotError(err) {
			// The resume snapshot is corrupt, truncated, or from another
			// format version — a bad file, not a bad job. Discard it and
			// restart cold; this costs no retry attempt.
			os.Remove(ckptFile)
			opts.ResumeFrom = ""
			e.logf("job %d %s: discarding unusable checkpoint: %v", job.Index, label, err)
			continue
		}
		if (IsStall(err) || IsPanic(err)) && ckptFile != "" {
			// The stalled/panicked attempt left its periodic checkpoint on
			// disk, and that snapshot deterministically reproduces the
			// stall. Keeping it is worse than useless: if the campaign
			// process dies before a retry overwrites it, the resumed
			// campaign warm-resumes into the same stall and burns its whole
			// retry budget. Delete it now, before any retry, so both the
			// retry and any future resume of this job start cold.
			if rmErr := os.Remove(ckptFile); rmErr != nil && !os.IsNotExist(rmErr) {
				e.logf("job %d %s: removing stalled attempt's checkpoint: %v", job.Index, label, rmErr)
			}
			opts.ResumeFrom = ""
		}
		// Retry watchdog stalls and recovered panics: the failure modes
		// where another attempt is meaningful policy (and what the retry
		// budget exists for). Cancellations and timeouts burn no further
		// attempts.
		if (!IsStall(err) && !IsPanic(err)) || ctx.Err() != nil {
			break
		}
		if attempt <= pol.Retries {
			typ := EventStallRetry
			if IsPanic(err) {
				typ = EventPanicRetry
			}
			e.emit(Event{Type: typ, Index: job.Index, Label: label, Total: total,
				Attempt: attempt, Err: err.Error()})
		}
		attempt++
	}
	if ctx.Err() != nil && !IsStall(lastErr) && !IsPanic(lastErr) {
		// The campaign was cancelled out from under the job; it never
		// completed, so it stays resumable rather than failed. Any periodic
		// checkpoint it wrote stays on disk for the resumed campaign.
		e.emit(Event{Type: EventSkipped, Index: job.Index, Label: label, Total: total, Err: lastErr.Error()})
		return JobOutcome{Job: job, Status: StatusSkipped, Err: lastErr.Error()}
	}
	e.emit(Event{Type: EventFailed, Index: job.Index, Label: label, Total: total, Err: fmt.Sprintf("%v", lastErr)})
	return JobOutcome{Job: job, Status: StatusFailed, Err: fmt.Sprintf("%v", lastErr)}
}
