package campaign

import "testing"

// qjob builds a TenantJob with just enough identity for scheduling tests.
func qjob(tenant string, index int, seq uint64, prio int) *TenantJob {
	return &TenantJob{
		Tenant:     tenant,
		CampaignID: tenant + "-c1",
		Priority:   prio,
		Seq:        seq,
		Job:        Job{Index: index},
	}
}

// drain pulls up to n jobs, releasing each slot immediately (no quota
// pressure), and returns the served tenant sequence.
func drain(t *testing.T, q *Queue, n int) []string {
	t.Helper()
	var served []string
	for i := 0; i < n; i++ {
		tj := q.Next()
		if tj == nil {
			t.Fatalf("Next returned nil after %d of %d", i, n)
		}
		served = append(served, tj.Tenant)
		q.Release(tj.Tenant)
	}
	return served
}

func TestQueueDRRAlternatesEqualTenants(t *testing.T) {
	q := NewQueue(0)
	for i := 0; i < 3; i++ {
		q.Push(qjob("alice", i, uint64(1+i), 0))
	}
	for i := 0; i < 3; i++ {
		q.Push(qjob("bob", i, uint64(4+i), 0))
	}
	got := drain(t, q, 6)
	want := []string{"alice", "bob", "alice", "bob", "alice", "bob"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DRR order %v, want %v", got, want)
		}
	}
	if q.Next() != nil {
		t.Fatal("Next on an empty queue must return nil")
	}
}

// TestQueueQuotaAndDeficitCatchUp: a tenant pinned at quota must not be
// served, the other tenant keeps the fleet busy, and once a slot frees the
// starved tenant's accumulated deficit puts it first in line.
func TestQueueQuotaAndDeficitCatchUp(t *testing.T) {
	q := NewQueue(0)
	q.SetQuota("alice", 1)
	for i := 0; i < 4; i++ {
		q.Push(qjob("alice", i, uint64(1+i), 0))
	}
	for i := 0; i < 4; i++ {
		q.Push(qjob("bob", i, uint64(5+i), 0))
	}

	// Leases are held (no Release): alice caps at one in-flight job, bob's
	// unlimited quota absorbs the rest of the fleet.
	var served []string
	for {
		tj := q.Next()
		if tj == nil {
			break
		}
		served = append(served, tj.Tenant)
	}
	want := []string{"alice", "bob", "bob", "bob", "bob"}
	if len(served) != len(want) {
		t.Fatalf("served %v, want %v", served, want)
	}
	for i := range want {
		if served[i] != want[i] {
			t.Fatalf("served %v, want %v", served, want)
		}
	}
	if q.InFlight("alice") != 1 {
		t.Fatalf("alice in-flight %d, want 1 (quota)", q.InFlight("alice"))
	}

	// A slot frees: the starved tenant is served next despite bob having
	// drained his whole backlog in the meantime.
	q.Release("alice")
	tj := q.Next()
	if tj == nil || tj.Tenant != "alice" {
		t.Fatalf("after release got %+v, want alice", tj)
	}
	// Still at quota again: nothing else is eligible.
	if q.Next() != nil {
		t.Fatal("alice at quota with empty bob backlog: Next must return nil")
	}
}

// TestQueuePriorityAndRequeueOrder: within a tenant, higher priority wins;
// within a priority band, a requeued job (original, lower Seq) schedules
// ahead of newer submissions.
func TestQueuePriorityAndRequeueOrder(t *testing.T) {
	q := NewQueue(0)
	q.Push(qjob("alice", 0, 1, 0))
	q.Push(qjob("alice", 1, 2, 5)) // higher priority, later admission
	q.Push(qjob("alice", 2, 3, 0))

	first := q.Next()
	if first == nil || first.Job.Index != 1 {
		t.Fatalf("got %+v, want the priority-5 job (index 1)", first)
	}

	// The job's worker dies; it bounces back with its original Seq and must
	// beat both same-priority jobs still waiting... there are none at prio 5,
	// so check the band-ordering case at prio 0 instead: dispatch index 0,
	// requeue it, and it must come back before index 2 (seq 1 < seq 3).
	q.Release("alice")
	second := q.Next()
	if second == nil || second.Job.Index != 0 {
		t.Fatalf("got %+v, want index 0", second)
	}
	q.Requeue(second)
	again := q.Next()
	if again == nil || again.Job.Index != 0 {
		t.Fatalf("requeued job lost its place: got %+v, want index 0", again)
	}
	q.Release("alice")
	if q.Len() != 1 {
		t.Fatalf("Len %d, want 1", q.Len())
	}
	last := q.Next()
	if last == nil || last.Job.Index != 2 {
		t.Fatalf("got %+v, want index 2", last)
	}
}

// TestQueueTenantsView: the status view reflects backlog, in-flight, and
// quota per tenant in admission order.
func TestQueueTenantsView(t *testing.T) {
	q := NewQueue(2)
	q.SetQuota("bob", 0) // explicit unlimited
	q.Push(qjob("alice", 0, 1, 0))
	q.Push(qjob("alice", 1, 2, 0))
	q.Push(qjob("bob", 0, 3, 0))
	if tj := q.Next(); tj == nil {
		t.Fatal("Next returned nil")
	}
	views := q.Tenants()
	if len(views) != 2 || views[0].Tenant != "alice" || views[1].Tenant != "bob" {
		t.Fatalf("views %+v, want alice then bob", views)
	}
	if views[0].Pending != 1 || views[0].InFlight != 1 || views[0].Quota != 2 {
		t.Fatalf("alice view %+v, want pending 1, in-flight 1, quota 2", views[0])
	}
	if views[1].Quota != 0 {
		t.Fatalf("bob view %+v, want unlimited quota", views[1])
	}
}
