package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"smappic/internal/ckpt"
)

// isParams is a small real-simulation IS job used by the checkpoint tests.
func isParams() Params {
	return Params{
		Shape:    "1x1x2",
		Workload: WorkloadIS,
		Homing:   HomingRegion,
		NUMA:     true,
		Seed:     3,
		Keys:     1 << 10,
	}
}

// resultBytes renders a Result for byte comparison, with the runner-owned
// Attempts field masked out.
func resultBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	c := *r
	c.Attempts = 0
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestExecuteRecoversPanic wedges an IS job (hang fault, no watchdog) so the
// kernel's Join panics on a drained queue, and requires ExecuteWithOpts to
// convert that into a typed, retryable PanicError instead of crashing.
func TestExecuteRecoversPanic(t *testing.T) {
	p := isParams()
	p.Shape = "2x1x2" // multi-node, so the hang wedges real PCIe traffic
	p.Faults = "pcie.*.hang:after=10"
	_, err := Execute(context.Background(), p)
	if !IsPanic(err) {
		t.Fatalf("error %T (%v), want PanicError", err, err)
	}
	var pe *PanicError
	errors.As(err, &pe)
	if pe.Stack == "" {
		t.Error("PanicError carries no stack trace")
	}
}

// TestPanicRetriedThenSucceeds drives the runner's retry policy with an
// executor that panics (as a recovered PanicError) once per job before
// succeeding: every job must finish StatusRun on attempt 2 with a
// panic_retry event in between.
func TestPanicRetriedThenSucceeds(t *testing.T) {
	spec := testSpec()
	spec.Retries = 1
	var mu sync.Mutex
	failed := map[string]bool{}
	var events []EventType
	r := &Runner{
		Workers: 2,
		Exec: func(ctx context.Context, p Params) (*Result, error) {
			mu.Lock()
			first := !failed[p.Key()]
			failed[p.Key()] = true
			mu.Unlock()
			if first {
				return nil, &PanicError{Value: "injected", Stack: "stack"}
			}
			return fakeResult(p), nil
		},
		OnEvent: func(ev Event) {
			mu.Lock()
			events = append(events, ev.Type)
			mu.Unlock()
		},
	}
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 4 || res.Failed != 0 {
		t.Fatalf("executed %d failed %d, want 4/0", res.Executed, res.Failed)
	}
	retries := 0
	for _, out := range res.Jobs {
		if out.Result.Attempts != 2 {
			t.Errorf("job %s: %d attempts, want 2", out.Job.Params.Label(), out.Result.Attempts)
		}
	}
	for _, ev := range events {
		if ev == EventPanicRetry {
			retries++
		}
	}
	if retries != 4 {
		t.Errorf("%d panic_retry events, want 4", retries)
	}
}

// TestExecuteCheckpointResumeByteIdentical interrupts a checkpointing job by
// construction — the periodic checkpoint file it leaves behind IS the state
// of an interrupted run — and requires the resumed execution to reproduce
// the cold run byte for byte, including metrics and cycle accounting.
func TestExecuteCheckpointResumeByteIdentical(t *testing.T) {
	ctx := context.Background()
	p := isParams()
	cold, err := Execute(ctx, p)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ckptFile := filepath.Join(dir, "job.ckpt")
	mid, err := ExecuteWithOpts(ctx, p, ExecuteOpts{CheckpointPath: ckptFile, CheckpointEvery: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultBytes(t, mid), resultBytes(t, cold)) {
		t.Fatal("periodic checkpointing perturbed the result")
	}
	if _, err := os.Stat(ckptFile); err != nil {
		t.Fatalf("no checkpoint file left behind: %v", err)
	}

	resumed, err := ExecuteWithOpts(ctx, p, ExecuteOpts{ResumeFrom: ckptFile})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultBytes(t, resumed), resultBytes(t, cold)) {
		t.Fatal("resumed result diverges from the cold run")
	}
	if resumed.SimulatedCycles != cold.SimulatedCycles {
		t.Errorf("resume changed SimulatedCycles: %d vs %d (resume must not re-base accounting)",
			resumed.SimulatedCycles, cold.SimulatedCycles)
	}
}

// TestRunnerResumesFromCheckpointFile plants an interrupted job's checkpoint
// in the cache directory and verifies the runner picks it up (resumed
// event), completes it, serves a byte-identical result, and cleans the file
// up on success. A corrupt checkpoint must be discarded — cold restart —
// without failing the job or burning a retry attempt.
func TestRunnerResumesFromCheckpointFile(t *testing.T) {
	ctx := context.Background()
	spec := Spec{
		Name:            "resume",
		Shapes:          []string{"1x1x2"},
		Workloads:       []string{WorkloadIS},
		NUMA:            []bool{true},
		Seeds:           []uint64{3},
		Keys:            1 << 10,
		CheckpointEvery: 10_000,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	p := jobs[0].Params // the exact params (with defaults) the runner will key by
	cold, err := Execute(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	newRunner := func(dir string, events *[]EventType) *Runner {
		cache, err := OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		return &Runner{Cache: cache, OnEvent: func(ev Event) {
			mu.Lock()
			*events = append(*events, ev.Type)
			mu.Unlock()
		}}
	}
	sawEvent := func(events []EventType, want EventType) bool {
		for _, ev := range events {
			if ev == want {
				return true
			}
		}
		return false
	}

	t.Run("valid", func(t *testing.T) {
		dir := t.TempDir()
		// Fabricate the interruption: run once with checkpointing to get a
		// real mid-run snapshot, then plant it where the runner looks.
		ckptFile := filepath.Join(dir, p.Key()+".ckpt")
		if _, err := ExecuteWithOpts(ctx, p, ExecuteOpts{CheckpointPath: ckptFile, CheckpointEvery: 10_000}); err != nil {
			t.Fatal(err)
		}
		var events []EventType
		res, err := newRunner(dir, &events).Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Executed != 1 || res.Failed != 0 {
			t.Fatalf("executed %d failed %d, want 1/0", res.Executed, res.Failed)
		}
		if !sawEvent(events, EventResumed) {
			t.Errorf("no resumed event; saw %v", events)
		}
		if !bytes.Equal(resultBytes(t, res.Jobs[0].Result), resultBytes(t, cold)) {
			t.Error("resumed job result diverges from cold run")
		}
		if _, err := os.Stat(ckptFile); !os.IsNotExist(err) {
			t.Error("checkpoint file not removed after success")
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		dir := t.TempDir()
		ckptFile := filepath.Join(dir, p.Key()+".ckpt")
		if err := os.WriteFile(ckptFile, []byte("not a snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
		var events []EventType
		res, err := newRunner(dir, &events).Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Executed != 1 || res.Failed != 0 {
			t.Fatalf("executed %d failed %d, want 1/0", res.Executed, res.Failed)
		}
		if res.Jobs[0].Result.Attempts != 1 {
			t.Errorf("cold restart after corrupt checkpoint burned attempts: %d", res.Jobs[0].Result.Attempts)
		}
		if !bytes.Equal(resultBytes(t, res.Jobs[0].Result), resultBytes(t, cold)) {
			t.Error("job result after discarded checkpoint diverges from cold run")
		}
	})
}

// TestWarmStartForksAndSavesCycles runs the same job cold and warm-started:
// the warm run must simulate strictly fewer cycles, produce the same sorted
// output, and — for a fault-free default-bridge job, where the prefix
// configuration equals the full configuration — the same metrics document.
func TestWarmStartForksAndSavesCycles(t *testing.T) {
	ctx := context.Background()
	cold, err := Execute(ctx, isParams())
	if err != nil {
		t.Fatal(err)
	}
	wp := isParams()
	wp.WarmStart = true
	warm, err := ExecuteWithOpts(ctx, wp, ExecuteOpts{}) // no path: prefix built in-process
	if err != nil {
		t.Fatal(err)
	}
	if warm.SimulatedCycles >= cold.SimulatedCycles {
		t.Errorf("warm start saved nothing: %d simulated cycles vs cold %d",
			warm.SimulatedCycles, cold.SimulatedCycles)
	}
	if warm.Checksum != cold.Checksum || !warm.Sorted {
		t.Errorf("warm output wrong: checksum %s sorted=%v, cold %s", warm.Checksum, warm.Sorted, cold.Checksum)
	}
	// Exact equality holds only on single-node shapes: the fork skips
	// bridge/injector restore, so multi-node warm runs are
	// result-identical but not cycle-identical to cold.
	if warm.RunCycles != cold.RunCycles || !bytes.Equal(warm.Metrics, cold.Metrics) {
		t.Error("fault-free warm run should equal the cold run's simulation exactly")
	}
	if warm.Key == cold.Key {
		t.Error("warm_start does not change the cache key")
	}
}

// TestRunnerWarmStartSharesPrefix runs a multi-seed warm-started sweep and
// verifies the prefix snapshot is generated once in the cache directory,
// every point succeeds, and its recorded prefix identity matches PrefixKey.
func TestRunnerWarmStartSharesPrefix(t *testing.T) {
	spec := Spec{
		Name:      "warm",
		Shapes:    []string{"1x1x2"},
		Workloads: []string{WorkloadIS},
		NUMA:      []bool{true},
		Seeds:     []uint64{3},
		Faults:    []string{"", "node0.bridge.delay:p=0.02,cycles=400"},
		Keys:      1 << 10,
		WarmStart: true,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Workers: 2, Cache: cache}
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != len(jobs) || res.Failed != 0 {
		t.Fatalf("executed %d failed %d, want %d/0", res.Executed, res.Failed, len(jobs))
	}
	// Both fault variants share one prefix identity (faults are excluded
	// from the prefix), so exactly one warm-*.ckpt exists.
	warmFiles, err := filepath.Glob(filepath.Join(dir, "warm-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(warmFiles) != 1 {
		t.Fatalf("%d warm prefix files, want 1: %v", len(warmFiles), warmFiles)
	}
	snap, err := ckpt.ReadFile(warmFiles[0])
	if err != nil {
		t.Fatal(err)
	}
	if snap.PrefixHash != jobs[0].Params.PrefixKey() {
		t.Error("prefix snapshot's identity does not match PrefixKey")
	}
	for _, out := range res.Jobs {
		if out.Result.SimulatedCycles >= out.Result.RunCycles {
			t.Errorf("job %s: warm start simulated %d of %d cycles — no savings",
				out.Job.Params.Label(), out.Result.SimulatedCycles, out.Result.RunCycles)
		}
	}
}
