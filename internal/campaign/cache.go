package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Cache is the content-addressed result store: one JSON file per job, named
// by the hash of the job's fully resolved parameters (Params.Key). Because
// jobs are deterministic, a hit is exactly equivalent to re-running the
// simulation — re-running a campaign skips every point it has already won,
// and a campaign interrupted mid-flight resumes from what completed.
//
// The same directory is safely shared by concurrent writers — in-process
// worker goroutines, or many worker processes against one fleetd cache:
// entries are published by atomic rename, so readers only ever see complete
// documents, and duplicate Puts of the same key are idempotent (deterministic
// jobs produce byte-identical results).
type Cache struct {
	dir string
}

// orphanAge is how stale a temp file must be before OpenCache collects it.
// A writer SIGKILLed between CreateTemp and rename leaks its temp file
// forever; sweeping only old ones keeps the collection from racing a live
// writer in another process that is mid-Put right now.
const orphanAge = time.Hour

// OpenCache creates (if needed) and opens a cache directory, collecting any
// orphaned temp files a killed writer left behind.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: cache: %w", err)
	}
	c := &Cache{dir: dir}
	c.sweepOrphans()
	return c, nil
}

// sweepOrphans removes stale temp files (see orphanAge). Best-effort: a
// failure to sweep never fails the open.
func (c *Cache) sweepOrphans() {
	matches, err := filepath.Glob(filepath.Join(c.dir, "*.tmp-*"))
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-orphanAge)
	for _, m := range matches {
		if info, err := os.Stat(m); err == nil && info.ModTime().Before(cutoff) {
			os.Remove(m)
		}
	}
}

// Dir returns the cache directory path.
func (c *Cache) Dir() string { return c.dir }

// path returns the entry file for a key.
func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".json") }

// Get returns the cached result for a key. Unreadable, empty, truncated or
// corrupt entries are treated as misses (the job simply re-runs and
// overwrites them).
func (c *Cache) Get(key string) (*Result, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil || r.Key != key {
		return nil, false
	}
	return &r, true
}

// Put stores a result under its own key, atomically and durably: the entry
// is written to a temp file in the same directory, fsynced, renamed over the
// entry path, and the directory is fsynced — so a crash at any point leaves
// either the old entry or the complete new one, never a zero-length or
// truncated file that a later run would have to detect.
func (c *Cache) Put(r *Result) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, r.Key+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: cache: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	if werr == nil {
		// The rename below publishes the entry name; without this fsync a
		// power cut can publish a name whose blocks never hit the disk.
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: cache: %w", werr)
	}
	if err := os.Rename(tmp.Name(), c.path(r.Key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: cache: %w", err)
	}
	return c.syncDir()
}

// syncDir fsyncs the cache directory, making the most recent rename durable.
func (c *Cache) syncDir() error {
	d, err := os.Open(c.dir)
	if err != nil {
		return fmt.Errorf("campaign: cache: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("campaign: cache: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("campaign: cache: %w", cerr)
	}
	return nil
}
