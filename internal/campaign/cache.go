package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Cache is the content-addressed result store: one JSON file per job, named
// by the hash of the job's fully resolved parameters (Params.Key). Because
// jobs are deterministic, a hit is exactly equivalent to re-running the
// simulation — re-running a campaign skips every point it has already won,
// and a campaign interrupted mid-flight resumes from what completed.
type Cache struct {
	dir string
}

// OpenCache creates (if needed) and opens a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory path.
func (c *Cache) Dir() string { return c.dir }

// path returns the entry file for a key.
func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".json") }

// Get returns the cached result for a key. Unreadable or corrupt entries
// are treated as misses (the job simply re-runs and overwrites them).
func (c *Cache) Get(key string) (*Result, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil || r.Key != key {
		return nil, false
	}
	return &r, true
}

// Put stores a result under its own key, atomically (write to a temp file
// in the same directory, then rename), so concurrent workers and abrupt
// interruptions can never leave a half-written entry behind.
func (c *Cache) Put(r *Result) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, r.Key+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: cache: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: cache: %w", werr)
	}
	if err := os.Rename(tmp.Name(), c.path(r.Key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: cache: %w", err)
	}
	return nil
}
