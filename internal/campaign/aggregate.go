package campaign

import (
	"encoding/json"
	"fmt"
	"strings"

	"smappic/internal/cloud"
	"smappic/internal/core"
	"smappic/internal/sim"
)

// Aggregate is the campaign-level report: per-job rows in expansion order,
// the merged counter registry, and the cloud cost estimate. Marshaling is
// deterministic — fixed field order, results sorted by job index, maps
// rendered with sorted keys — so two campaigns over the same spec produce
// byte-identical documents regardless of worker count, completion order or
// cache hits.
type Aggregate struct {
	Campaign string `json:"campaign"`
	Points   int    `json:"points"`
	Complete int    `json:"complete"`

	// Failed lists jobs that failed (label + error), in job order;
	// Skipped lists jobs a cancelled campaign never ran.
	Failed  []FailedJob `json:"failed,omitempty"`
	Skipped []string    `json:"skipped,omitempty"`

	// Results holds one row per completed job, in expansion order, with
	// the bulky MetricsJSON stripped (it stays in the cache).
	Results []Result `json:"results"`

	TotalCycles uint64 `json:"total_cycles"`
	// WarmSavedCycles sums the simulation each warm-started job skipped
	// (its RunCycles minus what it actually simulated). Prefix builds
	// themselves are not jobs and are not netted out here.
	WarmSavedCycles uint64  `json:"warm_saved_cycles,omitempty"`
	TotalFPGAHours  float64 `json:"total_fpga_hours"`

	// MergedCounters sums every job's counter snapshot — the campaign's
	// view of the same registry a single run reports.
	MergedCounters map[string]uint64 `json:"merged_counters"`

	Cost *CostEstimate `json:"cost,omitempty"`
}

// FailedJob names a failure in the aggregate.
type FailedJob struct {
	Label string `json:"label"`
	Err   string `json:"error"`
}

// CostEstimate prices the campaign's FPGA-hours on the cheapest F1 instance
// that fits the largest job, and contrasts with buying the hardware
// (internal/cloud's Fig. 14 model).
type CostEstimate struct {
	Instance      string  `json:"instance"`
	FPGAHours     float64 `json:"fpga_hours"`
	CloudUSD      float64 `json:"cloud_usd"`
	OnPremUSD     float64 `json:"onprem_usd"`
	CrossoverDays float64 `json:"crossover_days"`
}

// Aggregate folds the campaign's outcomes into the report.
func (cr *CampaignResult) Aggregate() *Aggregate {
	agg := &Aggregate{
		Campaign:       cr.Spec.Name,
		Points:         len(cr.Jobs),
		MergedCounters: map[string]uint64{},
		Results:        []Result{},
	}
	maxFPGAs := 0
	for _, out := range cr.Jobs {
		switch out.Status {
		case StatusRun, StatusCached:
			row := *out.Result
			row.Metrics = nil
			agg.Results = append(agg.Results, row)
			agg.Complete++
			agg.TotalCycles += row.Cycles
			if row.SimulatedCycles < row.RunCycles {
				agg.WarmSavedCycles += row.RunCycles - row.SimulatedCycles
			}
			agg.TotalFPGAHours += row.FPGAHours
			for name, v := range row.Stats {
				agg.MergedCounters[name] += v
			}
			if a, _, _, err := core.ParseShape(row.Params.Shape); err == nil && a > maxFPGAs {
				maxFPGAs = a
			}
		case StatusFailed:
			agg.Failed = append(agg.Failed, FailedJob{Label: out.Job.Params.Label(), Err: out.Err})
		default:
			agg.Skipped = append(agg.Skipped, out.Job.Params.Label())
		}
	}
	if maxFPGAs > 0 {
		if inst, err := cloud.CheapestFor(cloud.Requirements{FPGAs: maxFPGAs}); err == nil {
			agg.Cost = &CostEstimate{
				Instance:      inst.Name,
				FPGAHours:     agg.TotalFPGAHours,
				CloudUSD:      agg.TotalFPGAHours * cloud.FPGAHourPrice,
				OnPremUSD:     cloud.OnPremCost(inst),
				CrossoverDays: cloud.CrossoverDays(inst),
			}
		}
	}
	return agg
}

// JSON renders the aggregate as the canonical campaign report document.
func (a *Aggregate) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CSV renders one row per completed job for spreadsheet import.
func (a *Aggregate) CSV() string {
	var b strings.Builder
	b.WriteString("index,label,workload,shape,numa,homing,threads,active_nodes,keys,seed,faults,cycles,run_cycles,simulated_cycles,seconds,checksum,sorted,attempts,fpga_hours\n")
	for i, r := range a.Results {
		p := r.Params
		fmt.Fprintf(&b, "%d,%s,%s,%s,%v,%s,%d,%d,%d,%d,%q,%d,%d,%d,%g,%s,%v,%d,%g\n",
			i, r.Label, p.Workload, p.Shape, p.NUMA, p.Homing, p.Threads, p.ActiveNodes,
			p.Keys, p.Seed, p.Faults, r.Cycles, r.RunCycles, r.SimulatedCycles, r.Seconds, r.Checksum,
			r.Sorted, r.Attempts, r.FPGAHours)
	}
	return b.String()
}

// MergedReport renders the summed counters through the sim.Stats registry,
// reusing the single-run report machinery (sorted, aligned, one per line).
func (a *Aggregate) MergedReport() string {
	var s sim.Stats
	s.AddCounts(a.MergedCounters)
	return s.String()
}

// Summary renders the operator-facing run summary (counts, totals, cost).
// Wall-clock elapsed stays out of it; callers print that separately.
func (cr *CampaignResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %q: %d points\n", cr.Spec.Name, len(cr.Jobs))
	fmt.Fprintf(&b, "  executed %d, cached %d, failed %d, skipped %d\n",
		cr.Executed, cr.Cached, cr.Failed, cr.Skipped)
	agg := cr.Aggregate()
	fmt.Fprintf(&b, "  simulated %d workload cycles over %d completed jobs\n", agg.TotalCycles, agg.Complete)
	if agg.WarmSavedCycles > 0 {
		fmt.Fprintf(&b, "  warm starts skipped %d prefix cycles\n", agg.WarmSavedCycles)
	}
	if agg.Cost != nil {
		fmt.Fprintf(&b, "  cost: %.6f FPGA-hours -> $%.4f on %s (hardware $%.0f, crossover %.0f days)\n",
			agg.Cost.FPGAHours, agg.Cost.CloudUSD, agg.Cost.Instance, agg.Cost.OnPremUSD, agg.Cost.CrossoverDays)
	}
	if cr.Failed > 0 {
		for _, out := range cr.Jobs {
			if out.Status == StatusFailed {
				fmt.Fprintf(&b, "  FAILED %s: %s\n", out.Job.Params.Label(), firstLine(out.Err))
			}
		}
	}
	return b.String()
}

// firstLine truncates multi-line errors for the summary.
func firstLine(s string) string {
	first, _, _ := strings.Cut(s, "\n")
	return first
}
