package campaign

import "sort"

// TenantJob is one entry on the fleet queue: an expanded campaign job owned
// by a tenant's campaign submission. The cache identity of the job stays
// Params.Key() — tenants deliberately share the content-addressed result
// cache, so identical sweep points are simulated once fleet-wide — while the
// queue identity (who gets charged, who gets scheduled, which campaign the
// outcome lands in) is the (Tenant, CampaignID, Job.Index) triple.
type TenantJob struct {
	Tenant     string `json:"tenant"`
	CampaignID string `json:"campaign_id"`
	// Priority orders a tenant's own backlog (higher first); it never
	// overrides cross-tenant fairness.
	Priority int `json:"priority,omitempty"`
	// Seq is the fleet-wide admission order, the deterministic tie-break
	// inside one priority band. Re-queued jobs keep their original Seq, so
	// a job bounced off a dead worker goes back near the front of its
	// tenant's line instead of behind newly submitted work.
	Seq uint64 `json:"seq"`
	Job Job    `json:"job"`
}

// Queue is the fleet's tenant-aware pending-job store and scheduler: each
// tenant holds a priority-ordered backlog, and Next picks across tenants by
// deficit round-robin under per-tenant concurrency quotas.
//
// Scheduling discipline: every Next call is one DRR round. Each tenant with
// pending work earns one quantum of deficit (capped at its backlog — credit
// beyond runnable work is meaningless); the eligible tenant (pending work,
// in-flight leases below quota) with the largest deficit is served and pays
// one quantum. Ties break in round-robin order from the last tenant served,
// so equal-deficit tenants alternate, and a tenant starved at its quota
// accumulates deficit and catches up in a burst once leases free up —
// classic DRR fairness, measured in jobs.
//
// Queue is not safe for concurrent use; the fleet server serializes access
// under its own lock. Scheduling order never affects campaign results — the
// determinism contract makes aggregates byte-identical for any schedule —
// so the scheduler is pure wall-clock and fairness policy.
type Queue struct {
	tenants      map[string]*tenantState
	order        []string // tenant admission order: the round-robin ring
	rr           int      // ring index scanning starts from
	quotas       map[string]int
	defaultQuota int
}

// tenantState is one tenant's backlog and scheduling accounts.
type tenantState struct {
	name     string
	jobs     []*TenantJob // sorted: Priority desc, Seq asc
	inflight int
	deficit  int
}

// NewQueue returns an empty queue. defaultQuota bounds concurrent leases
// per tenant unless overridden by SetQuota; <= 0 means unlimited.
func NewQueue(defaultQuota int) *Queue {
	return &Queue{
		tenants:      map[string]*tenantState{},
		quotas:       map[string]int{},
		defaultQuota: defaultQuota,
	}
}

// SetQuota overrides one tenant's concurrency quota; <= 0 means unlimited.
func (q *Queue) SetQuota(tenant string, quota int) { q.quotas[tenant] = quota }

// Quota returns the effective quota for a tenant (0 = unlimited).
func (q *Queue) Quota(tenant string) int {
	if quota, ok := q.quotas[tenant]; ok {
		if quota <= 0 {
			return 0
		}
		return quota
	}
	if q.defaultQuota <= 0 {
		return 0
	}
	return q.defaultQuota
}

// tenant returns (creating if needed) a tenant's state, keeping the ring in
// admission order.
func (q *Queue) tenant(name string) *tenantState {
	t, ok := q.tenants[name]
	if !ok {
		t = &tenantState{name: name}
		q.tenants[name] = t
		q.order = append(q.order, name)
	}
	return t
}

// Push adds a job to its tenant's backlog.
func (q *Queue) Push(tj *TenantJob) {
	t := q.tenant(tj.Tenant)
	i := sort.Search(len(t.jobs), func(i int) bool {
		if t.jobs[i].Priority != tj.Priority {
			return t.jobs[i].Priority < tj.Priority
		}
		return t.jobs[i].Seq > tj.Seq
	})
	t.jobs = append(t.jobs, nil)
	copy(t.jobs[i+1:], t.jobs[i:])
	t.jobs[i] = tj
}

// Requeue returns a previously dispatched job to its tenant's backlog —
// the lease expired or its worker died — releasing the in-flight slot it
// held. The job keeps its original Seq, so it schedules ahead of newer work.
func (q *Queue) Requeue(tj *TenantJob) {
	q.Release(tj.Tenant)
	q.Push(tj)
}

// Release frees one of a tenant's in-flight slots: its job completed (or
// was absorbed by a cache hit at grant time).
func (q *Queue) Release(tenant string) {
	if t, ok := q.tenants[tenant]; ok && t.inflight > 0 {
		t.inflight--
	}
}

// atQuota reports whether the tenant has exhausted its concurrency quota.
func (q *Queue) atQuota(t *tenantState) bool {
	quota := q.Quota(t.name)
	return quota > 0 && t.inflight >= quota
}

// Next runs one DRR round and dispatches the winning tenant's
// highest-priority job, charging an in-flight slot the caller must return
// via Release or Requeue. It returns nil when no tenant is eligible —
// nothing pending, or everything pending belongs to tenants at quota.
func (q *Queue) Next() *TenantJob {
	n := len(q.order)
	var best *tenantState
	bestAt := 0
	for i := 0; i < n; i++ {
		t := q.tenants[q.order[(q.rr+i)%n]]
		if len(t.jobs) == 0 {
			continue
		}
		if t.deficit < len(t.jobs) {
			t.deficit++
		}
		if q.atQuota(t) {
			continue
		}
		if best == nil || t.deficit > best.deficit {
			best, bestAt = t, i
		}
	}
	if best == nil {
		return nil
	}
	if best.deficit > 0 {
		best.deficit--
	}
	q.rr = (q.rr + bestAt + 1) % n
	best.inflight++
	tj := best.jobs[0]
	best.jobs = best.jobs[1:]
	return tj
}

// Len returns the total number of pending jobs across all tenants.
func (q *Queue) Len() int {
	n := 0
	for _, t := range q.tenants {
		n += len(t.jobs)
	}
	return n
}

// TenantView is one tenant's queue state, for status endpoints.
type TenantView struct {
	Tenant   string `json:"tenant"`
	Pending  int    `json:"pending"`
	InFlight int    `json:"in_flight"`
	Quota    int    `json:"quota,omitempty"` // 0 = unlimited
	Deficit  int    `json:"deficit"`
}

// Tenants returns a per-tenant view in admission order.
func (q *Queue) Tenants() []TenantView {
	views := make([]TenantView, 0, len(q.order))
	for _, name := range q.order {
		t := q.tenants[name]
		views = append(views, TenantView{
			Tenant:   name,
			Pending:  len(t.jobs),
			InFlight: t.inflight,
			Quota:    q.Quota(name),
			Deficit:  t.deficit,
		})
	}
	return views
}

// InFlight returns a tenant's current in-flight lease count.
func (q *Queue) InFlight(tenant string) int {
	if t, ok := q.tenants[tenant]; ok {
		return t.inflight
	}
	return 0
}
