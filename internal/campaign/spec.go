// Package campaign is the experiment-sweep engine: a declarative Spec
// describes a parameter grid (shapes x workloads x NUMA modes x seeds x
// fault plans x ...), the engine expands it into independent jobs, runs them
// on a bounded worker pool with per-job timeouts and retry-on-stall, and
// merges the per-job statistics into one deterministic campaign report with
// a cloud cost estimate.
//
// Because every job is a deterministic simulation, the campaign's aggregate
// output is byte-identical regardless of worker count, job completion order
// or whether results came from the content-addressed cache — the same
// adversarial testability contract the sharded engine (internal/sim
// parallel) established for a single run, lifted to fleets of runs.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"smappic/internal/core"
	"smappic/internal/fault"
)

// Workload names the execution-driven programs a job can run.
const (
	// WorkloadIS is the NPB integer sort (Figs. 8-9): the all-to-all
	// redistribution stresses the inter-node fabric and the sorted output
	// checksum proves end-to-end correctness.
	WorkloadIS = "is"
	// WorkloadProbe is the Fig. 7 latency probe: one dirty-line read from
	// node 0 to node 1 (requires >= 2 nodes).
	WorkloadProbe = "probe"
	// WorkloadStores is a cross-node store stream (256-style line stores
	// from node 0 into node 1's DRAM) — the bridge-credit ablation kernel.
	WorkloadStores = "stores"
)

// Params fully resolve one job: every knob that can influence the simulated
// outcome, no defaults left implicit. Two jobs with equal Params are the
// same experiment — Key() hashes the canonical encoding, and the result
// cache is addressed by that hash.
type Params struct {
	Shape    string `json:"shape"`    // AxBxC
	Workload string `json:"workload"` // is | probe | stores
	// NUMA selects the kernel's NUMA-aware placement/scheduling mode.
	NUMA bool `json:"numa"`
	// Homing is "region" (SMAPPIC's address-region homing) or "interleave"
	// (the ablation's global line interleaving).
	Homing string `json:"homing"`
	// Threads is the IS thread count; 0 means one per hart.
	Threads int `json:"threads"`
	// ActiveNodes pins the IS threads to the first N nodes (taskset);
	// 0 runs on all nodes.
	ActiveNodes int `json:"active_nodes"`
	// Keys is the problem size: IS key count, or store count for "stores".
	Keys int    `json:"keys"`
	Seed uint64 `json:"seed"`
	// Faults is a fault-injection spec in the internal/fault grammar;
	// empty disables injection.
	Faults    string `json:"faults"`
	FaultSeed uint64 `json:"fault_seed"`
	// Credits overrides the bridge's per-destination credit pool (0 keeps
	// the default sizing).
	Credits int `json:"credits"`
	// ExtraLatency adds cycles to the inter-node bridge shaper (the
	// slower-interconnect ablation).
	ExtraLatency uint64 `json:"extra_latency"`
	// MaxCycles aborts a runaway job past this simulated time (0 = none).
	MaxCycles uint64 `json:"max_cycles"`
	// Watchdog arms the forward-progress watchdog with this window; a job
	// that trips it fails with ErrStalled and is eligible for retry.
	Watchdog uint64 `json:"watchdog"`
	// WarmStart forks the run from a shared boot+keygen prefix snapshot
	// instead of simulating the prefix again (IS only). A warm-started
	// job's prefix ran under fault-free, default-bridge conditions, so its
	// result can differ from the cold run of the same point when fork-time
	// knobs (faults, credits, shaping) are set; the flag is therefore part
	// of the job's identity and cache key.
	WarmStart bool `json:"warm_start,omitempty"`
}

// cacheVersion salts the content hash; bump it whenever the executor or the
// Result encoding changes meaning, so stale cache entries miss instead of
// poisoning new runs.
const cacheVersion = "campaign-v2"

// Key returns the content address of the job: a hash of the canonical JSON
// encoding of the fully resolved parameters.
func (p Params) Key() string {
	b, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("campaign: params not encodable: %v", err))
	}
	sum := sha256.Sum256(append([]byte(cacheVersion+"\n"), b...))
	return hex.EncodeToString(sum[:])
}

// prefixParams reduces the job to its warm-start prefix identity: the
// parameters the boot+keygen prefix depends on. Fork-time knobs — fault
// plan, bridge credits and shaping, cycle limits, the watchdog — are
// zeroed, so every sweep point differing only in those shares one prefix.
func (p Params) prefixParams() Params {
	p.Faults = ""
	p.FaultSeed = 0
	p.Credits = 0
	p.ExtraLatency = 0
	p.MaxCycles = 0
	p.Watchdog = 0
	p.WarmStart = false
	return p
}

// PrefixKey content-addresses the warm-start prefix this job forks from.
func (p Params) PrefixKey() string {
	b, err := json.Marshal(p.prefixParams())
	if err != nil {
		panic(fmt.Sprintf("campaign: params not encodable: %v", err))
	}
	sum := sha256.Sum256(append([]byte(cacheVersion+"-warm\n"), b...))
	return hex.EncodeToString(sum[:])
}

// Label renders a compact human-readable job name for reports and logs.
func (p Params) Label() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s", p.Workload, p.Shape)
	if p.Workload == WorkloadIS {
		fmt.Fprintf(&b, "/numa=%v", p.NUMA)
		if p.Threads > 0 {
			fmt.Fprintf(&b, "/t%d", p.Threads)
		}
		if p.ActiveNodes > 0 {
			fmt.Fprintf(&b, "/nodes%d", p.ActiveNodes)
		}
	}
	if p.Homing == HomingInterleave {
		b.WriteString("/interleave")
	}
	if p.Credits > 0 {
		fmt.Fprintf(&b, "/credits%d", p.Credits)
	}
	if p.ExtraLatency > 0 {
		fmt.Fprintf(&b, "/extra%d", p.ExtraLatency)
	}
	if p.Faults != "" {
		fmt.Fprintf(&b, "/faults[%s]", p.Faults)
	}
	fmt.Fprintf(&b, "/seed%d", p.Seed)
	return b.String()
}

// Homing policy names.
const (
	HomingRegion     = "region"
	HomingInterleave = "interleave"
)

// Validate checks a job's parameters without building the prototype.
func (p Params) Validate() error {
	a, b, _, err := core.ParseShape(p.Shape)
	if err != nil {
		return err
	}
	switch p.Workload {
	case WorkloadIS:
		if p.Keys <= 0 {
			return fmt.Errorf("campaign: %s needs keys > 0", p.Workload)
		}
	case WorkloadProbe, WorkloadStores:
		if a*b < 2 {
			return fmt.Errorf("campaign: %s needs >= 2 nodes, shape %s has %d", p.Workload, p.Shape, a*b)
		}
		if p.Workload == WorkloadStores && p.Keys <= 0 {
			return fmt.Errorf("campaign: stores needs keys > 0 (the store count)")
		}
	default:
		return fmt.Errorf("campaign: unknown workload %q", p.Workload)
	}
	if p.Homing != HomingRegion && p.Homing != HomingInterleave {
		return fmt.Errorf("campaign: unknown homing policy %q", p.Homing)
	}
	if p.ActiveNodes > a*b {
		return fmt.Errorf("campaign: active_nodes %d exceeds the %d nodes of %s", p.ActiveNodes, a*b, p.Shape)
	}
	if _, err := fault.Parse(p.Faults, p.FaultSeed); err != nil {
		return err
	}
	if p.WarmStart && p.Workload != WorkloadIS {
		return fmt.Errorf("campaign: warm_start applies only to the %s workload", WorkloadIS)
	}
	return nil
}

// Spec is a declarative sweep: the cartesian product of every dimension
// list, with scalar knobs shared by all points. Empty dimension lists get a
// one-element default, so the minimal spec is just a name, one shape and
// one workload.
type Spec struct {
	Name      string   `json:"name"`
	Shapes    []string `json:"shapes"`
	Workloads []string `json:"workloads"`

	// Dimensions (empty = the single default in brackets).
	NUMA         []bool   `json:"numa,omitempty"`          // [true]
	Homing       []string `json:"homing,omitempty"`        // ["region"]
	Threads      []int    `json:"threads,omitempty"`       // [0] = all harts
	ActiveNodes  []int    `json:"active_nodes,omitempty"`  // [0] = all nodes
	Seeds        []uint64 `json:"seeds,omitempty"`         // [1]
	Faults       []string `json:"faults,omitempty"`        // [""] = none
	Credits      []int    `json:"credits,omitempty"`       // [0] = default pool
	ExtraLatency []uint64 `json:"extra_latency,omitempty"` // [0]

	// Scalars shared by every point.
	Keys      int    `json:"keys,omitempty"`       // default 1<<13
	FaultSeed uint64 `json:"fault_seed,omitempty"` // default 1
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	Watchdog  uint64 `json:"watchdog,omitempty"`

	// WarmStart forks every IS point from a shared boot+keygen prefix
	// snapshot (cached per prefix identity) instead of re-simulating the
	// prefix. Part of each job's identity: see Params.WarmStart.
	WarmStart bool `json:"warm_start,omitempty"`

	// Execution policy (does not affect results, only how they are won).
	TimeoutSec float64 `json:"timeout_sec,omitempty"` // per-job wall clock, 0 = none
	Retries    int     `json:"retries,omitempty"`     // extra attempts after a stall or panic
	// CheckpointEvery, with a cache configured, checkpoints every running
	// IS job each time it crosses another interval of simulated cycles; a
	// killed campaign resumes those jobs mid-flight instead of from zero.
	// Results are byte-identical with or without checkpointing.
	CheckpointEvery uint64 `json:"checkpoint_every,omitempty"`
}

// Job is one expanded point of a campaign.
type Job struct {
	// Index is the job's position in the expansion order; aggregation
	// sorts by it, which is what makes reports independent of completion
	// order.
	Index  int
	Params Params
}

// ParseSpec decodes a JSON spec, rejecting unknown fields so typos in sweep
// files fail loudly instead of silently collapsing a dimension.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign: bad spec: %w", err)
	}
	return s, nil
}

// withDefaults returns the spec with every empty dimension filled in.
func (s Spec) withDefaults() Spec {
	if len(s.NUMA) == 0 {
		s.NUMA = []bool{true}
	}
	if len(s.Homing) == 0 {
		s.Homing = []string{HomingRegion}
	}
	if len(s.Threads) == 0 {
		s.Threads = []int{0}
	}
	if len(s.ActiveNodes) == 0 {
		s.ActiveNodes = []int{0}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{1}
	}
	if len(s.Faults) == 0 {
		s.Faults = []string{""}
	}
	if len(s.Credits) == 0 {
		s.Credits = []int{0}
	}
	if len(s.ExtraLatency) == 0 {
		s.ExtraLatency = []uint64{0}
	}
	if s.Keys == 0 {
		s.Keys = 1 << 13
	}
	if s.FaultSeed == 0 {
		s.FaultSeed = 1
	}
	return s
}

// Jobs expands the spec into its grid, in a fixed nesting order (workload,
// shape, homing, NUMA, threads, active nodes, credits, extra latency,
// faults, seed — innermost last). The order is part of the report format:
// job indices, and therefore row order in every aggregate, depend only on
// the spec.
func (s Spec) Jobs() ([]Job, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("campaign: spec needs a name")
	}
	if len(s.Shapes) == 0 || len(s.Workloads) == 0 {
		return nil, fmt.Errorf("campaign: spec needs at least one shape and one workload")
	}
	d := s.withDefaults()
	var jobs []Job
	for _, wl := range d.Workloads {
		for _, shape := range d.Shapes {
			for _, homing := range d.Homing {
				for _, numa := range d.NUMA {
					for _, threads := range d.Threads {
						for _, nodes := range d.ActiveNodes {
							for _, credits := range d.Credits {
								for _, extra := range d.ExtraLatency {
									for _, faults := range d.Faults {
										for _, seed := range d.Seeds {
											p := Params{
												Shape:        shape,
												Workload:     wl,
												WarmStart:    s.WarmStart && wl == WorkloadIS,
												NUMA:         numa,
												Homing:       homing,
												Threads:      threads,
												ActiveNodes:  nodes,
												Keys:         d.Keys,
												Seed:         seed,
												Faults:       faults,
												FaultSeed:    d.FaultSeed,
												Credits:      credits,
												ExtraLatency: extra,
												MaxCycles:    d.MaxCycles,
												Watchdog:     d.Watchdog,
											}
											if err := p.Validate(); err != nil {
												return nil, fmt.Errorf("job %d (%s): %w", len(jobs), p.Label(), err)
											}
											jobs = append(jobs, Job{Index: len(jobs), Params: p})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return jobs, nil
}
