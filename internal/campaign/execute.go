package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"

	"smappic/internal/cache"
	"smappic/internal/ckpt"
	"smappic/internal/core"
	"smappic/internal/fault"
	"smappic/internal/kernel"
	"smappic/internal/sim"
	"smappic/internal/workload"
)

// Result is one job's outcome — everything the aggregate needs, in a form
// that round-trips through JSON byte-exactly (the cache stores results as
// JSON, and a cache hit must be indistinguishable from a fresh run).
type Result struct {
	Label  string `json:"label"`
	Key    string `json:"key"`
	Params Params `json:"params"`

	// Cycles is the workload's own measurement: IS runtime, probe round
	// trip, or the store stream's duration. RunCycles is the full
	// simulated time including drain.
	Cycles    uint64  `json:"cycles"`
	RunCycles uint64  `json:"run_cycles"`
	Seconds   float64 `json:"seconds"` // Cycles at the prototype clock

	// SimulatedCycles is how much simulated time this job actually had to
	// execute: RunCycles for a cold run, RunCycles minus the shared prefix
	// for a warm-started one. It depends only on Params (the prefix cut
	// time is deterministic), so results stay byte-identical across cache
	// states — and it is the number the warm-start savings are measured
	// from.
	SimulatedCycles uint64 `json:"simulated_cycles"`

	// Checksum is the IS output hash (hex); empty for other workloads.
	Checksum string `json:"checksum,omitempty"`
	Sorted   bool   `json:"sorted,omitempty"`

	// Attempts counts executions including stall retries (set by the
	// runner; a cached result keeps the count from the run that won it).
	Attempts int `json:"attempts"`

	// FPGAHours is the job's modeled FPGA time: prototype wall time times
	// the FPGA count — what the cloud bill is computed from.
	FPGAHours float64 `json:"fpga_hours"`

	// Stats is the run's counter snapshot (sim.Stats.CounterSnapshot);
	// campaign aggregation merges these. Metrics is the full MetricsJSON
	// document, cached so re-runs can serve it without re-simulating.
	Stats   map[string]uint64 `json:"stats"`
	Metrics json.RawMessage   `json:"metrics,omitempty"`
}

// StallError reports a job whose forward-progress watchdog fired: the
// simulation wedged (typically under injected faults) and was terminated
// with a diagnosis instead of draining silently.
type StallError struct{ Diagnosis string }

// Error summarizes the stall; the full diagnosis is preserved.
func (e *StallError) Error() string {
	first, _, _ := strings.Cut(e.Diagnosis, "\n")
	return "campaign: job stalled: " + first
}

// IsStall reports whether err is (or wraps) a watchdog stall — one of the
// failure classes the runner retries.
func IsStall(err error) bool {
	var s *StallError
	return errors.As(err, &s)
}

// PanicError reports a job whose execution panicked. The executor recovers
// the panic instead of taking the whole campaign down: one job's crash is
// that job's failure, retryable like a stall, while the worker pool keeps
// draining the rest of the sweep.
type PanicError struct {
	Value string // the panic value, rendered
	Stack string // the goroutine stack at recovery
}

func (e *PanicError) Error() string { return "campaign: job panicked: " + e.Value }

// IsPanic reports whether err is (or wraps) a recovered job panic.
func IsPanic(err error) bool {
	var p *PanicError
	return errors.As(err, &p)
}

// stepBatch is how many events the executor runs between cancellation and
// timeout checks. Batching by event count (not RunUntil time slices) matters
// for determinism: RunUntil forces the clock forward to its deadline when
// the queue drains early, which would inflate the simulated time a kernel
// Join observes; Step never moves the clock past the last executed event.
const stepBatch = 4096

// aborted carries a cancellation/timeout/stall out of the event loop; it is
// recovered at the top of Execute.
type aborted struct{ err error }

// ExecuteOpts tune how a job is executed. None of them change what the job
// computes: periodic checkpointing and crash resume reproduce the cold
// run's result byte-for-byte, and the warm-start prefix is pinned into the
// job's identity by Params.WarmStart, not by these knobs.
type ExecuteOpts struct {
	// CheckpointPath + CheckpointEvery enable periodic checkpointing (IS
	// only): every CheckpointEvery simulated cycles the run cuts at the
	// next phase barrier, writes a state snapshot to CheckpointPath, and
	// continues from its own snapshot — so every written file is a
	// self-tested restore.
	CheckpointPath  string
	CheckpointEvery uint64
	// ResumeFrom, when set, starts the job from this state snapshot
	// (written by a previous, interrupted execution of the same job).
	ResumeFrom string
	// WarmStartPath, for jobs with Params.WarmStart, is the shared prefix
	// snapshot to fork from; empty makes the executor build the prefix
	// in-process (correct but unshared).
	WarmStartPath string
}

// Execute runs one job to completion and returns its Result. It honors
// ctx cancellation and deadline between event slices, and returns a
// *StallError when the job's watchdog detects a wedged simulation.
// Execution is fully deterministic: equal Params produce byte-identical
// Results (Attempts excluded; the runner owns it).
func Execute(ctx context.Context, p Params) (*Result, error) {
	return ExecuteWithOpts(ctx, p, ExecuteOpts{})
}

// configFor derives the prototype configuration of a job.
func configFor(p Params) (core.Config, error) {
	a, b, c, _ := core.ParseShape(p.Shape)
	cfg := core.DefaultConfig(a, b, c)
	cfg.Core = core.CoreNone
	cfg.Seed = p.Seed
	cfg.GlobalInterleaveHoming = p.Homing == HomingInterleave
	if p.Credits > 0 {
		cfg.Bridge.CreditsPerDst = p.Credits
	}
	cfg.Bridge.ExtraLatency = sim.Time(p.ExtraLatency)
	cfg.WatchdogInterval = sim.Time(p.Watchdog)
	var err error
	cfg.Faults, err = fault.Parse(p.Faults, p.FaultSeed)
	return cfg, err
}

// ExecuteWithOpts is Execute with checkpoint/resume/warm-start policies.
func ExecuteWithOpts(ctx context.Context, p Params, opts ExecuteOpts) (res *Result, err error) {
	if verr := p.Validate(); verr != nil {
		return nil, verr
	}
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(aborted); ok {
				res, err = nil, a.err
				return
			}
			// Any other panic is a crashed job, not a crashed campaign:
			// surface it as a retryable error with the stack preserved.
			res, err = nil, &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()

	cfg, err := configFor(p)
	if err != nil {
		return nil, err
	}

	var proto *core.Prototype
	var cycles sim.Time
	var simBase uint64
	checksum := ""
	sorted := false
	switch p.Workload {
	case WorkloadIS:
		var r workload.ISResult
		proto, r, simBase, err = runIS(ctx, p, cfg, opts)
		if err != nil {
			return nil, err
		}
		cycles = r.Cycles
		checksum = fmt.Sprintf("%016x", r.Checksum)
		sorted = r.Sorted

	case WorkloadProbe:
		// One warm dirty-line read from node 0 to node 1, exactly the
		// Fig. 7 measurement (seq 1 keeps the probe line off the warmup
		// line). MeasureLatency drains the engine itself; a watchdog, if
		// armed, guarantees termination under injected hangs.
		proto, err = core.Build(cfg)
		if err != nil {
			return nil, err
		}
		cycles = proto.MeasureLatency(cache.GID{Node: 0, Tile: 0}, cache.GID{Node: 1, Tile: 0}, 1)

	case WorkloadStores:
		proto, err = core.Build(cfg)
		if err != nil {
			return nil, err
		}
		port := proto.PortAt(cache.GID{Node: 0, Tile: 0})
		remote := proto.Map.NodeDRAMBase(1) + 0x100000
		done := false
		sim.Go(proto.Eng, "wl", func(proc *sim.Process) {
			start := proc.Now()
			for i := uint64(0); i < uint64(p.Keys); i++ {
				port.Store(proc, remote+i*64, 8, i) // one miss per line
			}
			cycles = proc.Now() - start
			done = true
		})
		driveEngine(ctx, proto, p.MaxCycles)
		if !done {
			if proto.StallDiagnosis != "" {
				return nil, &StallError{Diagnosis: proto.StallDiagnosis}
			}
			return nil, fmt.Errorf("campaign: %s wedged without a watchdog diagnosis", p.Label())
		}
	}
	if proto.StallDiagnosis != "" {
		return nil, &StallError{Diagnosis: proto.StallDiagnosis}
	}

	metrics, err := proto.MetricsJSON()
	if err != nil {
		return nil, err
	}
	return &Result{
		Label:           p.Label(),
		Key:             p.Key(),
		Params:          p,
		Cycles:          uint64(cycles),
		RunCycles:       uint64(proto.Now()),
		SimulatedCycles: uint64(proto.Now()) - simBase,
		Seconds:         proto.Seconds(cycles),
		Checksum:        checksum,
		Sorted:          sorted,
		Attempts:        1,
		FPGAHours:       proto.Seconds(proto.Now()) * float64(cfg.FPGAs) / 3600,
		Stats:           proto.Stats.CounterSnapshot(),
		Metrics:         metrics,
	}, nil
}

// isSetup builds one IS execution: prototype, booted kernel with the
// chunked ctx-aware runner installed, and resolved sort parameters.
func isSetup(ctx context.Context, p Params, cfg core.Config) (*core.Prototype, *kernel.Kernel, workload.ISParams, error) {
	proto, err := core.Build(cfg)
	if err != nil {
		return nil, nil, workload.ISParams{}, err
	}
	kc := kernel.DefaultConfig()
	kc.NUMA = p.NUMA
	k := kernel.New(proto, kc)
	k.SetRunner(func() sim.Time { return driveEngine(ctx, proto, p.MaxCycles) })
	threads := p.Threads
	if threads == 0 {
		threads = len(k.AllHarts())
	}
	ip := workload.DefaultISParams(threads)
	ip.Keys = p.Keys
	ip.Seed = p.Seed
	if p.ActiveNodes > 0 {
		ip.Affinity = k.NodesHarts(p.ActiveNodes)
	}
	return proto, k, ip, nil
}

// snapshotCut assembles and encodes the full state snapshot of a just-cut,
// quiescent run.
func snapshotCut(proto *core.Prototype, cfg core.Config, ic *workload.ISCut, prefixHash string) (*ckpt.Snapshot, error) {
	st, err := proto.CaptureState()
	if err != nil {
		return nil, err
	}
	st.Kernel = ic.KernelState()
	st.Workload = ic.WorkloadState()
	return &ckpt.Snapshot{
		Kind:       ckpt.KindState,
		ConfigHash: cfg.ConfigHash(),
		PrefixHash: prefixHash,
		Workload:   proto.WorkloadTag,
		Now:        uint64(proto.Now()),
		State:      st,
	}, nil
}

// BuildPrefix simulates the shared warm-start prefix of p — boot plus IS
// key generation, cut at the first phase barrier, under the fault-free
// default-bridge prefix configuration — and returns its snapshot, tagged
// with p's PrefixKey.
func BuildPrefix(ctx context.Context, p Params) (*ckpt.Snapshot, error) {
	pp := p.prefixParams()
	cfg, err := configFor(pp)
	if err != nil {
		return nil, err
	}
	proto, k, ip, err := isSetup(ctx, pp, cfg)
	if err != nil {
		return nil, err
	}
	cut := &workload.CutPlan{After: 1}
	_, ic := workload.RunISCut(k, ip, cut)
	if proto.StallDiagnosis != "" {
		return nil, &StallError{Diagnosis: proto.StallDiagnosis}
	}
	if ic == nil {
		return nil, fmt.Errorf("campaign: prefix run completed before its cut; nothing to fork")
	}
	return snapshotCut(proto, cfg, ic, p.PrefixKey())
}

// warmPrefix loads (or builds) the prefix snapshot a warm-started job
// forks from.
func warmPrefix(ctx context.Context, p Params, path string) (*ckpt.Snapshot, error) {
	if path == "" {
		return BuildPrefix(ctx, p)
	}
	snap, err := ckpt.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if snap.Kind != ckpt.KindState {
		return nil, &ckpt.MismatchError{Field: "snapshot kind", Got: snap.Kind.String(), Want: ckpt.KindState.String()}
	}
	if snap.PrefixHash != p.PrefixKey() {
		return nil, &ckpt.MismatchError{Field: "warm-start prefix", Got: snap.PrefixHash, Want: p.PrefixKey()}
	}
	return snap, nil
}

// runIS executes the IS workload under the checkpoint/resume/warm-start
// policies. It returns the final prototype (quiescent, fully drained), the
// sort result, and the simulated-cycle base (the warm prefix's cut time;
// zero for cold and crash-resumed runs, whose accounting must match cold).
func runIS(ctx context.Context, p Params, cfg core.Config, opts ExecuteOpts) (*core.Prototype, workload.ISResult, uint64, error) {
	var overlay *ckpt.State
	var warmFork bool
	var simBase, startNow uint64

	switch {
	case p.WarmStart:
		snap, err := warmPrefix(ctx, p, opts.WarmStartPath)
		if err != nil {
			return nil, workload.ISResult{}, 0, err
		}
		overlay, warmFork = snap.State, true
		simBase, startNow = snap.Now, snap.Now
	case opts.ResumeFrom != "":
		snap, err := ckpt.ReadFile(opts.ResumeFrom)
		if err != nil {
			return nil, workload.ISResult{}, 0, err
		}
		if snap.Kind != ckpt.KindState {
			return nil, workload.ISResult{}, 0, &ckpt.MismatchError{Field: "snapshot kind", Got: snap.Kind.String(), Want: ckpt.KindState.String()}
		}
		if snap.ConfigHash != cfg.ConfigHash() {
			return nil, workload.ISResult{}, 0, &ckpt.MismatchError{Field: "configuration", Got: snap.ConfigHash, Want: cfg.ConfigHash()}
		}
		overlay, startNow = snap.State, snap.Now
	}

	for {
		proto, k, ip, err := isSetup(ctx, p, cfg)
		if err != nil {
			return nil, workload.ISResult{}, 0, err
		}
		if overlay != nil {
			if err := proto.ApplyState(overlay, warmFork); err != nil {
				return nil, workload.ISResult{}, 0, err
			}
		}
		var cut *workload.CutPlan
		if opts.CheckpointEvery > 0 && opts.CheckpointPath != "" {
			cut = &workload.CutPlan{After: sim.Time(startNow + opts.CheckpointEvery)}
		}
		var r workload.ISResult
		var ic *workload.ISCut
		if overlay != nil {
			r, ic, err = workload.ResumeIS(k, ip, overlay.Kernel, overlay.Workload, cut)
			if err != nil {
				return nil, workload.ISResult{}, 0, err
			}
		} else {
			r, ic = workload.RunISCut(k, ip, cut)
		}
		if proto.StallDiagnosis != "" {
			return nil, workload.ISResult{}, 0, &StallError{Diagnosis: proto.StallDiagnosis}
		}
		if ic == nil {
			return proto, r, simBase, nil
		}
		// Periodic checkpoint: persist the cut, then continue from our own
		// file — the continuation doubles as a restore self-test, and a
		// SIGKILL at any point leaves a usable snapshot behind.
		snap, err := snapshotCut(proto, cfg, ic, "")
		if err != nil {
			return nil, workload.ISResult{}, 0, err
		}
		if err := snap.WriteFile(opts.CheckpointPath); err != nil {
			return nil, workload.ISResult{}, 0, err
		}
		reread, err := ckpt.ReadFile(opts.CheckpointPath)
		if err != nil {
			return nil, workload.ISResult{}, 0, err
		}
		overlay, warmFork, startNow = reread.State, false, reread.Now
	}
}

// driveEngine advances the serial engine to quiescence in stepBatch-event
// chunks, checking ctx between chunks so a wall-clock timeout or a campaign
// cancellation terminates a job mid-simulation. A watchdog stall surfaces
// here too: the engine drains after the watchdog fires, and the recorded
// diagnosis is converted into a StallError.
func driveEngine(ctx context.Context, proto *core.Prototype, maxCycles uint64) sim.Time {
	eng := proto.Eng
	for {
		if err := ctx.Err(); err != nil {
			panic(aborted{fmt.Errorf("campaign: job aborted at cycle %d: %w", eng.Now(), err)})
		}
		next, ok := eng.NextEventTime()
		if !ok {
			if proto.StallDiagnosis != "" {
				panic(aborted{&StallError{Diagnosis: proto.StallDiagnosis}})
			}
			return eng.Now()
		}
		if maxCycles > 0 && uint64(next) > maxCycles {
			panic(aborted{fmt.Errorf("campaign: job exceeded max_cycles %d", maxCycles)})
		}
		for i := 0; i < stepBatch; i++ {
			if !eng.Step() {
				break
			}
		}
	}
}
